//! Property tests on the paged KV-cache pool under prefix sharing: for
//! any interleaving of admissions, cancels, deadline expiries and
//! completions over prompts with overlapping prefixes — across admission
//! windows and worker-thread counts — the pool must be invisible in the
//! output:
//!
//! * every request that finishes is **bit-identical** to running it alone
//!   on a fresh session, even when its prompt prefix was served off
//!   frozen pages another request wrote and further requests are
//!   appending next to it (copy-on-write, never in place);
//! * frozen prefix pages are never mutated by any holder
//!   ([`KvPagePool::verify_frozen`] re-hashes the retained chain after
//!   the churn — a single flipped byte in a shared page fails it);
//! * quiescence leaks nothing: zero open sessions **and** zero pool
//!   pages in use after the server drains — every page is back on the
//!   free list no matter which order requests joined and left.

use m2xfp_repro::nn::model::{ModelBuilder, ModelWeights};
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::serve::{run_solo, RequestOptions, RequestOutcome, ServeConfig, Server};
use m2xfp_repro::tensor::Matrix;
use m2xfp_repro::testkit::cases;
use std::sync::Arc;

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}");
    }
}

fn prompt(tokens: usize, seed: usize, hidden: usize) -> Matrix {
    activation_matrix(&ModelProfile::llama3_8b(), seed, tokens, hidden).map(|v| (v * 0.25).tanh())
}

fn tiny_weights(layers: usize) -> Arc<ModelWeights> {
    Arc::new(
        ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, layers)
            .build_weights()
            .unwrap(),
    )
}

/// Stitches `suffix` onto a clone of `prefix`.
fn with_suffix(prefix: &Matrix, suffix: &Matrix) -> Matrix {
    let mut p = prefix.clone();
    p.push_rows(suffix);
    p
}

/// The headline property (see module docs): arbitrary admit / cancel /
/// deadline / complete interleavings over one shared prefix stay bitwise
/// solo-identical, never corrupt a frozen page, and leak nothing.
#[test]
fn prefix_churn_stays_bit_identical_and_returns_every_page() {
    cases(5, |g| {
        let weights = tiny_weights(1 + g.below(2));
        let pool = Arc::clone(weights.kv_pool());
        let page = pool.page_tokens();
        // One or two whole pages of shared prefix: both the single-page
        // chain and the multi-page chain walk must hold the property.
        let prefix = prompt(page * (1 + g.below(2)), g.case * 211, 64);
        let n_requests = 3 + g.below(4);
        let reqs: Vec<(Matrix, usize)> = (0..n_requests)
            .map(|i| {
                let suffix = prompt(1 + g.below(4), g.case * 211 + 1 + i, 64);
                (with_suffix(&prefix, &suffix), 1 + g.below(5))
            })
            .collect();
        // Solo oracles on fresh sessions. `run_solo` never consults the
        // prefix index, so the oracle stays independent even though its
        // sessions draw pages from the same pool.
        let solo: Vec<Matrix> = reqs
            .iter()
            .map(|(p, d)| run_solo(&weights, p, *d).unwrap())
            .collect();

        let max_batch = 2 + g.below(3);
        let server = Server::start(
            Arc::clone(&weights),
            ServeConfig {
                max_batch,
                worker_threads: [1, 3][g.below(2)],
                ..ServeConfig::default()
            },
        );
        // Seed: the first sharer runs alone, so its prefix pages are
        // frozen and registered before any adopter looks them up.
        let first = server.submit(reqs[0].0.clone(), reqs[0].1).unwrap();
        let c = server.wait(first).unwrap().finished().unwrap();
        assert_bits_eq(&c.decoded, &solo[0], &format!("case {}: seeder", g.case));

        // Random interleaving: each remaining sharer becomes a normal
        // adopter, a cancelled long-runner, or a dead-on-arrival deadline
        // — victims adopt the same frozen pages before leaving, so their
        // departure churns refcounts under the survivors.
        let mut adopters: Vec<(usize, u64)> = Vec::new();
        let mut victims: Vec<(usize, u64)> = Vec::new();
        let mut long_runners = 0usize;
        for (i, (p, d)) in reqs.iter().enumerate().skip(1) {
            match g.below(4) {
                // Long-runners hold batch slots until cancelled; keep at
                // least one slot free so waited adopters always admit.
                0 if long_runners + 1 < max_batch => {
                    long_runners += 1;
                    victims.push((i, server.submit(p.clone(), 10_000).unwrap()));
                }
                1 => victims.push((
                    i,
                    server
                        .submit_with(
                            p.clone(),
                            *d,
                            RequestOptions {
                                deadline_steps: Some(0),
                                ..RequestOptions::default()
                            },
                        )
                        .unwrap(),
                )),
                _ => adopters.push((i, server.submit(p.clone(), *d).unwrap())),
            }
        }
        // Force a mid-wave drain on a random prefix of the adopters, then
        // cancel the long-runners while the rest are still in flight.
        let early = g.below(adopters.len() + 1);
        for &(i, id) in &adopters[..early] {
            let c = server.wait(id).unwrap().finished().unwrap();
            assert_bits_eq(
                &c.decoded,
                &solo[i],
                &format!("case {}: early adopter {i}", g.case),
            );
        }
        for &(_, id) in &victims {
            let _ = server.cancel(id);
        }
        for &(i, id) in &adopters[early..] {
            let c = server.wait(id).unwrap().finished().unwrap();
            assert_bits_eq(
                &c.decoded,
                &solo[i],
                &format!("case {}: adopter {i}", g.case),
            );
        }
        for (i, id) in victims {
            match server.wait(id).unwrap() {
                // A cancel can race completion; a finished victim must
                // still carry solo bits.
                RequestOutcome::Finished(c) => {
                    assert_bits_eq(
                        &c.decoded,
                        &solo[i],
                        &format!("case {}: finished victim {i}", g.case),
                    );
                }
                RequestOutcome::Cancelled { .. } | RequestOutcome::DeadlineExceeded { .. } => {}
                other => panic!("case {}: victim outcome {}", g.case, other.kind()),
            }
        }

        // Every completed adopter actually served its prefix off the
        // shared frozen pages — the bit-identity above is not vacuous.
        let stats = server.stats();
        assert!(
            stats.kv_prefix_hits >= adopters.len() as u64,
            "case {}: {} adopters but only {} prefix hits",
            g.case,
            adopters.len(),
            stats.kv_prefix_hits
        );
        // No holder mutated a frozen page in place: the retained chain
        // still matches the content hashes recorded at freeze time.
        assert!(
            pool.verify_frozen(),
            "case {}: a frozen shared page was mutated",
            g.case
        );

        // Quiescence: all sessions gone, every page back on the free list.
        drop(server);
        assert_eq!(
            weights.open_sessions(),
            0,
            "case {}: sessions leaked",
            g.case
        );
        assert_eq!(
            pool.stats().pages_in_use,
            0,
            "case {}: pool pages leaked",
            g.case
        );
    });
}

/// Two request families with *different* (overlapping-length) prefixes
/// interleaved through the same pool: lookups must never cross-match, and
/// both families stay bitwise solo-identical while sharing the free list.
#[test]
fn distinct_prefix_families_never_cross_contaminate() {
    cases(4, |g| {
        let weights = tiny_weights(1);
        let pool = Arc::clone(weights.kv_pool());
        let page = pool.page_tokens();
        // Family B's prefix agrees with A's for a random number of rows
        // (an overlapping-but-diverging prefix), then differs.
        let a_prefix = prompt(page, g.case * 307, 64);
        let shared_rows = g.below(page);
        let b_tail = prompt(page - shared_rows, g.case * 307 + 5000, 64);
        let mut b_prefix = Matrix::from_fn(shared_rows, 64, |r, c| a_prefix[(r, c)]);
        b_prefix.push_rows(&b_tail);
        assert_ne!(a_prefix, b_prefix, "families must diverge");

        let n_per = 2 + g.below(2);
        let mut mk = |prefix: &Matrix, fam: usize| -> Vec<(Matrix, usize)> {
            (0..n_per)
                .map(|i| {
                    let suffix = prompt(1 + g.below(3), g.case * 307 + fam * 100 + i, 64);
                    (with_suffix(prefix, &suffix), 1 + g.below(4))
                })
                .collect()
        };
        let reqs: Vec<(Matrix, usize)> = mk(&a_prefix, 1)
            .into_iter()
            .chain(mk(&b_prefix, 2))
            .collect();
        let solo: Vec<Matrix> = reqs
            .iter()
            .map(|(p, d)| run_solo(&weights, p, *d).unwrap())
            .collect();

        let server = Server::start(
            Arc::clone(&weights),
            ServeConfig {
                max_batch: 2 + g.below(2),
                worker_threads: [1, 3][g.below(2)],
                ..ServeConfig::default()
            },
        );
        // Seed one member of each family so both prefixes are frozen,
        // then interleave the rest A/B alternating.
        let seed_a = server.submit(reqs[0].0.clone(), reqs[0].1).unwrap();
        let c = server.wait(seed_a).unwrap().finished().unwrap();
        assert_bits_eq(&c.decoded, &solo[0], &format!("case {}: seed A", g.case));
        let seed_b = server.submit(reqs[n_per].0.clone(), reqs[n_per].1).unwrap();
        let c = server.wait(seed_b).unwrap().finished().unwrap();
        assert_bits_eq(
            &c.decoded,
            &solo[n_per],
            &format!("case {}: seed B", g.case),
        );

        let rest: Vec<usize> = (1..n_per).flat_map(|i| [i, n_per + i]).collect();
        let ids: Vec<(usize, u64)> = rest
            .iter()
            .map(|&i| (i, server.submit(reqs[i].0.clone(), reqs[i].1).unwrap()))
            .collect();
        for (i, id) in ids {
            let c = server.wait(id).unwrap().finished().unwrap();
            assert_bits_eq(
                &c.decoded,
                &solo[i],
                &format!("case {}: family member {i}", g.case),
            );
        }

        assert!(pool.verify_frozen(), "case {}: frozen page mutated", g.case);
        drop(server);
        assert_eq!(
            weights.open_sessions(),
            0,
            "case {}: sessions leaked",
            g.case
        );
        assert_eq!(
            pool.stats().pages_in_use,
            0,
            "case {}: pages leaked",
            g.case
        );
    });
}
