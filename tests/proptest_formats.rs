//! Property-based tests on the number-format substrate: codec round-trips,
//! nearest-value quantization bounds, packing invertibility, and the
//! integer decode LUTs behind the packed GEMM.

use m2xfp_repro::formats::{
    codebook::Codebook,
    e8m0::E8M0,
    half::{f16_bits_to_f32, f32_to_f16_bits, quantize_f16},
    int::IntCodec,
    minifloat::{Minifloat, SpecialValues},
    packing::{
        nibble_at, pack_nibbles, pack_nibbles_into, set_two_bits, two_bits_at, unpack_nibbles,
        unpack_nibbles_into, BitReader, BitWriter,
    },
    tables,
};
use m2xfp_repro::testkit::cases;

fn formats() -> Vec<Minifloat> {
    vec![
        Minifloat::new(2, 1, SpecialValues::None).unwrap(),
        Minifloat::new(2, 3, SpecialValues::None).unwrap(),
        Minifloat::new(3, 2, SpecialValues::None).unwrap(),
        Minifloat::new(3, 3, SpecialValues::None).unwrap(),
        Minifloat::new(4, 3, SpecialValues::NanOnly).unwrap(),
        Minifloat::new(5, 2, SpecialValues::Ieee).unwrap(),
    ]
}

/// quantize() output is always on the grid: re-quantizing is identity.
#[test]
fn minifloat_quantize_idempotent() {
    let fs = formats();
    cases(512, |g| {
        let x = g.f32_in(-1e6, 1e6);
        let f = &fs[g.below(fs.len())];
        let q = f.quantize(x);
        assert_eq!(f.quantize(q).to_bits(), q.to_bits(), "case {}", g.case);
    });
}

/// The quantized value is the nearest grid point (within float fuzz).
#[test]
fn minifloat_quantize_is_nearest() {
    let fs = formats();
    cases(512, |g| {
        let x = g.f32_in(-500.0, 500.0);
        let f = &fs[g.below(fs.len())];
        let q = f.quantize(x);
        let a = x.abs().min(f.max_value());
        let best = f
            .values()
            .into_iter()
            .map(|v| (v - a).abs())
            .fold(f32::INFINITY, f32::min);
        assert!(
            (q.abs() - a).abs() <= best + best.abs() * 1e-6 + 1e-12,
            "case {}: x={x} q={q}",
            g.case
        );
    });
}

/// encode -> decode -> encode is stable for every code of every format.
#[test]
fn minifloat_code_roundtrip() {
    for f in &formats() {
        for code in 0u16..=255 {
            let masked = code as u8 & ((1u16 << f.total_bits()) - 1) as u8;
            let v = f.decode(masked);
            if v.is_finite() {
                assert_eq!(f.decode(f.encode(v)), v, "format {f} code {code}");
            }
        }
    }
}

/// Quantization error is bounded by half the local step (no clipping
/// regime).
#[test]
fn minifloat_error_bound() {
    let fs = formats();
    cases(512, |g| {
        let x = g.f32_in(0.01, 1.0);
        let f = &fs[g.below(fs.len())];
        let a = x * f.max_value() * 0.99;
        let q = f.quantize_magnitude(a);
        let step = (a * (-(f.man_bits() as f32)).exp2()).max(f.min_subnormal());
        assert!(
            (q - a).abs() <= step * 0.5 + 1e-12,
            "case {}: a={a} q={q} step={step}",
            g.case
        );
    });
}

/// f16 round-trip: every finite decode encodes back to the same value.
#[test]
fn f16_roundtrip() {
    for bits in 0u16..=u16::MAX {
        let v = f16_bits_to_f32(bits);
        if v.is_finite() {
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)), v, "bits {bits:#x}");
        }
    }
}

/// quantize_f16 is idempotent and monotone.
#[test]
fn f16_idempotent_monotone() {
    cases(512, |g| {
        let a = g.f32_in(-60000.0, 60000.0);
        let b = g.f32_in(-60000.0, 60000.0);
        let qa = quantize_f16(a);
        assert_eq!(quantize_f16(qa), qa, "case {}", g.case);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(quantize_f16(lo) <= quantize_f16(hi), "case {}", g.case);
    });
}

/// E8M0 round-trips every in-range exponent.
#[test]
fn e8m0_roundtrip() {
    for e in -127i32..=127 {
        let s = E8M0::from_exponent(e);
        assert_eq!(s.exponent(), e);
        assert_eq!(E8M0::from_bits(s.to_bits()), s);
    }
}

/// Symmetric int codecs: |error| <= scale/2 inside the range.
#[test]
fn int_codec_error_bound() {
    cases(512, |g| {
        let x = g.f32_in(-100.0, 100.0);
        let bits = g.int_in(2, 8) as u32;
        let scale = g.f32_in(0.01, 10.0);
        let c = IntCodec::new(bits);
        let q = c.quantize(x, scale);
        if x.abs() <= c.max_code() as f32 * scale {
            assert!(
                (q - x).abs() <= scale / 2.0 + scale * 1e-5,
                "case {}",
                g.case
            );
        } else {
            assert_eq!(q.abs(), c.max_code() as f32 * scale, "case {}", g.case);
        }
    });
}

/// Nibble packing is invertible for any code sequence, and the
/// allocation-free `_into` variants agree with the allocating ones.
#[test]
fn nibble_roundtrip() {
    cases(256, |g| {
        let codes = g.vec_u8_below(16, 0, 199);
        let packed = pack_nibbles(&codes);
        assert_eq!(
            unpack_nibbles(&packed, codes.len()),
            codes,
            "case {}",
            g.case
        );
        let mut buf = vec![0u8; codes.len().div_ceil(2)];
        pack_nibbles_into(&codes, &mut buf);
        assert_eq!(buf, packed, "case {}", g.case);
        let mut out = vec![0u8; codes.len()];
        unpack_nibbles_into(&buf, &mut out);
        assert_eq!(out, codes, "case {}", g.case);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(nibble_at(&packed, i), c, "case {} nibble {i}", g.case);
        }
    });
}

/// The 2-bit stream accessors round-trip any field sequence.
#[test]
fn two_bit_stream_roundtrip() {
    cases(256, |g| {
        let fields = g.vec_u8_below(4, 0, 100);
        let mut buf = vec![0u8; (fields.len() * 2).div_ceil(8)];
        for (i, &f) in fields.iter().enumerate() {
            set_two_bits(&mut buf, i, f);
        }
        for (i, &f) in fields.iter().enumerate() {
            assert_eq!(two_bits_at(&buf, i), f, "case {} field {i}", g.case);
        }
    });
}

/// Arbitrary-width bit fields round-trip through the writer/reader.
#[test]
fn bitfield_roundtrip() {
    cases(256, |g| {
        let n = g.below(50);
        let fields: Vec<(u32, u32)> = (0..n)
            .map(|_| {
                let width = g.int_in(1, 32) as u32;
                (g.u32(), width)
            })
            .collect();
        let mut w = BitWriter::new();
        for &(v, width) in &fields {
            w.push(v & ((1u64 << width) - 1) as u32, width);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &fields {
            assert_eq!(
                r.read(width),
                v & ((1u64 << width) - 1) as u32,
                "case {}",
                g.case
            );
        }
    });
}

/// Codebook quantization returns a grid member with minimal distance.
#[test]
fn codebook_nearest() {
    cases(256, |g| {
        let n = 1 + g.below(19);
        let mut grid = g.vec_f32(n, 0.0, 100.0);
        grid.push(0.0);
        let x = g.f32_in(-120.0, 120.0);
        let cb = Codebook::new("p", grid).unwrap();
        let q = cb.quantize(x);
        assert!(cb.magnitudes().contains(&q.abs()), "case {}", g.case);
        let best = cb
            .magnitudes()
            .iter()
            .map(|v| (v - x.abs()).abs())
            .fold(f32::INFINITY, f32::min);
        assert!((q.abs() - x.abs()).abs() <= best + 1e-5, "case {}", g.case);
    });
}

/// The integer decode LUTs agree with the float codec for every code and
/// metadata value (the packed GEMM trusts these tables blindly).
#[test]
fn decode_luts_match_float_codec() {
    let f4 = m2xfp_repro::formats::fp4();
    for c in 0..16u8 {
        assert_eq!(tables::FP4_X8[c as usize] as f32, f4.decode(c) * 8.0);
        assert_eq!(tables::FP4_X2[c as usize] as f32, f4.decode(c) * 2.0);
        let sign = if c & 0x8 != 0 { -1.0f32 } else { 1.0 };
        for meta in 0..4u8 {
            assert_eq!(
                tables::EXTRA_X8[c as usize][meta as usize] as f32,
                sign * tables::decode_extra_mantissa(c & 0x7, meta) * 8.0,
                "code {c} meta {meta}"
            );
        }
    }
}
