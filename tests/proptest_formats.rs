//! Property-based tests on the number-format substrate: codec round-trips,
//! nearest-value quantization bounds, packing invertibility.

use m2xfp_repro::formats::{
    codebook::Codebook,
    e8m0::E8M0,
    half::{f16_bits_to_f32, f32_to_f16_bits, quantize_f16},
    int::IntCodec,
    minifloat::{Minifloat, SpecialValues},
    packing::{pack_nibbles, unpack_nibbles, BitReader, BitWriter},
};
use proptest::prelude::*;

fn formats() -> Vec<Minifloat> {
    vec![
        Minifloat::new(2, 1, SpecialValues::None).unwrap(),
        Minifloat::new(2, 3, SpecialValues::None).unwrap(),
        Minifloat::new(3, 2, SpecialValues::None).unwrap(),
        Minifloat::new(3, 3, SpecialValues::None).unwrap(),
        Minifloat::new(4, 3, SpecialValues::NanOnly).unwrap(),
        Minifloat::new(5, 2, SpecialValues::Ieee).unwrap(),
    ]
}

proptest! {
    /// quantize() output is always on the grid: re-quantizing is identity.
    #[test]
    fn minifloat_quantize_idempotent(x in -1e6f32..1e6f32, fi in 0usize..6) {
        let f = &formats()[fi];
        let q = f.quantize(x);
        prop_assert_eq!(f.quantize(q).to_bits(), q.to_bits());
    }

    /// The quantized value is the nearest grid point (within float fuzz).
    #[test]
    fn minifloat_quantize_is_nearest(x in -500f32..500f32, fi in 0usize..6) {
        let f = &formats()[fi];
        let q = f.quantize(x);
        let a = x.abs().min(f.max_value());
        let best = f
            .values()
            .into_iter()
            .map(|v| (v - a).abs())
            .fold(f32::INFINITY, f32::min);
        prop_assert!((q.abs() - a).abs() <= best + best.abs() * 1e-6 + 1e-12);
    }

    /// encode -> decode -> encode is stable for every code.
    #[test]
    fn minifloat_code_roundtrip(code in 0u8..=255, fi in 0usize..6) {
        let f = &formats()[fi];
        let masked = code & ((1u16 << f.total_bits()) - 1) as u8;
        let v = f.decode(masked);
        if v.is_finite() {
            prop_assert_eq!(f.decode(f.encode(v)), v);
        }
    }

    /// Quantization error is bounded by half the local step (no clipping
    /// regime).
    #[test]
    fn minifloat_error_bound(x in 0.01f32..1.0f32, fi in 0usize..6) {
        let f = &formats()[fi];
        // Scale x into the format's safe range.
        let a = x * f.max_value() * 0.99;
        let q = f.quantize_magnitude(a);
        // The worst-case step at magnitude a is a * 2^-man_bits (normal
        // range) or the subnormal step.
        let step = (a * (-(f.man_bits() as f32)).exp2()).max(f.min_subnormal());
        prop_assert!((q - a).abs() <= step * 0.5 + 1e-12, "a={a} q={q} step={step}");
    }

    /// f16 round-trip: every finite decode encodes back to the same value.
    #[test]
    fn f16_roundtrip(bits in 0u16..=u16::MAX) {
        let v = f16_bits_to_f32(bits);
        if v.is_finite() {
            prop_assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)), v);
        }
    }

    /// quantize_f16 is idempotent and monotone.
    #[test]
    fn f16_idempotent_monotone(a in -60000f32..60000f32, b in -60000f32..60000f32) {
        let qa = quantize_f16(a);
        prop_assert_eq!(quantize_f16(qa), qa);
        if a <= b {
            prop_assert!(quantize_f16(a) <= quantize_f16(b));
        }
    }

    /// E8M0 round-trips every in-range exponent.
    #[test]
    fn e8m0_roundtrip(e in -127i32..=127) {
        let s = E8M0::from_exponent(e);
        prop_assert_eq!(s.exponent(), e);
        prop_assert_eq!(E8M0::from_bits(s.to_bits()), s);
    }

    /// Symmetric int codecs: |error| <= scale/2 inside the range.
    #[test]
    fn int_codec_error_bound(x in -100f32..100f32, bits in 2u32..9, scale in 0.01f32..10.0f32) {
        let c = IntCodec::new(bits);
        let q = c.quantize(x, scale);
        if x.abs() <= c.max_code() as f32 * scale {
            prop_assert!((q - x).abs() <= scale / 2.0 + scale * 1e-5);
        } else {
            // Saturation: output is the extreme code.
            prop_assert_eq!(q.abs(), c.max_code() as f32 * scale);
        }
    }

    /// Nibble packing is invertible for any code sequence.
    #[test]
    fn nibble_roundtrip(codes in proptest::collection::vec(0u8..16, 0..200)) {
        let packed = pack_nibbles(&codes);
        prop_assert_eq!(unpack_nibbles(&packed, codes.len()), codes);
    }

    /// Arbitrary-width bit fields round-trip through the writer/reader.
    #[test]
    fn bitfield_roundtrip(fields in proptest::collection::vec((0u32..=u32::MAX, 1u32..=32), 0..50)) {
        let mut w = BitWriter::new();
        for &(v, width) in &fields {
            w.push(v & ((1u64 << width) - 1) as u32, width);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &fields {
            prop_assert_eq!(r.read(width), v & ((1u64 << width) - 1) as u32);
        }
    }

    /// Codebook quantization returns a grid member with minimal distance.
    #[test]
    fn codebook_nearest(
        mut grid in proptest::collection::vec(0.0f32..100.0, 1..20),
        x in -120f32..120f32,
    ) {
        grid.push(0.0);
        let cb = Codebook::new("p", grid).unwrap();
        let q = cb.quantize(x);
        prop_assert!(cb.magnitudes().contains(&q.abs()));
        let best = cb
            .magnitudes()
            .iter()
            .map(|v| (v - x.abs()).abs())
            .fold(f32::INFINITY, f32::min);
        prop_assert!((q.abs() - x.abs()).abs() <= best + 1e-5);
    }
}
