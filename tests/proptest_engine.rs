//! Property-based tests on the unified engine API: execution-backend
//! bit-equivalence (linear, attention, whole model), the prefill/decode
//! session contract, and the branch-free online activation encoder's
//! bit-identity against the float-codec oracle.

use m2xfp_repro::core::activation::{quantize_group_into, quantize_group_into_reference};
use m2xfp_repro::core::backend::BackendKind;
use m2xfp_repro::core::format::PackedWeightTensor;
use m2xfp_repro::core::{M2xfpConfig, ScaleRule};
use m2xfp_repro::nn::linear::QuantizedLinear;
use m2xfp_repro::nn::model::ModelBuilder;
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::tensor::Matrix;
use m2xfp_repro::testkit::cases;

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}");
    }
}

/// The packed, grouped and reference backends produce bit-identical linear
/// forwards on ragged reduction dims, every scale rule, both metadata
/// granularities (4 and 2 subgroups per group) and fixed/adaptive scales.
#[test]
fn backends_bit_identical_on_linear_forwards() {
    cases(24, |g| {
        let cfg = M2xfpConfig {
            subgroup_size: if g.below(2) == 0 { 8 } else { 16 },
            scale_rule: ScaleRule::ALL[g.below(5)],
            adaptive_weight_scale: g.below(2) == 0,
            ..M2xfpConfig::default()
        };
        // Ragged K exercises the zero-padded trailing groups of every
        // kernel (the raw backend API has no alignment requirement).
        let k = 32 + g.below(70);
        let n = 1 + g.below(12);
        let m = 1 + g.below(6);
        let scale = [0.03f32, 1.0, 40.0][g.below(3)];
        let w = {
            let mut vals = g.vec_f32(n * k, -2.0, 2.0);
            vals.iter_mut().for_each(|v| *v *= scale);
            Matrix::from_vec(n, k, vals)
        };
        let x = Matrix::from_vec(m, k, g.vec_f32(m * k, -4.0, 4.0));
        let packed = PackedWeightTensor::quantize_parallel(&w, cfg);
        let base = {
            let be = BackendKind::Packed.backend();
            be.forward(&x, &be.prepare(packed.clone())).unwrap()
        };
        for kind in [BackendKind::Grouped, BackendKind::Reference] {
            let be = kind.backend();
            let y = be.forward(&x, &be.prepare(packed.clone())).unwrap();
            assert_bits_eq(&base, &y, &format!("case {} {:?}", g.case, kind));
        }
    });
}

/// Builds one tiny model per backend (same profile/config/seed) and checks
/// `forward_batch` is bit-identical across all three engines, across
/// metadata granularities and scale rules — the acceptance bar for the
/// engine abstraction on a ≥4-layer synthetic model.
#[test]
fn backends_bit_identical_on_whole_model() {
    let profile = ModelProfile::llama3_8b();
    for (sg, rule) in [
        (8usize, ScaleRule::Floor),
        (16, ScaleRule::Ceil),
        (8, ScaleRule::Rtn2),
    ] {
        let cfg = M2xfpConfig {
            subgroup_size: sg,
            scale_rule: rule,
            ..M2xfpConfig::default()
        };
        let x = m2xfp_repro::nn::synth::activation_matrix(&profile, 0, 6, 64)
            .map(|v| (v * 0.25).tanh());
        let mut outs = Vec::new();
        for kind in BackendKind::ALL {
            let mut model = ModelBuilder::scaled(&profile, 64, 4)
                .config(cfg)
                .backend(kind)
                .build()
                .unwrap();
            assert_eq!(model.backend(), kind);
            assert_eq!(model.layer_count(), 4);
            outs.push(model.forward_batch(&x).unwrap());
        }
        for o in &outs[1..] {
            assert_bits_eq(&outs[0], o, &format!("model sg={sg} rule={rule:?}"));
        }
    }
}

/// Any prefill/decode split of a token stream reproduces the one-shot
/// batched forward bit for bit — the session-state contract of
/// `QuantizedModel` (KV rows quantize independently; every kernel computes
/// each output element identically).
#[test]
fn prefill_decode_split_matches_batch() {
    let profile = ModelProfile::llama3_8b();
    let total = 7usize;
    let x = m2xfp_repro::nn::synth::activation_matrix(&profile, 0, total, 64)
        .map(|v| (v * 0.25).tanh());
    let mut model = ModelBuilder::scaled(&profile, 64, 4).build().unwrap();
    let batch = model.forward_batch(&x).unwrap();
    for split in [1usize, 3, 6] {
        model.reset();
        let head = Matrix::from_fn(split, 64, |r, c| x[(r, c)]);
        let mut rows = model.prefill(&head).unwrap().into_vec();
        for t in split..total {
            let xt = Matrix::from_fn(1, 64, |_, c| x[(t, c)]);
            rows.extend(model.decode(&xt).unwrap().into_vec());
        }
        assert_eq!(model.seq_len(), total);
        let inc = Matrix::from_vec(total, 64, rows);
        assert_bits_eq(&batch, &inc, &format!("split {split}"));
    }
}

/// Layers built on different backends from the same weights expose
/// byte-identical packed streams (the canonical bits are backend-free).
#[test]
fn layer_weights_canonical_across_backends() {
    cases(8, |g| {
        let cfg = M2xfpConfig::default();
        let k = 32 * (1 + g.below(3));
        let w = Matrix::from_vec(6, k, g.vec_f32(6 * k, -1.5, 1.5));
        let layers: Vec<QuantizedLinear> = BackendKind::ALL
            .iter()
            .map(|&b| QuantizedLinear::with_backend(&w, cfg, b).unwrap())
            .collect();
        for l in &layers[1..] {
            assert_eq!(
                layers[0].packed_weights(),
                l.packed_weights(),
                "case {}",
                g.case
            );
        }
    });
}

/// The branch-free online activation encoder (`fp4_encode` +
/// `fp6_mag_code`, reciprocal scaling) is bit-identical to the float-codec
/// oracle on random groups across lengths, magnitudes and scale rules.
#[test]
fn fast_activation_encode_matches_float_oracle() {
    cases(400, |g| {
        let cfg = m2xfp_repro::core::GroupConfig::new(32, [4usize, 8, 16][g.below(3)]);
        let rule = ScaleRule::ALL[g.below(5)];
        let len = 1 + g.below(32);
        let mag = [1e-30f32, 1e-3, 1.0, 1e3, 1e30][g.below(5)];
        let mut x = g.vec_f32(len, -4.0, 4.0);
        x.iter_mut().for_each(|v| *v *= mag);
        if g.below(8) == 0 {
            x[0] = 0.0; // exercise all-zero-ish groups
        }
        let nsub = cfg.subgroup_count(len);
        let (mut c1, mut m1) = (vec![0u8; len], vec![0u8; nsub]);
        let (mut c2, mut m2) = (vec![0u8; len], vec![0u8; nsub]);
        let s1 = quantize_group_into(&x, cfg, rule, &mut c1, &mut m1);
        let s2 = quantize_group_into_reference(&x, cfg, rule, &mut c2, &mut m2);
        assert_eq!(s1, s2, "case {}: scale", g.case);
        assert_eq!(c1, c2, "case {}: codes", g.case);
        assert_eq!(m1, m2, "case {}: meta", g.case);
    });
}
