//! Cross-crate integration tests: the full pipeline from synthetic LLM
//! tensors through quantization formats, the bit-exact GEMM, the hardware
//! functional units and the accelerator model.

use m2xfp_repro::accel::arch::{AcceleratorConfig, AcceleratorKind};
use m2xfp_repro::accel::energy::{energy_of, EnergyModel};
use m2xfp_repro::accel::timing::run_model;
use m2xfp_repro::accel::units::{PeTile, QuantizationEngine, TopOneDecodeUnit};
use m2xfp_repro::baselines::{self, MxQuantizer, Nvfp4};
use m2xfp_repro::core::format::{ActTensor, WeightTensor};
use m2xfp_repro::core::gemm::{qgemm, qgemm_reference};
use m2xfp_repro::core::quantizer::{M2xfpQuantizer, TensorQuantizer};
use m2xfp_repro::core::M2xfpConfig;
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::propagate::{evaluate, EvalConfig};
use m2xfp_repro::nn::synth;
use m2xfp_repro::tensor::stats;

/// The paper's central accuracy ordering must hold end to end on every
/// model profile: M2XFP < NVFP4 < MXFP4 < SMX4 in W4A4 output error.
#[test]
fn format_ordering_holds_across_models() {
    let cfg = EvalConfig::tiny();
    for model in ModelProfile::table2_models() {
        let err = |q: &dyn TensorQuantizer| evaluate(&model, q, &cfg).mean_nmse;
        let m2 = err(&M2xfpQuantizer::default());
        let nv = err(&Nvfp4::default());
        let mx = err(&MxQuantizer::mxfp4());
        let smx = err(&baselines::smx::Smx::smx4());
        assert!(m2 < mx, "{}: m2xfp {m2} !< mxfp4 {mx}", model.name);
        assert!(nv < mx, "{}: nvfp4 {nv} !< mxfp4 {mx}", model.name);
        assert!(mx < smx, "{}: mxfp4 {mx} !< smx4 {smx}", model.name);
    }
}

/// Synthetic LLM tensors flow through the packed format, the fixed-point
/// GEMM and the reference GEMM with exact agreement.
#[test]
fn packed_gemm_pipeline_is_exact_on_llm_tensors() {
    let cfg = M2xfpConfig::default();
    let model = ModelProfile::mistral_7b();
    let x = synth::activation_matrix(&model, 3, 8, 96);
    let w = synth::weight_matrix(&model, synth::LayerKind::Q, 3, 12, 96);
    let xq = ActTensor::quantize(&x, cfg);
    let wq = WeightTensor::quantize(&w, cfg);
    let fixed = qgemm(&xq, &wq);
    let float = qgemm_reference(&xq, &wq);
    assert_eq!(fixed, float);
    // And the quantized result tracks the full-precision product.
    let y = x.matmul(&w.transpose());
    let e = stats::nmse(y.as_slice(), fixed.as_slice());
    assert!(e < 0.05, "relative error {e}");
}

/// The hardware units (decode + QE + PE) reproduce the algorithmic path on
/// packed-and-restored tensors — the full §5 loop.
#[test]
fn hardware_units_match_algorithm_through_pack_roundtrip() {
    let cfg = M2xfpConfig::default();
    let model = ModelProfile::llama2_7b();
    let x = synth::activation_matrix(&model, 1, 2, 32);
    let w = synth::weight_matrix(&model, synth::LayerKind::Up, 1, 2, 32);

    // Quantization engine output == Algorithm 1 == unpack(pack(...)).
    let qe = QuantizationEngine::default();
    let hw_group = qe.quantize(x.row(0));
    let xq = ActTensor::quantize(&x, cfg);
    assert_eq!(&hw_group, &xq.groups()[0]);
    let bytes = xq.pack().unwrap();
    let restored = ActTensor::unpack(&bytes, 2, 32, cfg).unwrap();
    assert_eq!(xq, restored);

    // PE pipeline over the restored tensor == qgemm.
    let wq = WeightTensor::quantize(&w, cfg);
    let want = qgemm(&restored, &wq);
    let pe = PeTile;
    for i in 0..2 {
        for j in 0..2 {
            let xg = &restored.groups()[i];
            let wg = &wq.groups()[j];
            let mut acc = 0i64;
            for (s, (xs, ws)) in xg.codes.chunks(8).zip(wg.codes.chunks(8)).enumerate() {
                let (t, _) = TopOneDecodeUnit.top1(xs);
                acc += pe.subgroup_mac(ws, xs, t, xg.meta[s], wg.sg_em[s]);
            }
            let got = pe.dequantize(acc, xg.scale.exponent(), wg.scale.exponent()) as f32;
            assert_eq!(got.to_bits(), want[(i, j)].to_bits(), "({i},{j})");
        }
    }
}

/// Accelerator model consistency: per-model latency ordering matches the
/// per-format byte/pass costs for every profile in the Tbl. 3 set.
#[test]
fn accelerator_ordering_consistent_across_models() {
    let em = EnergyModel::default();
    for model in ModelProfile::table3_models() {
        let mut last_latency = 0.0;
        // ALL is ordered worst-to-best by design (OliVe ... M2XFP)?
        // Not strictly; just check M2XFP is the minimum of the set.
        let mut m2_latency = f64::INFINITY;
        let mut m2_energy = f64::INFINITY;
        let mut max_latency: f64 = 0.0;
        let mut max_energy: f64 = 0.0;
        for kind in AcceleratorKind::ALL {
            let cfg = AcceleratorConfig::of(kind);
            let run = run_model(&model, &cfg, 2048);
            let e = energy_of(&run.total, &cfg, &em).total();
            if kind == AcceleratorKind::M2xfp {
                m2_latency = run.total.seconds;
                m2_energy = e;
            }
            max_latency = max_latency.max(run.total.seconds);
            max_energy = max_energy.max(e);
            last_latency = run.total.seconds;
        }
        let _ = last_latency;
        assert!(m2_latency < max_latency, "{}", model.name);
        assert!(m2_energy < max_energy, "{}", model.name);
    }
}

/// The EBW bookkeeping is consistent between the format crates and the
/// accelerator configs.
#[test]
fn ebw_consistent_between_format_and_accelerator() {
    let m2_fmt = M2xfpQuantizer::default();
    let m2_acc = AcceleratorConfig::of(AcceleratorKind::M2xfp);
    assert!((m2_fmt.weight_ebw() - m2_acc.weight_ebw).abs() < 1e-12);
    assert!((m2_fmt.activation_ebw() - m2_acc.act_ebw).abs() < 1e-12);
    let ms_fmt = baselines::microscopiq::MicroScopiQ::default();
    let ms_acc = AcceleratorConfig::of(AcceleratorKind::MicroScopiQ);
    assert!((ms_fmt.weight_ebw() - ms_acc.weight_ebw).abs() < 1e-12);
}

/// Metadata augmentation generalizes: it must improve NVFP4 exactly as it
/// improves MXFP4 (Tbl. 6's claim), measured on the same model.
#[test]
fn metadata_improves_both_bases() {
    let cfg = EvalConfig::tiny();
    let model = ModelProfile::llama3_8b();
    let mx = evaluate(&model, &MxQuantizer::mxfp4(), &cfg).mean_nmse;
    let m2 = evaluate(&model, &M2xfpQuantizer::default(), &cfg).mean_nmse;
    let nv = evaluate(&model, &Nvfp4::default(), &cfg).mean_nmse;
    let m2nv = evaluate(&model, &baselines::M2Nvfp4::default(), &cfg).mean_nmse;
    assert!(m2 < mx, "metadata on E8M0 base");
    assert!(m2nv < nv, "metadata on FP8 base");
}

/// Determinism across the whole stack: same seeds, same bytes.
#[test]
fn full_pipeline_is_deterministic() {
    let model = ModelProfile::falcon_7b();
    let cfg = M2xfpConfig::default();
    let run = || {
        let x = synth::activation_matrix(&model, 0, 4, 64);
        ActTensor::quantize(&x, cfg).pack().unwrap()
    };
    assert_eq!(run(), run());
}
