//! Property-based tests on the telemetry trace: across random request
//! mixes, admission windows, bounded queues, arrival interleavings,
//! mid-flight cancellations and tight deadlines, the drained trace must
//! reconstruct **every** request's exact lifecycle — one submission
//! event, at most one admission, exactly one terminal event agreeing with
//! the typed outcome, and one token instant per decoded row. The trace is
//! a transcript of what the scheduler did, not a sample of it.

use m2xfp_repro::nn::model::{ModelBuilder, ModelWeights};
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::serve::{RequestOptions, RequestOutcome, ServeConfig, Server};
use m2xfp_repro::telemetry::{stage, DrainedRing, TraceEvent};
use m2xfp_repro::tensor::Matrix;
use m2xfp_repro::testkit::cases;
use std::sync::Arc;

fn prompt(tokens: usize, seed: usize, hidden: usize) -> Matrix {
    activation_matrix(&ModelProfile::llama3_8b(), seed, tokens, hidden).map(|v| (v * 0.25).tanh())
}

/// All lifecycle events for request `id`, in ring push order (each ring's
/// slice is its emission order; a request's events live on the engine
/// ring except the submission/rejection instants, which the api ring
/// carries).
fn lifecycle_events(rings: &[DrainedRing], id: u64) -> Vec<&TraceEvent> {
    rings
        .iter()
        .flat_map(|r| r.events.iter())
        .filter(|e| e.req == id as u32)
        .filter(|e| (stage::REQ_SUBMITTED..=stage::REQ_FAILED).contains(&e.stage))
        .collect()
}

fn count(evs: &[&TraceEvent], s: u16) -> usize {
    evs.iter().filter(|e| e.stage == s).count()
}

/// The one terminal stage a request's trace must carry, given its typed
/// outcome.
fn terminal_stage(outcome: &RequestOutcome) -> u16 {
    match outcome {
        RequestOutcome::Finished(_) => stage::REQ_FINISHED,
        RequestOutcome::Cancelled { .. } => stage::REQ_CANCELLED,
        RequestOutcome::DeadlineExceeded { .. } => stage::REQ_DEADLINE,
        RequestOutcome::Rejected { .. } => stage::REQ_REJECTED,
        RequestOutcome::Failed { .. } => stage::REQ_FAILED,
    }
}

/// Decode tokens the outcome says were produced before the request left
/// the engine — the trace must carry exactly this many token instants.
fn outcome_tokens(outcome: &RequestOutcome) -> u64 {
    match outcome {
        RequestOutcome::Finished(c) => c.decoded.rows() as u64,
        RequestOutcome::Cancelled { decoded_tokens }
        | RequestOutcome::DeadlineExceeded { decoded_tokens } => *decoded_tokens,
        RequestOutcome::Rejected { .. } | RequestOutcome::Failed { .. } => 0,
    }
}

/// Every request's exact lifecycle is reconstructible from the drained
/// trace, for any interleaving of arrivals, completions, cancellations,
/// deadline expiries and admission-control rejections.
#[test]
fn trace_reconstructs_every_lifecycle() {
    cases(8, |g| {
        let layers = 1 + g.below(2);
        let weights: Arc<ModelWeights> = Arc::new(
            ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, layers)
                .build_weights()
                .unwrap(),
        );
        let server = Server::start(
            Arc::clone(&weights),
            ServeConfig {
                max_batch: 1 + g.below(4),
                worker_threads: 1 + g.below(2),
                queue_capacity: 2 + g.below(6),
                telemetry: true,
                ..ServeConfig::default()
            },
        );

        // Random open-loop wave: enough requests that the bounded queue
        // can shed some, a random subset cancelled right after arrival,
        // an occasional too-tight step deadline, and one mid-wave wait so
        // later arrivals meet a warm, possibly busy engine.
        let n_requests = 1 + g.below(8);
        let wait_at = g.below(n_requests);
        let mut ids: Vec<u64> = Vec::new();
        let mut outcomes: Vec<Option<RequestOutcome>> = Vec::new();
        for i in 0..n_requests {
            let p = prompt(1 + g.below(4), g.case * 97 + i, 64);
            let opts = if g.below(5) == 0 {
                RequestOptions {
                    deadline_steps: Some(g.below(2) as u64),
                    ..RequestOptions::default()
                }
            } else {
                RequestOptions::default()
            };
            let id = server.submit_with(p, g.below(5), opts).unwrap();
            if g.below(4) == 0 {
                server.cancel(id).unwrap();
            }
            ids.push(id);
            outcomes.push(None);
            if i == wait_at {
                outcomes[i] = Some(server.wait(id).unwrap());
            }
        }
        for (i, id) in ids.iter().enumerate() {
            if outcomes[i].is_none() {
                outcomes[i] = Some(server.wait(*id).unwrap());
            }
        }

        // Every id is resolved, so the engine is idle and the rings hold
        // each request's complete lifecycle.
        let rings = server.telemetry().drain();
        assert_eq!(
            rings.iter().map(|r| r.dropped).sum::<u64>(),
            0,
            "case {}: ring overflow would make the transcript lossy",
            g.case
        );
        for (i, (id, outcome)) in ids.iter().zip(&outcomes).enumerate() {
            let outcome = outcome.as_ref().unwrap();
            let evs = lifecycle_events(&rings, *id);
            let ctx = format!(
                "case {} request {i} -> {}",
                g.case,
                stage::name(terminal_stage(outcome))
            );
            assert_eq!(count(&evs, stage::REQ_SUBMITTED), 1, "{ctx}: submitted");
            assert!(count(&evs, stage::REQ_ADMITTED) <= 1, "{ctx}: admitted");
            let terminals = [
                stage::REQ_FINISHED,
                stage::REQ_CANCELLED,
                stage::REQ_DEADLINE,
                stage::REQ_FAILED,
                stage::REQ_REJECTED,
            ];
            let total: usize = terminals.iter().map(|s| count(&evs, *s)).sum();
            assert_eq!(total, 1, "{ctx}: exactly one terminal event, got {evs:?}");
            assert_eq!(
                count(&evs, terminal_stage(outcome)),
                1,
                "{ctx}: trace terminal agrees with the typed outcome"
            );
            // One token instant per decoded row the outcome reports, with
            // sequential values in emission order.
            let toks: Vec<u64> = evs
                .iter()
                .filter(|e| e.stage == stage::REQ_TOKEN)
                .map(|e| e.value)
                .collect();
            assert_eq!(
                toks.len() as u64,
                outcome_tokens(outcome),
                "{ctx}: token instants"
            );
            assert!(
                toks.iter().enumerate().all(|(j, v)| *v == j as u64),
                "{ctx}: token indices {toks:?}"
            );
            match outcome {
                RequestOutcome::Finished(c) => {
                    assert_eq!(count(&evs, stage::REQ_ADMITTED), 1, "{ctx}");
                    assert_eq!(count(&evs, stage::REQ_PREFILL), 1, "{ctx}");
                    assert!(
                        evs.iter()
                            .find(|e| e.stage == stage::REQ_FINISHED)
                            .is_some_and(|e| e.value == c.decoded.rows() as u64),
                        "{ctx}: finished event carries the decoded-token count"
                    );
                }
                RequestOutcome::Rejected { .. } => {
                    assert_eq!(count(&evs, stage::REQ_ADMITTED), 0, "{ctx}");
                    assert_eq!(count(&evs, stage::REQ_PREFILL), 0, "{ctx}");
                }
                _ => {
                    // A cancel/expiry can land before or after admission;
                    // if it was admitted and decoded anything, prefill
                    // must have been traced first.
                    assert!(count(&evs, stage::REQ_PREFILL) <= 1, "{ctx}");
                    if !toks.is_empty() {
                        assert_eq!(count(&evs, stage::REQ_PREFILL), 1, "{ctx}");
                    }
                }
            }
            // Within the engine ring, a request's events never go
            // backwards in time (push order is emission order, and every
            // recorded timestamp is at or after the previous one's).
            let engine: Vec<&TraceEvent> = rings
                .iter()
                .filter(|r| r.name == "engine")
                .flat_map(|r| r.events.iter())
                .filter(|e| {
                    e.req == *id as u32
                        && (stage::REQ_SUBMITTED..=stage::REQ_FAILED).contains(&e.stage)
                })
                .collect();
            assert!(
                engine.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
                "{ctx}: engine-ring timestamps regress: {engine:?}"
            );
        }
    });
}

/// With telemetry disabled nothing is buffered, whatever the workload —
/// the rings must cost nothing when off.
#[test]
fn disabled_telemetry_buffers_nothing() {
    cases(3, |g| {
        let weights: Arc<ModelWeights> = Arc::new(
            ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1)
                .build_weights()
                .unwrap(),
        );
        let server = Server::start(
            Arc::clone(&weights),
            ServeConfig {
                max_batch: 1 + g.below(3),
                telemetry: false,
                ..ServeConfig::default()
            },
        );
        for i in 0..1 + g.below(4) {
            let p = prompt(1 + g.below(3), g.case * 13 + i, 64);
            let id = server.submit(p, g.below(4)).unwrap();
            server.wait(id).unwrap();
        }
        assert_eq!(server.telemetry().buffered(), 0);
        assert!(server
            .telemetry()
            .drain()
            .iter()
            .all(|r| r.events.is_empty()));
    });
}
