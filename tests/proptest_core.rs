//! Property-based tests on the M2XFP core: Algorithm 1 invariants, Sg-EM
//! search optimality, GEMM exactness (grouped and packed), scale-rule laws
//! and EBW accounting.

use m2xfp_repro::core::activation::{dequantize_group, fake_quantize_group, quantize_group};
use m2xfp_repro::core::format::{ActTensor, PackedActTensor, PackedWeightTensor, WeightTensor};
use m2xfp_repro::core::gemm::{
    qgemm, qgemm_packed_inreg, qgemm_packed_planed_scratch, qgemm_packed_threaded, qgemm_reference,
    qgemv_packed, GemmScratch, WeightPlane,
};
use m2xfp_repro::core::strategy::{MetadataStrategy, ScaleMode};
use m2xfp_repro::core::weight;
use m2xfp_repro::core::{GroupConfig, M2xfpConfig, ScaleRule};
use m2xfp_repro::formats::fp4;
use m2xfp_repro::formats::tables::{fp6_candidates, top1_index};
use m2xfp_repro::tensor::Matrix;
use m2xfp_repro::testkit::{cases, Gen};

fn group32(g: &mut Gen) -> Vec<f32> {
    g.vec_f32(32, -64.0, 64.0)
}

/// Algorithm 1: metadata never changes the FP4 codes, the decoder
/// re-identifies the encoder's top-1, and the refined magnitude is one of
/// the bias-clamp candidates for that FP4 code.
#[test]
fn activation_invariants() {
    cases(256, |g| {
        let x = group32(g);
        let cfg = GroupConfig::new(32, 8);
        let gq = quantize_group(&x, cfg, ScaleRule::Floor);
        let f4 = fp4();
        let s = gq.scale.value();
        let plain: Vec<u8> = x.iter().map(|&v| f4.encode(v / s)).collect();
        assert_eq!(&gq.codes, &plain, "case {}", g.case);
        let dq = dequantize_group(&gq, cfg);
        for (sg_idx, sg_codes) in gq.codes.chunks(8).enumerate() {
            let local = top1_index(sg_codes);
            let idx = sg_idx * 8 + local;
            // Non-top elements decode exactly like plain MXFP4.
            for (j, &c) in sg_codes.iter().enumerate() {
                if j == local {
                    continue;
                }
                assert_eq!(dq[sg_idx * 8 + j], f4.decode(c) * s, "case {}", g.case);
            }
            // The refined element is a bias-clamp candidate.
            let cands = fp6_candidates(sg_codes[local] & 7);
            let mag = (dq[idx] / s).abs();
            assert!(
                cands.iter().any(|c| (c - mag).abs() < 1e-6),
                "case {}: mag {} not in {:?}",
                g.case,
                mag,
                cands
            );
        }
    });
}

/// Re-quantization drift is bounded and settles. Algorithm 1 is *not*
/// exactly idempotent: a refined value sitting on an FP4 RNE tie midpoint
/// (the §4.4.1 bad-case region, e.g. 3.5·2^e) re-rounds up a code and the
/// bias clamp shifts it one FP6 step. The honest invariants: (a) one
/// re-quantization moves any element by at most one FP6 step at the shared
/// scale, (b) the third pass equals the second (the drift settles
/// immediately).
#[test]
fn activation_requantization_settles() {
    cases(256, |g| {
        let x = group32(g);
        let cfg = GroupConfig::new(32, 8);
        let once = fake_quantize_group(&x, cfg, ScaleRule::Floor);
        let twice = fake_quantize_group(&once, cfg, ScaleRule::Floor);
        let amax = once.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let s = ScaleRule::Floor.shared_scale(amax, fp4()).value();
        // Largest FP6 (E2M3) step below the FP4 max is 0.5 at unit scale.
        for (a, b) in once.iter().zip(&twice) {
            assert!(
                (a - b).abs() <= 0.5 * s + 1e-6,
                "case {}: {a} -> {b} (scale {s})",
                g.case
            );
        }
        let thrice = fake_quantize_group(&twice, cfg, ScaleRule::Floor);
        assert_eq!(twice, thrice, "case {}", g.case);
    });
}

/// Sg-EM: every stored multiplier code is 0..4, the adaptive search never
/// loses to the fixed scale, and the multiplier search never loses to
/// plain MXFP4 on the same group.
#[test]
fn weight_search_optimality() {
    cases(128, |g| {
        let w = group32(g);
        let cfg = GroupConfig::new(32, 8);
        let gq = weight::quantize_group(&w, cfg, ScaleRule::Floor, true);
        assert!(gq.sg_em.iter().all(|&k| k < 4), "case {}", g.case);
        let sse = |q: &[f32]| -> f64 {
            w.iter()
                .zip(q)
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum()
        };
        let adaptive = sse(&weight::fake_quantize_group(
            &w,
            cfg,
            ScaleRule::Floor,
            true,
        ));
        let fixed = sse(&weight::fake_quantize_group(
            &w,
            cfg,
            ScaleRule::Floor,
            false,
        ));
        assert!(adaptive <= fixed + 1e-9, "case {}", g.case);
        let f4 = fp4();
        let amax = w.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let s = ScaleRule::Floor.shared_scale(amax, f4).value();
        let plain: Vec<f32> = w.iter().map(|&v| f4.quantize(v / s) * s).collect();
        assert!(fixed <= sse(&plain) + 1e-9, "case {}", g.case);
    });
}

/// The fixed-point PE GEMM and the f64 reference agree bit for bit.
#[test]
fn qgemm_exact() {
    cases(128, |g| {
        let xs = g.vec_f32(2 * 32, -16.0, 16.0);
        let ws = g.vec_f32(3 * 32, -4.0, 4.0);
        let cfg = M2xfpConfig::default();
        let x = ActTensor::quantize(&Matrix::from_vec(2, 32, xs), cfg);
        let w = WeightTensor::quantize(&Matrix::from_vec(3, 32, ws), cfg);
        let a = qgemm(&x, &w);
        let b = qgemm_reference(&x, &w);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(a[(i, j)].to_bits(), b[(i, j)].to_bits(), "case {}", g.case);
            }
        }
    });
}

/// The packed three-stream round-trip equals the legacy grouped
/// representation element-for-element — including ragged trailing groups
/// and every stream accessor.
#[test]
fn packed_streams_equal_grouped_representation() {
    cases(96, |g| {
        let cfg = M2xfpConfig::default();
        let rows = 1 + g.below(3);
        let cols = 1 + g.below(100); // frequently ragged
        let data = g.vec_f32(rows * cols, -32.0, 32.0);
        let m = Matrix::from_vec(rows, cols, data);

        let act = ActTensor::quantize(&m, cfg);
        let pact = PackedActTensor::quantize(&m, cfg);
        assert_eq!(PackedActTensor::from_grouped(&act), pact, "case {}", g.case);
        assert_eq!(pact.to_grouped(), act, "case {}", g.case);
        assert_eq!(pact.dequantize(), act.dequantize(), "case {}", g.case);
        for (gi, grp) in act.groups().iter().enumerate() {
            assert_eq!(pact.group_len(gi), grp.codes.len(), "case {}", g.case);
            assert_eq!(pact.group_scale(gi), grp.scale, "case {}", g.case);
            for (i, &c) in grp.codes.iter().enumerate() {
                assert_eq!(pact.code_at(gi, i), c, "case {} g{gi} i{i}", g.case);
            }
            for (sg, &mv) in grp.meta.iter().enumerate() {
                assert_eq!(pact.meta_at(gi, sg), mv, "case {} g{gi} sg{sg}", g.case);
            }
        }

        let wt = WeightTensor::quantize(&m, cfg);
        let pwt = PackedWeightTensor::quantize(&m, cfg);
        assert_eq!(
            PackedWeightTensor::from_grouped(&wt),
            pwt,
            "case {}",
            g.case
        );
        assert_eq!(pwt.to_grouped(), wt, "case {}", g.case);
        assert_eq!(pwt.dequantize(), wt.dequantize(), "case {}", g.case);
    });
}

/// The packed cache-blocked qGEMM equals the f64 reference bit for bit —
/// for any thread count, including ragged trailing groups.
#[test]
fn packed_qgemm_bit_exact() {
    cases(48, |g| {
        let cfg = M2xfpConfig::default();
        let m = 1 + g.below(4);
        let n = 1 + g.below(5);
        let k = 1 + g.below(100); // frequently ragged
        let xm = Matrix::from_vec(m, k, g.vec_f32(m * k, -16.0, 16.0));
        let wm = Matrix::from_vec(n, k, g.vec_f32(n * k, -4.0, 4.0));
        let want = qgemm_reference(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let xp = PackedActTensor::quantize(&xm, cfg);
        let wp = PackedWeightTensor::quantize(&wm, cfg);
        let threads = 1 + g.below(4);
        let got = qgemm_packed_threaded(&xp, &wp, threads);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(
                    got[(i, j)].to_bits(),
                    want[(i, j)].to_bits(),
                    "case {} ({i},{j}) m={m} n={n} k={k} threads={threads}",
                    g.case
                );
            }
        }
    });
}

/// The decode micro-kernels — the `m == 1` GEMV fast path over a cached
/// `WeightPlane` (with its scratch reused across cases, the serving
/// pattern) and the in-register nibble-decode kernel over the raw packed
/// streams — are bit-identical to the f64 reference: ragged trailing
/// groups, both metadata granularities (subgroup 8 and 16), every
/// `ScaleRule`, any thread count, and NR-unaligned output widths.
#[test]
fn decode_kernels_bit_exact() {
    let mut scratch = GemmScratch::new();
    cases(64, |g| {
        let cfg = M2xfpConfig {
            subgroup_size: [8usize, 16][g.below(2)],
            scale_rule: ScaleRule::ALL[g.below(5)],
            ..M2xfpConfig::default()
        };
        let n = 1 + g.below(14); // frequently not a multiple of the register block
        let k = 1 + g.below(100); // frequently ragged
        let xm = Matrix::from_vec(1, k, g.vec_f32(k, -16.0, 16.0));
        let wm = Matrix::from_vec(n, k, g.vec_f32(n * k, -4.0, 4.0));
        let want = qgemm_reference(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let xp = PackedActTensor::quantize(&xm, cfg);
        let wp = PackedWeightTensor::quantize(&wm, cfg);
        let plane = WeightPlane::decode(&wp);
        let gemv = qgemv_packed(&xp, &plane, &mut scratch);
        let threads = 1 + g.below(4);
        let inreg = qgemm_packed_inreg(&xp, &wp, threads);
        let planed = qgemm_packed_planed_scratch(&xp, &plane, threads, &mut scratch);
        for j in 0..n {
            let w = want[(0, j)].to_bits();
            assert_eq!(
                gemv[(0, j)].to_bits(),
                w,
                "case {} gemv j={j} n={n} k={k} sg={} rule={:?}",
                g.case,
                cfg.subgroup_size,
                cfg.scale_rule
            );
            assert_eq!(
                inreg[(0, j)].to_bits(),
                w,
                "case {} inreg j={j} n={n} k={k} threads={threads}",
                g.case
            );
            assert_eq!(planed[(0, j)].to_bits(), w, "case {} planed j={j}", g.case);
        }
    });
}

/// The in-register kernel also matches on multi-row batches (the one-shot
/// `qgemm_packed` route), for any thread count.
#[test]
fn inreg_kernel_bit_exact_on_batches() {
    cases(32, |g| {
        let cfg = M2xfpConfig {
            subgroup_size: [8usize, 16][g.below(2)],
            ..M2xfpConfig::default()
        };
        let m = 1 + g.below(4);
        let n = 1 + g.below(6);
        let k = 1 + g.below(90);
        let xm = Matrix::from_vec(m, k, g.vec_f32(m * k, -16.0, 16.0));
        let wm = Matrix::from_vec(n, k, g.vec_f32(n * k, -4.0, 4.0));
        let want = qgemm_reference(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let got = qgemm_packed_inreg(
            &PackedActTensor::quantize(&xm, cfg),
            &PackedWeightTensor::quantize(&wm, cfg),
            1 + g.below(4),
        );
        for i in 0..m {
            for j in 0..n {
                assert_eq!(
                    got[(i, j)].to_bits(),
                    want[(i, j)].to_bits(),
                    "case {} ({i},{j}) m={m} n={n} k={k}",
                    g.case
                );
            }
        }
    });
}

/// Scale-rule laws: ceil never clips; floor is within one binade below
/// ceil; RTNE == ceil for FP4.
#[test]
fn scale_rule_laws() {
    cases(512, |g| {
        // Log-uniform over ~40 binades around 1.
        let amax = g.f32_in(-66.0, 66.0).exp2();
        let f = fp4();
        let e_floor = ScaleRule::Floor.shared_exponent(amax, f);
        let e_ceil = ScaleRule::Ceil.shared_exponent(amax, f);
        let e_rtne = ScaleRule::Rtne.shared_exponent(amax, f);
        assert_eq!(e_rtne, e_ceil, "case {}", g.case);
        assert!((e_ceil - 1..=e_ceil).contains(&e_floor), "case {}", g.case);
        // Ceil never clips: 6·2^e >= amax.
        assert!(
            6.0 * (e_ceil as f64).exp2() >= amax as f64 * 0.999_999,
            "case {}",
            g.case
        );
    });
}

/// Packed round-trip equals the in-memory representation for any aligned
/// activation tensor (byte-serialization path).
#[test]
fn pack_unpack_roundtrip() {
    cases(128, |g| {
        let xs = g.vec_f32(2 * 64, -8.0, 8.0);
        let cfg = M2xfpConfig::default();
        let t = ActTensor::quantize(&Matrix::from_vec(2, 64, xs), cfg);
        let bytes = t.pack().unwrap();
        let t2 = ActTensor::unpack(&bytes, 2, 64, cfg).unwrap();
        assert_eq!(t, t2, "case {}", g.case);
    });
}

/// EBW accounting: every strategy's budget is FP4+scale plus its
/// documented metadata bits, monotone in subgroup fineness.
#[test]
fn ebw_monotone() {
    for sg_pow in 1u32..=5 {
        let sg = 1usize << sg_pow; // 2..32
        for s in MetadataStrategy::FIG6_SET {
            let coarse = s.bit_budget(GroupConfig::new(32, 32)).ebw();
            let fine = s.bit_budget(GroupConfig::new(32, sg)).ebw();
            assert!(fine >= coarse - 1e-12);
            assert!(coarse >= 4.25); // never below MXFP4
        }
    }
}

/// Strategy fake-quant never increases group error versus plain MXFP4
/// under the fixed shared scale (all strategies only refine).
#[test]
fn strategies_only_refine() {
    cases(96, |g| {
        let x = group32(g);
        let f4 = fp4();
        let amax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let s = ScaleRule::Floor.shared_scale(amax, f4).value();
        let plain_sse: f64 = x
            .iter()
            .map(|&v| {
                let q = f4.quantize(v / s) * s;
                ((v - q) as f64).powi(2)
            })
            .sum();
        for strat in MetadataStrategy::FIG6_SET {
            let q = strat.fake_quantize_group(
                &x,
                GroupConfig::new(32, 8),
                ScaleRule::Floor,
                ScaleMode::Fixed,
            );
            let sse: f64 = x
                .iter()
                .zip(&q)
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum();
            assert!(
                sse <= plain_sse + 1e-9,
                "case {}: {strat}: {sse} > {plain_sse}",
                g.case
            );
        }
    });
}

/// The branch-free FP4 encode agrees with the minifloat codec everywhere:
/// random values across ~80 binades, both signs, plus exact RNE midpoints.
#[test]
fn fast_fp4_encode_matches_codec() {
    let f4 = fp4();
    cases(256, |g| {
        for _ in 0..64 {
            let mant = g.f32_in(-8.0, 8.0);
            let v = mant * ((g.int_in(-40, 40) as f32).exp2());
            assert_eq!(
                m2xfp_repro::formats::tables::fp4_encode(v),
                f4.encode(v),
                "case {} v={v}",
                g.case
            );
        }
        // Exact tie midpoints at a random binade.
        let s = (g.int_in(-30, 30) as f32).exp2();
        for p in [0.25f32, 0.75, 1.25, 1.75, 2.5, 3.5, 5.0] {
            for v in [p * s, -(p * s)] {
                assert_eq!(
                    m2xfp_repro::formats::tables::fp4_encode(v),
                    f4.encode(v),
                    "case {} v={v}",
                    g.case
                );
            }
        }
    });
}

/// The threaded integer-LUT Sg-EM search is bit-identical to the legacy
/// float-codec search (`WeightTensor::quantize_reference`) across random
/// shapes with ragged trailing groups, every `ScaleRule`, fixed and
/// adaptive shared scales, extreme magnitudes and every thread count —
/// and byte-identical across thread counts.
#[test]
fn parallel_lut_weight_search_bit_identical_to_oracle() {
    cases(96, |g| {
        let rows = 1 + g.below(5);
        let cols = 1 + g.below(80); // ragged trailing groups most of the time
        let rule = ScaleRule::ALL[g.below(5)];
        let adaptive = g.below(2) == 1;
        let scale = (g.int_in(-30, 30) as f32).exp2();
        let data = g.vec_f32(rows * cols, -8.0, 8.0);
        let m = Matrix::from_vec(rows, cols, data.iter().map(|&v| v * scale).collect());
        let cfg = M2xfpConfig {
            scale_rule: rule,
            adaptive_weight_scale: adaptive,
            ..M2xfpConfig::default()
        };
        let oracle = PackedWeightTensor::from_grouped(&WeightTensor::quantize_reference(&m, cfg));
        let seq = PackedWeightTensor::quantize(&m, cfg);
        assert_eq!(seq, oracle, "case {} (sequential)", g.case);
        let threads = 1 + g.below(6);
        let par = PackedWeightTensor::quantize_parallel_threaded(&m, cfg, threads);
        assert_eq!(par, oracle, "case {} threads={threads}", g.case);
    });
}

/// The LUT scorer behind the Sg-EM/Sg-EE strategy sweep is bit-identical
/// to the float-codec reference for 1-bit and 2-bit metadata, every scale
/// rule and both shared-scale modes.
#[test]
fn strategy_lut_scorer_bit_identical_to_oracle() {
    cases(128, |g| {
        let x = group32(g);
        let bits = 1 + g.below(2) as u8;
        let strategy = if g.below(2) == 0 {
            MetadataStrategy::SgEm { bits }
        } else {
            MetadataStrategy::SgEe { bits }
        };
        let sg = [2usize, 4, 8, 16, 32][g.below(5)];
        let cfg = GroupConfig::new(32, sg);
        let rule = ScaleRule::ALL[g.below(5)];
        let mode = if g.below(2) == 0 {
            ScaleMode::Fixed
        } else {
            ScaleMode::Adaptive
        };
        let fast = strategy.fake_quantize_group(&x, cfg, rule, mode);
        let oracle = strategy.fake_quantize_group_reference(&x, cfg, rule, mode);
        for (i, (a, b)) in fast.iter().zip(&oracle).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "case {} {strategy} sg={sg} i={i}",
                g.case
            );
        }
    });
}

/// The routed `M2xfpQuantizer::quantize_weights` (threaded LUT search →
/// packed streams → direct dequantize) matches the float reference
/// quantizer bit for bit, so every downstream accuracy table is unchanged.
#[test]
fn routed_weight_quantizer_matches_reference_oracle() {
    use m2xfp_repro::core::quantizer::{M2xfpQuantizer, ReferenceM2xfpQuantizer, TensorQuantizer};
    cases(48, |g| {
        let rows = 1 + g.below(4);
        let cols = 1 + g.below(100);
        let m = Matrix::from_vec(rows, cols, g.vec_f32(rows * cols, -16.0, 16.0));
        let cfg = M2xfpConfig {
            scale_rule: ScaleRule::ALL[g.below(5)],
            adaptive_weight_scale: g.below(2) == 1,
            ..M2xfpConfig::default()
        };
        let routed = M2xfpQuantizer::new(cfg).quantize_weights(&m);
        let oracle = ReferenceM2xfpQuantizer::new(cfg).quantize_weights(&m);
        for (a, b) in routed.as_slice().iter().zip(oracle.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "case {}", g.case);
        }
    });
}
