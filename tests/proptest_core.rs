//! Property-based tests on the M2XFP core: Algorithm 1 invariants, Sg-EM
//! search optimality, GEMM exactness, scale-rule laws and EBW accounting.

use m2xfp_repro::core::activation::{dequantize_group, fake_quantize_group, quantize_group};
use m2xfp_repro::core::format::{ActTensor, WeightTensor};
use m2xfp_repro::core::gemm::{qgemm, qgemm_reference};
use m2xfp_repro::core::strategy::{MetadataStrategy, ScaleMode};
use m2xfp_repro::core::weight;
use m2xfp_repro::core::{GroupConfig, M2xfpConfig, ScaleRule};
use m2xfp_repro::formats::tables::{fp6_candidates, top1_index};
use m2xfp_repro::formats::fp4;
use m2xfp_repro::tensor::Matrix;
use proptest::prelude::*;

fn group32() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-64f32..64f32, 32)
}

proptest! {
    /// Algorithm 1: metadata never changes the FP4 codes, the decoder
    /// re-identifies the encoder's top-1, and the refined magnitude is one
    /// of the bias-clamp candidates for that FP4 code.
    #[test]
    fn activation_invariants(x in group32()) {
        let cfg = GroupConfig::new(32, 8);
        let g = quantize_group(&x, cfg, ScaleRule::Floor);
        let f4 = fp4();
        let s = g.scale.value();
        let plain: Vec<u8> = x.iter().map(|&v| f4.encode(v / s)).collect();
        prop_assert_eq!(&g.codes, &plain);
        let dq = dequantize_group(&g, cfg);
        for (sg_idx, sg_codes) in g.codes.chunks(8).enumerate() {
            let local = top1_index(sg_codes);
            let idx = sg_idx * 8 + local;
            // Non-top elements decode exactly like plain MXFP4.
            for (j, &c) in sg_codes.iter().enumerate() {
                if j == local { continue; }
                prop_assert_eq!(dq[sg_idx * 8 + j], f4.decode(c) * s);
            }
            // The refined element is a bias-clamp candidate.
            let cands = fp6_candidates(sg_codes[local] & 7);
            let mag = (dq[idx] / s).abs();
            prop_assert!(
                cands.iter().any(|c| (c - mag).abs() < 1e-6),
                "mag {} not in {:?}", mag, cands
            );
        }
    }

    /// Re-quantization drift is bounded and settles. Algorithm 1 is *not*
    /// exactly idempotent: a refined value sitting on an FP4 RNE tie
    /// midpoint (the §4.4.1 bad-case region, e.g. 3.5·2^e) re-rounds up a
    /// code and the bias clamp shifts it one FP6 step. The honest
    /// invariants: (a) one re-quantization moves any element by at most
    /// one FP6 step at the shared scale, (b) the third pass equals the
    /// second (the drift settles immediately).
    #[test]
    fn activation_requantization_settles(x in group32()) {
        let cfg = GroupConfig::new(32, 8);
        let once = fake_quantize_group(&x, cfg, ScaleRule::Floor);
        let twice = fake_quantize_group(&once, cfg, ScaleRule::Floor);
        let amax = once.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let s = ScaleRule::Floor.shared_scale(amax, fp4()).value();
        // Largest FP6 (E2M3) step below the FP4 max is 0.5 at unit scale.
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() <= 0.5 * s + 1e-6, "{a} -> {b} (scale {s})");
        }
        let thrice = fake_quantize_group(&twice, cfg, ScaleRule::Floor);
        prop_assert_eq!(twice, thrice);
    }

    /// Sg-EM: every stored multiplier code is 0..4, the adaptive search
    /// never loses to the fixed scale, and the multiplier search never
    /// loses to plain MXFP4 on the same group.
    #[test]
    fn weight_search_optimality(w in group32()) {
        let cfg = GroupConfig::new(32, 8);
        let g = weight::quantize_group(&w, cfg, ScaleRule::Floor, true);
        prop_assert!(g.sg_em.iter().all(|&k| k < 4));
        let sse = |q: &[f32]| -> f64 {
            w.iter().zip(q).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum()
        };
        let adaptive = sse(&weight::fake_quantize_group(&w, cfg, ScaleRule::Floor, true));
        let fixed = sse(&weight::fake_quantize_group(&w, cfg, ScaleRule::Floor, false));
        prop_assert!(adaptive <= fixed + 1e-9);
        let f4 = fp4();
        let amax = w.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let s = ScaleRule::Floor.shared_scale(amax, f4).value();
        let plain: Vec<f32> = w.iter().map(|&v| f4.quantize(v / s) * s).collect();
        prop_assert!(fixed <= sse(&plain) + 1e-9);
    }

    /// The fixed-point PE GEMM and the f64 reference agree bit for bit.
    #[test]
    fn qgemm_exact(
        xs in proptest::collection::vec(-16f32..16f32, 2 * 32),
        ws in proptest::collection::vec(-4f32..4f32, 3 * 32),
    ) {
        let cfg = M2xfpConfig::default();
        let x = ActTensor::quantize(&Matrix::from_vec(2, 32, xs), cfg);
        let w = WeightTensor::quantize(&Matrix::from_vec(3, 32, ws), cfg);
        let a = qgemm(&x, &w);
        let b = qgemm_reference(&x, &w);
        for i in 0..2 {
            for j in 0..3 {
                prop_assert_eq!(a[(i, j)].to_bits(), b[(i, j)].to_bits());
            }
        }
    }

    /// Scale-rule laws: ceil never clips; floor is within one binade below
    /// ceil; RTNE == ceil for FP4.
    #[test]
    fn scale_rule_laws(amax in 1e-20f32..1e20f32) {
        let f = fp4();
        let e_floor = ScaleRule::Floor.shared_exponent(amax, f);
        let e_ceil = ScaleRule::Ceil.shared_exponent(amax, f);
        let e_rtne = ScaleRule::Rtne.shared_exponent(amax, f);
        prop_assert_eq!(e_rtne, e_ceil);
        prop_assert!((e_ceil - 1..=e_ceil).contains(&e_floor));
        // Ceil never clips: 6·2^e >= amax.
        prop_assert!(6.0 * (e_ceil as f64).exp2() >= amax as f64 * 0.999_999);
    }

    /// Packed round-trip equals the in-memory representation for any
    /// aligned activation tensor.
    #[test]
    fn pack_unpack_roundtrip(xs in proptest::collection::vec(-8f32..8f32, 2 * 64)) {
        let cfg = M2xfpConfig::default();
        let t = ActTensor::quantize(&Matrix::from_vec(2, 64, xs), cfg);
        let bytes = t.pack().unwrap();
        let t2 = ActTensor::unpack(&bytes, 2, 64, cfg).unwrap();
        prop_assert_eq!(t, t2);
    }

    /// EBW accounting: every strategy's budget is FP4+scale plus its
    /// documented metadata bits, monotone in subgroup fineness.
    #[test]
    fn ebw_monotone(sg_pow in 1u32..=5) {
        let sg = 1usize << sg_pow; // 2..32
        for s in MetadataStrategy::FIG6_SET {
            let coarse = s.bit_budget(GroupConfig::new(32, 32)).ebw();
            let fine = s.bit_budget(GroupConfig::new(32, sg)).ebw();
            prop_assert!(fine >= coarse - 1e-12);
            prop_assert!(coarse >= 4.25); // never below MXFP4
        }
    }

    /// Strategy fake-quant never increases group error versus plain MXFP4
    /// under the fixed shared scale (all strategies only refine).
    #[test]
    fn strategies_only_refine(x in group32()) {
        let f4 = fp4();
        let amax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let s = ScaleRule::Floor.shared_scale(amax, f4).value();
        let plain_sse: f64 = x
            .iter()
            .map(|&v| {
                let q = f4.quantize(v / s) * s;
                ((v - q) as f64).powi(2)
            })
            .sum();
        for strat in MetadataStrategy::FIG6_SET {
            let q = strat.fake_quantize_group(
                &x,
                GroupConfig::new(32, 8),
                ScaleRule::Floor,
                ScaleMode::Fixed,
            );
            let sse: f64 = x.iter().zip(&q).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum();
            prop_assert!(sse <= plain_sse + 1e-9, "{strat}: {sse} > {plain_sse}");
        }
    }
}
