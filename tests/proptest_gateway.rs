//! Property-based tests on the `m2x-gateway` HTTP front-end: for any mix
//! of concurrent clients, prompt shapes and decode lengths, the token
//! rows a client reassembles from the SSE frames on its socket are
//! **bit-identical** to running its request alone on a fresh session —
//! the serving layer's core invariant extended through HTTP framing,
//! chunked transfer encoding and the decimal float round-trip. Clients
//! that hang up mid-stream leave a bit-exact *prefix* behind and their
//! requests are cancelled and reaped without leaking a session.

use m2xfp_repro::gateway::{client, json, Gateway, GatewayConfig, Json};
use m2xfp_repro::nn::model::{ModelBuilder, ModelWeights};
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::serve::{run_solo, ServeConfig, Server};
use m2xfp_repro::tensor::Matrix;
use m2xfp_repro::testkit::cases;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn weights(hidden: usize, layers: usize) -> Arc<ModelWeights> {
    Arc::new(
        ModelBuilder::scaled(&ModelProfile::llama3_8b(), hidden, layers)
            .build_weights()
            .unwrap(),
    )
}

fn prompt(tokens: usize, seed: usize, hidden: usize) -> Matrix {
    activation_matrix(&ModelProfile::llama3_8b(), seed, tokens, hidden).map(|v| (v * 0.25).tanh())
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}");
    }
}

/// Any number of concurrent socket clients, any prompt/decode mix: every
/// stream reassembles to its solo run's exact bits, every outcome is
/// `finished`, and the scheduler quiesces with zero open sessions.
#[test]
fn socket_streams_bit_identical_for_any_interleaving() {
    cases(4, |g| {
        let hidden = 64;
        let layers = 1 + g.below(2);
        let w = weights(hidden, layers);
        let server = Arc::new(Server::start(Arc::clone(&w), ServeConfig::default()));
        let gw = Gateway::bind(Arc::clone(&server), GatewayConfig::default()).unwrap();
        let addr = gw.local_addr();

        let n_clients = 2 + g.below(4);
        let reqs: Vec<(Matrix, usize)> = (0..n_clients)
            .map(|i| (prompt(1 + g.below(4), g.case * 131 + i, hidden), g.below(6)))
            .collect();
        let solo: Vec<Matrix> = reqs
            .iter()
            .map(|(p, d)| run_solo(&w, p, *d).unwrap())
            .collect();

        let handles: Vec<_> = reqs
            .iter()
            .map(|(p, d)| {
                let (p, d) = (p.clone(), *d);
                std::thread::spawn(move || client::generate(addr, &p, d, None, None).unwrap())
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let got = h.join().unwrap();
            let (_, steps) = reqs[i];
            assert_eq!(got.status, 200, "case {} client {i}", g.case);
            assert_eq!(
                got.outcome.as_deref(),
                Some("finished"),
                "case {} client {i}",
                g.case
            );
            if steps == 0 {
                // Zero decode steps: a pure-JSON 200, no SSE frames.
                assert_eq!(got.frames, 0, "case {} client {i}", g.case);
                assert_eq!(got.tokens.rows(), 0, "case {} client {i}", g.case);
            } else {
                assert_eq!(got.frames, steps, "case {} client {i}", g.case);
                assert_bits_eq(
                    &got.tokens,
                    &solo[i],
                    &format!("case {} client {i}", g.case),
                );
            }
        }
        drop(gw);
        let mut server = Arc::try_unwrap(server).ok().expect("sole owner");
        server.shutdown();
        assert_eq!(w.open_sessions(), 0, "case {}", g.case);
    });
}

/// Decodes the complete SSE frames out of a *partial* chunked response
/// (head + some chunks; the connection was torn down mid-stream). The
/// gateway writes exactly one frame per chunk, so every fully received
/// chunk is one decodable frame.
fn partial_frames(raw: &[u8], hidden: usize) -> Matrix {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head arrived");
    let mut rest = &raw[head_end + 4..];
    let mut tokens = Matrix::zeros(0, hidden);
    loop {
        let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") else {
            return tokens;
        };
        let Ok(size) = usize::from_str_radix(
            std::str::from_utf8(&rest[..line_end]).expect("hex size line"),
            16,
        ) else {
            return tokens;
        };
        let chunk_start = line_end + 2;
        if size == 0 || rest.len() < chunk_start + size + 2 {
            return tokens; // terminal chunk or incomplete payload
        }
        let frame = &rest[chunk_start..chunk_start + size];
        rest = &rest[chunk_start + size + 2..];
        let text = std::str::from_utf8(frame).expect("UTF-8 frame");
        let payload = text
            .strip_prefix("data: ")
            .expect("SSE data prefix")
            .trim_end();
        let v = json::parse(payload).expect("frame JSON");
        if v.get("done").is_some() {
            continue;
        }
        let index = v.get("index").and_then(Json::as_usize).expect("index");
        assert_eq!(index, tokens.rows(), "frames arrive in order");
        let row: Vec<f32> = v
            .get("token")
            .and_then(Json::as_arr)
            .expect("token array")
            .iter()
            .map(|x| x.as_f64().expect("number") as f32)
            .collect();
        tokens.push_rows(&Matrix::from_vec(1, row.len(), row));
    }
}

/// Clients hanging up after a random number of frames: the frames they
/// did receive are a bit-exact prefix of the solo run, every abandoned
/// request is cancelled, and no session outlives the teardown.
#[test]
fn mid_stream_disconnects_leave_bit_exact_prefixes_and_leak_nothing() {
    cases(3, |g| {
        let hidden = 64;
        let w = weights(hidden, 1);
        let server = Arc::new(Server::start(Arc::clone(&w), ServeConfig::default()));
        let gw = Gateway::bind(
            Arc::clone(&server),
            GatewayConfig {
                max_decode_steps: 100_000,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let addr = gw.local_addr();

        let n_clients = 1 + g.below(3);
        let handles: Vec<_> = (0..n_clients)
            .map(|i| {
                let p = prompt(1 + g.below(3), g.case * 977 + i, hidden);
                let want_frames = 1 + g.below(4);
                std::thread::spawn(move || {
                    let body = client::generate_body(&p, 50_000, None, None);
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream
                        .write_all(
                            format!(
                                "POST /v1/generate HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                                body.len()
                            )
                            .as_bytes(),
                        )
                        .unwrap();
                    // Read until at least `want_frames` complete frames
                    // arrived (the engine may have raced further ahead —
                    // the buffer keeps whatever it sent), then vanish
                    // without a trace.
                    let mut raw = Vec::new();
                    let mut chunk = [0u8; 2048];
                    loop {
                        let n = stream.read(&mut chunk).unwrap();
                        assert!(n > 0, "stream ended before {want_frames} frames");
                        raw.extend_from_slice(&chunk[..n]);
                        if partial_frames(&raw, hidden).rows() >= want_frames {
                            break;
                        }
                    }
                    drop(stream);
                    (p, partial_frames(&raw, hidden))
                })
            })
            .collect();
        let received: Vec<(Matrix, Matrix)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, (p, got)) in received.iter().enumerate() {
            assert!(got.rows() > 0, "case {} client {i}: no frames", g.case);
            let solo = run_solo(&w, p, got.rows()).unwrap();
            assert_bits_eq(got, &solo, &format!("case {} client {i} prefix", g.case));
        }

        // Every hangup must be reaped: cancelled, outcome consumed,
        // session released.
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.stats().cancelled < n_clients as u64 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            server.stats().cancelled,
            n_clients as u64,
            "case {}: every disconnect cancels",
            g.case
        );
        drop(gw);
        let mut server = Arc::try_unwrap(server).ok().expect("sole owner");
        server.shutdown();
        assert_eq!(w.open_sessions(), 0, "case {}: leaked sessions", g.case);
    });
}
