//! Property-based tests on the `m2x-serve` continuous-batching runtime:
//! for any mix of request shapes, arrival interleavings, admission-window
//! sizes, worker-thread counts and execution backends, every scheduled
//! request's token stream is **bit-identical** to running that request
//! alone on a fresh session — the scheduler only changes *when* work runs,
//! never *what* it computes.

use m2xfp_repro::core::backend::BackendKind;
use m2xfp_repro::core::M2xfpConfig;
use m2xfp_repro::nn::model::{ModelBuilder, ModelWeights, QuantizedModel};
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::serve::{run_solo, Completed, ServeConfig, Server};
use m2xfp_repro::tensor::Matrix;
use m2xfp_repro::testkit::cases;
use std::sync::Arc;

fn wait_finished(server: &Server, id: u64) -> Completed {
    server
        .wait(id)
        .unwrap()
        .finished()
        .unwrap_or_else(|| panic!("request {id} did not finish"))
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}");
    }
}

fn prompt(tokens: usize, seed: usize, hidden: usize) -> Matrix {
    activation_matrix(&ModelProfile::llama3_8b(), seed, tokens, hidden).map(|v| (v * 0.25).tanh())
}

/// Scheduled generation == solo generation, bit for bit, across request
/// mixes, admission windows, worker-thread counts and backends.
#[test]
fn scheduled_requests_bit_identical_to_solo() {
    cases(6, |g| {
        let layers = 1 + g.below(2);
        let backend = BackendKind::ALL[g.below(3)];
        let weights: Arc<ModelWeights> = Arc::new(
            ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, layers)
                .config(M2xfpConfig::default())
                .backend(backend)
                .build_weights()
                .unwrap(),
        );
        let n_requests = 1 + g.below(5);
        let reqs: Vec<(Matrix, usize)> = (0..n_requests)
            .map(|i| (prompt(1 + g.below(5), g.case * 31 + i, 64), g.below(4)))
            .collect();
        let solo: Vec<Matrix> = reqs
            .iter()
            .map(|(p, d)| run_solo(&weights, p, *d).unwrap())
            .collect();

        let server = Server::start(
            Arc::clone(&weights),
            ServeConfig {
                max_batch: 1 + g.below(4),
                worker_threads: 1 + g.below(3),
                ..ServeConfig::default()
            },
        );
        // Interleave arrivals with completions: submit a prefix, force a
        // drain by waiting on part of it, then submit the rest. Every
        // request is verified exactly once (the early-waited one inline,
        // the rest in the final sweep).
        let split = g.below(n_requests + 1);
        let mut ids: Vec<u64> = reqs[..split]
            .iter()
            .map(|(p, d)| server.submit(p.clone(), *d).unwrap())
            .collect();
        let early_waited = ids.first().copied();
        if let Some(first) = early_waited {
            let out = wait_finished(&server, first);
            assert_bits_eq(
                &out.decoded,
                &solo[0],
                &format!("case {}: early-waited request", g.case),
            );
        }
        ids.extend(
            reqs[split..]
                .iter()
                .map(|(p, d)| server.submit(p.clone(), *d).unwrap()),
        );
        let skip = usize::from(early_waited.is_some());
        for (i, id) in ids.iter().enumerate().skip(skip) {
            let out = wait_finished(&server, *id);
            assert_eq!(out.id, *id);
            assert_bits_eq(
                &out.decoded,
                &solo[i],
                &format!("case {}: request {i} ({backend:?})", g.case),
            );
        }
    });
}

/// The scheduler's prefill outputs match a plain single-session prefill,
/// and session bookkeeping (latency steps, decoded counts) is consistent.
#[test]
fn scheduled_prefill_matches_session_prefill() {
    let weights: Arc<ModelWeights> = Arc::new(
        ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 2)
            .build_weights()
            .unwrap(),
    );
    let p = prompt(5, 3, 64);
    let mut session = QuantizedModel::from_weights(Arc::clone(&weights));
    let want = session.prefill(&p).unwrap();

    let server = Server::start(Arc::clone(&weights), ServeConfig::default());
    let id = server.submit(p, 3).unwrap();
    let out = wait_finished(&server, id);
    assert_bits_eq(&out.prefill_out, &want, "prefill outputs");
    assert_eq!(out.decoded.rows(), 3);
    // 1 prefill step + 3 decode steps, admitted into an idle server.
    assert_eq!(out.finished_step - out.arrived_step, 4);
    let stats = server.stats();
    assert_eq!(stats.decoded_tokens, 3);
}
