//! Chaos property tests on the `m2x-serve` fault-tolerance layer: under a
//! seeded [`FaultPlan`] of step panics, artificial delays and mid-flight
//! cancels — mixed with per-request deadlines and arbitrary arrival
//! interleavings — the server must degrade *per request*, never as a
//! whole:
//!
//! * every submitted id resolves to exactly one typed [`RequestOutcome`]
//!   (no hangs, no engine death);
//! * every injected step panic fails **exactly one** request (pinned by
//!   the engine's caught-panic accounting: one batched attempt + one
//!   isolated replay per fired fault);
//! * every *surviving* request's token stream is **bit-identical** to its
//!   solo run — panic recovery replays through the same kernels, so even
//!   requests whose sessions were rewound mid-flight must not drift;
//! * the server quiesces with **zero leaked sessions** (all KV memory
//!   released), which `ModelWeights::open_sessions` meters.

use m2xfp_repro::nn::model::{ModelBuilder, ModelWeights};
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::serve::{
    run_solo, FaultPlan, RequestOptions, RequestOutcome, ServeConfig, Server,
};
use m2xfp_repro::tensor::Matrix;
use m2xfp_repro::testkit::cases;
use std::sync::Arc;

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}");
    }
}

fn prompt(tokens: usize, seed: usize, hidden: usize) -> Matrix {
    activation_matrix(&ModelProfile::llama3_8b(), seed, tokens, hidden).map(|v| (v * 0.25).tanh())
}

fn tiny_weights(layers: usize) -> Arc<ModelWeights> {
    Arc::new(
        ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, layers)
            .build_weights()
            .unwrap(),
    )
}

/// The headline chaos property (see module docs): typed outcomes, exact
/// fault attribution, bit-identical survivors, zero leaks, engine alive.
#[test]
fn chaos_plan_degrades_per_request_and_leaks_nothing() {
    cases(5, |g| {
        let weights = tiny_weights(1 + g.below(2));
        let max_batch = 2 + g.below(3);
        let n_requests = 3 + g.below(4);
        let reqs: Vec<(Matrix, usize)> = (0..n_requests)
            .map(|i| (prompt(1 + g.below(4), g.case * 97 + i, 64), 6 + g.below(6)))
            .collect();
        let solo: Vec<Matrix> = reqs
            .iter()
            .map(|(p, d)| run_solo(&weights, p, *d).unwrap())
            .collect();
        let plan = FaultPlan::seeded(
            g.u32() as u64,
            10,        // horizon: inside the ~n*(1+decode)/batch tick span
            max_batch, // slots
            1,         // step panics
            1 + g.below(2),
            1 + g.below(2),
            200, // ≤200µs delays
        );
        let planned_faults = plan.len();
        let server = Server::start_with_faults(
            Arc::clone(&weights),
            ServeConfig {
                max_batch,
                worker_threads: 1 + g.below(2),
                ..ServeConfig::default()
            },
            plan,
        );

        // Arbitrary interleaving: one mid-burst request carries a step
        // deadline that may or may not fire depending on queue depth.
        let deadline_victim = g.below(n_requests);
        let ids: Vec<u64> = reqs
            .iter()
            .enumerate()
            .map(|(i, (p, d))| {
                let opts = if i == deadline_victim {
                    RequestOptions {
                        deadline_steps: Some(3 + g.below(4) as u64),
                        ..RequestOptions::default()
                    }
                } else {
                    RequestOptions::default()
                };
                server.submit_with(p.clone(), *d, opts).unwrap()
            })
            .collect();

        let (mut finished, mut failed, mut disrupted) = (0u64, 0u64, 0u64);
        for (i, id) in ids.iter().enumerate() {
            // Every id resolves to a typed outcome — wait never errors,
            // never hangs (the engine survived whatever the plan threw).
            match server.wait(*id).unwrap() {
                RequestOutcome::Finished(c) => {
                    assert_eq!(c.id, *id);
                    assert_bits_eq(
                        &c.decoded,
                        &solo[i],
                        &format!("case {}: survivor {i}", g.case),
                    );
                    finished += 1;
                }
                RequestOutcome::Failed { error } => {
                    assert!(
                        error.contains("injected fault"),
                        "case {}: only injected faults can fail requests: {error}",
                        g.case
                    );
                    failed += 1;
                }
                RequestOutcome::Cancelled { .. } | RequestOutcome::DeadlineExceeded { .. } => {
                    disrupted += 1;
                }
                RequestOutcome::Rejected { .. } => {
                    panic!("case {}: unbounded queue cannot shed", g.case)
                }
            }
        }
        assert_eq!(finished + failed + disrupted, n_requests as u64);

        let stats = server.stats();
        assert_eq!(stats.failed, failed);
        // Exact attribution: each fired step panic is caught exactly twice
        // (batched attempt + isolated replay of its victim) and fails
        // exactly one request.
        assert_eq!(
            stats.panics_recovered,
            2 * failed,
            "case {}: fired panics must map 1:1 to failed requests",
            g.case
        );
        assert_eq!(stats.recovery_ticks, failed);
        assert!(
            stats.cancelled + stats.deadline_exceeded == disrupted,
            "case {}: disruptions must be typed",
            g.case
        );

        // The engine keeps scheduling afterwards. Not every planned fault
        // has necessarily fired yet (ticks only advance under load), so a
        // probe may still absorb one — but each remaining harmful fault
        // kills at most one probe, so within planned_faults + 1 attempts
        // one must run clean, and every casualty stays typed.
        let mut probe_ok = false;
        for attempt in 0..=planned_faults {
            let probe = prompt(2, g.case * 97 + 1000 + attempt, 64);
            let probe_id = server.submit(probe.clone(), 3).unwrap();
            match server.wait(probe_id).unwrap() {
                RequestOutcome::Finished(c) => {
                    assert_bits_eq(
                        &c.decoded,
                        &run_solo(&weights, &probe, 3).unwrap(),
                        &format!("case {}: post-chaos probe", g.case),
                    );
                    probe_ok = true;
                    break;
                }
                RequestOutcome::Failed { error } => {
                    assert!(error.contains("injected fault"), "{error}")
                }
                RequestOutcome::Cancelled { .. } => {}
                other => panic!("case {}: probe outcome {}", g.case, other.kind()),
            }
        }
        assert!(
            probe_ok,
            "case {}: engine must keep serving once the plan is exhausted",
            g.case
        );

        // Quiescence: dropping the server (graceful drain) leaves zero
        // live sessions — no leaked KV pages anywhere.
        drop(server);
        assert_eq!(
            weights.open_sessions(),
            0,
            "case {}: leaked sessions",
            g.case
        );
    });
}

/// Satellite: join/leave/cancel churn over many ticks leaves the weights'
/// session accounting at zero *while the server is still live*, and the
/// reclaimed capacity re-admits a full `max_batch` afterwards — the
/// KV-reclaim path never strands a slot.
#[test]
fn churn_returns_session_accounting_to_zero_and_readmits_full_batch() {
    cases(4, |g| {
        let weights = tiny_weights(1);
        let max_batch = 2 + g.below(3);
        let server = Server::start(
            Arc::clone(&weights),
            ServeConfig {
                max_batch,
                ..ServeConfig::default()
            },
        );
        for wave in 0..3 {
            let n = 2 + g.below(4);
            let mut kill_list = Vec::new();
            let mut keep_list = Vec::new();
            for i in 0..n {
                let p = prompt(1 + g.below(3), g.case * 131 + wave * 17 + i, 64);
                match g.below(3) {
                    // Long request we cancel mid-flight.
                    0 => kill_list.push(server.submit(p, 10_000).unwrap()),
                    // Doomed: expires before it can ever be stepped.
                    1 => keep_list.push(
                        server
                            .submit_with(
                                p,
                                4,
                                RequestOptions {
                                    deadline_steps: Some(0),
                                    ..RequestOptions::default()
                                },
                            )
                            .unwrap(),
                    ),
                    // Normal request that runs to completion.
                    _ => keep_list.push(server.submit(p, 1 + g.below(4)).unwrap()),
                }
            }
            for id in &kill_list {
                server.cancel(*id).unwrap();
            }
            for id in kill_list.into_iter().chain(keep_list) {
                server.wait(id).unwrap(); // every outcome typed, none hang
            }
            // All waves' sessions are released as soon as their outcomes
            // resolve — no shutdown needed to get the memory back.
            assert_eq!(
                weights.open_sessions(),
                0,
                "case {} wave {wave}: sessions leaked mid-life",
                g.case
            );
        }

        // Post-churn, a fresh burst fills the whole admission window.
        let reqs: Vec<(Matrix, usize)> = (0..max_batch)
            .map(|i| (prompt(2, g.case * 131 + 9000 + i, 64), 12))
            .collect();
        let ids: Vec<u64> = reqs
            .iter()
            .map(|(p, d)| server.submit(p.clone(), *d).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let c = server
                .wait(*id)
                .unwrap()
                .finished()
                .expect("post-churn burst must finish");
            assert_bits_eq(
                &c.decoded,
                &run_solo(&weights, &reqs[i].0, reqs[i].1).unwrap(),
                &format!("case {}: post-churn request {i}", g.case),
            );
        }
        assert_eq!(
            server.stats().peak_batch,
            max_batch,
            "case {}: churn must not strand admission slots",
            g.case
        );
        drop(server);
        assert_eq!(weights.open_sessions(), 0, "case {}: leak", g.case);
    });
}
