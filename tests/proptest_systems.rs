//! Property-based tests on the system layers: rotations, hardware units,
//! the accelerator cost model and the metric proxies.

use m2xfp_repro::accel::arch::{AcceleratorConfig, AcceleratorKind};
use m2xfp_repro::accel::units::TopOneDecodeUnit;
use m2xfp_repro::baselines::hadamard::{fwht_normalized, Rotation};
use m2xfp_repro::nn::metrics::{phi, phi_inv, ppl_proxy, task_accuracy, PplAnchor, TaskAnchor};
use m2xfp_repro::tensor::Matrix;
use m2xfp_repro::testkit::cases;

/// FWHT is an orthonormal involution: applying it twice restores the input
/// and the L2 norm is preserved.
#[test]
fn fwht_involution() {
    cases(128, |g| {
        let v = g.vec_f32(64, -100.0, 100.0);
        let mut w = v.clone();
        fwht_normalized(&mut w);
        let n0: f64 = v.iter().map(|&x| (x as f64).powi(2)).sum();
        let n1: f64 = w.iter().map(|&x| (x as f64).powi(2)).sum();
        assert!((n0 - n1).abs() <= n0.max(1.0) * 1e-4, "case {}", g.case);
        fwht_normalized(&mut w);
        for (a, b) in v.iter().zip(&w) {
            assert!((a - b).abs() <= a.abs().max(1.0) * 1e-4, "case {}", g.case);
        }
    });
}

/// Rotations preserve GEMM results (computational invariance).
#[test]
fn rotation_preserves_products() {
    cases(64, |g| {
        let seed = g.below(1000) as u64;
        let x = Matrix::from_fn(3, 64, |r, c| ((r * 64 + c) as f32 * 0.173).sin());
        let wt = Matrix::from_fn(4, 64, |r, c| ((r * 64 + c) as f32 * 0.311).cos());
        let rot = Rotation::quarot(64, seed);
        let y0 = x.matmul(&wt.transpose());
        let y1 = rot.apply_rows(&x).matmul(&rot.apply_rows(&wt).transpose());
        let e = m2xfp_repro::tensor::stats::max_abs_err(y0.as_slice(), y1.as_slice());
        assert!(e < 1e-3, "case {}: max err {e}", g.case);
    });
}

/// The comparator tree equals the reference top-1 for any codes.
#[test]
fn comparator_tree_equivalence() {
    cases(256, |g| {
        let codes = g.vec_u8_below(16, 1, 8);
        let (idx, code) = TopOneDecodeUnit.top1(&codes);
        assert_eq!(
            idx,
            m2xfp_repro::formats::tables::top1_index(&codes),
            "case {}",
            g.case
        );
        assert_eq!(code, codes[idx], "case {}", g.case);
    });
}

/// Accelerator cost scales monotonically with every GEMM dimension.
#[test]
fn gemm_cost_monotone() {
    cases(128, |g| {
        use m2xfp_repro::accel::timing::gemm_cost;
        use m2xfp_repro::nn::layers::GemmShape;
        let m = 1 + g.below(511);
        let k = 32 + g.below(2016);
        let n = 32 + g.below(2016);
        let cfg = AcceleratorConfig::of(AcceleratorKind::M2xfp);
        let base = gemm_cost(
            &GemmShape {
                name: "g".into(),
                m,
                k,
                n,
            },
            &cfg,
        );
        let bigger = gemm_cost(
            &GemmShape {
                name: "g".into(),
                m: m + 32,
                k,
                n,
            },
            &cfg,
        );
        assert!(bigger.seconds >= base.seconds, "case {}", g.case);
        assert!(bigger.dram_bytes >= base.dram_bytes, "case {}", g.case);
        let wider = gemm_cost(
            &GemmShape {
                name: "g".into(),
                m,
                k,
                n: n + 32,
            },
            &cfg,
        );
        assert!(wider.seconds >= base.seconds, "case {}", g.case);
    });
}

/// Φ and Φ⁻¹ are inverse, monotone, and bounded.
#[test]
fn normal_cdf_properties() {
    cases(512, |g| {
        let x = g.f32_in(-6.0, 6.0) as f64;
        let p = g.f32_in(0.001, 0.999) as f64;
        assert!((0.0..=1.0).contains(&phi(x)), "case {}", g.case);
        assert!((phi(phi_inv(p)) - p).abs() < 1e-6, "case {}", g.case);
        assert!((phi_inv(phi(x)) - x).abs() < 1e-4, "case {}", g.case);
    });
}

/// The perplexity proxy is monotone in error and anchored at both ends.
#[test]
fn ppl_proxy_laws() {
    cases(512, |g| {
        let e0 = g.f32_in(0.01, 0.5) as f64;
        let e1 = g.f32_in(0.0, 0.5) as f64;
        let e2 = g.f32_in(0.0, 0.5) as f64;
        let anchor = PplAnchor {
            fp16: 5.47,
            mxfp4: 7.15,
        };
        assert!(
            (ppl_proxy(anchor, e0, 0.0) - anchor.fp16).abs() < 1e-9,
            "case {}",
            g.case
        );
        assert!(
            (ppl_proxy(anchor, e0, e0) - anchor.mxfp4).abs() < 1e-9,
            "case {}",
            g.case
        );
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        assert!(
            ppl_proxy(anchor, e0, lo) <= ppl_proxy(anchor, e0, hi) + 1e-12,
            "case {}",
            g.case
        );
    });
}

/// The accuracy race model stays within [chance, fp16] and decreases with
/// noise.
#[test]
fn accuracy_model_bounds() {
    cases(512, |g| {
        let sigma = g.f32_in(0.0, 20.0) as f64;
        let fp16 = g.f32_in(30.0, 95.0) as f64;
        let t = TaskAnchor {
            name: "t",
            chance: 25.0,
            fp16,
        };
        let a = task_accuracy(t, sigma);
        assert!(a <= fp16 + 0.1, "case {}: a={a} fp16={fp16}", g.case);
        assert!(a >= 25.0 - 0.5, "case {}: a={a}", g.case);
        let a2 = task_accuracy(t, sigma + 1.0);
        assert!(a2 <= a + 0.05, "case {}", g.case);
    });
}
