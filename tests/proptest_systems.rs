//! Property-based tests on the system layers: rotations, hardware units,
//! the accelerator cost model and the metric proxies.

use m2xfp_repro::accel::arch::{AcceleratorConfig, AcceleratorKind};
use m2xfp_repro::accel::units::TopOneDecodeUnit;
use m2xfp_repro::baselines::hadamard::{fwht_normalized, Rotation};
use m2xfp_repro::nn::metrics::{phi, phi_inv, ppl_proxy, task_accuracy, PplAnchor, TaskAnchor};
use m2xfp_repro::tensor::Matrix;
use proptest::prelude::*;

proptest! {
    /// FWHT is an orthonormal involution: applying it twice restores the
    /// input and the L2 norm is preserved.
    #[test]
    fn fwht_involution(v in proptest::collection::vec(-100f32..100f32, 64)) {
        let mut w = v.clone();
        fwht_normalized(&mut w);
        let n0: f64 = v.iter().map(|&x| (x as f64).powi(2)).sum();
        let n1: f64 = w.iter().map(|&x| (x as f64).powi(2)).sum();
        prop_assert!((n0 - n1).abs() <= n0.max(1.0) * 1e-4);
        fwht_normalized(&mut w);
        for (a, b) in v.iter().zip(&w) {
            prop_assert!((a - b).abs() <= a.abs().max(1.0) * 1e-4);
        }
    }

    /// Rotations preserve GEMM results (computational invariance).
    #[test]
    fn rotation_preserves_products(seed in 0u64..1000) {
        let x = Matrix::from_fn(3, 64, |r, c| ((r * 64 + c) as f32 * 0.173).sin());
        let wt = Matrix::from_fn(4, 64, |r, c| ((r * 64 + c) as f32 * 0.311).cos());
        let rot = Rotation::quarot(64, seed);
        let y0 = x.matmul(&wt.transpose());
        let y1 = rot.apply_rows(&x).matmul(&rot.apply_rows(&wt).transpose());
        let e = m2xfp_repro::tensor::stats::max_abs_err(y0.as_slice(), y1.as_slice());
        prop_assert!(e < 1e-3, "max err {e}");
    }

    /// The comparator tree equals the reference top-1 for any codes.
    #[test]
    fn comparator_tree_equivalence(codes in proptest::collection::vec(0u8..16, 1..=8)) {
        let (idx, code) = TopOneDecodeUnit.top1(&codes);
        prop_assert_eq!(idx, m2xfp_repro::formats::tables::top1_index(&codes));
        prop_assert_eq!(code, codes[idx]);
    }

    /// Accelerator cost scales monotonically with every GEMM dimension.
    #[test]
    fn gemm_cost_monotone(m in 1usize..512, k in 32usize..2048, n in 32usize..2048) {
        use m2xfp_repro::accel::timing::gemm_cost;
        use m2xfp_repro::nn::layers::GemmShape;
        let cfg = AcceleratorConfig::of(AcceleratorKind::M2xfp);
        let base = gemm_cost(&GemmShape { name: "g".into(), m, k, n }, &cfg);
        let bigger = gemm_cost(&GemmShape { name: "g".into(), m: m + 32, k, n }, &cfg);
        prop_assert!(bigger.seconds >= base.seconds);
        prop_assert!(bigger.dram_bytes >= base.dram_bytes);
        let wider = gemm_cost(&GemmShape { name: "g".into(), m, k, n: n + 32 }, &cfg);
        prop_assert!(wider.seconds >= base.seconds);
    }

    /// Φ and Φ⁻¹ are inverse, monotone, and bounded.
    #[test]
    fn normal_cdf_properties(x in -6f64..6f64, p in 0.001f64..0.999) {
        prop_assert!((0.0..=1.0).contains(&phi(x)));
        prop_assert!((phi(phi_inv(p)) - p).abs() < 1e-6);
        prop_assert!((phi_inv(phi(x)) - x).abs() < 1e-4);
    }

    /// The perplexity proxy is monotone in error and anchored at both ends.
    #[test]
    fn ppl_proxy_laws(e0 in 0.01f64..0.5, e1 in 0.0f64..0.5, e2 in 0.0f64..0.5) {
        let anchor = PplAnchor { fp16: 5.47, mxfp4: 7.15 };
        prop_assert!((ppl_proxy(anchor, e0, 0.0) - anchor.fp16).abs() < 1e-9);
        prop_assert!((ppl_proxy(anchor, e0, e0) - anchor.mxfp4).abs() < 1e-9);
        if e1 <= e2 {
            prop_assert!(ppl_proxy(anchor, e0, e1) <= ppl_proxy(anchor, e0, e2) + 1e-12);
        }
    }

    /// The accuracy race model stays within [chance, fp16] and decreases
    /// with noise.
    #[test]
    fn accuracy_model_bounds(sigma in 0f64..20.0, fp16 in 30f64..95.0) {
        let t = TaskAnchor { name: "t", chance: 25.0, fp16 };
        let a = task_accuracy(t, sigma);
        prop_assert!(a <= fp16 + 0.1, "a={a} fp16={fp16}");
        prop_assert!(a >= 25.0 - 0.5, "a={a}");
        let a2 = task_accuracy(t, sigma + 1.0);
        prop_assert!(a2 <= a + 0.05);
    }
}
