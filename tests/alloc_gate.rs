//! Runtime allocation gates — the dynamic witness behind the `m2x-lint`
//! R1 hot-path allocation rule.
//!
//! The static lint proves the *source* discipline (no allocating
//! constructs in `// m2x-lint: hot` functions without a justification);
//! this binary installs a counting `#[global_allocator]` and proves the
//! *runtime* behaviour the discipline exists for:
//!
//! 1. the decode GEMV micro-kernel ([`qgemv_packed_into`]) performs
//!    **zero** heap allocations once its scratch is warm, and
//! 2. the serving engine's decode tick stays within a fixed per-step
//!    allocation budget that does not grow with sequence length —
//!    the structural allocations (per-layer activation matrices, KV
//!    growth, published token rows) are bounded per step, with telemetry
//!    **enabled** (the config default), so the budget covers traced
//!    ticks; and
//! 3. warm telemetry recording itself — trace ring pushes, histogram
//!    records, stage-tally bookings — performs **zero** heap
//!    allocations, the claim that makes leaving tracing on in production
//!    defensible.
//!
//! Allocation counting is process-wide, so everything here runs inside
//! one `#[test]` (CI additionally passes `--test-threads=1`): parallel
//! test threads would bleed their allocations into the counted regions.

use m2xfp_repro::core::format::{PackedActTensor, PackedWeightTensor};
use m2xfp_repro::core::gemm::{qgemv_packed, qgemv_packed_into, GemmScratch, WeightPlane};
use m2xfp_repro::core::M2xfpConfig;
use m2xfp_repro::nn::model::{ModelBuilder, ModelWeights};
use m2xfp_repro::nn::profile::ModelProfile;
use m2xfp_repro::nn::synth::activation_matrix;
use m2xfp_repro::serve::{ServeConfig, Server};
use m2xfp_repro::telemetry::{stage, Histogram, StageTally, Telemetry};
use m2xfp_repro::testkit::alloc_witness::{count_allocations, CountingAlloc};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Upper bound on heap allocations per engine decode step (tiny 1-layer
/// model, batch 1). Measured ~139 on the current engine (structural
/// per-step matrices, KV growth, published token rows, the waiter's
/// bookkeeping); the headroom absorbs amortized `Vec` growth
/// reallocations without letting a per-element regression (thousands per
/// step) slip through.
const ENGINE_STEP_BUDGET: u64 = 256;

fn gemv_inputs() -> (Vec<PackedActTensor>, WeightPlane) {
    let cfg = M2xfpConfig::default();
    let profile = ModelProfile::llama3_8b();
    let k = 96; // ragged: not a multiple of the 32-element group
    let n = 48;
    let w = PackedWeightTensor::quantize(&activation_matrix(&profile, 7, n, k), cfg);
    let acts = (0..4)
        .map(|seed| PackedActTensor::quantize(&activation_matrix(&profile, seed, 1, k), cfg))
        .collect();
    (acts, WeightPlane::decode(&w))
}

/// One gate test (see module docs for why it is a single `#[test]`).
#[test]
fn alloc_gate() {
    gemv_zero_allocations_after_warmup();
    engine_decode_step_within_budget();
    telemetry_recording_zero_allocations();
    decode_ticks_within_pages_grab_zero_pool_pages();
}

/// Warm telemetry recording is allocation-free: after one warm-up pass,
/// any number of trace span/instant pushes, latency-histogram records and
/// stage-tally bookings touch the heap zero times. (Ring registration and
/// draining allocate — those are per-server and per-scrape, not
/// per-event.)
fn telemetry_recording_zero_allocations() {
    let tele = Arc::new(Telemetry::new(true));
    let trace = tele.register("gate", 4096);
    let mut hist = Histogram::default();
    let mut tally = StageTally::new();
    tally.set_enabled(true);

    // Warm-up (the structures are fixed-size, but mirror a real witness:
    // warm first, then count).
    trace.span(stage::TICK, 0, 0, 1, 1);
    trace.instant(stage::REQ_TOKEN, 1, 0);
    hist.record(1);
    tally.add_ns(stage::QGEMM, 1);

    let (allocs, _) = count_allocations(|| {
        for i in 0..4096u64 {
            trace.span(stage::TICK, 0, i, i + 1, 2);
            trace.instant(stage::REQ_TOKEN, 1, i);
            hist.record(i * 37);
            tally.add_ns(stage::QGEMM, 100);
            tally.time(stage::ATTENTION, || std::hint::black_box(i));
        }
        tally.stage_sum_ns()
    });
    assert_eq!(
        allocs, 0,
        "warm telemetry recording allocated {allocs} times across 4096 traced events"
    );
}

/// After one warm-up call, `qgemv_packed_into` is allocation-free for any
/// number of decode steps at that shape — and bit-identical to the
/// allocating `qgemv_packed` surface.
fn gemv_zero_allocations_after_warmup() {
    let (acts, plane) = gemv_inputs();
    let mut scratch = GemmScratch::new();
    let mut out = vec![0.0f32; 48];

    // Warm-up: first call sizes the scratch decode buffers.
    qgemv_packed_into(&acts[0], &plane, &mut scratch, &mut out);

    let (allocs, ()) = count_allocations(|| {
        for _ in 0..8 {
            for x in &acts {
                qgemv_packed_into(x, &plane, &mut scratch, &mut out);
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "qgemv_packed_into allocated {allocs} times across 32 warm decode steps"
    );

    // The zero-alloc surface computes the same bits as the Matrix one.
    for x in &acts {
        qgemv_packed_into(x, &plane, &mut scratch, &mut out);
        let want = qgemv_packed(x, &plane, &mut scratch);
        for (got, want) in out.iter().zip(want.as_slice()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}

/// The paged-KV analogue of the allocation gates: a warm steady-state
/// decode tick whose appends stay inside already-held pages acquires
/// **zero** pages from the pool. Two identical requests differing only in
/// decode length (both staying inside the first 32-token page) must show
/// identical pool page-grab counts — the marginal page cost of the extra
/// decode ticks is exactly zero.
fn decode_ticks_within_pages_grab_zero_pool_pages() {
    let weights: Arc<ModelWeights> = Arc::new(
        ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1)
            .build_weights()
            .expect("tiny model builds"),
    );
    let cfg = ServeConfig {
        max_batch: 1,
        worker_threads: 1,
        ..ServeConfig::default()
    };
    let prompt =
        activation_matrix(&ModelProfile::llama3_8b(), 13, 3, 64).map(|v| (v * 0.25).tanh());

    // Pool page acquisitions (fresh allocs + free-list reuses + CoW
    // forks) attributable to one request of `decode_steps` ticks.
    let grabs = |decode_steps: usize| -> u64 {
        let server = Server::start(Arc::clone(&weights), cfg);
        let s0 = weights.kv_pool().stats();
        let id = server.submit(prompt.clone(), decode_steps).expect("submit");
        server.wait(id).expect("request completes");
        let s1 = weights.kv_pool().stats();
        drop(server);
        (s1.page_allocs + s1.page_reuses + s1.cow_clones)
            - (s0.page_allocs + s0.page_reuses + s0.cow_clones)
    };

    // 3 prompt tokens + 24 decode steps = 27 rows, inside one 32-token
    // page: the 16 extra decode ticks must not touch the pool at all.
    let short = grabs(8);
    let long = grabs(24);
    assert!(short >= 1, "prefill must actually acquire a page");
    assert_eq!(
        long,
        short,
        "decode ticks within already-held pages acquired {} extra pool pages",
        long - short
    );
}

/// The engine's decode tick allocates a bounded, non-growing number of
/// times per step: the marginal cost of 24 extra decode steps over 8 is
/// within `ENGINE_STEP_BUDGET` per step.
fn engine_decode_step_within_budget() {
    let weights: Arc<ModelWeights> = Arc::new(
        ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1)
            .build_weights()
            .expect("tiny model builds"),
    );
    let cfg = ServeConfig {
        max_batch: 1,
        worker_threads: 1,
        ..ServeConfig::default()
    };
    let prompt =
        activation_matrix(&ModelProfile::llama3_8b(), 11, 3, 64).map(|v| (v * 0.25).tanh());

    let run = |decode_steps: usize| -> u64 {
        let server = Server::start(Arc::clone(&weights), cfg);
        // Warm-up request: engine-lifetime scratch sizes itself here.
        let id = server.submit(prompt.clone(), 2).expect("submit");
        server.wait(id).expect("warm-up completes");
        let (allocs, _) = count_allocations(|| {
            let id = server.submit(prompt.clone(), decode_steps).expect("submit");
            server.wait(id).expect("request completes")
        });
        drop(server);
        allocs
    };

    let short = run(8);
    let long = run(8 + 24);
    let marginal = long.saturating_sub(short);
    assert!(
        marginal <= ENGINE_STEP_BUDGET * 24,
        "engine decode steps allocate too much: 24 extra steps cost {marginal} \
         allocations ({} per step, budget {ENGINE_STEP_BUDGET})",
        marginal / 24
    );
}
