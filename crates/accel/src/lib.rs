//! # m2x-accel
//!
//! Cycle-level model of the M2XFP accelerator (paper §5) and the baseline
//! MX accelerators of Fig. 13, replacing the paper's DNNWeaver + Synopsys
//! DC + CACTI stack with a self-contained analytic model (substitutions
//! documented in DESIGN.md §1):
//!
//! * [`arch`] — machine configuration (32×32 systolic array @500 MHz,
//!   144+144+36 KB buffers, DRAM bandwidth) and the per-accelerator format
//!   parameters (bit widths, 8-bit fallback fractions, overhead factors).
//! * [`units`] — bit-exact functional models of the Top-1 Decode Unit
//!   (Fig. 10), the augmented PE tile (Fig. 11) and the two-stage
//!   Quantization Engine (Fig. 12), verified against `m2xfp`.
//! * [`timing`] — tiled weight-stationary GEMM cycle model with
//!   compute/memory overlap; per-model latency from the `m2x-nn` layer
//!   inventory.
//! * [`energy`] — core/buffer/DRAM/static energy accounting (the Fig. 13
//!   stack).
//! * [`area`] — gate-count area/power model calibrated to the paper's
//!   MXFP4 PE reference point; regenerates Tbl. 5 and the §6.3 PE-tile
//!   comparison.

pub mod arch;
pub mod area;
pub mod energy;
pub mod timing;
pub mod units;

pub use arch::{AcceleratorConfig, AcceleratorKind};
pub use timing::ModelRun;
