//! Machine and per-accelerator configuration.
//!
//! All accelerators in Fig. 13 share the same machine (32×32 PE array,
//! 500 MHz, 324 KB of SRAM, one DRAM channel): "for fairness, all
//! accelerators are configured with 32×32 PEs supporting 4-bit
//! multiplications, ensuring differences arise from architectural and
//! algorithmic design" (§6.1). What differs is the format behaviour:
//! effective bit widths, the fraction of weight/activation tensors that
//! must fall back to 8 bits to match accuracy (§6.3: MX-OliVe falls back
//! for "more than 50 % of tensors"; MicroScopiQ's activations are MXINT at
//! higher precision), and decode/compute overhead factors. An 8-bit
//! operand takes two passes through a 4-bit PE and twice the bytes.

/// Shared machine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Systolic array height (rows of PEs).
    pub array_rows: usize,
    /// Systolic array width.
    pub array_cols: usize,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Activation buffer bytes.
    pub act_buffer: usize,
    /// Weight buffer bytes.
    pub weight_buffer: usize,
    /// Output buffer bytes (includes scales and metadata, §6.3).
    pub out_buffer: usize,
    /// DRAM bandwidth in bytes/second.
    pub dram_bw: f64,
}

impl Default for Machine {
    fn default() -> Self {
        Machine {
            array_rows: 32,
            array_cols: 32,
            freq_hz: 500e6,
            act_buffer: 144 * 1024,
            weight_buffer: 144 * 1024,
            out_buffer: 36 * 1024,
            dram_bw: 48e9,
        }
    }
}

impl Machine {
    /// Total PEs.
    pub fn pes(&self) -> usize {
        self.array_rows * self.array_cols
    }

    /// Total on-chip SRAM in bytes.
    pub fn sram_bytes(&self) -> usize {
        self.act_buffer + self.weight_buffer + self.out_buffer
    }
}

/// Which accelerator design is being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorKind {
    /// MX-OliVe (outlier–victim decode; heavy 8-bit fallback).
    MxOlive,
    /// MX-ANT (adaptive-type decoders).
    MxAnt,
    /// MX-M-ANT (16-type decoders + shift-add datapath).
    MxMant,
    /// MicroScopiQ (inlier/outlier blocks + ReCoN permutation unit; MXINT
    /// activations at raised precision).
    MicroScopiQ,
    /// This paper's design.
    M2xfp,
}

impl AcceleratorKind {
    /// The Fig. 13 lineup in plot order.
    pub const ALL: [AcceleratorKind; 5] = [
        AcceleratorKind::MxOlive,
        AcceleratorKind::MxAnt,
        AcceleratorKind::MxMant,
        AcceleratorKind::MicroScopiQ,
        AcceleratorKind::M2xfp,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AcceleratorKind::MxOlive => "MX-OliVe",
            AcceleratorKind::MxAnt => "MX-ANT",
            AcceleratorKind::MxMant => "MX-M-ANT",
            AcceleratorKind::MicroScopiQ => "MicroScopiQ",
            AcceleratorKind::M2xfp => "M2XFP",
        }
    }
}

/// Per-accelerator behavioural parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Which design this is.
    pub kind: AcceleratorKind,
    /// Machine parameters.
    pub machine: Machine,
    /// Weight bits per element including amortized scale/metadata (4-bit
    /// tensors).
    pub weight_ebw: f64,
    /// Activation bits per element including amortized scale/metadata.
    pub act_ebw: f64,
    /// Fraction of weight tensors kept at 8 bits for accuracy.
    pub weight_fallback_8bit: f64,
    /// Fraction of activation tensors kept at 8 bits for accuracy.
    pub act_fallback_8bit: f64,
    /// Multiplicative compute-cycle overhead (decoders, serialization,
    /// outlier processing stalls).
    pub compute_overhead: f64,
    /// Multiplicative core-energy overhead (extra datapath activity, e.g.
    /// M-ANT's shift-and-accumulate, MicroScopiQ's ReCoN unit).
    pub core_energy_overhead: f64,
}

impl AcceleratorConfig {
    /// Builds the configuration of one Fig. 13 accelerator.
    pub fn of(kind: AcceleratorKind) -> Self {
        let machine = Machine::default();
        match kind {
            // §6.3: "MX-OliVe falls back to 8-bit quantization for more
            // than 50 % of tensors".
            AcceleratorKind::MxOlive => AcceleratorConfig {
                kind,
                machine,
                weight_ebw: 4.25,
                act_ebw: 4.25,
                weight_fallback_8bit: 0.55,
                act_fallback_8bit: 0.55,
                compute_overhead: 1.06,
                core_energy_overhead: 1.08,
            },
            AcceleratorKind::MxAnt => AcceleratorConfig {
                kind,
                machine,
                weight_ebw: 4.3125,
                act_ebw: 4.25,
                weight_fallback_8bit: 0.25,
                act_fallback_8bit: 0.25,
                compute_overhead: 1.08,
                core_energy_overhead: 1.10,
            },
            AcceleratorKind::MxMant => AcceleratorConfig {
                kind,
                machine,
                weight_ebw: 4.625,
                act_ebw: 4.25,
                weight_fallback_8bit: 0.20,
                act_fallback_8bit: 0.20,
                compute_overhead: 1.06,
                core_energy_overhead: 1.18,
            },
            // MicroScopiQ keeps weights mostly at 4 bits but relies on
            // raised-precision MXINT activations for W4A4-level accuracy.
            AcceleratorKind::MicroScopiQ => AcceleratorConfig {
                kind,
                machine,
                weight_ebw: 4.625,
                act_ebw: 4.25,
                weight_fallback_8bit: 0.10,
                act_fallback_8bit: 0.85,
                compute_overhead: 1.05,
                core_energy_overhead: 1.14,
            },
            AcceleratorKind::M2xfp => AcceleratorConfig {
                kind,
                machine,
                weight_ebw: 4.5,
                act_ebw: 4.5,
                weight_fallback_8bit: 0.0,
                act_fallback_8bit: 0.0,
                compute_overhead: 1.005,
                core_energy_overhead: 1.04,
            },
        }
    }

    fn bytes_per_elem(ebw: f64, fallback: f64) -> f64 {
        let four_bit = ebw / 8.0;
        let eight_bit = (8.0 + (ebw - 4.0).max(0.25)) / 8.0;
        four_bit * (1.0 - fallback) + eight_bit * fallback
    }

    /// Average bytes per weight element including the 8-bit fallback share.
    pub fn weight_bytes_per_elem(&self) -> f64 {
        Self::bytes_per_elem(self.weight_ebw, self.weight_fallback_8bit)
    }

    /// Average bytes per activation element including the fallback share.
    pub fn act_bytes_per_elem(&self) -> f64 {
        Self::bytes_per_elem(self.act_ebw, self.act_fallback_8bit)
    }

    /// Average compute passes per MAC: an 8-bit operand doubles the passes
    /// on a 4-bit array, multiplicatively per operand.
    pub fn compute_passes(&self) -> f64 {
        (1.0 + self.weight_fallback_8bit) * (1.0 + self.act_fallback_8bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_defaults_match_paper() {
        let m = Machine::default();
        assert_eq!(m.pes(), 1024);
        assert_eq!(m.sram_bytes(), 324 * 1024);
        assert_eq!(m.freq_hz, 500e6);
    }

    #[test]
    fn m2xfp_moves_fewest_weight_bytes() {
        let m2 = AcceleratorConfig::of(AcceleratorKind::M2xfp);
        for kind in [
            AcceleratorKind::MxOlive,
            AcceleratorKind::MxAnt,
            AcceleratorKind::MxMant,
            AcceleratorKind::MicroScopiQ,
        ] {
            let other = AcceleratorConfig::of(kind);
            assert!(
                m2.weight_bytes_per_elem() < other.weight_bytes_per_elem(),
                "{}",
                kind.name()
            );
            assert!(
                m2.compute_passes() < other.compute_passes(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn olive_fallback_matches_paper_citation() {
        let olive = AcceleratorConfig::of(AcceleratorKind::MxOlive);
        assert!(olive.weight_fallback_8bit > 0.5, "paper: >50% of tensors");
        assert!(olive.compute_passes() > 2.0);
    }

    #[test]
    fn microscopiq_to_m2xfp_gap_near_paper_speedup() {
        // The §6.3 headline: ~1.91× average speedup over MicroScopiQ. The
        // compute-bound ratio of the configs must land in that vicinity.
        let ms = AcceleratorConfig::of(AcceleratorKind::MicroScopiQ);
        let m2 = AcceleratorConfig::of(AcceleratorKind::M2xfp);
        let ratio =
            ms.compute_passes() * ms.compute_overhead / (m2.compute_passes() * m2.compute_overhead);
        assert!((1.6..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn compute_passes_bounds() {
        for kind in AcceleratorKind::ALL {
            let c = AcceleratorConfig::of(kind);
            assert!((1.0..=4.0).contains(&c.compute_passes()), "{}", kind.name());
        }
    }
}
