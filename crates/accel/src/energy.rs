//! Energy accounting: the four-component stack of Fig. 13 (core, buffer,
//! DRAM, static).
//!
//! Constants are 28 nm-class per-operation energies (documented rationale
//! in DESIGN.md): a 4-bit MAC including local accumulation ≈ 0.55 pJ, SRAM
//! access ≈ 0.65 pJ/B for the 144 KB banks (CACTI-class), DRAM ≈ 15 pJ/bit,
//! and a static power floor from the Tbl. 5 breakdown.

use crate::arch::AcceleratorConfig;
use crate::timing::GemmCost;

/// Per-operation energy constants (28 nm class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Joules per 4-bit MAC (including pipeline registers).
    pub mac_4bit_j: f64,
    /// Joules per SRAM byte accessed.
    pub sram_byte_j: f64,
    /// Joules per DRAM byte transferred.
    pub dram_byte_j: f64,
    /// Static (leakage + clock-tree) watts.
    pub static_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            mac_4bit_j: 0.55e-12,
            sram_byte_j: 0.65e-12,
            dram_byte_j: 15e-12 * 8.0,
            static_w: 0.025,
        }
    }
}

/// Energy breakdown of one run (Joules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// PE-array dynamic energy.
    pub core_j: f64,
    /// On-chip buffer access energy.
    pub buffer_j: f64,
    /// DRAM transfer energy.
    pub dram_j: f64,
    /// Static energy over the run's wall clock.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total Joules.
    pub fn total(&self) -> f64 {
        self.core_j + self.buffer_j + self.dram_j + self.static_j
    }
}

/// Computes the energy of a (already timed) cost under a config.
pub fn energy_of(cost: &GemmCost, cfg: &AcceleratorConfig, model: &EnergyModel) -> EnergyBreakdown {
    let core_j = cost.macs * cfg.compute_passes() * cfg.core_energy_overhead * model.mac_4bit_j;
    let buffer_j = cost.sram_bytes * model.sram_byte_j;
    let dram_j = cost.dram_bytes * model.dram_byte_j;
    let static_j = model.static_w * cost.seconds;
    EnergyBreakdown {
        core_j,
        buffer_j,
        dram_j,
        static_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::AcceleratorKind;
    use crate::timing::run_model;
    use m2x_nn::profile::ModelProfile;

    #[test]
    fn m2xfp_saves_energy_vs_all_baselines() {
        let p = ModelProfile::llama2_7b();
        let em = EnergyModel::default();
        let e = |kind| {
            let cfg = AcceleratorConfig::of(kind);
            let run = run_model(&p, &cfg, 4096);
            energy_of(&run.total, &cfg, &em).total()
        };
        let m2 = e(AcceleratorKind::M2xfp);
        for kind in [
            AcceleratorKind::MxOlive,
            AcceleratorKind::MxAnt,
            AcceleratorKind::MxMant,
            AcceleratorKind::MicroScopiQ,
        ] {
            assert!(e(kind) > m2, "{:?}", kind);
        }
    }

    #[test]
    fn energy_savings_vs_microscopiq_in_paper_band() {
        // §6.3: 1.75× average energy reduction vs MicroScopiQ.
        let p = ModelProfile::llama3_8b();
        let em = EnergyModel::default();
        let e = |kind| {
            let cfg = AcceleratorConfig::of(kind);
            let run = run_model(&p, &cfg, 4096);
            energy_of(&run.total, &cfg, &em).total()
        };
        let ratio = e(AcceleratorKind::MicroScopiQ) / e(AcceleratorKind::M2xfp);
        assert!((1.3..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn all_components_positive_and_core_dominant_when_compute_bound() {
        let p = ModelProfile::llama2_7b();
        let cfg = AcceleratorConfig::of(AcceleratorKind::M2xfp);
        let run = run_model(&p, &cfg, 4096);
        let e = energy_of(&run.total, &cfg, &EnergyModel::default());
        assert!(e.core_j > 0.0 && e.buffer_j > 0.0 && e.dram_j > 0.0 && e.static_j > 0.0);
        assert!((e.total() - (e.core_j + e.buffer_j + e.dram_j + e.static_j)).abs() < 1e-15);
    }

    #[test]
    fn energy_scales_with_work() {
        let cfg = AcceleratorConfig::of(AcceleratorKind::M2xfp);
        let em = EnergyModel::default();
        let small = GemmCost {
            macs: 1e6,
            compute_cycles: 1e3,
            dram_bytes: 1e4,
            sram_bytes: 1e5,
            seconds: 1e-6,
        };
        let big = GemmCost {
            macs: 2e6,
            compute_cycles: 2e3,
            dram_bytes: 2e4,
            sram_bytes: 2e5,
            seconds: 2e-6,
        };
        let es = energy_of(&small, &cfg, &em).total();
        let eb = energy_of(&big, &cfg, &em).total();
        assert!((eb / es - 2.0).abs() < 1e-9);
    }
}
