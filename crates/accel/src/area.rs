//! Gate-count area/power model — the reproduction's stand-in for Synopsys
//! DC + CACTI (Tbl. 5, §6.3).
//!
//! Logic units are decomposed into documented gate-count estimates
//! (NAND2-equivalents at a 28 nm cell area). The decomposition is
//! calibrated at a single reference point — the paper's MXFP4 PE tile
//! (2057.6 µm²) — after which the NVFP4 (+2.3 %) and M2XFP (+4.0 %) deltas
//! are *derived* from the extra features each format needs, and the Tbl. 5
//! breakdown follows from unit counts. SRAM area/power use a CACTI-class
//! per-KB model. Per-unit activity factors translate gates to dynamic
//! power at 500 MHz.

/// 28 nm NAND2-equivalent cell area (µm² per gate).
pub const GATE_UM2: f64 = 0.49;

/// Baseline dynamic power per gate at 500 MHz (mW), PE-class activity.
pub const GATE_MW: f64 = 4.83e-5;

/// SRAM macro area per KB (µm²), CACTI-class for 144 KB banks at 28 nm.
pub const SRAM_UM2_PER_KB: f64 = 2388.9;

/// SRAM power per KB (mW) at the evaluated activity.
pub const SRAM_MW_PER_KB: f64 = 0.544;

/// Which PE datapath variant (the §6.3 comparison set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// Plain FP4×FP4 MAC pipeline with E8M0 dequantize.
    Mxfp4,
    /// Adds FP8 (E4M3) scale handling: a mantissa multiplier in the
    /// dequantize stage.
    Nvfp4,
    /// Adds the ΔX auxiliary MAC, the shift-add subgroup scale refinement
    /// and metadata routing.
    M2xfp,
}

/// Gate budget of the baseline FP4 PE tile (8-lane subgroup MAC):
/// multipliers, adder tree, 32-bit fixed-point accumulator, exponent-align
/// dequantize, pipeline registers and control. Sums to the calibration
/// point 2057.6 µm² / [`GATE_UM2`] = 4199 gates.
pub const PE_BASE_GATES: [(&str, f64); 6] = [
    ("fp4 multipliers ×8", 680.0),
    ("adder tree", 520.0),
    ("32b fxp accumulator", 570.0),
    ("dequant shifter", 390.0),
    ("pipeline registers", 1250.0),
    ("control", 789.0),
];

/// Extra gates for NVFP4's FP8-scale mantissa multiply (+~2.3 %).
pub const NVFP4_EXTRA_GATES: f64 = 97.0;

/// Extra gates for M2XFP: auxiliary ΔX MAC (105), shift-add subgroup scale
/// (40), metadata routing mux (23) — +~4.0 %.
pub const M2XFP_EXTRA_GATES: f64 = 168.0;

/// Gate count of a PE tile variant.
pub fn pe_tile_gates(kind: PeKind) -> f64 {
    let base: f64 = PE_BASE_GATES.iter().map(|(_, g)| g).sum();
    match kind {
        PeKind::Mxfp4 => base,
        PeKind::Nvfp4 => base + NVFP4_EXTRA_GATES,
        PeKind::M2xfp => base + M2XFP_EXTRA_GATES,
    }
}

/// Area of a PE tile variant in µm².
pub fn pe_tile_area_um2(kind: PeKind) -> f64 {
    pe_tile_gates(kind) * GATE_UM2
}

/// Gate count of the Top-1 Decode Unit (Fig. 10): 16-entry LUT, 7-node
/// comparator tree, index/metadata packing.
pub const DECODE_UNIT_GATES: f64 = 30.0 + 98.0 + 41.0;

/// Gate count of the Quantization Engine (Fig. 12): group-max tree, scale
/// derivation, 32-lane normalize/round, encode (bias-clamp) and packing,
/// pipeline registers and control.
pub const QUANT_ENGINE_GATES: f64 = 380.0 + 120.0 + 1920.0 + 1280.0 + 200.0 + 1000.0 + 103.0;

/// One row of the Tbl. 5 breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Component name.
    pub component: String,
    /// Instance count.
    pub count: usize,
    /// Per-instance area in µm² (SRAM reported as the macro total).
    pub unit_area_um2: f64,
    /// Total area in mm².
    pub area_mm2: f64,
    /// Total power in mW.
    pub power_mw: f64,
}

/// Activity factors translating gates to power (calibrated to the Tbl. 5
/// power column: streaming units toggle more than the PE average).
const PE_ACTIVITY: f64 = 1.0;
const DECODE_ACTIVITY: f64 = 1.96;
const QE_ACTIVITY: f64 = 2.74;

/// Regenerates the Tbl. 5 component breakdown for the M2XFP core
/// (128 PE tiles, 4 decode units, 1 quantization engine, 324 KB SRAM).
pub fn table5() -> Vec<Table5Row> {
    let mut rows = Vec::new();
    let pe_area = pe_tile_area_um2(PeKind::M2xfp);
    let pe_gates = pe_tile_gates(PeKind::M2xfp);
    rows.push(Table5Row {
        component: "PE Tile".to_string(),
        count: 128,
        unit_area_um2: pe_area,
        area_mm2: pe_area * 128.0 / 1e6,
        power_mw: pe_gates * GATE_MW * PE_ACTIVITY * 128.0,
    });
    let dec_area = DECODE_UNIT_GATES * GATE_UM2;
    rows.push(Table5Row {
        component: "Top-1 Decode Unit".to_string(),
        count: 4,
        unit_area_um2: dec_area,
        area_mm2: dec_area * 4.0 / 1e6,
        power_mw: DECODE_UNIT_GATES * GATE_MW * DECODE_ACTIVITY * 4.0,
    });
    let qe_area = QUANT_ENGINE_GATES * GATE_UM2;
    rows.push(Table5Row {
        component: "Quantization Engine".to_string(),
        count: 1,
        unit_area_um2: qe_area,
        area_mm2: qe_area / 1e6,
        power_mw: QUANT_ENGINE_GATES * GATE_MW * QE_ACTIVITY,
    });
    let kb = 324.0;
    rows.push(Table5Row {
        component: "Buffer (324KB)".to_string(),
        count: 1,
        unit_area_um2: kb * SRAM_UM2_PER_KB,
        area_mm2: kb * SRAM_UM2_PER_KB / 1e6,
        power_mw: kb * SRAM_MW_PER_KB,
    });
    rows
}

/// Totals of [`table5`] `(area mm², power mW)`.
pub fn table5_totals() -> (f64, f64) {
    let rows = table5();
    (
        rows.iter().map(|r| r.area_mm2).sum(),
        rows.iter().map(|r| r.power_mw).sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mxfp4_pe_matches_calibration_point() {
        let a = pe_tile_area_um2(PeKind::Mxfp4);
        assert!((a - 2057.6).abs() / 2057.6 < 0.005, "got {a}");
    }

    #[test]
    fn pe_deltas_match_section_6_3() {
        // Paper: NVFP4 +2.3 %, M2XFP +4.0 % over the MXFP4 PE tile.
        let base = pe_tile_area_um2(PeKind::Mxfp4);
        let nv = pe_tile_area_um2(PeKind::Nvfp4) / base - 1.0;
        let m2 = pe_tile_area_um2(PeKind::M2xfp) / base - 1.0;
        assert!((nv - 0.023).abs() < 0.003, "nvfp4 delta {nv}");
        assert!((m2 - 0.040).abs() < 0.003, "m2xfp delta {m2}");
    }

    #[test]
    fn decode_unit_tiny() {
        // Paper: 82.91 µm² per decode unit.
        let a = DECODE_UNIT_GATES * GATE_UM2;
        assert!((a - 82.91).abs() / 82.91 < 0.02, "got {a}");
    }

    #[test]
    fn quant_engine_area_close() {
        // Paper: 2451.47 µm².
        let a = QUANT_ENGINE_GATES * GATE_UM2;
        assert!((a - 2451.47).abs() / 2451.47 < 0.02, "got {a}");
    }

    #[test]
    fn table5_totals_near_paper() {
        // Paper: 1.051 mm², 204.02 mW.
        let (area, power) = table5_totals();
        assert!((area - 1.051).abs() / 1.051 < 0.02, "area {area}");
        assert!((power - 204.02).abs() / 204.02 < 0.05, "power {power}");
    }

    #[test]
    fn metadata_units_are_negligible_fraction() {
        // §6.3: decode units + QE are ~0.26 % of area.
        let rows = table5();
        let total: f64 = rows.iter().map(|r| r.area_mm2).sum();
        let meta: f64 = rows
            .iter()
            .filter(|r| r.component.contains("Decode") || r.component.contains("Quantization"))
            .map(|r| r.area_mm2)
            .sum();
        let frac = meta / total;
        assert!(frac < 0.005, "metadata fraction {frac}");
    }
}
