//! Tiled weight-stationary GEMM cycle model with compute/memory overlap.
//!
//! The array holds a 32×32 weight tile; activations stream through, one
//! column of partial sums retiring per cycle after pipeline fill. Output
//! tiles accumulate over the reduction dimension inside the array/output
//! buffer (no partial-sum spills). Each operand is fetched from DRAM once
//! per *pass* over it; when a full operand does not fit on chip it is
//! re-streamed once per resident tile stripe of the other operand.
//! Compute and memory overlap perfectly (double buffering), so GEMM time
//! is `max(compute, dram)` — the standard roofline treatment.

use crate::arch::AcceleratorConfig;
use m2x_nn::layers::{linear_gemms, GemmShape};
use m2x_nn::profile::ModelProfile;

/// Cost of one GEMM on one accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmCost {
    /// Multiply–accumulates (before fallback passes).
    pub macs: f64,
    /// Compute cycles (incl. passes, tiling fill and overhead).
    pub compute_cycles: f64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: f64,
    /// Bytes read/written at the SRAM buffers.
    pub sram_bytes: f64,
    /// Wall-clock seconds (max of compute and memory streams).
    pub seconds: f64,
}

impl GemmCost {
    fn add(&mut self, o: &GemmCost) {
        self.macs += o.macs;
        self.compute_cycles += o.compute_cycles;
        self.dram_bytes += o.dram_bytes;
        self.sram_bytes += o.sram_bytes;
        self.seconds += o.seconds;
    }

    /// Zero cost.
    pub fn zero() -> GemmCost {
        GemmCost {
            macs: 0.0,
            compute_cycles: 0.0,
            dram_bytes: 0.0,
            sram_bytes: 0.0,
            seconds: 0.0,
        }
    }
}

/// Computes the cost of one GEMM `[m×k]·[k×n]`.
pub fn gemm_cost(shape: &GemmShape, cfg: &AcceleratorConfig) -> GemmCost {
    let mach = &cfg.machine;
    let (m, k, n) = (shape.m as f64, shape.k as f64, shape.n as f64);
    let macs = m * k * n;

    // ── Compute ──
    // Weight tiles are double-buffered in the PE registers, so successive
    // k-tiles stream back-to-back; the pipeline fill is paid once per
    // column stripe.
    let tiles_k = (shape.k as f64 / mach.array_rows as f64).ceil();
    let tiles_n = (shape.n as f64 / mach.array_cols as f64).ceil();
    let fill = (mach.array_rows + mach.array_cols) as f64;
    let compute_cycles =
        (tiles_k * tiles_n * m + tiles_n * fill) * cfg.compute_passes() * cfg.compute_overhead;

    // ── DRAM traffic ──
    let w_bytes = k * n * cfg.weight_bytes_per_elem();
    let a_bytes = m * k * cfg.act_bytes_per_elem();
    let o_bytes = m * n * 2.0; // FP16 outputs
                               // Re-streaming: whichever full operand fits on chip is read once; if
                               // neither fits, the activations are re-read once per weight stripe
                               // resident in the weight buffer.
    let w_resident_stripes = (w_bytes / mach.weight_buffer as f64).ceil().max(1.0);
    let a_fits = a_bytes <= mach.act_buffer as f64;
    let a_reads = if a_fits { 1.0 } else { w_resident_stripes };
    let dram_bytes = w_bytes + a_bytes * a_reads + o_bytes;

    // ── SRAM traffic ──
    // Activations are read from the buffer once per weight column tile;
    // weights once per activation row tile group (weight-stationary:
    // loaded once per tile); outputs written once and partial sums kept
    // in the output buffer across k-tiles (1 read + 1 write per k step
    // beyond the first).
    let a_sram = m * k * cfg.act_bytes_per_elem() * tiles_n;
    let w_sram = w_bytes;
    let psum_sram = m * n * 4.0 * (2.0 * (tiles_k - 1.0)).max(0.0);
    let sram_bytes = a_sram + w_sram + psum_sram + o_bytes;

    let t_compute = compute_cycles / mach.freq_hz;
    let t_dram = dram_bytes / mach.dram_bw;
    GemmCost {
        macs,
        compute_cycles,
        dram_bytes,
        sram_bytes,
        seconds: t_compute.max(t_dram),
    }
}

/// The aggregated cost of a full model forward pass.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// Accelerator name.
    pub accelerator: String,
    /// Model name.
    pub model: String,
    /// Sequence length used.
    pub seq: usize,
    /// Aggregate cost over all layers.
    pub total: GemmCost,
}

/// Runs the linear stack of a model (all layers) at sequence length `seq`.
pub fn run_model(profile: &ModelProfile, cfg: &AcceleratorConfig, seq: usize) -> ModelRun {
    let mut total = GemmCost::zero();
    for shape in linear_gemms(profile, seq) {
        let c = gemm_cost(&shape, cfg);
        // One identical GEMM set per transformer layer.
        let layers = profile.layers as f64;
        total.add(&GemmCost {
            macs: c.macs * layers,
            compute_cycles: c.compute_cycles * layers,
            dram_bytes: c.dram_bytes * layers,
            sram_bytes: c.sram_bytes * layers,
            seconds: c.seconds * layers,
        });
    }
    ModelRun {
        accelerator: cfg.kind.name().to_string(),
        model: profile.name.to_string(),
        seq,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::AcceleratorKind;

    fn shape(m: usize, k: usize, n: usize) -> GemmShape {
        GemmShape {
            name: "t".into(),
            m,
            k,
            n,
        }
    }

    #[test]
    fn compute_bound_large_gemm() {
        let cfg = AcceleratorConfig::of(AcceleratorKind::M2xfp);
        let c = gemm_cost(&shape(4096, 4096, 4096), &cfg);
        let t_dram = c.dram_bytes / cfg.machine.dram_bw;
        assert!(
            c.seconds > t_dram,
            "large square GEMM should be compute-bound"
        );
        // Utilization sanity: cycles within 2x of macs/PEs.
        let ideal = c.macs / cfg.machine.pes() as f64;
        assert!(c.compute_cycles < ideal * 2.0 && c.compute_cycles >= ideal);
    }

    #[test]
    fn memory_bound_skinny_gemm() {
        // Single-token decode (m = 1) is weight-bandwidth-bound.
        let cfg = AcceleratorConfig::of(AcceleratorKind::M2xfp);
        let c = gemm_cost(&shape(1, 4096, 4096), &cfg);
        let t_dram = c.dram_bytes / cfg.machine.dram_bw;
        assert_eq!(c.seconds, t_dram);
    }

    #[test]
    fn m2xfp_faster_than_all_baselines() {
        let p = ModelProfile::llama2_7b();
        let m2 = run_model(&p, &AcceleratorConfig::of(AcceleratorKind::M2xfp), 4096);
        for kind in [
            AcceleratorKind::MxOlive,
            AcceleratorKind::MxAnt,
            AcceleratorKind::MxMant,
            AcceleratorKind::MicroScopiQ,
        ] {
            let other = run_model(&p, &AcceleratorConfig::of(kind), 4096);
            assert!(
                m2.total.seconds < other.total.seconds,
                "{} not slower",
                kind.name()
            );
        }
    }

    #[test]
    fn speedup_over_microscopiq_in_paper_band() {
        // §6.3: on average 1.91× over MicroScopiQ (compute-bound regime).
        let p = ModelProfile::llama3_8b();
        let m2 = run_model(&p, &AcceleratorConfig::of(AcceleratorKind::M2xfp), 4096);
        let ms = run_model(
            &p,
            &AcceleratorConfig::of(AcceleratorKind::MicroScopiQ),
            4096,
        );
        let speedup = ms.total.seconds / m2.total.seconds;
        assert!((1.5..2.4).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn olive_slowest() {
        let p = ModelProfile::opt_6_7b();
        let runs: Vec<f64> = AcceleratorKind::ALL
            .iter()
            .map(|&k| run_model(&p, &AcceleratorConfig::of(k), 4096).total.seconds)
            .collect();
        let olive = runs[0];
        assert!(runs.iter().all(|&t| t <= olive));
    }

    #[test]
    fn tiny_reduction_dim_still_counts_one_tile() {
        let cfg = AcceleratorConfig::of(AcceleratorKind::M2xfp);
        let c = gemm_cost(&shape(64, 16, 16), &cfg);
        assert!(c.compute_cycles >= 64.0);
        assert!(c.dram_bytes > 0.0 && c.seconds > 0.0);
    }

    #[test]
    fn fallback_inflates_bytes_and_cycles() {
        let m2 = AcceleratorConfig::of(AcceleratorKind::M2xfp);
        let olive = AcceleratorConfig::of(AcceleratorKind::MxOlive);
        let s = shape(256, 1024, 1024);
        let c_m2 = gemm_cost(&s, &m2);
        let c_ol = gemm_cost(&s, &olive);
        assert!(c_ol.compute_cycles > 2.0 * c_m2.compute_cycles);
        assert!(c_ol.dram_bytes > c_m2.dram_bytes);
    }

    #[test]
    fn cost_scales_linearly_with_layers() {
        let mut p = ModelProfile::llama2_7b();
        let c32 = run_model(&p, &AcceleratorConfig::of(AcceleratorKind::M2xfp), 256);
        p.layers = 16;
        let c16 = run_model(&p, &AcceleratorConfig::of(AcceleratorKind::M2xfp), 256);
        let ratio = c32.total.seconds / c16.total.seconds;
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}
