//! Bit-exact functional models of the three M2XFP hardware units, mirrored
//! gate-for-gate from Figs. 10–12 and verified against the algorithmic
//! reference in `m2xfp`.

use m2x_formats::tables::FP4_ABS_KEY;
use m2x_formats::{fp4, fp6_e2m3};
use m2xfp::activation::ActGroup;
use m2xfp::{GroupConfig, ScaleRule};

/// The Top-1 Decode Unit (Fig. 10): FP4→UINT lookup, a three-level
/// comparator tree over eight inputs, and index/metadata packing.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopOneDecodeUnit;

impl TopOneDecodeUnit {
    /// Runs the comparator tree over up to eight FP4 codes, returning
    /// `(index, code)` of the top-1 by absolute value (lowest index wins
    /// ties — the '<' on the index path in Fig. 10).
    ///
    /// # Panics
    ///
    /// Panics when `codes` is empty or longer than 8 (one unit handles
    /// eight 4-bit inputs, §6.3).
    pub fn top1(&self, codes: &[u8]) -> (usize, u8) {
        assert!(!codes.is_empty() && codes.len() <= 8, "unit width is 8");
        // Level 0: map through the LUT, pair with indices.
        let mut nodes: Vec<(u8, usize)> = codes
            .iter()
            .enumerate()
            .map(|(i, &c)| (FP4_ABS_KEY[(c & 0xF) as usize], i))
            .collect();
        // Three comparator levels (fewer for shorter inputs).
        while nodes.len() > 1 {
            let mut next = Vec::with_capacity(nodes.len().div_ceil(2));
            for pair in nodes.chunks(2) {
                if pair.len() == 1 {
                    next.push(pair[0]);
                    continue;
                }
                let (a, b) = (pair[0], pair[1]);
                // val >= on the left input keeps the lower index on ties.
                next.push(if a.0 >= b.0 { a } else { b });
            }
            nodes = next;
        }
        let idx = nodes[0].1;
        (idx, codes[idx])
    }
}

/// The augmented PE tile (Fig. 11): FP4×FP4 MAC pipeline + extra-mantissa
/// correction MAC + shift-add subgroup scale refinement, accumulating in
/// fixed point.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeTile;

impl PeTile {
    /// One subgroup MAC: weights and activations as FP4 codes, the
    /// activation top-1 index and 2-bit metadata, the weight Sg-EM code.
    /// Returns the partial sum in units of 1/64.
    pub fn subgroup_mac(
        &self,
        w_codes: &[u8],
        x_codes: &[u8],
        top1_idx: usize,
        x_meta: u8,
        sg_em: u8,
    ) -> i64 {
        assert_eq!(w_codes.len(), x_codes.len());
        let f4 = fp4();
        // Baseline FP4×FP4 products in units of 1/16 (w×2 · x×8).
        let mut psum: i64 = 0;
        for (&wc, &xc) in w_codes.iter().zip(x_codes) {
            let w2 = (f4.decode(wc) * 2.0) as i64;
            let x8 = (f4.decode(xc) * 8.0) as i64;
            psum += w2 * x8;
        }
        // Extra-mantissa correction: ΔX = refined − base at the top-1 slot
        // (the auxiliary MAC of Fig. 11, hidden bit zero).
        let xc = x_codes[top1_idx];
        let sign: i64 = if xc & 0x8 != 0 { -1 } else { 1 };
        let base8 = (f4.decode(xc) * 8.0) as i64;
        let fp6_bits = ((xc & 0x7) as i32) << 2 | x_meta as i32;
        let refined8 = if fp6_bits == 0 {
            0
        } else {
            sign * (fp6_e2m3().decode_magnitude((fp6_bits - 1) as u8) * 8.0) as i64
        };
        let w2_top = (f4.decode(w_codes[top1_idx]) * 2.0) as i64;
        psum += (refined8 - base8) * w2_top;
        // Subgroup scale refinement ×(1 + sg_em/4) via shift-add:
        // P + (bit1 ? P>>1) + (bit0 ? P>>2), exact in 1/64 units.
        let p4 = psum * 4;
        let p_half = if sg_em & 0b10 != 0 { psum * 2 } else { 0 };
        let p_quarter = if sg_em & 0b01 != 0 { psum } else { 0 };
        p4 + p_half + p_quarter
    }

    /// Dequantize-and-accumulate across subgroups: exponent alignment only
    /// (E8M0 scales), as in the Fig. 11 output stage.
    pub fn dequantize(&self, acc64: i64, x_exp: i32, w_exp: i32) -> f64 {
        acc64 as f64 * ((x_exp + w_exp - 6) as f64).exp2()
    }
}

/// The two-stage Quantization Engine (Fig. 12): scaling & normalize unit
/// (max → scale → normalize → round) feeding the encode unit (top-1 select,
/// +1 bias, clamp, pack).
#[derive(Debug, Clone, Copy)]
pub struct QuantizationEngine {
    cfg: GroupConfig,
    rule: ScaleRule,
}

impl QuantizationEngine {
    /// Engine at the paper's production geometry.
    pub fn new(cfg: GroupConfig, rule: ScaleRule) -> Self {
        QuantizationEngine { cfg, rule }
    }

    /// Stage 1 + Stage 2 over one activation group; produces exactly the
    /// packed representation of Algorithm 1.
    pub fn quantize(&self, x: &[f32]) -> ActGroup {
        let f4 = fp4();
        let f6 = fp6_e2m3();
        // ── Stage 1: Scaling & Normalize Unit ──
        let amax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = self.rule.shared_scale(amax, f4);
        let s = scale.value();
        let codes: Vec<u8> = x.iter().map(|&v| f4.encode(v / s)).collect();
        let fp6_mags: Vec<u8> = x
            .iter()
            .map(|&v| f6.encode_magnitude(v.abs() / s))
            .collect();
        // ── Stage 2: Encode Unit ──
        let decode = TopOneDecodeUnit;
        let mut meta = Vec::with_capacity(self.cfg.subgroup_count(x.len()));
        for (sg_idx, sg_codes) in codes.chunks(self.cfg.subgroup_size()).enumerate() {
            let (local, top_code) = decode.top1(sg_codes);
            let idx = sg_idx * self.cfg.subgroup_size() + local;
            let fp4_mag = top_code & 0x7;
            let encoded = fp6_mags[idx] + 1;
            let lo = fp4_mag << 2;
            meta.push(encoded.clamp(lo, lo | 0b11) & 0b11);
        }
        ActGroup { codes, scale, meta }
    }
}

impl Default for QuantizationEngine {
    fn default() -> Self {
        QuantizationEngine::new(GroupConfig::m2xfp_default(), ScaleRule::Floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::Xoshiro;
    use m2xfp::activation;

    fn random_group(seed: u64, n: usize) -> Vec<f32> {
        let mut r = Xoshiro::seed(seed);
        r.vec_of(n, |r| r.laplace(1.3))
    }

    #[test]
    fn comparator_tree_matches_reference_top1() {
        let unit = TopOneDecodeUnit;
        let mut r = Xoshiro::seed(5);
        for _ in 0..500 {
            let codes: Vec<u8> = (0..8).map(|_| (r.below(16)) as u8).collect();
            let (idx, code) = unit.top1(&codes);
            assert_eq!(idx, m2x_formats::tables::top1_index(&codes));
            assert_eq!(code, codes[idx]);
        }
    }

    #[test]
    fn comparator_tree_handles_short_subgroups() {
        let unit = TopOneDecodeUnit;
        for n in 1..=8usize {
            let codes: Vec<u8> = (0..n).map(|i| (i * 3 % 16) as u8).collect();
            let (idx, _) = unit.top1(&codes);
            assert_eq!(idx, m2x_formats::tables::top1_index(&codes));
        }
    }

    #[test]
    fn quantization_engine_matches_algorithm1() {
        let qe = QuantizationEngine::default();
        let gc = GroupConfig::m2xfp_default();
        for seed in 0..50 {
            let x = random_group(seed, 32);
            let hw = qe.quantize(&x);
            let sw = activation::quantize_group(&x, gc, ScaleRule::Floor);
            assert_eq!(hw, sw, "seed {seed}");
        }
    }

    #[test]
    fn pe_tile_matches_reference_gemm() {
        // One full group through the PE pipeline equals the bit-exact GEMM
        // reference on a 1×32 × 32×1 problem.
        use m2xfp::format::{ActTensor, WeightTensor};
        use m2xfp::M2xfpConfig;
        let cfg = M2xfpConfig::default();
        let pe = PeTile;
        for seed in 0..30 {
            let xv = random_group(seed * 2 + 1, 32);
            let wv = random_group(seed * 2 + 2, 32);
            let x = ActTensor::quantize(&m2x_tensor::Matrix::from_vec(1, 32, xv.clone()), cfg);
            let w = WeightTensor::quantize(&m2x_tensor::Matrix::from_vec(1, 32, wv.clone()), cfg);
            let want = m2xfp::gemm::qgemm(&x, &w)[(0, 0)];

            let xg = &x.groups()[0];
            let wg = &w.groups()[0];
            let mut acc64 = 0i64;
            for (s, (xs, ws)) in xg.codes.chunks(8).zip(wg.codes.chunks(8)).enumerate() {
                let (local, _) = TopOneDecodeUnit.top1(xs);
                acc64 += pe.subgroup_mac(ws, xs, local, xg.meta[s], wg.sg_em[s]);
            }
            let got = pe.dequantize(acc64, xg.scale.exponent(), wg.scale.exponent()) as f32;
            assert_eq!(got.to_bits(), want.to_bits(), "seed {seed}");
        }
    }

    #[test]
    fn shift_add_multipliers_are_exact() {
        let pe = PeTile;
        // With ΔX = 0 and a single product, check ×{1.0,1.25,1.5,1.75}.
        let f4 = m2x_formats::fp4();
        let w = [f4.encode(2.0)];
        let x = [f4.encode(3.0)];
        // product = 6.0 -> w2·x8 = 4·24 = 96 (1/16 units).
        for (code, want64) in [(0u8, 384i64), (1, 480), (2, 576), (3, 672)] {
            // meta 01 decodes to the FP4 value itself (no correction).
            let got = pe.subgroup_mac(&w, &x, 0, 0b01, code);
            assert_eq!(got, want64, "sg_em {code}");
        }
    }
}
