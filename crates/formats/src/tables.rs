//! Lookup tables used by the Top-1 Decode Unit (paper Fig. 10) and the
//! FP4→FP6 candidate mapping behind the bias-clamp encoding (paper §4.4.1).

#[cfg(test)]
use crate::fp4;
use crate::fp6_e2m3;

/// FP4-code → unsigned magnitude key, the "FP4-to-UINT lookup table" of the
/// Top-1 Decode Unit.
///
/// FP4 (E2M1) magnitudes are monotone in their 3 magnitude bits, so the key
/// is simply `code & 0x7`: comparing keys compares absolute values. Sign
/// (bit 3) is masked off, making +x and −x compare equal; ties are broken by
/// taking the lowest index, exactly as the comparator tree does.
pub const FP4_ABS_KEY: [u8; 16] = [
    0, 1, 2, 3, 4, 5, 6, 7, // +0 .. +6
    0, 1, 2, 3, 4, 5, 6, 7, // -0 .. -6
];

/// FP4 code → signed value ×8, as stored in the PE's activation datapath.
///
/// FP4 (E2M1) values are multiples of 1/2 with magnitudes
/// {0, 0.5, 1, 1.5, 2, 3, 4, 6}; scaling by 8 makes every entry an exact
/// integer (the activation side carries a further FP6 refinement whose
/// resolution is 1/8, so ×8 is the natural fixed-point unit). Indexing with
/// the full 4-bit code applies the sign directly — no float decode, no
/// multiply, no cast.
pub const FP4_X8: [i8; 16] = [
    0, 4, 8, 12, 16, 24, 32, 48, // +codes
    0, -4, -8, -12, -16, -24, -32, -48, // -codes
];

/// FP4 code → signed value ×2, the weight-side fixed-point decode (weights
/// carry no element metadata, so 1/2 resolution suffices).
pub const FP4_X2: [i8; 16] = [
    0, 1, 2, 3, 4, 6, 8, 12, // +codes
    0, -1, -2, -3, -4, -6, -8, -12, // -codes
];

/// FP4 code → exact `f32` value, all 16 codes (sign in bit 3). Every FP4
/// value is a small dyadic rational, so the table is exact; entry 8 is
/// `-0.0` so that sign-sensitive arithmetic (`value * scale`) reproduces
/// the codec's float decode bit for bit.
pub const FP4_VALUES: [f32; 16] = [
    0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, // +codes
    -0.0, -0.5, -1.0, -1.5, -2.0, -3.0, -4.0, -6.0, // -codes
];

/// Branch-free FP4 (E2M1) magnitude encode: the code is the count of
/// rounding boundaries below `a`.
///
/// The FP4 magnitude grid is {0, 0.5, 1, 1.5, 2, 3, 4, 6} and
/// round-to-nearest-even places the decision boundaries at
/// {0.25, 0.75, 1.25, 1.75, 2.5, 3.5, 5}; the midpoints that tie *upward*
/// under RNE (0.75 → 1.0, 1.75 → 2.0, 3.5 → 4.0 land on even mantissas)
/// use `>=`, the rest use `>`. Summing the seven comparison bits yields the
/// magnitude code with integer adds only — no `log2`, no rounding loop.
///
/// Bit-identical to `fp4().encode_magnitude(a)` for every non-negative
/// input including `+0.0`, subnormals, `+∞` (saturates to code 7) and NaN
/// (code 0, matching [`crate::SpecialValues::None`]); verified
/// exhaustively in the tests.
#[inline(always)]
pub fn fp4_mag_code(a: f32) -> u8 {
    (a > 0.25) as u8
        + (a >= 0.75) as u8
        + (a > 1.25) as u8
        + (a >= 1.75) as u8
        + (a > 2.5) as u8
        + (a >= 3.5) as u8
        + (a > 5.0) as u8
}

/// Branch-free full FP4 encode (sign in bit 3), bit-identical to
/// `fp4().encode(x)` — the hot-path primitive behind the Sg-EM/Sg-EE
/// weight-search LUT scorer.
#[inline(always)]
pub fn fp4_encode(x: f32) -> u8 {
    ((x.is_sign_negative() as u8) << 3) | fp4_mag_code(x.abs())
}

/// Branch-light FP6 (E2M3) magnitude encode, bit-identical to
/// `fp6_e2m3().encode_magnitude(a)` — the online-path primitive behind the
/// fast Elem-EM-top1 activation encoder (one call per subgroup).
///
/// The FP6 magnitude grid has a uniform step of 1/8 below 2.0 (subnormals
/// and the first normal binade share it), 1/4 in `[2, 4)` and 1/2 in
/// `[4, 7.5]`, and codes are affine in the step count within each region,
/// so RNE quantization is one exact power-of-two multiply plus
/// `round_ties_even` per region — no `log2`, no grid search. Saturation
/// (`a ≥ 7.5`, including `+∞`) hits the max code and NaN encodes as 0,
/// matching [`crate::SpecialValues::None`]; verified against the codec on
/// a dense sweep, at every RNE boundary and on specials in the tests.
#[inline(always)]
pub fn fp6_mag_code(a: f32) -> u8 {
    if a >= 7.5 {
        return 31;
    }
    if a.is_nan() {
        return 0;
    }
    if a < 2.0 {
        // Codes 0..=16 at step 1/8 (a·8 is exact: power-of-two multiply).
        (a * 8.0).round_ties_even() as u8
    } else if a < 4.0 {
        // Codes 16..=24 at step 1/4: code = 8 + a·4 on the grid.
        (a * 4.0).round_ties_even() as u8 + 8
    } else {
        // Codes 24..=31 at step 1/2: code = 16 + a·2 on the grid.
        (a * 2.0).round_ties_even() as u8 + 16
    }
}

/// `(FP4 code, 2-bit meta)` → signed refined value ×8: the integer form of
/// [`decode_extra_mantissa`] with the sign folded in.
///
/// Row `c` column `k` holds `sign(c) · decode_extra_mantissa(c & 7, k) · 8`,
/// i.e. the FP6 (E2M3) magnitude at bits `((c & 7) << 2 | k) - 1` times the
/// sign of the FP4 code. Entry `(0, 0)` (and its negative twin) is the
/// unreachable degenerate encoding and decodes to 0, matching the float
/// path. Verified exhaustively against the float decode in the tests.
pub const EXTRA_X8: [[i16; 4]; 16] = [
    [0, 0, 1, 2],
    [3, 4, 5, 6],
    [7, 8, 9, 10],
    [11, 12, 13, 14],
    [15, 16, 18, 20],
    [22, 24, 26, 28],
    [30, 32, 36, 40],
    [44, 48, 52, 56],
    [0, 0, -1, -2],
    [-3, -4, -5, -6],
    [-7, -8, -9, -10],
    [-11, -12, -13, -14],
    [-15, -16, -18, -20],
    [-22, -24, -26, -28],
    [-30, -32, -36, -40],
    [-44, -48, -52, -56],
];

/// Finds the top-1 element of a subgroup of FP4 codes: the element with the
/// largest absolute value, ties resolved by the lowest index (paper Alg. 1,
/// steps ❸–❹).
///
/// # Panics
///
/// Panics when `codes` is empty.
pub fn top1_index(codes: &[u8]) -> usize {
    assert!(!codes.is_empty(), "subgroup must be non-empty");
    let mut best = 0usize;
    let mut best_key = FP4_ABS_KEY[(codes[0] & 0xF) as usize];
    for (i, &c) in codes.iter().enumerate().skip(1) {
        let key = FP4_ABS_KEY[(c & 0xF) as usize];
        // Strict '>' keeps the lowest index on ties.
        if key > best_key {
            best = i;
            best_key = key;
        }
    }
    best
}

/// Finds the top-2 indices of a subgroup (largest first; ties by lowest
/// index). Used by the Elem-EM-top2 design-space point.
///
/// # Panics
///
/// Panics when `codes.len() < 2`.
pub fn top2_indices(codes: &[u8]) -> [usize; 2] {
    assert!(codes.len() >= 2, "need at least two elements");
    let first = top1_index(codes);
    let mut second = usize::MAX;
    let mut second_key = 0u8;
    let mut seen = false;
    for (i, &c) in codes.iter().enumerate() {
        if i == first {
            continue;
        }
        let key = FP4_ABS_KEY[(c & 0xF) as usize];
        if !seen || key > second_key {
            second = i;
            second_key = key;
            seen = true;
        }
    }
    [first, second]
}

/// The five FP6 (E2M3) magnitudes that a value rounding to the given FP4
/// magnitude can itself round to — e.g. FP4 4.0 covers (3.5, 5] whose FP6
/// quantizations are {3.5, 3.75, 4.0, 4.5, 5.0} (paper §4.4.1).
///
/// The returned candidates are those representable by the bias-clamp
/// encoding, i.e. FP6 magnitude bits in `[(mag<<2)-1, (mag<<2)+2]` clamped
/// to valid codes; the theoretical bias −2 candidate is excluded by design.
pub fn fp6_candidates(fp4_mag: u8) -> Vec<f32> {
    let fp6 = fp6_e2m3();
    let base = (fp4_mag as i32) << 2;
    let mut out = Vec::with_capacity(4);
    for meta in 0..4i32 {
        let bits = base + meta - 1;
        if (0..32).contains(&bits) {
            out.push(fp6.decode_magnitude(bits as u8));
        }
    }
    out
}

/// Decodes 2-bit extra-mantissa metadata for an FP4 magnitude into the
/// refined FP6 magnitude: `fp6_bits = (fp4_mag << 2 | meta) - 1`
/// (the "-1" box in Figs. 10 and 12).
///
/// `(fp4_mag = 0, meta = 0)` cannot be produced by a valid encoder; it
/// decodes to 0.0 for robustness.
pub fn decode_extra_mantissa(fp4_mag: u8, meta: u8) -> f32 {
    debug_assert!(fp4_mag < 8 && meta < 4);
    let bits = ((fp4_mag as i32) << 2 | meta as i32) - 1;
    if bits < 0 {
        return 0.0;
    }
    fp6_e2m3().decode_magnitude(bits as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp4_x8_matches_float_decode() {
        let f = fp4();
        for c in 0..16u8 {
            let want = f.decode(c) * 8.0;
            assert_eq!(want.fract(), 0.0, "FP4×8 must be integral");
            assert_eq!(FP4_X8[c as usize] as f32, want, "code {c}");
        }
    }

    #[test]
    fn fp4_x2_matches_float_decode() {
        let f = fp4();
        for c in 0..16u8 {
            let want = f.decode(c) * 2.0;
            assert_eq!(want.fract(), 0.0, "FP4×2 must be integral");
            assert_eq!(FP4_X2[c as usize] as f32, want, "code {c}");
        }
    }

    #[test]
    fn extra_x8_matches_float_decode() {
        for c in 0..16u8 {
            let sign = if c & 0x8 != 0 { -1.0f32 } else { 1.0 };
            for meta in 0..4u8 {
                let want = sign * decode_extra_mantissa(c & 0x7, meta) * 8.0;
                assert_eq!(want.fract(), 0.0, "refined FP6×8 must be integral");
                assert_eq!(
                    EXTRA_X8[c as usize][meta as usize] as f32, want,
                    "code {c} meta {meta}"
                );
            }
        }
    }

    #[test]
    fn fp4_values_match_float_decode() {
        let f = fp4();
        for c in 0..16u8 {
            let want = f.decode(c);
            let got = FP4_VALUES[c as usize];
            assert_eq!(got.to_bits(), want.to_bits(), "code {c}");
        }
    }

    #[test]
    fn fast_encode_matches_codec_on_dense_sweep() {
        let f = fp4();
        // Dense sweep over the interesting range, both signs.
        let mut x = -8.0f32;
        while x <= 8.0 {
            assert_eq!(fp4_encode(x), f.encode(x), "x={x}");
            x += 0.001;
        }
    }

    #[test]
    fn fast_encode_matches_codec_at_exact_boundaries() {
        let f = fp4();
        // RNE decision boundaries and grid points, at many binades: these
        // are exactly representable after scaling by powers of two, so the
        // tie behavior must match precisely.
        let pts = [
            0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 7.0,
        ];
        for e in -130..=120i32 {
            let s = (e as f32).exp2();
            for &p in &pts {
                for v in [p * s, -(p * s)] {
                    assert_eq!(fp4_encode(v), f.encode(v), "v={v} (p={p}, e={e})");
                }
            }
        }
    }

    #[test]
    fn fast_encode_matches_codec_on_specials() {
        let f = fp4();
        for v in [
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MAX,
            f32::MIN_POSITIVE,
            f32::from_bits(1), // smallest subnormal
            -0.0,
            0.0,
        ] {
            assert_eq!(fp4_encode(v), f.encode(v), "v={v}");
        }
        // NaN: codec encodes magnitude 0 under SpecialValues::None; the sign
        // bit follows the NaN payload's sign in both paths.
        assert_eq!(fp4_encode(f32::NAN) & 0x7, f.encode(f32::NAN) & 0x7);
    }

    #[test]
    fn fast_fp6_encode_matches_codec_on_dense_sweep() {
        let f = fp6_e2m3();
        let mut a = 0.0f32;
        while a <= 9.0 {
            assert_eq!(fp6_mag_code(a), f.encode_magnitude(a), "a={a}");
            a += 0.0007;
        }
    }

    #[test]
    fn fast_fp6_encode_matches_codec_at_exact_boundaries() {
        let f = fp6_e2m3();
        // Every grid point and every RNE midpoint of the three step regions,
        // scaled across binades that keep them exactly representable.
        let mut pts = Vec::new();
        for i in 0..=64u32 {
            pts.push(i as f32 / 16.0); // 1/16 covers all 1/8-step midpoints
        }
        for i in 0..=64u32 {
            pts.push(2.0 + i as f32 / 8.0);
            pts.push(4.0 + i as f32 / 4.0);
        }
        for &p in &pts {
            for e in [-3i32, -1, 0, 1, 2] {
                let v = p * (e as f32).exp2();
                assert_eq!(fp6_mag_code(v), f.encode_magnitude(v), "v={v}");
            }
        }
    }

    #[test]
    fn fast_fp6_encode_matches_codec_on_specials() {
        let f = fp6_e2m3();
        for v in [
            f32::INFINITY,
            f32::MAX,
            f32::MIN_POSITIVE,
            f32::from_bits(1),
            0.0,
            7.25,
            7.5,
            7.75,
        ] {
            assert_eq!(fp6_mag_code(v), f.encode_magnitude(v), "v={v}");
        }
        assert_eq!(fp6_mag_code(f32::NAN), f.encode_magnitude(f32::NAN));
    }

    #[test]
    fn abs_key_is_monotone_in_abs_value() {
        let f = fp4();
        for a in 0..16u8 {
            for b in 0..16u8 {
                let va = f.decode(a).abs();
                let vb = f.decode(b).abs();
                let ka = FP4_ABS_KEY[a as usize];
                let kb = FP4_ABS_KEY[b as usize];
                assert_eq!(va > vb, ka > kb, "codes {a},{b}");
                assert_eq!(va == vb, ka == kb, "codes {a},{b}");
            }
        }
    }

    #[test]
    fn top1_picks_largest_abs() {
        // values: 1.0, -6.0, 4.0, 0.5 -> -6.0 wins
        let f = fp4();
        let codes = [f.encode(1.0), f.encode(-6.0), f.encode(4.0), f.encode(0.5)];
        assert_eq!(top1_index(&codes), 1);
    }

    #[test]
    fn top1_tie_breaks_to_lowest_index() {
        let f = fp4();
        let codes = [f.encode(2.0), f.encode(-4.0), f.encode(4.0), f.encode(4.0)];
        assert_eq!(top1_index(&codes), 1);
        let codes2 = [f.encode(0.0), f.encode(3.0), f.encode(-3.0)];
        assert_eq!(top1_index(&codes2), 1);
    }

    #[test]
    fn top2_distinct_and_ordered() {
        let f = fp4();
        let codes = [f.encode(1.0), f.encode(6.0), f.encode(-4.0), f.encode(4.0)];
        let [a, b] = top2_indices(&codes);
        assert_eq!(a, 1);
        assert_eq!(b, 2); // tie between -4.0 and 4.0 -> lower index
    }

    #[test]
    fn candidates_for_fp4_four_match_paper() {
        // FP4 magnitude 4.0 has bits 110; candidates per the paper's example
        // (after the bias clamp) are 3.75, 4.0, 4.5, 5.0.
        let mag = fp4().magnitude_bits_of(4.0);
        assert_eq!(fp6_candidates(mag), vec![3.75, 4.0, 4.5, 5.0]);
    }

    #[test]
    fn candidates_for_zero() {
        let c = fp6_candidates(0);
        // bits -1 invalid; meta 1..3 give 0.0, 0.125, 0.25.
        assert_eq!(c, vec![0.0, 0.125, 0.25]);
    }

    #[test]
    fn decode_extra_mantissa_spot_checks() {
        let mag4 = fp4().magnitude_bits_of(4.0);
        assert_eq!(decode_extra_mantissa(mag4, 0b00), 3.75);
        assert_eq!(decode_extra_mantissa(mag4, 0b01), 4.0);
        assert_eq!(decode_extra_mantissa(mag4, 0b10), 4.5);
        assert_eq!(decode_extra_mantissa(mag4, 0b11), 5.0);
        // Degenerate (0,0) decodes to 0.
        assert_eq!(decode_extra_mantissa(0, 0), 0.0);
    }

    #[test]
    fn every_candidate_is_adjacent_to_fp4_value() {
        // The refined value must stay within the FP4 rounding bin so the
        // top-1 element remains the subgroup maximum after refinement.
        let f4 = fp4();
        for mag in 1..8u8 {
            let v4 = f4.decode_magnitude(mag);
            let lower_neighbor = f4.decode_magnitude(mag - 1);
            for meta in 0..4u8 {
                let v6 = decode_extra_mantissa(mag, meta);
                assert!(
                    v6 > lower_neighbor,
                    "refined {v6} for fp4 {v4} dips to/below neighbor {lower_neighbor}"
                );
            }
        }
    }
}
