//! The OCP E8M0 shared-scale type: an 8-bit power-of-two exponent.
//!
//! E8M0 stores only an exponent (bias 127, like FP32) and no mantissa, so a
//! scale is always an exact power of two and de/quantization reduces to
//! exponent arithmetic — the property that makes MX formats hardware-friendly
//! (paper §2.2). Code `0xFF` is NaN per the OCP spec.

use std::fmt;

/// Exponent bias (same as FP32).
pub const BIAS: i32 = 127;

/// Minimum representable exponent (2^-127).
pub const MIN_EXP: i32 = -BIAS;

/// Maximum representable exponent (2^127; code 0xFE).
pub const MAX_EXP: i32 = 127;

/// An E8M0 power-of-two scale factor.
///
/// ```
/// use m2x_formats::E8M0;
///
/// let s = E8M0::from_exponent(3);
/// assert_eq!(s.value(), 8.0);
/// assert_eq!(s.exponent(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct E8M0(u8);

impl E8M0 {
    /// The NaN code (0xFF).
    pub const NAN: E8M0 = E8M0(0xFF);

    /// Scale of 1.0 (exponent 0).
    pub const ONE: E8M0 = E8M0(BIAS as u8);

    /// Creates a scale `2^e`, clamping `e` into `[MIN_EXP, MAX_EXP]`.
    pub fn from_exponent(e: i32) -> Self {
        let e = e.clamp(MIN_EXP, MAX_EXP);
        E8M0((e + BIAS) as u8)
    }

    /// Reinterprets a raw byte (0xFF is NaN).
    pub fn from_bits(bits: u8) -> Self {
        E8M0(bits)
    }

    /// Raw byte.
    pub fn to_bits(self) -> u8 {
        self.0
    }

    /// True when this is the NaN code.
    pub fn is_nan(self) -> bool {
        self.0 == 0xFF
    }

    /// The unbiased exponent.
    ///
    /// # Panics
    ///
    /// Panics if the scale is NaN.
    pub fn exponent(self) -> i32 {
        assert!(!self.is_nan(), "E8M0 NaN has no exponent");
        self.0 as i32 - BIAS
    }

    /// The scale value `2^exponent` as f32.
    ///
    /// Exponents below -126 produce subnormal f32 values, which f32
    /// represents exactly down to 2^-127.
    pub fn value(self) -> f32 {
        if self.is_nan() {
            return f32::NAN;
        }
        (self.exponent() as f32).exp2()
    }

    /// Adds a (clamped) bias to the exponent — used by the adaptive
    /// shared-scale search, which absorbs its `b ∈ {-1,0,1}` into the stored
    /// scale (paper §4.4.2).
    #[must_use]
    pub fn with_bias(self, b: i32) -> Self {
        E8M0::from_exponent(self.exponent() + b)
    }
}

impl Default for E8M0 {
    fn default() -> Self {
        E8M0::ONE
    }
}

impl fmt::Display for E8M0 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nan() {
            write!(f, "E8M0(NaN)")
        } else {
            write!(f, "2^{}", self.exponent())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for e in MIN_EXP..=MAX_EXP {
            let s = E8M0::from_exponent(e);
            assert_eq!(s.exponent(), e);
            assert_eq!(s.value(), (e as f32).exp2());
        }
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(E8M0::from_exponent(1000).exponent(), MAX_EXP);
        assert_eq!(E8M0::from_exponent(-1000).exponent(), MIN_EXP);
    }

    #[test]
    fn nan_detected() {
        assert!(E8M0::from_bits(0xFF).is_nan());
        assert!(E8M0::from_bits(0xFF).value().is_nan());
        assert!(!E8M0::ONE.is_nan());
    }

    #[test]
    fn one_is_unit() {
        assert_eq!(E8M0::ONE.value(), 1.0);
        assert_eq!(E8M0::default(), E8M0::ONE);
    }

    #[test]
    fn bias_shifts() {
        let s = E8M0::from_exponent(5);
        assert_eq!(s.with_bias(1).exponent(), 6);
        assert_eq!(s.with_bias(-1).exponent(), 4);
        assert_eq!(
            E8M0::from_exponent(MAX_EXP).with_bias(1).exponent(),
            MAX_EXP
        );
    }

    #[test]
    fn extreme_values_exact() {
        assert_eq!(E8M0::from_exponent(-127).value(), 2f32.powi(-127));
        assert_eq!(E8M0::from_exponent(127).value(), 2f32.powi(127));
    }
}
