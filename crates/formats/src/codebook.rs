//! Arbitrary value-grid ("codebook") quantizers.
//!
//! Baseline formats like ANT (Flint), M-ANT (16 mathematically adaptive
//! types) and BlockDialect (16 selectable dialects) quantize onto value
//! grids that are neither uniform integers nor plain minifloats. A
//! [`Codebook`] holds a sorted grid of non-negative magnitudes and performs
//! nearest-value quantization (sign handled separately, grids are
//! sign-symmetric as in all those formats).

use std::fmt;

/// A sign-symmetric quantization grid defined by its non-negative magnitudes.
///
/// ```
/// use m2x_formats::Codebook;
///
/// // A power-of-two grid (ANT's PoT4-like type).
/// let pot = Codebook::new("pot", vec![0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]).unwrap();
/// assert_eq!(pot.quantize(3.1), 4.0);
/// assert_eq!(pot.quantize(-0.3), -0.25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    name: String,
    /// Sorted ascending, starts at the smallest magnitude (usually 0).
    magnitudes: Vec<f32>,
}

/// Error constructing a [`Codebook`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodebookError {
    msg: String,
}

impl fmt::Display for CodebookError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid codebook: {}", self.msg)
    }
}

impl std::error::Error for CodebookError {}

impl Codebook {
    /// Creates a codebook from non-negative magnitudes.
    ///
    /// # Errors
    ///
    /// Fails when the grid is empty, contains negative/non-finite values or
    /// is not strictly ascending after dedup.
    pub fn new(name: impl Into<String>, mut magnitudes: Vec<f32>) -> Result<Self, CodebookError> {
        if magnitudes.is_empty() {
            return Err(CodebookError {
                msg: "empty grid".to_string(),
            });
        }
        if magnitudes.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(CodebookError {
                msg: "magnitudes must be finite and non-negative".to_string(),
            });
        }
        magnitudes.sort_by(|a, b| a.total_cmp(b));
        magnitudes.dedup();
        Ok(Codebook {
            name: name.into(),
            magnitudes,
        })
    }

    /// Codebook name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted magnitude grid.
    pub fn magnitudes(&self) -> &[f32] {
        &self.magnitudes
    }

    /// Largest representable magnitude.
    pub fn max_value(&self) -> f32 {
        // m2x-lint: allow(panic) Codebook::new rejects empty grids, so `last` is always Some
        *self.magnitudes.last().expect("non-empty")
    }

    /// Number of distinct signed codes (counting ±0 once when 0 is on the
    /// grid).
    pub fn signed_code_count(&self) -> usize {
        let zero = if self.magnitudes[0] == 0.0 { 1 } else { 0 };
        2 * (self.magnitudes.len() - zero) + zero
    }

    /// Index of the nearest magnitude (ties round to the smaller index, i.e.
    /// toward zero — deterministic and matching a comparator-tree decode).
    pub fn nearest_index(&self, a: f32) -> usize {
        debug_assert!(a >= 0.0 || a.is_nan());
        match self.magnitudes.binary_search_by(|v| v.total_cmp(&a)) {
            Ok(i) => i,
            Err(i) => {
                if i == 0 {
                    0
                } else if i == self.magnitudes.len() {
                    i - 1
                } else {
                    let lo = self.magnitudes[i - 1];
                    let hi = self.magnitudes[i];
                    if a - lo <= hi - a {
                        i - 1
                    } else {
                        i
                    }
                }
            }
        }
    }

    /// Quantizes a signed value to the nearest grid point.
    pub fn quantize(&self, x: f32) -> f32 {
        if x.is_nan() {
            return 0.0;
        }
        let q = self.magnitudes[self.nearest_index(x.abs())];
        if x < 0.0 {
            -q
        } else {
            q
        }
    }

    /// Quantizes under a scale: `quantize(x/scale) * scale`.
    pub fn quantize_scaled(&self, x: f32, scale: f32) -> f32 {
        if scale == 0.0 || !scale.is_finite() {
            return 0.0;
        }
        self.quantize(x / scale) * scale
    }

    /// Sum of squared errors quantizing `values` under `scale` — the
    /// selection metric used by type-adaptive formats.
    pub fn sse(&self, values: &[f32], scale: f32) -> f64 {
        values
            .iter()
            .map(|&x| {
                let e = (self.quantize_scaled(x, scale) - x) as f64;
                e * e
            })
            .sum()
    }
}

impl fmt::Display for Codebook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Codebook({}, {} levels)",
            self.name,
            self.magnitudes.len()
        )
    }
}

/// Builds a codebook from a [`crate::Minifloat`]'s value grid.
pub fn from_minifloat(name: impl Into<String>, mf: &crate::Minifloat) -> Codebook {
    // m2x-lint: allow(panic) minifloat value grids are finite and non-empty by construction
    Codebook::new(name, mf.values()).expect("minifloat grids are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fp4, Minifloat, SpecialValues};

    #[test]
    fn rejects_bad_grids() {
        assert!(Codebook::new("e", vec![]).is_err());
        assert!(Codebook::new("n", vec![-1.0, 0.0]).is_err());
        assert!(Codebook::new("inf", vec![0.0, f32::INFINITY]).is_err());
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let cb = Codebook::new("g", vec![0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]).unwrap();
        let mut a = 0.0f32;
        while a < 8.0 {
            let q = cb.quantize(a);
            let best = cb
                .magnitudes()
                .iter()
                .copied()
                .min_by(|x, y| (x - a).abs().partial_cmp(&(y - a).abs()).unwrap())
                .unwrap();
            assert!((q - a).abs() <= (best - a).abs() + 1e-7);
            a += 0.017;
        }
    }

    #[test]
    fn matches_minifloat_quantize() {
        let mf = Minifloat::new(2, 1, SpecialValues::None).unwrap();
        let cb = from_minifloat("fp4", &mf);
        let mut x = -7.0f32;
        while x < 7.0 {
            // Ties may differ (RNE vs toward-zero) — skip exact midpoints.
            let q_mf = mf.quantize(x);
            let q_cb = cb.quantize(x);
            if (q_mf - q_cb).abs() > 1e-6 {
                // must be a tie case
                let d_mf = (q_mf - x).abs();
                let d_cb = (q_cb - x).abs();
                assert!((d_mf - d_cb).abs() < 1e-6, "x={x}");
            }
            x += 0.0173;
        }
    }

    #[test]
    fn signed_codes_counted_once_for_zero() {
        let cb = from_minifloat("fp4", fp4());
        // 8 magnitudes incl. 0 -> 15 distinct signed values.
        assert_eq!(cb.signed_code_count(), 15);
    }

    #[test]
    fn sse_prefers_matching_grid() {
        let uniform = Codebook::new("int", (0..8).map(|i| i as f32).collect()).unwrap();
        let pot = Codebook::new("pot", vec![0.0, 1.0, 2.0, 4.0]).unwrap();
        let data = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert!(uniform.sse(&data, 1.0) < pot.sse(&data, 1.0));
    }
}
