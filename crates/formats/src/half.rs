//! Software FP16 (IEEE binary16) and BF16 conversion.
//!
//! The paper's baselines store group scales in FP16 (Table 1) and the "FP4
//! with FP16 scaling" reference of Fig. 2/3 quantizes scales to binary16.
//! Conversions are round-to-nearest-even and handle subnormals, inf and NaN.

/// Converts an `f32` to IEEE binary16 bits (RNE).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        let nan_payload = if man != 0 { 0x200 } else { 0 };
        return sign | 0x7C00 | nan_payload;
    }

    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        // Overflow -> inf.
        return sign | 0x7C00;
    }
    if e >= -14 {
        // Normal range. 10-bit mantissa, round bits are the low 13.
        let man16 = man >> 13;
        let rest = man & 0x1FFF;
        let halfway = 0x1000;
        let mut out = ((e + 15) as u32) << 10 | man16;
        if rest > halfway || (rest == halfway && (out & 1) == 1) {
            out += 1; // may carry into exponent, which is correct behaviour
        }
        return sign | out as u16;
    }
    if e >= -25 {
        // Subnormal half. Implicit leading 1 becomes explicit.
        let full = man | 0x80_0000;
        let shift = (-14 - e) + 13;
        let man16 = full >> shift;
        let rest = full & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut out = man16;
        if rest > halfway || (rest == halfway && (out & 1) == 1) {
            out += 1;
        }
        return sign | out as u16;
    }
    // Underflow to zero.
    sign
}

/// Converts IEEE binary16 bits to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x3FF) as u32;
    let bits = if exp == 0x1F {
        // Inf / NaN.
        sign | 0x7F80_0000 | (man << 13)
    } else if exp == 0 {
        if man == 0 {
            sign
        } else {
            // Subnormal: value = man * 2^-24 = 2^-14 * (man / 1024); normalize
            // so the leading mantissa bit becomes the implicit 1.
            let mut e = -14i32;
            let mut m = man;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x3FF;
            sign | (((e + 127) as u32) << 23) | (m << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// Rounds an `f32` onto the binary16 grid (RNE with saturation to ±inf
/// exactly as hardware conversion would).
pub fn quantize_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Converts an `f32` to BF16 bits (RNE).
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Preserve a quiet NaN.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let rest = bits & 0xFFFF;
    let halfway = 0x8000;
    let mut out = bits >> 16;
    if rest > halfway || (rest == halfway && (out & 1) == 1) {
        out += 1;
    }
    out as u16
}

/// Converts BF16 bits to `f32` (exact).
pub fn bf16_bits_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// Rounds an `f32` onto the BF16 grid.
pub fn quantize_bf16(x: f32) -> f32 {
    bf16_bits_to_f32(f32_to_bf16_bits(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(quantize_f16(x), x, "{x}");
        }
    }

    #[test]
    fn f16_constants() {
        assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
        assert_eq!(f16_bits_to_f32(0xC000), -2.0);
        assert_eq!(f16_bits_to_f32(0x7BFF), 65504.0); // max half
        assert_eq!(f16_bits_to_f32(0x0001), 2f32.powi(-24)); // min subnormal
        assert_eq!(f16_bits_to_f32(0x0400), 2f32.powi(-14)); // min normal
        assert_eq!(f16_bits_to_f32(0x7C00), f32::INFINITY);
        assert!(f16_bits_to_f32(0x7C01).is_nan());
    }

    #[test]
    fn f16_overflow_to_inf() {
        assert_eq!(quantize_f16(1e6), f32::INFINITY);
        assert_eq!(quantize_f16(-1e6), f32::NEG_INFINITY);
        assert_eq!(quantize_f16(65504.0), 65504.0);
    }

    #[test]
    fn f16_underflow_to_zero() {
        assert_eq!(quantize_f16(1e-10), 0.0);
        let z = quantize_f16(-1e-10);
        assert_eq!(z, 0.0);
        assert!(z.is_sign_negative());
    }

    #[test]
    fn f16_rne() {
        // 1 + 2^-11 is halfway between 1.0 and the next half (1 + 2^-10):
        // rounds to even mantissa (1.0).
        assert_eq!(quantize_f16(1.0 + 2f32.powi(-11)), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even is 1+2^-9.
        assert_eq!(
            quantize_f16(1.0 + 3.0 * 2f32.powi(-11)),
            1.0 + 2f32.powi(-9)
        );
    }

    #[test]
    fn f16_subnormal_roundtrip() {
        for i in 1..=50u32 {
            let x = i as f32 * 2f32.powi(-24);
            assert_eq!(quantize_f16(x), x);
        }
    }

    #[test]
    fn bf16_roundtrip_exact_values() {
        for x in [0.0f32, 1.0, -1.5, 3.140625, 65536.0, 1e30, -1e-30] {
            let q = quantize_bf16(x);
            assert_eq!(quantize_bf16(q), q);
        }
        assert!(quantize_bf16(f32::NAN).is_nan());
    }

    #[test]
    fn bf16_rounds_to_nearest() {
        // BF16 has 7 mantissa bits; 1 + 2^-8 is halfway to 1 + 2^-7.
        assert_eq!(quantize_bf16(1.0 + 2f32.powi(-8)), 1.0);
        assert_eq!(
            quantize_bf16(1.0 + 1.5 * 2f32.powi(-8)),
            1.0 + 2f32.powi(-7)
        );
    }

    #[test]
    fn all_f16_bit_patterns_roundtrip() {
        for h in 0..=u16::MAX {
            let x = f16_bits_to_f32(h);
            if x.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(x)).is_nan());
                continue;
            }
            let back = f32_to_f16_bits(x);
            // -0.0 and 0.0 differ in bits but not value; compare via decode.
            assert_eq!(f16_bits_to_f32(back), x, "bits {h:#06x}");
        }
    }
}
