//! Bit-packing utilities and the M2XFP stream memory layout.
//!
//! M2XFP stores a group of 32 elements as three separately organized
//! streams (paper §5.2): a 128-bit block of packed 4-bit element codes, an
//! 8-bit shared scale, and 8 bits of metadata (4 subgroups × 2 bits at
//! subgroup size 8). Elements, scales and metadata each live in their own
//! contiguous region so that loads stay aligned.

/// Packs 4-bit codes, two per byte, low nibble first.
///
/// ```
/// use m2x_formats::packing::{pack_nibbles, unpack_nibbles};
///
/// let packed = pack_nibbles(&[0x3, 0xA, 0xF]);
/// assert_eq!(&packed[..], &[0xA3, 0x0F]);
/// assert_eq!(unpack_nibbles(&packed, 3), vec![0x3, 0xA, 0xF]);
/// ```
pub fn pack_nibbles(codes: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; codes.len().div_ceil(2)];
    pack_nibbles_into(codes, &mut out);
    out
}

/// Packs 4-bit codes into a caller-provided buffer, two per byte, low
/// nibble first — the allocation-free primitive behind [`pack_nibbles`].
///
/// Branch-free in the steady state: full pairs are combined with shift-or;
/// only a trailing odd code takes a separate path.
///
/// # Panics
///
/// Panics when `out` is shorter than `codes.len().div_ceil(2)` bytes.
pub fn pack_nibbles_into(codes: &[u8], out: &mut [u8]) {
    let nbytes = codes.len().div_ceil(2);
    assert!(out.len() >= nbytes, "output buffer too short");
    let (pairs, tail) = codes.split_at(codes.len() & !1);
    for (o, pair) in out.iter_mut().zip(pairs.chunks_exact(2)) {
        *o = (pair[0] & 0xF) | ((pair[1] & 0xF) << 4);
    }
    if let Some(&last) = tail.first() {
        out[nbytes - 1] = last & 0xF;
    }
}

/// Unpacks `n` 4-bit codes from bytes produced by [`pack_nibbles`].
pub fn unpack_nibbles(bytes: &[u8], n: usize) -> Vec<u8> {
    let mut out = vec![0u8; n];
    unpack_nibbles_into(bytes, &mut out);
    out
}

/// Unpacks 4-bit codes into a caller-provided buffer (one code per output
/// byte) — the allocation-free primitive behind [`unpack_nibbles`].
///
/// # Panics
///
/// Panics when `bytes` holds fewer than `out.len()` nibbles.
pub fn unpack_nibbles_into(bytes: &[u8], out: &mut [u8]) {
    assert!(bytes.len() * 2 >= out.len(), "input buffer too short");
    for (i, o) in out.iter_mut().enumerate() {
        // Branch-free nibble select: shift by 0 or 4 depending on parity.
        *o = (bytes[i >> 1] >> ((i & 1) * 4)) & 0xF;
    }
}

/// Reads the `i`-th 4-bit code from a nibble-packed stream.
#[inline(always)]
pub fn nibble_at(bytes: &[u8], i: usize) -> u8 {
    (bytes[i >> 1] >> ((i & 1) * 4)) & 0xF
}

/// Reads the `i`-th 2-bit field from a bit-packed stream (LSB-first within
/// each byte) — the accessor for the M2XFP subgroup-metadata stream.
#[inline(always)]
pub fn two_bits_at(bytes: &[u8], i: usize) -> u8 {
    (bytes[i >> 2] >> ((i & 3) * 2)) & 0b11
}

/// Writes the `i`-th 2-bit field of a bit-packed stream. The target field
/// must currently be zero (streams are built append-only from zeroed
/// buffers).
#[inline(always)]
pub fn set_two_bits(bytes: &mut [u8], i: usize, v: u8) {
    debug_assert_eq!(two_bits_at(bytes, i), 0, "2-bit field {i} already set");
    bytes[i >> 2] |= (v & 0b11) << ((i & 3) * 2);
}

/// Writes fields of arbitrary bit width (LSB-first within the stream).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 32`.
    pub fn push(&mut self, value: u32, width: u32) {
        assert!(width <= 32, "field width > 32");
        for i in 0..width {
            let bit = (value >> i) & 1;
            let byte_idx = self.bit_len / 8;
            if byte_idx == self.buf.len() {
                self.buf.push(0);
            }
            self.buf[byte_idx] |= (bit as u8) << (self.bit_len % 8);
            self.bit_len += 1;
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Finishes and returns the packed bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads fields written by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Reads the next `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if the read runs past the end of the buffer or `width > 32`.
    pub fn read(&mut self, width: u32) -> u32 {
        assert!(width <= 32, "field width > 32");
        let mut v = 0u32;
        for i in 0..width {
            let byte_idx = self.pos / 8;
            assert!(byte_idx < self.buf.len(), "bit read out of bounds");
            let bit = (self.buf[byte_idx] >> (self.pos % 8)) & 1;
            v |= (bit as u32) << i;
            self.pos += 1;
        }
        v
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Byte-level layout of an M2XFP-style packed tensor with `groups` groups of
/// `group_size` elements, `elem_bits`-bit codes and `meta_bits_per_group`
/// bits of metadata per group.
///
/// The three streams are stored contiguously in the order
/// `elements | scales | metadata`, each region starting at a byte boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamLayout {
    /// Number of groups.
    pub groups: usize,
    /// Elements per group (the paper uses 32).
    pub group_size: usize,
    /// Bits per element code (4 for FP4).
    pub elem_bits: u32,
    /// Metadata bits per group (8 for M2XFP: 4 subgroups × 2 bits).
    pub meta_bits_per_group: u32,
}

impl StreamLayout {
    /// The paper's production configuration: group 32, FP4 elements,
    /// subgroup 8 → 8 metadata bits per group.
    pub fn m2xfp_default(groups: usize) -> Self {
        StreamLayout {
            groups,
            group_size: 32,
            elem_bits: 4,
            meta_bits_per_group: 8,
        }
    }

    /// Bytes of packed element codes per group.
    pub fn elem_bytes_per_group(&self) -> usize {
        (self.group_size * self.elem_bits as usize).div_ceil(8)
    }

    /// Bytes in the element stream.
    pub fn elem_stream_bytes(&self) -> usize {
        self.groups * self.elem_bytes_per_group()
    }

    /// Bytes in the scale stream (one E8M0/FP8 byte per group).
    pub fn scale_stream_bytes(&self) -> usize {
        self.groups
    }

    /// Bytes in the metadata stream.
    pub fn meta_stream_bytes(&self) -> usize {
        (self.groups * self.meta_bits_per_group as usize).div_ceil(8)
    }

    /// Total footprint in bytes.
    pub fn total_bytes(&self) -> usize {
        self.elem_stream_bytes() + self.scale_stream_bytes() + self.meta_stream_bytes()
    }

    /// Byte offset of the scale stream.
    pub fn scale_offset(&self) -> usize {
        self.elem_stream_bytes()
    }

    /// Byte offset of the metadata stream.
    pub fn meta_offset(&self) -> usize {
        self.elem_stream_bytes() + self.scale_stream_bytes()
    }

    /// Effective bits per element including amortized scale and metadata —
    /// the storage-side counterpart of the paper's EBW (Eq. 2).
    pub fn bits_per_element(&self) -> f64 {
        (self.total_bytes() * 8) as f64 / (self.groups * self.group_size) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_roundtrip() {
        let codes: Vec<u8> = (0..32).map(|i| (i * 7) as u8 & 0xF).collect();
        let packed = pack_nibbles(&codes);
        assert_eq!(packed.len(), 16); // 128-bit block, as in the paper
        assert_eq!(unpack_nibbles(&packed, 32), codes);
    }

    #[test]
    fn nibble_odd_count() {
        let codes = [0x1u8, 0x2, 0x3];
        let packed = pack_nibbles(&codes);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack_nibbles(&packed, 3), codes);
    }

    #[test]
    fn bit_writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        let fields: [(u32, u32); 7] = [
            (0x3, 2),
            (0x1F, 5),
            (0, 1),
            (0xABC, 12),
            (1, 1),
            (0x7F, 7),
            (0x3FFFFFFF, 30),
        ];
        for (v, width) in fields {
            w.push(v, width);
        }
        let total: u32 = fields.iter().map(|f| f.1).sum();
        assert_eq!(w.bit_len() as u32, total);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (v, width) in fields {
            assert_eq!(r.read(width), v);
        }
    }

    #[test]
    fn m2xfp_layout_matches_paper() {
        // Per group of 32: 16 B elements + 1 B scale + 1 B metadata.
        let l = StreamLayout::m2xfp_default(100);
        assert_eq!(l.elem_bytes_per_group(), 16);
        assert_eq!(l.elem_stream_bytes(), 1600);
        assert_eq!(l.scale_stream_bytes(), 100);
        assert_eq!(l.meta_stream_bytes(), 100);
        assert_eq!(l.total_bytes(), 1800);
        // 4.5 bits/element — the paper's effective precision.
        assert!((l.bits_per_element() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn mxfp4_layout_is_4_25_bits() {
        let l = StreamLayout {
            groups: 8,
            group_size: 32,
            elem_bits: 4,
            meta_bits_per_group: 0,
        };
        assert!((l.bits_per_element() - 4.25).abs() < 1e-12);
    }

    #[test]
    fn offsets_are_contiguous() {
        let l = StreamLayout::m2xfp_default(3);
        assert_eq!(l.scale_offset(), 48);
        assert_eq!(l.meta_offset(), 51);
        assert_eq!(l.total_bytes(), 54);
    }
}
