//! Symmetric integer codecs.
//!
//! SMX4 stores INT3 elements, MXINT8 stores INT8, MicroScopiQ mixes FP4 with
//! INT4, and QuaRot/DuQuant quantize to INT4 (Table 1 / Table 7). All of them
//! use symmetric signed grids: codes in `[-(2^(b-1)-1), 2^(b-1)-1]`, with the
//! most negative two's-complement code unused so the grid is sign-symmetric.

use std::fmt;

/// A symmetric signed integer grid with `bits` total bits.
///
/// ```
/// use m2x_formats::int::IntCodec;
///
/// let int4 = IntCodec::new(4);
/// assert_eq!(int4.max_code(), 7);
/// assert_eq!(int4.quantize_code(3.6), 4);
/// assert_eq!(int4.quantize_code(-100.0), -7); // saturates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntCodec {
    bits: u32,
}

impl IntCodec {
    /// Creates a codec with `bits` total bits (including sign).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 16`.
    pub fn new(bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        IntCodec { bits }
    }

    /// Total bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest positive code (`2^(bits-1) - 1`).
    pub fn max_code(&self) -> i32 {
        (1 << (self.bits - 1)) - 1
    }

    /// Rounds a real value to the nearest code (RNE), saturating.
    pub fn quantize_code(&self, x: f32) -> i32 {
        let m = self.max_code();
        let r = x.round_ties_even();
        (r as i32).clamp(-m, m)
    }

    /// Quantizes `x` under `scale`: returns the dequantized value
    /// `code(x/scale) * scale`.
    pub fn quantize(&self, x: f32, scale: f32) -> f32 {
        if scale == 0.0 || !scale.is_finite() {
            return 0.0;
        }
        self.quantize_code(x / scale) as f32 * scale
    }

    /// The scale that maps a block maximum onto the largest code.
    pub fn scale_for_max(&self, amax: f32) -> f32 {
        if amax == 0.0 {
            return 1.0;
        }
        amax / self.max_code() as f32
    }
}

impl fmt::Display for IntCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INT{}", self.bits)
    }
}

/// INT3 (SMX4 element type).
pub fn int3() -> IntCodec {
    IntCodec::new(3)
}

/// INT4 (QuaRot / DuQuant / MicroScopiQ outlier type).
pub fn int4() -> IntCodec {
    IntCodec::new(4)
}

/// INT8 (MXINT8 element type; 8-bit fallbacks in baseline accelerators).
pub fn int8() -> IntCodec {
    IntCodec::new(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_ranges() {
        assert_eq!(int3().max_code(), 3);
        assert_eq!(int4().max_code(), 7);
        assert_eq!(int8().max_code(), 127);
    }

    #[test]
    fn saturates_both_sides() {
        let c = int4();
        assert_eq!(c.quantize_code(1e9), 7);
        assert_eq!(c.quantize_code(-1e9), -7);
    }

    #[test]
    fn rne_ties() {
        let c = int4();
        assert_eq!(c.quantize_code(0.5), 0);
        assert_eq!(c.quantize_code(1.5), 2);
        assert_eq!(c.quantize_code(2.5), 2);
        assert_eq!(c.quantize_code(-0.5), 0);
        assert_eq!(c.quantize_code(-1.5), -2);
    }

    #[test]
    fn quantize_with_scale() {
        let c = int4();
        let s = c.scale_for_max(14.0); // 2.0
        assert_eq!(s, 2.0);
        assert_eq!(c.quantize(14.0, s), 14.0);
        assert_eq!(c.quantize(13.0, s), 12.0); // 6.5 ties-to-even -> 6
        assert_eq!(c.quantize(-14.0, s), -14.0);
    }

    #[test]
    fn degenerate_scale_returns_zero() {
        let c = int4();
        assert_eq!(c.quantize(3.0, 0.0), 0.0);
        assert_eq!(c.quantize(3.0, f32::NAN), 0.0);
    }

    #[test]
    fn error_bound_half_scale() {
        let c = int8();
        let s = 0.37f32;
        let mut x = -40.0f32;
        while x < 40.0 {
            let q = c.quantize(x, s);
            assert!((q - x).abs() <= s / 2.0 + 1e-6, "x={x} q={q}");
            x += 0.093;
        }
    }
}
