//! # m2x-formats
//!
//! Software number-format substrate for the M2XFP reproduction.
//!
//! This crate implements, from scratch, every scalar encoding used by the
//! M2XFP paper (ASPLOS '26) and the formats it compares against:
//!
//! * [`Minifloat`] — a generic sign/exponent/mantissa codec that instantiates
//!   FP4 (E2M1), FP6 (E2M3, E3M2), FP8 (E4M3, E5M2) and the odd variants used
//!   by baseline formats (E3M3, ...).
//! * [`e8m0`] — the OCP power-of-two shared-scale type.
//! * [`half`] — software FP16/BF16 conversion (round-to-nearest-even).
//! * [`int`] — symmetric integer codecs (INT3/INT4/INT8) for SMX/MXINT/QuaRot.
//! * [`codebook`] — arbitrary value-grid quantizers used by ANT / M-ANT /
//!   BlockDialect style formats.
//! * [`packing`] — bit-packing utilities and the M2XFP group memory layout.
//! * [`tables`] — the FP4→UINT monotone lookup table of the Top-1 Decode Unit.
//!
//! All encoders use round-to-nearest-even with saturation, matching the OCP
//! Microscaling specification's conversion semantics.
//!
//! ```
//! use m2x_formats::fp4;
//!
//! let f = fp4();
//! assert_eq!(f.max_value(), 6.0);
//! assert_eq!(f.quantize(3.4), 3.0); // RNE onto the E2M1 grid
//! ```

pub mod codebook;
pub mod e8m0;
pub mod half;
pub mod int;
pub mod minifloat;
pub mod packing;
pub mod tables;

pub use codebook::Codebook;
pub use e8m0::E8M0;
pub use minifloat::{Minifloat, SpecialValues};

use std::sync::OnceLock;

macro_rules! static_format {
    ($(#[$doc:meta])* $name:ident, $e:expr, $m:expr, $special:expr) => {
        $(#[$doc])*
        pub fn $name() -> &'static Minifloat {
            static CELL: OnceLock<Minifloat> = OnceLock::new();
            // m2x-lint: allow(panic) static format specs are compile-time constants validated by unit tests
            CELL.get_or_init(|| Minifloat::new($e, $m, $special).expect("valid spec"))
        }
    };
}

static_format!(
    /// FP4 E2M1: the OCP MXFP4 element type. Values ±{0, 0.5, 1, 1.5, 2, 3, 4, 6}.
    fp4, 2, 1, SpecialValues::None
);
static_format!(
    /// FP6 E2M3: the OCP MXFP6 element type used by M2XFP's top-1 re-rounding.
    fp6_e2m3, 2, 3, SpecialValues::None
);
static_format!(
    /// FP6 E3M2: the alternative OCP MXFP6 element type.
    fp6_e3m2, 3, 2, SpecialValues::None
);
static_format!(
    /// FP8 E4M3: OCP variant with a single NaN code; max finite value 448.
    fp8_e4m3, 4, 3, SpecialValues::NanOnly
);
static_format!(
    /// FP8 E5M2: IEEE-like variant with inf/NaN; max finite value 57344.
    fp8_e5m2, 5, 2, SpecialValues::Ieee
);
static_format!(
    /// FP6 E3M3 used by the MXFP6(E3M3) variant in Fig. 1 of the paper.
    fp6_e3m3, 3, 3, SpecialValues::None
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statics_have_expected_maxima() {
        assert_eq!(fp4().max_value(), 6.0);
        assert_eq!(fp6_e2m3().max_value(), 7.5);
        assert_eq!(fp6_e3m2().max_value(), 28.0);
        assert_eq!(fp8_e4m3().max_value(), 448.0);
        assert_eq!(fp8_e5m2().max_value(), 57344.0);
    }

    #[test]
    fn fp4_value_set_matches_paper() {
        let vals = fp4().values();
        assert_eq!(vals, vec![0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]);
    }
}
