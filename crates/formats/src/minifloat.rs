//! Generic minifloat codec.
//!
//! A [`Minifloat`] describes a sign + exponent + mantissa encoding with a
//! configurable number of exponent and mantissa bits and one of three
//! special-value conventions (see [`SpecialValues`]). It provides bit-exact
//! encode/decode and round-to-nearest-even quantization with saturation —
//! the conversion semantics prescribed by the OCP Microscaling spec.
//!
//! The codec supports subnormals. The exponent bias is the IEEE-style
//! `2^(E-1) - 1` (so E2 formats have bias 1, E4 bias 7, E5 bias 15), which
//! matches all formats in the paper (Fig. 1).

use std::fmt;

/// How the top of the code space is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialValues {
    /// Every code is a finite value (OCP FP4/FP6: no inf, no NaN).
    None,
    /// The single all-ones magnitude code is NaN (OCP FP8 E4M3).
    NanOnly,
    /// The top exponent is reserved for inf (mantissa 0) and NaN (IEEE / E5M2).
    Ieee,
}

/// Error constructing a [`Minifloat`] spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidSpecError {
    msg: String,
}

impl fmt::Display for InvalidSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid minifloat spec: {}", self.msg)
    }
}

impl std::error::Error for InvalidSpecError {}

/// A generic minifloat format: 1 sign bit, `exp_bits` exponent bits and
/// `man_bits` mantissa bits.
///
/// ```
/// use m2x_formats::{Minifloat, SpecialValues};
///
/// let fp4 = Minifloat::new(2, 1, SpecialValues::None)?;
/// assert_eq!(fp4.quantize(2.6), 3.0);
/// assert_eq!(fp4.quantize(-100.0), -6.0); // saturates
/// # Ok::<(), m2x_formats::minifloat::InvalidSpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Minifloat {
    exp_bits: u32,
    man_bits: u32,
    special: SpecialValues,
    bias: i32,
    max_value: u32, // bit pattern of f32 max finite value, stored for hash/eq
}

impl Minifloat {
    /// Creates a new format description.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSpecError`] when the total width exceeds 8 bits,
    /// when `exp_bits == 0`, or when the special-value convention cannot be
    /// honored (e.g. [`SpecialValues::Ieee`] needs a reserved exponent).
    pub fn new(
        exp_bits: u32,
        man_bits: u32,
        special: SpecialValues,
    ) -> Result<Self, InvalidSpecError> {
        if exp_bits == 0 {
            return Err(InvalidSpecError {
                msg: "exp_bits must be >= 1".to_string(),
            });
        }
        if 1 + exp_bits + man_bits > 8 {
            return Err(InvalidSpecError {
                msg: format!("total width {} exceeds 8 bits", 1 + exp_bits + man_bits),
            });
        }
        if special == SpecialValues::Ieee && exp_bits < 2 {
            return Err(InvalidSpecError {
                msg: "IEEE convention needs >= 2 exponent bits".to_string(),
            });
        }
        let bias = (1i32 << (exp_bits - 1)) - 1;
        let mut mf = Minifloat {
            exp_bits,
            man_bits,
            special,
            bias,
            max_value: 0,
        };
        mf.max_value = mf.compute_max().to_bits();
        Ok(mf)
    }

    /// Number of exponent bits.
    pub fn exp_bits(&self) -> u32 {
        self.exp_bits
    }

    /// Number of mantissa bits.
    pub fn man_bits(&self) -> u32 {
        self.man_bits
    }

    /// Special-value convention.
    pub fn special(&self) -> SpecialValues {
        self.special
    }

    /// Exponent bias (`2^(E-1) - 1`).
    pub fn bias(&self) -> i32 {
        self.bias
    }

    /// Total storage width in bits, including the sign.
    pub fn total_bits(&self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    /// Number of magnitude bits (exponent + mantissa).
    pub fn magnitude_bits(&self) -> u32 {
        self.exp_bits + self.man_bits
    }

    /// Largest finite representable value.
    pub fn max_value(&self) -> f32 {
        f32::from_bits(self.max_value)
    }

    /// Largest power of two representable (the paper's `P`, e.g. 4 for FP4).
    pub fn max_pow2(&self) -> f32 {
        let emax = self.max_biased_exponent() as i32 - self.bias;
        (emax as f32).exp2()
    }

    /// Smallest positive normal value.
    pub fn min_normal(&self) -> f32 {
        ((1 - self.bias) as f32).exp2()
    }

    /// Smallest positive subnormal value (the grid's resolution near zero).
    pub fn min_subnormal(&self) -> f32 {
        ((1 - self.bias - self.man_bits as i32) as f32).exp2()
    }

    fn max_biased_exponent(&self) -> u32 {
        match self.special {
            SpecialValues::None | SpecialValues::NanOnly => (1 << self.exp_bits) - 1,
            SpecialValues::Ieee => (1 << self.exp_bits) - 2,
        }
    }

    fn compute_max(&self) -> f32 {
        let emax = self.max_biased_exponent() as i32 - self.bias;
        let m_codes = 1u32 << self.man_bits;
        let top_man = match self.special {
            // All-ones mantissa in the top exponent is a value.
            SpecialValues::None | SpecialValues::Ieee => m_codes - 1,
            // All-ones magnitude is NaN; back off one mantissa step.
            SpecialValues::NanOnly => m_codes - 2,
        };
        let frac = 1.0 + top_man as f32 / m_codes as f32;
        frac * (emax as f32).exp2()
    }

    /// Decodes a bit pattern into its value.
    ///
    /// Bits above the format width are ignored. NaN codes decode to
    /// `f32::NAN`, infinity codes (IEEE convention) to `±f32::INFINITY`.
    pub fn decode(&self, bits: u8) -> f32 {
        let width = self.total_bits();
        let bits = (bits as u32) & ((1u32 << width) - 1);
        let sign = if bits >> (width - 1) != 0 {
            -1.0f32
        } else {
            1.0
        };
        let mag = bits & ((1 << self.magnitude_bits()) - 1);
        sign * self.decode_magnitude(mag as u8)
    }

    /// Decodes magnitude bits only (no sign).
    pub fn decode_magnitude(&self, mag: u8) -> f32 {
        let mag = (mag as u32) & ((1 << self.magnitude_bits()) - 1);
        let e_field = mag >> self.man_bits;
        let m_field = mag & ((1 << self.man_bits) - 1);
        let m_codes = 1u32 << self.man_bits;
        match self.special {
            SpecialValues::NanOnly if mag == (1 << self.magnitude_bits()) - 1 => {
                return f32::NAN;
            }
            SpecialValues::Ieee if e_field == (1 << self.exp_bits) - 1 => {
                return if m_field == 0 {
                    f32::INFINITY
                } else {
                    f32::NAN
                };
            }
            _ => {}
        }
        if e_field == 0 {
            // Subnormal: value = 2^(1-bias) * m / 2^man_bits.
            let scale = ((1 - self.bias - self.man_bits as i32) as f32).exp2();
            m_field as f32 * scale
        } else {
            let exp = e_field as i32 - self.bias;
            (1.0 + m_field as f32 / m_codes as f32) * (exp as f32).exp2()
        }
    }

    /// Encodes `x` to the nearest representable code (RNE, saturating).
    ///
    /// Infinite inputs saturate to the maximum finite value (or encode as
    /// infinity under the IEEE convention); NaN inputs encode as NaN when the
    /// format has one, otherwise as zero.
    pub fn encode(&self, x: f32) -> u8 {
        let sign_bit = if x.is_sign_negative() { 1u8 } else { 0 };
        let mag = self.encode_magnitude(x.abs());
        (sign_bit << self.magnitude_bits()) | mag
    }

    /// Encodes a non-negative magnitude to magnitude bits (RNE, saturating).
    pub fn encode_magnitude(&self, a: f32) -> u8 {
        debug_assert!(a >= 0.0 || a.is_nan(), "magnitude must be non-negative");
        if a.is_nan() {
            return match self.special {
                SpecialValues::None => 0,
                SpecialValues::NanOnly => ((1u32 << self.magnitude_bits()) - 1) as u8,
                SpecialValues::Ieee => {
                    let e_all = ((1u32 << self.exp_bits) - 1) << self.man_bits;
                    (e_all | 1) as u8
                }
            };
        }
        if a.is_infinite() && self.special == SpecialValues::Ieee {
            let e_all = ((1u32 << self.exp_bits) - 1) << self.man_bits;
            return e_all as u8;
        }
        let max = self.max_value();
        // Values exactly halfway between max and the (absent) next step round
        // to max under saturation.
        let q = self.quantize_magnitude(a.min(max));
        self.magnitude_bits_of(q)
    }

    /// Round-to-nearest-even quantization of a non-negative value onto the
    /// grid, saturating at [`Self::max_value`].
    pub fn quantize_magnitude(&self, a: f32) -> f32 {
        debug_assert!(a >= 0.0 || a.is_nan());
        if a.is_nan() {
            return f32::NAN;
        }
        let max = self.max_value();
        if a >= max {
            return max;
        }
        let min_normal = self.min_normal();
        let step = if a < min_normal {
            self.min_subnormal()
        } else {
            // Exponent of a: largest e with 2^e <= a.
            let mut e = a.log2().floor() as i32;
            // log2 rounding can be off by one at bin edges; fix up exactly.
            while (e as f32).exp2() > a {
                e -= 1;
            }
            while ((e + 1) as f32).exp2() <= a {
                e += 1;
            }
            ((e - self.man_bits as i32) as f32).exp2()
        };
        let q = (a / step).round_ties_even() * step;
        // Rounding up may cross into the next exponent bin; that value is
        // still on the grid (mantissa wraps to 0, exponent increments), so
        // only the max clamp is needed.
        q.min(max)
    }

    /// Round-to-nearest-even quantization (signed), saturating at ±max.
    pub fn quantize(&self, x: f32) -> f32 {
        let q = self.quantize_magnitude(x.abs());
        if x.is_sign_negative() {
            -q
        } else {
            q
        }
    }

    /// Returns the magnitude bit pattern of a value already on the grid.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `q` is not exactly representable.
    pub fn magnitude_bits_of(&self, q: f32) -> u8 {
        debug_assert!(q >= 0.0 || q.is_nan());
        if q == 0.0 {
            return 0;
        }
        if q.is_nan() {
            return self.encode_magnitude(f32::NAN);
        }
        let min_normal = self.min_normal();
        if q < min_normal {
            let m = q / self.min_subnormal();
            debug_assert_eq!(m.fract(), 0.0, "value {q} not on subnormal grid");
            return m as u8;
        }
        let mut e = q.log2().floor() as i32;
        while (e as f32).exp2() > q {
            e -= 1;
        }
        while ((e + 1) as f32).exp2() <= q {
            e += 1;
        }
        let m_codes = 1u32 << self.man_bits;
        let frac = q / (e as f32).exp2() - 1.0;
        let m = frac * m_codes as f32;
        debug_assert_eq!(m.fract(), 0.0, "value {q} not on grid");
        let e_field = (e + self.bias) as u32;
        debug_assert!(e_field <= self.max_biased_exponent());
        ((e_field << self.man_bits) | m as u32) as u8
    }

    /// All non-negative finite representable values, ascending (starts at 0).
    pub fn values(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for mag in 0..(1u32 << self.magnitude_bits()) {
            let v = self.decode_magnitude(mag as u8);
            if v.is_finite() {
                out.push(v);
            }
        }
        out.sort_by(|a, b| a.total_cmp(b));
        out.dedup();
        out
    }

    /// Number of distinct finite codes (including both signs and ±0).
    pub fn code_count(&self) -> usize {
        1usize << self.total_bits()
    }
}

impl fmt::Display for Minifloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}M{}", self.exp_bits, self.man_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp4() -> Minifloat {
        Minifloat::new(2, 1, SpecialValues::None).unwrap()
    }

    fn fp6() -> Minifloat {
        Minifloat::new(2, 3, SpecialValues::None).unwrap()
    }

    #[test]
    fn fp4_decode_all_codes() {
        let f = fp4();
        let expect = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0];
        for (mag, want) in expect.iter().enumerate() {
            assert_eq!(f.decode_magnitude(mag as u8), *want, "mag={mag}");
            // Sign bit flips the value.
            assert_eq!(f.decode((8 | mag) as u8), -*want);
        }
    }

    #[test]
    fn fp6_e2m3_grid() {
        let f = fp6();
        let vals = f.values();
        assert_eq!(vals.len(), 32);
        assert_eq!(vals[0], 0.0);
        assert_eq!(vals[1], 0.125); // min subnormal
        assert_eq!(*vals.last().unwrap(), 7.5);
        // Values quantized to 4.0 in FP4 map to one of 5 FP6 candidates
        // {3.5, 3.75, 4.0, 4.5, 5.0} (paper §4.4.1).
        for v in [3.5, 3.75, 4.0, 4.5, 5.0] {
            assert!(vals.contains(&v), "missing {v}");
        }
    }

    #[test]
    fn rne_ties_to_even() {
        let f = fp4();
        // 2.5 is halfway between 2.0 and 3.0; mantissa codes are 0 (even) and 1.
        assert_eq!(f.quantize(2.5), 2.0);
        // 3.5 halfway between 3.0 and 4.0; 4.0 has even mantissa.
        assert_eq!(f.quantize(3.5), 4.0);
        // 0.25 halfway between 0 and 0.5 -> 0 (even).
        assert_eq!(f.quantize(0.25), 0.0);
        assert_eq!(f.quantize(0.75), 1.0);
    }

    #[test]
    fn saturation() {
        let f = fp4();
        assert_eq!(f.quantize(7.0), 6.0);
        assert_eq!(f.quantize(-1e9), -6.0);
        assert_eq!(f.quantize(f32::INFINITY), 6.0);
    }

    #[test]
    fn encode_decode_roundtrip_all_codes() {
        for f in [
            fp4(),
            fp6(),
            Minifloat::new(3, 2, SpecialValues::None).unwrap(),
            Minifloat::new(4, 3, SpecialValues::NanOnly).unwrap(),
            Minifloat::new(5, 2, SpecialValues::Ieee).unwrap(),
        ] {
            for code in 0..f.code_count() as u16 {
                let v = f.decode(code as u8);
                if v.is_nan() {
                    continue;
                }
                if v.is_infinite() {
                    assert_eq!(f.decode(f.encode(v)), v);
                    continue;
                }
                let back = f.decode(f.encode(v));
                // -0.0 == 0.0 per IEEE comparison, which is what we want.
                assert_eq!(back, v, "format {f} code {code}");
            }
        }
    }

    #[test]
    fn e4m3_nan_and_max() {
        let f = Minifloat::new(4, 3, SpecialValues::NanOnly).unwrap();
        assert!(f.decode(0x7f).is_nan());
        assert_eq!(f.max_value(), 448.0);
        assert_eq!(f.quantize(500.0), 448.0);
    }

    #[test]
    fn e5m2_inf_nan() {
        let f = Minifloat::new(5, 2, SpecialValues::Ieee).unwrap();
        assert_eq!(f.decode(0x7c), f32::INFINITY);
        assert!(f.decode(0x7d).is_nan());
        assert_eq!(f.decode(0xfc), f32::NEG_INFINITY);
        assert_eq!(f.max_value(), 57344.0);
    }

    #[test]
    fn magnitude_bits_inverse_of_decode() {
        let f = fp6();
        for mag in 0..32u8 {
            let v = f.decode_magnitude(mag);
            assert_eq!(f.magnitude_bits_of(v), mag);
        }
    }

    #[test]
    fn max_pow2_matches_paper_p() {
        // P = 4 for FP4 (paper §2.2).
        assert_eq!(fp4().max_pow2(), 4.0);
        assert_eq!(fp6().max_pow2(), 4.0);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(Minifloat::new(0, 3, SpecialValues::None).is_err());
        assert!(Minifloat::new(6, 3, SpecialValues::None).is_err());
        assert!(Minifloat::new(1, 1, SpecialValues::Ieee).is_err());
    }

    #[test]
    fn quantize_is_nearest() {
        // Exhaustive nearest-neighbour check against the value table.
        let f = fp4();
        let vals = f.values();
        let mut x = 0.0f32;
        while x < 8.0 {
            let q = f.quantize_magnitude(x);
            let best = vals
                .iter()
                .copied()
                .min_by(|a, b| (a - x).abs().partial_cmp(&(b - x).abs()).unwrap())
                .unwrap();
            assert!(
                (q - x).abs() <= (best - x).abs() + 1e-7,
                "x={x} q={q} best={best}"
            );
            x += 0.01;
        }
    }
}
