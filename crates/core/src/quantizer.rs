//! The [`TensorQuantizer`] trait — the uniform interface every format in
//! this reproduction (M2XFP and all baselines) implements, mirroring how the
//! paper's PyTorch framework models formats via fake quantization.
//!
//! Conventions:
//! * Matrices are grouped **along rows** (contiguous row chunks of the group
//!   size). For a GEMM `X[M,K] · W[K,N]` both operands must be grouped along
//!   `K`, so callers pass `X` as-is and the weight matrix transposed
//!   (`W^T`, shape `[N, K]`). `m2x-nn` handles this.
//! * `quantize_*` return the dequantized ("fake-quantized") tensor, which is
//!   exactly what flows through the paper's accuracy evaluation.

use crate::format::PackedWeightTensor;
use crate::{activation, M2xfpConfig};
use m2x_tensor::Matrix;

/// A weight/activation quantization format.
pub trait TensorQuantizer: Send + Sync {
    /// Display name (used in tables).
    fn name(&self) -> String;

    /// Equivalent bit width of the weight representation (Eq. 2).
    fn weight_ebw(&self) -> f64;

    /// Equivalent bit width of the activation representation.
    fn activation_ebw(&self) -> f64;

    /// Fake-quantizes a weight matrix (grouped along rows).
    fn quantize_weights(&self, w: &Matrix) -> Matrix;

    /// Fake-quantizes an activation matrix (grouped along rows).
    fn quantize_activations(&self, x: &Matrix) -> Matrix;
}

/// Applies a per-group fake-quantization function along matrix rows.
pub fn fake_quant_rowwise(
    m: &Matrix,
    group_size: usize,
    mut f: impl FnMut(&[f32]) -> Vec<f32>,
) -> Matrix {
    let mut out = Vec::with_capacity(m.len());
    for group in m.row_groups(group_size) {
        let q = f(group);
        debug_assert_eq!(q.len(), group.len());
        out.extend_from_slice(&q);
    }
    Matrix::from_vec(m.rows(), m.cols(), out)
}

/// The full hybrid M2XFP format: Elem-EM-top1 activations and Sg-EM-2bit
/// weights (paper §4.3).
#[derive(Debug, Clone, Copy)]
pub struct M2xfpQuantizer {
    cfg: M2xfpConfig,
}

impl M2xfpQuantizer {
    /// Creates a quantizer from a configuration.
    pub fn new(cfg: M2xfpConfig) -> Self {
        M2xfpQuantizer { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &M2xfpConfig {
        &self.cfg
    }
}

impl Default for M2xfpQuantizer {
    fn default() -> Self {
        M2xfpQuantizer::new(M2xfpConfig::default())
    }
}

impl TensorQuantizer for M2xfpQuantizer {
    fn name(&self) -> String {
        // Non-default configurations must be distinguishable by name:
        // result caches key on it.
        if self.cfg == M2xfpConfig::default() {
            "M2XFP".to_string()
        } else {
            format!(
                "M2XFP(g{}/sg{},{},{})",
                self.cfg.group_size,
                self.cfg.subgroup_size,
                self.cfg.scale_rule.name(),
                if self.cfg.adaptive_weight_scale {
                    "adaptive"
                } else {
                    "fixed"
                }
            )
        }
    }

    fn weight_ebw(&self) -> f64 {
        let n_sub = (self.cfg.group_size / self.cfg.subgroup_size) as f64;
        4.0 + (2.0 * n_sub + 8.0) / self.cfg.group_size as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.weight_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        // The threaded integer-LUT Sg-EM search straight into the packed
        // streams, then a direct stream dequantize — bit-identical to the
        // legacy per-group float search (`weight::fake_quantize_group`
        // over `fake_quant_rowwise`), roughly an order of magnitude
        // faster, and what makes multi-layer offline quantization (§6
        // end-to-end) practical.
        PackedWeightTensor::quantize_parallel(w, self.cfg).dequantize()
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        let gc = self.cfg.group_config();
        fake_quant_rowwise(x, self.cfg.group_size, |g| {
            activation::fake_quantize_group(g, gc, self.cfg.scale_rule)
        })
    }
}

/// The float-codec reference twin of [`M2xfpQuantizer`]: weights run the
/// original per-group decode/encode Sg-EM search
/// ([`quantize_group_reference`](crate::weight::quantize_group_reference)) instead of the threaded LUT
/// path. Kept as the bit-exactness oracle — tests assert the production
/// quantizer matches it bit for bit. Slow; not for production use.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceM2xfpQuantizer {
    cfg: M2xfpConfig,
}

impl ReferenceM2xfpQuantizer {
    /// Creates an oracle quantizer from a configuration.
    pub fn new(cfg: M2xfpConfig) -> Self {
        ReferenceM2xfpQuantizer { cfg }
    }
}

impl TensorQuantizer for ReferenceM2xfpQuantizer {
    fn name(&self) -> String {
        format!("{}-reference", M2xfpQuantizer::new(self.cfg).name())
    }

    fn weight_ebw(&self) -> f64 {
        M2xfpQuantizer::new(self.cfg).weight_ebw()
    }

    fn activation_ebw(&self) -> f64 {
        M2xfpQuantizer::new(self.cfg).activation_ebw()
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        use crate::weight;
        let gc = self.cfg.group_config();
        fake_quant_rowwise(w, self.cfg.group_size, |g| {
            weight::dequantize_group(
                &weight::quantize_group_reference(
                    g,
                    gc,
                    self.cfg.scale_rule,
                    self.cfg.adaptive_weight_scale,
                ),
                gc,
            )
        })
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        M2xfpQuantizer::new(self.cfg).quantize_activations(x)
    }
}

/// The FP16 reference "format": rounds to binary16, the baseline row of
/// every table in the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fp16Reference;

impl TensorQuantizer for Fp16Reference {
    fn name(&self) -> String {
        "FP16".to_string()
    }

    fn weight_ebw(&self) -> f64 {
        16.0
    }

    fn activation_ebw(&self) -> f64 {
        16.0
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        w.map(m2x_formats::half::quantize_f16)
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        x.map(m2x_formats::half::quantize_f16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::nmse;

    fn toy_matrix(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * cols + c) as f32 * 0.317 + seed).sin() * 3.0
        })
    }

    #[test]
    fn m2xfp_ebw_matches_paper() {
        let q = M2xfpQuantizer::default();
        assert!((q.weight_ebw() - 4.5).abs() < 1e-12);
        assert!((q.activation_ebw() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn fake_quant_preserves_shape() {
        let q = M2xfpQuantizer::default();
        let x = toy_matrix(5, 100, 0.0);
        let xq = q.quantize_activations(&x);
        assert_eq!((xq.rows(), xq.cols()), (5, 100));
        let wq = q.quantize_weights(&x);
        assert_eq!((wq.rows(), wq.cols()), (5, 100));
    }

    #[test]
    fn quantization_error_is_small_but_nonzero() {
        let q = M2xfpQuantizer::default();
        let x = toy_matrix(8, 128, 1.0);
        let xq = q.quantize_activations(&x);
        let e = nmse(x.as_slice(), xq.as_slice());
        assert!(e > 0.0 && e < 0.01, "nmse {e}");
    }

    #[test]
    fn fp16_reference_nearly_exact() {
        let q = Fp16Reference;
        let x = toy_matrix(4, 64, 2.0);
        let xq = q.quantize_activations(&x);
        let e = nmse(x.as_slice(), xq.as_slice());
        assert!(e < 1e-6, "nmse {e}");
    }

    #[test]
    fn trait_object_usable() {
        let quants: Vec<Box<dyn TensorQuantizer>> =
            vec![Box::new(M2xfpQuantizer::default()), Box::new(Fp16Reference)];
        let x = toy_matrix(2, 32, 0.5);
        for q in &quants {
            let _ = q.quantize_weights(&x);
            assert!(!q.name().is_empty());
        }
    }

    #[test]
    fn names_distinguish_configurations() {
        use crate::{M2xfpConfig, ScaleRule};
        let default = M2xfpQuantizer::default();
        assert_eq!(default.name(), "M2XFP");
        let fixed = M2xfpQuantizer::new(M2xfpConfig {
            adaptive_weight_scale: false,
            ..M2xfpConfig::default()
        });
        let ceil = M2xfpQuantizer::new(M2xfpConfig {
            scale_rule: ScaleRule::Ceil,
            ..M2xfpConfig::default()
        });
        let sg4 = M2xfpQuantizer::new(M2xfpConfig {
            subgroup_size: 4,
            ..M2xfpConfig::default()
        });
        let names = [default.name(), fixed.name(), ceil.name(), sg4.name()];
        for i in 0..names.len() {
            for j in i + 1..names.len() {
                assert_ne!(names[i], names[j], "{} vs {}", names[i], names[j]);
            }
        }
    }

    #[test]
    fn routed_quantize_weights_matches_legacy_fake_quant() {
        // quantize_weights now runs the threaded LUT search through the
        // packed streams; it must stay bit-identical to the float-codec
        // oracle quantizer (the legacy per-group fake-quantization it
        // replaced — result caches and recorded tables depend on it).
        for cfg in [
            M2xfpConfig::default(),
            M2xfpConfig {
                adaptive_weight_scale: false,
                ..M2xfpConfig::default()
            },
            M2xfpConfig {
                scale_rule: crate::ScaleRule::Ceil,
                ..M2xfpConfig::default()
            },
        ] {
            let q = M2xfpQuantizer::new(cfg);
            let oracle = ReferenceM2xfpQuantizer::new(cfg);
            for (rows, cols) in [(4, 128), (3, 100), (1, 32)] {
                let w = toy_matrix(rows, cols, 0.3);
                let routed = q.quantize_weights(&w);
                let legacy = oracle.quantize_weights(&w);
                for (a, b) in routed.as_slice().iter().zip(legacy.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{}x{cols}", rows);
                }
            }
        }
    }

    #[test]
    fn weights_use_subgroup_refinement() {
        // Weight path must beat the activation path on static data where the
        // adaptive search can align subgroup maxima.
        let q = M2xfpQuantizer::default();
        let mut better = 0;
        for seed in 0..10 {
            let w = toy_matrix(4, 128, seed as f32);
            let ew = nmse(w.as_slice(), q.quantize_weights(&w).as_slice());
            let ea = nmse(w.as_slice(), q.quantize_activations(&w).as_slice());
            if ew <= ea {
                better += 1;
            }
        }
        assert!(better >= 7, "weight path better in only {better}/10 runs");
    }
}
