//! Online activation quantization with Elem-EM-top1 metadata — Algorithm 1
//! of the paper, bit for bit.
//!
//! Per group: ❶ compute the shared E8M0 scale from the block maximum, ❷
//! quantize every element to FP4 (E2M1), then per subgroup: ❸❹ identify the
//! top-1 element *in the FP4 domain* (ties → lowest index, so the decoder
//! can re-identify it without stored indices), ❺ re-quantize that element's
//! original value to FP6 (E2M3), ❻❼ bias-clamp encode the FP6 value into 2
//! metadata bits whose decode is `fp6_bits = (fp4_bits << 2 | meta) - 1`,
//! ❽ pack.

use crate::group::GroupConfig;
use crate::scale::ScaleRule;
use m2x_formats::tables::{decode_extra_mantissa, fp4_encode, fp6_mag_code, top1_index};
use m2x_formats::{fp4, fp6_e2m3, E8M0};

/// One quantized activation group: FP4 codes, E8M0 shared scale and one
/// 2-bit extra-mantissa metadata field per subgroup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActGroup {
    /// FP4 codes (sign in bit 3, magnitude in bits 2..0), one per element.
    pub codes: Vec<u8>,
    /// Shared power-of-two scale.
    pub scale: E8M0,
    /// 2-bit metadata per subgroup (bias-clamp encoded FP6 low bits).
    pub meta: Vec<u8>,
}

impl ActGroup {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the group holds no elements.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// Quantizes one group of high-precision activations (Algorithm 1).
///
/// `x.len()` may be shorter than `cfg.group_size()` for a trailing group.
pub fn quantize_group(x: &[f32], cfg: GroupConfig, rule: ScaleRule) -> ActGroup {
    let mut codes = vec![0u8; x.len()];
    let mut meta = vec![0u8; cfg.subgroup_count(x.len())];
    let scale = quantize_group_into(x, cfg, rule, &mut codes, &mut meta);
    ActGroup { codes, scale, meta }
}

fn check_group_buffers(x: &[f32], cfg: GroupConfig, codes: &[u8], meta: &[u8]) {
    assert!(!x.is_empty(), "group must be non-empty");
    assert!(
        x.len() <= cfg.group_size(),
        "group longer than configured size"
    );
    assert_eq!(codes.len(), x.len(), "code buffer length mismatch");
    assert_eq!(
        meta.len(),
        cfg.subgroup_count(x.len()),
        "meta buffer length mismatch"
    );
}

/// Allocation-free Algorithm 1: quantizes one group directly into
/// caller-provided code and metadata slices, returning the shared scale.
///
/// This is the encoder the packed three-stream pipeline drives in a tight
/// loop (one reusable scratch buffer per tensor, zero heap allocations per
/// group). [`quantize_group`] is the allocating convenience wrapper.
///
/// The per-element FP4 encode runs the branch-free
/// [`fp4_encode`] comparison ladder and the per-subgroup FP6 refinement the
/// region-wise [`fp6_mag_code`] — no minifloat-codec calls anywhere on the
/// online path. Scaling multiplies by the exact reciprocal of the E8M0
/// scale (a power of two, so `v * (1/s)` and `v / s` round identically).
/// Bit-identical to the float-codec oracle
/// [`quantize_group_into_reference`], which the tests and the workspace
/// property tests pin.
///
/// # Panics
///
/// Panics when `x` is empty or longer than the group size, when
/// `codes.len() != x.len()`, or when `meta` does not hold exactly one entry
/// per subgroup.
pub fn quantize_group_into(
    x: &[f32],
    cfg: GroupConfig,
    rule: ScaleRule,
    codes: &mut [u8],
    meta: &mut [u8],
) -> E8M0 {
    check_group_buffers(x, cfg, codes, meta);

    // Step 1: shared scale from the block maximum.
    let amax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = rule.shared_scale(amax, fp4());
    // E8M0 exponents span [-127, 127], so 1/s is an exact (possibly
    // subnormal) power of two and multiplying by it is bit-identical to
    // dividing by s: both correctly round the same real quotient.
    let inv = 1.0 / scale.value();

    // Step 2: quantize everything to FP4 (E2M1), branch-free.
    for (c, &v) in codes.iter_mut().zip(x) {
        *c = fp4_encode(v * inv);
    }

    // Steps 3-7 per subgroup.
    let sg_size = cfg.subgroup_size();
    for (sg_idx, sg_codes) in codes.chunks(sg_size).enumerate() {
        // Steps 3 & 4: top-1 in the FP4 domain, lowest index on ties.
        let local = top1_index(sg_codes);
        let idx = sg_idx * sg_size + local;

        // Step 5: re-quantize the original value to FP6 (E2M3), same scale.
        let fp6_mag = fp6_mag_code(x[idx].abs() * inv);

        // Steps 6 & 7: add bias, clamp to keep the FP6 high bits equal to
        // the FP4 bits, keep the low 2 bits as metadata.
        let fp4_mag = sg_codes[local] & 0x7;
        let encoded = fp6_mag + 1;
        let range_min = fp4_mag << 2;
        let range_max = range_min | 0b11;
        let clamped = encoded.clamp(range_min, range_max);
        meta[sg_idx] = clamped & 0b11;
    }

    scale
}

/// [`quantize_group_into`] through the original float-codec encode
/// (`Minifloat::encode` / `encode_magnitude` with a true division by the
/// shared scale) — the bit-exactness oracle for the branch-free online
/// path. Slow; use only in tests and benches.
pub fn quantize_group_into_reference(
    x: &[f32],
    cfg: GroupConfig,
    rule: ScaleRule,
    codes: &mut [u8],
    meta: &mut [u8],
) -> E8M0 {
    check_group_buffers(x, cfg, codes, meta);
    let f4 = fp4();
    let f6 = fp6_e2m3();

    let amax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = rule.shared_scale(amax, f4);
    let s = scale.value();

    for (c, &v) in codes.iter_mut().zip(x) {
        *c = f4.encode(v / s);
    }

    let sg_size = cfg.subgroup_size();
    for (sg_idx, sg_codes) in codes.chunks(sg_size).enumerate() {
        let local = top1_index(sg_codes);
        let idx = sg_idx * sg_size + local;
        let fp6_mag = f6.encode_magnitude(x[idx].abs() / s);
        let fp4_mag = sg_codes[local] & 0x7;
        let encoded = fp6_mag + 1;
        let range_min = fp4_mag << 2;
        let range_max = range_min | 0b11;
        let clamped = encoded.clamp(range_min, range_max);
        meta[sg_idx] = clamped & 0b11;
    }

    scale
}

/// Dequantizes a group: every element decodes from FP4 except each
/// subgroup's top-1, which is refined by the 2-bit metadata
/// (`fp6 = (fp4 << 2 | meta) - 1`).
pub fn dequantize_group(g: &ActGroup, cfg: GroupConfig) -> Vec<f32> {
    let f4 = fp4();
    let s = g.scale.value();
    let mut out: Vec<f32> = g.codes.iter().map(|&c| f4.decode(c) * s).collect();

    for (sg_idx, sg_codes) in g.codes.chunks(cfg.subgroup_size()).enumerate() {
        let local = top1_index(sg_codes);
        let idx = sg_idx * cfg.subgroup_size() + local;
        let fp4_mag = sg_codes[local] & 0x7;
        let refined = decode_extra_mantissa(fp4_mag, g.meta[sg_idx]);
        let sign = if sg_codes[local] & 0x8 != 0 {
            -1.0
        } else {
            1.0
        };
        out[idx] = sign * refined * s;
    }
    out
}

/// Fake-quantization (quantize + dequantize) of one group.
pub fn fake_quantize_group(x: &[f32], cfg: GroupConfig, rule: ScaleRule) -> Vec<f32> {
    dequantize_group(&quantize_group(x, cfg, rule), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GroupConfig {
        GroupConfig::new(32, 8)
    }

    fn small_cfg() -> GroupConfig {
        GroupConfig::new(8, 4)
    }

    #[test]
    fn paper_fig8_example() {
        // Fig. 8 walks a group of 8 (subgroup 4) with these FP16 values.
        let x = [9.25, 1.264, 5.36, 10.72, 6.41, 10.78, 10.26, -0.27];
        let g = quantize_group(&x, small_cfg(), ScaleRule::Floor);
        // amax = 10.78, 10.78/4 in [2,4) -> E = 1, S = 2.
        assert_eq!(g.scale.exponent(), 1);
        // FP4 of x/S = [4.625, 0.632, 2.68, 5.36, 3.205, 5.39, 5.13, -0.135]
        //            -> [4, 0.5, 3, 6, 3, 6, 6, -0.0] (paper row 3, scaled by 2:
        //               [8?, ...] — the figure lists quantized*scale as
        //               [1.0? ...]; we check the decoded FP4 values directly).
        let f4 = m2x_formats::fp4();
        let decoded: Vec<f32> = g.codes.iter().map(|&c| f4.decode(c) * 2.0).collect();
        assert_eq!(decoded[0], 8.0); // 4.625 -> 4 (between 4 and 6, closer to 4? 4.625-4=0.625, 6-4.625=1.375) -> 4*2
        assert_eq!(decoded[1], 1.0);
        assert_eq!(decoded[3], 12.0); // 5.36 -> 6
        assert_eq!(decoded[7], -0.0);
        // Subgroup 0: FP4 mags = [4, 0.5, 3, 6] -> top-1 is index 3.
        // Subgroup 1: [3, 6, 6, 0] -> tie between idx 1 and 2 -> lowest (1),
        // i.e. global index 5 (value 10.78).
        let dq = dequantize_group(&g, small_cfg());
        // Refined top-1 of subgroup 0: 10.72/2 = 5.36 -> FP6 RNE: 5.5
        // (5.36 between 5.0 and 5.5; 5.36-5.0=0.36 > 5.5-5.36=0.14).
        assert_eq!(dq[3], 11.0);
        // Refined top-1 of subgroup 1: 10.78/2 = 5.39 -> FP6 5.5 -> 11.0.
        assert_eq!(dq[5], 11.0);
        // Non-top elements keep their FP4 value.
        assert_eq!(dq[0], 8.0);
        assert_eq!(dq[1], 1.0);
    }

    #[test]
    fn paper_bad_case_rounding() {
        // §4.4.1: value 3.578 (at scale 1) quantizes to FP4 4.0; plain FP6
        // would give 3.5 (error 0.078) but the bias-clamp encoding yields
        // 3.75 (error 0.172). The first subgroup pins the scale to 2^0.
        let c = GroupConfig::new(8, 4);
        let x = [4.5, 0.1, 0.1, 0.1, 3.578, 0.2, 0.1, 0.1];
        let g = quantize_group(&x, c, ScaleRule::Floor);
        assert_eq!(g.scale.exponent(), 0);
        let dq = dequantize_group(&g, c);
        assert!((dq[4] - 3.75).abs() < 1e-6, "got {}", dq[4]);
    }

    #[test]
    fn top1_refinement_reduces_group_error() {
        let mut r = 0u64;
        let mut next = || {
            // Tiny deterministic LCG to avoid a dev-dependency here.
            r = r
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((r >> 33) as f32 / (1u64 << 31) as f32) * 8.0 - 4.0
        };
        let mut worse = 0;
        for _ in 0..200 {
            let x: Vec<f32> = (0..32).map(|_| next()).collect();
            let with_meta = fake_quantize_group(&x, cfg(), ScaleRule::Floor);
            // Plain MXFP4: decode without metadata refinement.
            let g = quantize_group(&x, cfg(), ScaleRule::Floor);
            let f4 = m2x_formats::fp4();
            let s = g.scale.value();
            let plain: Vec<f32> = g.codes.iter().map(|&c| f4.decode(c) * s).collect();
            let e_meta = m2x_tensor::stats::mse(&x, &with_meta);
            let e_plain = m2x_tensor::stats::mse(&x, &plain);
            if e_meta > e_plain + 1e-12 {
                worse += 1;
            }
        }
        // The bias-clamp bad case can make an individual group slightly
        // worse, but it must be rare (paper: negligible impact).
        assert!(worse <= 10, "metadata hurt {worse}/200 groups");
    }

    #[test]
    fn decoder_identifies_same_top1() {
        // After refinement the FP4 codes are unchanged, so the decoder's
        // top-1 search must return the same index the encoder used.
        let x = [1.0, 4.0, -4.0, 2.0, 0.5, 0.4, 0.3, 0.2];
        let c = small_cfg();
        let g = quantize_group(&x, c, ScaleRule::Floor);
        // Encoder picked index 1 (tie with 2, lowest wins); metadata refines
        // x[1]: decode must apply it to index 1, leaving x[2] at FP4.
        let dq = dequantize_group(&g, c);
        let f4 = m2x_formats::fp4();
        let s = g.scale.value();
        assert_eq!(dq[2], f4.decode(g.codes[2]) * s);
    }

    #[test]
    fn all_zero_group() {
        let x = [0.0f32; 32];
        let g = quantize_group(&x, cfg(), ScaleRule::Floor);
        let dq = dequantize_group(&g, cfg());
        assert_eq!(dq, x);
    }

    #[test]
    fn short_trailing_group() {
        let x = [1.0, -2.0, 3.0, 0.25, 5.9];
        let g = quantize_group(&x, cfg(), ScaleRule::Floor);
        assert_eq!(g.codes.len(), 5);
        assert_eq!(g.meta.len(), 1);
        let dq = dequantize_group(&g, cfg());
        assert_eq!(dq.len(), 5);
    }

    #[test]
    fn error_bounded_by_fp4_step() {
        // Every element's error is at most half an FP4 step at the shared
        // scale; the refined element's error is at most half an FP6 step
        // plus the clamp penalty (one FP6 step).
        let x: Vec<f32> = (0..32)
            .map(|i| ((i * 37 % 64) as f32 - 32.0) / 7.3)
            .collect();
        let dq = fake_quantize_group(&x, cfg(), ScaleRule::Floor);
        let amax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let s = ScaleRule::Floor
            .shared_scale(amax, m2x_formats::fp4())
            .value();
        for (a, b) in x.iter().zip(&dq) {
            // Worst-case FP4 step is 2 (between 4 and 6) at scale s.
            assert!((a - b).abs() <= 1.0 * s + 1e-6, "a={a} b={b} s={s}");
        }
    }

    #[test]
    fn saturated_top1_uses_fp6_max() {
        // amax just below 8·S saturates FP6 at 7.5 and the bias-clamp maps
        // it to 7.0 (the +3 candidate is unreachable, §4.4.1 analysis).
        let x = [7.9, 0.1, 0.1, 0.1];
        let c = GroupConfig::new(4, 4);
        let g = quantize_group(&x, c, ScaleRule::Floor);
        assert_eq!(g.scale.exponent(), 0);
        let dq = dequantize_group(&g, c);
        assert_eq!(dq[0], 7.0);
    }

    #[test]
    fn fast_encode_matches_float_codec_oracle() {
        // The branch-free online encoder must be bit-identical to the
        // float-codec reference on every code, scale and metadata byte —
        // including huge/tiny magnitudes that drive the E8M0 scale to its
        // clamps and make 1/s subnormal.
        let c = cfg();
        for (seed, mag) in [
            (1u64, 1.0f32),
            (2, 1e-4),
            (3, 1e4),
            (4, 3.0e38),
            (5, 1e-38),
            (6, 0.0),
        ] {
            let mut r = seed;
            let mut next = || {
                r = r
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((r >> 33) as f32 / (1u64 << 31) as f32) * 8.0 - 4.0) * mag
            };
            for rule in ScaleRule::ALL {
                for len in [32usize, 13, 1] {
                    let x: Vec<f32> = (0..len).map(|_| next()).collect();
                    let mut codes = vec![0u8; len];
                    let mut meta = vec![0u8; c.subgroup_count(len)];
                    let s = quantize_group_into(&x, c, rule, &mut codes, &mut meta);
                    let mut codes_ref = vec![0u8; len];
                    let mut meta_ref = vec![0u8; c.subgroup_count(len)];
                    let s_ref =
                        quantize_group_into_reference(&x, c, rule, &mut codes_ref, &mut meta_ref);
                    assert_eq!(s, s_ref, "scale seed={seed} rule={rule:?} len={len}");
                    assert_eq!(
                        codes, codes_ref,
                        "codes seed={seed} rule={rule:?} len={len}"
                    );
                    assert_eq!(meta, meta_ref, "meta seed={seed} rule={rule:?} len={len}");
                }
            }
        }
    }

    #[test]
    fn roundtrip_idempotent_on_generic_data() {
        // Exact idempotence holds away from FP4 RNE tie midpoints; the
        // tie/bad-case drift is covered by the workspace property test
        // `activation_requantization_settles`.
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.77).sin() * 5.0).collect();
        let c = cfg();
        let once = fake_quantize_group(&x, c, ScaleRule::Floor);
        let twice = fake_quantize_group(&once, c, ScaleRule::Floor);
        assert_eq!(once, twice);
    }
}
