//! # m2xfp
//!
//! The paper's primary contribution: the **M2XFP metadata-augmented
//! microscaling data format** and the machinery around it.
//!
//! * [`scale`] — shared-scale computation rules (floor/ceil/RTN1/RTN2/RTNE)
//!   and the adaptive exponent-bias search (paper §2.2, §4.4.2, §6.4).
//! * [`group`] — group/subgroup partitioning framework (paper §4.1).
//! * [`ebw`] — equivalent-bit-width accounting (paper Eq. 2).
//! * [`activation`] — Algorithm 1: online Elem-EM-top1 activation
//!   quantization with the bias-clamp FP6 encoding (paper §4.4.1).
//! * [`weight`] — Sg-EM-2bit weight quantization with hierarchical MSE
//!   search over subgroup multipliers and exponent bias (paper §4.4.2).
//! * [`strategy`] — the full metadata design space (Elem-EM/EE, Sg-EM/EE ×
//!   fixed/adaptive shared scale) explored in Figs. 6–7.
//! * [`format`](mod@format) — packed tensor representation with the three-stream memory
//!   layout of §5.2.
//! * [`gemm`] — bit-exact quantized GEMM mirroring the augmented PE
//!   (fixed-point accumulation, ΔX correction, shift-add subgroup scaling,
//!   paper §5.4 / Eq. 5).
//! * [`dse`] — Pareto sweep driver for the encoding design-space
//!   exploration.
//! * [`quantizer`] — the [`TensorQuantizer`] trait shared with every
//!   baseline format.
//! * [`backend`] — the [`ExecBackend`] execution
//!   abstraction: packed / grouped / float-oracle engines with
//!   bit-identical outputs, the layer every inference surface
//!   (`m2x_nn::linear`, `m2x_nn::model`) routes through.
//! * [`error`] — the unified [`enum@Error`] type of the engine API.
//!
//! ```
//! use m2x_tensor::Matrix;
//! use m2xfp::{M2xfpConfig, quantizer::TensorQuantizer};
//!
//! let cfg = M2xfpConfig::default(); // group 32, subgroup 8, floor rule
//! let q = cfg.quantizer();
//! let x = Matrix::from_fn(4, 64, |r, c| ((r * 64 + c) as f32).sin() * 3.0);
//! let xq = q.quantize_activations(&x);
//! assert_eq!(xq.rows(), 4);
//! ```

pub mod activation;
pub mod backend;
pub mod dse;
pub mod ebw;
pub mod error;
pub mod format;
pub mod gemm;
pub mod group;
pub mod quantizer;
pub mod scale;
pub mod strategy;
pub mod weight;

pub use backend::{BackendKind, ExecBackend};
pub use error::Error;
pub use group::GroupConfig;
pub use quantizer::TensorQuantizer;
pub use scale::ScaleRule;

/// One-stop imports for the engine API: configuration, backends, packed
/// tensors, the quantizer trait and the unified error type.
///
/// ```
/// use m2xfp::prelude::*;
///
/// let cfg = M2xfpConfig::default();
/// let be = BackendKind::Packed.backend();
/// assert_eq!(be.name(), "packed");
/// assert_eq!(cfg.group_size, 32);
/// ```
pub mod prelude {
    pub use crate::backend::{BackendKind, ExecBackend, PreparedWeights};
    pub use crate::error::Error;
    pub use crate::format::{ActTensor, PackedActTensor, PackedWeightTensor, WeightTensor};
    pub use crate::gemm::{GemmScratch, WeightPlane};
    pub use crate::quantizer::{M2xfpQuantizer, TensorQuantizer};
    pub use crate::scale::ScaleRule;
    pub use crate::M2xfpConfig;
}

/// Top-level M2XFP configuration.
///
/// The paper's production configuration (§6.1) is group size 32, subgroup
/// size 8, OCP floor scale rule, adaptive shared scale for weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct M2xfpConfig {
    /// Elements sharing one E8M0 scale (paper: 32).
    pub group_size: usize,
    /// Elements per metadata subgroup (paper: 8).
    pub subgroup_size: usize,
    /// How the shared exponent is derived from the block maximum.
    pub scale_rule: ScaleRule,
    /// Whether weight quantization searches the exponent bias b ∈ {-1,0,1}.
    pub adaptive_weight_scale: bool,
}

impl Default for M2xfpConfig {
    fn default() -> Self {
        M2xfpConfig {
            group_size: 32,
            subgroup_size: 8,
            scale_rule: ScaleRule::Floor,
            adaptive_weight_scale: true,
        }
    }
}

impl M2xfpConfig {
    /// The group layout implied by this configuration.
    pub fn group_config(&self) -> GroupConfig {
        GroupConfig::new(self.group_size, self.subgroup_size)
    }

    /// A [`TensorQuantizer`] implementing the full hybrid format
    /// (Elem-EM-top1 activations, Sg-EM-2bit weights).
    pub fn quantizer(&self) -> quantizer::M2xfpQuantizer {
        quantizer::M2xfpQuantizer::new(*self)
    }
}
