//! Encoding design-space exploration (paper §4.2, Figs. 6–7).
//!
//! Sweeps metadata strategies × subgroup sizes under fixed and adaptive
//! shared scales, producing (EBW, MSE) points whose Pareto frontier drives
//! the hybrid M2XFP design choice.

use crate::group::GroupConfig;
use crate::scale::ScaleRule;
use crate::strategy::{MetadataStrategy, ScaleMode};
use m2x_tensor::stats::mse;
use m2x_tensor::Matrix;

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DsePoint {
    /// Strategy display name (e.g. `Elem-EM-top1`).
    pub strategy: String,
    /// Shared-scale mode.
    pub adaptive: bool,
    /// Subgroup size used.
    pub subgroup_size: usize,
    /// Equivalent bit width (Eq. 2).
    pub ebw: f64,
    /// Mean squared quantization error over the workload.
    pub mse: f64,
}

/// The subgroup sizes swept in Figs. 6–7 ("Subgroup size: 32 → 2").
pub const FIG6_SUBGROUPS: [usize; 5] = [32, 16, 8, 4, 2];

/// Sweeps `strategies` × `subgroups` over the rows of `data` (grouped at
/// `group_size`, the paper uses 32).
pub fn sweep(
    data: &Matrix,
    strategies: &[MetadataStrategy],
    subgroups: &[usize],
    group_size: usize,
    rule: ScaleRule,
    mode: ScaleMode,
) -> Vec<DsePoint> {
    let mut points = Vec::new();
    for &s in strategies {
        for &sg in subgroups {
            if sg > group_size || group_size % sg != 0 {
                continue;
            }
            let cfg = GroupConfig::new(group_size, sg);
            let mut q = Vec::with_capacity(data.len());
            for group in data.row_groups(group_size) {
                q.extend(s.fake_quantize_group(group, cfg, rule, mode));
            }
            points.push(DsePoint {
                strategy: s.to_string(),
                adaptive: mode == ScaleMode::Adaptive,
                subgroup_size: sg,
                ebw: s.bit_budget(cfg).ebw(),
                mse: mse(data.as_slice(), &q),
            });
        }
    }
    points
}

/// Filters a point set down to its Pareto frontier (minimal MSE at each
/// EBW; a point survives when no other point has both ≤ EBW and < MSE).
pub fn pareto_frontier(points: &[DsePoint]) -> Vec<DsePoint> {
    let mut frontier: Vec<DsePoint> = Vec::new();
    for p in points {
        let dominated = points
            .iter()
            .any(|q| (q.ebw < p.ebw && q.mse <= p.mse) || (q.ebw <= p.ebw && q.mse < p.mse));
        if !dominated {
            frontier.push(p.clone());
        }
    }
    frontier.sort_by(|a, b| a.ebw.total_cmp(&b.ebw));
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Matrix {
        Matrix::from_fn(16, 128, |r, c| {
            let t = (r * 128 + c) as f32;
            // Gaussian-ish body with occasional outliers.
            let body = (t * 0.317).sin() + 0.7 * (t * 0.113).cos();
            let spike = if (r * 128 + c) % 97 == 0 { 4.0 } else { 0.0 };
            body + spike
        })
    }

    #[test]
    fn sweep_produces_all_points() {
        let pts = sweep(
            &workload(),
            &MetadataStrategy::FIG6_SET,
            &FIG6_SUBGROUPS,
            32,
            ScaleRule::Floor,
            ScaleMode::Fixed,
        );
        assert_eq!(pts.len(), 6 * 5);
        assert!(pts.iter().all(|p| p.mse.is_finite() && p.ebw > 4.0));
    }

    #[test]
    fn ebw_increases_with_finer_subgroups() {
        let pts = sweep(
            &workload(),
            &[MetadataStrategy::ElemEm { top: 1 }],
            &FIG6_SUBGROUPS,
            32,
            ScaleRule::Floor,
            ScaleMode::Fixed,
        );
        for w in pts.windows(2) {
            assert!(w[0].ebw < w[1].ebw); // 32 -> 2 ascending EBW
                                          // And MSE should not increase with more metadata.
            assert!(w[1].mse <= w[0].mse * 1.05, "{:?}", w);
        }
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let pts = sweep(
            &workload(),
            &MetadataStrategy::FIG6_SET,
            &FIG6_SUBGROUPS,
            32,
            ScaleRule::Floor,
            ScaleMode::Fixed,
        );
        let f = pareto_frontier(&pts);
        assert!(!f.is_empty());
        for w in f.windows(2) {
            assert!(w[0].ebw <= w[1].ebw);
            assert!(w[0].mse >= w[1].mse);
        }
    }

    #[test]
    fn elem_em_on_fixed_frontier_at_4_5() {
        // The §4.2.2 headline: at the 4.5-4.75 EBW band, Elem-EM points are
        // on the fixed-scale frontier.
        let pts = sweep(
            &workload(),
            &MetadataStrategy::FIG6_SET,
            &FIG6_SUBGROUPS,
            32,
            ScaleRule::Floor,
            ScaleMode::Fixed,
        );
        let band: Vec<&DsePoint> = pts
            .iter()
            .filter(|p| p.ebw >= 4.45 && p.ebw <= 4.8)
            .collect();
        let best = band
            .iter()
            .min_by(|a, b| a.mse.partial_cmp(&b.mse).unwrap())
            .unwrap();
        assert!(
            best.strategy.starts_with("Elem-EM"),
            "best in band is {} (mse {})",
            best.strategy,
            best.mse
        );
    }
}
