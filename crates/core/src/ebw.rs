//! Equivalent bit width (EBW) accounting — paper Eq. 2:
//!
//! ```text
//! EBW = B_elem + (B_meta + B_scale) / k
//! ```
//!
//! where `k` is the group size, `B_elem` the element bits, `B_meta` the
//! metadata bits per group and `B_scale` the shared-scale bits. EBW is the
//! x-axis of the Pareto plots (Figs. 4, 6, 7) and the basis of the paper's
//! "effective 4.5-bit" claim for M2XFP.

/// Bit budget of a group-quantized format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitBudget {
    /// Bits per element (4 for FP4).
    pub elem_bits: f64,
    /// Shared-scale bits per group (8 for E8M0 and FP8).
    pub scale_bits: f64,
    /// Metadata bits per group.
    pub meta_bits: f64,
    /// Group size `k`.
    pub group_size: usize,
}

impl BitBudget {
    /// Equivalent bit width per Eq. 2.
    pub fn ebw(&self) -> f64 {
        self.elem_bits + (self.meta_bits + self.scale_bits) / self.group_size as f64
    }

    /// Metadata bits amortized per element.
    pub fn meta_bits_per_element(&self) -> f64 {
        self.meta_bits / self.group_size as f64
    }

    /// MXFP4 (OCP): FP4 elements, E8M0 scale, group 32, no metadata.
    pub fn mxfp4() -> Self {
        BitBudget {
            elem_bits: 4.0,
            scale_bits: 8.0,
            meta_bits: 0.0,
            group_size: 32,
        }
    }

    /// NVFP4: FP4 elements, FP8 scale, group 16 (tensor-level scale
    /// amortizes to ~0 and is ignored, as in the paper).
    pub fn nvfp4() -> Self {
        BitBudget {
            elem_bits: 4.0,
            scale_bits: 8.0,
            meta_bits: 0.0,
            group_size: 16,
        }
    }

    /// M2XFP production configuration: group 32, subgroup 8, 2 bits of
    /// metadata per subgroup for both weights (Sg-EM) and activations
    /// (Elem-EM-top1).
    pub fn m2xfp() -> Self {
        BitBudget {
            elem_bits: 4.0,
            scale_bits: 8.0,
            meta_bits: 8.0, // 4 subgroups × 2 bits
            group_size: 32,
        }
    }

    /// Budget for a metadata strategy spending `meta_bits_per_subgroup` on
    /// each of the `k / subgroup_size` subgroups.
    pub fn with_subgroup_meta(
        group_size: usize,
        subgroup_size: usize,
        meta_bits_per_subgroup: f64,
    ) -> Self {
        let n_sub = (group_size / subgroup_size) as f64;
        BitBudget {
            elem_bits: 4.0,
            scale_bits: 8.0,
            meta_bits: meta_bits_per_subgroup * n_sub,
            group_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mxfp4_is_4_25_bits() {
        assert!((BitBudget::mxfp4().ebw() - 4.25).abs() < 1e-12);
    }

    #[test]
    fn nvfp4_is_4_5_bits() {
        assert!((BitBudget::nvfp4().ebw() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn m2xfp_is_4_5_bits_with_quarter_bit_meta() {
        let b = BitBudget::m2xfp();
        assert!((b.ebw() - 4.5).abs() < 1e-12);
        // "only 0.25 bits of metadata per element" (paper §1).
        assert!((b.meta_bits_per_element() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn subgroup_sweep_monotone() {
        // Smaller subgroups -> more metadata -> higher EBW.
        let mut last = 0.0;
        for sg in [32, 16, 8, 4, 2] {
            let e = BitBudget::with_subgroup_meta(32, sg, 2.0).ebw();
            assert!(e > last);
            last = e;
        }
        // Elem-EM at subgroup 2 with 2-bit meta: 4 + (32 + 8)/32 = 5.25,
        // the right edge of Figs. 6-7.
        assert!((last - 5.25).abs() < 1e-12);
    }

    #[test]
    fn smx_style_budget() {
        // SMX4: group 16, pair-level 1 bit: EBW = 3(INT3 elem) + (8+8)/16.
        let b = BitBudget {
            elem_bits: 3.0,
            scale_bits: 8.0,
            meta_bits: 8.0,
            group_size: 16,
        };
        assert!((b.ebw() - 4.0).abs() < 1e-12);
    }
}
