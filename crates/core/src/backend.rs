//! Execution backends — the engine abstraction behind every quantized
//! forward pass.
//!
//! A backend owns the *how* of running `y = Q_a(x) · Q_w(W)ᵀ`: which
//! activation encoder, which tensor representation and which GEMM kernel.
//! All three implementations consume the same canonical weight bits (a
//! [`PackedWeightTensor`] produced by the threaded integer-LUT Sg-EM
//! search) and are **bit-identical** on every input — the property tests
//! assert it — so callers pick a backend for speed or debuggability, never
//! for accuracy:
//!
//! * [`PackedBackend`] — the production hot path: branch-free packed
//!   activation encode, cached [`WeightPlane`] decode, cache-blocked
//!   threaded integer [`qgemm_packed_planed`](crate::gemm::qgemm_packed_planed).
//! * [`GroupedBackend`] — the legacy `Vec<Group>` pipeline, demoted to a
//!   readable reference implementation of the PE ([`qgemm`]).
//! * [`ReferenceBackend`] — the float oracle: dequantize both operands and
//!   multiply in f64 ([`qgemm_reference`]).
//!
//! Weights are prepared **once** per layer ([`ExecBackend::prepare`]) into
//! the backend's execution form ([`PreparedWeights`]) and reused across
//! forwards — the decode-once contract that `m2x_nn::linear` and
//! `m2x_nn::model` build on.
//!
//! ```
//! use m2x_tensor::Matrix;
//! use m2xfp::backend::BackendKind;
//! use m2xfp::format::PackedWeightTensor;
//! use m2xfp::M2xfpConfig;
//!
//! let cfg = M2xfpConfig::default();
//! let w = Matrix::from_fn(8, 64, |r, c| ((r * 64 + c) as f32 * 0.1).sin());
//! let x = Matrix::from_fn(4, 64, |r, c| ((r + c) as f32 * 0.2).cos());
//! let packed = PackedWeightTensor::quantize_parallel(&w, cfg);
//! let mut outs = Vec::new();
//! for kind in BackendKind::ALL {
//!     let be = kind.backend();
//!     let prepared = be.prepare(packed.clone());
//!     outs.push(be.forward(&x, &prepared)?);
//! }
//! assert_eq!(outs[0], outs[1]); // packed == grouped, bit for bit
//! assert_eq!(outs[1], outs[2]); // grouped == reference
//! # Ok::<(), m2xfp::Error>(())
//! ```

use crate::format::{ActTensor, PackedActTensor, PackedWeightTensor, WeightTensor};
use crate::gemm::{
    gemm_threads, qgemm, qgemm_packed_planed_scratch, qgemm_reference, qgemv_packed, GemmScratch,
    WeightPlane,
};
use crate::{Error, M2xfpConfig};
use m2x_tensor::Matrix;
use std::sync::Arc;

/// Selector for the three built-in execution backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Three-stream packed pipeline (production hot path).
    Packed,
    /// Legacy grouped `Vec<Group>` pipeline (readable PE reference).
    Grouped,
    /// Float-oracle pipeline (dequantize + f64 matmul).
    Reference,
}

impl BackendKind {
    /// All backends, production first.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Packed,
        BackendKind::Grouped,
        BackendKind::Reference,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Packed => "packed",
            BackendKind::Grouped => "grouped",
            BackendKind::Reference => "reference",
        }
    }

    /// The backend implementation for this kind (a static singleton —
    /// backends are stateless).
    pub fn backend(self) -> &'static dyn ExecBackend {
        match self {
            BackendKind::Packed => &PackedBackend,
            BackendKind::Grouped => &GroupedBackend,
            BackendKind::Reference => &ReferenceBackend,
        }
    }
}

/// A weight tensor prepared for repeated forwards under one backend: the
/// canonical packed streams plus the backend's decoded execution form
/// (fixed-point [`WeightPlane`] for the packed kernel, reconstructed
/// [`WeightTensor`] groups for the grouped/reference kernels).
///
/// The decoded state lives behind an [`Arc`], so `Clone` is O(1) and never
/// re-decodes: one prepared layer can be shared across any number of
/// concurrent inference sessions or threads (`m2x_serve` builds on exactly
/// this — N sessions cost N KV caches, not N weight copies). Mutation
/// ([`Self::append_quantized`], the KV-cache growth path) is copy-on-write:
/// unshared handles mutate in place, shared ones clone first.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedWeights {
    inner: Arc<PreparedInner>,
}

#[derive(Debug, Clone, PartialEq)]
struct PreparedInner {
    packed: PackedWeightTensor,
    exec: ExecForm,
}

#[derive(Debug, Clone, PartialEq)]
enum ExecForm {
    Plane(WeightPlane),
    Grouped(WeightTensor),
}

impl PreparedWeights {
    fn new(packed: PackedWeightTensor, exec: ExecForm) -> Self {
        PreparedWeights {
            inner: Arc::new(PreparedInner { packed, exec }),
        }
    }

    /// Matrix shape `(rows, cols)` = `(out_features, in_features)`.
    pub fn shape(&self) -> (usize, usize) {
        self.inner.packed.shape()
    }

    /// The configuration the weights were quantized with.
    pub fn config(&self) -> &M2xfpConfig {
        self.inner.packed.config()
    }

    /// The canonical three-stream weight bits.
    pub fn packed(&self) -> &PackedWeightTensor {
        &self.inner.packed
    }

    /// Appends already-quantized rows below the prepared tensor, updating
    /// both the canonical streams and the backend's execution form
    /// **incrementally** — O(delta), never a re-decode of the existing rows
    /// (the plane appends decoded rows, the grouped form appends groups).
    /// Bit-identical to re-preparing the row-concatenated tensor, which the
    /// tests pin. Copy-on-write when the handle is shared.
    ///
    /// # Errors
    ///
    /// Fails on a width or configuration mismatch.
    pub fn append_quantized(&mut self, delta: PackedWeightTensor) -> Result<(), Error> {
        if delta.shape().1 != self.shape().1 {
            return Err(Error::WidthMismatch {
                tensor: "prepared weights".to_string(),
                expected: self.shape().1,
                got: delta.shape().1,
            });
        }
        if delta.config() != self.config() {
            return Err(Error::config(
                "appended rows were quantized with a different config",
            ));
        }
        let inner = Arc::make_mut(&mut self.inner);
        match &mut inner.exec {
            ExecForm::Plane(plane) => plane.append(&delta),
            ExecForm::Grouped(grouped) => grouped.append_tensor(delta.to_grouped()),
        }
        inner.packed.append_packed(delta)
    }

    /// Drops all rows while keeping the allocations when the handle is
    /// unshared — the KV page-frame recycling path: a recycled frame
    /// compares equal to a freshly prepared empty tensor of the same
    /// width, so page reuse leaves no trace of the previous occupant. A
    /// shared handle (outstanding clones or weak refs) cannot be truncated
    /// in place and is replaced by a fresh empty preparation instead.
    pub fn clear_rows(&mut self) {
        if let Some(inner) = Arc::get_mut(&mut self.inner) {
            inner.packed.clear_rows();
            match &mut inner.exec {
                ExecForm::Plane(plane) => plane.clear_rows(),
                ExecForm::Grouped(grouped) => grouped.clear_rows(),
            }
        } else {
            let packed = PackedWeightTensor::empty(self.shape().1, *self.config());
            let exec = match self.inner.exec {
                ExecForm::Plane(_) => ExecForm::Plane(WeightPlane::decode(&packed)),
                ExecForm::Grouped(_) => ExecForm::Grouped(packed.to_grouped()),
            };
            *self = PreparedWeights::new(packed, exec);
        }
    }

    /// Heap bytes of the decoded execution form — the working state that
    /// rides alongside the canonical packed streams (fixed-point plane for
    /// the packed backend, reconstructed groups for grouped/reference).
    /// Packed-stream accounting alone understates a prepared tensor's real
    /// footprint by roughly this much.
    pub fn decoded_bytes(&self) -> usize {
        match &self.inner.exec {
            ExecForm::Plane(plane) => plane.decoded_bytes(),
            ExecForm::Grouped(grouped) => grouped
                .groups()
                .iter()
                .map(|g| {
                    g.codes.len()
                        + g.sg_em.len()
                        + std::mem::size_of::<crate::weight::WeightGroup>()
                })
                .sum(),
        }
    }

    fn form_name(&self) -> &'static str {
        match self.inner.exec {
            ExecForm::Plane(_) => "packed",
            ExecForm::Grouped(_) => "grouped",
        }
    }

    fn exec(&self) -> &ExecForm {
        &self.inner.exec
    }
}

/// An execution backend: prepares quantized weights into its preferred
/// form and runs the W4A4 forward pass (online activation quantization +
/// quantized GEMM) against them.
///
/// All implementations produce bit-identical outputs from the same weight
/// bits; see the [module docs](self) for the menu.
pub trait ExecBackend: Send + Sync + std::fmt::Debug {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Display name (mirrors [`BackendKind::name`]).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Decodes quantized weights into this backend's execution form. Do
    /// this once per layer (it is the O(N·K) decode) and reuse the result
    /// across forwards.
    fn prepare(&self, weights: PackedWeightTensor) -> PreparedWeights;

    /// W4A4 forward `y = Q_a(x) · Wᵀ` against prepared weights.
    ///
    /// # Errors
    ///
    /// Fails when `x.cols()` does not match the weights' reduction
    /// dimension, or when `w` was prepared into a different backend's form.
    fn forward(&self, x: &Matrix, w: &PreparedWeights) -> Result<Matrix, Error>;

    /// [`Self::forward`] with a caller-held reusable [`GemmScratch`].
    ///
    /// On the packed backend this is the decode hot-loop entry point:
    /// single-row inputs take the [`qgemv_packed`] GEMV fast path (no
    /// row-chunk threading) and the activation scratch is reused across
    /// calls instead of allocated fresh — serving sessions hold one scratch
    /// and route every projection through here. Backends without a scratch
    /// to reuse simply ignore it; every path computes identical bits.
    ///
    /// # Errors
    ///
    /// Same as [`Self::forward`].
    fn forward_scratch(
        &self,
        x: &Matrix,
        w: &PreparedWeights,
        _scratch: &mut GemmScratch,
    ) -> Result<Matrix, Error> {
        self.forward(x, w)
    }

    /// Quantizes `rows` (Sg-EM search) and appends them below prepared
    /// weights, updating the execution form incrementally — O(rows) per
    /// call regardless of how many rows are already prepared. This is the
    /// decode-on-append path a growing KV cache rides: the appended rows
    /// quantize and decode independently, so the result is bit-identical to
    /// re-preparing the row-concatenated tensor (pinned by tests).
    ///
    /// # Errors
    ///
    /// Fails on a width mismatch.
    fn append_rows(&self, w: &mut PreparedWeights, rows: &Matrix) -> Result<(), Error> {
        w.append_quantized(PackedWeightTensor::quantize_parallel(rows, *w.config()))
    }

    /// Fake-quantizes activations (quantize + dequantize) through this
    /// backend's online encoder — the form error measurement flows
    /// through. Bit-identical across backends.
    fn fake_quantize_activations(&self, x: &Matrix, cfg: M2xfpConfig) -> Matrix;

    /// Fake-quantizes weights (Sg-EM search + dequantize) through this
    /// backend's weight pipeline. Bit-identical across backends.
    fn fake_quantize_weights(&self, w: &Matrix, cfg: M2xfpConfig) -> Matrix;
}

fn check_forward(x: &Matrix, w: &PreparedWeights) -> Result<(), Error> {
    let (_, k) = w.shape();
    if x.cols() != k {
        return Err(Error::WidthMismatch {
            tensor: "prepared weights".to_string(),
            expected: k,
            got: x.cols(),
        });
    }
    Ok(())
}

fn form_error(backend: &dyn ExecBackend, w: &PreparedWeights) -> Error {
    Error::BackendMismatch {
        backend: backend.name(),
        prepared_by: w.form_name(),
    }
}

/// The production backend: packed three-stream tensors end to end.
#[derive(Debug, Clone, Copy, Default)]
pub struct PackedBackend;

impl ExecBackend for PackedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Packed
    }

    fn prepare(&self, weights: PackedWeightTensor) -> PreparedWeights {
        let plane = WeightPlane::decode(&weights);
        PreparedWeights::new(weights, ExecForm::Plane(plane))
    }

    fn forward(&self, x: &Matrix, w: &PreparedWeights) -> Result<Matrix, Error> {
        self.forward_scratch(x, w, &mut GemmScratch::default())
    }

    fn forward_scratch(
        &self,
        x: &Matrix,
        w: &PreparedWeights,
        scratch: &mut GemmScratch,
    ) -> Result<Matrix, Error> {
        check_forward(x, w)?;
        let ExecForm::Plane(plane) = w.exec() else {
            return Err(form_error(self, w));
        };
        let (n, k) = w.shape();
        // Auto-threaded online encode; decode-sized batches stay
        // single-threaded below the work threshold.
        let xq = PackedActTensor::quantize_parallel(x, *w.config());
        if x.rows() == 1 {
            // The serving decode shape: GEMV fast path, no row-chunk
            // threading, activation scratch reused from the caller.
            return Ok(qgemv_packed(&xq, plane, scratch));
        }
        let threads = gemm_threads(x.rows(), k, n);
        Ok(qgemm_packed_planed_scratch(&xq, plane, threads, scratch))
    }

    fn fake_quantize_activations(&self, x: &Matrix, cfg: M2xfpConfig) -> Matrix {
        PackedActTensor::quantize_parallel(x, cfg).dequantize()
    }

    fn fake_quantize_weights(&self, w: &Matrix, cfg: M2xfpConfig) -> Matrix {
        PackedWeightTensor::quantize_parallel(w, cfg).dequantize()
    }
}

/// The legacy grouped backend: `Vec<Group>` tensors and the readable
/// per-group integer PE pipeline ([`qgemm`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupedBackend;

impl ExecBackend for GroupedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Grouped
    }

    fn prepare(&self, weights: PackedWeightTensor) -> PreparedWeights {
        let grouped = weights.to_grouped();
        PreparedWeights::new(weights, ExecForm::Grouped(grouped))
    }

    fn forward(&self, x: &Matrix, w: &PreparedWeights) -> Result<Matrix, Error> {
        check_forward(x, w)?;
        let ExecForm::Grouped(grouped) = w.exec() else {
            return Err(form_error(self, w));
        };
        let xq = ActTensor::quantize(x, *w.config());
        Ok(qgemm(&xq, grouped))
    }

    fn fake_quantize_activations(&self, x: &Matrix, cfg: M2xfpConfig) -> Matrix {
        ActTensor::quantize(x, cfg).dequantize()
    }

    fn fake_quantize_weights(&self, w: &Matrix, cfg: M2xfpConfig) -> Matrix {
        WeightTensor::quantize(w, cfg).dequantize()
    }
}

/// The float-oracle backend: dequantizes both operands and multiplies in
/// f64 ([`qgemm_reference`]) — every quantized value is a small dyadic
/// rational, so this is exact and matches the integer kernels bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceBackend;

impl ExecBackend for ReferenceBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Reference
    }

    fn prepare(&self, weights: PackedWeightTensor) -> PreparedWeights {
        GroupedBackend.prepare(weights)
    }

    fn forward(&self, x: &Matrix, w: &PreparedWeights) -> Result<Matrix, Error> {
        check_forward(x, w)?;
        let ExecForm::Grouped(grouped) = w.exec() else {
            return Err(form_error(self, w));
        };
        let xq = ActTensor::quantize(x, *w.config());
        Ok(qgemm_reference(&xq, grouped))
    }

    fn fake_quantize_activations(&self, x: &Matrix, cfg: M2xfpConfig) -> Matrix {
        GroupedBackend.fake_quantize_activations(x, cfg)
    }

    fn fake_quantize_weights(&self, w: &Matrix, cfg: M2xfpConfig) -> Matrix {
        // The float-codec Sg-EM search — the slow oracle the LUT search is
        // pinned against.
        WeightTensor::quantize_reference(w, cfg).dequantize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let t = (r * cols + c) as f32 + seed;
            (t * 0.713).sin() * 2.5 + (t * 0.137).cos() * 0.5
        })
    }

    #[test]
    fn backends_bit_identical_including_ragged() {
        let cfg = M2xfpConfig::default();
        for cols in [64usize, 96, 80, 41] {
            let w = PackedWeightTensor::quantize_parallel(&mat(7, cols, 9.0), cfg);
            let x = mat(5, cols, 1.0);
            let mut outs = Vec::new();
            for kind in BackendKind::ALL {
                let be = kind.backend();
                assert_eq!(be.kind(), kind);
                let prepared = be.prepare(w.clone());
                assert_eq!(prepared.shape(), (7, cols));
                outs.push(be.forward(&x, &prepared).unwrap());
            }
            for o in &outs[1..] {
                for (a, b) in outs[0].as_slice().iter().zip(o.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "cols={cols}");
                }
            }
        }
    }

    #[test]
    fn forward_scratch_matches_forward_bitwise() {
        // The scratch-reusing entry point (GEMV fast path at one row,
        // scratch-backed planed kernel above) is bit-identical to the
        // allocating forward on every backend, with one scratch reused
        // across shapes and backends.
        let cfg = M2xfpConfig::default();
        let w = PackedWeightTensor::quantize_parallel(&mat(7, 96, 9.0), cfg);
        let mut scratch = GemmScratch::new();
        for kind in BackendKind::ALL {
            let be = kind.backend();
            let prepared = be.prepare(w.clone());
            for rows in [1usize, 4] {
                let x = mat(rows, 96, 2.0);
                let a = be.forward(&x, &prepared).unwrap();
                let b = be.forward_scratch(&x, &prepared, &mut scratch).unwrap();
                assert_eq!(a, b, "{kind:?} rows={rows}");
            }
        }
    }

    #[test]
    fn scratch_reused_after_caught_panic_is_bit_identical() {
        // A serving engine isolates step panics with `catch_unwind` and
        // keeps stepping the surviving requests with the same scratch. The
        // scratch contract (see `GemmScratch`) is that a panic can only
        // leave *stale* data behind, never data a later call reads: a
        // forward through a scratch abandoned mid-use — with and without an
        // explicit `reset()` — must match a fresh-scratch forward bitwise.
        let cfg = M2xfpConfig::default();
        let w = PackedWeightTensor::quantize_parallel(&mat(6, 96, 3.0), cfg);
        let be = BackendKind::Packed.backend();
        let prepared = be.prepare(w);
        let x = mat(2, 96, 1.5);
        let want = be
            .forward_scratch(&x, &prepared, &mut GemmScratch::new())
            .unwrap();

        let mut scratch = GemmScratch::new();
        // Dirty the scratch with a different shape, then abandon a call
        // mid-flight via a panic unwinding across it.
        let other = mat(5, 96, 9.0);
        be.forward_scratch(&other, &prepared, &mut scratch).unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = be.forward_scratch(&other, &prepared, &mut scratch);
            panic!("injected fault");
        }));
        assert!(caught.is_err());
        let after_panic = be.forward_scratch(&x, &prepared, &mut scratch).unwrap();
        for (p, q) in want.as_slice().iter().zip(after_panic.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        scratch.reset();
        let after_reset = be.forward_scratch(&x, &prepared, &mut scratch).unwrap();
        for (p, q) in want.as_slice().iter().zip(after_reset.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn fake_quantize_identical_across_backends() {
        let cfg = M2xfpConfig::default();
        let x = mat(4, 100, 3.0);
        let base_a = BackendKind::Packed
            .backend()
            .fake_quantize_activations(&x, cfg);
        let base_w = BackendKind::Packed.backend().fake_quantize_weights(&x, cfg);
        for kind in [BackendKind::Grouped, BackendKind::Reference] {
            let be = kind.backend();
            assert_eq!(be.fake_quantize_activations(&x, cfg), base_a, "{kind:?}");
            assert_eq!(be.fake_quantize_weights(&x, cfg), base_w, "{kind:?}");
        }
    }

    #[test]
    fn forward_rejects_width_mismatch_and_foreign_form() {
        let cfg = M2xfpConfig::default();
        let w = PackedWeightTensor::quantize_parallel(&mat(4, 64, 0.0), cfg);
        let packed = BackendKind::Packed.backend().prepare(w.clone());
        let grouped = BackendKind::Grouped.backend().prepare(w);
        let bad = mat(2, 65, 0.0);
        assert!(matches!(
            BackendKind::Packed.backend().forward(&bad, &packed),
            Err(Error::WidthMismatch { .. })
        ));
        let x = mat(2, 64, 0.0);
        assert!(matches!(
            BackendKind::Packed.backend().forward(&x, &grouped),
            Err(Error::BackendMismatch { .. })
        ));
        assert!(matches!(
            BackendKind::Grouped.backend().forward(&x, &packed),
            Err(Error::BackendMismatch { .. })
        ));
    }

    #[test]
    fn append_rows_matches_full_reprepare_on_every_backend() {
        // Decode-on-append (the KV-cache growth path) must be bit-identical
        // to preparing the fully grown tensor from scratch, on every
        // backend, including ragged reduction dims.
        let cfg = M2xfpConfig::default();
        for cols in [64usize, 80] {
            let full = mat(9, cols, 5.0);
            let x = mat(3, cols, 2.0);
            for kind in BackendKind::ALL {
                let be = kind.backend();
                let mut grown =
                    be.prepare(PackedWeightTensor::quantize(&Matrix::zeros(0, cols), cfg));
                let mut row = 0usize;
                for chunk in [1usize, 4, 2, 2] {
                    let delta = Matrix::from_fn(chunk, cols, |r, c| full[(row + r, c)]);
                    be.append_rows(&mut grown, &delta).unwrap();
                    row += chunk;
                }
                let fresh = be.prepare(PackedWeightTensor::quantize_parallel(&full, cfg));
                assert_eq!(grown, fresh, "cols={cols} {kind:?}");
                let a = be.forward(&x, &grown).unwrap();
                let b = be.forward(&x, &fresh).unwrap();
                for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
                    assert_eq!(p.to_bits(), q.to_bits(), "cols={cols} {kind:?}");
                }
                assert!(be
                    .append_rows(&mut grown, &Matrix::zeros(1, cols + 1))
                    .is_err());
            }
        }
    }

    #[test]
    fn shared_prepared_weights_forward_identically_across_threads() {
        // Preparing once and forwarding from two threads through Arc-shared
        // clones is bit-identical to two independent preparations — the
        // contract the multi-session serving runtime builds on.
        let cfg = M2xfpConfig::default();
        let w = PackedWeightTensor::quantize_parallel(&mat(8, 96, 4.0), cfg);
        let be = BackendKind::Packed.backend();
        let shared = be.prepare(w.clone());
        let xs = [mat(3, 96, 1.0), mat(2, 96, 7.0)];
        let from_threads: Vec<Matrix> = std::thread::scope(|s| {
            let handles: Vec<_> = xs
                .iter()
                .map(|x| {
                    let mine = shared.clone(); // O(1): Arc, no re-decode
                    s.spawn(move || be.forward(x, &mine).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (x, got) in xs.iter().zip(&from_threads) {
            let independent = be.forward(x, &be.prepare(w.clone())).unwrap();
            for (p, q) in independent.as_slice().iter().zip(got.as_slice()) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn append_to_shared_handle_is_copy_on_write() {
        let cfg = M2xfpConfig::default();
        let be = BackendKind::Packed.backend();
        let base = be.prepare(PackedWeightTensor::quantize(&mat(2, 64, 0.0), cfg));
        let mut grown = base.clone();
        be.append_rows(&mut grown, &mat(3, 64, 8.0)).unwrap();
        // The shared original is untouched; the grown handle diverged.
        assert_eq!(base.shape(), (2, 64));
        assert_eq!(grown.shape(), (5, 64));
    }

    #[test]
    fn kinds_have_distinct_names() {
        let names: Vec<_> = BackendKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["packed", "grouped", "reference"]);
    }
}
