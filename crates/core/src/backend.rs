//! Execution backends — the engine abstraction behind every quantized
//! forward pass.
//!
//! A backend owns the *how* of running `y = Q_a(x) · Q_w(W)ᵀ`: which
//! activation encoder, which tensor representation and which GEMM kernel.
//! All three implementations consume the same canonical weight bits (a
//! [`PackedWeightTensor`] produced by the threaded integer-LUT Sg-EM
//! search) and are **bit-identical** on every input — the property tests
//! assert it — so callers pick a backend for speed or debuggability, never
//! for accuracy:
//!
//! * [`PackedBackend`] — the production hot path: branch-free packed
//!   activation encode, cached [`WeightPlane`] decode, cache-blocked
//!   threaded integer [`qgemm_packed_planed`].
//! * [`GroupedBackend`] — the legacy `Vec<Group>` pipeline, demoted to a
//!   readable reference implementation of the PE ([`qgemm`]).
//! * [`ReferenceBackend`] — the float oracle: dequantize both operands and
//!   multiply in f64 ([`qgemm_reference`]).
//!
//! Weights are prepared **once** per layer ([`ExecBackend::prepare`]) into
//! the backend's execution form ([`PreparedWeights`]) and reused across
//! forwards — the decode-once contract that `m2x_nn::linear` and
//! `m2x_nn::model` build on.
//!
//! ```
//! use m2x_tensor::Matrix;
//! use m2xfp::backend::BackendKind;
//! use m2xfp::format::PackedWeightTensor;
//! use m2xfp::M2xfpConfig;
//!
//! let cfg = M2xfpConfig::default();
//! let w = Matrix::from_fn(8, 64, |r, c| ((r * 64 + c) as f32 * 0.1).sin());
//! let x = Matrix::from_fn(4, 64, |r, c| ((r + c) as f32 * 0.2).cos());
//! let packed = PackedWeightTensor::quantize_parallel(&w, cfg);
//! let mut outs = Vec::new();
//! for kind in BackendKind::ALL {
//!     let be = kind.backend();
//!     let prepared = be.prepare(packed.clone());
//!     outs.push(be.forward(&x, &prepared)?);
//! }
//! assert_eq!(outs[0], outs[1]); // packed == grouped, bit for bit
//! assert_eq!(outs[1], outs[2]); // grouped == reference
//! # Ok::<(), m2xfp::Error>(())
//! ```

use crate::format::{ActTensor, PackedActTensor, PackedWeightTensor, WeightTensor};
use crate::gemm::{gemm_threads, qgemm, qgemm_packed_planed, qgemm_reference, WeightPlane};
use crate::{Error, M2xfpConfig};
use m2x_tensor::Matrix;

/// Selector for the three built-in execution backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Three-stream packed pipeline (production hot path).
    Packed,
    /// Legacy grouped `Vec<Group>` pipeline (readable PE reference).
    Grouped,
    /// Float-oracle pipeline (dequantize + f64 matmul).
    Reference,
}

impl BackendKind {
    /// All backends, production first.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Packed,
        BackendKind::Grouped,
        BackendKind::Reference,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Packed => "packed",
            BackendKind::Grouped => "grouped",
            BackendKind::Reference => "reference",
        }
    }

    /// The backend implementation for this kind (a static singleton —
    /// backends are stateless).
    pub fn backend(self) -> &'static dyn ExecBackend {
        match self {
            BackendKind::Packed => &PackedBackend,
            BackendKind::Grouped => &GroupedBackend,
            BackendKind::Reference => &ReferenceBackend,
        }
    }
}

/// A weight tensor prepared for repeated forwards under one backend: the
/// canonical packed streams plus the backend's decoded execution form
/// (fixed-point [`WeightPlane`] for the packed kernel, reconstructed
/// [`WeightTensor`] groups for the grouped/reference kernels).
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedWeights {
    packed: PackedWeightTensor,
    exec: ExecForm,
}

#[derive(Debug, Clone, PartialEq)]
enum ExecForm {
    Plane(WeightPlane),
    Grouped(WeightTensor),
}

impl PreparedWeights {
    /// Matrix shape `(rows, cols)` = `(out_features, in_features)`.
    pub fn shape(&self) -> (usize, usize) {
        self.packed.shape()
    }

    /// The configuration the weights were quantized with.
    pub fn config(&self) -> &M2xfpConfig {
        self.packed.config()
    }

    /// The canonical three-stream weight bits.
    pub fn packed(&self) -> &PackedWeightTensor {
        &self.packed
    }

    fn form_name(&self) -> &'static str {
        match self.exec {
            ExecForm::Plane(_) => "packed",
            ExecForm::Grouped(_) => "grouped",
        }
    }
}

/// An execution backend: prepares quantized weights into its preferred
/// form and runs the W4A4 forward pass (online activation quantization +
/// quantized GEMM) against them.
///
/// All implementations produce bit-identical outputs from the same weight
/// bits; see the [module docs](self) for the menu.
pub trait ExecBackend: Send + Sync + std::fmt::Debug {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Display name (mirrors [`BackendKind::name`]).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Decodes quantized weights into this backend's execution form. Do
    /// this once per layer (it is the O(N·K) decode) and reuse the result
    /// across forwards.
    fn prepare(&self, weights: PackedWeightTensor) -> PreparedWeights;

    /// W4A4 forward `y = Q_a(x) · Wᵀ` against prepared weights.
    ///
    /// # Errors
    ///
    /// Fails when `x.cols()` does not match the weights' reduction
    /// dimension, or when `w` was prepared into a different backend's form.
    fn forward(&self, x: &Matrix, w: &PreparedWeights) -> Result<Matrix, Error>;

    /// Fake-quantizes activations (quantize + dequantize) through this
    /// backend's online encoder — the form error measurement flows
    /// through. Bit-identical across backends.
    fn fake_quantize_activations(&self, x: &Matrix, cfg: M2xfpConfig) -> Matrix;

    /// Fake-quantizes weights (Sg-EM search + dequantize) through this
    /// backend's weight pipeline. Bit-identical across backends.
    fn fake_quantize_weights(&self, w: &Matrix, cfg: M2xfpConfig) -> Matrix;
}

fn check_forward(x: &Matrix, w: &PreparedWeights) -> Result<(), Error> {
    let (_, k) = w.shape();
    if x.cols() != k {
        return Err(Error::WidthMismatch {
            tensor: "prepared weights".to_string(),
            expected: k,
            got: x.cols(),
        });
    }
    Ok(())
}

fn form_error(backend: &dyn ExecBackend, w: &PreparedWeights) -> Error {
    Error::BackendMismatch {
        backend: backend.name(),
        prepared_by: w.form_name(),
    }
}

/// The production backend: packed three-stream tensors end to end.
#[derive(Debug, Clone, Copy, Default)]
pub struct PackedBackend;

impl ExecBackend for PackedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Packed
    }

    fn prepare(&self, weights: PackedWeightTensor) -> PreparedWeights {
        let plane = WeightPlane::decode(&weights);
        PreparedWeights {
            packed: weights,
            exec: ExecForm::Plane(plane),
        }
    }

    fn forward(&self, x: &Matrix, w: &PreparedWeights) -> Result<Matrix, Error> {
        check_forward(x, w)?;
        let ExecForm::Plane(plane) = &w.exec else {
            return Err(form_error(self, w));
        };
        let (n, k) = w.shape();
        // Auto-threaded online encode; decode-sized batches stay
        // single-threaded below the work threshold.
        let xq = PackedActTensor::quantize_parallel(x, *w.config());
        let threads = gemm_threads(x.rows(), k, n);
        Ok(qgemm_packed_planed(&xq, plane, threads))
    }

    fn fake_quantize_activations(&self, x: &Matrix, cfg: M2xfpConfig) -> Matrix {
        PackedActTensor::quantize_parallel(x, cfg).dequantize()
    }

    fn fake_quantize_weights(&self, w: &Matrix, cfg: M2xfpConfig) -> Matrix {
        PackedWeightTensor::quantize_parallel(w, cfg).dequantize()
    }
}

/// The legacy grouped backend: `Vec<Group>` tensors and the readable
/// per-group integer PE pipeline ([`qgemm`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupedBackend;

impl ExecBackend for GroupedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Grouped
    }

    fn prepare(&self, weights: PackedWeightTensor) -> PreparedWeights {
        let grouped = weights.to_grouped();
        PreparedWeights {
            packed: weights,
            exec: ExecForm::Grouped(grouped),
        }
    }

    fn forward(&self, x: &Matrix, w: &PreparedWeights) -> Result<Matrix, Error> {
        check_forward(x, w)?;
        let ExecForm::Grouped(grouped) = &w.exec else {
            return Err(form_error(self, w));
        };
        let xq = ActTensor::quantize(x, *w.config());
        Ok(qgemm(&xq, grouped))
    }

    fn fake_quantize_activations(&self, x: &Matrix, cfg: M2xfpConfig) -> Matrix {
        ActTensor::quantize(x, cfg).dequantize()
    }

    fn fake_quantize_weights(&self, w: &Matrix, cfg: M2xfpConfig) -> Matrix {
        WeightTensor::quantize(w, cfg).dequantize()
    }
}

/// The float-oracle backend: dequantizes both operands and multiplies in
/// f64 ([`qgemm_reference`]) — every quantized value is a small dyadic
/// rational, so this is exact and matches the integer kernels bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceBackend;

impl ExecBackend for ReferenceBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Reference
    }

    fn prepare(&self, weights: PackedWeightTensor) -> PreparedWeights {
        GroupedBackend.prepare(weights)
    }

    fn forward(&self, x: &Matrix, w: &PreparedWeights) -> Result<Matrix, Error> {
        check_forward(x, w)?;
        let ExecForm::Grouped(grouped) = &w.exec else {
            return Err(form_error(self, w));
        };
        let xq = ActTensor::quantize(x, *w.config());
        Ok(qgemm_reference(&xq, grouped))
    }

    fn fake_quantize_activations(&self, x: &Matrix, cfg: M2xfpConfig) -> Matrix {
        GroupedBackend.fake_quantize_activations(x, cfg)
    }

    fn fake_quantize_weights(&self, w: &Matrix, cfg: M2xfpConfig) -> Matrix {
        // The float-codec Sg-EM search — the slow oracle the LUT search is
        // pinned against.
        WeightTensor::quantize_reference(w, cfg).dequantize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let t = (r * cols + c) as f32 + seed;
            (t * 0.713).sin() * 2.5 + (t * 0.137).cos() * 0.5
        })
    }

    #[test]
    fn backends_bit_identical_including_ragged() {
        let cfg = M2xfpConfig::default();
        for cols in [64usize, 96, 80, 41] {
            let w = PackedWeightTensor::quantize_parallel(&mat(7, cols, 9.0), cfg);
            let x = mat(5, cols, 1.0);
            let mut outs = Vec::new();
            for kind in BackendKind::ALL {
                let be = kind.backend();
                assert_eq!(be.kind(), kind);
                let prepared = be.prepare(w.clone());
                assert_eq!(prepared.shape(), (7, cols));
                outs.push(be.forward(&x, &prepared).unwrap());
            }
            for o in &outs[1..] {
                for (a, b) in outs[0].as_slice().iter().zip(o.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "cols={cols}");
                }
            }
        }
    }

    #[test]
    fn fake_quantize_identical_across_backends() {
        let cfg = M2xfpConfig::default();
        let x = mat(4, 100, 3.0);
        let base_a = BackendKind::Packed
            .backend()
            .fake_quantize_activations(&x, cfg);
        let base_w = BackendKind::Packed.backend().fake_quantize_weights(&x, cfg);
        for kind in [BackendKind::Grouped, BackendKind::Reference] {
            let be = kind.backend();
            assert_eq!(be.fake_quantize_activations(&x, cfg), base_a, "{kind:?}");
            assert_eq!(be.fake_quantize_weights(&x, cfg), base_w, "{kind:?}");
        }
    }

    #[test]
    fn forward_rejects_width_mismatch_and_foreign_form() {
        let cfg = M2xfpConfig::default();
        let w = PackedWeightTensor::quantize_parallel(&mat(4, 64, 0.0), cfg);
        let packed = BackendKind::Packed.backend().prepare(w.clone());
        let grouped = BackendKind::Grouped.backend().prepare(w);
        let bad = mat(2, 65, 0.0);
        assert!(matches!(
            BackendKind::Packed.backend().forward(&bad, &packed),
            Err(Error::WidthMismatch { .. })
        ));
        let x = mat(2, 64, 0.0);
        assert!(matches!(
            BackendKind::Packed.backend().forward(&x, &grouped),
            Err(Error::BackendMismatch { .. })
        ));
        assert!(matches!(
            BackendKind::Grouped.backend().forward(&x, &packed),
            Err(Error::BackendMismatch { .. })
        ));
    }

    #[test]
    fn kinds_have_distinct_names() {
        let names: Vec<_> = BackendKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["packed", "grouped", "reference"]);
    }
}
