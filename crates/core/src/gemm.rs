//! Bit-exact quantized GEMM mirroring the M2XFP processing element
//! (paper §5.4, Fig. 11, Eq. 5).
//!
//! The PE pipeline is: FP4×FP4 products accumulated in a fixed-point
//! register, an auxiliary MAC adding the ΔX extra-mantissa correction for
//! each subgroup's top-1 activation, a shift-add subgroup scale refinement
//! `P·{1.0,1.25,1.5,1.75}`, and a final E8M0 dequantize-and-accumulate.
//!
//! Everything is exact integer arithmetic in units of 1/64 (activations are
//! multiples of 1/8 after FP6 refinement, weights multiples of 1/2, the
//! multiplier contributes a /4), so [`qgemm`], the packed cache-blocked
//! [`qgemm_packed`] and the floating-point reference [`qgemm_reference`]
//! all agree **exactly**, which the tests and property tests assert.
//!
//! Two implementations are provided:
//!
//! * [`qgemm`] — the readable per-group pipeline over the legacy grouped
//!   tensors, decoding through the integer LUTs of `m2x_formats::tables`
//!   (no float decode round-trip anywhere).
//! * [`qgemm_packed`] — the production path over the three-stream
//!   [`PackedActTensor`]/[`PackedWeightTensor`]: both operand streams are
//!   LUT-decoded **once** into flat fixed-point planes (one allocation per
//!   plane per call — zero per-group allocations), the weight metadata
//!   stream is walked bit-packed in place, and the integer kernel is tiled
//!   over output row chunks (scoped threads via
//!   [`m2x_tensor::matrix::par_row_chunks`]) × column tiles so a weight
//!   tile stays cache-hot across the row block.

use crate::format::{ActTensor, PackedActTensor, PackedWeightTensor, WeightTensor};
use m2x_formats::packing::two_bits_at;
use m2x_formats::tables::{top1_index, EXTRA_X8, FP4_X2, FP4_X8};
use m2x_tensor::matrix::par_row_chunks;
use m2x_tensor::Matrix;

/// Exact value of 1/64: the PE's fixed-point unit (1/8 activation × 1/2
/// weight × 1/4 multiplier).
const FIXED_POINT_UNIT: f64 = 1.0 / 64.0;

/// Column-tile width of the packed kernel: 64 weight rows of one group
/// (64 × 16 B codes) fit comfortably in L1 alongside the activation row.
const COL_TILE: usize = 64;

/// An activation group decoded to integers: values ×8, plus the shared
/// exponent.
#[derive(Debug, Clone)]
struct ActInts {
    x8: Vec<i64>,
    exp: i32,
}

/// A weight group decoded to integers: values ×2, per-subgroup multiplier
/// codes, plus the shared exponent.
#[derive(Debug, Clone)]
struct WeightInts {
    w2: Vec<i64>,
    mult: Vec<u8>,
    exp: i32,
}

/// Applies the per-subgroup top-1 metadata refinement to a decoded ×8
/// buffer. `codes` and `x8` cover one group.
fn refine_top1_x8<T: From<i16> + Copy>(
    codes: &[u8],
    meta_of: impl Fn(usize) -> u8,
    sg_size: usize,
    x8: &mut [T],
) {
    for (sg_idx, sg_codes) in codes.chunks(sg_size).enumerate() {
        let local = top1_index(sg_codes);
        let idx = sg_idx * sg_size + local;
        x8[idx] = T::from(EXTRA_X8[sg_codes[local] as usize][meta_of(sg_idx) as usize]);
    }
}

fn decode_act_ints(t: &ActTensor) -> Vec<ActInts> {
    let sg_size = t.config().subgroup_size;
    t.groups()
        .iter()
        .map(|g| {
            let mut x8: Vec<i64> = g.codes.iter().map(|&c| FP4_X8[c as usize] as i64).collect();
            refine_top1_x8(&g.codes, |sg| g.meta[sg], sg_size, &mut x8);
            ActInts {
                x8,
                exp: g.scale.exponent(),
            }
        })
        .collect()
}

fn decode_weight_ints(t: &WeightTensor) -> Vec<WeightInts> {
    t.groups()
        .iter()
        .map(|g| WeightInts {
            w2: g.codes.iter().map(|&c| FP4_X2[c as usize] as i64).collect(),
            mult: g.sg_em.clone(),
            exp: g.scale.exponent(),
        })
        .collect()
}

/// Quantized GEMM `Y[M,N] = X[M,K] · W^T[N,K]` through the exact PE
/// pipeline.
///
/// # Panics
///
/// Panics when the reduction dimensions or group geometries disagree.
pub fn qgemm(x: &ActTensor, w: &WeightTensor) -> Matrix {
    let (m, k) = x.shape();
    let (n, k2) = w.shape();
    assert_eq!(k, k2, "reduction dimension mismatch");
    assert_eq!(
        (x.config().group_size, x.config().subgroup_size),
        (w.config().group_size, w.config().subgroup_size),
        "group geometry mismatch"
    );
    let sg_size = x.config().subgroup_size;
    let gpr = x.groups_per_row();

    let xi = decode_act_ints(x);
    let wi = decode_weight_ints(w);

    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for g in 0..gpr {
                let xg = &xi[i * gpr + g];
                let wg = &wi[j * gpr + g];
                // Fixed-point accumulation in units of 1/64 (the PE's 32-bit
                // fixed-point register; i64 here so no overflow handling is
                // needed at any group size).
                let mut acc64: i64 = 0;
                for (s, (xs, ws)) in xg.x8.chunks(sg_size).zip(wg.w2.chunks(sg_size)).enumerate() {
                    let mut sacc: i64 = 0; // units of 1/16
                    for (&a, &b) in xs.iter().zip(ws) {
                        sacc += a * b;
                    }
                    // Subgroup scale refinement: ×(4 + code)/4, realized in
                    // hardware as shift-adds.
                    acc64 += sacc * (4 + wg.mult[s] as i64);
                }
                // Dequantize: exponent alignment only (E8M0 scales).
                acc += acc64 as f64 * ((xg.exp + wg.exp - 6) as f64).exp2();
            }
            out[(i, j)] = acc as f32;
        }
    }
    out
}

/// Minimum MAC count that justifies one additional GEMM worker thread.
/// Below ~8 MiMAC per extra worker the scoped-thread spawn/join overhead
/// and the cache interference of splitting a small output exceed the
/// parallel win (the recorded `BENCH_m2xfp.json` anomaly where the
/// threaded kernel lost to the pinned single-thread run), so small and
/// medium GEMMs stay single-threaded.
const GEMM_MACS_PER_THREAD: usize = 8 << 20;

/// Worker count [`qgemm_packed`] auto-selects for an `M×K×N` problem: one
/// thread per [`GEMM_MACS_PER_THREAD`] MACs, capped at the available cores
/// and at the output row count (row chunks are the parallel grain), never
/// below one.
pub fn gemm_threads(m: usize, k: usize, n: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |t| t.get());
    let macs = m.saturating_mul(k).saturating_mul(n);
    avail.min(macs / GEMM_MACS_PER_THREAD).min(m.max(1)).max(1)
}

/// Cache-blocked integer qGEMM over the packed three-stream tensors,
/// parallelized over output row chunks with scoped threads. Bit-exact
/// against [`qgemm`] and [`qgemm_reference`].
///
/// The worker count comes from [`gemm_threads`] (work-size threshold, so
/// small/medium GEMMs skip the spawn overhead entirely); see
/// [`qgemm_packed_threaded`] to pin it (1 reproduces the sequential order
/// exactly — but every count produces identical bits, since each output
/// element is computed by exactly one worker).
///
/// # Panics
///
/// Panics when the reduction dimensions or group geometries disagree.
pub fn qgemm_packed(x: &PackedActTensor, w: &PackedWeightTensor) -> Matrix {
    let (m, k) = x.shape();
    let n = w.shape().0;
    qgemm_packed_threaded(x, w, gemm_threads(m, k, n))
}

/// [`qgemm_packed`] with an explicit worker count.
///
/// # Panics
///
/// Panics when the reduction dimensions or group geometries disagree.
pub fn qgemm_packed_threaded(
    x: &PackedActTensor,
    w: &PackedWeightTensor,
    threads: usize,
) -> Matrix {
    qgemm_packed_planed(x, &WeightPlane::decode(w), threads)
}

/// A [`PackedWeightTensor`] LUT-decoded into the kernel's flat fixed-point
/// form: FP4 decode ×2 with the subgroup's ×(4 + mult) shift-add refinement
/// folded into every element (distributivity:
/// Σ_s (4+mult_s)·Σ_t x·w == Σ_t x·(w·(4+mult)) — exact in integers).
/// Folding eliminates the subgroup bookkeeping from the kernel, turning
/// each group into one flat i16×i16→i32 dot product the compiler can
/// vectorize. Max magnitude 12×7 = 84.
///
/// Weights are static across inference calls, so decode once (e.g. at layer
/// construction) and reuse via [`qgemm_packed_planed`] — [`qgemm_packed`]
/// re-decodes per call, which wastes an O(N·K) pass when the same weights
/// are multiplied repeatedly.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightPlane {
    n: usize,
    k: usize,
    group_size: usize,
    subgroup_size: usize,
    /// Value ×2 with the subgroup multiplier folded in; group-padded rows.
    w16: Vec<i16>,
    /// exp2(group exponent) per group.
    wscale: Vec<f64>,
}

impl WeightPlane {
    /// Decodes the packed streams (walked in place, one pass).
    pub fn decode(w: &PackedWeightTensor) -> Self {
        let (n, k) = w.shape();
        let gs = w.config().group_size;
        let sgs = w.config().subgroup_size;
        let spg = gs / sgs;
        let gpr = w.groups_per_row();
        let kp = gpr * gs;
        let mut w16 = vec![0i16; n * kp];
        let mut wscale = vec![0f64; n * gpr];
        let wmeta = w.meta();
        for (g, ws) in wscale.iter_mut().enumerate() {
            let len = w.group_len(g);
            let base = (g / gpr) * kp + (g % gpr) * gs;
            for (sg, chunk) in w16[base..base + len].chunks_mut(sgs).enumerate() {
                let mult = (4 + two_bits_at(wmeta, g * spg + sg)) as i16;
                for (i, out) in chunk.iter_mut().enumerate() {
                    *out = FP4_X2[w.code_at(g, sg * sgs + i) as usize] as i16 * mult;
                }
            }
            *ws = (w.group_scale(g).exponent() as f64).exp2();
        }
        WeightPlane {
            n,
            k,
            group_size: gs,
            subgroup_size: sgs,
            w16,
            wscale,
        }
    }

    /// Matrix shape `(rows, cols)` = `(N, K)` of the decoded weights.
    pub fn shape(&self) -> (usize, usize) {
        (self.n, self.k)
    }

    /// Decode-on-append: decodes `delta`'s rows and appends them below the
    /// existing rows — O(delta) work, not O(total). Rows decode
    /// independently (the plane is row-major with group-padded rows), so
    /// the grown plane is identical to [`Self::decode`] of the
    /// row-concatenated tensor; this is what makes a growing KV cache's
    /// score-GEMM operand O(1) per decode step instead of a full re-decode.
    ///
    /// # Panics
    ///
    /// Panics when `delta`'s width or group geometry differs.
    pub fn append(&mut self, delta: &PackedWeightTensor) {
        let d = WeightPlane::decode(delta);
        assert_eq!(self.k, d.k, "appended plane rows have a different width");
        assert_eq!(
            (self.group_size, self.subgroup_size),
            (d.group_size, d.subgroup_size),
            "appended plane rows use a different group geometry"
        );
        self.w16.extend_from_slice(&d.w16);
        self.wscale.extend_from_slice(&d.wscale);
        self.n += d.n;
    }
}

/// The packed qGEMM kernel over a pre-decoded [`WeightPlane`] — the form
/// inference layers call repeatedly without paying the weight decode on
/// every forward. Bit-exact against [`qgemm_reference`].
///
/// # Panics
///
/// Panics when the reduction dimensions or group geometries disagree.
pub fn qgemm_packed_planed(x: &PackedActTensor, w: &WeightPlane, threads: usize) -> Matrix {
    let (m, k) = x.shape();
    let (n, k2) = w.shape();
    assert_eq!(k, k2, "reduction dimension mismatch");
    assert_eq!(
        (x.config().group_size, x.config().subgroup_size),
        (w.group_size, w.subgroup_size),
        "group geometry mismatch"
    );
    let gs = x.config().group_size;
    let sgs = x.config().subgroup_size;
    let gpr = x.groups_per_row();
    let kp = gpr * gs; // group-padded K; pad elements decode to exact zero

    // Decode the activation stream once into a flat fixed-point plane (i16
    // LUT lookups, no float round-trip). Padding with zeros keeps ragged
    // trailing groups exact: zero codes contribute nothing to any product.
    let mut x8 = vec![0i16; m * kp];
    let mut xscale = vec![0f64; m * gpr];
    let mut code_buf = vec![0u8; gs];
    for (g, xs) in xscale.iter_mut().enumerate() {
        let len = x.group_len(g);
        let base = (g / gpr) * kp + (g % gpr) * gs;
        for (i, c) in code_buf[..len].iter_mut().enumerate() {
            *c = x.code_at(g, i);
            x8[base + i] = FP4_X8[*c as usize] as i16;
        }
        refine_top1_x8(
            &code_buf[..len],
            |sg| x.meta_at(g, sg),
            sgs,
            &mut x8[base..base + len],
        );
        *xs = (x.group_scale(g).exponent() as f64).exp2();
    }

    let w16 = &w.w16;
    let wscale = &w.wscale;
    let mut out = Matrix::zeros(m, n);
    par_row_chunks(out.as_mut_slice(), n.max(1), threads, |row0, chunk| {
        let rows_here = chunk.len() / n.max(1);
        // Column tiles keep a small set of weight rows L1/L2-hot across the
        // whole row block.
        for jt in (0..n).step_by(COL_TILE) {
            let jhi = (jt + COL_TILE).min(n);
            for li in 0..rows_here {
                let i = row0 + li;
                let xrow = &x8[i * kp..(i + 1) * kp];
                let xsr = &xscale[i * gpr..(i + 1) * gpr];
                let orow = &mut chunk[li * n..(li + 1) * n];
                for j in jt..jhi {
                    let wrow = &w16[j * kp..(j + 1) * kp];
                    let wsr = &wscale[j * gpr..(j + 1) * gpr];
                    let mut acc = 0.0f64;
                    for (g, (xg, wg)) in
                        xrow.chunks_exact(gs).zip(wrow.chunks_exact(gs)).enumerate()
                    {
                        // Fixed-point group sum in units of 1/64: per-lane
                        // products ≤ 60·84, group total ≤ 32·5040 — i32 is
                        // ample, and the i16×i16→i32 pattern vectorizes.
                        let mut acc64: i32 = 0;
                        for (&a, &b) in xg.iter().zip(wg) {
                            acc64 += a as i32 * b as i32;
                        }
                        // exp2(xe)·exp2(we)·2^-6 — all exact powers of two,
                        // bit-identical to exp2(xe + we - 6).
                        acc += acc64 as f64 * (xsr[g] * wsr[g] * FIXED_POINT_UNIT);
                    }
                    orow[j] = acc as f32;
                }
            }
        }
    });
    out
}

/// Floating-point reference: dequantizes both tensors and multiplies in
/// f64. All quantized values are small dyadic rationals, so this is exact
/// and must equal [`qgemm`] bit-for-bit after the final f32 rounding.
pub fn qgemm_reference(x: &ActTensor, w: &WeightTensor) -> Matrix {
    let xd = x.dequantize();
    let wd = w.dequantize();
    let (m, k) = x.shape();
    let n = w.shape().0;
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            let xr = xd.row(i);
            let wr = wd.row(j);
            for kk in 0..k {
                acc += xr[kk] as f64 * wr[kk] as f64;
            }
            out[(i, j)] = acc as f32;
        }
    }
    out
}

/// The Eq. 5 decomposition for one subgroup: `W×X' = W×X + W×ΔX`, where `X`
/// is the FP4 baseline (values ×8) and `ΔX` the extra-mantissa correction
/// applied at `top_idx`. Returns (baseline, correction) partial sums in
/// units of 1/16.
pub fn pe_subgroup_decomposed(
    x8_base: &[i64],
    w2: &[i64],
    top_idx: usize,
    delta8: i64,
) -> (i64, i64) {
    let base: i64 = x8_base.iter().zip(w2).map(|(&a, &b)| a * b).sum();
    let corr = delta8 * w2[top_idx];
    (base, corr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::M2xfpConfig;

    fn mat(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let t = (r * cols + c) as f32 + seed;
            (t * 0.713).sin() * 2.5 + (t * 0.137).cos() * 0.5
        })
    }

    #[test]
    fn fixed_point_matches_reference_exactly() {
        let cfg = M2xfpConfig::default();
        let x = ActTensor::quantize(&mat(5, 64, 0.0), cfg);
        let w = WeightTensor::quantize(&mat(7, 64, 9.0), cfg);
        let a = qgemm(&x, &w);
        let b = qgemm_reference(&x, &w);
        for i in 0..5 {
            for j in 0..7 {
                assert_eq!(
                    a[(i, j)].to_bits(),
                    b[(i, j)].to_bits(),
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn packed_matches_reference_exactly() {
        let cfg = M2xfpConfig::default();
        let xm = mat(5, 96, 0.0);
        let wm = mat(7, 96, 9.0);
        let want = qgemm_reference(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let xp = PackedActTensor::quantize(&xm, cfg);
        let wp = PackedWeightTensor::quantize(&wm, cfg);
        for threads in [1, 2, 4] {
            let got = qgemm_packed_threaded(&xp, &wp, threads);
            for i in 0..5 {
                for j in 0..7 {
                    assert_eq!(
                        got[(i, j)].to_bits(),
                        want[(i, j)].to_bits(),
                        "threads={threads} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_matches_reference_on_ragged_k() {
        // K = 80 = 32 + 32 + 16: exercises ragged trailing groups and the
        // zero-padded tail subgroups of the packed kernel.
        let cfg = M2xfpConfig::default();
        let xm = mat(3, 80, 1.0);
        let wm = mat(4, 80, 2.0);
        let want = qgemm_reference(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let got = qgemm_packed(
            &PackedActTensor::quantize(&xm, cfg),
            &PackedWeightTensor::quantize(&wm, cfg),
        );
        assert_eq!(got, want);
    }

    #[test]
    fn planed_kernel_matches_per_call_decode() {
        // A cached WeightPlane reused across calls gives the same bits as
        // the per-call decode path.
        let cfg = M2xfpConfig::default();
        let wm = mat(5, 80, 4.0);
        let wp = PackedWeightTensor::quantize(&wm, cfg);
        let plane = WeightPlane::decode(&wp);
        assert_eq!(plane.shape(), (5, 80));
        for seed in [0.0, 6.0] {
            let xp = PackedActTensor::quantize(&mat(3, 80, seed), cfg);
            assert_eq!(
                qgemm_packed_planed(&xp, &plane, 2),
                qgemm_packed_threaded(&xp, &wp, 2),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn appended_plane_matches_full_decode() {
        // Growing a plane row-chunk by row-chunk (the KV-cache pattern) is
        // identical to decoding the fully grown tensor, including ragged K.
        let cfg = M2xfpConfig::default();
        for cols in [64usize, 80] {
            let full = mat(7, cols, 3.0);
            let want = WeightPlane::decode(&PackedWeightTensor::quantize(&full, cfg));
            let mut grown =
                WeightPlane::decode(&PackedWeightTensor::quantize(&Matrix::zeros(0, cols), cfg));
            let mut row = 0usize;
            for chunk in [2usize, 1, 3, 1] {
                let delta = Matrix::from_fn(chunk, cols, |r, c| full[(row + r, c)]);
                grown.append(&PackedWeightTensor::quantize(&delta, cfg));
                row += chunk;
            }
            assert_eq!(grown, want, "cols={cols}");
            // And the kernel consumes the grown plane bit-identically.
            let xp = PackedActTensor::quantize(&mat(3, cols, 1.0), cfg);
            assert_eq!(
                qgemm_packed_planed(&xp, &grown, 1),
                qgemm_packed_planed(&xp, &want, 1),
            );
        }
    }

    #[test]
    fn quantized_gemm_close_to_full_precision() {
        let cfg = M2xfpConfig::default();
        let xm = mat(4, 128, 1.0);
        let wm = mat(6, 128, 2.0);
        let y_ref = xm.matmul(&wm.transpose());
        let y_q = qgemm(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let e = m2x_tensor::stats::nmse(y_ref.as_slice(), y_q.as_slice());
        assert!(e < 0.02, "relative output error too large: {e}");
        assert!(e > 0.0);
    }

    #[test]
    fn eq5_decomposition_is_exact() {
        // W×X' = W×X + W×ΔX for every subgroup of a quantized tensor.
        let cfg = M2xfpConfig::default();
        let xm = mat(3, 64, 3.0);
        let x = ActTensor::quantize(&xm, cfg);
        let sg_size = cfg.subgroup_size;
        for g in x.groups() {
            for (sg_idx, sg_codes) in g.codes.chunks(sg_size).enumerate() {
                let local = top1_index(sg_codes);
                let x8_base: Vec<i64> = sg_codes
                    .iter()
                    .map(|&c| FP4_X8[c as usize] as i64)
                    .collect();
                let refined8 = EXTRA_X8[sg_codes[local] as usize][g.meta[sg_idx] as usize] as i64;
                let mag = refined8.abs() as f32 / 8.0;
                let delta8 = refined8 - x8_base[local];
                // The refined magnitude is one of the bias-clamp candidates
                // for this FP4 magnitude (bit distance in [-1, +2]).
                let cands = m2x_formats::tables::fp6_candidates(sg_codes[local] & 7);
                assert!(cands.contains(&mag), "refined {mag} not in {cands:?}");
                // Any weight vector: decomposed == direct.
                let w2: Vec<i64> = (0..sg_codes.len() as i64).map(|i| (i % 25) - 12).collect();
                let mut x8_full = x8_base.clone();
                x8_full[local] = refined8;
                let direct: i64 = x8_full.iter().zip(&w2).map(|(&a, &b)| a * b).sum();
                let (base, corr) = pe_subgroup_decomposed(&x8_base, &w2, local, delta8);
                assert_eq!(base + corr, direct);
            }
        }
    }

    #[test]
    fn zero_inputs_give_zero_output() {
        let cfg = M2xfpConfig::default();
        let x = ActTensor::quantize(&Matrix::zeros(2, 32), cfg);
        let w = WeightTensor::quantize(&Matrix::zeros(3, 32), cfg);
        let y = qgemm(&x, &w);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
        let yp = qgemm_packed(
            &PackedActTensor::quantize(&Matrix::zeros(2, 32), cfg),
            &PackedWeightTensor::quantize(&Matrix::zeros(3, 32), cfg),
        );
        assert!(yp.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn multi_group_reduction() {
        // K = 3 groups; exercises the per-group exponent alignment.
        let cfg = M2xfpConfig::default();
        let xm = mat(2, 96, 5.0).map(|v| v * 100.0); // larger dynamic range
        let wm = mat(2, 96, 7.0).map(|v| v * 0.01);
        let a = qgemm(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let b = qgemm_reference(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        assert_eq!(a, b);
        let c = qgemm_packed(
            &PackedActTensor::quantize(&xm, cfg),
            &PackedWeightTensor::quantize(&wm, cfg),
        );
        assert_eq!(c, b);
    }
}
