//! Bit-exact quantized GEMM mirroring the M2XFP processing element
//! (paper §5.4, Fig. 11, Eq. 5).
//!
//! The PE pipeline is: FP4×FP4 products accumulated in a fixed-point
//! register, an auxiliary MAC adding the ΔX extra-mantissa correction for
//! each subgroup's top-1 activation, a shift-add subgroup scale refinement
//! `P·{1.0,1.25,1.5,1.75}`, and a final E8M0 dequantize-and-accumulate.
//!
//! Everything is exact integer arithmetic in units of 1/64 (activations are
//! multiples of 1/8 after FP6 refinement, weights multiples of 1/2, the
//! multiplier contributes a /4), so [`qgemm`] and the floating-point
//! reference [`qgemm_reference`] agree **exactly**, which the tests and
//! property tests assert.

use crate::format::{ActTensor, WeightTensor};
use m2x_formats::tables::{decode_extra_mantissa, top1_index};
use m2x_formats::fp4;
use m2x_tensor::Matrix;

/// An activation group decoded to integers: values ×8, plus the shared
/// exponent.
#[derive(Debug, Clone)]
struct ActInts {
    x8: Vec<i64>,
    exp: i32,
}

/// A weight group decoded to integers: values ×2, per-subgroup multiplier
/// codes, plus the shared exponent.
#[derive(Debug, Clone)]
struct WeightInts {
    w2: Vec<i64>,
    mult: Vec<u8>,
    exp: i32,
}

fn decode_act_ints(t: &ActTensor) -> Vec<ActInts> {
    let f4 = fp4();
    let sg_size = t.config().subgroup_size;
    t.groups()
        .iter()
        .map(|g| {
            let mut x8: Vec<i64> = g
                .codes
                .iter()
                .map(|&c| (f4.decode(c) * 8.0) as i64)
                .collect();
            for (sg_idx, sg_codes) in g.codes.chunks(sg_size).enumerate() {
                let local = top1_index(sg_codes);
                let idx = sg_idx * sg_size + local;
                let mag = decode_extra_mantissa(sg_codes[local] & 0x7, g.meta[sg_idx]);
                let sign = if sg_codes[local] & 0x8 != 0 { -1.0 } else { 1.0 };
                x8[idx] = (sign * mag * 8.0) as i64;
            }
            ActInts {
                x8,
                exp: g.scale.exponent(),
            }
        })
        .collect()
}

fn decode_weight_ints(t: &WeightTensor) -> Vec<WeightInts> {
    let f4 = fp4();
    t.groups()
        .iter()
        .map(|g| WeightInts {
            w2: g.codes.iter().map(|&c| (f4.decode(c) * 2.0) as i64).collect(),
            mult: g.sg_em.clone(),
            exp: g.scale.exponent(),
        })
        .collect()
}

/// Quantized GEMM `Y[M,N] = X[M,K] · W^T[N,K]` through the exact PE
/// pipeline.
///
/// # Panics
///
/// Panics when the reduction dimensions or group geometries disagree.
pub fn qgemm(x: &ActTensor, w: &WeightTensor) -> Matrix {
    let (m, k) = x.shape();
    let (n, k2) = w.shape();
    assert_eq!(k, k2, "reduction dimension mismatch");
    assert_eq!(
        (x.config().group_size, x.config().subgroup_size),
        (w.config().group_size, w.config().subgroup_size),
        "group geometry mismatch"
    );
    let sg_size = x.config().subgroup_size;
    let gpr = x.groups_per_row();

    let xi = decode_act_ints(x);
    let wi = decode_weight_ints(w);

    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for g in 0..gpr {
                let xg = &xi[i * gpr + g];
                let wg = &wi[j * gpr + g];
                // Fixed-point accumulation in units of 1/64 (the PE's 32-bit
                // fixed-point register; i64 here so no overflow handling is
                // needed at any group size).
                let mut acc64: i64 = 0;
                for (s, (xs, ws)) in xg.x8.chunks(sg_size).zip(wg.w2.chunks(sg_size)).enumerate() {
                    let mut sacc: i64 = 0; // units of 1/16
                    for (&a, &b) in xs.iter().zip(ws) {
                        sacc += a * b;
                    }
                    // Subgroup scale refinement: ×(4 + code)/4, realized in
                    // hardware as shift-adds.
                    acc64 += sacc * (4 + wg.mult[s] as i64);
                }
                // Dequantize: exponent alignment only (E8M0 scales).
                acc += acc64 as f64 * ((xg.exp + wg.exp - 6) as f64).exp2();
            }
            out[(i, j)] = acc as f32;
        }
    }
    out
}

/// Floating-point reference: dequantizes both tensors and multiplies in
/// f64. All quantized values are small dyadic rationals, so this is exact
/// and must equal [`qgemm`] bit-for-bit after the final f32 rounding.
pub fn qgemm_reference(x: &ActTensor, w: &WeightTensor) -> Matrix {
    let xd = x.dequantize();
    let wd = w.dequantize();
    let (m, k) = x.shape();
    let n = w.shape().0;
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            let xr = xd.row(i);
            let wr = wd.row(j);
            for kk in 0..k {
                acc += xr[kk] as f64 * wr[kk] as f64;
            }
            out[(i, j)] = acc as f32;
        }
    }
    out
}

/// The Eq. 5 decomposition for one subgroup: `W×X' = W×X + W×ΔX`, where `X`
/// is the FP4 baseline (values ×8) and `ΔX` the extra-mantissa correction
/// applied at `top_idx`. Returns (baseline, correction) partial sums in
/// units of 1/16.
pub fn pe_subgroup_decomposed(
    x8_base: &[i64],
    w2: &[i64],
    top_idx: usize,
    delta8: i64,
) -> (i64, i64) {
    let base: i64 = x8_base.iter().zip(w2).map(|(&a, &b)| a * b).sum();
    let corr = delta8 * w2[top_idx];
    (base, corr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::M2xfpConfig;

    fn mat(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let t = (r * cols + c) as f32 + seed;
            (t * 0.713).sin() * 2.5 + (t * 0.137).cos() * 0.5
        })
    }

    #[test]
    fn fixed_point_matches_reference_exactly() {
        let cfg = M2xfpConfig::default();
        let x = ActTensor::quantize(&mat(5, 64, 0.0), cfg);
        let w = WeightTensor::quantize(&mat(7, 64, 9.0), cfg);
        let a = qgemm(&x, &w);
        let b = qgemm_reference(&x, &w);
        for i in 0..5 {
            for j in 0..7 {
                assert_eq!(
                    a[(i, j)].to_bits(),
                    b[(i, j)].to_bits(),
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn quantized_gemm_close_to_full_precision() {
        let cfg = M2xfpConfig::default();
        let xm = mat(4, 128, 1.0);
        let wm = mat(6, 128, 2.0);
        let y_ref = xm.matmul(&wm.transpose());
        let y_q = qgemm(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let e = m2x_tensor::stats::nmse(y_ref.as_slice(), y_q.as_slice());
        assert!(e < 0.02, "relative output error too large: {e}");
        assert!(e > 0.0);
    }

    #[test]
    fn eq5_decomposition_is_exact() {
        // W×X' = W×X + W×ΔX for every subgroup of a quantized tensor.
        let cfg = M2xfpConfig::default();
        let xm = mat(3, 64, 3.0);
        let x = ActTensor::quantize(&xm, cfg);
        let f4 = m2x_formats::fp4();
        let sg_size = cfg.subgroup_size;
        for g in x.groups() {
            for (sg_idx, sg_codes) in g.codes.chunks(sg_size).enumerate() {
                let local = m2x_formats::tables::top1_index(sg_codes);
                let x8_base: Vec<i64> = sg_codes
                    .iter()
                    .map(|&c| (f4.decode(c) * 8.0) as i64)
                    .collect();
                let mag =
                    m2x_formats::tables::decode_extra_mantissa(sg_codes[local] & 7, g.meta[sg_idx]);
                let sign: i64 = if sg_codes[local] & 8 != 0 { -1 } else { 1 };
                let refined8 = sign * (mag * 8.0) as i64;
                let delta8 = refined8 - x8_base[local];
                // The refined magnitude is one of the bias-clamp candidates
                // for this FP4 magnitude (bit distance in [-1, +2]).
                let cands = m2x_formats::tables::fp6_candidates(sg_codes[local] & 7);
                assert!(cands.contains(&mag), "refined {mag} not in {cands:?}");
                // Any weight vector: decomposed == direct.
                let w2: Vec<i64> = (0..sg_codes.len() as i64).map(|i| (i % 25) - 12).collect();
                let mut x8_full = x8_base.clone();
                x8_full[local] = refined8;
                let direct: i64 = x8_full.iter().zip(&w2).map(|(&a, &b)| a * b).sum();
                let (base, corr) = pe_subgroup_decomposed(&x8_base, &w2, local, delta8);
                assert_eq!(base + corr, direct);
            }
        }
    }

    #[test]
    fn zero_inputs_give_zero_output() {
        let cfg = M2xfpConfig::default();
        let x = ActTensor::quantize(&Matrix::zeros(2, 32), cfg);
        let w = WeightTensor::quantize(&Matrix::zeros(3, 32), cfg);
        let y = qgemm(&x, &w);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn multi_group_reduction() {
        // K = 3 groups; exercises the per-group exponent alignment.
        let cfg = M2xfpConfig::default();
        let xm = mat(2, 96, 5.0).map(|v| v * 100.0); // larger dynamic range
        let wm = mat(2, 96, 7.0).map(|v| v * 0.01);
        let a = qgemm(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let b = qgemm_reference(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        assert_eq!(a, b);
    }
}
