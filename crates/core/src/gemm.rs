//! Bit-exact quantized GEMM mirroring the M2XFP processing element
//! (paper §5.4, Fig. 11, Eq. 5).
//!
//! The PE pipeline is: FP4×FP4 products accumulated in a fixed-point
//! register, an auxiliary MAC adding the ΔX extra-mantissa correction for
//! each subgroup's top-1 activation, a shift-add subgroup scale refinement
//! `P·{1.0,1.25,1.5,1.75}`, and a final E8M0 dequantize-and-accumulate.
//!
//! Everything is exact integer arithmetic in units of 1/64 (activations are
//! multiples of 1/8 after FP6 refinement, weights multiples of 1/2, the
//! multiplier contributes a /4), so [`qgemm`], the packed cache-blocked
//! [`qgemm_packed`] and the floating-point reference [`qgemm_reference`]
//! all agree **exactly**, which the tests and property tests assert.
//!
//! Several implementations are provided, all bit-identical:
//!
//! * [`qgemm`] — the readable per-group pipeline over the legacy grouped
//!   tensors, decoding through the integer LUTs of `m2x_formats::tables`
//!   (no float decode round-trip anywhere).
//! * [`qgemm_packed_planed`] — the production hot path over a pre-decoded
//!   [`WeightPlane`]: a register-blocked micro-kernel accumulating
//!   `NR` output columns per activation-row pass (scale products hoisted
//!   out of the group loop, i16×i16→i32 tiles the autovectorizer turns
//!   into wide multiply-adds), tiled over output row chunks (scoped
//!   threads via [`m2x_tensor::matrix::par_row_chunks`]) × `COL_TILE`
//!   column tiles so a weight tile stays cache-hot across the row block.
//! * [`qgemv_packed`] — the `m == 1` decode fast path serving hits once
//!   per projection per layer per step: no row-chunk threading, and the
//!   activation scratch lives in a caller-held reusable [`GemmScratch`]
//!   instead of three fresh `Vec`s per call — the decode hot loop is
//!   allocation-free after warm-up.
//! * [`qgemm_packed_inreg`] — the in-register nibble-decode variant: it
//!   consumes the [`PackedWeightTensor`] streams directly (nibble extract,
//!   LUT and subgroup-hoisted multiplier inside the dot product) without
//!   materializing a [`WeightPlane`], for cold weights and one-shot calls
//!   where an O(N·K) decode pass would dominate. [`qgemm_packed`] routes
//!   small-`m` one-shot calls here automatically.

use crate::format::{ActTensor, PackedActTensor, PackedWeightTensor, WeightTensor};
use m2x_formats::packing::two_bits_at;
use m2x_formats::tables::{top1_index, EXTRA_X8, FP4_X2, FP4_X8};
use m2x_tensor::matrix::par_row_chunks;
use m2x_tensor::Matrix;

/// Exact value of 1/64: the PE's fixed-point unit (1/8 activation × 1/2
/// weight × 1/4 multiplier).
const FIXED_POINT_UNIT: f64 = 1.0 / 64.0;

/// Column-tile width of the packed kernel: 64 weight rows of one group
/// (64 × 16 B codes) fit comfortably in L1 alongside the activation row.
const COL_TILE: usize = 64;

/// Output-column register block of the packed micro-kernel: [`NR`]
/// independent i32 dot-product chains (plus their f64 accumulators) stay
/// register-resident while one activation group is walked, so the decoded
/// activation values are reused [`NR`] times per load and the chains give
/// the core independent FMA work. 4 keeps `NR` f64 accumulators + `NR`
/// group-scale pointers comfortably inside the 16 architectural vector
/// registers of baseline x86-64 / aarch64.
const NR: usize = 4;

/// Activation-row register block: each decoded weight group loaded for the
/// [`NR`] column chains is reused across up to [`MR`] activation rows
/// before moving on, quartering the weight-stream traffic of batched
/// steps (the continuous-batching scheduler's decode batches are exactly
/// this shape: a handful of single-token rows stacked per projection).
/// `m == 1` GEMV calls degrade gracefully to a 1×[`NR`] block.
const MR: usize = 4;

/// Row-count ceiling below which [`qgemm_packed`] prefers the in-register
/// nibble-decode kernel over decoding a full [`WeightPlane`] first: the
/// plane decode is one extra O(N·K) pass over the weight streams, which
/// only amortizes once several activation rows reuse the decoded plane.
const INREG_MAX_ROWS: usize = 2;

/// An activation group decoded to integers: values ×8, plus the shared
/// exponent.
#[derive(Debug, Clone)]
struct ActInts {
    x8: Vec<i64>,
    exp: i32,
}

/// A weight group decoded to integers: values ×2, per-subgroup multiplier
/// codes, plus the shared exponent.
#[derive(Debug, Clone)]
struct WeightInts {
    w2: Vec<i64>,
    mult: Vec<u8>,
    exp: i32,
}

/// Applies the per-subgroup top-1 metadata refinement to a decoded ×8
/// buffer. `codes` and `x8` cover one group.
fn refine_top1_x8<T: From<i16> + Copy>(
    codes: &[u8],
    meta_of: impl Fn(usize) -> u8,
    sg_size: usize,
    x8: &mut [T],
) {
    for (sg_idx, sg_codes) in codes.chunks(sg_size).enumerate() {
        let local = top1_index(sg_codes);
        let idx = sg_idx * sg_size + local;
        x8[idx] = T::from(EXTRA_X8[sg_codes[local] as usize][meta_of(sg_idx) as usize]);
    }
}

fn decode_act_ints(t: &ActTensor) -> Vec<ActInts> {
    let sg_size = t.config().subgroup_size;
    t.groups()
        .iter()
        .map(|g| {
            let mut x8: Vec<i64> = g.codes.iter().map(|&c| FP4_X8[c as usize] as i64).collect();
            refine_top1_x8(&g.codes, |sg| g.meta[sg], sg_size, &mut x8);
            ActInts {
                x8,
                exp: g.scale.exponent(),
            }
        })
        .collect()
}

fn decode_weight_ints(t: &WeightTensor) -> Vec<WeightInts> {
    t.groups()
        .iter()
        .map(|g| WeightInts {
            w2: g.codes.iter().map(|&c| FP4_X2[c as usize] as i64).collect(),
            mult: g.sg_em.clone(),
            exp: g.scale.exponent(),
        })
        .collect()
}

/// Quantized GEMM `Y[M,N] = X[M,K] · W^T[N,K]` through the exact PE
/// pipeline.
///
/// # Panics
///
/// Panics when the reduction dimensions or group geometries disagree.
pub fn qgemm(x: &ActTensor, w: &WeightTensor) -> Matrix {
    let (m, k) = x.shape();
    let (n, k2) = w.shape();
    assert_eq!(k, k2, "reduction dimension mismatch");
    assert_eq!(
        (x.config().group_size, x.config().subgroup_size),
        (w.config().group_size, w.config().subgroup_size),
        "group geometry mismatch"
    );
    let sg_size = x.config().subgroup_size;
    let gpr = x.groups_per_row();

    let xi = decode_act_ints(x);
    let wi = decode_weight_ints(w);

    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for g in 0..gpr {
                let xg = &xi[i * gpr + g];
                let wg = &wi[j * gpr + g];
                // Fixed-point accumulation in units of 1/64 (the PE's 32-bit
                // fixed-point register; i64 here so no overflow handling is
                // needed at any group size).
                let mut acc64: i64 = 0;
                for (s, (xs, ws)) in xg.x8.chunks(sg_size).zip(wg.w2.chunks(sg_size)).enumerate() {
                    let mut sacc: i64 = 0; // units of 1/16
                    for (&a, &b) in xs.iter().zip(ws) {
                        sacc += a * b;
                    }
                    // Subgroup scale refinement: ×(4 + code)/4, realized in
                    // hardware as shift-adds.
                    acc64 += sacc * (4 + wg.mult[s] as i64);
                }
                // Dequantize: exponent alignment only (E8M0 scales).
                acc += acc64 as f64 * ((xg.exp + wg.exp - 6) as f64).exp2();
            }
            out[(i, j)] = acc as f32;
        }
    }
    out
}

/// Minimum MAC count that justifies one additional GEMM worker thread.
/// Below ~8 MiMAC per extra worker the scoped-thread spawn/join overhead
/// and the cache interference of splitting a small output exceed the
/// parallel win (the recorded `BENCH_m2xfp.json` anomaly where the
/// threaded kernel lost to the pinned single-thread run), so small and
/// medium GEMMs stay single-threaded.
const GEMM_MACS_PER_THREAD: usize = 8 << 20;

/// Worker count [`qgemm_packed`] auto-selects for an `M×K×N` problem: one
/// thread per `GEMM_MACS_PER_THREAD` MACs, capped at the available cores
/// and at the output row count (row chunks are the parallel grain), never
/// below one.
pub fn gemm_threads(m: usize, k: usize, n: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |t| t.get());
    let macs = m.saturating_mul(k).saturating_mul(n);
    avail.min(macs / GEMM_MACS_PER_THREAD).min(m.max(1)).max(1)
}

/// Cache-blocked integer qGEMM over the packed three-stream tensors,
/// parallelized over output row chunks with scoped threads. Bit-exact
/// against [`qgemm`] and [`qgemm_reference`].
///
/// The worker count comes from [`gemm_threads`] (work-size threshold, so
/// small/medium GEMMs skip the spawn overhead entirely); see
/// [`qgemm_packed_threaded`] to pin it (1 reproduces the sequential order
/// exactly — but every count produces identical bits, since each output
/// element is computed by exactly one worker).
///
/// # Panics
///
/// Panics when the reduction dimensions or group geometries disagree.
pub fn qgemm_packed(x: &PackedActTensor, w: &PackedWeightTensor) -> Matrix {
    let (m, k) = x.shape();
    let n = w.shape().0;
    qgemm_packed_threaded(x, w, gemm_threads(m, k, n))
}

/// [`qgemm_packed`] with an explicit worker count.
///
/// One-shot calls with at most `INREG_MAX_ROWS` activation rows take the
/// in-register nibble-decode kernel ([`qgemm_packed_inreg`]) — the weight
/// streams are walked once, in registers, instead of paying a full
/// [`WeightPlane`] decode pass that nothing reuses. Larger batches decode
/// the plane once and run the register-blocked kernel over it. Both paths
/// produce identical bits.
///
/// # Panics
///
/// Panics when the reduction dimensions or group geometries disagree.
pub fn qgemm_packed_threaded(
    x: &PackedActTensor,
    w: &PackedWeightTensor,
    threads: usize,
) -> Matrix {
    if x.shape().0 <= INREG_MAX_ROWS {
        qgemm_packed_inreg(x, w, threads)
    } else {
        qgemm_packed_planed(x, &WeightPlane::decode(w), threads)
    }
}

/// Reusable activation scratch of the packed kernels: the decoded
/// fixed-point activation plane (`x8`), its per-group scales (`xscale`)
/// and the group code staging buffer (`code_buf`).
///
/// The decode hot loop of a serving session calls a GEMM once per
/// projection per layer per step; holding one `GemmScratch` per session
/// (or per engine thread) and passing it to [`qgemv_packed`] /
/// [`qgemm_packed_planed_scratch`] makes those calls allocation-free
/// after warm-up — the buffers are cleared and refilled in place, never
/// reallocated once they have grown to the largest projection width.
///
/// **Panic safety:** the scratch carries no semantic state between calls —
/// every kernel clears and fully rewrites the region it reads before use.
/// A scratch abandoned mid-call by a panic (e.g. one caught by a serving
/// engine's `catch_unwind` isolation) can therefore be reused as-is and
/// still computes bit-identical results; [`GemmScratch::reset`] merely
/// discards the stale contents eagerly.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    x8: Vec<i16>,
    xscale: Vec<f64>,
    code_buf: Vec<u8>,
}

impl GemmScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the buffers (capacity kept). Correctness never requires
    /// this — see the type docs — but a recovery path that wants to drop
    /// data a caught panic left behind can call it cheaply.
    pub fn reset(&mut self) {
        self.x8.clear();
        self.xscale.clear();
        self.code_buf.clear();
    }
}

/// Decodes the activation stream into the scratch's flat fixed-point plane
/// (i16 LUT lookups, no float round-trip). Padding with zeros keeps ragged
/// trailing groups exact: zero codes contribute nothing to any product.
/// Returns the group-padded row width `kp`.
// m2x-lint: hot
fn decode_act_plane(x: &PackedActTensor, s: &mut GemmScratch) -> usize {
    let gs = x.config().group_size;
    let sgs = x.config().subgroup_size;
    let gpr = x.groups_per_row();
    let kp = gpr * gs;
    let m = x.shape().0;
    s.x8.clear();
    s.x8.resize(m * kp, 0);
    s.xscale.clear();
    s.xscale.resize(m * gpr, 0.0);
    s.code_buf.clear();
    s.code_buf.resize(gs, 0);
    let (x8, code_buf) = (&mut s.x8, &mut s.code_buf);
    for (g, xs) in s.xscale.iter_mut().enumerate() {
        let len = x.group_len(g);
        let base = (g / gpr) * kp + (g % gpr) * gs;
        for (i, c) in code_buf[..len].iter_mut().enumerate() {
            *c = x.code_at(g, i);
            x8[base + i] = FP4_X8[*c as usize] as i16;
        }
        refine_top1_x8(
            &code_buf[..len],
            |sg| x.meta_at(g, sg),
            sgs,
            &mut x8[base..base + len],
        );
        *xs = (x.group_scale(g).exponent() as f64).exp2();
    }
    kp
}

/// One i16×i16→i32 dot product over a group — the pattern the
/// autovectorizer turns into widening multiply-adds. Per-lane products are
/// ≤ 60·84 and a group total ≤ 32·5040, so i32 is ample. The production
/// group size (32) takes a fixed-length path: known trip counts compile to
/// straight-line `pmaddwd`-style chains with no loop or bounds checks.
#[inline(always)]
fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
    if let (Ok(a32), Ok(b32)) = (<&[i16; 32]>::try_from(a), <&[i16; 32]>::try_from(b)) {
        let mut s = 0i32;
        for i in 0..32 {
            s += a32[i] as i32 * b32[i] as i32;
        }
        return s;
    }
    let mut s = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        s += x as i32 * y as i32;
    }
    s
}

/// The register-blocked micro-kernel over one chunk of output rows:
/// `COL_TILE` column tiles keep a small set of decoded weight rows
/// L1/L2-hot across the row block, and within a tile an [`MR`]×[`NR`]
/// register block is accumulated per pass — the group loop walks each
/// decoded weight group once while [`MR`]·[`NR`] independent
/// i32-dot/f64-accumulate chains consume it (each weight group reused
/// across [`MR`] activation rows, each activation group across [`NR`]
/// columns), with the activation scale × fixed-point-unit products
/// hoisted out of the per-column work.
///
/// Every output element still accumulates its groups in ascending order
/// with the exact same f64 operand values as the scalar loop (the group
/// sums are exact integers, the scale products exact powers of two), so
/// any blocking order is bit-identical.
#[allow(clippy::too_many_arguments)]
// m2x-lint: hot
fn kernel_row_chunk(
    row0: usize,
    chunk: &mut [f32],
    x8: &[i16],
    xscale: &[f64],
    w16: &[i16],
    wscale: &[f64],
    n: usize,
    gs: usize,
    kp: usize,
    gpr: usize,
) {
    let rows_here = chunk.len() / n;
    for jt in (0..n).step_by(COL_TILE) {
        let jhi = (jt + COL_TILE).min(n);
        let mut li0 = 0;
        while li0 < rows_here {
            let mr = MR.min(rows_here - li0);
            // Slice lookups clamped so the fixed-size arrays fill even on
            // a short row block; entries past `mr` are never read.
            let xrows: [&[i16]; MR] = std::array::from_fn(|mi| {
                let i = row0 + li0 + mi.min(mr - 1);
                &x8[i * kp..(i + 1) * kp]
            });
            let xsrs: [&[f64]; MR] = std::array::from_fn(|mi| {
                let i = row0 + li0 + mi.min(mr - 1);
                &xscale[i * gpr..(i + 1) * gpr]
            });
            let mut j = jt;
            while j + NR <= jhi {
                let wrows: [&[i16]; NR] =
                    std::array::from_fn(|r| &w16[(j + r) * kp..(j + r + 1) * kp]);
                let wsrs: [&[f64]; NR] =
                    std::array::from_fn(|r| &wscale[(j + r) * gpr..(j + r + 1) * gpr]);
                let mut acc = [[0.0f64; NR]; MR];
                for g in 0..gpr {
                    let gb = g * gs;
                    // exp2(xe)·2^-6·exp2(we) — all exact powers of two,
                    // bit-identical to exp2(xe + we - 6) in any order.
                    let mut xs = [0.0f64; MR];
                    for (mi, x) in xs.iter_mut().take(mr).enumerate() {
                        *x = xsrs[mi][g] * FIXED_POINT_UNIT;
                    }
                    for (r, (wrow, wsr)) in wrows.iter().zip(&wsrs).enumerate() {
                        let wg = &wrow[gb..gb + gs];
                        let ws = wsr[g];
                        for (mi, arow) in acc.iter_mut().take(mr).enumerate() {
                            arow[r] += dot_i16(&xrows[mi][gb..gb + gs], wg) as f64 * (xs[mi] * ws);
                        }
                    }
                }
                for (mi, arow) in acc.iter().take(mr).enumerate() {
                    let orow = &mut chunk[(li0 + mi) * n..(li0 + mi + 1) * n];
                    for (r, &a) in arow.iter().enumerate() {
                        orow[j + r] = a as f32;
                    }
                }
                j += NR;
            }
            // Tail columns of the tile: plain single-column loop, same
            // per-element group order.
            while j < jhi {
                let wrow = &w16[j * kp..(j + 1) * kp];
                let wsr = &wscale[j * gpr..(j + 1) * gpr];
                for mi in 0..mr {
                    let (xrow, xsr) = (xrows[mi], xsrs[mi]);
                    let mut acc = 0.0f64;
                    for (g, xg) in xrow.chunks_exact(gs).enumerate() {
                        acc += dot_i16(xg, &wrow[g * gs..(g + 1) * gs]) as f64
                            * (xsr[g] * FIXED_POINT_UNIT * wsr[g]);
                    }
                    chunk[(li0 + mi) * n + j] = acc as f32;
                }
                j += 1;
            }
            li0 += mr;
        }
    }
}

/// A [`PackedWeightTensor`] LUT-decoded into the kernel's flat fixed-point
/// form: FP4 decode ×2 with the subgroup's ×(4 + mult) shift-add refinement
/// folded into every element (distributivity:
/// Σ_s (4+mult_s)·Σ_t x·w == Σ_t x·(w·(4+mult)) — exact in integers).
/// Folding eliminates the subgroup bookkeeping from the kernel, turning
/// each group into one flat i16×i16→i32 dot product the compiler can
/// vectorize. Max magnitude 12×7 = 84.
///
/// Weights are static across inference calls, so decode once (e.g. at layer
/// construction) and reuse via [`qgemm_packed_planed`] — [`qgemm_packed`]
/// re-decodes per call, which wastes an O(N·K) pass when the same weights
/// are multiplied repeatedly.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightPlane {
    n: usize,
    k: usize,
    group_size: usize,
    subgroup_size: usize,
    /// Value ×2 with the subgroup multiplier folded in; group-padded rows.
    w16: Vec<i16>,
    /// exp2(group exponent) per group.
    wscale: Vec<f64>,
}

/// Decodes `w`'s rows straight into the tails of `w16`/`wscale` (the
/// fold-the-multiplier LUT decode of [`WeightPlane`]): the shared body of
/// [`WeightPlane::decode`] and [`WeightPlane::append`]. Rows decode
/// independently and the plane is row-major with group-padded rows, so
/// appending decoded rows below existing ones is bit-identical to decoding
/// the row-concatenated tensor — and no temporary plane is materialized
/// (the vectors grow amortized, the decode itself writes in place).
fn decode_weight_rows_into(w: &PackedWeightTensor, w16: &mut Vec<i16>, wscale: &mut Vec<f64>) {
    let gs = w.config().group_size;
    let sgs = w.config().subgroup_size;
    let spg = gs / sgs;
    let gpr = w.groups_per_row();
    let kp = gpr * gs;
    let n = w.shape().0;
    let base0 = w16.len();
    let gbase0 = wscale.len();
    w16.resize(base0 + n * kp, 0);
    wscale.resize(gbase0 + n * gpr, 0.0);
    let wmeta = w.meta();
    for (g, ws) in wscale[gbase0..].iter_mut().enumerate() {
        let len = w.group_len(g);
        let base = base0 + (g / gpr) * kp + (g % gpr) * gs;
        for (sg, chunk) in w16[base..base + len].chunks_mut(sgs).enumerate() {
            let mult = (4 + two_bits_at(wmeta, g * spg + sg)) as i16;
            for (i, out) in chunk.iter_mut().enumerate() {
                *out = FP4_X2[w.code_at(g, sg * sgs + i) as usize] as i16 * mult;
            }
        }
        *ws = (w.group_scale(g).exponent() as f64).exp2();
    }
}

impl WeightPlane {
    /// Decodes the packed streams (walked in place, one pass).
    pub fn decode(w: &PackedWeightTensor) -> Self {
        let (n, k) = w.shape();
        let mut w16 = Vec::new();
        let mut wscale = Vec::new();
        decode_weight_rows_into(w, &mut w16, &mut wscale);
        WeightPlane {
            n,
            k,
            group_size: w.config().group_size,
            subgroup_size: w.config().subgroup_size,
            w16,
            wscale,
        }
    }

    /// Matrix shape `(rows, cols)` = `(N, K)` of the decoded weights.
    pub fn shape(&self) -> (usize, usize) {
        (self.n, self.k)
    }

    /// Decode-on-append: decodes `delta`'s rows **directly into the tails**
    /// of the existing `w16`/`wscale` vectors — O(delta) work, not
    /// O(total), and no temporary plane per call (the KV cache calls this
    /// once per head per decode step; materializing and copying a scratch
    /// `WeightPlane` here was pure hot-loop allocation churn). Rows decode
    /// independently (the plane is row-major with group-padded rows), so
    /// the grown plane is identical to [`Self::decode`] of the
    /// row-concatenated tensor, which the tests pin bit for bit.
    ///
    /// # Panics
    ///
    /// Panics when `delta`'s width or group geometry differs.
    pub fn append(&mut self, delta: &PackedWeightTensor) {
        assert_eq!(
            self.k,
            delta.shape().1,
            "appended plane rows have a different width"
        );
        assert_eq!(
            (self.group_size, self.subgroup_size),
            (delta.config().group_size, delta.config().subgroup_size),
            "appended plane rows use a different group geometry"
        );
        decode_weight_rows_into(delta, &mut self.w16, &mut self.wscale);
        self.n += delta.shape().0;
    }

    /// Drops all rows while keeping the decoded-plane allocations — the KV
    /// page-frame recycling path. The cleared plane equals
    /// [`Self::decode`] of an empty tensor with the same geometry
    /// (equality ignores capacity).
    pub fn clear_rows(&mut self) {
        self.w16.clear();
        self.wscale.clear();
        self.n = 0;
    }

    /// Heap bytes of the decoded execution planes (`w16` + `wscale`) —
    /// the working state a packed-bytes KV accounting misses.
    pub fn decoded_bytes(&self) -> usize {
        self.w16.len() * std::mem::size_of::<i16>() + self.wscale.len() * std::mem::size_of::<f64>()
    }
}

/// The packed qGEMM kernel over a pre-decoded [`WeightPlane`] — the form
/// inference layers call repeatedly without paying the weight decode on
/// every forward. Bit-exact against [`qgemm_reference`].
///
/// Allocates a fresh activation scratch per call; hot loops should hold a
/// [`GemmScratch`] and call [`qgemm_packed_planed_scratch`] (or
/// [`qgemv_packed`] for the single-row decode shape) instead.
///
/// # Panics
///
/// Panics when the reduction dimensions or group geometries disagree.
pub fn qgemm_packed_planed(x: &PackedActTensor, w: &WeightPlane, threads: usize) -> Matrix {
    qgemm_packed_planed_scratch(x, w, threads, &mut GemmScratch::default())
}

fn check_planed_geometry(x: &PackedActTensor, w: &WeightPlane) {
    assert_eq!(x.shape().1, w.k, "reduction dimension mismatch");
    assert_eq!(
        (x.config().group_size, x.config().subgroup_size),
        (w.group_size, w.subgroup_size),
        "group geometry mismatch"
    );
}

/// [`qgemm_packed_planed`] with a caller-held reusable [`GemmScratch`]:
/// after the first call at a given shape the activation decode reuses the
/// scratch's buffers in place — no per-call allocations. Zero-row and
/// zero-column inputs return the corresponding empty matrix.
///
/// # Panics
///
/// Panics when the reduction dimensions or group geometries disagree.
// m2x-lint: hot
pub fn qgemm_packed_planed_scratch(
    x: &PackedActTensor,
    w: &WeightPlane,
    threads: usize,
    scratch: &mut GemmScratch,
) -> Matrix {
    check_planed_geometry(x, w);
    let m = x.shape().0;
    let n = w.n;
    if m == 0 || n == 0 {
        return Matrix::zeros(m, n);
    }
    let gs = x.config().group_size;
    let gpr = x.groups_per_row();
    let kp = decode_act_plane(x, scratch);
    let (x8, xscale) = (&scratch.x8[..], &scratch.xscale[..]);
    let (w16, wscale) = (&w.w16[..], &w.wscale[..]);
    let mut out = Matrix::zeros(m, n);
    par_row_chunks(out.as_mut_slice(), n, threads, |row0, chunk| {
        kernel_row_chunk(row0, chunk, x8, xscale, w16, wscale, n, gs, kp, gpr);
    });
    out
}

/// The `m == 1` decode fast path: one activation row against a pre-decoded
/// [`WeightPlane`], register-blocked like [`qgemm_packed_planed`] but with
/// no row-chunk threading overhead at all — serving hits this shape once
/// per projection per layer per decode step, where a scoped-thread
/// spawn/join would dwarf the kernel. The activation scratch lives in the
/// caller's [`GemmScratch`], so the call is allocation-free after warm-up
/// (the `1 × n` output aside). Bit-exact against [`qgemm_reference`].
///
/// # Panics
///
/// Panics when `x` has more than one row, or when the reduction dimensions
/// or group geometries disagree.
// m2x-lint: hot
pub fn qgemv_packed(x: &PackedActTensor, w: &WeightPlane, scratch: &mut GemmScratch) -> Matrix {
    // m2x-lint: allow(alloc) the 1 × n output itself; qgemv_packed_into is the zero-alloc surface
    let mut out = Matrix::zeros(1, w.n);
    qgemv_packed_into(x, w, scratch, out.as_mut_slice());
    out
}

/// [`qgemv_packed`] writing into a caller-held output row: **zero heap
/// allocations** once `scratch` is warm at this shape, which
/// `tests/alloc_gate.rs` pins with a counting global allocator. Bit-exact
/// against [`qgemv_packed`] (same kernel, same scratch decode, same
/// accumulation order).
///
/// # Panics
///
/// Panics when `x` has more than one row, when `out.len() != w.n`, or when
/// the reduction dimensions or group geometries disagree.
// m2x-lint: hot
pub fn qgemv_packed_into(
    x: &PackedActTensor,
    w: &WeightPlane,
    scratch: &mut GemmScratch,
    out: &mut [f32],
) {
    assert_eq!(x.shape().0, 1, "qgemv_packed expects exactly one row");
    assert_eq!(out.len(), w.n, "output row length mismatch");
    check_planed_geometry(x, w);
    if w.n == 0 {
        return;
    }
    let gs = x.config().group_size;
    let gpr = x.groups_per_row();
    let kp = decode_act_plane(x, scratch);
    let (x8, xscale) = (&scratch.x8[..], &scratch.xscale[..]);
    let (w16, wscale) = (&w.w16[..], &w.wscale[..]);
    // One row, run inline — the same single-chunk call `par_row_chunks`
    // makes at `threads <= 1`, so the bits match the threaded kernels.
    kernel_row_chunk(0, out, x8, xscale, w16, wscale, w.n, gs, kp, gpr);
}

/// The in-register nibble-decode kernel: consumes the
/// [`PackedWeightTensor`] streams **directly** — FP4 nibbles are extracted
/// and LUT-decoded inside the dot product, with the subgroup's `4 + mult`
/// shift-add refinement hoisted to one integer multiply per subgroup and
/// the group scale to one multiply per group — so no [`WeightPlane`] is
/// ever materialized. The exact-integer subgroup regrouping
/// `Σ_s (4+mult_s)·Σ_t x·w == Σ_t x·(w·(4+mult))` makes it bit-identical
/// to the planed kernel and [`qgemm_reference`].
///
/// This is the right kernel for cold weights and one-shot calls (the
/// per-call [`qgemm_packed`] route takes it for decode-sized batches): it
/// walks the weight streams once per activation row, where the planed
/// route would pay a full O(N·K) decode pass first. For weights reused
/// across many rows or calls, decode a plane once instead.
///
/// # Panics
///
/// Panics when the reduction dimensions or group geometries disagree.
// m2x-lint: hot
pub fn qgemm_packed_inreg(x: &PackedActTensor, w: &PackedWeightTensor, threads: usize) -> Matrix {
    let (m, k) = x.shape();
    let (n, k2) = w.shape();
    assert_eq!(k, k2, "reduction dimension mismatch");
    assert_eq!(
        (x.config().group_size, x.config().subgroup_size),
        (w.config().group_size, w.config().subgroup_size),
        "group geometry mismatch"
    );
    if m == 0 || n == 0 {
        return Matrix::zeros(m, n);
    }
    let gs = x.config().group_size;
    let sgs = x.config().subgroup_size;
    let spg = gs / sgs;
    let cpg = gs.div_ceil(2);
    let gpr = x.groups_per_row();
    let mut scratch = GemmScratch::default();
    let kp = decode_act_plane(x, &mut scratch);
    let (x8, xscale) = (&scratch.x8[..], &scratch.xscale[..]);
    let (codes, scales, meta) = (w.codes(), w.scales(), w.meta());

    // One output element: weight row `j` against a decoded activation row,
    // groups ascending — the same per-element accumulation order and f64
    // operand values as every other kernel.
    let element = |xrow: &[i16], xsr: &[f64], j: usize| -> f32 {
        let mut acc = 0.0f64;
        for g in 0..gpr {
            let wg = j * gpr + g; // weight group index
            let gb = &codes[wg * cpg..(wg + 1) * cpg];
            let mut gsum: i32 = 0;
            for sg in 0..spg {
                // Slack subgroups of a ragged trailing group hold zero
                // codes and zero metadata, so they contribute nothing.
                let mult = (4 + two_bits_at(meta, wg * spg + sg)) as i32;
                let xsg = &xrow[g * gs + sg * sgs..g * gs + (sg + 1) * sgs];
                let mut ss: i32 = 0;
                if sgs % 2 == 0 {
                    let cb = &gb[sg * sgs / 2..(sg + 1) * sgs / 2];
                    for (pair, &b) in xsg.chunks_exact(2).zip(cb) {
                        ss += pair[0] as i32 * FP4_X2[(b & 0xF) as usize] as i32;
                        ss += pair[1] as i32 * FP4_X2[(b >> 4) as usize] as i32;
                    }
                } else {
                    for (e, &xv) in xsg.iter().enumerate() {
                        let c = m2x_formats::packing::nibble_at(gb, sg * sgs + e);
                        ss += xv as i32 * FP4_X2[c as usize] as i32;
                    }
                }
                gsum += ss * mult;
            }
            let ws = (m2x_formats::E8M0::from_bits(scales[wg]).exponent() as f64).exp2();
            acc += gsum as f64 * (xsr[g] * FIXED_POINT_UNIT * ws);
        }
        acc as f32
    };

    let mut out = Matrix::zeros(m, n);
    if m == 1 {
        // Single activation row: parallelize over output columns (each
        // element is one cell of the only output row).
        let xrow = &x8[..kp];
        let xsr = &xscale[..gpr];
        par_row_chunks(out.as_mut_slice(), 1, threads, |j0, chunk| {
            for (dj, o) in chunk.iter_mut().enumerate() {
                *o = element(xrow, xsr, j0 + dj);
            }
        });
    } else {
        par_row_chunks(out.as_mut_slice(), n, threads, |row0, chunk| {
            for (li, orow) in chunk.chunks_mut(n).enumerate() {
                let i = row0 + li;
                let xrow = &x8[i * kp..(i + 1) * kp];
                let xsr = &xscale[i * gpr..(i + 1) * gpr];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = element(xrow, xsr, j);
                }
            }
        });
    }
    out
}

/// Floating-point reference: dequantizes both tensors and multiplies in
/// f64. All quantized values are small dyadic rationals, so this is exact
/// and must equal [`qgemm`] bit-for-bit after the final f32 rounding.
pub fn qgemm_reference(x: &ActTensor, w: &WeightTensor) -> Matrix {
    let xd = x.dequantize();
    let wd = w.dequantize();
    let (m, k) = x.shape();
    let n = w.shape().0;
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            let xr = xd.row(i);
            let wr = wd.row(j);
            for kk in 0..k {
                acc += xr[kk] as f64 * wr[kk] as f64;
            }
            out[(i, j)] = acc as f32;
        }
    }
    out
}

/// The Eq. 5 decomposition for one subgroup: `W×X' = W×X + W×ΔX`, where `X`
/// is the FP4 baseline (values ×8) and `ΔX` the extra-mantissa correction
/// applied at `top_idx`. Returns (baseline, correction) partial sums in
/// units of 1/16.
pub fn pe_subgroup_decomposed(
    x8_base: &[i64],
    w2: &[i64],
    top_idx: usize,
    delta8: i64,
) -> (i64, i64) {
    let base: i64 = x8_base.iter().zip(w2).map(|(&a, &b)| a * b).sum();
    let corr = delta8 * w2[top_idx];
    (base, corr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::M2xfpConfig;

    fn mat(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let t = (r * cols + c) as f32 + seed;
            (t * 0.713).sin() * 2.5 + (t * 0.137).cos() * 0.5
        })
    }

    #[test]
    fn fixed_point_matches_reference_exactly() {
        let cfg = M2xfpConfig::default();
        let x = ActTensor::quantize(&mat(5, 64, 0.0), cfg);
        let w = WeightTensor::quantize(&mat(7, 64, 9.0), cfg);
        let a = qgemm(&x, &w);
        let b = qgemm_reference(&x, &w);
        for i in 0..5 {
            for j in 0..7 {
                assert_eq!(
                    a[(i, j)].to_bits(),
                    b[(i, j)].to_bits(),
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn packed_matches_reference_exactly() {
        let cfg = M2xfpConfig::default();
        let xm = mat(5, 96, 0.0);
        let wm = mat(7, 96, 9.0);
        let want = qgemm_reference(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let xp = PackedActTensor::quantize(&xm, cfg);
        let wp = PackedWeightTensor::quantize(&wm, cfg);
        for threads in [1, 2, 4] {
            let got = qgemm_packed_threaded(&xp, &wp, threads);
            for i in 0..5 {
                for j in 0..7 {
                    assert_eq!(
                        got[(i, j)].to_bits(),
                        want[(i, j)].to_bits(),
                        "threads={threads} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_matches_reference_on_ragged_k() {
        // K = 80 = 32 + 32 + 16: exercises ragged trailing groups and the
        // zero-padded tail subgroups of the packed kernel.
        let cfg = M2xfpConfig::default();
        let xm = mat(3, 80, 1.0);
        let wm = mat(4, 80, 2.0);
        let want = qgemm_reference(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let got = qgemm_packed(
            &PackedActTensor::quantize(&xm, cfg),
            &PackedWeightTensor::quantize(&wm, cfg),
        );
        assert_eq!(got, want);
    }

    #[test]
    fn planed_kernel_matches_per_call_decode() {
        // A cached WeightPlane reused across calls gives the same bits as
        // the per-call decode path.
        let cfg = M2xfpConfig::default();
        let wm = mat(5, 80, 4.0);
        let wp = PackedWeightTensor::quantize(&wm, cfg);
        let plane = WeightPlane::decode(&wp);
        assert_eq!(plane.shape(), (5, 80));
        for seed in [0.0, 6.0] {
            let xp = PackedActTensor::quantize(&mat(3, 80, seed), cfg);
            assert_eq!(
                qgemm_packed_planed(&xp, &plane, 2),
                qgemm_packed_threaded(&xp, &wp, 2),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn appended_plane_matches_full_decode() {
        // Growing a plane row-chunk by row-chunk (the KV-cache pattern) is
        // identical to decoding the fully grown tensor — bit for bit on the
        // raw w16/wscale state via PartialEq — including ragged K and a
        // metadata granularity whose per-group run is not byte-aligned
        // (subgroup 16 → 4 bits/group). The append decodes straight into
        // the existing vectors' tails; no intermediate plane exists to
        // diverge.
        for cfg in [
            M2xfpConfig::default(),
            M2xfpConfig {
                subgroup_size: 16,
                ..M2xfpConfig::default()
            },
        ] {
            for cols in [64usize, 80] {
                let full = mat(7, cols, 3.0);
                let want = WeightPlane::decode(&PackedWeightTensor::quantize(&full, cfg));
                let mut grown = WeightPlane::decode(&PackedWeightTensor::quantize(
                    &Matrix::zeros(0, cols),
                    cfg,
                ));
                let mut row = 0usize;
                for chunk in [2usize, 1, 3, 1] {
                    let delta = Matrix::from_fn(chunk, cols, |r, c| full[(row + r, c)]);
                    grown.append(&PackedWeightTensor::quantize(&delta, cfg));
                    row += chunk;
                }
                assert_eq!(grown, want, "cols={cols} sg={}", cfg.subgroup_size);
                // And the kernel consumes the grown plane bit-identically.
                let xp = PackedActTensor::quantize(&mat(3, cols, 1.0), cfg);
                assert_eq!(
                    qgemm_packed_planed(&xp, &grown, 1),
                    qgemm_packed_planed(&xp, &want, 1),
                );
            }
        }
    }

    #[test]
    fn gemv_and_inreg_match_planed_bitwise() {
        // The decode fast path (reused scratch) and the in-register
        // nibble-decode kernel agree with the planed kernel and the f64
        // reference on the m == 1 serving shape, including NR-unaligned n
        // and ragged K.
        let cfg = M2xfpConfig::default();
        let mut scratch = GemmScratch::new();
        for (n, cols) in [(1usize, 64usize), (5, 80), (7, 96), (13, 41)] {
            let xm = mat(1, cols, 2.0);
            let wm = mat(n, cols, 8.0);
            let want = qgemm_reference(
                &ActTensor::quantize(&xm, cfg),
                &WeightTensor::quantize(&wm, cfg),
            );
            let xp = PackedActTensor::quantize(&xm, cfg);
            let wp = PackedWeightTensor::quantize(&wm, cfg);
            let plane = WeightPlane::decode(&wp);
            // The same scratch is reused across shapes on purpose.
            let gemv = qgemv_packed(&xp, &plane, &mut scratch);
            assert_eq!(gemv, want, "gemv n={n} cols={cols}");
            for threads in [1, 3] {
                let inreg = qgemm_packed_inreg(&xp, &wp, threads);
                assert_eq!(inreg, want, "inreg n={n} cols={cols} threads={threads}");
            }
            assert_eq!(qgemm_packed(&xp, &wp), want, "routed n={n} cols={cols}");
        }
    }

    #[test]
    fn inreg_matches_planed_on_multi_row_batches() {
        let cfg = M2xfpConfig::default();
        for (m, n, cols) in [(2usize, 6usize, 64usize), (5, 9, 80)] {
            let xp = PackedActTensor::quantize(&mat(m, cols, 1.0), cfg);
            let wp = PackedWeightTensor::quantize(&mat(n, cols, 4.0), cfg);
            let want = qgemm_packed_planed(&xp, &WeightPlane::decode(&wp), 1);
            for threads in [1, 2] {
                assert_eq!(
                    qgemm_packed_inreg(&xp, &wp, threads),
                    want,
                    "m={m} n={n} cols={cols} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn degenerate_shapes_return_empty_matrices() {
        // (0, k), (m, 0) and (0, 0) shapes produce empty outputs on every
        // kernel instead of relying on incidental chunk arithmetic.
        let cfg = M2xfpConfig::default();
        let x0 = PackedActTensor::quantize(&Matrix::zeros(0, 64), cfg);
        let xm = PackedActTensor::quantize(&mat(3, 64, 0.0), cfg);
        let w0 = PackedWeightTensor::quantize(&Matrix::zeros(0, 64), cfg);
        let wn = PackedWeightTensor::quantize(&mat(4, 64, 9.0), cfg);
        let plane0 = WeightPlane::decode(&w0);
        let planen = WeightPlane::decode(&wn);
        let mut scratch = GemmScratch::new();
        let dims = |y: &Matrix| (y.rows(), y.cols());
        for threads in [1, 2] {
            // (0, k) × (n, k) → 0 × n.
            assert_eq!(dims(&qgemm_packed_planed(&x0, &planen, threads)), (0, 4));
            assert_eq!(dims(&qgemm_packed_inreg(&x0, &wn, threads)), (0, 4));
            // (m, k) × (0, k) → m × 0.
            assert_eq!(dims(&qgemm_packed_planed(&xm, &plane0, threads)), (3, 0));
            assert_eq!(dims(&qgemm_packed_inreg(&xm, &w0, threads)), (3, 0));
            // (0, k) × (0, k) → 0 × 0.
            assert_eq!(dims(&qgemm_packed_planed(&x0, &plane0, threads)), (0, 0));
            assert_eq!(dims(&qgemm_packed_inreg(&x0, &w0, threads)), (0, 0));
        }
        assert_eq!(dims(&qgemm_packed(&x0, &wn)), (0, 4));
        assert_eq!(dims(&qgemm_packed(&xm, &w0)), (3, 0));
        let x1 = PackedActTensor::quantize(&mat(1, 64, 5.0), cfg);
        assert_eq!(dims(&qgemv_packed(&x1, &plane0, &mut scratch)), (1, 0));
        // The grouped kernels agree on the shapes.
        let g0 = ActTensor::quantize(&Matrix::zeros(0, 64), cfg);
        let gw = WeightTensor::quantize(&Matrix::zeros(0, 64), cfg);
        assert_eq!(dims(&qgemm(&g0, &gw)), (0, 0));
        assert_eq!(dims(&qgemm_reference(&g0, &gw)), (0, 0));
    }

    #[test]
    fn scratch_reuse_is_bit_stable() {
        // Calling through one scratch repeatedly (the decode hot loop)
        // yields the same bits as fresh scratches every call.
        let cfg = M2xfpConfig::default();
        let wp = PackedWeightTensor::quantize(&mat(6, 96, 3.0), cfg);
        let plane = WeightPlane::decode(&wp);
        let mut scratch = GemmScratch::new();
        for seed in [0.0f32, 2.0, 4.0, 6.0] {
            let xp = PackedActTensor::quantize(&mat(1, 96, seed), cfg);
            let reused = qgemv_packed(&xp, &plane, &mut scratch);
            let fresh = qgemv_packed(&xp, &plane, &mut GemmScratch::new());
            assert_eq!(reused, fresh, "seed {seed}");
        }
    }

    #[test]
    fn quantized_gemm_close_to_full_precision() {
        let cfg = M2xfpConfig::default();
        let xm = mat(4, 128, 1.0);
        let wm = mat(6, 128, 2.0);
        let y_ref = xm.matmul(&wm.transpose());
        let y_q = qgemm(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let e = m2x_tensor::stats::nmse(y_ref.as_slice(), y_q.as_slice());
        assert!(e < 0.02, "relative output error too large: {e}");
        assert!(e > 0.0);
    }

    #[test]
    fn eq5_decomposition_is_exact() {
        // W×X' = W×X + W×ΔX for every subgroup of a quantized tensor.
        let cfg = M2xfpConfig::default();
        let xm = mat(3, 64, 3.0);
        let x = ActTensor::quantize(&xm, cfg);
        let sg_size = cfg.subgroup_size;
        for g in x.groups() {
            for (sg_idx, sg_codes) in g.codes.chunks(sg_size).enumerate() {
                let local = top1_index(sg_codes);
                let x8_base: Vec<i64> = sg_codes
                    .iter()
                    .map(|&c| FP4_X8[c as usize] as i64)
                    .collect();
                let refined8 = EXTRA_X8[sg_codes[local] as usize][g.meta[sg_idx] as usize] as i64;
                let mag = refined8.abs() as f32 / 8.0;
                let delta8 = refined8 - x8_base[local];
                // The refined magnitude is one of the bias-clamp candidates
                // for this FP4 magnitude (bit distance in [-1, +2]).
                let cands = m2x_formats::tables::fp6_candidates(sg_codes[local] & 7);
                assert!(cands.contains(&mag), "refined {mag} not in {cands:?}");
                // Any weight vector: decomposed == direct.
                let w2: Vec<i64> = (0..sg_codes.len() as i64).map(|i| (i % 25) - 12).collect();
                let mut x8_full = x8_base.clone();
                x8_full[local] = refined8;
                let direct: i64 = x8_full.iter().zip(&w2).map(|(&a, &b)| a * b).sum();
                let (base, corr) = pe_subgroup_decomposed(&x8_base, &w2, local, delta8);
                assert_eq!(base + corr, direct);
            }
        }
    }

    #[test]
    fn zero_inputs_give_zero_output() {
        let cfg = M2xfpConfig::default();
        let x = ActTensor::quantize(&Matrix::zeros(2, 32), cfg);
        let w = WeightTensor::quantize(&Matrix::zeros(3, 32), cfg);
        let y = qgemm(&x, &w);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
        let yp = qgemm_packed(
            &PackedActTensor::quantize(&Matrix::zeros(2, 32), cfg),
            &PackedWeightTensor::quantize(&Matrix::zeros(3, 32), cfg),
        );
        assert!(yp.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn multi_group_reduction() {
        // K = 3 groups; exercises the per-group exponent alignment.
        let cfg = M2xfpConfig::default();
        let xm = mat(2, 96, 5.0).map(|v| v * 100.0); // larger dynamic range
        let wm = mat(2, 96, 7.0).map(|v| v * 0.01);
        let a = qgemm(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        let b = qgemm_reference(
            &ActTensor::quantize(&xm, cfg),
            &WeightTensor::quantize(&wm, cfg),
        );
        assert_eq!(a, b);
        let c = qgemm_packed(
            &PackedActTensor::quantize(&xm, cfg),
            &PackedWeightTensor::quantize(&wm, cfg),
        );
        assert_eq!(c, b);
    }
}
