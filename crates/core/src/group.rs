//! Group/subgroup partitioning framework (paper §4.1).
//!
//! A group of `k` elements shares one scale; it is divided into `N = k /
//! subgroup_size` contiguous subgroups that each carry localized metadata.
//! This abstraction generalizes existing MX variants — e.g. SMX is a group
//! of 16 with subgroups of 2 carrying a 1-bit exponent.

use std::fmt;

/// Group geometry: group size and subgroup size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupConfig {
    group_size: usize,
    subgroup_size: usize,
}

impl GroupConfig {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero, `subgroup_size > group_size`, or the
    /// subgroup size does not divide the group size.
    pub fn new(group_size: usize, subgroup_size: usize) -> Self {
        assert!(
            group_size > 0 && subgroup_size > 0,
            "sizes must be positive"
        );
        assert!(
            subgroup_size <= group_size,
            "subgroup larger than group ({subgroup_size} > {group_size})"
        );
        assert_eq!(
            group_size % subgroup_size,
            0,
            "subgroup size {subgroup_size} must divide group size {group_size}"
        );
        GroupConfig {
            group_size,
            subgroup_size,
        }
    }

    /// The paper's M2XFP production geometry: 32 / 8.
    pub fn m2xfp_default() -> Self {
        GroupConfig::new(32, 8)
    }

    /// Elements per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Elements per subgroup.
    pub fn subgroup_size(&self) -> usize {
        self.subgroup_size
    }

    /// Subgroups per full group.
    pub fn subgroups_per_group(&self) -> usize {
        self.group_size / self.subgroup_size
    }

    /// Splits a (possibly short, trailing) group into subgroups.
    pub fn subgroups<'a, T>(&self, group: &'a [T]) -> impl Iterator<Item = &'a [T]> {
        group.chunks(self.subgroup_size)
    }

    /// Number of subgroups in a group of `len` elements (`len` may be short
    /// for the trailing group of a row).
    pub fn subgroup_count(&self, len: usize) -> usize {
        len.div_ceil(self.subgroup_size)
    }
}

impl fmt::Display for GroupConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}/sg{}", self.group_size, self.subgroup_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let g = GroupConfig::m2xfp_default();
        assert_eq!(g.group_size(), 32);
        assert_eq!(g.subgroup_size(), 8);
        assert_eq!(g.subgroups_per_group(), 4);
    }

    #[test]
    fn subgroup_iteration() {
        let g = GroupConfig::new(8, 4);
        let data: Vec<i32> = (0..8).collect();
        let sgs: Vec<&[i32]> = g.subgroups(&data).collect();
        assert_eq!(sgs, vec![&data[0..4], &data[4..8]]);
    }

    #[test]
    fn short_trailing_group() {
        let g = GroupConfig::new(8, 4);
        let data: Vec<i32> = (0..6).collect();
        let sgs: Vec<&[i32]> = g.subgroups(&data).collect();
        assert_eq!(sgs.len(), 2);
        assert_eq!(sgs[1].len(), 2);
        assert_eq!(g.subgroup_count(6), 2);
        assert_eq!(g.subgroup_count(8), 2);
        assert_eq!(g.subgroup_count(1), 1);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_non_dividing_subgroup() {
        GroupConfig::new(32, 5);
    }

    #[test]
    #[should_panic(expected = "subgroup larger")]
    fn rejects_oversized_subgroup() {
        GroupConfig::new(8, 16);
    }

    #[test]
    fn smx_geometry_expressible() {
        // SMX: group of 16, subgroups of 2 (paper §4.1).
        let g = GroupConfig::new(16, 2);
        assert_eq!(g.subgroups_per_group(), 8);
    }
}
