//! The metadata design space of §4.1–4.2: four strategy families × two
//! shared-scale modes, all expressed over the group/subgroup framework.
//!
//! * **Elem-EM** — extra mantissa bits on the top-1/top-2 element of each
//!   subgroup (ideal FP6 re-rounding; the production bias-clamp encoding
//!   lives in [`crate::activation`] and is compared in the ablation bench).
//! * **Elem-EE** — a 2-bit exponent offset on the top-1 element.
//! * **Sg-EM**  — 1–2 extra mantissa bits refining each subgroup's scale
//!   (multipliers of the shared power-of-two scale).
//! * **Sg-EE**  — 1–2 extra exponent bits per subgroup (downward offsets,
//!   the SMX concept).
//!
//! Under [`ScaleMode::Fixed`] the group scale comes straight from the scale
//! rule; under [`ScaleMode::Adaptive`] a bias `b ∈ {-1,0,1}` on the shared
//! exponent is searched jointly with the metadata (paper §4.1).

use crate::ebw::BitBudget;
use crate::group::GroupConfig;
use crate::scale::ScaleRule;
use m2x_formats::tables::{fp4_encode, top1_index, top2_indices, FP4_VALUES};
use m2x_formats::{fp4, fp6_e2m3, E8M0};
use std::fmt;

/// Whether metadata may reshape the shared scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleMode {
    /// Shared scale strictly from the block maximum (rule only).
    Fixed,
    /// MSE-based search over exponent bias b ∈ {-1, 0, 1}.
    Adaptive,
}

/// A metadata allocation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetadataStrategy {
    /// Element-level extra mantissa on the `top` largest elements per
    /// subgroup (2 bits each).
    ElemEm {
        /// How many elements per subgroup are refined (1 or 2).
        top: usize,
    },
    /// Element-level 2-bit exponent offset on the top-1 element.
    ElemEe,
    /// Subgroup-level extra mantissa refining the subgroup scale.
    SgEm {
        /// Metadata bits per subgroup (1 or 2).
        bits: u8,
    },
    /// Subgroup-level extra exponent (downward offsets).
    SgEe {
        /// Metadata bits per subgroup (1 or 2).
        bits: u8,
    },
}

impl MetadataStrategy {
    /// The strategies swept in Figs. 6–7, in plot order.
    pub const FIG6_SET: [MetadataStrategy; 6] = [
        MetadataStrategy::ElemEm { top: 1 },
        MetadataStrategy::ElemEm { top: 2 },
        MetadataStrategy::SgEm { bits: 1 },
        MetadataStrategy::SgEm { bits: 2 },
        MetadataStrategy::SgEe { bits: 1 },
        MetadataStrategy::SgEe { bits: 2 },
    ];

    /// Metadata bits spent per subgroup.
    pub fn meta_bits_per_subgroup(&self) -> f64 {
        match self {
            MetadataStrategy::ElemEm { top } => 2.0 * *top as f64,
            MetadataStrategy::ElemEe => 2.0,
            MetadataStrategy::SgEm { bits } | MetadataStrategy::SgEe { bits } => *bits as f64,
        }
    }

    /// The bit budget at a given geometry.
    pub fn bit_budget(&self, cfg: GroupConfig) -> BitBudget {
        BitBudget::with_subgroup_meta(
            cfg.group_size(),
            cfg.subgroup_size(),
            self.meta_bits_per_subgroup(),
        )
    }

    /// Fake-quantizes one group under this strategy.
    pub fn fake_quantize_group(
        &self,
        x: &[f32],
        cfg: GroupConfig,
        rule: ScaleRule,
        mode: ScaleMode,
    ) -> Vec<f32> {
        bias_search(x, rule, mode, |s| self.quantize_at_scale(x, cfg, s))
    }

    fn quantize_at_scale(&self, x: &[f32], cfg: GroupConfig, s: f32) -> Vec<f32> {
        match self {
            MetadataStrategy::ElemEm { top } => elem_em(x, cfg, s, *top),
            MetadataStrategy::ElemEe => elem_ee(x, cfg, s),
            MetadataStrategy::SgEm { bits } => sg_scaled(x, cfg, s, multipliers(*bits)),
            MetadataStrategy::SgEe { bits } => sg_scaled(x, cfg, s, offsets(*bits)),
        }
    }

    /// [`Self::fake_quantize_group`] through the float-codec reference
    /// scorer for the subgroup-scaled strategies — the bit-exactness
    /// oracle the property tests compare the LUT path against. The
    /// element-level strategies have a single implementation and are
    /// shared between both entry points, as is the bias-search outer loop
    /// (`bias_search`); only the quantize-at-scale scorer differs.
    pub fn fake_quantize_group_reference(
        &self,
        x: &[f32],
        cfg: GroupConfig,
        rule: ScaleRule,
        mode: ScaleMode,
    ) -> Vec<f32> {
        bias_search(x, rule, mode, |s| match self {
            MetadataStrategy::ElemEm { top } => elem_em(x, cfg, s, *top),
            MetadataStrategy::ElemEe => elem_ee(x, cfg, s),
            MetadataStrategy::SgEm { bits } => sg_scaled_reference(x, cfg, s, multipliers(*bits)),
            MetadataStrategy::SgEe { bits } => sg_scaled_reference(x, cfg, s, offsets(*bits)),
        })
    }
}

/// The shared-scale bias search of §4.1 (outer loop of the adaptive
/// mode): quantizes the group at each candidate scale `2^(e0+b)` via
/// `quantize_at_scale` and keeps the first candidate with the strictly
/// smallest SSE. Shared by the production and reference entry points so
/// the candidate set, summation order and tie-breaking can never drift
/// apart.
fn bias_search(
    x: &[f32],
    rule: ScaleRule,
    mode: ScaleMode,
    mut quantize_at_scale: impl FnMut(f32) -> Vec<f32>,
) -> Vec<f32> {
    assert!(!x.is_empty());
    let amax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let e0 = rule.shared_exponent(amax, fp4());
    let biases: &[i32] = match mode {
        ScaleMode::Fixed => &[0],
        ScaleMode::Adaptive => &[-1, 0, 1],
    };
    let mut best: Option<(f64, Vec<f32>)> = None;
    for &b in biases {
        let s = E8M0::from_exponent(e0 + b).value();
        let q = quantize_at_scale(s);
        let sse: f64 = x
            .iter()
            .zip(&q)
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum();
        let better = match &best {
            None => true,
            Some((t, _)) => sse < *t,
        };
        if better {
            best = Some((sse, q));
        }
    }
    // m2x-lint: allow(panic) candidate set iterates a non-empty static table, so `best` is always Some
    best.expect("non-empty bias set").1
}

impl fmt::Display for MetadataStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetadataStrategy::ElemEm { top } => write!(f, "Elem-EM-top{top}"),
            MetadataStrategy::ElemEe => write!(f, "Elem-EE"),
            MetadataStrategy::SgEm { bits } => write!(f, "Sg-EM-{bits}bit"),
            MetadataStrategy::SgEe { bits } => write!(f, "Sg-EE-{bits}bit"),
        }
    }
}

/// Subgroup scale multipliers for Sg-EM (1 bit: {1, 1.5}; 2 bits: Eq. 3).
fn multipliers(bits: u8) -> &'static [f32] {
    match bits {
        1 => &[1.0, 1.5],
        2 => &[1.0, 1.25, 1.5, 1.75],
        // m2x-lint: allow(panic) bits is constrained to 1|2 by every constructor; misuse is a programmer error
        _ => panic!("Sg-EM supports 1 or 2 bits, got {bits}"),
    }
}

/// Subgroup scale factors for Sg-EE (downward power-of-two offsets, the SMX
/// concept: small subgroups drop to a finer scale).
fn offsets(bits: u8) -> &'static [f32] {
    match bits {
        1 => &[1.0, 0.5],
        2 => &[1.0, 0.5, 0.25, 0.125],
        // m2x-lint: allow(panic) bits is constrained to 1|2 by every constructor; misuse is a programmer error
        _ => panic!("Sg-EE supports 1 or 2 bits, got {bits}"),
    }
}

/// Element-level extra mantissa: FP4 everywhere, top-T per subgroup
/// re-rounded at FP6 precision (ideal re-rounding; no encoding loss).
fn elem_em(x: &[f32], cfg: GroupConfig, s: f32, top: usize) -> Vec<f32> {
    assert!(top == 1 || top == 2, "top must be 1 or 2");
    let f4 = fp4();
    let f6 = fp6_e2m3();
    let mut out = Vec::with_capacity(x.len());
    for sg in x.chunks(cfg.subgroup_size()) {
        let codes: Vec<u8> = sg.iter().map(|&v| f4.encode(v / s)).collect();
        let mut vals: Vec<f32> = codes.iter().map(|&c| f4.decode(c) * s).collect();
        let refine = |i: usize, vals: &mut Vec<f32>| {
            let q = f6.quantize(sg[i] / s) * s;
            vals[i] = q;
        };
        if sg.len() == 1 {
            refine(0, &mut vals);
        } else if top == 1 {
            refine(top1_index(&codes), &mut vals);
        } else {
            let [a, b] = top2_indices(&codes);
            refine(a, &mut vals);
            refine(b, &mut vals);
        }
        out.extend_from_slice(&vals);
    }
    out
}

/// Element-level extra exponent: the top-1 element is re-quantized with a
/// 2-bit exponent offset (2^{-2..=1}) chosen to minimize its error.
fn elem_ee(x: &[f32], cfg: GroupConfig, s: f32) -> Vec<f32> {
    let f4 = fp4();
    let mut out = Vec::with_capacity(x.len());
    for sg in x.chunks(cfg.subgroup_size()) {
        let codes: Vec<u8> = sg.iter().map(|&v| f4.encode(v / s)).collect();
        let mut vals: Vec<f32> = codes.iter().map(|&c| f4.decode(c) * s).collect();
        let i = top1_index(&codes);
        let target = sg[i];
        let mut best = vals[i];
        let mut best_err = (best - target).abs();
        for off in [-2i32, -1, 0, 1] {
            let es = s * (off as f32).exp2();
            let q = f4.quantize(target / es) * es;
            let e = (q - target).abs();
            if e < best_err {
                best_err = e;
                best = q;
            }
        }
        vals[i] = best;
        out.extend_from_slice(&vals);
    }
    out
}

/// Subgroup-level scale refinement: each subgroup picks the factor (from
/// `factors`, times the shared scale) minimizing its SSE — covers both
/// Sg-EM (multipliers ≥ 1, 1- or 2-bit) and Sg-EE (power-of-two offsets
/// ≤ 1).
///
/// Production path: per factor a 16-entry dequantized-value LUT is built
/// once, each candidate is scored with the branch-free [`fp4_encode`]
/// (integer adds over seven compares) plus one LUT read, and only the
/// winning candidate is materialized. Bit-identical to
/// [`sg_scaled_reference`], without a codec `quantize` call or a per-
/// candidate allocation anywhere.
fn sg_scaled(x: &[f32], cfg: GroupConfig, s: f32, factors: &[f32]) -> Vec<f32> {
    // Factor lists are tiny (≤ 4); stack tables, rebuilt per group call.
    let mut effs = [0.0f32; 4];
    let mut qvs = [[0.0f32; 16]; 4];
    assert!(factors.len() <= 4, "at most 4 subgroup factors supported");
    for (k, &m) in factors.iter().enumerate() {
        effs[k] = m * s;
        for (c, q) in qvs[k].iter_mut().enumerate() {
            *q = FP4_VALUES[c] * effs[k];
        }
    }
    let mut out = Vec::with_capacity(x.len());
    for sg in x.chunks(cfg.subgroup_size()) {
        let mut best_f = 0usize;
        let mut best_sse = f64::INFINITY;
        for f in 0..factors.len() {
            let eff = effs[f];
            let qv = &qvs[f];
            let mut sse = 0.0f64;
            for &v in sg {
                let d = (v - qv[fp4_encode(v / eff) as usize]) as f64;
                sse += d * d;
            }
            if sse < best_sse {
                best_sse = sse;
                best_f = f;
            }
        }
        let eff = effs[best_f];
        let qv = &qvs[best_f];
        out.extend(sg.iter().map(|&v| qv[fp4_encode(v / eff) as usize]));
    }
    out
}

/// Float-codec twin of [`sg_scaled`], kept as the bit-exactness oracle.
fn sg_scaled_reference(x: &[f32], cfg: GroupConfig, s: f32, factors: &[f32]) -> Vec<f32> {
    let f4 = fp4();
    let mut out = Vec::with_capacity(x.len());
    for sg in x.chunks(cfg.subgroup_size()) {
        let mut best: Option<(f64, Vec<f32>)> = None;
        for &m in factors {
            let eff = m * s;
            let q: Vec<f32> = sg.iter().map(|&v| f4.quantize(v / eff) * eff).collect();
            let sse: f64 = sg
                .iter()
                .zip(&q)
                .map(|(&a, &b)| {
                    let d = (a - b) as f64;
                    d * d
                })
                .sum();
            let better = match &best {
                None => true,
                Some((t, _)) => sse < *t,
            };
            if better {
                best = Some((sse, q));
            }
        }
        // m2x-lint: allow(panic) factor set iterates a non-empty static table, so `best` is always Some
        out.extend_from_slice(&best.expect("non-empty factors").1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::mse;

    fn cfg(sg: usize) -> GroupConfig {
        GroupConfig::new(32, sg)
    }

    fn data(seed: u64) -> Vec<f32> {
        // Heavy-tailed (Laplace) groups — the regime the paper's analysis
        // targets, where the block/subgroup maximum dominates the error.
        let mut r = m2x_tensor::Xoshiro::seed(seed + 1);
        r.vec_of(32, |r| r.laplace(1.0))
    }

    fn strategy_mse(
        s: MetadataStrategy,
        sg: usize,
        mode: ScaleMode,
        seeds: std::ops::Range<u64>,
    ) -> f64 {
        let mut total = 0.0;
        let mut n = 0;
        for seed in seeds {
            let x = data(seed);
            let q = s.fake_quantize_group(&x, cfg(sg), ScaleRule::Floor, mode);
            total += mse(&x, &q);
            n += 1;
        }
        total / n as f64
    }

    #[test]
    fn ebw_of_fig6_points() {
        // Elem-EM-top1 at subgroup 8 on group 32: EBW = 4.5.
        let s = MetadataStrategy::ElemEm { top: 1 };
        assert!((s.bit_budget(cfg(8)).ebw() - 4.5).abs() < 1e-12);
        // Sg-EM-2bit at subgroup 8: also 4.5 — same budget, different use.
        let s = MetadataStrategy::SgEm { bits: 2 };
        assert!((s.bit_budget(cfg(8)).ebw() - 4.5).abs() < 1e-12);
        // Sg-EM-1bit at subgroup 8: 4.375.
        let s = MetadataStrategy::SgEm { bits: 1 };
        assert!((s.bit_budget(cfg(8)).ebw() - 4.375).abs() < 1e-12);
    }

    #[test]
    fn all_strategies_beat_plain_mxfp4() {
        let plain = {
            let mut total = 0.0;
            for seed in 0..30 {
                let x = data(seed);
                let f4 = m2x_formats::fp4();
                let amax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let s = ScaleRule::Floor.shared_scale(amax, f4).value();
                let q: Vec<f32> = x.iter().map(|&v| f4.quantize(v / s) * s).collect();
                total += mse(&x, &q);
            }
            total / 30.0
        };
        for s in MetadataStrategy::FIG6_SET {
            let m = strategy_mse(s, 8, ScaleMode::Fixed, 0..30);
            assert!(m <= plain + 1e-12, "{s} mse {m} vs plain {plain}");
        }
    }

    #[test]
    fn elem_em_dominates_under_fixed_scale() {
        // The §4.2.2 finding: Elem-EM achieves the lowest MSE at matched
        // budget under a fixed shared scale.
        let em = strategy_mse(
            MetadataStrategy::ElemEm { top: 1 },
            8,
            ScaleMode::Fixed,
            0..60,
        );
        let sgem = strategy_mse(
            MetadataStrategy::SgEm { bits: 2 },
            8,
            ScaleMode::Fixed,
            0..60,
        );
        let sgee = strategy_mse(
            MetadataStrategy::SgEe { bits: 2 },
            8,
            ScaleMode::Fixed,
            0..60,
        );
        assert!(em < sgem, "Elem-EM {em} should beat Sg-EM {sgem} (fixed)");
        assert!(em < sgee, "Elem-EM {em} should beat Sg-EE {sgee} (fixed)");
    }

    #[test]
    fn top2_no_worse_than_top1() {
        let t1 = strategy_mse(
            MetadataStrategy::ElemEm { top: 1 },
            8,
            ScaleMode::Fixed,
            0..40,
        );
        let t2 = strategy_mse(
            MetadataStrategy::ElemEm { top: 2 },
            8,
            ScaleMode::Fixed,
            0..40,
        );
        assert!(t2 <= t1 + 1e-12);
    }

    #[test]
    fn adaptive_no_worse_than_fixed() {
        for s in MetadataStrategy::FIG6_SET {
            let fixed = strategy_mse(s, 8, ScaleMode::Fixed, 0..30);
            let adaptive = strategy_mse(s, 8, ScaleMode::Adaptive, 0..30);
            assert!(adaptive <= fixed + 1e-12, "{s}");
        }
    }

    #[test]
    fn sgem_2bit_improves_with_adaptive() {
        // §4.2.3: adaptive scale specifically unlocks Sg-EM.
        let fixed = strategy_mse(
            MetadataStrategy::SgEm { bits: 2 },
            8,
            ScaleMode::Adaptive,
            0..60,
        );
        let em_fixed = strategy_mse(
            MetadataStrategy::ElemEm { top: 1 },
            8,
            ScaleMode::Fixed,
            0..60,
        );
        assert!(
            fixed < em_fixed,
            "Sg-EM-adaptive {fixed} should beat Elem-EM-fixed {em_fixed}"
        );
    }

    #[test]
    fn smaller_subgroups_reduce_mse() {
        let s = MetadataStrategy::SgEm { bits: 2 };
        let coarse = strategy_mse(s, 32, ScaleMode::Fixed, 0..30);
        let fine = strategy_mse(s, 4, ScaleMode::Fixed, 0..30);
        assert!(fine < coarse);
    }

    #[test]
    fn elem_ee_refines_top1_without_hurting() {
        // Elem-EE is omitted from the paper's figures but must still be a
        // valid refinement: never worse than plain MXFP4 on the group.
        let s = MetadataStrategy::ElemEe;
        for seed in 0..20 {
            let x = data(seed);
            let q = s.fake_quantize_group(&x, cfg(8), ScaleRule::Floor, ScaleMode::Fixed);
            let f4 = m2x_formats::fp4();
            let amax = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let sc = ScaleRule::Floor.shared_scale(amax, f4).value();
            let plain: Vec<f32> = x.iter().map(|&v| f4.quantize(v / sc) * sc).collect();
            assert!(mse(&x, &q) <= mse(&x, &plain) + 1e-12, "seed {seed}");
        }
        assert_eq!(s.meta_bits_per_subgroup(), 2.0);
    }

    #[test]
    fn zero_group_stable_for_all_strategies() {
        let x = vec![0.0f32; 32];
        for s in MetadataStrategy::FIG6_SET {
            let q = s.fake_quantize_group(&x, cfg(8), ScaleRule::Floor, ScaleMode::Adaptive);
            assert!(q.iter().all(|&v| v == 0.0), "{s}");
        }
    }

    #[test]
    fn lut_scorer_bit_identical_to_reference() {
        // The Sg strategies run the LUT fast path; the reference oracle
        // runs the float codec. Outputs must agree bit for bit across
        // metadata widths, subgroup sizes and scale modes.
        let strategies = [
            MetadataStrategy::SgEm { bits: 1 },
            MetadataStrategy::SgEm { bits: 2 },
            MetadataStrategy::SgEe { bits: 1 },
            MetadataStrategy::SgEe { bits: 2 },
            MetadataStrategy::ElemEm { top: 1 },
            MetadataStrategy::ElemEe,
        ];
        for seed in 0..30 {
            let x = data(seed);
            for s in strategies {
                for sg in [4, 8, 16] {
                    for mode in [ScaleMode::Fixed, ScaleMode::Adaptive] {
                        let fast = s.fake_quantize_group(&x, cfg(sg), ScaleRule::Floor, mode);
                        let oracle =
                            s.fake_quantize_group_reference(&x, cfg(sg), ScaleRule::Floor, mode);
                        for (a, b) in fast.iter().zip(&oracle) {
                            assert_eq!(a.to_bits(), b.to_bits(), "{s} sg={sg} seed={seed}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(
            MetadataStrategy::ElemEm { top: 1 }.to_string(),
            "Elem-EM-top1"
        );
        assert_eq!(MetadataStrategy::SgEe { bits: 2 }.to_string(), "Sg-EE-2bit");
    }
}
