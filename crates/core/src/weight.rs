//! Offline weight quantization with Sg-EM subgroup scale refinement
//! (paper §4.4.2).
//!
//! Each subgroup carries a 2-bit extra mantissa refining the shared scale
//! `S = 2^E` into `{1.0, 1.25, 1.5, 1.75} · S` (Eq. 3). With the adaptive
//! shared scale enabled, a group-level exponent bias `b ∈ {-1, 0, 1}` is
//! searched jointly and absorbed into the stored E8M0 scale (it costs no
//! extra bits). Parameters are chosen by hierarchical MSE minimization
//! (Eq. 4): best multiplier per subgroup given `b`, then best `b`.
//!
//! Two implementations of the search are provided:
//!
//! * the **production LUT path** ([`quantize_group_into`]) — per candidate
//!   `(bias, multiplier)` a 16-entry dequantized-value LUT is precomputed
//!   once (`ScaleLuts`), each element is encoded branch-free via
//!   [`m2x_formats::tables::fp4_encode`] (seven compares summed with
//!   integer adds — no `log2`, no rounding loop, no float decode
//!   round-trip), and its squared error accumulated from the LUT value;
//! * the **float reference oracle** ([`quantize_group_reference`]) — the
//!   original decode/encode loop through the [`Minifloat`] codec, kept as
//!   the bit-exactness oracle the property tests compare against.
//!
//! Both produce **bit-identical** codes, scales and multiplier codes; the
//! LUT path is roughly an order of magnitude faster, which is what makes
//! multi-layer offline weight quantization practical (see
//! `PackedWeightTensor::quantize_parallel`).
//!
//! [`Minifloat`]: m2x_formats::Minifloat

use crate::group::GroupConfig;
use crate::scale::ScaleRule;
use m2x_formats::tables::{fp4_encode, FP4_VALUES};
use m2x_formats::{fp4, E8M0};

/// The four subgroup scale multipliers encoded by the 2-bit Sg-EM codes
/// 00, 01, 10, 11 (paper §5.4).
pub const SG_MULTIPLIERS: [f32; 4] = [1.0, 1.25, 1.5, 1.75];

/// One quantized weight group: FP4 codes, E8M0 shared scale (bias already
/// absorbed) and a 2-bit multiplier code per subgroup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightGroup {
    /// FP4 codes (sign in bit 3, magnitude in bits 2..0).
    pub codes: Vec<u8>,
    /// Shared power-of-two scale, including the adaptive bias.
    pub scale: E8M0,
    /// Sg-EM multiplier codes (0..=3), one per subgroup.
    pub sg_em: Vec<u8>,
}

impl WeightGroup {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the group holds no elements.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Effective scale of subgroup `i`.
    pub fn subgroup_scale(&self, i: usize) -> f32 {
        SG_MULTIPLIERS[self.sg_em[i] as usize] * self.scale.value()
    }
}

/// Quantizes one group of weights with Sg-EM-2bit refinement.
///
/// `adaptive` enables the `b ∈ {-1,0,1}` exponent-bias search of the
/// adaptive shared-scale mode; with `false` the scale comes directly from
/// `rule` (fixed mode).
pub fn quantize_group(w: &[f32], cfg: GroupConfig, rule: ScaleRule, adaptive: bool) -> WeightGroup {
    let mut codes = vec![0u8; w.len()];
    let mut sg_em = vec![0u8; cfg.subgroup_count(w.len())];
    let scale = quantize_group_into(w, cfg, rule, adaptive, &mut codes, &mut sg_em);
    WeightGroup {
        codes,
        scale,
        sg_em,
    }
}

/// Allocation-free Sg-EM quantization: writes FP4 codes and per-subgroup
/// multiplier codes into caller-provided slices, returning the shared scale
/// (adaptive bias already absorbed).
///
/// The bias search runs over the candidates without materializing per-bias
/// multiplier vectors: each candidate's total SSE is accumulated, and the
/// winning bias' multipliers are recomputed into `sg_em` on the final
/// encoding pass. [`quantize_group`] is the allocating wrapper.
///
/// # Panics
///
/// Panics when `w` is empty or longer than the group size, when
/// `codes.len() != w.len()`, or when `sg_em` does not hold exactly one entry
/// per subgroup.
pub fn quantize_group_into(
    w: &[f32],
    cfg: GroupConfig,
    rule: ScaleRule,
    adaptive: bool,
    codes: &mut [u8],
    sg_em: &mut [u8],
) -> E8M0 {
    check_buffers(w, cfg, codes, sg_em);

    let amax = w.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let e0 = rule.shared_exponent(amax, fp4());
    let biases: &[i32] = if adaptive { &[-1, 0, 1] } else { &[0] };

    // Outer loop of Eq. 4: first candidate bias with the strictly smallest
    // total SSE wins (same tie-breaking as an ordered min-search). A bias
    // whose partial total already reaches the incumbent can never win the
    // strict `<` comparison (per-subgroup SSEs are non-negative, so the
    // total is monotone in the subgroup index) — pruning it changes no
    // outcome, only skips work. The winning bias is never pruned, so its
    // multiplier codes (stacked in `cand`) are complete and exact and the
    // encode pass below needs no re-search.
    let mut cand = [0u8; MAX_CACHED_SUBGROUPS];
    let cache = sg_em.len() <= cand.len();
    // Whether any bias won the strict comparison: with degenerate totals
    // (NaN/∞ from non-finite inputs or scale overflow) none does, and the
    // encode pass falls back to recomputing, exactly like the oracle.
    let mut won = false;
    let mut best_bias = biases[0];
    let mut best_total = f64::INFINITY;
    'bias: for &b in biases {
        let luts = ScaleLuts::new(E8M0::from_exponent(e0 + b).value());
        let mut total = 0.0f64;
        for (i, sg) in w.chunks(cfg.subgroup_size()).enumerate() {
            let (k, sse) = best_multiplier_lut(sg, &luts);
            if cache {
                cand[i] = k;
            }
            total += sse;
            if total >= best_total {
                continue 'bias;
            }
        }
        if total < best_total {
            best_total = total;
            best_bias = b;
            won = true;
            if cache {
                sg_em.copy_from_slice(&cand[..sg_em.len()]);
            }
        }
    }
    let cache = cache && won;

    // Encode with the winning parameters. The per-subgroup multipliers are
    // the winning bias's cached codes; a group with more subgroups than the
    // stack cache recomputes them (deterministic, so identical to the
    // search pass).
    let scale = E8M0::from_exponent(e0 + best_bias);
    let luts = ScaleLuts::new(scale.value());
    let sg_size = cfg.subgroup_size();
    for (sg_idx, sg) in w.chunks(sg_size).enumerate() {
        let k = if cache {
            sg_em[sg_idx]
        } else {
            best_multiplier_lut(sg, &luts).0
        };
        sg_em[sg_idx] = k;
        let eff = luts.eff[k as usize];
        for (c, &v) in codes[sg_idx * sg_size..].iter_mut().zip(sg) {
            *c = fp4_encode(v / eff);
        }
    }
    scale
}

/// Subgroup-count ceiling for the stack-allocated multiplier cache in
/// [`quantize_group_into`]; larger groups fall back to recomputing the
/// winning multipliers in the encode pass.
const MAX_CACHED_SUBGROUPS: usize = 128;

/// The float-codec Sg-EM search — the original implementation, kept
/// verbatim as the **bit-exactness oracle** for the LUT path. Produces the
/// same codes, scale and multiplier codes as [`quantize_group_into`]
/// (asserted by unit and property tests), an order of magnitude slower.
pub fn quantize_group_reference(
    w: &[f32],
    cfg: GroupConfig,
    rule: ScaleRule,
    adaptive: bool,
) -> WeightGroup {
    let mut codes = vec![0u8; w.len()];
    let mut sg_em = vec![0u8; cfg.subgroup_count(w.len())];
    check_buffers(w, cfg, &codes, &sg_em);
    let f4 = fp4();

    let amax = w.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let e0 = rule.shared_exponent(amax, f4);
    let biases: &[i32] = if adaptive { &[-1, 0, 1] } else { &[0] };

    let mut best_bias = biases[0];
    let mut best_total = f64::INFINITY;
    for &b in biases {
        let s = E8M0::from_exponent(e0 + b).value();
        let total: f64 = w
            .chunks(cfg.subgroup_size())
            .map(|sg| best_multiplier_reference(sg, s).1)
            .sum();
        if total < best_total {
            best_total = total;
            best_bias = b;
        }
    }

    let scale = E8M0::from_exponent(e0 + best_bias);
    let s = scale.value();
    let sg_size = cfg.subgroup_size();
    for (sg_idx, sg) in w.chunks(sg_size).enumerate() {
        let k = best_multiplier_reference(sg, s).0;
        sg_em[sg_idx] = k;
        let eff = SG_MULTIPLIERS[k as usize] * s;
        for (c, &v) in codes[sg_idx * sg_size..].iter_mut().zip(sg) {
            *c = f4.encode(v / eff);
        }
    }
    WeightGroup {
        codes,
        scale,
        sg_em,
    }
}

fn check_buffers(w: &[f32], cfg: GroupConfig, codes: &[u8], sg_em: &[u8]) {
    assert!(!w.is_empty(), "group must be non-empty");
    assert!(
        w.len() <= cfg.group_size(),
        "group longer than configured size"
    );
    assert_eq!(codes.len(), w.len(), "code buffer length mismatch");
    assert_eq!(
        sg_em.len(),
        cfg.subgroup_count(w.len()),
        "sg_em buffer length mismatch"
    );
}

/// The candidate effective scales for one shared scale `s`:
/// `eff[k] = SG_MULTIPLIERS[k] * s`, the same `f32` products the float
/// oracle forms, so every downstream multiply matches it bit for bit.
struct ScaleLuts {
    eff: [f32; 4],
}

impl ScaleLuts {
    #[inline]
    fn new(s: f32) -> Self {
        let mut eff = [0.0f32; 4];
        for k in 0..4 {
            eff[k] = SG_MULTIPLIERS[k] * s;
        }
        ScaleLuts { eff }
    }
}

/// Finds the multiplier code minimizing the subgroup's squared error via
/// the LUT scorer (inner loop of Eq. 4). Ties keep the smaller code.
/// Bit-identical to [`best_multiplier_reference`].
///
/// All four candidates are scored in a single pass over the elements with
/// four independent accumulators: the divisions pipeline, the branch-free
/// [`fp4_encode`]s and the four f64 chains overlap, and there is no
/// data-dependent branch to mispredict. Each accumulator still sums its
/// candidate's squared errors in element order — exactly the oracle's
/// summation — so the SSE values (and therefore the argmin and its
/// tie-breaks) are identical.
#[inline]
fn best_multiplier_lut(sg: &[f32], luts: &ScaleLuts) -> (u8, f64) {
    let [e0, e1, e2, e3] = luts.eff;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for &v in sg {
        let q0 = FP4_VALUES[fp4_encode(v / e0) as usize] * e0;
        let q1 = FP4_VALUES[fp4_encode(v / e1) as usize] * e1;
        let q2 = FP4_VALUES[fp4_encode(v / e2) as usize] * e2;
        let q3 = FP4_VALUES[fp4_encode(v / e3) as usize] * e3;
        let (d0, d1, d2, d3) = (
            (q0 - v) as f64,
            (q1 - v) as f64,
            (q2 - v) as f64,
            (q3 - v) as f64,
        );
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut best_k = 0u8;
    let mut best_sse = f64::INFINITY;
    for (k, sse) in [s0, s1, s2, s3].into_iter().enumerate() {
        if sse < best_sse {
            best_sse = sse;
            best_k = k as u8;
        }
    }
    (best_k, best_sse)
}

/// Float-codec twin of [`best_multiplier_lut`] — the oracle's inner loop.
fn best_multiplier_reference(sg: &[f32], s: f32) -> (u8, f64) {
    let f4 = fp4();
    let mut best_k = 0u8;
    let mut best_sse = f64::INFINITY;
    for (k, &m) in SG_MULTIPLIERS.iter().enumerate() {
        let eff = m * s;
        let sse: f64 = sg
            .iter()
            .map(|&v| {
                let q = f4.quantize(v / eff) * eff;
                let e = (q - v) as f64;
                e * e
            })
            .sum();
        if sse < best_sse {
            best_sse = sse;
            best_k = k as u8;
        }
    }
    (best_k, best_sse)
}

/// Dequantizes a weight group.
pub fn dequantize_group(g: &WeightGroup, cfg: GroupConfig) -> Vec<f32> {
    let f4 = fp4();
    let mut out = Vec::with_capacity(g.codes.len());
    for (sg_idx, sg_codes) in g.codes.chunks(cfg.subgroup_size()).enumerate() {
        let eff = g.subgroup_scale(sg_idx);
        for &c in sg_codes {
            out.push(f4.decode(c) * eff);
        }
    }
    out
}

/// Fake-quantization (quantize + dequantize) of one weight group.
pub fn fake_quantize_group(
    w: &[f32],
    cfg: GroupConfig,
    rule: ScaleRule,
    adaptive: bool,
) -> Vec<f32> {
    dequantize_group(&quantize_group(w, cfg, rule, adaptive), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_tensor::stats::mse;

    fn cfg() -> GroupConfig {
        GroupConfig::new(32, 8)
    }

    fn ramp(n: usize, scale: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 * 1.37).sin() + 0.1 * (i as f32)) * scale)
            .collect()
    }

    #[test]
    fn multiplier_aligns_subgroup_max() {
        // A subgroup whose max is 5.0 under scale 1: multiplier 1.25 maps it
        // onto the FP4 code 4 exactly (5/1.25 = 4).
        let sg = [5.0f32, 0.6, 0.2, -0.1];
        let (k, _) = best_multiplier_lut(&sg, &ScaleLuts::new(1.0));
        let eff = SG_MULTIPLIERS[k as usize];
        let q = m2x_formats::fp4().quantize(5.0 / eff) * eff;
        assert!((q - 5.0).abs() < 1e-6, "k={k} q={q}");
    }

    #[test]
    fn lut_and_reference_multiplier_search_agree() {
        let mut r = m2x_tensor::Xoshiro::seed(41);
        for case in 0..500 {
            let n = 1 + r.below(8);
            let sg: Vec<f32> = (0..n).map(|_| r.laplace(1.0) * 3.0).collect();
            let e = r.below(61) as i32 - 30;
            let s = E8M0::from_exponent(e).value();
            let (k_lut, sse_lut) = best_multiplier_lut(&sg, &ScaleLuts::new(s));
            let (k_ref, sse_ref) = best_multiplier_reference(&sg, s);
            assert_eq!(k_lut, k_ref, "case {case}");
            assert_eq!(sse_lut.to_bits(), sse_ref.to_bits(), "case {case}");
        }
    }

    #[test]
    fn lut_search_bit_identical_to_reference_oracle() {
        let mut r = m2x_tensor::Xoshiro::seed(97);
        for case in 0..300 {
            let n = 1 + r.below(32);
            let scale = ((r.below(41) as i32 - 20) as f32).exp2();
            let w: Vec<f32> = (0..n).map(|_| r.laplace(1.0) * scale).collect();
            for adaptive in [false, true] {
                let fast = quantize_group(&w, cfg(), ScaleRule::Floor, adaptive);
                let oracle = quantize_group_reference(&w, cfg(), ScaleRule::Floor, adaptive);
                assert_eq!(fast, oracle, "case {case} adaptive {adaptive}");
            }
        }
    }

    #[test]
    fn sgem_never_worse_than_plain_mxfp4() {
        // Multiplier 1.0 (code 00) reproduces plain MXFP4, so the searched
        // result can only improve group MSE.
        for seed in 0..50u64 {
            let w: Vec<f32> = (0..32)
                .map(|i| {
                    let t = (seed * 37 + i) as f32;
                    (t * 0.618).sin() * 3.0 + (t * 0.314).cos()
                })
                .collect();
            let refined = fake_quantize_group(&w, cfg(), ScaleRule::Floor, false);
            let plain: Vec<f32> = {
                let f4 = m2x_formats::fp4();
                let amax = w.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let s = ScaleRule::Floor.shared_scale(amax, f4).value();
                w.iter().map(|&v| f4.quantize(v / s) * s).collect()
            };
            assert!(mse(&w, &refined) <= mse(&w, &plain) + 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn adaptive_never_worse_than_fixed() {
        for seed in 0..50u64 {
            let w: Vec<f32> = (0..32)
                .map(|i| ((seed * 61 + i) as f32 * 0.789).sin() * 4.2)
                .collect();
            let fixed = fake_quantize_group(&w, cfg(), ScaleRule::Floor, false);
            let adaptive = fake_quantize_group(&w, cfg(), ScaleRule::Floor, true);
            assert!(mse(&w, &adaptive) <= mse(&w, &fixed) + 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn bias_absorbed_into_scale() {
        // The stored representation has no bias field: only scale + sg codes.
        let w = ramp(32, 1.0);
        let g = quantize_group(&w, cfg(), ScaleRule::Floor, true);
        assert_eq!(g.sg_em.len(), 4);
        assert!(g.sg_em.iter().all(|&k| k < 4));
        // Round-trip through dequantize must be stable.
        let dq = dequantize_group(&g, cfg());
        let g2 = quantize_group(&dq, cfg(), ScaleRule::Floor, true);
        let dq2 = dequantize_group(&g2, cfg());
        assert_eq!(dq, dq2);
    }

    #[test]
    fn scale_candidates_match_eq3() {
        // Search space per subgroup is {(1 + k/4) · 2^E | k in 0..4}.
        let w = [4.9f32, 0.3, -0.2, 0.1];
        let c = GroupConfig::new(4, 4);
        let g = quantize_group(&w, c, ScaleRule::Floor, false);
        let e = g.scale.exponent();
        let eff = g.subgroup_scale(0);
        let found = SG_MULTIPLIERS
            .iter()
            .any(|m| (eff - m * (e as f32).exp2()).abs() < 1e-9);
        assert!(found);
    }

    #[test]
    fn zero_group() {
        let w = [0.0f32; 32];
        let dq = fake_quantize_group(&w, cfg(), ScaleRule::Floor, true);
        assert_eq!(dq, w);
    }

    #[test]
    fn short_group() {
        let w = [1.0, -3.0, 0.5];
        let g = quantize_group(&w, cfg(), ScaleRule::Floor, true);
        assert_eq!(g.codes.len(), 3);
        assert_eq!(g.sg_em.len(), 1);
        assert_eq!(dequantize_group(&g, cfg()).len(), 3);
    }

    #[test]
    fn outlier_heavy_group_prefers_nonunit_multiplier_somewhere() {
        // With varied subgroup maxima, at least one subgroup should pick a
        // non-1.0 multiplier on typical data.
        let mut any = false;
        for seed in 0..20u64 {
            let w: Vec<f32> = (0..32)
                .map(|i| ((seed * 97 + i * 13) as f32 * 0.423).sin() * 5.0)
                .collect();
            let g = quantize_group(&w, cfg(), ScaleRule::Floor, true);
            if g.sg_em.iter().any(|&k| k != 0) {
                any = true;
                break;
            }
        }
        assert!(any, "search never used the refinement");
    }
}
