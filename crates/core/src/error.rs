//! The single error type of the `m2xfp` engine API.
//!
//! Every fallible operation across the engine — tensor packing/unpacking,
//! layer construction, backend forwards, model building — reports through
//! [`Error`], replacing the per-module ad-hoc types (`LayoutError`,
//! `LinearError`) that accumulated as the API grew. Variants carry the name
//! of the tensor or layer involved so a failure deep inside a model forward
//! still names its site; [`Error::for_tensor`] rewrites that context as an
//! error propagates outward (e.g. a generic shape mismatch becomes
//! "layer 3 q_proj").

use std::fmt;

/// Error from the m2xfp engine: quantization layout, layer shapes, backend
/// dispatch or model configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A row length is not a multiple of the group size (hardware stream
    /// layouts require aligned rows).
    Misaligned {
        /// Tensor or layer the misaligned rows belong to.
        tensor: String,
        /// Offending row length.
        len: usize,
        /// Required group size.
        group_size: usize,
    },
    /// An operand width does not match the layer/tensor it is applied to.
    WidthMismatch {
        /// Tensor or layer being applied.
        tensor: String,
        /// Width the tensor expects (its reduction dimension).
        expected: usize,
        /// Width the operand actually has.
        got: usize,
    },
    /// A serialized buffer has the wrong length for its declared layout.
    BufferLength {
        /// Tensor being unpacked.
        tensor: String,
        /// Byte length the layout requires.
        expected: usize,
        /// Byte length received.
        got: usize,
    },
    /// Per-group metadata does not fit the serialized stream's 8-bit field.
    MetaOverflow {
        /// Metadata bits per group requested.
        bits: u32,
    },
    /// Prepared weights built by one execution backend were handed to a
    /// different one.
    BackendMismatch {
        /// Backend that received the weights.
        backend: &'static str,
        /// Backend family that prepared them.
        prepared_by: &'static str,
    },
    /// Invalid configuration (model builder, session setup).
    Config {
        /// Human-readable description naming the offending field.
        msg: String,
    },
}

impl Error {
    /// Invalid-configuration constructor.
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config { msg: msg.into() }
    }

    /// Rewrites the tensor/layer context of this error — used when a
    /// generic tensor failure propagates out of a named layer, so the
    /// message reports the site the caller knows ("layer 2 mlp_down")
    /// instead of a placeholder.
    #[must_use]
    pub fn for_tensor(mut self, name: impl Into<String>) -> Self {
        match &mut self {
            Error::Misaligned { tensor, .. }
            | Error::WidthMismatch { tensor, .. }
            | Error::BufferLength { tensor, .. } => *tensor = name.into(),
            Error::MetaOverflow { .. } | Error::BackendMismatch { .. } => {}
            Error::Config { msg } => *msg = format!("{}: {msg}", name.into()),
        }
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Misaligned {
                tensor,
                len,
                group_size,
            } => write!(
                f,
                "{tensor}: row length {len} is not a multiple of the group size {group_size}"
            ),
            Error::WidthMismatch {
                tensor,
                expected,
                got,
            } => write!(
                f,
                "{tensor}: input width {got} does not match the expected width {expected}"
            ),
            Error::BufferLength {
                tensor,
                expected,
                got,
            } => write!(
                f,
                "{tensor}: buffer is {got} bytes, layout requires {expected}"
            ),
            Error::MetaOverflow { bits } => {
                write!(f, "metadata {bits} bits/group exceeds the 8-bit field")
            }
            Error::BackendMismatch {
                backend,
                prepared_by,
            } => write!(
                f,
                "{backend} backend received weights prepared for the {prepared_by} form"
            ),
            Error::Config { msg } => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_tensor() {
        let e = Error::WidthMismatch {
            tensor: "input".into(),
            expected: 64,
            got: 65,
        };
        let msg = e.to_string();
        assert!(msg.contains("input") && msg.contains("64") && msg.contains("65"));
    }

    #[test]
    fn for_tensor_rewrites_context() {
        let e = Error::Misaligned {
            tensor: "tensor".into(),
            len: 40,
            group_size: 32,
        }
        .for_tensor("layer 3 q_proj");
        assert!(e.to_string().starts_with("layer 3 q_proj"));
        let c = Error::config("bad dims").for_tensor("model");
        assert!(c.to_string().contains("model: bad dims"));
    }
}
