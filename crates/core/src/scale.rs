//! Shared-scale computation.
//!
//! MX formats derive one power-of-two scale per group from the block
//! maximum. The paper evaluates five derivation rules (§6.4, Table 8); the
//! OCP-compliant default is `floor`: `E = ⌊log2(amax / P)⌋` with `P` the
//! largest representable power of two (4 for FP4).
//!
//! All rules are computed with exact integer/binade arithmetic (no reliance
//! on correctly-rounded `log2`), so group scales are bit-reproducible.

use m2x_formats::{Minifloat, E8M0};

/// Rule used to derive the shared exponent from the block maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleRule {
    /// OCP default: `E = ⌊log2(amax/P)⌋` (P = largest power of two, 4 for FP4).
    Floor,
    /// `E = ⌈log2(amax/M)⌉` (M = largest representable value, 6 for FP4) —
    /// guarantees no clipping.
    Ceil,
    /// `E = round(log2(amax/M))` — round-to-nearest in log space.
    Rtn1,
    /// `E = round(log2(amax/P))` — round-to-nearest in log space against P.
    Rtn2,
    /// `E = ⌊log2(round2(amax)/P)⌋` where `round2` rounds the block maximum
    /// to the nearest power of two in *value* space (ties downward).
    /// Identical to [`ScaleRule::Ceil`] when `M = 1.5 P`, which holds for
    /// FP4 (paper §6.4).
    Rtne,
}

impl ScaleRule {
    /// All rules, in the order of Table 8.
    pub const ALL: [ScaleRule; 5] = [
        ScaleRule::Floor,
        ScaleRule::Ceil,
        ScaleRule::Rtn1,
        ScaleRule::Rtn2,
        ScaleRule::Rtne,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ScaleRule::Floor => "floor",
            ScaleRule::Ceil => "ceil",
            ScaleRule::Rtn1 => "RTN1",
            ScaleRule::Rtn2 => "RTN2",
            ScaleRule::Rtne => "RTNE",
        }
    }

    /// Computes the shared exponent for a block maximum `amax` under this
    /// rule for the given element format.
    ///
    /// `amax <= 0` (an all-zero block) yields the minimum exponent so that
    /// every element quantizes to zero without special-casing.
    pub fn shared_exponent(&self, amax: f32, elem: &Minifloat) -> i32 {
        if amax <= 0.0 || !amax.is_finite() {
            return m2x_formats::e8m0::MIN_EXP;
        }
        let p_exp = exact_log2(elem.max_pow2());
        match self {
            ScaleRule::Floor => floor_log2(amax) - p_exp,
            ScaleRule::Ceil => ceil_log2_over(amax, elem.max_value()),
            ScaleRule::Rtn1 => round_log2_over(amax, elem.max_value()),
            ScaleRule::Rtn2 => round_log2_over(amax, elem.max_pow2()),
            ScaleRule::Rtne => {
                // Round amax to the nearest power of two in value space
                // (ties toward the smaller), then floor(log2(. / P)).
                let e = floor_log2(amax);
                let lo = exp2_f64(e);
                let mid = 1.5 * lo;
                let rounded_e = if (amax as f64) <= mid { e } else { e + 1 };
                rounded_e - p_exp
            }
        }
    }

    /// Computes the E8M0 shared scale (clamped to the representable range).
    pub fn shared_scale(&self, amax: f32, elem: &Minifloat) -> E8M0 {
        E8M0::from_exponent(self.shared_exponent(amax, elem))
    }
}

/// `⌊log2(a)⌋` computed exactly from the f32 bit pattern (a > 0, finite).
pub fn floor_log2(a: f32) -> i32 {
    debug_assert!(a > 0.0 && a.is_finite());
    let bits = a.to_bits();
    let exp = ((bits >> 23) & 0xFF) as i32;
    if exp != 0 {
        exp - 127
    } else {
        // Subnormal: exponent of leading mantissa bit.
        let man = bits & 0x7F_FFFF;
        -127 - (man.leading_zeros() as i32 - 9) + 1 - 1
    }
}

/// Exact `log2` of a value known to be a power of two.
fn exact_log2(p: f32) -> i32 {
    let e = floor_log2(p);
    debug_assert_eq!(exp2_f64(e) as f32, p, "{p} is not a power of two");
    e
}

fn exp2_f64(e: i32) -> f64 {
    (e as f64).exp2()
}

/// `⌈log2(a / m)⌉` via exact comparisons: the smallest k with `a <= m·2^k`.
fn ceil_log2_over(a: f32, m: f32) -> i32 {
    let a = a as f64;
    let m = m as f64;
    let mut k = (a / m).log2().ceil() as i32;
    while m * exp2_f64(k) < a {
        k += 1;
    }
    while k > i32::MIN + 1 && m * exp2_f64(k - 1) >= a {
        k -= 1;
    }
    k
}

/// `round(log2(a / m))` with exact fix-up: k minimizing `|log2(a/m) - k|`,
/// ties resolved upward (matching `f64::round` on the positive side of the
/// log axis).
fn round_log2_over(a: f32, m: f32) -> i32 {
    let a = a as f64;
    let m = m as f64;
    let mut k = (a / m).log2().round() as i32;
    // Midpoint in log space between k and k+1 is m·2^(k+0.5).
    let sqrt2 = std::f64::consts::SQRT_2;
    while a >= m * exp2_f64(k) * sqrt2 {
        k += 1;
    }
    while a < m * exp2_f64(k - 1) * sqrt2 {
        k -= 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_formats::fp4;

    #[test]
    fn floor_log2_exact_at_binades() {
        assert_eq!(floor_log2(1.0), 0);
        assert_eq!(floor_log2(2.0), 1);
        assert_eq!(floor_log2(1.9999999), 0);
        assert_eq!(floor_log2(0.5), -1);
        assert_eq!(floor_log2(0.4999999), -2);
        assert_eq!(floor_log2(6.0), 2);
        assert_eq!(floor_log2(8.0), 3);
        // Subnormals (constructed from bits; powi(-149) underflows).
        assert_eq!(floor_log2(2f32.powi(-127)), -127);
        assert_eq!(floor_log2(f32::from_bits(1)), -149);
        assert_eq!(floor_log2(f32::from_bits(0x7F_FFFF)), -127);
    }

    #[test]
    fn floor_rule_matches_ocp_formula() {
        let f = fp4();
        // amax in [4, 8) -> E = 0; [8, 16) -> 1; [2, 4) -> -1.
        assert_eq!(ScaleRule::Floor.shared_exponent(4.0, f), 0);
        assert_eq!(ScaleRule::Floor.shared_exponent(7.9, f), 0);
        assert_eq!(ScaleRule::Floor.shared_exponent(8.0, f), 1);
        assert_eq!(ScaleRule::Floor.shared_exponent(3.9, f), -1);
        assert_eq!(ScaleRule::Floor.shared_exponent(100.0, f), 4);
    }

    #[test]
    fn ceil_rule_never_clips() {
        let f = fp4();
        for i in 1..2000 {
            let amax = i as f32 * 0.013;
            let e = ScaleRule::Ceil.shared_exponent(amax, f);
            let s = (e as f64).exp2();
            assert!(
                amax as f64 <= 6.0 * s + 1e-12,
                "amax {amax} clips at scale 2^{e}"
            );
            // And the scale is tight: one step smaller would clip.
            assert!(amax as f64 > 6.0 * s / 2.0, "scale 2^{e} loose for {amax}");
        }
    }

    #[test]
    fn rtne_equals_ceil_for_fp4() {
        // Paper §6.4: RTNE and ceil coincide when M = 1.5 P.
        let f = fp4();
        for i in 1..4000 {
            let amax = i as f32 * 0.0037;
            assert_eq!(
                ScaleRule::Rtne.shared_exponent(amax, f),
                ScaleRule::Ceil.shared_exponent(amax, f),
                "amax={amax}"
            );
        }
    }

    #[test]
    fn zero_block_gets_min_exponent() {
        let f = fp4();
        for rule in ScaleRule::ALL {
            assert_eq!(rule.shared_exponent(0.0, f), m2x_formats::e8m0::MIN_EXP);
        }
    }

    #[test]
    fn rules_differ_where_expected() {
        let f = fp4();
        // amax = 5: floor -> 0 (5/4 in [1,2)), ceil -> 0 (5 <= 6), RTN2:
        // log2(5/4) = 0.32 -> 0.
        assert_eq!(ScaleRule::Floor.shared_exponent(5.0, f), 0);
        assert_eq!(ScaleRule::Ceil.shared_exponent(5.0, f), 0);
        // amax = 6.5: floor -> 0, ceil -> 1 (6.5 > 6).
        assert_eq!(ScaleRule::Floor.shared_exponent(6.5, f), 0);
        assert_eq!(ScaleRule::Ceil.shared_exponent(6.5, f), 1);
        // amax = 11: floor: 11/4 in [2,4) -> 1. RTN2: log2(2.75)=1.46 -> 1.
        // RTN1: log2(11/6)=0.87 -> 1.
        assert_eq!(ScaleRule::Floor.shared_exponent(11.0, f), 1);
        assert_eq!(ScaleRule::Rtn2.shared_exponent(11.0, f), 1);
        assert_eq!(ScaleRule::Rtn1.shared_exponent(11.0, f), 1);
        // amax = 23: floor -> 2; RTN2: log2(5.75) = 2.52 -> 3.
        assert_eq!(ScaleRule::Floor.shared_exponent(23.0, f), 2);
        assert_eq!(ScaleRule::Rtn2.shared_exponent(23.0, f), 3);
    }

    #[test]
    fn round_log2_ties() {
        let f = fp4();
        // log-space midpoint between E=0 and E=1 for RTN2 is 4·√2 ≈ 5.657.
        assert_eq!(ScaleRule::Rtn2.shared_exponent(5.65, f), 0);
        assert_eq!(ScaleRule::Rtn2.shared_exponent(5.66, f), 1);
    }

    #[test]
    fn shared_scale_clamps_to_e8m0_range() {
        let f = fp4();
        let s = ScaleRule::Floor.shared_scale(f32::MIN_POSITIVE, f);
        assert!(s.exponent() >= m2x_formats::e8m0::MIN_EXP);
        let s = ScaleRule::Floor.shared_scale(3.0e38, f);
        assert!(s.exponent() <= m2x_formats::e8m0::MAX_EXP);
    }
}
