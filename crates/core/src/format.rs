//! Packed M2XFP tensors with the three-stream memory layout of §5.2.
//!
//! An [`ActTensor`] holds activations quantized row-wise by Algorithm 1; a
//! [`WeightTensor`] holds Sg-EM-quantized weights (stored transposed,
//! `[N, K]`, so its rows run along the GEMM reduction dimension). Both can
//! be serialized to the paper's byte layout — per group: a 128-bit block of
//! packed 4-bit elements in one contiguous region, 8-bit scales in another
//! and 8-bit metadata in a third — and parsed back losslessly.

use crate::activation::{self, ActGroup};
use crate::weight::{self, WeightGroup};
use crate::M2xfpConfig;
use bytes::{BufMut, Bytes, BytesMut};
use m2x_formats::packing::{pack_nibbles, unpack_nibbles, StreamLayout};
use m2x_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error from packing/unpacking a tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutError {
    msg: String,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layout error: {}", self.msg)
    }
}

impl std::error::Error for LayoutError {}

fn check_aligned(cols: usize, cfg: &M2xfpConfig) -> Result<(), LayoutError> {
    if cols % cfg.group_size != 0 {
        return Err(LayoutError {
            msg: format!(
                "row length {cols} is not a multiple of the group size {}",
                cfg.group_size
            ),
        });
    }
    Ok(())
}

/// A matrix of activations quantized to M2XFP (Elem-EM-top1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActTensor {
    rows: usize,
    cols: usize,
    cfg: M2xfpConfig,
    groups: Vec<ActGroup>,
}

impl ActTensor {
    /// Quantizes a matrix row-wise (groups along columns).
    pub fn quantize(m: &Matrix, cfg: M2xfpConfig) -> Self {
        let gc = cfg.group_config();
        let groups = m
            .row_groups(cfg.group_size)
            .map(|g| activation::quantize_group(g, gc, cfg.scale_rule))
            .collect();
        ActTensor {
            rows: m.rows(),
            cols: m.cols(),
            cfg,
            groups,
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The configuration used at quantization time.
    pub fn config(&self) -> &M2xfpConfig {
        &self.cfg
    }

    /// The quantized groups, row-major.
    pub fn groups(&self) -> &[ActGroup] {
        &self.groups
    }

    /// Groups per row.
    pub fn groups_per_row(&self) -> usize {
        self.cols.div_ceil(self.cfg.group_size)
    }

    /// Dequantizes back to `f32`.
    pub fn dequantize(&self) -> Matrix {
        let gc = self.cfg.group_config();
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for g in &self.groups {
            data.extend(activation::dequantize_group(g, gc));
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Serializes to the three-stream layout (`elements | scales | meta`).
    ///
    /// # Errors
    ///
    /// Fails when `cols` is not a multiple of the group size (hardware
    /// layouts require aligned rows).
    pub fn pack(&self) -> Result<Bytes, LayoutError> {
        check_aligned(self.cols, &self.cfg)?;
        pack_streams(
            self.layout(),
            self.groups.iter().map(|g| (&g.codes[..], g.scale.to_bits(), &g.meta[..])),
        )
    }

    /// Parses a packed buffer produced by [`Self::pack`].
    ///
    /// # Errors
    ///
    /// Fails on misaligned shapes or a buffer of the wrong length.
    pub fn unpack(
        buf: &[u8],
        rows: usize,
        cols: usize,
        cfg: M2xfpConfig,
    ) -> Result<Self, LayoutError> {
        check_aligned(cols, &cfg)?;
        let layout = StreamLayout {
            groups: rows * (cols / cfg.group_size),
            group_size: cfg.group_size,
            elem_bits: 4,
            meta_bits_per_group: (2 * cfg.group_size / cfg.subgroup_size) as u32,
        };
        let parts = unpack_streams(buf, layout)?;
        let n_sub = cfg.group_size / cfg.subgroup_size;
        let groups = parts
            .into_iter()
            .map(|(codes, scale, meta_byte)| ActGroup {
                codes,
                scale: m2x_formats::E8M0::from_bits(scale),
                meta: (0..n_sub).map(|i| (meta_byte >> (2 * i)) as u8 & 0b11).collect(),
            })
            .collect();
        Ok(ActTensor {
            rows,
            cols,
            cfg,
            groups,
        })
    }

    fn layout(&self) -> StreamLayout {
        StreamLayout {
            groups: self.groups.len(),
            group_size: self.cfg.group_size,
            elem_bits: 4,
            meta_bits_per_group: (2 * self.cfg.group_size / self.cfg.subgroup_size) as u32,
        }
    }
}

/// A matrix of weights quantized to M2XFP (Sg-EM-2bit), stored transposed
/// (`[N, K]`): each row is one output channel, grouped along `K`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightTensor {
    rows: usize,
    cols: usize,
    cfg: M2xfpConfig,
    groups: Vec<WeightGroup>,
}

impl WeightTensor {
    /// Quantizes a (transposed) weight matrix row-wise.
    pub fn quantize(w_t: &Matrix, cfg: M2xfpConfig) -> Self {
        let gc = cfg.group_config();
        let groups = w_t
            .row_groups(cfg.group_size)
            .map(|g| weight::quantize_group(g, gc, cfg.scale_rule, cfg.adaptive_weight_scale))
            .collect();
        WeightTensor {
            rows: w_t.rows(),
            cols: w_t.cols(),
            cfg,
            groups,
        }
    }

    /// Matrix shape `(rows, cols)` = `(N, K)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The configuration used at quantization time.
    pub fn config(&self) -> &M2xfpConfig {
        &self.cfg
    }

    /// The quantized groups, row-major.
    pub fn groups(&self) -> &[WeightGroup] {
        &self.groups
    }

    /// Groups per row.
    pub fn groups_per_row(&self) -> usize {
        self.cols.div_ceil(self.cfg.group_size)
    }

    /// Dequantizes back to `f32` (still transposed).
    pub fn dequantize(&self) -> Matrix {
        let gc = self.cfg.group_config();
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for g in &self.groups {
            data.extend(weight::dequantize_group(g, gc));
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Serializes to the three-stream layout. See [`ActTensor::pack`].
    ///
    /// # Errors
    ///
    /// Fails when `cols` is not a multiple of the group size.
    pub fn pack(&self) -> Result<Bytes, LayoutError> {
        check_aligned(self.cols, &self.cfg)?;
        let layout = StreamLayout {
            groups: self.groups.len(),
            group_size: self.cfg.group_size,
            elem_bits: 4,
            meta_bits_per_group: (2 * self.cfg.group_size / self.cfg.subgroup_size) as u32,
        };
        pack_streams(
            layout,
            self.groups.iter().map(|g| (&g.codes[..], g.scale.to_bits(), &g.sg_em[..])),
        )
    }

    /// Parses a packed buffer produced by [`Self::pack`].
    ///
    /// # Errors
    ///
    /// Fails on misaligned shapes or a buffer of the wrong length.
    pub fn unpack(
        buf: &[u8],
        rows: usize,
        cols: usize,
        cfg: M2xfpConfig,
    ) -> Result<Self, LayoutError> {
        check_aligned(cols, &cfg)?;
        let layout = StreamLayout {
            groups: rows * (cols / cfg.group_size),
            group_size: cfg.group_size,
            elem_bits: 4,
            meta_bits_per_group: (2 * cfg.group_size / cfg.subgroup_size) as u32,
        };
        let parts = unpack_streams(buf, layout)?;
        let n_sub = cfg.group_size / cfg.subgroup_size;
        let groups = parts
            .into_iter()
            .map(|(codes, scale, meta_byte)| WeightGroup {
                codes,
                scale: m2x_formats::E8M0::from_bits(scale),
                sg_em: (0..n_sub).map(|i| (meta_byte >> (2 * i)) as u8 & 0b11).collect(),
            })
            .collect();
        Ok(WeightTensor {
            rows,
            cols,
            cfg,
            groups,
        })
    }
}

/// Packs groups into `elements | scales | metadata` regions. Metadata per
/// group must fit one byte (true for the production config: 4 × 2 bits).
fn pack_streams<'a>(
    layout: StreamLayout,
    groups: impl Iterator<Item = (&'a [u8], u8, &'a [u8])> + Clone,
) -> Result<Bytes, LayoutError> {
    if layout.meta_bits_per_group > 8 {
        return Err(LayoutError {
            msg: format!(
                "metadata {} bits/group exceeds the 8-bit field",
                layout.meta_bits_per_group
            ),
        });
    }
    let mut buf = BytesMut::with_capacity(layout.total_bytes());
    for (codes, _, _) in groups.clone() {
        buf.put_slice(&pack_nibbles(codes));
    }
    for (_, scale, _) in groups.clone() {
        buf.put_u8(scale);
    }
    for (_, _, meta) in groups {
        let mut b = 0u8;
        for (i, &m) in meta.iter().enumerate() {
            b |= (m & 0b11) << (2 * i);
        }
        buf.put_u8(b);
    }
    Ok(buf.freeze())
}

/// Splits a packed buffer back into per-group (codes, scale, meta-byte).
fn unpack_streams(
    buf: &[u8],
    layout: StreamLayout,
) -> Result<Vec<(Vec<u8>, u8, u8)>, LayoutError> {
    if buf.len() != layout.total_bytes() {
        return Err(LayoutError {
            msg: format!(
                "buffer is {} bytes, layout requires {}",
                buf.len(),
                layout.total_bytes()
            ),
        });
    }
    let epg = layout.elem_bytes_per_group();
    let scale_off = layout.scale_offset();
    let meta_off = layout.meta_offset();
    let mut out = Vec::with_capacity(layout.groups);
    for g in 0..layout.groups {
        let codes = unpack_nibbles(&buf[g * epg..(g + 1) * epg], layout.group_size);
        out.push((codes, buf[scale_off + g], buf[meta_off + g]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * cols + c) as f32 * 0.61).sin() * 4.0 + ((r + c) as f32 * 0.05).cos()
        })
    }

    #[test]
    fn act_roundtrip_through_pack() {
        let cfg = M2xfpConfig::default();
        let m = sample(3, 64);
        let t = ActTensor::quantize(&m, cfg);
        let packed = t.pack().unwrap();
        // 6 groups: 6·(16+1+1) bytes.
        assert_eq!(packed.len(), 108);
        let t2 = ActTensor::unpack(&packed, 3, 64, cfg).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t.dequantize(), t2.dequantize());
    }

    #[test]
    fn weight_roundtrip_through_pack() {
        let cfg = M2xfpConfig::default();
        let m = sample(4, 32);
        let t = WeightTensor::quantize(&m, cfg);
        let packed = t.pack().unwrap();
        assert_eq!(packed.len(), 4 * 18);
        let t2 = WeightTensor::unpack(&packed, 4, 32, cfg).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn pack_rejects_misaligned_rows() {
        let cfg = M2xfpConfig::default();
        let m = sample(2, 40);
        assert!(ActTensor::quantize(&m, cfg).pack().is_err());
    }

    #[test]
    fn unpack_rejects_wrong_length() {
        let cfg = M2xfpConfig::default();
        assert!(ActTensor::unpack(&[0u8; 10], 1, 32, cfg).is_err());
    }

    #[test]
    fn dequantize_matches_group_path() {
        let cfg = M2xfpConfig::default();
        let m = sample(2, 96);
        let t = ActTensor::quantize(&m, cfg);
        let dq = t.dequantize();
        let gc = cfg.group_config();
        let direct: Vec<f32> = m
            .row_groups(cfg.group_size)
            .flat_map(|g| crate::activation::fake_quantize_group(g, gc, cfg.scale_rule))
            .collect();
        assert_eq!(dq.as_slice(), &direct[..]);
    }

    #[test]
    fn footprint_is_4_5_bits_per_element() {
        let cfg = M2xfpConfig::default();
        let m = sample(8, 128);
        let t = ActTensor::quantize(&m, cfg);
        let packed = t.pack().unwrap();
        let bits_per_elem = packed.len() as f64 * 8.0 / (8.0 * 128.0);
        assert!((bits_per_elem - 4.5).abs() < 1e-12);
    }

    #[test]
    fn short_groups_still_dequantize() {
        // Unaligned shapes can't pack but must still round-trip in memory.
        let cfg = M2xfpConfig::default();
        let m = sample(2, 50);
        let t = ActTensor::quantize(&m, cfg);
        assert_eq!(t.dequantize().cols(), 50);
        let w = WeightTensor::quantize(&m, cfg);
        assert_eq!(w.dequantize().cols(), 50);
    }
}
