//! Packed M2XFP tensors with the three-stream memory layout of §5.2.
//!
//! An [`ActTensor`] holds activations quantized row-wise by Algorithm 1; a
//! [`WeightTensor`] holds Sg-EM-quantized weights (stored transposed,
//! `[N, K]`, so its rows run along the GEMM reduction dimension). Both can
//! be serialized to the paper's byte layout — per group: a 128-bit block of
//! packed 4-bit elements in one contiguous region, 8-bit scales in another
//! and 8-bit metadata in a third — and parsed back losslessly.

use crate::activation::{self, ActGroup};
use crate::weight::{self, WeightGroup};
use crate::{Error, M2xfpConfig};
use m2x_formats::packing::{
    nibble_at, pack_nibbles, pack_nibbles_into, set_two_bits, two_bits_at, unpack_nibbles,
    StreamLayout,
};
use m2x_formats::tables::FP4_VALUES;
use m2x_formats::E8M0;
use m2x_tensor::Matrix;

/// Minimum element count that justifies one additional quantization worker
/// thread: below this the scoped-thread spawn overhead outweighs the
/// per-group search work, so small tensors stay single-threaded.
const QUANT_ELEMS_PER_THREAD: usize = 1 << 17;

/// Worker count the parallel quantizers auto-select for a tensor of
/// `elems` elements: one thread per [`QUANT_ELEMS_PER_THREAD`] elements,
/// capped at the available cores, never below one.
fn quantize_threads(elems: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |t| t.get());
    avail.min(elems / QUANT_ELEMS_PER_THREAD).max(1)
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Error from packing/unpacking a tensor — an alias of the engine-wide
/// [`enum@Error`], kept so pre-unification call sites keep compiling.
pub type LayoutError = Error;

fn check_aligned(tensor: &str, cols: usize, cfg: &M2xfpConfig) -> Result<(), Error> {
    if cols % cfg.group_size != 0 {
        return Err(Error::Misaligned {
            tensor: tensor.to_string(),
            len: cols,
            group_size: cfg.group_size,
        });
    }
    Ok(())
}

/// A matrix of activations quantized to M2XFP (Elem-EM-top1).
#[derive(Debug, Clone, PartialEq)]
pub struct ActTensor {
    rows: usize,
    cols: usize,
    cfg: M2xfpConfig,
    groups: Vec<ActGroup>,
}

impl ActTensor {
    /// Quantizes a matrix row-wise (groups along columns).
    pub fn quantize(m: &Matrix, cfg: M2xfpConfig) -> Self {
        let gc = cfg.group_config();
        let groups = m
            .row_groups(cfg.group_size)
            .map(|g| activation::quantize_group(g, gc, cfg.scale_rule))
            .collect();
        ActTensor {
            rows: m.rows(),
            cols: m.cols(),
            cfg,
            groups,
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The configuration used at quantization time.
    pub fn config(&self) -> &M2xfpConfig {
        &self.cfg
    }

    /// The quantized groups, row-major.
    pub fn groups(&self) -> &[ActGroup] {
        &self.groups
    }

    /// Groups per row.
    pub fn groups_per_row(&self) -> usize {
        self.cols.div_ceil(self.cfg.group_size)
    }

    /// Dequantizes back to `f32`.
    pub fn dequantize(&self) -> Matrix {
        let gc = self.cfg.group_config();
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for g in &self.groups {
            data.extend(activation::dequantize_group(g, gc));
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Serializes to the three-stream layout (`elements | scales | meta`).
    ///
    /// # Errors
    ///
    /// Fails when `cols` is not a multiple of the group size (hardware
    /// layouts require aligned rows).
    pub fn pack(&self) -> Result<Vec<u8>, LayoutError> {
        check_aligned("activation tensor", self.cols, &self.cfg)?;
        pack_streams(
            self.layout(),
            self.groups
                .iter()
                .map(|g| (&g.codes[..], g.scale.to_bits(), &g.meta[..])),
        )
    }

    /// Parses a packed buffer produced by [`Self::pack`].
    ///
    /// # Errors
    ///
    /// Fails on misaligned shapes or a buffer of the wrong length.
    pub fn unpack(
        buf: &[u8],
        rows: usize,
        cols: usize,
        cfg: M2xfpConfig,
    ) -> Result<Self, LayoutError> {
        check_aligned("activation tensor", cols, &cfg)?;
        let layout = StreamLayout {
            groups: rows * (cols / cfg.group_size),
            group_size: cfg.group_size,
            elem_bits: 4,
            meta_bits_per_group: (2 * cfg.group_size / cfg.subgroup_size) as u32,
        };
        let parts = unpack_streams("activation tensor", buf, layout)?;
        let n_sub = cfg.group_size / cfg.subgroup_size;
        let groups = parts
            .into_iter()
            .map(|(codes, scale, meta_byte)| ActGroup {
                codes,
                scale: m2x_formats::E8M0::from_bits(scale),
                meta: (0..n_sub).map(|i| (meta_byte >> (2 * i)) & 0b11).collect(),
            })
            .collect();
        Ok(ActTensor {
            rows,
            cols,
            cfg,
            groups,
        })
    }

    fn layout(&self) -> StreamLayout {
        StreamLayout {
            groups: self.groups.len(),
            group_size: self.cfg.group_size,
            elem_bits: 4,
            meta_bits_per_group: (2 * self.cfg.group_size / self.cfg.subgroup_size) as u32,
        }
    }
}

/// A matrix of weights quantized to M2XFP (Sg-EM-2bit), stored transposed
/// (`[N, K]`): each row is one output channel, grouped along `K`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightTensor {
    rows: usize,
    cols: usize,
    cfg: M2xfpConfig,
    groups: Vec<WeightGroup>,
}

impl WeightTensor {
    /// Quantizes a (transposed) weight matrix row-wise.
    pub fn quantize(w_t: &Matrix, cfg: M2xfpConfig) -> Self {
        let gc = cfg.group_config();
        let groups = w_t
            .row_groups(cfg.group_size)
            .map(|g| weight::quantize_group(g, gc, cfg.scale_rule, cfg.adaptive_weight_scale))
            .collect();
        WeightTensor {
            rows: w_t.rows(),
            cols: w_t.cols(),
            cfg,
            groups,
        }
    }

    /// [`Self::quantize`] through the float-codec reference search
    /// ([`weight::quantize_group_reference`]) — the bit-exactness oracle
    /// for the LUT/parallel paths. Slow; use only in tests and benches.
    pub fn quantize_reference(w_t: &Matrix, cfg: M2xfpConfig) -> Self {
        let gc = cfg.group_config();
        let groups = w_t
            .row_groups(cfg.group_size)
            .map(|g| {
                weight::quantize_group_reference(g, gc, cfg.scale_rule, cfg.adaptive_weight_scale)
            })
            .collect();
        WeightTensor {
            rows: w_t.rows(),
            cols: w_t.cols(),
            cfg,
            groups,
        }
    }

    /// Matrix shape `(rows, cols)` = `(N, K)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The configuration used at quantization time.
    pub fn config(&self) -> &M2xfpConfig {
        &self.cfg
    }

    /// The quantized groups, row-major.
    pub fn groups(&self) -> &[WeightGroup] {
        &self.groups
    }

    /// Groups per row.
    pub fn groups_per_row(&self) -> usize {
        self.cols.div_ceil(self.cfg.group_size)
    }

    /// Dequantizes back to `f32` (still transposed).
    pub fn dequantize(&self) -> Matrix {
        let gc = self.cfg.group_config();
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for g in &self.groups {
            data.extend(weight::dequantize_group(g, gc));
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Serializes to the three-stream layout. See [`ActTensor::pack`].
    ///
    /// # Errors
    ///
    /// Fails when `cols` is not a multiple of the group size.
    pub fn pack(&self) -> Result<Vec<u8>, LayoutError> {
        check_aligned("weight tensor", self.cols, &self.cfg)?;
        let layout = StreamLayout {
            groups: self.groups.len(),
            group_size: self.cfg.group_size,
            elem_bits: 4,
            meta_bits_per_group: (2 * self.cfg.group_size / self.cfg.subgroup_size) as u32,
        };
        pack_streams(
            layout,
            self.groups
                .iter()
                .map(|g| (&g.codes[..], g.scale.to_bits(), &g.sg_em[..])),
        )
    }

    /// Appends another tensor's groups below the existing rows (used by the
    /// execution backends to grow a prepared grouped form in O(new rows)).
    /// Groups quantize independently, so the result equals quantizing the
    /// row-concatenated matrix.
    pub(crate) fn append_tensor(&mut self, other: WeightTensor) {
        assert_eq!(
            self.cols, other.cols,
            "appended rows have a different width"
        );
        assert_eq!(self.cfg, other.cfg, "appended rows use a different config");
        self.groups.extend(other.groups);
        self.rows += other.rows;
    }

    /// Drops all rows while keeping the group allocation — the grouped-form
    /// counterpart of [`PackedWeightTensor::clear_rows`] for recycled KV
    /// page frames.
    pub(crate) fn clear_rows(&mut self) {
        self.groups.clear();
        self.rows = 0;
    }

    /// Parses a packed buffer produced by [`Self::pack`].
    ///
    /// # Errors
    ///
    /// Fails on misaligned shapes or a buffer of the wrong length.
    pub fn unpack(
        buf: &[u8],
        rows: usize,
        cols: usize,
        cfg: M2xfpConfig,
    ) -> Result<Self, LayoutError> {
        check_aligned("weight tensor", cols, &cfg)?;
        let layout = StreamLayout {
            groups: rows * (cols / cfg.group_size),
            group_size: cfg.group_size,
            elem_bits: 4,
            meta_bits_per_group: (2 * cfg.group_size / cfg.subgroup_size) as u32,
        };
        let parts = unpack_streams("weight tensor", buf, layout)?;
        let n_sub = cfg.group_size / cfg.subgroup_size;
        let groups = parts
            .into_iter()
            .map(|(codes, scale, meta_byte)| WeightGroup {
                codes,
                scale: m2x_formats::E8M0::from_bits(scale),
                sg_em: (0..n_sub).map(|i| (meta_byte >> (2 * i)) & 0b11).collect(),
            })
            .collect();
        Ok(WeightTensor {
            rows,
            cols,
            cfg,
            groups,
        })
    }
}

/// Flat three-stream storage shared by [`PackedActTensor`] and
/// [`PackedWeightTensor`]: one nibble-packed code buffer, one scale byte per
/// group, one 2-bit metadata field per subgroup — the actual §5.2 memory
/// layout, structure-of-arrays instead of a `Vec` of per-group structs.
///
/// Groups are stored row-major. Every group occupies a fixed
/// `group_size/2`-byte slot in the code stream and `subgroups_per_group`
/// 2-bit slots in the metadata stream; a ragged trailing group leaves its
/// slack nibbles/fields zero (code 0 is +0, which keeps decoder-side top-1
/// searches identical to the encoder's, since ties resolve to the lowest
/// index).
#[derive(Debug, Clone, PartialEq)]
struct PackedStreams {
    rows: usize,
    cols: usize,
    cfg: M2xfpConfig,
    codes: Vec<u8>,
    scales: Vec<u8>,
    meta: Vec<u8>,
}

impl PackedStreams {
    /// Sequential quantization — [`Self::quantize_parallel`] with one
    /// worker (no thread spawn).
    fn quantize(
        m: &Matrix,
        cfg: M2xfpConfig,
        encode: impl Fn(&[f32], &mut [u8], &mut [u8]) -> E8M0 + Sync,
    ) -> Self {
        Self::quantize_parallel(m, cfg, 1, encode)
    }

    /// Quantizes straight into the three streams with `threads` scoped
    /// workers, each owning a contiguous, disjoint run of groups.
    ///
    /// Every worker writes its own sub-slices of the code, scale and
    /// metadata streams (split with `split_at_mut`, so no synchronization
    /// and no `unsafe`), with one scratch pair per worker — the per-group
    /// encode loop stays allocation-free. Chunk boundaries are aligned so
    /// each worker's 2-bit metadata run starts on a byte boundary; output
    /// bytes are identical for every thread count because each group is
    /// encoded independently and deterministically.
    fn quantize_parallel(
        m: &Matrix,
        cfg: M2xfpConfig,
        threads: usize,
        encode: impl Fn(&[f32], &mut [u8], &mut [u8]) -> E8M0 + Sync,
    ) -> Self {
        let gs = cfg.group_size;
        let sgs = cfg.subgroup_size;
        let gpr = m.cols().div_ceil(gs);
        let groups = m.rows() * gpr;
        let cpg = gs.div_ceil(2);
        let spg = gs / sgs;
        let mut codes = vec![0u8; groups * cpg];
        let mut scales = vec![0u8; groups];
        let mut meta = vec![0u8; (groups * spg * 2).div_ceil(8)];

        // One worker: encodes groups [g0, g0 + n) into chunk-local slices
        // (`scales` carries the chunk length).
        let work = |g0: usize, codes: &mut [u8], scales: &mut [u8], meta: &mut [u8]| {
            let mut code_scratch = vec![0u8; gs];
            let mut meta_scratch = vec![0u8; spg];
            for lg in 0..scales.len() {
                let g = g0 + lg;
                let row = m.row(g / gpr);
                let j = g % gpr;
                let x = &row[j * gs..row.len().min((j + 1) * gs)];
                let nsub = x.len().div_ceil(sgs);
                let scale = encode(x, &mut code_scratch[..x.len()], &mut meta_scratch[..nsub]);
                scales[lg] = scale.to_bits();
                pack_nibbles_into(
                    &code_scratch[..x.len()],
                    &mut codes[lg * cpg..(lg + 1) * cpg],
                );
                for (jj, &mv) in meta_scratch[..nsub].iter().enumerate() {
                    set_two_bits(meta, lg * spg + jj, mv);
                }
            }
        };

        let threads = threads.max(1).min(groups.max(1));
        if threads <= 1 {
            work(0, &mut codes, &mut scales, &mut meta);
        } else {
            // Smallest chunk granularity whose metadata run is whole bytes:
            // `align` groups span `align·spg` 2-bit fields.
            let align = 4 / gcd(spg, 4);
            let per = groups.div_ceil(threads).div_ceil(align) * align;
            std::thread::scope(|s| {
                let work = &work;
                let mut crem: &mut [u8] = &mut codes;
                let mut srem: &mut [u8] = &mut scales;
                let mut mrem: &mut [u8] = &mut meta;
                let mut g0 = 0usize;
                while g0 < groups {
                    let g1 = (g0 + per).min(groups);
                    let ng = g1 - g0;
                    let (c, cr) = crem.split_at_mut(ng * cpg);
                    crem = cr;
                    let (sc, sr) = srem.split_at_mut(ng);
                    srem = sr;
                    let mbytes = if g1 == groups {
                        mrem.len()
                    } else {
                        ng * spg * 2 / 8
                    };
                    let (mt, mr) = mrem.split_at_mut(mbytes);
                    mrem = mr;
                    s.spawn(move || work(g0, c, sc, mt));
                    g0 = g1;
                }
            });
        }
        PackedStreams {
            rows: m.rows(),
            cols: m.cols(),
            cfg,
            codes,
            scales,
            meta,
        }
    }

    fn from_groups<'a>(
        rows: usize,
        cols: usize,
        cfg: M2xfpConfig,
        groups: impl Iterator<Item = (&'a [u8], E8M0, &'a [u8])>,
    ) -> Self {
        let gs = cfg.group_size;
        let gpr = cols.div_ceil(gs);
        let ngroups = rows * gpr;
        let cpg = gs.div_ceil(2);
        let spg = gs / cfg.subgroup_size;
        let mut codes = vec![0u8; ngroups * cpg];
        let mut scales = vec![0u8; ngroups];
        let mut meta = vec![0u8; (ngroups * spg * 2).div_ceil(8)];
        let mut count = 0usize;
        for (g, (gcodes, scale, gmeta)) in groups.enumerate() {
            scales[g] = scale.to_bits();
            pack_nibbles_into(gcodes, &mut codes[g * cpg..(g + 1) * cpg]);
            for (j, &mv) in gmeta.iter().enumerate() {
                set_two_bits(&mut meta, g * spg + j, mv);
            }
            count += 1;
        }
        assert_eq!(count, ngroups, "group count does not match the shape");
        PackedStreams {
            rows,
            cols,
            cfg,
            codes,
            scales,
            meta,
        }
    }

    fn groups_per_row(&self) -> usize {
        self.cols.div_ceil(self.cfg.group_size)
    }

    fn group_count(&self) -> usize {
        self.rows * self.groups_per_row()
    }

    /// Elements in group `g` (short for a ragged trailing group).
    fn group_len(&self, g: usize) -> usize {
        let gs = self.cfg.group_size;
        let gpr = self.groups_per_row();
        let tail = self.cols - (gpr - 1) * gs;
        if g % gpr == gpr - 1 {
            tail
        } else {
            gs
        }
    }

    fn code_at(&self, g: usize, i: usize) -> u8 {
        let cpg = self.cfg.group_size.div_ceil(2);
        nibble_at(&self.codes, g * cpg * 2 + i)
    }

    fn meta_at(&self, g: usize, sg: usize) -> u8 {
        let spg = self.cfg.group_size / self.cfg.subgroup_size;
        two_bits_at(&self.meta, g * spg + sg)
    }

    fn scale_at(&self, g: usize) -> E8M0 {
        E8M0::from_bits(self.scales[g])
    }

    /// Appends another stream set's groups below the existing rows. Both
    /// sides must share `cols` and the configuration; groups quantize
    /// independently, so the result is byte-identical to quantizing the
    /// row-concatenated matrix in one pass.
    fn append(&mut self, more: PackedStreams) {
        assert_eq!(self.cols, more.cols, "appended rows have a different width");
        assert_eq!(self.cfg, more.cfg, "appended rows use a different config");
        let spg = self.cfg.group_size / self.cfg.subgroup_size;
        let old_groups = self.group_count();
        let add_groups = more.group_count();
        self.codes.extend_from_slice(&more.codes);
        self.scales.extend_from_slice(&more.scales);
        if (old_groups * spg) % 4 == 0 {
            // The existing metadata run ends on a byte boundary (always
            // true for the production 4-subgroup config): bytes concatenate.
            self.meta.extend_from_slice(&more.meta);
        } else {
            // Odd 2-bit offset: re-pack the appended fields bitwise.
            let new_len = ((old_groups + add_groups) * spg * 2).div_ceil(8);
            self.meta.resize(new_len, 0);
            for i in 0..add_groups * spg {
                set_two_bits(
                    &mut self.meta,
                    old_groups * spg + i,
                    two_bits_at(&more.meta, i),
                );
            }
        }
        self.rows += more.rows;
    }

    /// Drops all rows while keeping the three stream allocations — the
    /// page-frame reuse pattern. A cleared stream set compares equal to a
    /// freshly quantized empty matrix (equality ignores capacity), so a
    /// recycled buffer is indistinguishable from a new one.
    fn clear_rows(&mut self) {
        self.codes.clear();
        self.scales.clear();
        self.meta.clear();
        self.rows = 0;
    }
}

macro_rules! packed_accessors {
    () => {
        /// Matrix shape `(rows, cols)`.
        pub fn shape(&self) -> (usize, usize) {
            (self.s.rows, self.s.cols)
        }

        /// The configuration used at quantization time.
        pub fn config(&self) -> &M2xfpConfig {
            &self.s.cfg
        }

        /// Groups per row.
        pub fn groups_per_row(&self) -> usize {
            self.s.groups_per_row()
        }

        /// Total number of groups.
        pub fn group_count(&self) -> usize {
            self.s.group_count()
        }

        /// Elements in group `g` (short for a ragged trailing group).
        pub fn group_len(&self, g: usize) -> usize {
            self.s.group_len(g)
        }

        /// The nibble-packed FP4 code stream (`group_size/2` bytes per
        /// group, slack nibbles zero).
        pub fn codes(&self) -> &[u8] {
            &self.s.codes
        }

        /// The E8M0 scale stream (one byte per group).
        pub fn scales(&self) -> &[u8] {
            &self.s.scales
        }

        /// The 2-bit metadata stream (one field per subgroup, LSB-first).
        pub fn meta(&self) -> &[u8] {
            &self.s.meta
        }

        /// FP4 code of element `i` of group `g`.
        pub fn code_at(&self, g: usize, i: usize) -> u8 {
            self.s.code_at(g, i)
        }

        /// 2-bit metadata of subgroup `sg` of group `g`.
        pub fn meta_at(&self, g: usize, sg: usize) -> u8 {
            self.s.meta_at(g, sg)
        }

        /// Shared scale of group `g`.
        pub fn group_scale(&self, g: usize) -> E8M0 {
            self.s.scale_at(g)
        }

        /// Total packed footprint in bytes across the three streams.
        pub fn packed_bytes(&self) -> usize {
            self.s.codes.len() + self.s.scales.len() + self.s.meta.len()
        }
    };
}

/// Activations in the flat three-stream layout (§5.2): the representation
/// [`crate::gemm::qgemm_packed`] consumes directly.
///
/// Unlike [`ActTensor`] (a `Vec` of heap-allocated per-group structs kept
/// for interop and the streaming-engine model), this type holds exactly
/// three contiguous buffers and quantizes through the allocation-free
/// [`activation::quantize_group_into`].
#[derive(Debug, Clone, PartialEq)]
pub struct PackedActTensor {
    s: PackedStreams,
}

impl PackedActTensor {
    /// Quantizes a matrix row-wise (Algorithm 1) straight into the packed
    /// streams — no per-group heap allocation.
    pub fn quantize(m: &Matrix, cfg: M2xfpConfig) -> Self {
        let gc = cfg.group_config();
        PackedActTensor {
            s: PackedStreams::quantize(m, cfg, |x, codes, meta| {
                activation::quantize_group_into(x, gc, cfg.scale_rule, codes, meta)
            }),
        }
    }

    /// [`Self::quantize`] fanned out over scoped worker threads (auto
    /// worker count, same policy as
    /// [`PackedWeightTensor::quantize_parallel`]); byte-identical output
    /// for every thread count.
    pub fn quantize_parallel(m: &Matrix, cfg: M2xfpConfig) -> Self {
        let gc = cfg.group_config();
        PackedActTensor {
            s: PackedStreams::quantize_parallel(
                m,
                cfg,
                quantize_threads(m.len()),
                |x, codes, meta| {
                    activation::quantize_group_into(x, gc, cfg.scale_rule, codes, meta)
                },
            ),
        }
    }

    packed_accessors!();

    /// Converts the grouped representation into packed streams.
    pub fn from_grouped(t: &ActTensor) -> Self {
        let (rows, cols) = t.shape();
        PackedActTensor {
            s: PackedStreams::from_groups(
                rows,
                cols,
                *t.config(),
                t.groups()
                    .iter()
                    .map(|g| (&g.codes[..], g.scale, &g.meta[..])),
            ),
        }
    }

    /// Expands the packed streams back into the grouped representation.
    pub fn to_grouped(&self) -> ActTensor {
        let sgs = self.s.cfg.subgroup_size;
        let groups = (0..self.group_count())
            .map(|g| {
                let len = self.group_len(g);
                ActGroup {
                    codes: (0..len).map(|i| self.code_at(g, i)).collect(),
                    scale: self.group_scale(g),
                    meta: (0..len.div_ceil(sgs)).map(|j| self.meta_at(g, j)).collect(),
                }
            })
            .collect();
        ActTensor {
            rows: self.s.rows,
            cols: self.s.cols,
            cfg: self.s.cfg,
            groups,
        }
    }

    /// Dequantizes back to `f32`.
    pub fn dequantize(&self) -> Matrix {
        self.to_grouped().dequantize()
    }
}

/// Weights in the flat three-stream layout (§5.2), stored transposed
/// (`[N, K]`) like [`WeightTensor`]. The metadata stream holds the 2-bit
/// Sg-EM multiplier codes.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedWeightTensor {
    s: PackedStreams,
}

impl PackedWeightTensor {
    /// Quantizes a (transposed) weight matrix row-wise straight into the
    /// packed streams — no per-group heap allocation, single-threaded.
    pub fn quantize(w_t: &Matrix, cfg: M2xfpConfig) -> Self {
        Self::quantize_parallel_threaded(w_t, cfg, 1)
    }

    /// The production offline weight-quantization entry point: the
    /// integer-LUT Sg-EM search ([`weight::quantize_group_into`]) fanned
    /// out over scoped worker threads, encoding straight into the three
    /// streams with no intermediate [`WeightGroup`].
    ///
    /// The worker count scales with the tensor size (small tensors stay
    /// single-threaded to avoid spawn overhead) and is capped at the
    /// available cores. Output is byte-identical for every thread count
    /// and bit-identical to the legacy float search
    /// ([`WeightTensor::quantize_reference`]), which the property tests
    /// assert.
    pub fn quantize_parallel(w_t: &Matrix, cfg: M2xfpConfig) -> Self {
        Self::quantize_parallel_threaded(w_t, cfg, quantize_threads(w_t.len()))
    }

    /// [`Self::quantize_parallel`] with an explicit worker count.
    pub fn quantize_parallel_threaded(w_t: &Matrix, cfg: M2xfpConfig, threads: usize) -> Self {
        let gc = cfg.group_config();
        PackedWeightTensor {
            s: PackedStreams::quantize_parallel(w_t, cfg, threads, |w, codes, sg_em| {
                weight::quantize_group_into(
                    w,
                    gc,
                    cfg.scale_rule,
                    cfg.adaptive_weight_scale,
                    codes,
                    sg_em,
                )
            }),
        }
    }

    /// An empty tensor (zero rows) of the given width — the seed state of a
    /// growable store such as a KV cache; fill it with [`Self::append_rows`].
    pub fn empty(cols: usize, cfg: M2xfpConfig) -> Self {
        Self::quantize(&Matrix::zeros(0, cols), cfg)
    }

    /// Quantizes `rows` (same width) and appends them below the existing
    /// rows — the incremental entry point behind the KV cache: each row
    /// quantizes independently, so the streams stay byte-identical to
    /// quantizing the full row-concatenated matrix in one pass (asserted by
    /// the tests).
    ///
    /// # Errors
    ///
    /// Fails when `rows.cols()` differs from this tensor's width.
    pub fn append_rows(&mut self, rows: &Matrix) -> Result<(), Error> {
        if rows.cols() != self.s.cols {
            return Err(Error::WidthMismatch {
                tensor: "packed weight tensor".to_string(),
                expected: self.s.cols,
                got: rows.cols(),
            });
        }
        let add = PackedWeightTensor::quantize_parallel(rows, self.s.cfg);
        self.s.append(add.s);
        Ok(())
    }

    /// Appends rows that are **already quantized** (same width and config)
    /// below the existing rows — the zero-requantization half of
    /// [`Self::append_rows`], for callers that quantized the delta once and
    /// reuse it in several places (e.g. the KV cache appending the same
    /// token rows into the packed store and a decoded execution plane).
    ///
    /// # Errors
    ///
    /// Fails on a width or configuration mismatch.
    pub fn append_packed(&mut self, other: PackedWeightTensor) -> Result<(), Error> {
        if other.s.cols != self.s.cols {
            return Err(Error::WidthMismatch {
                tensor: "packed weight tensor".to_string(),
                expected: self.s.cols,
                got: other.s.cols,
            });
        }
        if other.s.cfg != self.s.cfg {
            return Err(Error::config(
                "appended packed rows were quantized with a different config",
            ));
        }
        self.s.append(other.s);
        Ok(())
    }

    /// Drops all rows while keeping the stream allocations — the KV
    /// page-frame recycling path. The cleared tensor equals
    /// [`Self::empty`] of the same width, so a reused frame can leave no
    /// trace of its previous occupant.
    pub fn clear_rows(&mut self) {
        self.s.clear_rows();
    }

    packed_accessors!();

    /// Converts the grouped representation into packed streams.
    pub fn from_grouped(t: &WeightTensor) -> Self {
        let (rows, cols) = t.shape();
        PackedWeightTensor {
            s: PackedStreams::from_groups(
                rows,
                cols,
                *t.config(),
                t.groups()
                    .iter()
                    .map(|g| (&g.codes[..], g.scale, &g.sg_em[..])),
            ),
        }
    }

    /// Expands the packed streams back into the grouped representation.
    pub fn to_grouped(&self) -> WeightTensor {
        let sgs = self.s.cfg.subgroup_size;
        let groups = (0..self.group_count())
            .map(|g| {
                let len = self.group_len(g);
                WeightGroup {
                    codes: (0..len).map(|i| self.code_at(g, i)).collect(),
                    scale: self.group_scale(g),
                    sg_em: (0..len.div_ceil(sgs)).map(|j| self.meta_at(g, j)).collect(),
                }
            })
            .collect();
        WeightTensor {
            rows: self.s.rows,
            cols: self.s.cols,
            cfg: self.s.cfg,
            groups,
        }
    }

    /// Dequantizes back to `f32` (still transposed), walking the packed
    /// streams directly — bit-identical to the grouped
    /// [`WeightTensor::dequantize`], without reconstructing per-group
    /// structs.
    pub fn dequantize(&self) -> Matrix {
        let gs = self.s.cfg.group_size;
        let sgs = self.s.cfg.subgroup_size;
        let gpr = self.groups_per_row();
        let mut data = vec![0.0f32; self.s.rows * self.s.cols];
        for g in 0..self.group_count() {
            let len = self.group_len(g);
            let scale = self.group_scale(g).value();
            let base = (g / gpr) * self.s.cols + (g % gpr) * gs;
            for sg in 0..len.div_ceil(sgs) {
                let eff = weight::SG_MULTIPLIERS[self.meta_at(g, sg) as usize] * scale;
                for i in sg * sgs..len.min((sg + 1) * sgs) {
                    data[base + i] = FP4_VALUES[self.code_at(g, i) as usize] * eff;
                }
            }
        }
        Matrix::from_vec(self.s.rows, self.s.cols, data)
    }
}

/// Packs groups into `elements | scales | metadata` regions. Metadata per
/// group must fit one byte (true for the production config: 4 × 2 bits).
fn pack_streams<'a>(
    layout: StreamLayout,
    groups: impl Iterator<Item = (&'a [u8], u8, &'a [u8])> + Clone,
) -> Result<Vec<u8>, LayoutError> {
    if layout.meta_bits_per_group > 8 {
        return Err(Error::MetaOverflow {
            bits: layout.meta_bits_per_group,
        });
    }
    let mut buf = Vec::with_capacity(layout.total_bytes());
    for (codes, _, _) in groups.clone() {
        buf.extend_from_slice(&pack_nibbles(codes));
    }
    for (_, scale, _) in groups.clone() {
        buf.push(scale);
    }
    for (_, _, meta) in groups {
        let mut b = 0u8;
        for (i, &m) in meta.iter().enumerate() {
            b |= (m & 0b11) << (2 * i);
        }
        buf.push(b);
    }
    Ok(buf)
}

/// Splits a packed buffer back into per-group (codes, scale, meta-byte).
fn unpack_streams(
    tensor: &str,
    buf: &[u8],
    layout: StreamLayout,
) -> Result<Vec<(Vec<u8>, u8, u8)>, LayoutError> {
    if buf.len() != layout.total_bytes() {
        return Err(Error::BufferLength {
            tensor: tensor.to_string(),
            expected: layout.total_bytes(),
            got: buf.len(),
        });
    }
    let epg = layout.elem_bytes_per_group();
    let scale_off = layout.scale_offset();
    let meta_off = layout.meta_offset();
    let mut out = Vec::with_capacity(layout.groups);
    for g in 0..layout.groups {
        let codes = unpack_nibbles(&buf[g * epg..(g + 1) * epg], layout.group_size);
        out.push((codes, buf[scale_off + g], buf[meta_off + g]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * cols + c) as f32 * 0.61).sin() * 4.0 + ((r + c) as f32 * 0.05).cos()
        })
    }

    #[test]
    fn act_roundtrip_through_pack() {
        let cfg = M2xfpConfig::default();
        let m = sample(3, 64);
        let t = ActTensor::quantize(&m, cfg);
        let packed = t.pack().unwrap();
        // 6 groups: 6·(16+1+1) bytes.
        assert_eq!(packed.len(), 108);
        let t2 = ActTensor::unpack(&packed, 3, 64, cfg).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t.dequantize(), t2.dequantize());
    }

    #[test]
    fn weight_roundtrip_through_pack() {
        let cfg = M2xfpConfig::default();
        let m = sample(4, 32);
        let t = WeightTensor::quantize(&m, cfg);
        let packed = t.pack().unwrap();
        assert_eq!(packed.len(), 4 * 18);
        let t2 = WeightTensor::unpack(&packed, 4, 32, cfg).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn pack_rejects_misaligned_rows() {
        let cfg = M2xfpConfig::default();
        let m = sample(2, 40);
        assert!(ActTensor::quantize(&m, cfg).pack().is_err());
    }

    #[test]
    fn unpack_rejects_wrong_length() {
        let cfg = M2xfpConfig::default();
        assert!(ActTensor::unpack(&[0u8; 10], 1, 32, cfg).is_err());
    }

    #[test]
    fn dequantize_matches_group_path() {
        let cfg = M2xfpConfig::default();
        let m = sample(2, 96);
        let t = ActTensor::quantize(&m, cfg);
        let dq = t.dequantize();
        let gc = cfg.group_config();
        let direct: Vec<f32> = m
            .row_groups(cfg.group_size)
            .flat_map(|g| crate::activation::fake_quantize_group(g, gc, cfg.scale_rule))
            .collect();
        assert_eq!(dq.as_slice(), &direct[..]);
    }

    #[test]
    fn footprint_is_4_5_bits_per_element() {
        let cfg = M2xfpConfig::default();
        let m = sample(8, 128);
        let t = ActTensor::quantize(&m, cfg);
        let packed = t.pack().unwrap();
        let bits_per_elem = packed.len() as f64 * 8.0 / (8.0 * 128.0);
        assert!((bits_per_elem - 4.5).abs() < 1e-12);
    }

    #[test]
    fn packed_act_matches_grouped_path() {
        let cfg = M2xfpConfig::default();
        for cols in [32, 64, 96, 50, 70] {
            let m = sample(3, cols);
            let grouped = ActTensor::quantize(&m, cfg);
            let packed = PackedActTensor::quantize(&m, cfg);
            assert_eq!(
                PackedActTensor::from_grouped(&grouped),
                packed,
                "cols={cols}"
            );
            assert_eq!(packed.to_grouped(), grouped, "cols={cols}");
            assert_eq!(packed.dequantize(), grouped.dequantize(), "cols={cols}");
        }
    }

    #[test]
    fn packed_weight_matches_grouped_path() {
        let cfg = M2xfpConfig::default();
        for cols in [32, 96, 41] {
            let m = sample(4, cols);
            let grouped = WeightTensor::quantize(&m, cfg);
            let packed = PackedWeightTensor::quantize(&m, cfg);
            assert_eq!(PackedWeightTensor::from_grouped(&grouped), packed);
            assert_eq!(packed.to_grouped(), grouped, "cols={cols}");
            assert_eq!(packed.dequantize(), grouped.dequantize(), "cols={cols}");
        }
    }

    #[test]
    fn parallel_weight_search_identical_across_threads_and_oracle() {
        // The threaded LUT search must be byte-identical to the float-codec
        // oracle for every thread count, including ragged trailing groups
        // and subgroup sizes whose metadata runs are not byte-aligned per
        // group (spg = 2 → 4 bits/group).
        for cfg in [
            M2xfpConfig::default(),
            M2xfpConfig {
                subgroup_size: 16,
                ..M2xfpConfig::default()
            },
            M2xfpConfig {
                adaptive_weight_scale: false,
                ..M2xfpConfig::default()
            },
        ] {
            for cols in [32, 96, 41] {
                let m = sample(5, cols);
                let oracle =
                    PackedWeightTensor::from_grouped(&WeightTensor::quantize_reference(&m, cfg));
                for threads in [1, 2, 3, 8] {
                    let p = PackedWeightTensor::quantize_parallel_threaded(&m, cfg, threads);
                    assert_eq!(p, oracle, "cols={cols} threads={threads}");
                }
                assert_eq!(PackedWeightTensor::quantize_parallel(&m, cfg), oracle);
            }
        }
    }

    #[test]
    fn parallel_act_quantize_matches_sequential() {
        let cfg = M2xfpConfig::default();
        for cols in [32, 64, 45] {
            let m = sample(7, cols);
            let seq = PackedActTensor::quantize(&m, cfg);
            assert_eq!(PackedActTensor::quantize_parallel(&m, cfg), seq, "{cols}");
        }
    }

    #[test]
    fn packed_weight_direct_dequantize_matches_grouped() {
        let cfg = M2xfpConfig::default();
        for cols in [32, 41, 96] {
            let m = sample(3, cols);
            let p = PackedWeightTensor::quantize_parallel(&m, cfg);
            let grouped = p.to_grouped().dequantize();
            let direct = p.dequantize();
            for (a, b) in direct.as_slice().iter().zip(grouped.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "cols={cols}");
            }
        }
    }

    #[test]
    fn append_rows_matches_one_shot_quantization() {
        // Incremental growth (the KV-cache pattern) must be byte-identical
        // to quantizing the concatenated matrix, including configurations
        // whose per-group metadata run is not byte-aligned (spg = 2).
        for cfg in [
            M2xfpConfig::default(),
            M2xfpConfig {
                subgroup_size: 16,
                ..M2xfpConfig::default()
            },
        ] {
            let full = sample(7, 32);
            let want = PackedWeightTensor::quantize(&full, cfg);
            let mut grown = PackedWeightTensor::empty(32, cfg);
            for chunk in [1usize, 2, 1, 3] {
                let start = grown.shape().0;
                let rows = Matrix::from_fn(chunk, 32, |r, c| full[(start + r, c)]);
                grown.append_rows(&rows).unwrap();
            }
            assert_eq!(grown, want, "sg={}", cfg.subgroup_size);
            assert!(grown.append_rows(&Matrix::zeros(1, 33)).is_err());
        }
    }

    #[test]
    fn packed_streams_have_paper_footprint() {
        // Aligned shapes: 16 B codes + 1 B scale + 1 B meta per group of 32.
        let cfg = M2xfpConfig::default();
        let t = PackedActTensor::quantize(&sample(8, 128), cfg);
        assert_eq!(t.codes().len(), 8 * 4 * 16);
        assert_eq!(t.scales().len(), 8 * 4);
        assert_eq!(t.meta().len(), 8 * 4);
        let bits = t.packed_bytes() as f64 * 8.0 / (8.0 * 128.0);
        assert!((bits - 4.5).abs() < 1e-12);
    }

    #[test]
    fn packed_ragged_trailing_group_roundtrips() {
        let cfg = M2xfpConfig::default();
        let m = sample(2, 45); // 32 + 13 per row
        let t = PackedActTensor::quantize(&m, cfg);
        assert_eq!(t.group_len(0), 32);
        assert_eq!(t.group_len(1), 13);
        assert_eq!(t.to_grouped(), ActTensor::quantize(&m, cfg));
        // Slack nibbles of the ragged group stay zero.
        for i in 13..32 {
            assert_eq!(t.code_at(1, i), 0);
        }
    }

    #[test]
    fn short_groups_still_dequantize() {
        // Unaligned shapes can't pack but must still round-trip in memory.
        let cfg = M2xfpConfig::default();
        let m = sample(2, 50);
        let t = ActTensor::quantize(&m, cfg);
        assert_eq!(t.dequantize().cols(), 50);
        let w = WeightTensor::quantize(&m, cfg);
        assert_eq!(w.dequantize().cols(), 50);
    }
}
