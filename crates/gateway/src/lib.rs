//! `m2x-gateway` — std-only streaming HTTP/1.1 front-end over the
//! [`m2x_serve`] continuous-batching scheduler.
//!
//! The gateway puts a wire protocol on the fault-tolerant serving
//! runtime without adding a single dependency: a [`std::net::TcpListener`]
//! accept loop feeds a fixed worker pool, each worker speaks hand-rolled
//! HTTP/1.1 (incremental bounded parsing, keep-alive, pipelining,
//! `Expect: 100-continue`), and generation responses stream one SSE
//! `data:` frame per decode step over chunked transfer encoding — flushed
//! as the engine produces them, so the client sees tokens at decode
//! latency, not request latency.
//!
//! Three endpoints (full schemas in `docs/HTTP_API.md`):
//!
//! | Endpoint | What it does |
//! |---|---|
//! | `POST /v1/generate` | Submit a prompt, stream decode tokens as SSE |
//! | `GET /metrics` | Scheduler + gateway counters, text format |
//! | `GET /healthz` | Liveness of the engine thread |
//!
//! Every typed [`RequestOutcome`] and [`ServeError`] maps onto a
//! deliberate status code ([`outcome_status`], [`serve_error_status`]) —
//! admission-control rejections are `429` with the observed queue depth,
//! deadline expiries are `504`, panic-isolated failures are `500`, and a
//! client that disconnects mid-stream gets its request [`Server::cancel`]ed
//! so abandoned work never occupies a batch slot.
//!
//! The serving layer's bit-identity invariant extends through the socket:
//! the token rows a client reassembles from the SSE frames are
//! bit-identical to [`run_solo`](m2x_serve::run_solo) for the same prompt,
//! because activations are serialized as shortest-round-trip decimals
//! ([`json::f32_repr`]) and recovered exactly by an f64 parse + f32 cast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;

use m2x_serve::sync::lock_poisoned;
use m2x_serve::{RequestOptions, RequestOutcome, ServeError, Server, StreamEvent};
use m2x_tensor::Matrix;

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

pub use http::Limits;
pub use json::Json;

/// Configuration of a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Address to bind; port `0` picks a free port (see
    /// [`Gateway::local_addr`]).
    pub addr: String,
    /// Connection worker threads (each handles one connection at a time;
    /// a long-lived token stream occupies its worker for its duration).
    pub workers: usize,
    /// HTTP parser bounds (header/body size caps).
    pub limits: Limits,
    /// Per-read socket timeout while waiting for request bytes; a
    /// connection idle longer than this between requests is dropped.
    pub read_timeout: Duration,
    /// Upper bound accepted for `max_tokens`; larger asks are rejected
    /// with `400` before touching the scheduler.
    pub max_decode_steps: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(10),
            max_decode_steps: 4096,
        }
    }
}

/// Monotonic gateway-level counters, snapshot via [`Gateway::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// TCP connections accepted.
    pub connections: u64,
    /// HTTP requests fully parsed and routed (any endpoint).
    pub requests: u64,
    /// Generation requests that opened an SSE token stream.
    pub streams_opened: u64,
    /// Streams whose client vanished mid-flight (each triggered a
    /// [`Server::cancel`]).
    pub client_disconnects: u64,
    /// Requests rejected by the HTTP parser or validation (4xx).
    pub bad_requests: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    streams_opened: AtomicU64,
    client_disconnects: AtomicU64,
    bad_requests: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> GatewayStats {
        GatewayStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            streams_opened: self.streams_opened.load(Ordering::Relaxed),
            client_disconnects: self.client_disconnects.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
        }
    }
}

/// Maps a resolved [`RequestOutcome`] onto its documented status code.
///
/// | Outcome | Status |
/// |---|---|
/// | `Finished` | `200 OK` |
/// | `Rejected` | `429 Too Many Requests` |
/// | `DeadlineExceeded` | `504 Gateway Timeout` |
/// | `Cancelled` | `499 Client Closed Request` |
/// | `Failed` | `500 Internal Server Error` |
pub fn outcome_status(outcome: &RequestOutcome) -> (u16, &'static str) {
    match outcome {
        RequestOutcome::Finished(_) => (200, "OK"),
        RequestOutcome::Rejected { .. } => (429, "Too Many Requests"),
        RequestOutcome::DeadlineExceeded { .. } => (504, "Gateway Timeout"),
        RequestOutcome::Cancelled { .. } => (499, "Client Closed Request"),
        RequestOutcome::Failed { .. } => (500, "Internal Server Error"),
    }
}

/// Maps a [`ServeError`] onto its documented status code.
///
/// | Error | Status |
/// |---|---|
/// | `Invalid` | `400 Bad Request` |
/// | `UnknownRequest` | `404 Not Found` |
/// | `AlreadyConsumed` | `409 Conflict` |
/// | `ShutDown` / `EngineDown` | `503 Service Unavailable` |
pub fn serve_error_status(err: &ServeError) -> (u16, &'static str) {
    match err {
        ServeError::Invalid(_) => (400, "Bad Request"),
        ServeError::UnknownRequest { .. } => (404, "Not Found"),
        ServeError::AlreadyConsumed { .. } => (409, "Conflict"),
        ServeError::ShutDown | ServeError::EngineDown { .. } => (503, "Service Unavailable"),
    }
}

/// JSON payload describing a resolved outcome — the body of non-streaming
/// error responses and the final `data:` frame of a token stream.
fn outcome_json(outcome: &RequestOutcome) -> String {
    match outcome {
        RequestOutcome::Finished(c) => format!(
            "{{\"outcome\":\"finished\",\"decoded_tokens\":{},\"latency_steps\":{}}}",
            c.decoded.rows(),
            c.finished_step - c.arrived_step
        ),
        RequestOutcome::Rejected { queue_depth } => format!(
            "{{\"outcome\":\"rejected\",\"queue_depth\":{queue_depth},\"error\":\"arrival queue full\"}}"
        ),
        RequestOutcome::DeadlineExceeded { decoded_tokens } => format!(
            "{{\"outcome\":\"deadline_exceeded\",\"decoded_tokens\":{decoded_tokens},\"error\":\"deadline exceeded\"}}"
        ),
        RequestOutcome::Cancelled { decoded_tokens } => format!(
            "{{\"outcome\":\"cancelled\",\"decoded_tokens\":{decoded_tokens},\"error\":\"request cancelled\"}}"
        ),
        RequestOutcome::Failed { error } => format!(
            "{{\"outcome\":\"failed\",\"error\":\"{}\"}}",
            json::escape(error)
        ),
    }
}

/// A running gateway: accept thread + worker pool over an
/// [`m2x_serve::Server`]. Dropping it (or calling [`Gateway::shutdown`])
/// stops accepting, drains the workers, and joins every thread; the
/// scheduler itself is owned by the caller's [`Arc`] and outlives the
/// gateway.
///
/// ```
/// use m2x_gateway::{client, Gateway, GatewayConfig};
/// use m2x_nn::model::ModelBuilder;
/// use m2x_nn::profile::ModelProfile;
/// use m2x_serve::{ServeConfig, Server};
/// use std::sync::Arc;
///
/// let weights = Arc::new(
///     ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1).build_weights()?,
/// );
/// let server = Arc::new(Server::start(weights, ServeConfig::default()));
/// let gateway = Gateway::bind(server, GatewayConfig::default())?;
/// let (status, _, body) = client::http_request(
///     gateway.local_addr(),
///     b"GET /healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
/// )?;
/// assert_eq!(status, 200);
/// assert_eq!(body, b"ok\n");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Gateway {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
}

struct Ctx {
    server: Arc<Server>,
    cfg: GatewayConfig,
    counters: Arc<Counters>,
}

impl Gateway {
    /// Binds the listener, spawns the accept thread and
    /// [`GatewayConfig::workers`] connection workers, and returns
    /// immediately; requests are served until [`Gateway::shutdown`] (or
    /// drop).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding [`GatewayConfig::addr`].
    pub fn bind(server: Arc<Server>, cfg: GatewayConfig) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let ctx = Arc::new(Ctx {
            server,
            cfg,
            counters: Arc::clone(&counters),
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..ctx.cfg.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("m2x-gw-worker-{i}"))
                    .spawn(move || loop {
                        let next = lock_poisoned(&rx).recv();
                        match next {
                            Ok(stream) => handle_connection(&ctx, stream),
                            Err(_) => return, // accept loop gone: shutdown
                        }
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("m2x-gw-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break; // the wake-up connection, or a late one
                        }
                        if let Ok(stream) = conn {
                            counters.connections.fetch_add(1, Ordering::Relaxed);
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                    }
                    // Dropping `tx` here releases the workers.
                })?
        };

        Ok(Gateway {
            local_addr,
            shutdown,
            accept: Some(accept),
            workers,
            counters,
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the gateway-level counters.
    pub fn stats(&self) -> GatewayStats {
        self.counters.snapshot()
    }

    /// Stops accepting, joins the accept thread and every worker (in-flight
    /// connections run to completion first). Idempotent; [`Drop`] calls it.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection: keep-alive loop of incremental parse → route,
/// until the client closes, times out, pipelines its last request, or a
/// response demands `connection: close`.
fn handle_connection(ctx: &Ctx, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(ctx.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'requests: loop {
        let mut sent_continue = false;
        let request = loop {
            match http::parse_request(&buf, &ctx.cfg.limits) {
                Ok(http::Parsed::Complete { request, consumed }) => {
                    buf.drain(..consumed);
                    break request;
                }
                Ok(http::Parsed::Partial {
                    headers_complete,
                    expects_continue,
                }) => {
                    if headers_complete && expects_continue && !sent_continue {
                        sent_continue = true;
                        if stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_err() {
                            return;
                        }
                    }
                    match stream.read(&mut chunk) {
                        Ok(0) => return, // clean close between requests
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        Err(_) => return, // timeout or reset
                    }
                }
                Err(e) => {
                    ctx.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                    let (status, reason) = e.status();
                    let body = format!("{{\"error\":\"{}\"}}\n", json::escape(&e.to_string()));
                    let _ = http::write_response(
                        &mut stream,
                        status,
                        reason,
                        "application/json",
                        &[],
                        body.as_bytes(),
                        false,
                    );
                    return; // framing is unrecoverable after a parse error
                }
            }
        };
        ctx.counters.requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = request.keep_alive();
        let streamed = route(ctx, &mut stream, &request);
        if streamed || !keep_alive {
            return;
        }
        if buf.is_empty() {
            // Nothing pipelined; loop back to read the next request.
            continue 'requests;
        }
    }
}

/// Dispatches one parsed request. Returns `true` if the response was a
/// token stream (those always close the connection).
fn route(ctx: &Ctx, stream: &mut TcpStream, req: &http::Request) -> bool {
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/v1/generate") => return generate(ctx, stream, req),
        ("GET", "/healthz") => {
            let (status, reason, body) = if ctx.server.healthy() {
                (200, "OK", "ok\n")
            } else {
                (503, "Service Unavailable", "engine down\n")
            };
            respond_text(stream, status, reason, body, req.keep_alive());
        }
        ("GET", "/metrics") => {
            let body = render_metrics(ctx);
            respond_text(stream, 200, "OK", &body, req.keep_alive());
        }
        ("GET" | "HEAD", "/v1/generate") | ("POST" | "PUT" | "DELETE", "/healthz" | "/metrics") => {
            ctx.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let allow = if req.target == "/v1/generate" {
                "POST"
            } else {
                "GET"
            };
            let _ = http::write_response(
                stream,
                405,
                "Method Not Allowed",
                "application/json",
                &[("allow", allow.to_string())],
                b"{\"error\":\"method not allowed\"}\n",
                req.keep_alive(),
            );
        }
        _ => {
            ctx.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(
                stream,
                404,
                "Not Found",
                "application/json",
                &[],
                b"{\"error\":\"no such endpoint\"}\n",
                req.keep_alive(),
            );
        }
    }
    false
}

fn respond_text(stream: &mut TcpStream, status: u16, reason: &str, body: &str, keep_alive: bool) {
    let _ = http::write_response(
        stream,
        status,
        reason,
        "text/plain; charset=utf-8",
        &[],
        body.as_bytes(),
        keep_alive,
    );
}

fn respond_json(stream: &mut TcpStream, status: u16, reason: &str, body: &str, keep_alive: bool) {
    let _ = http::write_response(
        stream,
        status,
        reason,
        "application/json",
        &[],
        body.as_bytes(),
        keep_alive,
    );
}

/// `/metrics` text format: `m2x_serve_*` scheduler counters (including
/// p99 step latency) plus `m2x_gateway_*` connection counters.
fn render_metrics(ctx: &Ctx) -> String {
    let s = ctx.server.stats();
    let g = ctx.counters.snapshot();
    format!(
        "m2x_serve_steps {}\n\
         m2x_serve_decoded_tokens {}\n\
         m2x_serve_peak_batch {}\n\
         m2x_serve_rejected {}\n\
         m2x_serve_cancelled {}\n\
         m2x_serve_deadline_exceeded {}\n\
         m2x_serve_failed {}\n\
         m2x_serve_panics_recovered {}\n\
         m2x_serve_recovery_ticks {}\n\
         m2x_serve_peak_queue_depth {}\n\
         m2x_serve_p99_step_us {}\n\
         m2x_gateway_connections {}\n\
         m2x_gateway_requests {}\n\
         m2x_gateway_streams_opened {}\n\
         m2x_gateway_client_disconnects {}\n\
         m2x_gateway_bad_requests {}\n\
         m2x_gateway_healthy {}\n",
        s.steps,
        s.decoded_tokens,
        s.peak_batch,
        s.rejected,
        s.cancelled,
        s.deadline_exceeded,
        s.failed,
        s.panics_recovered,
        s.recovery_ticks,
        s.peak_queue_depth,
        s.p99_step_us,
        g.connections,
        g.requests,
        g.streams_opened,
        g.client_disconnects,
        g.bad_requests,
        u8::from(ctx.server.healthy()),
    )
}

/// The decoded `POST /v1/generate` body.
struct GenerateBody {
    prompt: Matrix,
    max_tokens: usize,
    opts: RequestOptions,
}

fn parse_generate_body(ctx: &Ctx, body: &[u8]) -> Result<GenerateBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let rows = doc
        .get("prompt")
        .and_then(Json::as_arr)
        .ok_or("`prompt` must be an array of token rows")?;
    if rows.is_empty() {
        return Err("`prompt` must contain at least one token row".to_string());
    }
    let width = rows[0].as_arr().map(<[Json]>::len).unwrap_or(0);
    if width == 0 {
        return Err("`prompt` rows must be non-empty arrays of numbers".to_string());
    }
    let mut data = Vec::with_capacity(rows.len() * width);
    for (r, row) in rows.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| format!("`prompt[{r}]` is not an array"))?;
        if row.len() != width {
            return Err(format!(
                "`prompt[{r}]` has {} values, expected {width} (ragged prompt)",
                row.len()
            ));
        }
        for (c, v) in row.iter().enumerate() {
            let v = v
                .as_f64()
                .ok_or_else(|| format!("`prompt[{r}][{c}]` is not a number"))?;
            data.push(v as f32);
        }
    }
    let max_tokens = doc
        .get("max_tokens")
        .ok_or("`max_tokens` is required")?
        .as_usize()
        .ok_or("`max_tokens` must be a non-negative integer")?;
    if max_tokens > ctx.cfg.max_decode_steps {
        return Err(format!(
            "`max_tokens` {max_tokens} exceeds the gateway cap {}",
            ctx.cfg.max_decode_steps
        ));
    }
    let deadline_ms = match doc.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or("`deadline_ms` must be a non-negative integer")? as u64,
        ),
    };
    let deadline_steps = match doc.get("deadline_steps") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or("`deadline_steps` must be a non-negative integer")? as u64,
        ),
    };
    Ok(GenerateBody {
        prompt: Matrix::from_vec(rows.len(), width, data),
        max_tokens,
        opts: RequestOptions {
            deadline: deadline_ms.map(Duration::from_millis),
            deadline_steps,
            stream: true,
        },
    })
}

/// One SSE token frame: `data: {"index":N,"token":[...]}\n\n`.
// m2x-lint: hot
fn token_frame(index: usize, row: &Matrix) -> Vec<u8> {
    let mut frame = String::with_capacity(32 + row.cols() * 12);
    frame.push_str("data: {\"index\":");
    // m2x-lint: allow(alloc) short per-frame index formatting; the frame String itself is the payload
    frame.push_str(&index.to_string());
    frame.push_str(",\"token\":[");
    for (c, v) in row.as_slice().iter().enumerate() {
        if c > 0 {
            frame.push(',');
        }
        frame.push_str(&json::f32_repr(*v));
    }
    frame.push_str("]}\n\n");
    frame.into_bytes()
}

/// Handles `POST /v1/generate`. Returns `true` when a chunked stream was
/// written (connection must close).
// m2x-lint: hot
fn generate(ctx: &Ctx, stream: &mut TcpStream, req: &http::Request) -> bool {
    let parsed = match parse_generate_body(ctx, &req.body) {
        Ok(p) => p,
        Err(msg) => {
            ctx.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            // m2x-lint: allow(alloc) error response path, not the streaming loop
            let body = format!("{{\"error\":\"{}\"}}\n", json::escape(&msg));
            respond_json(stream, 400, "Bad Request", &body, req.keep_alive());
            return false;
        }
    };
    let id = match ctx
        .server
        .submit_with(parsed.prompt, parsed.max_tokens, parsed.opts)
    {
        Ok(id) => id,
        Err(e) => {
            let (status, reason) = serve_error_status(&e);
            if status == 400 {
                ctx.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            }
            // m2x-lint: allow(alloc) error response path, not the streaming loop
            let body = format!("{{\"error\":\"{}\"}}\n", json::escape(&e.to_string()));
            respond_json(stream, status, reason, &body, req.keep_alive());
            return false;
        }
    };

    // The first event decides the response shape: a token opens a 200
    // SSE stream; an immediate outcome (rejected / expired while queued /
    // failed before producing anything / zero-token finish) gets a plain
    // JSON response with the mapped status.
    match ctx.server.next_token(id, 0) {
        Ok(StreamEvent::Token { index, row }) => {
            ctx.counters.streams_opened.fetch_add(1, Ordering::Relaxed);
            // m2x-lint: allow(alloc) once per stream: the response head, not the token loop
            let id_hdr = [("x-m2x-request-id", id.to_string())];
            if http::write_stream_head(stream, 200, "OK", &id_hdr).is_err() {
                abandon(ctx, id);
                return true;
            }
            if http::write_chunk(stream, &token_frame(index, &row)).is_err() {
                abandon(ctx, id);
                return true;
            }
            let mut cursor = index + 1;
            loop {
                match ctx.server.next_token(id, cursor) {
                    Ok(StreamEvent::Token { index, row }) => {
                        if http::write_chunk(stream, &token_frame(index, &row)).is_err() {
                            abandon(ctx, id);
                            return true;
                        }
                        cursor = index + 1;
                    }
                    Ok(StreamEvent::Done(outcome)) => {
                        // m2x-lint: allow(alloc) once per stream: the terminal frame, not the token loop
                        let done = format!("data: {{\"done\":{}}}\n\n", outcome_json(&outcome));
                        // m2x-lint: allow(alloc) once per stream: the terminal frame, not the token loop
                        let kind = outcome.kind().to_string();
                        let _ = http::write_chunk(stream, done.as_bytes()).and_then(|()| {
                            http::write_last_chunk(stream, &[(http::OUTCOME_TRAILER, kind)])
                        });
                        return true;
                    }
                    Err(e) => {
                        // Engine died mid-stream: terminate with a trailer.
                        // m2x-lint: allow(alloc) engine-death path, terminates the stream
                        let done = format!(
                            "data: {{\"done\":{{\"outcome\":\"error\",\"error\":\"{}\"}}}}\n\n",
                            // m2x-lint: allow(alloc) engine-death path, terminates the stream
                            json::escape(&e.to_string())
                        );
                        let _ = http::write_chunk(stream, done.as_bytes()).and_then(|()| {
                            http::write_last_chunk(
                                stream,
                                // m2x-lint: allow(alloc) engine-death path, terminates the stream
                                &[(http::OUTCOME_TRAILER, "error".to_string())],
                            )
                        });
                        return true;
                    }
                }
            }
        }
        Ok(StreamEvent::Done(outcome)) => {
            let (status, reason) = outcome_status(&outcome);
            let mut body = outcome_json(&outcome);
            body.push('\n');
            let _ = http::write_response(
                stream,
                status,
                reason,
                "application/json",
                // m2x-lint: allow(alloc) non-streaming terminal response, one per request
                &[("x-m2x-request-id", id.to_string())],
                body.as_bytes(),
                req.keep_alive(),
            );
            false
        }
        Err(e) => {
            let (status, reason) = serve_error_status(&e);
            // m2x-lint: allow(alloc) error response path, not the streaming loop
            let body = format!("{{\"error\":\"{}\"}}\n", json::escape(&e.to_string()));
            respond_json(stream, status, reason, &body, req.keep_alive());
            false
        }
    }
}

/// The client vanished mid-stream: cancel the request so it stops burning
/// a batch slot, then consume its outcome so the scheduler's bookkeeping
/// (and the zero-leak gate) sees it retired.
fn abandon(ctx: &Ctx, id: u64) {
    ctx.counters
        .client_disconnects
        .fetch_add(1, Ordering::Relaxed);
    let _ = ctx.server.cancel(id);
    let _ = ctx.server.wait(id);
}
