//! `m2x-gateway` — std-only streaming HTTP/1.1 front-end over the
//! [`m2x_serve`] continuous-batching scheduler.
//!
//! The gateway puts a wire protocol on the fault-tolerant serving
//! runtime without adding a single dependency: a [`std::net::TcpListener`]
//! accept loop feeds a fixed worker pool, each worker speaks hand-rolled
//! HTTP/1.1 (incremental bounded parsing, keep-alive, pipelining,
//! `Expect: 100-continue`), and generation responses stream one SSE
//! `data:` frame per decode step over chunked transfer encoding — flushed
//! as the engine produces them, so the client sees tokens at decode
//! latency, not request latency.
//!
//! Four endpoints (full schemas in `docs/HTTP_API.md`):
//!
//! | Endpoint | What it does |
//! |---|---|
//! | `POST /v1/generate` | Submit a prompt, stream decode tokens as SSE |
//! | `GET /metrics` | Prometheus text: counters + latency histograms |
//! | `GET /v1/trace` | Drain the trace rings as Chrome trace-event JSON |
//! | `GET /healthz` | Liveness of the engine thread |
//!
//! Every typed [`RequestOutcome`] and [`ServeError`] maps onto a
//! deliberate status code ([`outcome_status`], [`serve_error_status`]) —
//! admission-control rejections are `429` with the observed queue depth,
//! deadline expiries are `504`, panic-isolated failures are `500`, and a
//! client that disconnects mid-stream gets its request [`Server::cancel`]ed
//! so abandoned work never occupies a batch slot.
//!
//! The serving layer's bit-identity invariant extends through the socket:
//! the token rows a client reassembles from the SSE frames are
//! bit-identical to [`run_solo`](m2x_serve::run_solo) for the same prompt,
//! because activations are serialized as shortest-round-trip decimals
//! ([`json::f32_repr`]) and recovered exactly by an f64 parse + f32 cast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;

use m2x_serve::sync::lock_poisoned;
use m2x_serve::{RequestOptions, RequestOutcome, ServeError, Server, StreamEvent};
use m2x_telemetry::{stage, Histogram, TraceHandle, TraceKind};
use m2x_tensor::Matrix;

use std::fmt::{Display, Write as _};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

pub use http::Limits;
pub use json::Json;

/// Gateway trace-ring capacity (events): one connection span + one parse
/// span per request + one stream span per generation.
const GW_RING_EVENTS: usize = 4_096;

/// Configuration of a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Address to bind; port `0` picks a free port (see
    /// [`Gateway::local_addr`]).
    pub addr: String,
    /// Connection worker threads (each handles one connection at a time;
    /// a long-lived token stream occupies its worker for its duration).
    pub workers: usize,
    /// HTTP parser bounds (header/body size caps).
    pub limits: Limits,
    /// Per-read socket timeout while waiting for request bytes; a
    /// connection idle longer than this between requests is dropped.
    pub read_timeout: Duration,
    /// Upper bound accepted for `max_tokens`; larger asks are rejected
    /// with `400` before touching the scheduler.
    pub max_decode_steps: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(10),
            max_decode_steps: 4096,
        }
    }
}

/// Monotonic gateway-level counters, snapshot via [`Gateway::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// TCP connections accepted.
    pub connections: u64,
    /// HTTP requests fully parsed and routed (any endpoint).
    pub requests: u64,
    /// Generation requests that opened an SSE token stream.
    pub streams_opened: u64,
    /// Streams whose client vanished mid-flight (each triggered a
    /// [`Server::cancel`]).
    pub client_disconnects: u64,
    /// Requests rejected by the HTTP parser or validation (4xx).
    pub bad_requests: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    streams_opened: AtomicU64,
    client_disconnects: AtomicU64,
    bad_requests: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> GatewayStats {
        GatewayStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            streams_opened: self.streams_opened.load(Ordering::Relaxed),
            client_disconnects: self.client_disconnects.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
        }
    }
}

/// Maps a resolved [`RequestOutcome`] onto its documented status code.
///
/// | Outcome | Status |
/// |---|---|
/// | `Finished` | `200 OK` |
/// | `Rejected` | `429 Too Many Requests` |
/// | `DeadlineExceeded` | `504 Gateway Timeout` |
/// | `Cancelled` | `499 Client Closed Request` |
/// | `Failed` | `500 Internal Server Error` |
pub fn outcome_status(outcome: &RequestOutcome) -> (u16, &'static str) {
    match outcome {
        RequestOutcome::Finished(_) => (200, "OK"),
        RequestOutcome::Rejected { .. } => (429, "Too Many Requests"),
        RequestOutcome::DeadlineExceeded { .. } => (504, "Gateway Timeout"),
        RequestOutcome::Cancelled { .. } => (499, "Client Closed Request"),
        RequestOutcome::Failed { .. } => (500, "Internal Server Error"),
    }
}

/// Maps a [`ServeError`] onto its documented status code.
///
/// | Error | Status |
/// |---|---|
/// | `Invalid` | `400 Bad Request` |
/// | `UnknownRequest` | `404 Not Found` |
/// | `AlreadyConsumed` | `409 Conflict` |
/// | `ShutDown` / `EngineDown` | `503 Service Unavailable` |
pub fn serve_error_status(err: &ServeError) -> (u16, &'static str) {
    match err {
        ServeError::Invalid(_) => (400, "Bad Request"),
        ServeError::UnknownRequest { .. } => (404, "Not Found"),
        ServeError::AlreadyConsumed { .. } => (409, "Conflict"),
        ServeError::ShutDown | ServeError::EngineDown { .. } => (503, "Service Unavailable"),
    }
}

/// JSON payload describing a resolved outcome — the body of non-streaming
/// error responses and the final `data:` frame of a token stream.
fn outcome_json(outcome: &RequestOutcome) -> String {
    match outcome {
        RequestOutcome::Finished(c) => format!(
            "{{\"outcome\":\"finished\",\"decoded_tokens\":{},\"latency_steps\":{}}}",
            c.decoded.rows(),
            c.finished_step - c.arrived_step
        ),
        RequestOutcome::Rejected { queue_depth } => format!(
            "{{\"outcome\":\"rejected\",\"queue_depth\":{queue_depth},\"error\":\"arrival queue full\"}}"
        ),
        RequestOutcome::DeadlineExceeded { decoded_tokens } => format!(
            "{{\"outcome\":\"deadline_exceeded\",\"decoded_tokens\":{decoded_tokens},\"error\":\"deadline exceeded\"}}"
        ),
        RequestOutcome::Cancelled { decoded_tokens } => format!(
            "{{\"outcome\":\"cancelled\",\"decoded_tokens\":{decoded_tokens},\"error\":\"request cancelled\"}}"
        ),
        RequestOutcome::Failed { error } => format!(
            "{{\"outcome\":\"failed\",\"error\":\"{}\"}}",
            json::escape(error)
        ),
    }
}

/// A running gateway: accept thread + worker pool over an
/// [`m2x_serve::Server`]. Dropping it (or calling [`Gateway::shutdown`])
/// stops accepting, drains the workers, and joins every thread; the
/// scheduler itself is owned by the caller's [`Arc`] and outlives the
/// gateway.
///
/// ```
/// use m2x_gateway::{client, Gateway, GatewayConfig};
/// use m2x_nn::model::ModelBuilder;
/// use m2x_nn::profile::ModelProfile;
/// use m2x_serve::{ServeConfig, Server};
/// use std::sync::Arc;
///
/// let weights = Arc::new(
///     ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1).build_weights()?,
/// );
/// let server = Arc::new(Server::start(weights, ServeConfig::default()));
/// let gateway = Gateway::bind(server, GatewayConfig::default())?;
/// let (status, _, body) = client::http_request(
///     gateway.local_addr(),
///     b"GET /healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
/// )?;
/// assert_eq!(status, 200);
/// assert_eq!(body, b"ok\n");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Gateway {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
}

struct Ctx {
    server: Arc<Server>,
    cfg: GatewayConfig,
    counters: Arc<Counters>,
    /// Gateway ring on the server's [`m2x_telemetry::Telemetry`] clock:
    /// connection/parse/stream phase spans, shared by all workers.
    trace: TraceHandle,
}

impl Gateway {
    /// Binds the listener, spawns the accept thread and
    /// [`GatewayConfig::workers`] connection workers, and returns
    /// immediately; requests are served until [`Gateway::shutdown`] (or
    /// drop).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding [`GatewayConfig::addr`].
    pub fn bind(server: Arc<Server>, cfg: GatewayConfig) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let trace = server.telemetry().register("gateway", GW_RING_EVENTS);
        let ctx = Arc::new(Ctx {
            server,
            cfg,
            counters: Arc::clone(&counters),
            trace,
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..ctx.cfg.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("m2x-gw-worker-{i}"))
                    .spawn(move || loop {
                        let next = lock_poisoned(&rx).recv();
                        match next {
                            Ok(stream) => handle_connection(&ctx, stream),
                            Err(_) => return, // accept loop gone: shutdown
                        }
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("m2x-gw-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break; // the wake-up connection, or a late one
                        }
                        if let Ok(stream) = conn {
                            counters.connections.fetch_add(1, Ordering::Relaxed);
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                    }
                    // Dropping `tx` here releases the workers.
                })?
        };

        Ok(Gateway {
            local_addr,
            shutdown,
            accept: Some(accept),
            workers,
            counters,
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the gateway-level counters.
    pub fn stats(&self) -> GatewayStats {
        self.counters.snapshot()
    }

    /// Stops accepting, joins the accept thread and every worker (in-flight
    /// connections run to completion first). Idempotent; [`Drop`] calls it.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection and traces it: one `gw_connection` span for the
/// connection's lifetime (value = requests served) wrapped around
/// [`serve_connection`].
fn handle_connection(ctx: &Ctx, stream: TcpStream) {
    let t0 = ctx.trace.now_us();
    let served = serve_connection(ctx, stream);
    ctx.trace
        .span(stage::GW_CONNECTION, 0, t0, ctx.trace.now_us(), served);
}

/// Serves one connection: keep-alive loop of incremental parse → route,
/// until the client closes, times out, pipelines its last request, or a
/// response demands `connection: close`. Returns requests served.
fn serve_connection(ctx: &Ctx, mut stream: TcpStream) -> u64 {
    let _ = stream.set_read_timeout(Some(ctx.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut served = 0u64;
    'requests: loop {
        // The `gw_parse` span runs from here to a complete parse, so for
        // the second and later requests of a keep-alive connection it
        // includes the idle wait for the client's next request bytes.
        let t_req = ctx.trace.now_us();
        let mut sent_continue = false;
        let request = loop {
            match http::parse_request(&buf, &ctx.cfg.limits) {
                Ok(http::Parsed::Complete { request, consumed }) => {
                    buf.drain(..consumed);
                    break request;
                }
                Ok(http::Parsed::Partial {
                    headers_complete,
                    expects_continue,
                }) => {
                    if headers_complete && expects_continue && !sent_continue {
                        sent_continue = true;
                        if stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_err() {
                            return served;
                        }
                    }
                    match stream.read(&mut chunk) {
                        Ok(0) => return served, // clean close between requests
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        Err(_) => return served, // timeout or reset
                    }
                }
                Err(e) => {
                    ctx.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                    let (status, reason) = e.status();
                    let body = format!("{{\"error\":\"{}\"}}\n", json::escape(&e.to_string()));
                    let _ = http::write_response(
                        &mut stream,
                        status,
                        reason,
                        "application/json",
                        &[],
                        body.as_bytes(),
                        false,
                    );
                    return served; // framing is unrecoverable after a parse error
                }
            }
        };
        ctx.counters.requests.fetch_add(1, Ordering::Relaxed);
        served += 1;
        ctx.trace.span(
            stage::GW_PARSE,
            0,
            t_req,
            ctx.trace.now_us(),
            request.body.len() as u64,
        );
        let keep_alive = request.keep_alive();
        let streamed = route(ctx, &mut stream, &request);
        if streamed || !keep_alive {
            return served;
        }
        if buf.is_empty() {
            // Nothing pipelined; loop back to read the next request.
            continue 'requests;
        }
    }
}

/// Dispatches one parsed request. Returns `true` if the response was a
/// token stream (those always close the connection).
fn route(ctx: &Ctx, stream: &mut TcpStream, req: &http::Request) -> bool {
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/v1/generate") => return generate(ctx, stream, req),
        ("GET", "/healthz") => {
            let (status, reason, body) = if ctx.server.healthy() {
                (200, "OK", "ok\n")
            } else {
                (503, "Service Unavailable", "engine down\n")
            };
            respond_text(stream, status, reason, body, req.keep_alive());
        }
        ("GET", "/metrics") => {
            let body = render_metrics(ctx);
            respond_text(stream, 200, "OK", &body, req.keep_alive());
        }
        ("GET", "/v1/trace") => {
            let body = render_trace(ctx);
            respond_json(stream, 200, "OK", &body, req.keep_alive());
        }
        ("GET" | "HEAD", "/v1/generate")
        | ("POST" | "PUT" | "DELETE", "/healthz" | "/metrics" | "/v1/trace") => {
            ctx.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let allow = if req.target == "/v1/generate" {
                "POST"
            } else {
                "GET"
            };
            let _ = http::write_response(
                stream,
                405,
                "Method Not Allowed",
                "application/json",
                &[("allow", allow.to_string())],
                b"{\"error\":\"method not allowed\"}\n",
                req.keep_alive(),
            );
        }
        _ => {
            ctx.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(
                stream,
                404,
                "Not Found",
                "application/json",
                &[],
                b"{\"error\":\"no such endpoint\"}\n",
                req.keep_alive(),
            );
        }
    }
    false
}

fn respond_text(stream: &mut TcpStream, status: u16, reason: &str, body: &str, keep_alive: bool) {
    let _ = http::write_response(
        stream,
        status,
        reason,
        "text/plain; charset=utf-8",
        &[],
        body.as_bytes(),
        keep_alive,
    );
}

fn respond_json(stream: &mut TcpStream, status: u16, reason: &str, body: &str, keep_alive: bool) {
    let _ = http::write_response(
        stream,
        status,
        reason,
        "application/json",
        &[],
        body.as_bytes(),
        keep_alive,
    );
}

/// Appends one single-sample metric family in Prometheus text format
/// (`# HELP` + `# TYPE` + the sample line).
fn render_metric(out: &mut String, name: &str, kind: &str, help: &str, value: impl Display) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends one histogram family with a cumulative `le` ladder of
/// `4^k - 1` bounds (0, 3, 15, …, 268435455, `+Inf`). Power-of-four
/// bounds land exactly on the histogram's bucket boundaries
/// ([`Histogram::count_below`] is exact at powers of two), so the
/// rendered counts carry no bucketing error on top of the histogram's
/// own.
fn render_histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let _ = writeln!(out, "{name}_bucket{{le=\"0\"}} {}", h.count_below(1));
    let mut bound = 4u64;
    for _ in 0..14 {
        let below = h.count_below(bound);
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {below}", bound - 1);
        bound *= 4;
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// `/metrics` in Prometheus text exposition format: `m2x_serve_*`
/// scheduler counters and latency histograms (step latency, TTFT, queue
/// wait, tokens per request) plus `m2x_gateway_*` connection counters.
/// Every family carries `# HELP`/`# TYPE` lines; the exact fresh-server
/// output is pinned by a unit test.
fn render_metrics(ctx: &Ctx) -> String {
    let s = ctx.server.stats();
    let t = ctx.server.telemetry_snapshot();
    let g = ctx.counters.snapshot();
    let mut out = String::with_capacity(4096);
    let o = &mut out;
    render_metric(
        o,
        "m2x_serve_steps",
        "counter",
        "Batched scheduler steps executed.",
        s.steps,
    );
    render_metric(
        o,
        "m2x_serve_decoded_tokens",
        "counter",
        "Decode tokens produced across all requests.",
        s.decoded_tokens,
    );
    render_metric(
        o,
        "m2x_serve_peak_batch",
        "gauge",
        "Largest number of requests in flight during one step.",
        s.peak_batch,
    );
    render_metric(
        o,
        "m2x_serve_rejected",
        "counter",
        "Requests shed at submission (arrival queue full).",
        s.rejected,
    );
    render_metric(
        o,
        "m2x_serve_cancelled",
        "counter",
        "Requests cancelled.",
        s.cancelled,
    );
    render_metric(
        o,
        "m2x_serve_deadline_exceeded",
        "counter",
        "Requests expired past their deadline.",
        s.deadline_exceeded,
    );
    render_metric(
        o,
        "m2x_serve_failed",
        "counter",
        "Requests failed by a step panic or model error.",
        s.failed,
    );
    render_metric(
        o,
        "m2x_serve_panics_recovered",
        "counter",
        "Panics caught by the engine's step isolation.",
        s.panics_recovered,
    );
    render_metric(
        o,
        "m2x_serve_recovery_ticks",
        "counter",
        "Scheduler ticks that ran the reset-and-replay recovery pass.",
        s.recovery_ticks,
    );
    render_metric(
        o,
        "m2x_serve_peak_queue_depth",
        "gauge",
        "Largest arrival-queue depth observed at submission.",
        s.peak_queue_depth,
    );
    render_metric(
        o,
        "m2x_serve_p99_step_us",
        "gauge",
        "p99 engine step latency in microseconds.",
        s.p99_step_us,
    );
    render_metric(
        o,
        "m2x_serve_kv_pages_in_use",
        "gauge",
        "KV pool pages held by live sessions (shared pages count once per holder).",
        s.kv_pages_in_use,
    );
    render_metric(
        o,
        "m2x_serve_kv_peak_pages",
        "gauge",
        "High-water mark of KV pool pages in use.",
        s.kv_peak_pages,
    );
    render_metric(
        o,
        "m2x_serve_kv_page_allocs",
        "counter",
        "KV pool pages allocated fresh (free list empty).",
        s.kv_page_allocs,
    );
    render_metric(
        o,
        "m2x_serve_kv_page_reuses",
        "counter",
        "KV pool pages recycled from the free list.",
        s.kv_page_reuses,
    );
    render_metric(
        o,
        "m2x_serve_kv_cow_clones",
        "counter",
        "Copy-on-write forks of shared or frozen KV pages.",
        s.kv_cow_clones,
    );
    render_metric(
        o,
        "m2x_serve_kv_prefix_hits",
        "counter",
        "Frozen prefix pages adopted by admitted requests.",
        s.kv_prefix_hits,
    );
    render_metric(
        o,
        "m2x_serve_kv_prefix_misses",
        "counter",
        "Prefix-cache lookups that adopted nothing.",
        s.kv_prefix_misses,
    );
    render_metric(
        o,
        "m2x_serve_kv_shared_pages",
        "gauge",
        "KV pages currently referenced by more than one holder.",
        s.kv_shared_pages,
    );
    render_metric(
        o,
        "m2x_serve_kv_free_pages",
        "gauge",
        "KV pages parked on the pool free list.",
        s.kv_free_pages,
    );
    render_metric(
        o,
        "m2x_serve_kv_packed_bytes",
        "gauge",
        "Packed KV bytes held by in-flight sessions (the budgeted payload).",
        s.kv_packed_bytes,
    );
    render_metric(
        o,
        "m2x_serve_kv_decoded_bytes",
        "gauge",
        "Decoded f32 KV bytes held by in-flight sessions (not budgeted).",
        s.kv_decoded_bytes,
    );
    render_metric(
        o,
        "m2x_serve_kv_fragmentation",
        "gauge",
        "Unused token-row fraction of the KV pages in flight.",
        s.kv_fragmentation,
    );
    render_histogram(
        o,
        "m2x_serve_step_latency_us",
        "Engine step (tick) wall latency in microseconds.",
        &t.step_us,
    );
    render_histogram(
        o,
        "m2x_serve_ttft_us",
        "Time to first decode token in microseconds, from submission.",
        &t.ttft_us,
    );
    render_histogram(
        o,
        "m2x_serve_queue_wait_us",
        "Queue wait in microseconds, from submission to admission.",
        &t.queue_wait_us,
    );
    render_histogram(
        o,
        "m2x_serve_tokens_per_request",
        "Decode tokens delivered per resolved request.",
        &t.tokens_per_request,
    );
    render_metric(
        o,
        "m2x_gateway_connections",
        "counter",
        "TCP connections accepted.",
        g.connections,
    );
    render_metric(
        o,
        "m2x_gateway_requests",
        "counter",
        "HTTP requests fully parsed and routed.",
        g.requests,
    );
    render_metric(
        o,
        "m2x_gateway_streams_opened",
        "counter",
        "Generation requests that opened an SSE token stream.",
        g.streams_opened,
    );
    render_metric(
        o,
        "m2x_gateway_client_disconnects",
        "counter",
        "Streams whose client vanished mid-flight.",
        g.client_disconnects,
    );
    render_metric(
        o,
        "m2x_gateway_bad_requests",
        "counter",
        "Requests rejected by the HTTP parser or validation.",
        g.bad_requests,
    );
    render_metric(
        o,
        "m2x_gateway_healthy",
        "gauge",
        "1 while the engine thread is alive and accepting.",
        u8::from(ctx.server.healthy()),
    );
    out
}

/// `GET /v1/trace`: drains every trace ring of the server's
/// [`m2x_telemetry::Telemetry`] (engine, api, gateway) and renders the
/// events as Chrome trace-event JSON — load the response in
/// `chrome://tracing` or Perfetto. Each ring becomes one track (`tid` =
/// registration index, labelled by a `thread_name` metadata event);
/// spans render as `"ph":"X"`, instants as `"ph":"i"`. The drain is
/// destructive: a second immediate request returns only events recorded
/// in between, and `dropped` reports per-ring overwrite losses since the
/// previous drain.
fn render_trace(ctx: &Ctx) -> String {
    let rings = ctx.server.telemetry().drain();
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for ring in &rings {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            ring.tid,
            json::escape(&ring.name)
        );
        for e in &ring.events {
            out.push(',');
            let _ = match e.kind {
                TraceKind::Span => write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"req\":{},\"value\":{}}}}}",
                    stage::name(e.stage), e.ts_us, e.dur_us, ring.tid, e.req, e.value
                ),
                TraceKind::Instant => write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":1,\"tid\":{},\"args\":{{\"req\":{},\"value\":{}}}}}",
                    stage::name(e.stage), e.ts_us, ring.tid, e.req, e.value
                ),
            };
        }
    }
    out.push_str("],\"dropped\":{");
    for (i, ring) in rings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json::escape(&ring.name), ring.dropped);
    }
    out.push_str("}}\n");
    out
}

/// The decoded `POST /v1/generate` body.
struct GenerateBody {
    prompt: Matrix,
    max_tokens: usize,
    opts: RequestOptions,
}

fn parse_generate_body(ctx: &Ctx, body: &[u8]) -> Result<GenerateBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let rows = doc
        .get("prompt")
        .and_then(Json::as_arr)
        .ok_or("`prompt` must be an array of token rows")?;
    if rows.is_empty() {
        return Err("`prompt` must contain at least one token row".to_string());
    }
    let width = rows[0].as_arr().map(<[Json]>::len).unwrap_or(0);
    if width == 0 {
        return Err("`prompt` rows must be non-empty arrays of numbers".to_string());
    }
    let mut data = Vec::with_capacity(rows.len() * width);
    for (r, row) in rows.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| format!("`prompt[{r}]` is not an array"))?;
        if row.len() != width {
            return Err(format!(
                "`prompt[{r}]` has {} values, expected {width} (ragged prompt)",
                row.len()
            ));
        }
        for (c, v) in row.iter().enumerate() {
            let v = v
                .as_f64()
                .ok_or_else(|| format!("`prompt[{r}][{c}]` is not a number"))?;
            data.push(v as f32);
        }
    }
    let max_tokens = doc
        .get("max_tokens")
        .ok_or("`max_tokens` is required")?
        .as_usize()
        .ok_or("`max_tokens` must be a non-negative integer")?;
    if max_tokens > ctx.cfg.max_decode_steps {
        return Err(format!(
            "`max_tokens` {max_tokens} exceeds the gateway cap {}",
            ctx.cfg.max_decode_steps
        ));
    }
    let deadline_ms = match doc.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or("`deadline_ms` must be a non-negative integer")? as u64,
        ),
    };
    let deadline_steps = match doc.get("deadline_steps") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or("`deadline_steps` must be a non-negative integer")? as u64,
        ),
    };
    Ok(GenerateBody {
        prompt: Matrix::from_vec(rows.len(), width, data),
        max_tokens,
        opts: RequestOptions {
            deadline: deadline_ms.map(Duration::from_millis),
            deadline_steps,
            stream: true,
        },
    })
}

/// RAII `gw_stream` span: created when a token stream opens, emitted on
/// every exit path of the streaming loop (clean finish, client
/// disconnect, engine death) with the number of token frames written.
struct StreamSpan<'a> {
    trace: &'a TraceHandle,
    req: u32,
    start_us: u64,
    tokens: u64,
}

impl Drop for StreamSpan<'_> {
    fn drop(&mut self) {
        let end = self.trace.now_us();
        self.trace
            .span(stage::GW_STREAM, self.req, self.start_us, end, self.tokens);
    }
}

/// One SSE token frame: `data: {"index":N,"token":[...]}\n\n`.
// m2x-lint: hot
fn token_frame(index: usize, row: &Matrix) -> Vec<u8> {
    let mut frame = String::with_capacity(32 + row.cols() * 12);
    frame.push_str("data: {\"index\":");
    // m2x-lint: allow(alloc) short per-frame index formatting; the frame String itself is the payload
    frame.push_str(&index.to_string());
    frame.push_str(",\"token\":[");
    for (c, v) in row.as_slice().iter().enumerate() {
        if c > 0 {
            frame.push(',');
        }
        frame.push_str(&json::f32_repr(*v));
    }
    frame.push_str("]}\n\n");
    frame.into_bytes()
}

/// Handles `POST /v1/generate`. Returns `true` when a chunked stream was
/// written (connection must close).
// m2x-lint: hot
fn generate(ctx: &Ctx, stream: &mut TcpStream, req: &http::Request) -> bool {
    let parsed = match parse_generate_body(ctx, &req.body) {
        Ok(p) => p,
        Err(msg) => {
            ctx.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            // m2x-lint: allow(alloc) error response path, not the streaming loop
            let body = format!("{{\"error\":\"{}\"}}\n", json::escape(&msg));
            respond_json(stream, 400, "Bad Request", &body, req.keep_alive());
            return false;
        }
    };
    let id = match ctx
        .server
        .submit_with(parsed.prompt, parsed.max_tokens, parsed.opts)
    {
        Ok(id) => id,
        Err(e) => {
            let (status, reason) = serve_error_status(&e);
            if status == 400 {
                ctx.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            }
            // m2x-lint: allow(alloc) error response path, not the streaming loop
            let body = format!("{{\"error\":\"{}\"}}\n", json::escape(&e.to_string()));
            respond_json(stream, status, reason, &body, req.keep_alive());
            return false;
        }
    };

    // The first event decides the response shape: a token opens a 200
    // SSE stream; an immediate outcome (rejected / expired while queued /
    // failed before producing anything / zero-token finish) gets a plain
    // JSON response with the mapped status.
    match ctx.server.next_token(id, 0) {
        Ok(StreamEvent::Token { index, row }) => {
            ctx.counters.streams_opened.fetch_add(1, Ordering::Relaxed);
            let mut span = StreamSpan {
                trace: &ctx.trace,
                req: id as u32,
                start_us: ctx.trace.now_us(),
                tokens: 0,
            };
            // m2x-lint: allow(alloc) once per stream: the response head, not the token loop
            let id_hdr = [("x-m2x-request-id", id.to_string())];
            if http::write_stream_head(stream, 200, "OK", &id_hdr).is_err() {
                abandon(ctx, id);
                return true;
            }
            if http::write_chunk(stream, &token_frame(index, &row)).is_err() {
                abandon(ctx, id);
                return true;
            }
            span.tokens += 1;
            let mut cursor = index + 1;
            loop {
                match ctx.server.next_token(id, cursor) {
                    Ok(StreamEvent::Token { index, row }) => {
                        if http::write_chunk(stream, &token_frame(index, &row)).is_err() {
                            abandon(ctx, id);
                            return true;
                        }
                        span.tokens += 1;
                        cursor = index + 1;
                    }
                    Ok(StreamEvent::Done(outcome)) => {
                        // m2x-lint: allow(alloc) once per stream: the terminal frame, not the token loop
                        let done = format!("data: {{\"done\":{}}}\n\n", outcome_json(&outcome));
                        // m2x-lint: allow(alloc) once per stream: the terminal frame, not the token loop
                        let kind = outcome.kind().to_string();
                        let _ = http::write_chunk(stream, done.as_bytes()).and_then(|()| {
                            http::write_last_chunk(stream, &[(http::OUTCOME_TRAILER, kind)])
                        });
                        return true;
                    }
                    Err(e) => {
                        // Engine died mid-stream: terminate with a trailer.
                        // m2x-lint: allow(alloc) engine-death path, terminates the stream
                        let done = format!(
                            "data: {{\"done\":{{\"outcome\":\"error\",\"error\":\"{}\"}}}}\n\n",
                            // m2x-lint: allow(alloc) engine-death path, terminates the stream
                            json::escape(&e.to_string())
                        );
                        let _ = http::write_chunk(stream, done.as_bytes()).and_then(|()| {
                            http::write_last_chunk(
                                stream,
                                // m2x-lint: allow(alloc) engine-death path, terminates the stream
                                &[(http::OUTCOME_TRAILER, "error".to_string())],
                            )
                        });
                        return true;
                    }
                }
            }
        }
        Ok(StreamEvent::Done(outcome)) => {
            let (status, reason) = outcome_status(&outcome);
            let mut body = outcome_json(&outcome);
            body.push('\n');
            let _ = http::write_response(
                stream,
                status,
                reason,
                "application/json",
                // m2x-lint: allow(alloc) non-streaming terminal response, one per request
                &[("x-m2x-request-id", id.to_string())],
                body.as_bytes(),
                req.keep_alive(),
            );
            false
        }
        Err(e) => {
            let (status, reason) = serve_error_status(&e);
            // m2x-lint: allow(alloc) error response path, not the streaming loop
            let body = format!("{{\"error\":\"{}\"}}\n", json::escape(&e.to_string()));
            respond_json(stream, status, reason, &body, req.keep_alive());
            false
        }
    }
}

/// The client vanished mid-stream: cancel the request so it stops burning
/// a batch slot, then consume its outcome so the scheduler's bookkeeping
/// (and the zero-leak gate) sees it retired.
fn abandon(ctx: &Ctx, id: u64) {
    ctx.counters
        .client_disconnects
        .fetch_add(1, Ordering::Relaxed);
    let _ = ctx.server.cancel(id);
    let _ = ctx.server.wait(id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_nn::model::ModelBuilder;
    use m2x_nn::profile::ModelProfile;
    use m2x_serve::ServeConfig;

    fn test_ctx() -> Ctx {
        let weights = Arc::new(
            ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1)
                .build_weights()
                .unwrap(),
        );
        let server = Arc::new(Server::start(weights, ServeConfig::default()));
        Ctx {
            trace: server.telemetry().register("gateway", 64),
            server,
            cfg: GatewayConfig::default(),
            counters: Arc::new(Counters::default()),
        }
    }

    /// The exact `/metrics` text of a fresh server. This is the pinned
    /// exposition format: any change to metric names, `# HELP`/`# TYPE`
    /// lines, the histogram `le` ladder, or ordering must update this
    /// string deliberately (dashboards parse it).
    const FRESH_METRICS: &str = "\
# HELP m2x_serve_steps Batched scheduler steps executed.
# TYPE m2x_serve_steps counter
m2x_serve_steps 0
# HELP m2x_serve_decoded_tokens Decode tokens produced across all requests.
# TYPE m2x_serve_decoded_tokens counter
m2x_serve_decoded_tokens 0
# HELP m2x_serve_peak_batch Largest number of requests in flight during one step.
# TYPE m2x_serve_peak_batch gauge
m2x_serve_peak_batch 0
# HELP m2x_serve_rejected Requests shed at submission (arrival queue full).
# TYPE m2x_serve_rejected counter
m2x_serve_rejected 0
# HELP m2x_serve_cancelled Requests cancelled.
# TYPE m2x_serve_cancelled counter
m2x_serve_cancelled 0
# HELP m2x_serve_deadline_exceeded Requests expired past their deadline.
# TYPE m2x_serve_deadline_exceeded counter
m2x_serve_deadline_exceeded 0
# HELP m2x_serve_failed Requests failed by a step panic or model error.
# TYPE m2x_serve_failed counter
m2x_serve_failed 0
# HELP m2x_serve_panics_recovered Panics caught by the engine's step isolation.
# TYPE m2x_serve_panics_recovered counter
m2x_serve_panics_recovered 0
# HELP m2x_serve_recovery_ticks Scheduler ticks that ran the reset-and-replay recovery pass.
# TYPE m2x_serve_recovery_ticks counter
m2x_serve_recovery_ticks 0
# HELP m2x_serve_peak_queue_depth Largest arrival-queue depth observed at submission.
# TYPE m2x_serve_peak_queue_depth gauge
m2x_serve_peak_queue_depth 0
# HELP m2x_serve_p99_step_us p99 engine step latency in microseconds.
# TYPE m2x_serve_p99_step_us gauge
m2x_serve_p99_step_us 0
# HELP m2x_serve_kv_pages_in_use KV pool pages held by live sessions (shared pages count once per holder).
# TYPE m2x_serve_kv_pages_in_use gauge
m2x_serve_kv_pages_in_use 0
# HELP m2x_serve_kv_peak_pages High-water mark of KV pool pages in use.
# TYPE m2x_serve_kv_peak_pages gauge
m2x_serve_kv_peak_pages 0
# HELP m2x_serve_kv_page_allocs KV pool pages allocated fresh (free list empty).
# TYPE m2x_serve_kv_page_allocs counter
m2x_serve_kv_page_allocs 0
# HELP m2x_serve_kv_page_reuses KV pool pages recycled from the free list.
# TYPE m2x_serve_kv_page_reuses counter
m2x_serve_kv_page_reuses 0
# HELP m2x_serve_kv_cow_clones Copy-on-write forks of shared or frozen KV pages.
# TYPE m2x_serve_kv_cow_clones counter
m2x_serve_kv_cow_clones 0
# HELP m2x_serve_kv_prefix_hits Frozen prefix pages adopted by admitted requests.
# TYPE m2x_serve_kv_prefix_hits counter
m2x_serve_kv_prefix_hits 0
# HELP m2x_serve_kv_prefix_misses Prefix-cache lookups that adopted nothing.
# TYPE m2x_serve_kv_prefix_misses counter
m2x_serve_kv_prefix_misses 0
# HELP m2x_serve_kv_shared_pages KV pages currently referenced by more than one holder.
# TYPE m2x_serve_kv_shared_pages gauge
m2x_serve_kv_shared_pages 0
# HELP m2x_serve_kv_free_pages KV pages parked on the pool free list.
# TYPE m2x_serve_kv_free_pages gauge
m2x_serve_kv_free_pages 0
# HELP m2x_serve_kv_packed_bytes Packed KV bytes held by in-flight sessions (the budgeted payload).
# TYPE m2x_serve_kv_packed_bytes gauge
m2x_serve_kv_packed_bytes 0
# HELP m2x_serve_kv_decoded_bytes Decoded f32 KV bytes held by in-flight sessions (not budgeted).
# TYPE m2x_serve_kv_decoded_bytes gauge
m2x_serve_kv_decoded_bytes 0
# HELP m2x_serve_kv_fragmentation Unused token-row fraction of the KV pages in flight.
# TYPE m2x_serve_kv_fragmentation gauge
m2x_serve_kv_fragmentation 0
# HELP m2x_serve_step_latency_us Engine step (tick) wall latency in microseconds.
# TYPE m2x_serve_step_latency_us histogram
m2x_serve_step_latency_us_bucket{le=\"0\"} 0
m2x_serve_step_latency_us_bucket{le=\"3\"} 0
m2x_serve_step_latency_us_bucket{le=\"15\"} 0
m2x_serve_step_latency_us_bucket{le=\"63\"} 0
m2x_serve_step_latency_us_bucket{le=\"255\"} 0
m2x_serve_step_latency_us_bucket{le=\"1023\"} 0
m2x_serve_step_latency_us_bucket{le=\"4095\"} 0
m2x_serve_step_latency_us_bucket{le=\"16383\"} 0
m2x_serve_step_latency_us_bucket{le=\"65535\"} 0
m2x_serve_step_latency_us_bucket{le=\"262143\"} 0
m2x_serve_step_latency_us_bucket{le=\"1048575\"} 0
m2x_serve_step_latency_us_bucket{le=\"4194303\"} 0
m2x_serve_step_latency_us_bucket{le=\"16777215\"} 0
m2x_serve_step_latency_us_bucket{le=\"67108863\"} 0
m2x_serve_step_latency_us_bucket{le=\"268435455\"} 0
m2x_serve_step_latency_us_bucket{le=\"+Inf\"} 0
m2x_serve_step_latency_us_sum 0
m2x_serve_step_latency_us_count 0
# HELP m2x_serve_ttft_us Time to first decode token in microseconds, from submission.
# TYPE m2x_serve_ttft_us histogram
m2x_serve_ttft_us_bucket{le=\"0\"} 0
m2x_serve_ttft_us_bucket{le=\"3\"} 0
m2x_serve_ttft_us_bucket{le=\"15\"} 0
m2x_serve_ttft_us_bucket{le=\"63\"} 0
m2x_serve_ttft_us_bucket{le=\"255\"} 0
m2x_serve_ttft_us_bucket{le=\"1023\"} 0
m2x_serve_ttft_us_bucket{le=\"4095\"} 0
m2x_serve_ttft_us_bucket{le=\"16383\"} 0
m2x_serve_ttft_us_bucket{le=\"65535\"} 0
m2x_serve_ttft_us_bucket{le=\"262143\"} 0
m2x_serve_ttft_us_bucket{le=\"1048575\"} 0
m2x_serve_ttft_us_bucket{le=\"4194303\"} 0
m2x_serve_ttft_us_bucket{le=\"16777215\"} 0
m2x_serve_ttft_us_bucket{le=\"67108863\"} 0
m2x_serve_ttft_us_bucket{le=\"268435455\"} 0
m2x_serve_ttft_us_bucket{le=\"+Inf\"} 0
m2x_serve_ttft_us_sum 0
m2x_serve_ttft_us_count 0
# HELP m2x_serve_queue_wait_us Queue wait in microseconds, from submission to admission.
# TYPE m2x_serve_queue_wait_us histogram
m2x_serve_queue_wait_us_bucket{le=\"0\"} 0
m2x_serve_queue_wait_us_bucket{le=\"3\"} 0
m2x_serve_queue_wait_us_bucket{le=\"15\"} 0
m2x_serve_queue_wait_us_bucket{le=\"63\"} 0
m2x_serve_queue_wait_us_bucket{le=\"255\"} 0
m2x_serve_queue_wait_us_bucket{le=\"1023\"} 0
m2x_serve_queue_wait_us_bucket{le=\"4095\"} 0
m2x_serve_queue_wait_us_bucket{le=\"16383\"} 0
m2x_serve_queue_wait_us_bucket{le=\"65535\"} 0
m2x_serve_queue_wait_us_bucket{le=\"262143\"} 0
m2x_serve_queue_wait_us_bucket{le=\"1048575\"} 0
m2x_serve_queue_wait_us_bucket{le=\"4194303\"} 0
m2x_serve_queue_wait_us_bucket{le=\"16777215\"} 0
m2x_serve_queue_wait_us_bucket{le=\"67108863\"} 0
m2x_serve_queue_wait_us_bucket{le=\"268435455\"} 0
m2x_serve_queue_wait_us_bucket{le=\"+Inf\"} 0
m2x_serve_queue_wait_us_sum 0
m2x_serve_queue_wait_us_count 0
# HELP m2x_serve_tokens_per_request Decode tokens delivered per resolved request.
# TYPE m2x_serve_tokens_per_request histogram
m2x_serve_tokens_per_request_bucket{le=\"0\"} 0
m2x_serve_tokens_per_request_bucket{le=\"3\"} 0
m2x_serve_tokens_per_request_bucket{le=\"15\"} 0
m2x_serve_tokens_per_request_bucket{le=\"63\"} 0
m2x_serve_tokens_per_request_bucket{le=\"255\"} 0
m2x_serve_tokens_per_request_bucket{le=\"1023\"} 0
m2x_serve_tokens_per_request_bucket{le=\"4095\"} 0
m2x_serve_tokens_per_request_bucket{le=\"16383\"} 0
m2x_serve_tokens_per_request_bucket{le=\"65535\"} 0
m2x_serve_tokens_per_request_bucket{le=\"262143\"} 0
m2x_serve_tokens_per_request_bucket{le=\"1048575\"} 0
m2x_serve_tokens_per_request_bucket{le=\"4194303\"} 0
m2x_serve_tokens_per_request_bucket{le=\"16777215\"} 0
m2x_serve_tokens_per_request_bucket{le=\"67108863\"} 0
m2x_serve_tokens_per_request_bucket{le=\"268435455\"} 0
m2x_serve_tokens_per_request_bucket{le=\"+Inf\"} 0
m2x_serve_tokens_per_request_sum 0
m2x_serve_tokens_per_request_count 0
# HELP m2x_gateway_connections TCP connections accepted.
# TYPE m2x_gateway_connections counter
m2x_gateway_connections 0
# HELP m2x_gateway_requests HTTP requests fully parsed and routed.
# TYPE m2x_gateway_requests counter
m2x_gateway_requests 0
# HELP m2x_gateway_streams_opened Generation requests that opened an SSE token stream.
# TYPE m2x_gateway_streams_opened counter
m2x_gateway_streams_opened 0
# HELP m2x_gateway_client_disconnects Streams whose client vanished mid-flight.
# TYPE m2x_gateway_client_disconnects counter
m2x_gateway_client_disconnects 0
# HELP m2x_gateway_bad_requests Requests rejected by the HTTP parser or validation.
# TYPE m2x_gateway_bad_requests counter
m2x_gateway_bad_requests 0
# HELP m2x_gateway_healthy 1 while the engine thread is alive and accepting.
# TYPE m2x_gateway_healthy gauge
m2x_gateway_healthy 1
";

    #[test]
    fn fresh_metrics_text_is_pinned() {
        let ctx = test_ctx();
        assert_eq!(render_metrics(&ctx), FRESH_METRICS);
    }

    #[test]
    fn metrics_histograms_count_served_requests() {
        let ctx = test_ctx();
        let prompt = Matrix::from_fn(2, 64, |r, c| ((r + c) as f32 * 0.01).tanh());
        let id = ctx.server.submit(prompt, 3).unwrap();
        ctx.server.wait(id).unwrap();
        let body = render_metrics(&ctx);
        assert!(body.contains("m2x_serve_ttft_us_count 1"), "{body}");
        assert!(body.contains("m2x_serve_queue_wait_us_count 1"));
        assert!(body.contains("m2x_serve_tokens_per_request_sum 3"));
        assert!(body.contains("m2x_serve_tokens_per_request_bucket{le=\"+Inf\"} 1"));
        // The cumulative ladder is monotone for every histogram family.
        for family in [
            "m2x_serve_step_latency_us",
            "m2x_serve_ttft_us",
            "m2x_serve_queue_wait_us",
            "m2x_serve_tokens_per_request",
        ] {
            let mut last = 0u64;
            for line in body
                .lines()
                .filter(|l| l.starts_with(&format!("{family}_bucket")))
            {
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "non-cumulative ladder: {line}");
                last = v;
            }
        }
    }

    #[test]
    fn trace_renders_every_ring_as_chrome_json() {
        let ctx = test_ctx();
        let prompt = Matrix::from_fn(1, 64, |_, c| (c as f32 * 0.02).cos() * 0.3);
        let id = ctx.server.submit(prompt, 2).unwrap();
        ctx.server.wait(id).unwrap();
        ctx.trace.span(stage::GW_STREAM, id as u32, 0, 5, 2);
        let body = render_trace(&ctx);
        let doc = json::parse(&body).expect("trace output must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // One thread_name metadata event per ring: engine, api, gateway.
        let tracks: Vec<&str> = events
            .iter()
            .filter(|e| matches!(e.get("ph").and_then(Json::as_str), Some("M")))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert_eq!(tracks, vec!["engine", "api", "gateway"]);
        // Spans carry ts + dur; instants carry ts + scope.
        assert!(events.iter().any(|e| {
            matches!(e.get("ph").and_then(Json::as_str), Some("X"))
                && matches!(e.get("name").and_then(Json::as_str), Some("tick"))
        }));
        assert!(events.iter().any(|e| {
            matches!(e.get("ph").and_then(Json::as_str), Some("i"))
                && matches!(e.get("name").and_then(Json::as_str), Some("req_token"))
        }));
        // Drains are destructive: an immediate re-render is near-empty.
        let again = render_trace(&ctx);
        let doc2 = json::parse(&again).unwrap();
        let n2 = doc2
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .len();
        assert!(
            n2 <= 3 + 2,
            "second drain should hold only metadata, got {n2}"
        );
    }
}
