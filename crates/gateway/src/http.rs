//! A hardened incremental HTTP/1.1 request parser and response writer —
//! std-only, allocation-light, and built for hostile input.
//!
//! The parser consumes a growing byte buffer (whatever the socket has
//! delivered so far) and either produces one complete [`Request`] plus the
//! number of bytes it consumed, reports that more bytes are needed
//! ([`Parsed::Partial`]), or rejects the input with a typed
//! [`ParseError`] that maps onto a deliberate 4xx/5xx status. Robustness
//! posture:
//!
//! * **Bounded everything** — request head (line + headers) and body are
//!   capped by [`Limits`]; past the cap the request is rejected with
//!   431/413, never buffered further.
//! * **Partial-read tolerant** — any split of the byte stream parses
//!   identically; a request arriving one byte at a time works (pinned by
//!   tests).
//! * **Pipeline ready** — the consumed-byte count lets the connection
//!   loop carve multiple requests out of one buffer.
//! * **Malformed input is a typed error**, never a panic: bad request
//!   lines, non-token methods, bad header syntax, conflicting or
//!   non-numeric `Content-Length`, unsupported `Transfer-Encoding` on a
//!   request body, and unsupported HTTP versions all land in
//!   [`ParseError`].

use std::io::{self, Write};

/// Parser bounds; see [`crate::GatewayConfig`] for the serving defaults.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (the head).
    pub max_head_bytes: usize,
    /// Maximum bytes of request body (`Content-Length` is checked before
    /// any body byte is buffered).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path plus optional query), e.g. `/v1/generate`.
    pub target: String,
    /// Headers in arrival order; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` if the client asked to keep the connection open (HTTP/1.1
    /// default; an explicit `Connection: close` wins).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Parse progress over an incomplete buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// One full request parsed; `consumed` bytes belong to it (the rest of
    /// the buffer is the next pipelined request).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed.
        consumed: usize,
    },
    /// Not enough bytes yet.
    Partial {
        /// The head (request line + headers) parsed cleanly; only body
        /// bytes are missing. When this flips to `true` and the client
        /// sent `Expect: 100-continue`, the server should emit the interim
        /// `100 Continue` response.
        headers_complete: bool,
        /// The incomplete request carries `Expect: 100-continue`.
        expects_continue: bool,
    },
}

/// Typed rejection of malformed or abusive input; [`ParseError::status`]
/// maps each variant onto its deliberate response code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line is not `METHOD SP TARGET SP VERSION`.
    BadRequestLine(String),
    /// A header line has no colon, an empty name, or non-token name bytes.
    BadHeader(String),
    /// Request line + headers exceed [`Limits::max_head_bytes`] → 431.
    HeadTooLarge,
    /// Declared `Content-Length` exceeds [`Limits::max_body_bytes`] → 413.
    BodyTooLarge,
    /// `Content-Length` missing digits, non-numeric, or conflicting.
    BadContentLength(String),
    /// Request bodies with `Transfer-Encoding` are not accepted → 501.
    UnsupportedTransferEncoding,
    /// Only HTTP/1.0 and HTTP/1.1 are spoken → 505.
    UnsupportedVersion(String),
}

impl ParseError {
    /// The status line this rejection maps onto.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ParseError::HeadTooLarge => (431, "Request Header Fields Too Large"),
            ParseError::BodyTooLarge => (413, "Content Too Large"),
            ParseError::UnsupportedTransferEncoding => (501, "Not Implemented"),
            ParseError::UnsupportedVersion(_) => (505, "HTTP Version Not Supported"),
            _ => (400, "Bad Request"),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadRequestLine(d) => write!(f, "malformed request line: {d}"),
            ParseError::BadHeader(d) => write!(f, "malformed header: {d}"),
            ParseError::HeadTooLarge => write!(f, "request head exceeds the configured limit"),
            ParseError::BodyTooLarge => write!(f, "request body exceeds the configured limit"),
            ParseError::BadContentLength(d) => write!(f, "bad content-length: {d}"),
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding request bodies are not supported")
            }
            ParseError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// `true` for RFC 9110 token characters (header names, methods).
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Tries to parse one complete request from the front of `buf`.
///
/// Call again with the same (grown) buffer after more bytes arrive; the
/// result is independent of how the bytes were split across reads.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parsed, ParseError> {
    // Locate the end of the head within the bounded window.
    let window = &buf[..buf.len().min(limits.max_head_bytes)];
    let head_end = match find_double_crlf(window) {
        Some(e) => e,
        None => {
            if buf.len() >= limits.max_head_bytes {
                return Err(ParseError::HeadTooLarge);
            }
            return Ok(Parsed::Partial {
                headers_complete: false,
                expects_continue: false,
            });
        }
    };
    let head = &buf[..head_end];
    let head_str =
        std::str::from_utf8(head).map_err(|_| ParseError::BadHeader("non-UTF-8 head".into()))?;
    let mut lines = head_str.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ParseError::BadRequestLine("empty head".into()))?;

    // Request line: METHOD SP TARGET SP VERSION — exactly three parts.
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::BadRequestLine(limit_len(request_line))),
    };
    if !method.bytes().all(is_token_byte) {
        return Err(ParseError::BadRequestLine(format!(
            "non-token method {:?}",
            limit_len(method)
        )));
    }
    if !(target.starts_with('/') || target == "*") {
        return Err(ParseError::BadRequestLine(format!(
            "target {:?} does not start with '/'",
            limit_len(target)
        )));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::UnsupportedVersion(limit_len(version)));
    }

    // Headers.
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue; // the blank line terminating the head
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            // Obsolete line folding — reject rather than misinterpret.
            return Err(ParseError::BadHeader("obsolete line folding".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::BadHeader(format!("no colon in {:?}", limit_len(line))))?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(ParseError::BadHeader(format!(
                "bad field name {:?}",
                limit_len(name)
            )));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let n: usize = value
                .parse()
                .map_err(|_| ParseError::BadContentLength(limit_len(&value)))?;
            if let Some(prev) = content_length {
                if prev != n {
                    return Err(ParseError::BadContentLength(format!(
                        "conflicting values {prev} and {n}"
                    )));
                }
            }
            content_length = Some(n);
        }
        if name == "transfer-encoding" {
            return Err(ParseError::UnsupportedTransferEncoding);
        }
        headers.push((name, value));
    }

    // Body: fixed-size via Content-Length only.
    let body_len = content_length.unwrap_or(0);
    if body_len > limits.max_body_bytes {
        return Err(ParseError::BodyTooLarge);
    }
    let total = head_end + 4 + body_len;
    if buf.len() < total {
        let expects_continue = headers
            .iter()
            .any(|(n, v)| n == "expect" && v.eq_ignore_ascii_case("100-continue"));
        return Ok(Parsed::Partial {
            headers_complete: true,
            expects_continue,
        });
    }
    Ok(Parsed::Complete {
        request: Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: buf[head_end + 4..total].to_vec(),
        },
        consumed: total,
    })
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Truncates pathological input echoed back in error details.
fn limit_len(s: &str) -> String {
    const MAX: usize = 64;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

/// Writes a complete non-streaming response with a `Content-Length` body.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Writes the head of a chunked SSE streaming response. The connection
/// always closes after a stream (`connection: close`), and the declared
/// trailer carries the request's final outcome.
pub fn write_stream_head(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: text/event-stream\r\ntransfer-encoding: chunked\r\ntrailer: {OUTCOME_TRAILER}\r\ncache-control: no-store\r\nconnection: close\r\n"
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.flush()
}

/// Name of the trailer field carrying the final
/// [`RequestOutcome`](m2x_serve::RequestOutcome) kind of a token stream.
pub const OUTCOME_TRAILER: &str = "x-m2x-outcome";

/// Writes one chunk of a chunked response and flushes it (each SSE frame
/// must reach the client as soon as the scheduler produced it).
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked response: zero-length chunk, then trailers.
pub fn write_last_chunk(w: &mut impl Write, trailers: &[(&str, String)]) -> io::Result<()> {
    w.write_all(b"0\r\n")?;
    for (name, value) in trailers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(buf: &[u8]) -> Result<Parsed, ParseError> {
        parse_request(buf, &Limits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let raw = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
        match parse(raw).unwrap() {
            Parsed::Complete { request, consumed } => {
                assert_eq!(consumed, raw.len());
                assert_eq!(request.method, "GET");
                assert_eq!(request.target, "/healthz");
                assert_eq!(request.header("host"), Some("x"));
                assert!(request.body.is_empty());
                assert!(request.keep_alive());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_identically_for_any_read_split() {
        let raw = b"POST /v1/generate HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\nhello world";
        let full = parse(raw).unwrap();
        for cut in 0..raw.len() {
            let partial = parse(&raw[..cut]).unwrap();
            assert!(
                matches!(partial, Parsed::Partial { .. }),
                "cut {cut}: {partial:?}"
            );
            assert_eq!(parse(raw).unwrap(), full, "cut {cut} corrupted state");
        }
        match full {
            Parsed::Complete { request, .. } => {
                assert_eq!(request.body, b"hello world");
                assert!(!request.keep_alive());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reports_headers_complete_while_body_is_missing() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 5\r\nexpect: 100-continue\r\n\r\nab";
        assert_eq!(
            parse(raw).unwrap(),
            Parsed::Partial {
                headers_complete: true,
                expects_continue: true,
            }
        );
    }

    #[test]
    fn pipelined_requests_are_carved_sequentially() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec();
        let Parsed::Complete { request, consumed } = parse(&raw).unwrap() else {
            panic!("first request should be complete");
        };
        assert_eq!(request.target, "/a");
        let Parsed::Complete {
            request,
            consumed: c2,
        } = parse(&raw[consumed..]).unwrap()
        else {
            panic!("second request should be complete");
        };
        assert_eq!(request.target, "/b");
        assert_eq!(consumed + c2, raw.len());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"G@T /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
        ] {
            let e = parse(raw).unwrap_err();
            assert_eq!(e.status().0, 400, "{raw:?} → {e}");
        }
    }

    #[test]
    fn rejects_unsupported_versions_with_505() {
        let e = parse(b"GET / HTTP/2.0\r\n\r\n").unwrap_err();
        assert_eq!(e, ParseError::UnsupportedVersion("HTTP/2.0".into()));
        assert_eq!(e.status().0, 505);
        assert!(matches!(
            parse(b"GET / HTTP/1.0\r\n\r\n").unwrap(),
            Parsed::Complete { .. }
        ));
    }

    #[test]
    fn rejects_oversized_heads_with_431() {
        let limits = Limits {
            max_head_bytes: 128,
            max_body_bytes: 1024,
        };
        let mut raw = b"GET / HTTP/1.1\r\nx-filler: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 256));
        let e = parse_request(&raw, &limits).unwrap_err();
        assert_eq!(e, ParseError::HeadTooLarge);
        assert_eq!(e.status().0, 431);
    }

    #[test]
    fn rejects_oversized_bodies_with_413_before_buffering() {
        let limits = Limits {
            max_head_bytes: 1024,
            max_body_bytes: 16,
        };
        // The declared length alone triggers the rejection — no body byte
        // has arrived yet.
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 17\r\n\r\n";
        let e = parse_request(raw, &limits).unwrap_err();
        assert_eq!(e, ParseError::BodyTooLarge);
        assert_eq!(e.status().0, 413);
    }

    #[test]
    fn rejects_bad_headers_and_content_lengths() {
        for raw in [
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"GET / HTTP/1.1\r\nok: v\r\n continuation\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: ten\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: -1\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\n",
        ] {
            let e = parse(raw).unwrap_err();
            assert_eq!(
                e.status().0,
                400,
                "{:?} → {e}",
                String::from_utf8_lossy(raw)
            );
        }
        // Duplicate but agreeing lengths are tolerated.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nok").unwrap(),
            Parsed::Complete { .. }
        ));
    }

    #[test]
    fn rejects_transfer_encoding_with_501() {
        let e = parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(e, ParseError::UnsupportedTransferEncoding);
        assert_eq!(e.status().0, 501);
    }

    #[test]
    fn truncated_body_stays_partial_until_eof_handling_kicks_in() {
        // A body shorter than content-length never completes; the
        // connection loop turns EOF-while-partial into a 400.
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        assert_eq!(
            parse(raw).unwrap(),
            Parsed::Partial {
                headers_complete: true,
                expects_continue: false,
            }
        );
    }

    #[test]
    fn chunk_writers_produce_valid_framing() {
        let mut out = Vec::new();
        write_chunk(&mut out, b"data: x\n\n").unwrap();
        write_last_chunk(&mut out, &[(OUTCOME_TRAILER, "finished".to_string())]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "9\r\ndata: x\n\n\r\n0\r\nx-m2x-outcome: finished\r\n\r\n"
        );
    }
}
