//! A minimal, std-only JSON parser and writer for the gateway's request
//! and response bodies (the workspace builds offline — no serde).
//!
//! Supports the full JSON value grammar (objects, arrays, numbers,
//! strings with escapes incl. `\uXXXX` surrogate pairs, booleans, null)
//! with a recursion-depth cap so hostile bodies cannot blow the worker's
//! stack. Numbers are `f64`, which covers every value the HTTP API
//! carries (f32 activations round-trip exactly through their shortest
//! decimal form).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order preserved; duplicate keys keep last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last duplicate wins, per common practice).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: byte position and reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the failure was detected at.
    pub pos: usize,
    /// Human-readable reason.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth accepted (arrays + objects combined).
const MAX_DEPTH: usize = 32;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ascii bytes in number"))?;
        let n: f64 = text
            .parse()
            .map_err(|e| self.err(format!("bad number {text:?}: {e}")))?;
        if !n.is_finite() {
            return Err(self.err(format!("number {text:?} overflows f64")));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect_byte(b'u')
                                    .map_err(|_| self.err("lone high surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape \\{}", other as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is validated UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unexpected end of string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f32` as its shortest decimal that round-trips to the same
/// bits — the property the gateway's bit-identity guarantee rides on
/// (Rust's `Display` for floats is shortest-round-trip by definition).
pub fn f32_repr(v: f32) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the fraction for integral floats; keep the value
        // a JSON number either way (it already is).
        s
    } else {
        // Engine outputs are finite by construction; belt-and-braces.
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn parses_unicode_escapes_and_surrogate_pairs() {
        let v = parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        assert!(parse(r#""\ud83d""#).is_err()); // lone high surrogate
        assert!(parse(r#""\udc00""#).is_err()); // lone low surrogate
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\x\"",
            "\"unterminated",
            "[1]]",
            "{\"a\":1,}",
        ] {
            assert!(parse(doc).is_err(), "{doc:?} should fail");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(16) + &"]".repeat(16);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn f32_repr_round_trips_bits() {
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.5,
            0.1,
            f32::MIN_POSITIVE,
            f32::MAX,
            3.156e-20,
            -7.77e18,
            0.24982634,
        ] {
            let back: f64 = f32_repr(v).parse().unwrap();
            assert_eq!(
                (back as f32).to_bits(),
                v.to_bits(),
                "{v} did not round-trip"
            );
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
