//! A minimal blocking HTTP client for the gateway — used by the crate's
//! socket-level tests, the `examples/gateway.rs` walkthrough, and the
//! bench load driver. Std-only like everything else: raw [`TcpStream`],
//! hand-rolled response parsing (Content-Length and chunked bodies,
//! trailers), and SSE frame reassembly that recovers streamed token rows
//! bit-exactly.

use crate::json::{self, Json};
use m2x_tensor::Matrix;

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Header or trailer fields: `(lowercased name, value)` in arrival order.
pub type Fields = Vec<(String, String)>;

/// A fully read HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Reason phrase from the status line.
    pub reason: String,
    /// Headers, names lowercased, in arrival order.
    pub headers: Fields,
    /// The decoded body (chunked framing removed if present).
    pub body: Vec<u8>,
    /// Trailer fields of a chunked body (names lowercased).
    pub trailers: Fields,
}

impl Response {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Case-insensitive trailer lookup (first match).
    pub fn trailer(&self, name: &str) -> Option<&str> {
        self.trailers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Parses a full response held in `raw` (read to EOF — the helpers here
/// always send `connection: close`).
pub fn parse_response(raw: &[u8]) -> io::Result<Response> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response head never terminated"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("bad status line {status_line:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status code"))?;
    let reason = parts.next().unwrap_or_default().to_string();
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let rest = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let (body, trailers) = if chunked {
        decode_chunked(rest)?
    } else {
        let len = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        match len {
            Some(len) if rest.len() >= len => (rest[..len].to_vec(), Vec::new()),
            Some(len) => return Err(bad(format!("body truncated: {} < {len}", rest.len()))),
            None => (rest.to_vec(), Vec::new()),
        }
    };
    Ok(Response {
        status,
        reason,
        headers,
        body,
        trailers,
    })
}

/// Decodes a chunked body, returning the payload and the trailers.
fn decode_chunked(mut rest: &[u8]) -> io::Result<(Vec<u8>, Fields)> {
    let mut body = Vec::new();
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| bad("chunk size line truncated"))?;
        let size_line =
            std::str::from_utf8(&rest[..line_end]).map_err(|_| bad("bad chunk size"))?;
        let size = usize::from_str_radix(size_line.split(';').next().unwrap_or("").trim(), 16)
            .map_err(|_| bad(format!("bad chunk size {size_line:?}")))?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            // Trailers until the blank line.
            let mut trailers = Vec::new();
            loop {
                let line_end = rest
                    .windows(2)
                    .position(|w| w == b"\r\n")
                    .ok_or_else(|| bad("trailer section truncated"))?;
                let line =
                    std::str::from_utf8(&rest[..line_end]).map_err(|_| bad("non-UTF-8 trailer"))?;
                rest = &rest[line_end + 2..];
                if line.is_empty() {
                    return Ok((body, trailers));
                }
                let (name, value) = line.split_once(':').ok_or_else(|| bad("bad trailer"))?;
                trailers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        if rest.len() < size + 2 {
            return Err(bad("chunk payload truncated"));
        }
        body.extend_from_slice(&rest[..size]);
        if &rest[size..size + 2] != b"\r\n" {
            return Err(bad("chunk not CRLF-terminated"));
        }
        rest = &rest[size + 2..];
    }
}

/// Sends `raw` request bytes and reads the response to EOF. Returns
/// `(status, headers, body)`; include `connection: close` in the request
/// so the server actually closes.
pub fn http_request(addr: SocketAddr, raw: &[u8]) -> io::Result<(u16, Fields, Vec<u8>)> {
    let resp = http_request_full(addr, raw)?;
    Ok((resp.status, resp.headers, resp.body))
}

/// Like [`http_request`] but returns the full [`Response`] including
/// trailers.
pub fn http_request_full(addr: SocketAddr, raw: &[u8]) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(raw)?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    parse_response(&buf)
}

/// The reassembled result of one `POST /v1/generate` call.
#[derive(Debug, Clone)]
pub struct Generated {
    /// HTTP status of the response.
    pub status: u16,
    /// Streamed token rows in decode order (`[n, hidden]`; empty when the
    /// response carried no token frames).
    pub tokens: Matrix,
    /// The final outcome kind: the `x-m2x-outcome` trailer of a stream,
    /// or the `outcome` field of a non-streaming JSON body.
    pub outcome: Option<String>,
    /// The final `done` frame (streaming) or the whole JSON body
    /// (non-streaming), parsed.
    pub done: Option<Json>,
    /// Number of SSE token frames received.
    pub frames: usize,
}

/// Renders the `POST /v1/generate` request body for `prompt`.
pub fn generate_body(
    prompt: &Matrix,
    max_tokens: usize,
    deadline_ms: Option<u64>,
    deadline_steps: Option<u64>,
) -> String {
    let mut body = String::from("{\"prompt\":[");
    for r in 0..prompt.rows() {
        if r > 0 {
            body.push(',');
        }
        body.push('[');
        for (c, v) in prompt.row(r).iter().enumerate() {
            if c > 0 {
                body.push(',');
            }
            body.push_str(&json::f32_repr(*v));
        }
        body.push(']');
    }
    body.push_str(&format!("],\"max_tokens\":{max_tokens}"));
    if let Some(ms) = deadline_ms {
        body.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    if let Some(steps) = deadline_steps {
        body.push_str(&format!(",\"deadline_steps\":{steps}"));
    }
    body.push('}');
    body
}

/// Submits `prompt` to a gateway's `POST /v1/generate` and reassembles
/// the streamed token rows — the exact bits the engine produced, by the
/// shortest-round-trip-decimal argument (see [`json::f32_repr`]).
pub fn generate(
    addr: SocketAddr,
    prompt: &Matrix,
    max_tokens: usize,
    deadline_ms: Option<u64>,
    deadline_steps: Option<u64>,
) -> io::Result<Generated> {
    let body = generate_body(prompt, max_tokens, deadline_ms, deadline_steps);
    let request = format!(
        "POST /v1/generate HTTP/1.1\r\nhost: gateway\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let resp = http_request_full(addr, request.as_bytes())?;
    decode_generated(&resp)
}

/// Reassembles a [`Generated`] from a finished `/v1/generate` response.
pub fn decode_generated(resp: &Response) -> io::Result<Generated> {
    let streaming = resp
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/event-stream"));
    if !streaming {
        let text = std::str::from_utf8(&resp.body).map_err(|_| bad("non-UTF-8 body"))?;
        let done = json::parse(text.trim()).ok();
        let outcome = done
            .as_ref()
            .and_then(|d| d.get("outcome"))
            .and_then(Json::as_str)
            .map(str::to_string);
        return Ok(Generated {
            status: resp.status,
            tokens: Matrix::zeros(0, 0),
            outcome,
            done,
            frames: 0,
        });
    }
    let text = std::str::from_utf8(&resp.body).map_err(|_| bad("non-UTF-8 SSE body"))?;
    let mut tokens: Option<Matrix> = None;
    let mut frames = 0usize;
    let mut done = None;
    for frame in text.split("\n\n").filter(|f| !f.is_empty()) {
        let payload = frame
            .strip_prefix("data: ")
            .ok_or_else(|| bad(format!("frame without data prefix: {frame:?}")))?;
        let v = json::parse(payload).map_err(|e| bad(format!("bad frame JSON: {e}")))?;
        if let Some(d) = v.get("done") {
            done = Some(d.clone());
            continue;
        }
        let index = v
            .get("index")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("token frame without index"))?;
        let row = v
            .get("token")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("token frame without token array"))?;
        let m = tokens.get_or_insert_with(|| Matrix::zeros(0, row.len()));
        if index != m.rows() {
            return Err(bad(format!(
                "out-of-order frame: index {index}, expected {}",
                m.rows()
            )));
        }
        let vals: Vec<f32> = row
            .iter()
            .map(|v| v.as_f64().map(|f| f as f32))
            .collect::<Option<_>>()
            .ok_or_else(|| bad("non-numeric token value"))?;
        m.push_rows(&Matrix::from_vec(1, vals.len(), vals));
        frames += 1;
    }
    let outcome = resp
        .trailer(crate::http::OUTCOME_TRAILER)
        .map(str::to_string)
        .or_else(|| {
            done.as_ref()
                .and_then(|d| d.get("outcome"))
                .and_then(Json::as_str)
                .map(str::to_string)
        });
    Ok(Generated {
        status: resp.status,
        tokens: tokens.unwrap_or_else(|| Matrix::zeros(0, 0)),
        outcome,
        done,
        frames,
    })
}
