//! Socket-level tests of the gateway: every documented status code is
//! exercised over a real TCP connection against a live scheduler, and the
//! streamed token bytes are reassembled and compared bit-for-bit against
//! the solo oracle.

use m2x_gateway::{client, Gateway, GatewayConfig, Limits};
use m2x_nn::model::{ModelBuilder, ModelWeights};
use m2x_nn::profile::ModelProfile;
use m2x_nn::synth::activation_matrix;
use m2x_serve::{run_solo, Fault, FaultPlan, ServeConfig, Server};
use m2x_tensor::Matrix;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn weights(hidden: usize) -> Arc<ModelWeights> {
    Arc::new(
        ModelBuilder::scaled(&ModelProfile::llama3_8b(), hidden, 1)
            .build_weights()
            .unwrap(),
    )
}

fn prompt(tokens: usize, seed: usize, hidden: usize) -> Matrix {
    activation_matrix(&ModelProfile::llama3_8b(), seed, tokens, hidden).map(|v| (v * 0.25).tanh())
}

fn gateway_over(weights: &Arc<ModelWeights>, serve_cfg: ServeConfig) -> (Gateway, Arc<Server>) {
    let server = Arc::new(Server::start(Arc::clone(weights), serve_cfg));
    let gw = Gateway::bind(Arc::clone(&server), GatewayConfig::default()).unwrap();
    (gw, server)
}

/// A gateway whose `max_tokens` cap admits the very long streams the
/// disconnect tests need (they never run to completion).
fn gateway_long_streams(weights: &Arc<ModelWeights>) -> (Gateway, Arc<Server>) {
    let server = Arc::new(Server::start(Arc::clone(weights), ServeConfig::default()));
    let gw = Gateway::bind(
        Arc::clone(&server),
        GatewayConfig {
            max_decode_steps: 100_000,
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    (gw, server)
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}");
    }
}

/// The tentpole invariant: tokens reassembled from the SSE frames of a
/// `POST /v1/generate` stream are bit-identical to the solo run.
#[test]
fn streamed_generation_bit_identical_to_solo() {
    let w = weights(64);
    let (gw, _server) = gateway_over(&w, ServeConfig::default());
    for seed in 0..3 {
        let p = prompt(2 + seed, seed, 64);
        let steps = 3 + seed;
        let got = client::generate(gw.local_addr(), &p, steps, None, None).unwrap();
        assert_eq!(got.status, 200, "case {seed}");
        assert_eq!(got.outcome.as_deref(), Some("finished"), "case {seed}");
        assert_eq!(got.frames, steps, "case {seed}");
        let solo = run_solo(&w, &p, steps).unwrap();
        assert_bits_eq(&got.tokens, &solo, &format!("case {seed}"));
    }
    assert_eq!(gw.stats().streams_opened, 3);
    assert_eq!(gw.stats().client_disconnects, 0);
}

/// Deadline already expired at submission → non-streaming `504` with the
/// outcome payload.
#[test]
fn expired_deadline_maps_to_504() {
    let w = weights(64);
    let (gw, _server) = gateway_over(&w, ServeConfig::default());
    let got = client::generate(gw.local_addr(), &prompt(1, 0, 64), 50, None, Some(0)).unwrap();
    assert_eq!(got.status, 504);
    assert_eq!(got.outcome.as_deref(), Some("deadline_exceeded"));
    assert_eq!(got.frames, 0);
}

/// Queue shedding → `429` carrying the observed queue depth. The engine is
/// stalled with an injected delay so the burst deterministically overflows
/// the size-1 arrival queue.
#[test]
fn queue_overflow_maps_to_429_with_depth() {
    let w = weights(64);
    let server = Arc::new(Server::start_with_faults(
        Arc::clone(&w),
        ServeConfig {
            max_batch: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        },
        FaultPlan::new(vec![
            Fault::Delay {
                tick: 0,
                micros: 300_000,
            },
            Fault::Delay {
                tick: 1,
                micros: 300_000,
            },
        ]),
    ));
    let gw = Gateway::bind(Arc::clone(&server), GatewayConfig::default()).unwrap();

    // A concurrent burst while the engine sits in the injected stalls:
    // one request is in flight, one occupies the size-1 queue, the rest
    // are shed at submission.
    let addr = gw.local_addr();
    let results: Vec<_> = (0..4)
        .map(|seed| {
            std::thread::spawn(move || {
                client::generate(addr, &prompt(1, seed, 64), 4, None, None).unwrap()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    assert!(
        results.iter().any(|r| r.status == 200),
        "statuses {:?}",
        results.iter().map(|r| r.status).collect::<Vec<_>>()
    );
    let rejected = results
        .into_iter()
        .find(|r| r.status == 429)
        .expect("a burst against a stalled size-1 queue must shed");
    assert_eq!(rejected.outcome.as_deref(), Some("rejected"));
    let depth = rejected
        .done
        .as_ref()
        .and_then(|d| d.get("queue_depth"))
        .and_then(m2x_gateway::Json::as_usize)
        .expect("429 body carries queue_depth");
    assert!(depth >= 1, "queue depth {depth}");
}

/// A step panic pinned on the only in-flight request → `500` with the
/// panic message, before any token frame was produced (recovery discards
/// pre-publication progress, so the stream never opens).
#[test]
fn isolated_failure_maps_to_500() {
    let w = weights(64);
    let server = Arc::new(Server::start_with_faults(
        Arc::clone(&w),
        ServeConfig::default(),
        FaultPlan::new(vec![Fault::StepPanic { tick: 0, slot: 0 }]),
    ));
    let gw = Gateway::bind(Arc::clone(&server), GatewayConfig::default()).unwrap();
    let got = client::generate(gw.local_addr(), &prompt(1, 0, 64), 4, None, None).unwrap();
    assert_eq!(got.status, 500);
    assert_eq!(got.outcome.as_deref(), Some("failed"));
    // The scheduler survives the injected panic: the next request is fine.
    let p = prompt(2, 1, 64);
    let ok = client::generate(gw.local_addr(), &p, 3, None, None).unwrap();
    assert_eq!(ok.status, 200);
    assert_bits_eq(&ok.tokens, &run_solo(&w, &p, 3).unwrap(), "post-panic");
}

/// Malformed bodies → `400` with a JSON error, connection still usable
/// (keep-alive): ragged prompts, missing/oversized `max_tokens`, broken
/// JSON, wrong width (the scheduler's own validation surfaces as 400 too).
#[test]
fn invalid_generate_bodies_map_to_400() {
    let w = weights(64);
    let (gw, _server) = gateway_over(&w, ServeConfig::default());
    let cases: &[&str] = &[
        "{not json",
        "{\"max_tokens\":3}",
        "{\"prompt\":[],\"max_tokens\":3}",
        "{\"prompt\":[[0.1],[0.2,0.3]],\"max_tokens\":3}",
        "{\"prompt\":[[0.1,0.2]],\"max_tokens\":-1}",
        "{\"prompt\":[[0.1,0.2]],\"max_tokens\":999999999}",
        "{\"prompt\":[[0.1,\"x\"]],\"max_tokens\":3}",
        "{\"prompt\":[[0.1,0.2]],\"max_tokens\":3}", // width 2 != hidden 64
    ];
    for body in cases {
        let raw = format!(
            "POST /v1/generate HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        );
        let (status, _, resp) = client::http_request(gw.local_addr(), raw.as_bytes()).unwrap();
        assert_eq!(
            status,
            400,
            "body {body:?} → {}",
            String::from_utf8_lossy(&resp)
        );
    }
    assert!(gw.stats().bad_requests >= cases.len() as u64);
}

/// Routing: unknown paths → 404, wrong methods → 405 with `allow`.
#[test]
fn routing_404_and_405() {
    let w = weights(64);
    let (gw, _server) = gateway_over(&w, ServeConfig::default());
    let (status, _, _) = client::http_request(
        gw.local_addr(),
        b"GET /nope HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
    )
    .unwrap();
    assert_eq!(status, 404);
    let (status, headers, _) = client::http_request(
        gw.local_addr(),
        b"GET /v1/generate HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
    )
    .unwrap();
    assert_eq!(status, 405);
    let allow = headers
        .iter()
        .find(|(n, _)| n == "allow")
        .map(|(_, v)| v.as_str());
    assert_eq!(allow, Some("POST"));
    let (status, _, _) = client::http_request(
        gw.local_addr(),
        b"POST /metrics HTTP/1.1\r\nhost: x\r\ncontent-length: 0\r\nconnection: close\r\n\r\n",
    )
    .unwrap();
    assert_eq!(status, 405);
}

/// Parser hardening over the socket: malformed request line → 400,
/// oversized head → 431, oversized declared body → 413,
/// Transfer-Encoding on a request → 501.
#[test]
fn parser_rejections_over_socket() {
    let w = weights(64);
    let server = Arc::new(Server::start(Arc::clone(&w), ServeConfig::default()));
    let gw = Gateway::bind(
        Arc::clone(&server),
        GatewayConfig {
            limits: Limits {
                max_head_bytes: 512,
                max_body_bytes: 1024,
            },
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    let cases: &[(&[u8], u16)] = &[
        (b"BORKED\r\n\r\n", 400),
        (b"GET / HTTP/2.0\r\nhost: x\r\n\r\n", 505),
        (
            b"POST /v1/generate HTTP/1.1\r\nhost: x\r\ntransfer-encoding: chunked\r\n\r\n",
            501,
        ),
        (
            b"POST /v1/generate HTTP/1.1\r\nhost: x\r\ncontent-length: 99999\r\n\r\n",
            413,
        ),
    ];
    for (raw, want) in cases {
        let (status, _, _) = client::http_request(gw.local_addr(), raw).unwrap();
        assert_eq!(status, *want, "request {:?}", String::from_utf8_lossy(raw));
    }
    // Oversized head (431): a single header bigger than the cap.
    let raw = format!(
        "GET /healthz HTTP/1.1\r\nhost: x\r\nx-pad: {}\r\n\r\n",
        "y".repeat(1024)
    );
    let (status, _, _) = client::http_request(gw.local_addr(), raw.as_bytes()).unwrap();
    assert_eq!(status, 431);
}

/// Keep-alive + pipelining: two requests written back-to-back on one
/// connection get two complete responses, in order, on that connection.
#[test]
fn pipelined_requests_share_a_connection() {
    let w = weights(64);
    let (gw, _server) = gateway_over(&w, ServeConfig::default());
    let mut stream = TcpStream::connect(gw.local_addr()).unwrap();
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\nGET /metrics HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
    assert!(text.contains("ok\n"), "{text}");
    assert!(text.contains("m2x_serve_steps"), "{text}");
    assert_eq!(gw.stats().connections, 1);
    assert_eq!(gw.stats().requests, 2);
}

/// `Expect: 100-continue` gets the interim response before the body is
/// sent, then the real response.
#[test]
fn expect_100_continue_handshake() {
    let w = weights(64);
    let (gw, _server) = gateway_over(&w, ServeConfig::default());
    let mut stream = TcpStream::connect(gw.local_addr()).unwrap();
    let p = prompt(1, 0, 64);
    let body = client::generate_body(&p, 2, None, None);
    stream
        .write_all(
            format!(
                "POST /v1/generate HTTP/1.1\r\nhost: x\r\nexpect: 100-continue\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    // Wait for the interim response before sending the body.
    let mut interim = [0u8; 25];
    stream.read_exact(&mut interim).unwrap();
    assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let resp = client::parse_response(&raw).unwrap();
    assert_eq!(resp.status, 200);
    let got = client::decode_generated(&resp).unwrap();
    assert_bits_eq(&got.tokens, &run_solo(&w, &p, 2).unwrap(), "100-continue");
}

/// Tokens are flushed as produced: the first SSE frame arrives while the
/// request is still decoding (long before the stream completes).
#[test]
fn frames_arrive_incrementally() {
    let w = weights(64);
    let (gw, server) = gateway_long_streams(&w);
    let mut stream = TcpStream::connect(gw.local_addr()).unwrap();
    let p = prompt(1, 0, 64);
    let body = client::generate_body(&p, 20_000, None, None);
    stream
        .write_all(
            format!(
                "POST /v1/generate HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    // Read just the head + first frame; the 20k-step request is nowhere
    // near done, so these bytes existing proves per-token flushing.
    let mut got = Vec::new();
    let mut chunk = [0u8; 1024];
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        let n = stream.read(&mut chunk).unwrap();
        if n == 0 {
            break;
        }
        got.extend_from_slice(&chunk[..n]);
        let text = String::from_utf8_lossy(&got);
        if text.contains("\"index\":0") {
            assert!(text.contains("HTTP/1.1 200 OK"));
            assert!(text.contains("text/event-stream"));
            // Cancel the rest so the test doesn't decode 20k steps.
            drop(stream);
            // The disconnect-cancel path retires the request.
            let deadline = Instant::now() + Duration::from_secs(20);
            while server.stats().cancelled == 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
            assert_eq!(server.stats().cancelled, 1, "disconnect must cancel");
            return;
        }
    }
    panic!(
        "first frame never arrived; got {:?}",
        String::from_utf8_lossy(&got)
    );
}

/// A client that vanishes mid-stream triggers `cancel`: the scheduler
/// retires the request (outcome consumed — zero leak) and its session is
/// released so `open_sessions` returns to zero.
#[test]
fn mid_stream_disconnect_cancels_and_leaks_nothing() {
    let w = weights(64);
    let (gw, server) = gateway_long_streams(&w);
    let mut stream = TcpStream::connect(gw.local_addr()).unwrap();
    let p = prompt(1, 0, 64);
    let body = client::generate_body(&p, 50_000, None, None);
    stream
        .write_all(
            format!(
                "POST /v1/generate HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    // Wait for the stream to open, then slam the connection shut.
    let mut first = [0u8; 64];
    stream.read_exact(&mut first).unwrap();
    drop(stream);

    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if server.stats().cancelled == 1
            && w.open_sessions() == 0
            && gw.stats().client_disconnects == 1
        {
            return; // cancelled, session released, outcome consumed
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "disconnect not fully reaped: cancelled={} open_sessions={} disconnects={}",
        server.stats().cancelled,
        w.open_sessions(),
        gw.stats().client_disconnects
    );
}

/// `/healthz` reports a live engine; `/metrics` exposes the scheduler and
/// gateway counter families in the documented text format.
#[test]
fn healthz_and_metrics_reflect_server_state() {
    let w = weights(64);
    let server = Arc::new(Server::start(Arc::clone(&w), ServeConfig::default()));
    let gw = Gateway::bind(Arc::clone(&server), GatewayConfig::default()).unwrap();
    let (status, _, body) = client::http_request(
        gw.local_addr(),
        b"GET /healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
    )
    .unwrap();
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    let p = prompt(1, 0, 64);
    let got = client::generate(gw.local_addr(), &p, 3, None, None).unwrap();
    assert_eq!(got.status, 200);

    let (status, _, body) = client::http_request(
        gw.local_addr(),
        b"GET /metrics HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
    )
    .unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    for needle in [
        "m2x_serve_steps ",
        "m2x_serve_decoded_tokens 3",
        "m2x_serve_p99_step_us ",
        "m2x_gateway_connections ",
        "m2x_gateway_streams_opened 1",
        "m2x_gateway_healthy 1",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}
