//! Criterion benchmarks of the M2XFP core primitives: the Algorithm-1
//! encoder (the unit the streaming Quantization Engine implements), the
//! Sg-EM weight search, pack/unpack, and the bit-exact quantized GEMM.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use m2x_tensor::{Matrix, Xoshiro};
use m2xfp::format::{ActTensor, WeightTensor};
use m2xfp::{activation, weight, GroupConfig, M2xfpConfig, ScaleRule};
use std::hint::black_box;

fn core_primitives(c: &mut Criterion) {
    let cfg = M2xfpConfig::default();
    let gc = GroupConfig::m2xfp_default();
    let mut rng = Xoshiro::seed(1);
    let group: Vec<f32> = rng.vec_of(32, |r| r.laplace(1.0));

    let mut g = c.benchmark_group("group_primitives");
    g.throughput(Throughput::Elements(32));
    g.bench_function("algorithm1_encode", |b| {
        b.iter(|| black_box(activation::quantize_group(black_box(&group), gc, ScaleRule::Floor)));
    });
    let encoded = activation::quantize_group(&group, gc, ScaleRule::Floor);
    g.bench_function("algorithm1_decode", |b| {
        b.iter(|| black_box(activation::dequantize_group(black_box(&encoded), gc)));
    });
    g.bench_function("sgem_weight_search_adaptive", |b| {
        b.iter(|| black_box(weight::quantize_group(black_box(&group), gc, ScaleRule::Floor, true)));
    });
    g.finish();

    let x = Matrix::from_fn(32, 512, |_, _| rng.laplace(1.0));
    let xt = ActTensor::quantize(&x, cfg);
    let mut g = c.benchmark_group("tensor_ops");
    g.sample_size(20);
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("pack", |b| {
        b.iter(|| black_box(xt.pack().unwrap()));
    });
    let bytes = xt.pack().unwrap();
    g.bench_function("unpack", |b| {
        b.iter(|| black_box(ActTensor::unpack(black_box(&bytes), 32, 512, cfg).unwrap()));
    });
    g.finish();

    let wt = WeightTensor::quantize(&Matrix::from_fn(64, 512, |_, _| rng.laplace(0.5)), cfg);
    let mut g = c.benchmark_group("qgemm_32x512x64");
    g.sample_size(10);
    g.throughput(Throughput::Elements(32 * 512 * 64));
    g.bench_function("fixed_point_pe_pipeline", |b| {
        b.iter(|| black_box(m2xfp::gemm::qgemm(black_box(&xt), black_box(&wt))));
    });
    g.bench_function("f64_reference", |b| {
        b.iter(|| black_box(m2xfp::gemm::qgemm_reference(black_box(&xt), black_box(&wt))));
    });
    g.finish();
}

criterion_group!(benches, core_primitives);
criterion_main!(benches);
