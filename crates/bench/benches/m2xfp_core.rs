//! Criterion benchmarks of the M2XFP core primitives: the Algorithm-1
//! encoder (the unit the streaming Quantization Engine implements), the
//! Sg-EM weight search, pack/unpack, and the bit-exact quantized GEMMs —
//! legacy grouped pipeline versus the packed three-stream pipeline.
//!
//! Set `M2X_BENCH_GEMM_DIM=<n>` (or `M2X_BENCH_DIM`, the emitter's knob)
//! to scale the qGEMM comparison (M = 32, K = N = n; default 512). The
//! full-size acceptance run uses 4096 via the `bench_m2xfp_json` binary in
//! `src/bin`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use m2x_tensor::{Matrix, Xoshiro};
use m2xfp::format::{ActTensor, PackedActTensor, PackedWeightTensor, WeightTensor};
use m2xfp::{activation, weight, GroupConfig, M2xfpConfig, ScaleRule};
use std::hint::black_box;

fn gemm_dim() -> usize {
    std::env::var("M2X_BENCH_GEMM_DIM")
        .or_else(|_| std::env::var("M2X_BENCH_DIM"))
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(512)
}

fn core_primitives(c: &mut Criterion) {
    let cfg = M2xfpConfig::default();
    let gc = GroupConfig::m2xfp_default();
    let mut rng = Xoshiro::seed(1);
    let group: Vec<f32> = rng.vec_of(32, |r| r.laplace(1.0));

    let mut g = c.benchmark_group("group_primitives");
    g.throughput(Throughput::Elements(32));
    g.bench_function("algorithm1_encode", |b| {
        b.iter(|| {
            black_box(activation::quantize_group(
                black_box(&group),
                gc,
                ScaleRule::Floor,
            ))
        });
    });
    let mut codes = [0u8; 32];
    let mut meta = [0u8; 4];
    g.bench_function("algorithm1_encode_into", |b| {
        b.iter(|| {
            black_box(activation::quantize_group_into(
                black_box(&group),
                gc,
                ScaleRule::Floor,
                &mut codes,
                &mut meta,
            ))
        });
    });
    let encoded = activation::quantize_group(&group, gc, ScaleRule::Floor);
    g.bench_function("algorithm1_decode", |b| {
        b.iter(|| black_box(activation::dequantize_group(black_box(&encoded), gc)));
    });
    g.bench_function("sgem_weight_search_adaptive", |b| {
        b.iter(|| {
            black_box(weight::quantize_group(
                black_box(&group),
                gc,
                ScaleRule::Floor,
                true,
            ))
        });
    });
    g.finish();

    let x = Matrix::from_fn(32, 512, |_, _| rng.laplace(1.0));
    let xt = ActTensor::quantize(&x, cfg);
    let mut g = c.benchmark_group("tensor_ops");
    g.sample_size(20);
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("quantize_grouped", |b| {
        b.iter(|| black_box(ActTensor::quantize(black_box(&x), cfg)));
    });
    g.bench_function("quantize_packed", |b| {
        b.iter(|| black_box(PackedActTensor::quantize(black_box(&x), cfg)));
    });
    g.bench_function("pack", |b| {
        b.iter(|| black_box(xt.pack().unwrap()));
    });
    let bytes = xt.pack().unwrap();
    g.bench_function("unpack", |b| {
        b.iter(|| black_box(ActTensor::unpack(black_box(&bytes), 32, 512, cfg).unwrap()));
    });
    g.finish();

    let dim = gemm_dim();
    let (m, k, n) = (32, dim, dim);
    let x = Matrix::from_fn(m, k, |_, _| rng.laplace(1.0));
    let w = Matrix::from_fn(n, k, |_, _| rng.laplace(0.5));
    let xt = ActTensor::quantize(&x, cfg);
    let wt = WeightTensor::quantize(&w, cfg);
    let xp = PackedActTensor::quantize(&x, cfg);
    let wp = PackedWeightTensor::quantize(&w, cfg);
    let mut g = c.benchmark_group(format!("qgemm_{m}x{k}x{n}"));
    g.sample_size(10);
    g.throughput(Throughput::Elements((m * k * n) as u64));
    g.bench_function("grouped_pipeline", |b| {
        b.iter(|| black_box(m2xfp::gemm::qgemm(black_box(&xt), black_box(&wt))));
    });
    g.bench_function("packed_1thread", |b| {
        b.iter(|| {
            black_box(m2xfp::gemm::qgemm_packed_threaded(
                black_box(&xp),
                black_box(&wp),
                1,
            ))
        });
    });
    g.bench_function("packed_threaded", |b| {
        b.iter(|| black_box(m2xfp::gemm::qgemm_packed(black_box(&xp), black_box(&wp))));
    });
    g.bench_function("f64_reference", |b| {
        b.iter(|| black_box(m2xfp::gemm::qgemm_reference(black_box(&xt), black_box(&wt))));
    });
    g.finish();
}

criterion_group!(benches, core_primitives);
criterion_main!(benches);
