//! Criterion benchmarks of the accelerator model itself: full-model cost
//! evaluation speed (Fig. 13 sweeps run 30 of these) and the functional
//! hardware units.

use criterion::{criterion_group, criterion_main, Criterion};
use m2x_accel::arch::{AcceleratorConfig, AcceleratorKind};
use m2x_accel::timing::run_model;
use m2x_accel::units::{QuantizationEngine, TopOneDecodeUnit};
use m2x_nn::profile::ModelProfile;
use m2x_tensor::Xoshiro;
use std::hint::black_box;

fn simulator(c: &mut Criterion) {
    let model = ModelProfile::llama3_70b();
    let cfg = AcceleratorConfig::of(AcceleratorKind::M2xfp);
    c.bench_function("run_model_llama3_70b_seq4096", |b| {
        b.iter(|| black_box(run_model(black_box(&model), black_box(&cfg), 4096)));
    });

    let mut rng = Xoshiro::seed(3);
    let codes: Vec<u8> = (0..8).map(|_| rng.below(16) as u8).collect();
    c.bench_function("top1_decode_unit", |b| {
        b.iter(|| black_box(TopOneDecodeUnit.top1(black_box(&codes))));
    });

    let group: Vec<f32> = rng.vec_of(32, |r| r.laplace(1.0));
    let qe = QuantizationEngine::default();
    c.bench_function("quantization_engine_group32", |b| {
        b.iter(|| black_box(qe.quantize(black_box(&group))));
    });
}

criterion_group!(benches, simulator);
criterion_main!(benches);
