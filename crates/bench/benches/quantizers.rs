//! Criterion throughput benchmarks: fake-quantization cost of every format
//! on an LLM-shaped activation tensor. The interesting comparison is the
//! online-capable encoders (MXFP4, M2XFP activations) against the
//! search-based formats (M-ANT, BlockDialect), which motivates the paper's
//! latency argument for element-level metadata.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use m2x_baselines::{MxQuantizer, Nvfp4};
use m2x_nn::profile::ModelProfile;
use m2x_nn::synth::activation_matrix;
use m2xfp::quantizer::{M2xfpQuantizer, TensorQuantizer};
use std::hint::black_box;

fn quantizer_throughput(c: &mut Criterion) {
    let model = ModelProfile::llama2_7b();
    let x = activation_matrix(&model, 0, 64, 2048);
    let elems = x.len() as u64;

    let formats: Vec<(&str, Box<dyn TensorQuantizer>)> = vec![
        ("mxfp4", Box::new(MxQuantizer::mxfp4())),
        ("nvfp4", Box::new(Nvfp4::default())),
        ("m2xfp", Box::new(M2xfpQuantizer::default())),
        ("smx4", Box::new(m2x_baselines::smx::Smx::smx4())),
        ("mx-ant", Box::new(m2x_baselines::ant::MxAnt::default())),
        (
            "blockdialect",
            Box::new(m2x_baselines::blockdialect::BlockDialect::default()),
        ),
    ];

    let mut g = c.benchmark_group("quantize_activations_64x2048");
    g.throughput(Throughput::Elements(elems));
    g.sample_size(10);
    for (name, q) in &formats {
        g.bench_with_input(BenchmarkId::from_parameter(name), q, |b, q| {
            b.iter(|| black_box(q.quantize_activations(black_box(&x))));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("quantize_weights_64x2048");
    g.throughput(Throughput::Elements(elems));
    g.sample_size(10);
    for (name, q) in formats.iter().filter(|(n, _)| *n != "blockdialect") {
        g.bench_with_input(BenchmarkId::from_parameter(name), q, |b, q| {
            b.iter(|| black_box(q.quantize_weights(black_box(&x))));
        });
    }
    g.finish();
}

criterion_group!(benches, quantizer_throughput);
criterion_main!(benches);
