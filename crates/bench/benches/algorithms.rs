//! Criterion benchmarks of the algorithm-scheme baselines: the fast
//! Walsh–Hadamard transform, rotated quantization, and the MR-GPTQ solver
//! (Cholesky + column-wise compensation).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use m2x_baselines::gptq::{mr_gptq_quantize, GptqConfig};
use m2x_baselines::hadamard::{fwht_normalized, Rotation};
use m2x_baselines::quarot::QuaRot;
use m2x_tensor::{Matrix, Xoshiro};
use m2xfp::TensorQuantizer;
use std::hint::black_box;

fn algorithms(c: &mut Criterion) {
    let mut rng = Xoshiro::seed(9);

    let mut g = c.benchmark_group("hadamard");
    let v: Vec<f32> = rng.vec_of(4096, |r| r.gaussian());
    g.throughput(Throughput::Elements(4096));
    g.bench_function("fwht_4096", |b| {
        b.iter(|| {
            let mut w = v.clone();
            fwht_normalized(black_box(&mut w));
            black_box(w)
        });
    });
    let x = Matrix::from_fn(64, 1024, |_, _| rng.laplace(1.0));
    let rot = Rotation::quarot(1024, 3);
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("rotate_rows_64x1024", |b| {
        b.iter(|| black_box(rot.apply_rows(black_box(&x))));
    });
    g.finish();

    let mut g = c.benchmark_group("quarot");
    g.sample_size(10);
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("quantize_activations_64x1024", |b| {
        let q = QuaRot::default();
        b.iter(|| black_box(q.quantize_activations(black_box(&x))));
    });
    g.finish();

    let mut g = c.benchmark_group("mr_gptq");
    g.sample_size(10);
    let k = 256;
    let calib = Matrix::from_fn(192, k, |_, _| rng.gaussian());
    let wt = Matrix::from_fn(32, k, |_, _| rng.laplace(0.5));
    g.bench_function("solve_32x256", |b| {
        b.iter(|| {
            black_box(
                mr_gptq_quantize(black_box(&wt), black_box(&calib), &GptqConfig::default())
                    .unwrap(),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, algorithms);
criterion_main!(benches);
