//! Serving-throughput measurement harness — behind the `serve_bench`
//! driver binary and the `serve` section of `bench_m2xfp_json`.
//!
//! Builds one shared prepared model (`Arc<ModelWeights>`), generates `M`
//! deterministic generation requests, then measures the same workload two
//! ways:
//!
//! * **solo** — each request on its own fresh session, one after another
//!   (the PR 3 single-session serving loop);
//! * **batched** — all requests submitted open-loop to the `m2x_serve`
//!   continuous-batching [`Server`] with an admission window of
//!   `max_batch`.
//!
//! Both paths produce the exact same per-request token streams
//! (`batch_exact` — hard-gated in CI), so the wall-clock ratio
//! `speedup_batch` is a pure scheduling/batching win: one walk over each
//! prepared weight plane per step instead of one per request. The JSON it
//! renders is array-free so `ci_perf_gate`'s flattener can gate every
//! field.

use m2x_nn::model::{ModelBuilder, ModelWeights};
use m2x_nn::profile::ModelProfile;
use m2x_nn::synth::activation_matrix;
use m2x_serve::{
    run_solo, Completed, FaultPlan, RequestOptions, RequestOutcome, ServeConfig, Server,
};
use m2x_telemetry::alloc_probe::count_allocations;
use m2x_telemetry::{stage, Histogram, StageTally, Telemetry};
use m2x_tensor::Matrix;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Dimensions and measurement knobs of one serving run.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    /// Hidden (residual stream) dimension.
    pub hidden: usize,
    /// Transformer layer count.
    pub layers: usize,
    /// Concurrent generation requests.
    pub requests: usize,
    /// Prompt length per request, in tokens.
    pub prompt_tokens: usize,
    /// Closed-loop decode steps per request.
    pub decode_steps: usize,
    /// Admission window of the continuous-batching scheduler.
    pub max_batch: usize,
    /// Measurement repetitions (best-of is reported).
    pub reps: usize,
}

impl ServeBenchConfig {
    /// The fixed small configuration embedded in `bench_m2xfp_json` (and
    /// gated by CI): big enough that batching amortizes real weight-plane
    /// traffic, small enough for a shared runner.
    pub fn ci() -> Self {
        ServeBenchConfig {
            hidden: 128,
            layers: 2,
            requests: 6,
            prompt_tokens: 8,
            decode_steps: 8,
            max_batch: 6,
            reps: 3,
        }
    }
}

/// Measured results of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Configuration measured.
    pub cfg: ServeBenchConfig,
    /// Every request's batched token stream was bit-identical to its solo
    /// run.
    pub batch_exact: bool,
    /// Best-of-reps wall time of the solo sequential sessions (seconds).
    pub solo_s: f64,
    /// Best-of-reps wall time of the batched server run (seconds).
    pub batch_s: f64,
    /// Hardware-normalized solo/batched wall-time ratio (> 1 means
    /// batching wins).
    pub speedup_batch: f64,
    /// Completed requests per second of the batched run.
    pub req_per_s: f64,
    /// Aggregate decode throughput of the batched run (tokens/s).
    pub decode_tok_per_s: f64,
    /// Decode throughput of the solo sequential sessions (tokens/s) — the
    /// single-stream number the GEMV decode fast path moves directly.
    pub solo_decode_tok_per_s: f64,
    /// Median request latency in scheduler steps.
    pub latency_p50_steps: f64,
    /// 99th-percentile request latency in scheduler steps.
    pub latency_p99_steps: f64,
    /// Largest in-flight batch the scheduler reached.
    pub peak_batch: usize,
}

fn time_best<O>(reps: usize, mut f: impl FnMut() -> O) -> (f64, O) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        out = Some(black_box(f()));
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.expect("reps >= 1"))
}

/// The deterministic request mix: request `i` prefills `prompt_tokens`
/// profile-calibrated embedding rows from stream seed `i`, so every
/// request carries a **distinct** token stream — a scheduler bug that
/// mixed rows between sessions would flip `batch_exact`, which is the
/// whole point of the gate.
pub fn request_prompts(cfg: &ServeBenchConfig) -> Vec<Matrix> {
    let profile = ModelProfile::llama3_8b();
    (0..cfg.requests)
        .map(|i| {
            activation_matrix(&profile, i, cfg.prompt_tokens, cfg.hidden).map(|v| (v * 0.25).tanh())
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Runs the full measurement. Deterministic given the configuration
/// (timings aside).
pub fn run(cfg: ServeBenchConfig) -> ServeReport {
    let profile = ModelProfile::llama3_8b();
    let weights: Arc<ModelWeights> = Arc::new(
        ModelBuilder::scaled(&profile, cfg.hidden, cfg.layers)
            .build_weights()
            .expect("scaled dimensions are group-aligned"),
    );
    let prompts = request_prompts(&cfg);

    // Solo: the same M requests, one session at a time.
    let (solo_s, solo_outs) = time_best(cfg.reps, || {
        prompts
            .iter()
            .map(|p| run_solo(&weights, p, cfg.decode_steps).expect("solo run"))
            .collect::<Vec<Matrix>>()
    });

    // Batched: open-loop submission of every request, then wait for all.
    let (batch_s, (completed, peak_batch)) = time_best(cfg.reps, || {
        let server = Server::start(
            Arc::clone(&weights),
            ServeConfig {
                max_batch: cfg.max_batch,
                ..ServeConfig::default()
            },
        );
        let ids: Vec<u64> = prompts
            .iter()
            .map(|p| server.submit(p.clone(), cfg.decode_steps).expect("submit"))
            .collect();
        let completed: Vec<Completed> = ids
            .into_iter()
            .map(|id| {
                server
                    .wait(id)
                    .expect("typed outcome")
                    .finished()
                    .expect("no faults in the throughput run")
            })
            .collect();
        (completed, server.stats().peak_batch)
    });

    let batch_exact = completed.iter().zip(&solo_outs).all(|(c, solo)| {
        c.decoded.rows() == solo.rows()
            && c.decoded
                .as_slice()
                .iter()
                .zip(solo.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    });

    let mut latencies: Vec<f64> = completed
        .iter()
        .map(|c| (c.finished_step - c.arrived_step) as f64)
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let decode_tokens = (cfg.requests * cfg.decode_steps) as f64;

    ServeReport {
        cfg,
        batch_exact,
        solo_s,
        batch_s,
        speedup_batch: solo_s / batch_s,
        req_per_s: cfg.requests as f64 / batch_s,
        decode_tok_per_s: decode_tokens / batch_s,
        solo_decode_tok_per_s: decode_tokens / solo_s,
        latency_p50_steps: percentile(&latencies, 0.50),
        latency_p99_steps: percentile(&latencies, 0.99),
        peak_batch,
    }
}

impl ServeReport {
    /// Renders the report as a flat-gateable JSON object (no arrays).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{
  "bench": "m2x_serve",
  "model": "LLaMA3-8B-scaled",
  "dims": {{"hidden": {h}, "layers": {l}, "requests": {r}, "prompt_tokens": {p}, "decode_steps": {d}, "max_batch": {mb}}},
  "batch_exact": {ex},
  "solo_s": {ss:.6},
  "batch_s": {bs:.6},
  "speedup_batch": {sp:.3},
  "req_per_s": {rps:.3},
  "decode_tok_per_s": {tps:.2},
  "solo_decode_tok_per_s": {stps:.2},
  "latency_p50_steps": {p50:.1},
  "latency_p99_steps": {p99:.1},
  "peak_batch": {pk}
}}"#,
            h = self.cfg.hidden,
            l = self.cfg.layers,
            r = self.cfg.requests,
            p = self.cfg.prompt_tokens,
            d = self.cfg.decode_steps,
            mb = self.cfg.max_batch,
            ex = self.batch_exact,
            ss = self.solo_s,
            bs = self.batch_s,
            sp = self.speedup_batch,
            rps = self.req_per_s,
            tps = self.decode_tok_per_s,
            stps = self.solo_decode_tok_per_s,
            p50 = self.latency_p50_steps,
            p99 = self.latency_p99_steps,
            pk = self.peak_batch,
        )
    }
}

/// Dimensions and fault mix of one chaos + churn serving run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosBenchConfig {
    /// Hidden (residual stream) dimension.
    pub hidden: usize,
    /// Transformer layer count.
    pub layers: usize,
    /// Requests flooded at the server open-loop (more than it will admit).
    pub requests: usize,
    /// Prompt length per request, in tokens.
    pub prompt_tokens: usize,
    /// Closed-loop decode steps per request.
    pub decode_steps: usize,
    /// Admission window of the continuous-batching scheduler.
    pub max_batch: usize,
    /// Bounded arrival queue — the flood sheds everything past this.
    pub queue_capacity: usize,
    /// Seed of the [`FaultPlan`] (and nothing else: the workload is fixed).
    pub seed: u64,
    /// Injected step panics (each must fail exactly one request).
    pub panics: usize,
    /// Injected engine stalls.
    pub delays: usize,
    /// Injected mid-flight slot cancellations.
    pub cancels: usize,
    /// Last scheduler tick a fault may fire at. Keep it well below the
    /// ticks the churn wave typically drives (≈ `admitted · (1 + decode)
    /// / max_batch`) so the recovery wave usually runs fault-free.
    pub fault_horizon: u64,
}

impl ChaosBenchConfig {
    /// The fixed chaos scenario embedded in `bench_m2xfp_json` and gated
    /// by CI (`serve.chaos_exact`, `serve.zero_leak`). The flood is 4× the
    /// queue, so admission control *must* shed; the plan's horizon (16)
    /// sits below the ~22+ ticks the admitted work typically drives, so
    /// the recovery wave normally runs on an exhausted plan.
    pub fn ci() -> Self {
        ChaosBenchConfig {
            hidden: 128,
            layers: 2,
            requests: 24,
            prompt_tokens: 6,
            decode_steps: 8,
            max_batch: 4,
            queue_capacity: 6,
            seed: 0x00C0_FFEE,
            panics: 2,
            delays: 3,
            cancels: 3,
            fault_horizon: 16,
        }
    }
}

/// Measured results of one chaos + churn run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Configuration measured.
    pub cfg: ChaosBenchConfig,
    /// Every request that **finished** (churn survivors and the
    /// post-chaos recovery wave alike) was bit-identical to its solo run,
    /// every failure was an injected fault, and at least one request
    /// finished (the fault budget is below the admission floor, so the
    /// check can never go vacuous). CI hard gate.
    pub chaos_exact: bool,
    /// `ModelWeights::open_sessions() == 0` after shutdown — no KV page
    /// outlived its request. CI hard gate.
    pub zero_leak: bool,
    /// Fraction of the flood shed by admission control.
    pub shed_rate: f64,
    /// 99th-percentile engine step latency (µs) under churn — measured
    /// across admission, expiry, cancellation and panic-recovery ticks.
    pub p99_step_us: f64,
    /// Scheduler ticks spent in reset-and-replay panic recovery.
    pub recovery_ticks: u64,
    /// Requests that ran to completion (both waves).
    pub finished: u64,
    /// Requests shed at admission.
    pub rejected: u64,
    /// Requests cancelled (all injected by the plan here).
    pub cancelled: u64,
    /// Requests that blew their step deadline.
    pub deadline_exceeded: u64,
    /// Requests failed by an injected panic.
    pub failed: u64,
    /// Panics the engine caught and recovered from (2 per fired
    /// injection: batched attempt + isolated replay).
    pub panics_recovered: u64,
    /// Wall time of the whole scenario (seconds) — advisory only; chaos
    /// wall time is dominated by injected delays.
    pub wall_s: f64,
}

/// Runs the chaos + churn scenario: flood a bounded-queue server wired to
/// a seeded [`FaultPlan`], classify every typed outcome, then prove the
/// engine still serves a full recovery wave bit-exactly and quiesces with
/// zero leaked sessions.
pub fn run_chaos(cfg: ChaosBenchConfig) -> ChaosReport {
    let profile = ModelProfile::llama3_8b();
    let weights: Arc<ModelWeights> = Arc::new(
        ModelBuilder::scaled(&profile, cfg.hidden, cfg.layers)
            .build_weights()
            .expect("scaled dimensions are group-aligned"),
    );
    let prompts: Vec<Matrix> = (0..cfg.requests + cfg.max_batch)
        .map(|i| {
            activation_matrix(&profile, i, cfg.prompt_tokens, cfg.hidden).map(|v| (v * 0.25).tanh())
        })
        .collect();
    let solo = |p: &Matrix| run_solo(&weights, p, cfg.decode_steps).expect("solo run");

    let plan = FaultPlan::seeded(
        cfg.seed,
        cfg.fault_horizon,
        cfg.max_batch,
        cfg.panics,
        cfg.delays,
        cfg.cancels,
        300,
    );
    let mut server = Server::start_with_faults(
        Arc::clone(&weights),
        ServeConfig {
            max_batch: cfg.max_batch,
            queue_capacity: cfg.queue_capacity,
            ..ServeConfig::default()
        },
        plan,
    );

    let t0 = Instant::now();
    // ── Churn wave: flood 4× the queue; every 6th request carries a
    //    too-tight step deadline. Shed, expiry, injected cancels and
    //    injected panics all land in this wave. ──
    let ids: Vec<u64> = prompts[..cfg.requests]
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let opts = if i % 6 == 5 {
                RequestOptions {
                    deadline_steps: Some((cfg.decode_steps / 2) as u64),
                    ..RequestOptions::default()
                }
            } else {
                RequestOptions::default()
            };
            server
                .submit_with(p.clone(), cfg.decode_steps, opts)
                .expect("server is live")
        })
        .collect();
    let mut chaos_exact = true;
    for (i, id) in ids.iter().enumerate() {
        match server.wait(*id).expect("typed outcome") {
            RequestOutcome::Finished(c) => {
                chaos_exact &= c.decoded == solo(&prompts[i]);
            }
            RequestOutcome::Failed { error } => {
                // Only the plan may fail requests in this scenario.
                chaos_exact &= error.contains("injected fault");
            }
            RequestOutcome::Rejected { .. }
            | RequestOutcome::Cancelled { .. }
            | RequestOutcome::DeadlineExceeded { .. } => {}
        }
    }

    // ── Recovery wave: `max_batch` fresh requests, submitted one at a
    //    time (so admission control can never shed them). Normally the
    //    churn wave has driven the step counter past the plan's horizon
    //    and all of these finish; ticks only advance under load, though,
    //    so a residual planned fault may still land here — that keeps a
    //    *typed* per-request outcome, never an untyped one. ──
    for p in &prompts[cfg.requests..] {
        let id = server
            .submit(p.clone(), cfg.decode_steps)
            .expect("server is live");
        match server.wait(id).expect("typed outcome") {
            RequestOutcome::Finished(c) => chaos_exact &= c.decoded == solo(p),
            RequestOutcome::Failed { error } => chaos_exact &= error.contains("injected fault"),
            // A residual planned cancel is legal; nothing here carries a
            // deadline and a serial submitter cannot be shed.
            RequestOutcome::Cancelled { .. } => {}
            RequestOutcome::Rejected { .. } | RequestOutcome::DeadlineExceeded { .. } => {
                chaos_exact = false;
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let stats = server.shutdown();
    let zero_leak = weights.open_sessions() == 0;
    let finished = cfg.requests as u64 + cfg.max_batch as u64
        - stats.rejected
        - stats.cancelled
        - stats.deadline_exceeded
        - stats.failed;
    // Non-vacuous by construction: admitted ≥ queue_capacity + max_batch
    // while panics + cancels + deadline victims stay strictly below it.
    chaos_exact &= finished >= 1;
    ChaosReport {
        cfg,
        chaos_exact,
        zero_leak,
        shed_rate: stats.rejected as f64 / cfg.requests as f64,
        p99_step_us: stats.p99_step_us,
        recovery_ticks: stats.recovery_ticks,
        finished,
        rejected: stats.rejected,
        cancelled: stats.cancelled,
        deadline_exceeded: stats.deadline_exceeded,
        failed: stats.failed,
        panics_recovered: stats.panics_recovered,
        wall_s,
    }
}

impl ChaosReport {
    /// Renders the report as a flat-gateable JSON object (no arrays).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{
  "bench": "m2x_serve_chaos",
  "model": "LLaMA3-8B-scaled",
  "dims": {{"hidden": {h}, "layers": {l}, "requests": {r}, "decode_steps": {d}, "max_batch": {mb}, "queue_capacity": {qc}}},
  "faults": {{"seed": {seed}, "panics": {pa}, "delays": {de}, "cancels": {ca}, "horizon": {ho}}},
  "chaos_exact": {ex},
  "zero_leak": {zl},
  "shed_rate": {sr:.3},
  "p99_step_us": {p99:.1},
  "recovery_ticks": {rt},
  "finished": {fi},
  "rejected": {rj},
  "cancelled": {cn},
  "deadline_exceeded": {dl},
  "failed": {fa},
  "panics_recovered": {pr},
  "wall_s": {ws:.6}
}}"#,
            h = self.cfg.hidden,
            l = self.cfg.layers,
            r = self.cfg.requests,
            d = self.cfg.decode_steps,
            mb = self.cfg.max_batch,
            qc = self.cfg.queue_capacity,
            seed = self.cfg.seed,
            pa = self.cfg.panics,
            de = self.cfg.delays,
            ca = self.cfg.cancels,
            ho = self.cfg.fault_horizon,
            ex = self.chaos_exact,
            zl = self.zero_leak,
            sr = self.shed_rate,
            p99 = self.p99_step_us,
            rt = self.recovery_ticks,
            fi = self.finished,
            rj = self.rejected,
            cn = self.cancelled,
            dl = self.deadline_exceeded,
            fa = self.failed,
            pr = self.panics_recovered,
            ws = self.wall_s,
        )
    }
}

/// Dimensions of one paged-KV prefix-sharing churn run.
#[derive(Debug, Clone, Copy)]
pub struct PrefixChurnConfig {
    /// Hidden (residual stream) dimension.
    pub hidden: usize,
    /// Transformer layer count.
    pub layers: usize,
    /// Requests sharing the common prompt prefix. The first runs alone
    /// and seeds the pool's prefix index; the rest adopt its frozen
    /// pages.
    pub requests: usize,
    /// Shared prefix length in tokens — a multiple of the KV page size,
    /// so it freezes whole pages.
    pub prefix_tokens: usize,
    /// Distinct per-request suffix length in tokens.
    pub suffix_tokens: usize,
    /// Closed-loop decode steps per request.
    pub decode_steps: usize,
    /// Admission window of the continuous-batching scheduler.
    pub max_batch: usize,
    /// Long-running churn victims submitted alongside the adopters and
    /// cancelled mid-flight, so pages release to the free list and
    /// recycle while shared pages are live.
    pub cancels: usize,
}

impl PrefixChurnConfig {
    /// The fixed prefix-churn scenario embedded in `bench_m2xfp_json` and
    /// gated by CI (`kv_pool.reuse_exact`, `kv_pool.zero_leak`): one
    /// 32-token page of shared prefix (the default page size), distinct
    /// suffixes, admission churn from cancelled long-runners.
    pub fn ci() -> Self {
        PrefixChurnConfig {
            hidden: 128,
            layers: 2,
            requests: 8,
            prefix_tokens: 32,
            suffix_tokens: 8,
            decode_steps: 6,
            max_batch: 4,
            cancels: 2,
        }
    }
}

/// Measured results of one prefix-sharing churn run.
#[derive(Debug, Clone)]
pub struct PrefixChurnReport {
    /// Configuration measured.
    pub cfg: PrefixChurnConfig,
    /// Every request served off pooled/adopted/recycled pages was
    /// bit-identical to its solo run, every adopter actually hit the
    /// prefix cache, and at least one page was recycled from the free
    /// list (the check can never go vacuous). CI hard gate.
    pub reuse_exact: bool,
    /// Zero open sessions **and** zero pool pages in use after shutdown —
    /// every page returned to the free list, no handle outlived its
    /// request. CI hard gate.
    pub zero_leak: bool,
    /// Frozen prefix pages adopted across the run (deterministic:
    /// `requests - 1` adopters × 1 prefix page).
    pub prefix_hits: u64,
    /// Prefix lookups that adopted nothing (the seeding request plus the
    /// short churn victims).
    pub prefix_misses: u64,
    /// Free-list hit rate of page acquisition:
    /// `page_reuses / (page_allocs + page_reuses)`.
    pub hit_rate: f64,
    /// Pages allocated fresh.
    pub page_allocs: u64,
    /// Pages recycled from the free list.
    pub page_reuses: u64,
    /// Copy-on-write forks (0 here: appends after a *full* shared page
    /// never fork it — sharing survives decode).
    pub cow_clones: u64,
    /// High-water mark of pages in use.
    pub peak_pages: u64,
    /// Shared-page gauge sampled mid-wave (advisory: racy against
    /// admission timing, but ≥ 1 whenever an adopter holds the frozen
    /// page at the sample point).
    pub shared_pages_mid: u64,
    /// Unused token-row fraction of in-flight pages at the last engine
    /// tick (partially-filled tail pages drive this).
    pub fragmentation: f64,
    /// Packed KV bytes of in-flight sessions at the last engine tick —
    /// what the admission budget meters.
    pub packed_bytes: u64,
    /// Decoded f32 KV bytes of in-flight sessions at the last engine
    /// tick — reported, never gated.
    pub decoded_bytes: u64,
    /// Wall time of the whole scenario (seconds), advisory.
    pub wall_s: f64,
}

fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The churn workload's prompts: one shared `prefix_tokens`-row prefix
/// stitched to a distinct per-request suffix, so every prompt shares
/// pages but no two requests carry the same token stream.
pub fn prefix_churn_prompts(cfg: &PrefixChurnConfig) -> Vec<Matrix> {
    let profile = ModelProfile::llama3_8b();
    let prefix = activation_matrix(&profile, 9_000, cfg.prefix_tokens, cfg.hidden)
        .map(|v| (v * 0.25).tanh());
    (0..cfg.requests)
        .map(|i| {
            let suffix = activation_matrix(&profile, 9_100 + i, cfg.suffix_tokens, cfg.hidden)
                .map(|v| (v * 0.25).tanh());
            let mut p = prefix.clone();
            p.push_rows(&suffix);
            p
        })
        .collect()
}

/// Runs the prefix-sharing churn scenario: solo oracles first (fresh
/// sessions, never the prefix index), then one request seeds the frozen
/// prefix, the rest adopt it concurrently while long-running victims are
/// cancelled mid-flight to force free-list recycling under sharing.
pub fn run_prefix_churn(cfg: PrefixChurnConfig) -> PrefixChurnReport {
    let profile = ModelProfile::llama3_8b();
    let weights: Arc<ModelWeights> = Arc::new(
        ModelBuilder::scaled(&profile, cfg.hidden, cfg.layers)
            .build_weights()
            .expect("scaled dimensions are group-aligned"),
    );
    let prompts = prefix_churn_prompts(&cfg);
    let solo: Vec<Matrix> = prompts
        .iter()
        .map(|p| run_solo(&weights, p, cfg.decode_steps).expect("solo run"))
        .collect();

    let mut server = Server::start(
        Arc::clone(&weights),
        ServeConfig {
            max_batch: cfg.max_batch,
            ..ServeConfig::default()
        },
    );
    let t0 = Instant::now();
    // Seed: the first request runs alone and registers the frozen prefix
    // (registration lands on its prefill tick, well before its outcome).
    let first = server
        .submit(prompts[0].clone(), cfg.decode_steps)
        .expect("submit");
    let mut reuse_exact = bits_eq(
        &server
            .wait(first)
            .expect("typed outcome")
            .finished()
            .expect("no faults in this scenario")
            .decoded,
        &solo[0],
    );
    // Churn victims: short prompts (below one page of prefix — always a
    // lookup miss), effectively unbounded decode, cancelled mid-wave so
    // their pages recycle under the adopters.
    let victims: Vec<u64> = (0..cfg.cancels)
        .map(|i| {
            let p = activation_matrix(&profile, 9_500 + i, cfg.suffix_tokens.max(2), cfg.hidden)
                .map(|v| (v * 0.25).tanh());
            server.submit(p, 1_000_000).expect("submit")
        })
        .collect();
    // Adopters: the rest of the wave, open-loop.
    let ids: Vec<u64> = prompts[1..]
        .iter()
        .map(|p| server.submit(p.clone(), cfg.decode_steps).expect("submit"))
        .collect();
    let shared_pages_mid = server.stats().kv_shared_pages;
    for v in &victims {
        let _ = server.cancel(*v);
    }
    for (id, s) in ids.iter().zip(&solo[1..]) {
        let out = server
            .wait(*id)
            .expect("typed outcome")
            .finished()
            .expect("no faults in this scenario");
        reuse_exact &= bits_eq(&out.decoded, s);
    }
    for v in victims {
        let _ = server.wait(v);
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let stats = server.shutdown();
    let pool = weights.kv_pool().stats();
    let zero_leak = weights.open_sessions() == 0 && pool.pages_in_use == 0;
    // Non-vacuity: every adopter must actually have hit the prefix cache
    // (requests − 1 adopters × exactly 1 frozen prefix page each), and
    // churn must have recycled at least one page through the free list.
    reuse_exact &= stats.kv_prefix_hits == (cfg.requests - 1) as u64;
    reuse_exact &= stats.kv_page_reuses >= 1;
    let grabs = pool.page_allocs + pool.page_reuses;
    PrefixChurnReport {
        cfg,
        reuse_exact,
        zero_leak,
        prefix_hits: stats.kv_prefix_hits,
        prefix_misses: stats.kv_prefix_misses,
        hit_rate: if grabs == 0 {
            0.0
        } else {
            pool.page_reuses as f64 / grabs as f64
        },
        page_allocs: pool.page_allocs,
        page_reuses: pool.page_reuses,
        cow_clones: pool.cow_clones,
        peak_pages: pool.peak_pages,
        shared_pages_mid,
        fragmentation: stats.kv_fragmentation,
        packed_bytes: stats.kv_packed_bytes,
        decoded_bytes: stats.kv_decoded_bytes,
        wall_s,
    }
}

impl PrefixChurnReport {
    /// Renders the report as a flat-gateable JSON object (no arrays).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{
  "bench": "m2x_kv_pool",
  "model": "LLaMA3-8B-scaled",
  "dims": {{"hidden": {h}, "layers": {l}, "requests": {r}, "prefix_tokens": {pt}, "suffix_tokens": {st}, "decode_steps": {d}, "max_batch": {mb}, "cancels": {ca}}},
  "reuse_exact": {ex},
  "zero_leak": {zl},
  "prefix_hits": {ph},
  "prefix_misses": {pm},
  "hit_rate": {hr:.3},
  "page_allocs": {pa},
  "page_reuses": {pr},
  "cow_clones": {cc},
  "peak_pages": {pk},
  "shared_pages_mid": {sm},
  "fragmentation": {fr:.3},
  "packed_bytes": {pb},
  "decoded_bytes": {db},
  "wall_s": {ws:.6}
}}"#,
            h = self.cfg.hidden,
            l = self.cfg.layers,
            r = self.cfg.requests,
            pt = self.cfg.prefix_tokens,
            st = self.cfg.suffix_tokens,
            d = self.cfg.decode_steps,
            mb = self.cfg.max_batch,
            ca = self.cfg.cancels,
            ex = self.reuse_exact,
            zl = self.zero_leak,
            ph = self.prefix_hits,
            pm = self.prefix_misses,
            hr = self.hit_rate,
            pa = self.page_allocs,
            pr = self.page_reuses,
            cc = self.cow_clones,
            pk = self.peak_pages,
            sm = self.shared_pages_mid,
            fr = self.fragmentation,
            pb = self.packed_bytes,
            db = self.decoded_bytes,
            ws = self.wall_s,
        )
    }
}

/// Dimensions and knobs of one telemetry overhead + fidelity run.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryBenchConfig {
    /// Hidden (residual stream) dimension.
    pub hidden: usize,
    /// Transformer layer count.
    pub layers: usize,
    /// Requests driven one at a time (closed loop, single stream).
    pub requests: usize,
    /// Prompt length per request, in tokens.
    pub prompt_tokens: usize,
    /// Closed-loop decode steps per request.
    pub decode_steps: usize,
    /// Measurement repetitions (best-of is reported).
    pub reps: usize,
}

impl TelemetryBenchConfig {
    /// The fixed configuration embedded in `bench_m2xfp_json` and gated by
    /// CI: single-stream decode at the serving dims (hidden 256), the
    /// shape the `solo_decode_tok_per_s` headline moves — so
    /// `overhead_ratio` answers "what does leaving tracing on cost the
    /// number we actually advertise?".
    pub fn ci() -> Self {
        TelemetryBenchConfig {
            hidden: 256,
            layers: 2,
            requests: 4,
            prompt_tokens: 8,
            decode_steps: 12,
            reps: 3,
        }
    }
}

/// Measured results of one telemetry run.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Configuration measured.
    pub cfg: TelemetryBenchConfig,
    /// The drained trace reconstructs every request's exact lifecycle
    /// (one submitted/admitted/prefill/finished, one token instant per
    /// decoded row in order, no spurious terminals, one TICK span per
    /// engine tick, every sub-tick stage present, nothing dropped).
    /// CI hard gate.
    pub trace_exact: bool,
    /// Warm trace/histogram/stage recording performed zero heap
    /// allocations. `None` when the process did not install the counting
    /// global allocator (the witness would be vacuous — rendered as JSON
    /// `null`, which the gate treats as "measurement skipped").
    /// CI hard gate in the bench binary, which installs the probe.
    pub zero_alloc: Option<bool>,
    /// Raw allocation count behind `zero_alloc` (0 when the probe is not
    /// installed).
    pub recording_allocs: u64,
    /// Traced over untraced single-stream decode throughput (≈ 1.0;
    /// advisory CI gate — a drop means tracing got expensive). Both
    /// sides are scored by their fastest engine tick across reps (the
    /// step-latency histogram's exact min), not wave wall clock, so
    /// scheduler wakeup latency and runner preemption — which only ever
    /// add time, to both modes alike — cancel out of the ratio.
    pub overhead_ratio: f64,
    /// Single-stream decode throughput with tracing on (tokens per
    /// second at the floor tick cost).
    pub traced_tok_per_s: f64,
    /// Single-stream decode throughput with tracing off (tokens per
    /// second at the floor tick cost).
    pub untraced_tok_per_s: f64,
    /// Engine ticks of the analysis wave (prefill + decode).
    pub ticks: u64,
    /// Trace events drained from all rings after the analysis wave.
    pub trace_events: usize,
    /// Events lost to full rings (0 for an exact trace).
    pub trace_dropped: u64,
    /// Per-stage accumulated time across the analysis wave (µs).
    pub assemble_us: f64,
    /// Activation quantization time (µs).
    pub encode_us: f64,
    /// Quantized GEMM time (µs).
    pub qgemm_us: f64,
    /// Attention (scores + mix over the KV cache) time (µs).
    pub attention_us: f64,
    /// KV-cache append time (µs).
    pub kv_append_us: f64,
    /// Output feedback ("sampling") time (µs).
    pub feedback_us: f64,
    /// Sum of the six sub-tick stages (µs).
    pub stage_sum_us: f64,
    /// Sum of the whole-tick latency histogram (µs).
    pub tick_sum_us: f64,
    /// `stage_sum_us / tick_sum_us` — how much of measured tick time the
    /// stage clocks account for. The bench binary asserts this lands
    /// within 10% of 1.0 at the CI dims: the split must explain the tick,
    /// not decorate it.
    pub stage_cover: f64,
}

/// Warm-recording allocation witness: after warm-up, a burst of trace
/// span/instant pushes, histogram records and stage-tally bookings must
/// not touch the heap. Returns `(probe_live, allocations)` — the caller
/// treats a dead probe (counting allocator not installed in this
/// process) as "measurement skipped" rather than a vacuous pass.
fn warm_recording_allocations() -> (bool, u64) {
    let tele = Arc::new(Telemetry::new(true));
    let trace = tele.register("witness", 256);
    let mut hist = Histogram::default();
    let mut tally = StageTally::new();
    tally.set_enabled(true);
    trace.span(stage::TICK, 0, 0, 1, 1);
    hist.record(1);
    tally.add_ns(stage::QGEMM, 1);
    let (allocs, ()) = count_allocations(|| {
        for i in 0..1024u64 {
            trace.span(stage::TICK, 0, i, i + 1, 1);
            trace.instant(stage::REQ_TOKEN, 7, i);
            hist.record(i);
            tally.add_ns(stage::QGEMM, 100);
            tally.time(stage::ATTENTION, || black_box(i));
        }
    });
    let (canary, _) = count_allocations(|| black_box(Box::new([0u8; 8])));
    (canary > 0, allocs)
}

/// Reconstructs every request's lifecycle from the drained rings and
/// checks it against the typed outcomes: the trace must be a faithful,
/// complete transcript, not a sample.
fn lifecycle_matches(completed: &[(u64, Completed)], rings: &[m2x_telemetry::DrainedRing]) -> bool {
    let mut ok = rings.iter().all(|r| r.dropped == 0);
    for (id, c) in completed {
        let req = *id as u32;
        let evs = || {
            rings
                .iter()
                .flat_map(|r| r.events.iter())
                .filter(move |e| e.req == req)
                .filter(|e| (stage::REQ_SUBMITTED..=stage::REQ_FAILED).contains(&e.stage))
        };
        let count = |s: u16| evs().filter(|e| e.stage == s).count();
        ok &= count(stage::REQ_SUBMITTED) == 1;
        ok &= count(stage::REQ_ADMITTED) == 1;
        ok &= count(stage::REQ_PREFILL) == 1;
        ok &= count(stage::REQ_FINISHED) == 1;
        ok &= count(stage::REQ_REJECTED) == 0
            && count(stage::REQ_CANCELLED) == 0
            && count(stage::REQ_DEADLINE) == 0
            && count(stage::REQ_FAILED) == 0;
        // Every decoded row left a token instant, in decode order (ring
        // order is push order, so this also pins emission ordering).
        let toks: Vec<u64> = evs()
            .filter(|e| e.stage == stage::REQ_TOKEN)
            .map(|e| e.value)
            .collect();
        ok &= toks.len() == c.decoded.rows();
        ok &= toks.iter().enumerate().all(|(i, v)| *v == i as u64);
        ok &= evs()
            .find(|e| e.stage == stage::REQ_FINISHED)
            .is_some_and(|e| e.value == c.decoded.rows() as u64);
    }
    ok
}

/// Runs the telemetry measurement: the zero-alloc recording witness, a
/// traced-vs-untraced single-stream overhead comparison, then one traced
/// analysis wave whose drained trace is reconstructed request by request
/// and whose stage clocks are compared against the tick histogram.
pub fn run_telemetry(cfg: TelemetryBenchConfig) -> TelemetryReport {
    // Witness first, while no engine threads are running: allocation
    // counting is process-wide.
    let (probe_live, recording_allocs) = warm_recording_allocations();
    let zero_alloc = if probe_live {
        Some(recording_allocs == 0)
    } else {
        None
    };

    let profile = ModelProfile::llama3_8b();
    let weights: Arc<ModelWeights> = Arc::new(
        ModelBuilder::scaled(&profile, cfg.hidden, cfg.layers)
            .build_weights()
            .expect("scaled dimensions are group-aligned"),
    );
    let prompts = request_prompts(&ServeBenchConfig {
        hidden: cfg.hidden,
        layers: cfg.layers,
        requests: cfg.requests,
        prompt_tokens: cfg.prompt_tokens,
        decode_steps: cfg.decode_steps,
        max_batch: 1,
        reps: cfg.reps,
    });

    // Closed-loop single-stream wave: one request in flight at a time, so
    // the ratio below is the tracing tax on the solo decode headline.
    // Tracing cost lives *inside* the engine tick, so each wave is scored
    // by its **fastest tick** (the latency histogram records in both
    // modes, and its min is exact): wall clock over a short wave is
    // dominated by engine-thread wakeup latency and runner contention,
    // neither of which tracing can affect, while preemption and cache
    // pollution only ever add time — so the min-tick of each mode
    // estimates its clean per-tick cost, and the ratio isolates the
    // tracing tax. Reps interleave the two modes so machine-load drift
    // hits both equally.
    let wave = |telemetry: bool| -> Histogram {
        let server = Server::start(
            Arc::clone(&weights),
            ServeConfig {
                max_batch: 1,
                telemetry,
                ..ServeConfig::default()
            },
        );
        for p in &prompts {
            let id = server.submit(p.clone(), cfg.decode_steps).expect("submit");
            server
                .wait(id)
                .expect("typed outcome")
                .finished()
                .expect("no faults in the telemetry run");
        }
        server.telemetry_snapshot().step_us
    };
    let mut wave_ticks = 0u64;
    let mut traced_min_us = u64::MAX;
    let mut untraced_min_us = u64::MAX;
    for _ in 0..cfg.reps.max(1) {
        let h = wave(true);
        wave_ticks = h.count();
        traced_min_us = traced_min_us.min(h.min());
        untraced_min_us = untraced_min_us.min(wave(false).min());
    }
    // Idealized noise-free wave time: every tick at the floor cost.
    let traced_s = traced_min_us as f64 * wave_ticks as f64 / 1e6;
    let untraced_s = untraced_min_us as f64 * wave_ticks as f64 / 1e6;
    let tokens = (cfg.requests * cfg.decode_steps) as f64;

    // Analysis wave (untimed): one traced run whose rings and histograms
    // are inspected rather than raced.
    let server = Server::start(
        Arc::clone(&weights),
        ServeConfig {
            max_batch: 1,
            telemetry: true,
            ..ServeConfig::default()
        },
    );
    let completed: Vec<(u64, Completed)> = prompts
        .iter()
        .map(|p| {
            let id = server.submit(p.clone(), cfg.decode_steps).expect("submit");
            let c = server
                .wait(id)
                .expect("typed outcome")
                .finished()
                .expect("no faults in the telemetry run");
            (id, c)
        })
        .collect();
    let snap = server.telemetry_snapshot();
    let rings = server.telemetry().drain();
    drop(server);

    let ticks = snap.step_us.count();
    let engine_spans = |s: u16| {
        rings
            .iter()
            .flat_map(|r| r.events.iter())
            .filter(|e| e.stage == s)
            .count() as u64
    };
    let trace_exact = lifecycle_matches(&completed, &rings)
        && engine_spans(stage::TICK) == ticks
        && (stage::ASSEMBLE..stage::TICK_STAGES as u16).all(|s| engine_spans(s) > 0);

    let us = |s: u16| snap.stages.ns(s) as f64 / 1000.0;
    let stage_sum_us = snap.stages.stage_sum_ns() as f64 / 1000.0;
    let tick_sum_us = snap.step_us.sum() as f64;

    TelemetryReport {
        cfg,
        trace_exact,
        zero_alloc,
        recording_allocs,
        overhead_ratio: untraced_s / traced_s,
        traced_tok_per_s: tokens / traced_s,
        untraced_tok_per_s: tokens / untraced_s,
        ticks,
        trace_events: rings.iter().map(|r| r.events.len()).sum(),
        trace_dropped: rings.iter().map(|r| r.dropped).sum(),
        assemble_us: us(stage::ASSEMBLE),
        encode_us: us(stage::ENCODE),
        qgemm_us: us(stage::QGEMM),
        attention_us: us(stage::ATTENTION),
        kv_append_us: us(stage::KV_APPEND),
        feedback_us: us(stage::FEEDBACK),
        stage_sum_us,
        tick_sum_us,
        stage_cover: if tick_sum_us > 0.0 {
            stage_sum_us / tick_sum_us
        } else {
            0.0
        },
    }
}

impl TelemetryReport {
    /// Renders the report as a flat-gateable JSON object (no arrays).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{
  "bench": "m2x_telemetry",
  "dims": {{"hidden": {h}, "layers": {l}, "requests": {r}, "prompt_tokens": {p}, "decode_steps": {d}}},
  "trace_exact": {te},
  "zero_alloc": {za},
  "recording_allocs": {ra},
  "overhead_ratio": {or:.3},
  "traced_tok_per_s": {tt:.2},
  "untraced_tok_per_s": {ut:.2},
  "ticks": {ti},
  "trace_events": {ev},
  "trace_dropped": {dr},
  "assemble_us": {sa:.1},
  "encode_us": {se:.1},
  "qgemm_us": {sq:.1},
  "attention_us": {sat:.1},
  "kv_append_us": {sk:.1},
  "feedback_us": {sf:.1},
  "stage_sum_us": {ss:.1},
  "tick_sum_us": {ts:.1},
  "stage_cover": {sc:.3}
}}"#,
            h = self.cfg.hidden,
            l = self.cfg.layers,
            r = self.cfg.requests,
            p = self.cfg.prompt_tokens,
            d = self.cfg.decode_steps,
            te = self.trace_exact,
            za = match self.zero_alloc {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            },
            ra = self.recording_allocs,
            or = self.overhead_ratio,
            tt = self.traced_tok_per_s,
            ut = self.untraced_tok_per_s,
            ti = self.ticks,
            ev = self.trace_events,
            dr = self.trace_dropped,
            sa = self.assemble_us,
            se = self.encode_us,
            sq = self.qgemm_us,
            sat = self.attention_us,
            sk = self.kv_append_us,
            sf = self.feedback_us,
            ss = self.stage_sum_us,
            ts = self.tick_sum_us,
            sc = self.stage_cover,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_prompts_are_distinct() {
        // Identical prompts would make the batch_exact gate vacuous: a
        // cross-session row mix-up between identical streams is invisible.
        let prompts = request_prompts(&ServeBenchConfig::ci());
        for i in 0..prompts.len() {
            for j in i + 1..prompts.len() {
                assert_ne!(prompts[i], prompts[j], "prompts {i} and {j} collide");
            }
        }
    }

    #[test]
    fn chaos_run_holds_both_gates_at_small_dims() {
        let cfg = ChaosBenchConfig {
            hidden: 64,
            layers: 1,
            requests: 8,
            prompt_tokens: 3,
            decode_steps: 4,
            max_batch: 2,
            queue_capacity: 3,
            seed: 7,
            panics: 1,
            delays: 1,
            cancels: 1,
            fault_horizon: 6,
        };
        let r = run_chaos(cfg);
        assert!(r.chaos_exact, "chaos run lost bit-exactness: {r:?}");
        assert!(r.zero_leak, "chaos run leaked sessions: {r:?}");
        assert!(r.finished >= 1);
        assert_eq!(r.panics_recovered, 2 * r.failed, "exact attribution");
        let json = r.to_json();
        assert!(json.contains("\"chaos_exact\": true"));
        assert!(json.contains("\"zero_leak\": true"));
        assert!(json.contains("\"recovery_ticks\""));
    }

    #[test]
    fn prefix_churn_holds_both_gates_at_small_dims() {
        let cfg = PrefixChurnConfig {
            hidden: 64,
            layers: 1,
            requests: 4,
            prefix_tokens: 32,
            suffix_tokens: 4,
            decode_steps: 4,
            max_batch: 3,
            cancels: 1,
        };
        let r = run_prefix_churn(cfg);
        assert!(r.reuse_exact, "prefix churn lost bit-exactness: {r:?}");
        assert!(r.zero_leak, "prefix churn leaked pages or sessions: {r:?}");
        assert_eq!(r.prefix_hits, 3, "every adopter hits one frozen page");
        assert!(r.page_reuses >= 1, "churn must recycle the free list");
        assert!(r.hit_rate > 0.0);
        assert!(r.fragmentation > 0.0, "tail pages are partially filled");
        let json = r.to_json();
        assert!(json.contains("\"reuse_exact\": true"));
        assert!(json.contains("\"zero_leak\": true"));
        assert!(json.contains("\"hit_rate\""));
        assert!(json.contains("\"fragmentation\""));
    }

    #[test]
    fn prefix_churn_prompts_share_exactly_the_prefix() {
        let cfg = PrefixChurnConfig::ci();
        let prompts = prefix_churn_prompts(&cfg);
        assert_eq!(prompts.len(), cfg.requests);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(p.rows(), cfg.prefix_tokens + cfg.suffix_tokens);
            for j in i + 1..prompts.len() {
                let q = &prompts[j];
                for r in 0..cfg.prefix_tokens {
                    for c in 0..cfg.hidden {
                        assert_eq!(p[(r, c)].to_bits(), q[(r, c)].to_bits());
                    }
                }
                assert_ne!(p, q, "suffixes must differ or reuse_exact is vacuous");
            }
        }
    }

    #[test]
    fn telemetry_run_reconstructs_lifecycles_at_small_dims() {
        let cfg = TelemetryBenchConfig {
            hidden: 64,
            layers: 1,
            requests: 2,
            prompt_tokens: 3,
            decode_steps: 3,
            reps: 1,
        };
        let r = run_telemetry(cfg);
        assert!(r.trace_exact, "trace reconstruction failed: {r:?}");
        assert_eq!(r.trace_dropped, 0);
        // Each request is one prefill tick plus `decode_steps` decode
        // ticks at max_batch 1.
        assert_eq!(r.ticks, 2 * (1 + 3));
        assert!(r.overhead_ratio > 0.0 && r.traced_tok_per_s > 0.0);
        assert!(r.stage_sum_us > 0.0 && r.tick_sum_us > 0.0);
        // Microsecond truncation on ~100µs ticks makes the cover noisy at
        // these dims; the bench binary asserts the tight 10% window at
        // the CI dims, here it only has to be sane.
        assert!(
            r.stage_cover > 0.5 && r.stage_cover < 1.5,
            "stage cover {}",
            r.stage_cover
        );
        // The library's own test process never installs the counting
        // allocator, so the witness reports "skipped", not a vacuous pass.
        let json = r.to_json();
        assert!(json.contains("\"trace_exact\": true"));
        assert!(json.contains("\"zero_alloc\": null"));
        assert!(json.contains("\"stage_cover\""));
    }

    #[test]
    fn ci_run_is_exact() {
        let cfg = ServeBenchConfig {
            hidden: 64,
            layers: 1,
            requests: 3,
            prompt_tokens: 3,
            decode_steps: 2,
            max_batch: 3,
            reps: 1,
        };
        let r = run(cfg);
        assert!(r.batch_exact, "batched streams diverged from solo");
        assert!(r.speedup_batch > 0.0 && r.decode_tok_per_s > 0.0);
        assert!(r.latency_p99_steps >= r.latency_p50_steps);
        assert!(r.peak_batch >= 2, "peak batch {}", r.peak_batch);
        let json = r.to_json();
        assert!(json.contains("\"batch_exact\": true"));
        assert!(json.contains("\"speedup_batch\""));
    }
}
