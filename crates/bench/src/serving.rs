//! Serving-throughput measurement harness — behind the `serve_bench`
//! driver binary and the `serve` section of `bench_m2xfp_json`.
//!
//! Builds one shared prepared model (`Arc<ModelWeights>`), generates `M`
//! deterministic generation requests, then measures the same workload two
//! ways:
//!
//! * **solo** — each request on its own fresh session, one after another
//!   (the PR 3 single-session serving loop);
//! * **batched** — all requests submitted open-loop to the `m2x_serve`
//!   continuous-batching [`Server`] with an admission window of
//!   `max_batch`.
//!
//! Both paths produce the exact same per-request token streams
//! (`batch_exact` — hard-gated in CI), so the wall-clock ratio
//! `speedup_batch` is a pure scheduling/batching win: one walk over each
//! prepared weight plane per step instead of one per request. The JSON it
//! renders is array-free so `ci_perf_gate`'s flattener can gate every
//! field.

use m2x_nn::model::{ModelBuilder, ModelWeights};
use m2x_nn::profile::ModelProfile;
use m2x_nn::synth::activation_matrix;
use m2x_serve::{run_solo, Completed, ServeConfig, Server};
use m2x_tensor::Matrix;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Dimensions and measurement knobs of one serving run.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    /// Hidden (residual stream) dimension.
    pub hidden: usize,
    /// Transformer layer count.
    pub layers: usize,
    /// Concurrent generation requests.
    pub requests: usize,
    /// Prompt length per request, in tokens.
    pub prompt_tokens: usize,
    /// Closed-loop decode steps per request.
    pub decode_steps: usize,
    /// Admission window of the continuous-batching scheduler.
    pub max_batch: usize,
    /// Measurement repetitions (best-of is reported).
    pub reps: usize,
}

impl ServeBenchConfig {
    /// The fixed small configuration embedded in `bench_m2xfp_json` (and
    /// gated by CI): big enough that batching amortizes real weight-plane
    /// traffic, small enough for a shared runner.
    pub fn ci() -> Self {
        ServeBenchConfig {
            hidden: 128,
            layers: 2,
            requests: 6,
            prompt_tokens: 8,
            decode_steps: 8,
            max_batch: 6,
            reps: 3,
        }
    }
}

/// Measured results of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Configuration measured.
    pub cfg: ServeBenchConfig,
    /// Every request's batched token stream was bit-identical to its solo
    /// run.
    pub batch_exact: bool,
    /// Best-of-reps wall time of the solo sequential sessions (seconds).
    pub solo_s: f64,
    /// Best-of-reps wall time of the batched server run (seconds).
    pub batch_s: f64,
    /// Hardware-normalized solo/batched wall-time ratio (> 1 means
    /// batching wins).
    pub speedup_batch: f64,
    /// Completed requests per second of the batched run.
    pub req_per_s: f64,
    /// Aggregate decode throughput of the batched run (tokens/s).
    pub decode_tok_per_s: f64,
    /// Decode throughput of the solo sequential sessions (tokens/s) — the
    /// single-stream number the GEMV decode fast path moves directly.
    pub solo_decode_tok_per_s: f64,
    /// Median request latency in scheduler steps.
    pub latency_p50_steps: f64,
    /// 99th-percentile request latency in scheduler steps.
    pub latency_p99_steps: f64,
    /// Largest in-flight batch the scheduler reached.
    pub peak_batch: usize,
}

fn time_best<O>(reps: usize, mut f: impl FnMut() -> O) -> (f64, O) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        out = Some(black_box(f()));
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.expect("reps >= 1"))
}

/// The deterministic request mix: request `i` prefills `prompt_tokens`
/// profile-calibrated embedding rows from stream seed `i`, so every
/// request carries a **distinct** token stream — a scheduler bug that
/// mixed rows between sessions would flip `batch_exact`, which is the
/// whole point of the gate.
pub fn request_prompts(cfg: &ServeBenchConfig) -> Vec<Matrix> {
    let profile = ModelProfile::llama3_8b();
    (0..cfg.requests)
        .map(|i| {
            activation_matrix(&profile, i, cfg.prompt_tokens, cfg.hidden).map(|v| (v * 0.25).tanh())
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Runs the full measurement. Deterministic given the configuration
/// (timings aside).
pub fn run(cfg: ServeBenchConfig) -> ServeReport {
    let profile = ModelProfile::llama3_8b();
    let weights: Arc<ModelWeights> = Arc::new(
        ModelBuilder::scaled(&profile, cfg.hidden, cfg.layers)
            .build_weights()
            .expect("scaled dimensions are group-aligned"),
    );
    let prompts = request_prompts(&cfg);

    // Solo: the same M requests, one session at a time.
    let (solo_s, solo_outs) = time_best(cfg.reps, || {
        prompts
            .iter()
            .map(|p| run_solo(&weights, p, cfg.decode_steps).expect("solo run"))
            .collect::<Vec<Matrix>>()
    });

    // Batched: open-loop submission of every request, then wait for all.
    let (batch_s, (completed, peak_batch)) = time_best(cfg.reps, || {
        let server = Server::start(
            Arc::clone(&weights),
            ServeConfig {
                max_batch: cfg.max_batch,
                worker_threads: 0,
            },
        );
        let ids: Vec<u64> = prompts
            .iter()
            .map(|p| server.submit(p.clone(), cfg.decode_steps).expect("submit"))
            .collect();
        let completed: Vec<Completed> = ids.into_iter().map(|id| server.wait(id)).collect();
        (completed, server.stats().peak_batch)
    });

    let batch_exact = completed.iter().zip(&solo_outs).all(|(c, solo)| {
        c.decoded.rows() == solo.rows()
            && c.decoded
                .as_slice()
                .iter()
                .zip(solo.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    });

    let mut latencies: Vec<f64> = completed
        .iter()
        .map(|c| (c.finished_step - c.arrived_step) as f64)
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let decode_tokens = (cfg.requests * cfg.decode_steps) as f64;

    ServeReport {
        cfg,
        batch_exact,
        solo_s,
        batch_s,
        speedup_batch: solo_s / batch_s,
        req_per_s: cfg.requests as f64 / batch_s,
        decode_tok_per_s: decode_tokens / batch_s,
        solo_decode_tok_per_s: decode_tokens / solo_s,
        latency_p50_steps: percentile(&latencies, 0.50),
        latency_p99_steps: percentile(&latencies, 0.99),
        peak_batch,
    }
}

impl ServeReport {
    /// Renders the report as a flat-gateable JSON object (no arrays).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{
  "bench": "m2x_serve",
  "model": "LLaMA3-8B-scaled",
  "dims": {{"hidden": {h}, "layers": {l}, "requests": {r}, "prompt_tokens": {p}, "decode_steps": {d}, "max_batch": {mb}}},
  "batch_exact": {ex},
  "solo_s": {ss:.6},
  "batch_s": {bs:.6},
  "speedup_batch": {sp:.3},
  "req_per_s": {rps:.3},
  "decode_tok_per_s": {tps:.2},
  "solo_decode_tok_per_s": {stps:.2},
  "latency_p50_steps": {p50:.1},
  "latency_p99_steps": {p99:.1},
  "peak_batch": {pk}
}}"#,
            h = self.cfg.hidden,
            l = self.cfg.layers,
            r = self.cfg.requests,
            p = self.cfg.prompt_tokens,
            d = self.cfg.decode_steps,
            mb = self.cfg.max_batch,
            ex = self.batch_exact,
            ss = self.solo_s,
            bs = self.batch_s,
            sp = self.speedup_batch,
            rps = self.req_per_s,
            tps = self.decode_tok_per_s,
            stps = self.solo_decode_tok_per_s,
            p50 = self.latency_p50_steps,
            p99 = self.latency_p99_steps,
            pk = self.peak_batch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_prompts_are_distinct() {
        // Identical prompts would make the batch_exact gate vacuous: a
        // cross-session row mix-up between identical streams is invisible.
        let prompts = request_prompts(&ServeBenchConfig::ci());
        for i in 0..prompts.len() {
            for j in i + 1..prompts.len() {
                assert_ne!(prompts[i], prompts[j], "prompts {i} and {j} collide");
            }
        }
    }

    #[test]
    fn ci_run_is_exact() {
        let cfg = ServeBenchConfig {
            hidden: 64,
            layers: 1,
            requests: 3,
            prompt_tokens: 3,
            decode_steps: 2,
            max_batch: 3,
            reps: 1,
        };
        let r = run(cfg);
        assert!(r.batch_exact, "batched streams diverged from solo");
        assert!(r.speedup_batch > 0.0 && r.decode_tok_per_s > 0.0);
        assert!(r.latency_p99_steps >= r.latency_p50_steps);
        assert!(r.peak_batch >= 2, "peak batch {}", r.peak_batch);
        let json = r.to_json();
        assert!(json.contains("\"batch_exact\": true"));
        assert!(json.contains("\"speedup_batch\""));
    }
}
