//! One function per experiment. Each returns the [`Report`] it printed so
//! `run_all` can chain them over a shared, memoized [`Evaluator`].

use crate::eval::Evaluator;
use crate::paper;
use crate::report::{f2, f3, f4, Report, Table};
use m2x_accel::arch::{AcceleratorConfig, AcceleratorKind};
use m2x_accel::energy::{energy_of, EnergyModel};
use m2x_accel::timing::run_model;
use m2x_baselines::gptq::{mr_gptq_quantize, GptqConfig, GptqGrid};
use m2x_baselines::{M2Nvfp4, MxQuantizer, Nvfp4};
use m2x_nn::metrics;
use m2x_nn::profile::ModelProfile;
use m2x_nn::propagate::{evaluate_with, EvalConfig};
use m2x_nn::synth::activation_matrix;
use m2x_tensor::{Matrix, Xoshiro};
use m2xfp::quantizer::{M2xfpQuantizer, TensorQuantizer};
use m2xfp::strategy::{MetadataStrategy, ScaleMode};
use m2xfp::{M2xfpConfig, ScaleRule};

/// Generic "preserve the group max in FP16" wrapper used by Fig. 3.
struct MaxPreserved<Q> {
    inner: Q,
    group: usize,
}

impl<Q: TensorQuantizer> TensorQuantizer for MaxPreserved<Q> {
    fn name(&self) -> String {
        format!("{}+maxFP16", self.inner.name())
    }

    fn weight_ebw(&self) -> f64 {
        self.inner.weight_ebw() + 16.0 / self.group as f64
    }

    fn activation_ebw(&self) -> f64 {
        self.inner.activation_ebw() + 16.0 / self.group as f64
    }

    fn quantize_weights(&self, w: &Matrix) -> Matrix {
        restore_max(w, &self.inner.quantize_weights(w), self.group)
    }

    fn quantize_activations(&self, x: &Matrix) -> Matrix {
        restore_max(x, &self.inner.quantize_activations(x), self.group)
    }
}

fn restore_max(orig: &Matrix, quant: &Matrix, group: usize) -> Matrix {
    let mut out = quant.clone();
    let cols = orig.cols();
    for r in 0..orig.rows() {
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + group).min(cols);
            let mut idx = c0;
            for c in c0..c1 {
                if orig[(r, c)].abs() > orig[(r, idx)].abs() {
                    idx = c;
                }
            }
            out[(r, idx)] = m2x_formats::half::quantize_f16(orig[(r, idx)]);
            c0 = c1;
        }
    }
    out
}

/// Fig. 2 — rounding error of FP16 vs E8M0 scaling across block maxima.
pub fn fig02_scale_error() -> Report {
    let mut rep = Report::new(
        "fig02_scale_error",
        "Fig. 2 — FP4 quantization error: FP16 vs E8M0 scaling factors",
    );
    let mut t = Table::new(vec![
        "amax/2^e",
        "NMSE (FP16 scale)",
        "NMSE (E8M0 floor)",
        "ratio",
    ]);
    let mut r = Xoshiro::seed(2);
    for frac_i in 0..8 {
        // Block maxima swept across one binade: amax = 4.0 .. 7.5.
        let amax = 4.0 + 0.5 * frac_i as f32;
        let (mut e_fp16, mut e_e8m0) = (0.0f64, 0.0f64);
        let trials = 400;
        for _ in 0..trials {
            let mut g = r.vec_of(32, |r| r.laplace(1.0) * amax / 5.0);
            // Pin the block max.
            let idx = r.below(32);
            g[idx] = amax * if r.chance(0.5) { -1.0 } else { 1.0 };
            let fp16 = MxQuantizer::fp4_fp16_scale().fake_quantize_group(&g);
            let e8m0 = MxQuantizer::mxfp4().fake_quantize_group(&g);
            e_fp16 += m2x_tensor::stats::nmse(&g, &fp16);
            e_e8m0 += m2x_tensor::stats::nmse(&g, &e8m0);
        }
        e_fp16 /= trials as f64;
        e_e8m0 /= trials as f64;
        t.row(vec![
            format!("{:.2}", amax / 4.0),
            f4(e_fp16),
            f4(e_e8m0),
            f2(e_e8m0 / e_fp16),
        ]);
    }
    rep.table(
        "Quantization NMSE as the block max moves between power-of-two bins\n\
         (E8M0 misaligns worst when amax sits far above 2^e; FP16 tracks it):",
        &t,
    );
    rep.emit();
    rep
}

/// Fig. 3 — max-value preservation study on LLaMA3-8B/70B.
#[allow(clippy::type_complexity)]
pub fn fig03_max_preservation(ev: &Evaluator) -> Report {
    let mut rep = Report::new(
        "fig03_max_preservation",
        "Fig. 3 — retaining the group max in FP16 rescues MXFP4",
    );
    for model in [ModelProfile::llama3_8b(), ModelProfile::llama3_70b()] {
        let mut t = Table::new(vec!["Method", "PPL (plain)", "PPL (+max FP16)"]);
        let rows: Vec<(String, Box<dyn TensorQuantizer>, Box<dyn TensorQuantizer>)> = vec![
            (
                "MXFP4".into(),
                Box::new(MxQuantizer::mxfp4()),
                Box::new(MaxPreserved {
                    inner: MxQuantizer::mxfp4(),
                    group: 32,
                }),
            ),
            (
                "NVFP4".into(),
                Box::new(Nvfp4::default()),
                Box::new(MaxPreserved {
                    inner: Nvfp4::default(),
                    group: 16,
                }),
            ),
            (
                "FP4".into(),
                Box::new(MxQuantizer::fp4_fp16_scale()),
                Box::new(MaxPreserved {
                    inner: MxQuantizer::fp4_fp16_scale(),
                    group: 32,
                }),
            ),
            (
                "SMX4".into(),
                Box::new(m2x_baselines::smx::Smx::smx4()),
                Box::new(MaxPreserved {
                    inner: m2x_baselines::smx::Smx::smx4(),
                    group: 16,
                }),
            ),
        ];
        let fp16 = metrics::ppl_anchor(model.name).unwrap().fp16;
        t.row(vec!["FP16".to_string(), f2(fp16), f2(fp16)]);
        for (name, plain, kept) in rows {
            t.row(vec![
                name,
                f2(ev.ppl(&model, plain.as_ref())),
                f2(ev.ppl(&model, kept.as_ref())),
            ]);
        }
        rep.table(
            &format!("{} (perplexity proxy, lower is better):", model.name),
            &t,
        );
    }
    rep.line("Expected shape (paper): MXFP4/SMX4 improve drastically with the");
    rep.line("preserved max, nearly matching FP4/NVFP4 — the block maximum is");
    rep.line("the dominant error source.");
    rep.emit();
    rep
}

/// Fig. 4 — perplexity vs equivalent bit width across group granularity.
pub fn fig04_granularity(ev: &Evaluator) -> Report {
    let mut rep = Report::new(
        "fig04_granularity",
        "Fig. 4 — diminishing returns of finer quantization granularity",
    );
    let model = ModelProfile::llama2_7b(); // stands in for LLaMA-7B
    let mut t = Table::new(vec!["Granularity", "EBW", "PPL proxy"]);
    for (label, group) in [
        ("channel", 2048usize),
        ("g-256", 256),
        ("g-128", 128),
        ("g-64", 64),
        ("g-32", 32),
        ("g-16", 16),
    ] {
        let q = MxQuantizer::fp4_fp16_scale().with_group(group);
        let ebw = 4.0 + 16.0 / group as f64;
        t.row(vec![label.to_string(), f3(ebw), f2(ev.ppl(&model, &q))]);
    }
    rep.table(
        "FP4 with FP16 group scales on LLaMA-7B-class weights/activations\n\
         (perplexity should fall with EBW and plateau beyond g-32):",
        &t,
    );
    rep.emit();
    rep
}

fn dse_models() -> Vec<ModelProfile> {
    vec![
        ModelProfile::llama2_7b(),
        ModelProfile::llama3_8b(),
        ModelProfile::falcon_7b(),
        ModelProfile::mistral_7b(),
    ]
}

fn dse_output_mse(
    model: &ModelProfile,
    strategy: MetadataStrategy,
    subgroup: usize,
    mode: ScaleMode,
) -> f64 {
    // Output MSE of a representative GEMM with both operands quantized by
    // the strategy (the paper's §4.2.1 protocol: quantized model outputs
    // vs FP16, here one layer).
    let cfg = m2xfp::GroupConfig::new(32, subgroup);
    let x = activation_matrix(model, 0, 32, 512);
    let w = m2x_nn::synth::weight_matrix(model, m2x_nn::synth::LayerKind::Up, 0, 256, 512);
    let quant = |m: &Matrix| {
        m2xfp::quantizer::fake_quant_rowwise(m, 32, |g| {
            strategy.fake_quantize_group(g, cfg, ScaleRule::Floor, mode)
        })
    };
    let y_ref = x.matmul_threaded(&w.transpose(), 4);
    let y_q = quant(&x).matmul_threaded(&quant(&w).transpose(), 4);
    m2x_tensor::stats::nmse(y_ref.as_slice(), y_q.as_slice()) * 100.0
}

fn dse_report(name: &str, title: &str, mode: ScaleMode) -> Report {
    let mut rep = Report::new(name, title);
    let strategies = [
        MetadataStrategy::ElemEm { top: 1 },
        MetadataStrategy::ElemEm { top: 2 },
        MetadataStrategy::SgEm { bits: 1 },
        MetadataStrategy::SgEm { bits: 2 },
        MetadataStrategy::SgEe { bits: 1 },
        MetadataStrategy::SgEe { bits: 2 },
    ];
    for model in dse_models() {
        let mut t = Table::new(vec!["Strategy", "Subgroup", "EBW", "MSE (output, ×100)"]);
        for s in strategies {
            for sg in [32usize, 16, 8, 4, 2] {
                let cfg = m2xfp::GroupConfig::new(32, sg);
                let ebw = s.bit_budget(cfg).ebw();
                let mse = dse_output_mse(&model, s, sg, mode);
                t.row(vec![s.to_string(), sg.to_string(), f3(ebw), f4(mse)]);
            }
        }
        rep.table(&format!("{}:", model.name), &t);
    }
    // Reference points.
    rep.line("Reference EBWs: MXFP4 = 4.25, NVFP4 = 4.5, M2XFP = 4.5.");
    rep.emit();
    rep
}

/// Fig. 6 — encoding DSE under a fixed shared scale.
pub fn fig06_dse_fixed() -> Report {
    dse_report(
        "fig06_dse_fixed",
        "Fig. 6 — design space exploration, fixed shared scale",
        ScaleMode::Fixed,
    )
}

/// Fig. 7 — encoding DSE with the adaptive shared scale.
pub fn fig07_dse_adaptive() -> Report {
    dse_report(
        "fig07_dse_adaptive",
        "Fig. 7 — design space exploration, adaptive shared scale",
        ScaleMode::Adaptive,
    )
}

/// Tbl. 2 — zero-shot accuracy on six benchmarks.
pub fn table2_zero_shot(ev: &Evaluator) -> Report {
    let mut rep = Report::new("table2_zero_shot", "Tbl. 2 — zero-shot accuracy (W4A4)");
    let methods: Vec<(&str, Box<dyn TensorQuantizer>)> = vec![
        ("SMX4", Box::new(m2x_baselines::smx::Smx::smx4())),
        ("MXFP4", Box::new(MxQuantizer::mxfp4())),
        ("NVFP4", Box::new(Nvfp4::default())),
        ("M2XFP", Box::new(M2xfpQuantizer::default())),
    ];
    for model in ModelProfile::table2_models() {
        let (tasks, mxfp4_avg) = metrics::zero_shot_anchors(model.name).unwrap();
        let e0 = ev.compounded(&model, &MxQuantizer::mxfp4());
        let mut t = Table::new(vec![
            "Method", "Arc-e", "Arc-c", "Hella.", "PiQA", "Wino.", "BoolQ", "Avg",
        ]);
        let fp16_avg = tasks.iter().map(|t| t.fp16).sum::<f64>() / 6.0;
        let mut fp16_row: Vec<String> = vec!["FP16".into()];
        fp16_row.extend(tasks.iter().map(|t| f2(t.fp16)));
        fp16_row.push(f2(fp16_avg));
        t.row(fp16_row);
        for (name, q) in &methods {
            let e = ev.compounded(&model, q.as_ref());
            let acc = metrics::accuracy_proxy(&tasks, mxfp4_avg, e0, e);
            let avg = acc.iter().sum::<f64>() / acc.len() as f64;
            let mut row: Vec<String> = vec![name.to_string()];
            row.extend(acc.iter().map(|&a| f2(a)));
            row.push(f2(avg));
            t.row(row);
        }
        rep.table(&format!("{} (ours):", model.name), &t);

        let mut tp = Table::new(vec![
            "Method", "Arc-e", "Arc-c", "Hella.", "PiQA", "Wino.", "BoolQ", "Avg",
        ]);
        for (name, row) in paper::table2(model.name).unwrap() {
            let avg = row.iter().sum::<f64>() / 6.0;
            let mut cells: Vec<String> = vec![name.to_string()];
            cells.extend(row.iter().map(|&a| f2(a)));
            cells.push(f2(avg));
            tp.row(cells);
        }
        rep.table(&format!("{} (paper):", model.name), &tp);
    }
    rep.emit();
    rep
}

/// Tbl. 3 — Wikitext perplexity against accelerator baselines.
pub fn table3_perplexity(ev: &Evaluator) -> Report {
    let mut rep = Report::new(
        "table3_perplexity",
        "Tbl. 3 — Wikitext perplexity, M2XFP vs baseline accelerators (W4A4, g=32)",
    );
    let methods: Vec<(&str, Box<dyn TensorQuantizer>)> = vec![
        ("MXFP4", Box::new(MxQuantizer::mxfp4())),
        ("MX-ANT", Box::new(m2x_baselines::ant::MxAnt::default())),
        ("MX-M-ANT", Box::new(m2x_baselines::mant::MxMant::default())),
        (
            "MX-OliVe",
            Box::new(m2x_baselines::olive::MxOlive::default()),
        ),
        (
            "MicroScopiQ",
            Box::new(m2x_baselines::microscopiq::MicroScopiQ::default()),
        ),
        (
            "BlockDialect",
            Box::new(m2x_baselines::blockdialect::BlockDialect::default()),
        ),
        ("M2XFP", Box::new(M2xfpQuantizer::default())),
    ];
    let models = ModelProfile::table3_models();
    let mut header = vec!["Method".to_string()];
    header.extend(models.iter().map(|m| m.name.to_string()));
    let mut t = Table::new(header.clone());
    let mut fp16_row = vec!["FP16".to_string()];
    for m in &models {
        fp16_row.push(f2(metrics::ppl_anchor(m.name).unwrap().fp16));
    }
    t.row(fp16_row);
    for (name, q) in &methods {
        let mut row = vec![name.to_string()];
        for m in &models {
            row.push(f2(ev.ppl(m, q.as_ref())));
        }
        t.row(row);
    }
    rep.table("Ours (perplexity proxy; MXFP4 row anchored):", &t);

    let mut tp = Table::new(header);
    for (name, row) in paper::table3() {
        let mut cells = vec![name.to_string()];
        cells.extend(row.iter().map(|&v| f2(v)));
        tp.row(cells);
    }
    rep.table("Paper:", &tp);
    rep.emit();
    rep
}

/// Tbl. 4 — reasoning tasks on DeepSeek-R1-Distill-Qwen.
pub fn table4_reasoning(ev: &Evaluator) -> Report {
    let mut rep = Report::new(
        "table4_reasoning",
        "Tbl. 4 — reasoning benchmarks: MXFP4 vs M2XFP",
    );
    for model in [ModelProfile::dsr1_qwen_1_5b(), ModelProfile::dsr1_qwen_7b()] {
        let (tasks, mxfp4_avg) = metrics::reasoning_anchors(model.name).unwrap();
        let e0 = ev.compounded(&model, &MxQuantizer::mxfp4());
        let mut t = Table::new(vec![
            "Method",
            "AIME-90",
            "MATH-500",
            "GSM8K",
            "GPQA",
            "LiveCodeBench",
            "Avg",
        ]);
        let fp16_avg = tasks.iter().map(|t| t.fp16).sum::<f64>() / 5.0;
        let mut row: Vec<String> = vec!["FP16".into()];
        row.extend(tasks.iter().map(|t| f2(t.fp16)));
        row.push(f2(fp16_avg));
        t.row(row);
        for (name, q) in [
            (
                "MXFP4",
                Box::new(MxQuantizer::mxfp4()) as Box<dyn TensorQuantizer>,
            ),
            ("M2XFP", Box::new(M2xfpQuantizer::default())),
        ] {
            let e = ev.compounded(&model, q.as_ref());
            let acc = metrics::accuracy_proxy(&tasks, mxfp4_avg, e0, e);
            let avg = acc.iter().sum::<f64>() / acc.len() as f64;
            let mut row: Vec<String> = vec![name.to_string()];
            row.extend(acc.iter().map(|&a| f2(a)));
            row.push(f2(avg));
            t.row(row);
        }
        rep.table(&format!("{} (ours):", model.name), &t);

        let mut tp = Table::new(vec![
            "Method",
            "AIME-90",
            "MATH-500",
            "GSM8K",
            "GPQA",
            "LiveCodeBench",
            "Avg",
        ]);
        for (name, row) in paper::table4(model.name).unwrap() {
            let mut cells: Vec<String> = vec![name.to_string()];
            cells.extend(row.iter().map(|&v| f2(v)));
            tp.row(cells);
        }
        rep.table(&format!("{} (paper):", model.name), &tp);
    }
    rep.emit();
    rep
}

/// Tbl. 5 — area/power breakdown and the §6.3 PE-tile comparison.
pub fn table5_area_power() -> Report {
    let mut rep = Report::new(
        "table5_area_power",
        "Tbl. 5 — area and power of core components (28 nm, 500 MHz)",
    );
    let mut t = Table::new(vec!["Component", "Number", "Area(mm²)", "Power(mW)"]);
    for r in m2x_accel::area::table5() {
        t.row(vec![
            format!("{} ({:.2}µm²)", r.component, r.unit_area_um2),
            r.count.to_string(),
            f4(r.area_mm2),
            f3(r.power_mw),
        ]);
    }
    let (area, power) = m2x_accel::area::table5_totals();
    t.row(vec![
        "Total".to_string(),
        "".to_string(),
        f3(area),
        f2(power),
    ]);
    rep.table("Ours (gate-count model):", &t);

    let mut tp = Table::new(vec!["Component", "Number", "Area(mm²)", "Power(mW)"]);
    for (name, count, a, p) in paper::table5() {
        tp.row(vec![name.to_string(), count.to_string(), f4(a), f3(p)]);
    }
    tp.row(vec![
        "Total".to_string(),
        "".to_string(),
        "1.051".to_string(),
        "204.02".to_string(),
    ]);
    rep.table("Paper:", &tp);

    let mut tc = Table::new(vec!["PE tile", "Area(µm²)", "vs MXFP4"]);
    use m2x_accel::area::{pe_tile_area_um2, PeKind};
    let base = pe_tile_area_um2(PeKind::Mxfp4);
    for (name, kind) in [
        ("MXFP4", PeKind::Mxfp4),
        ("NVFP4", PeKind::Nvfp4),
        ("M2XFP", PeKind::M2xfp),
    ] {
        let a = pe_tile_area_um2(kind);
        tc.row(vec![
            name.to_string(),
            format!("{a:.1}"),
            format!("{:+.1}%", (a / base - 1.0) * 100.0),
        ]);
    }
    rep.table(
        "§6.3 PE-tile synthesis comparison (paper: 2057.6 / 2104.7 (+2.3%) / 2140.1 (+4.0%)):",
        &tc,
    );
    rep.emit();
    rep
}

/// Tbl. 6 — applying M2XFP metadata to NVFP4.
pub fn table6_m2nvfp4(ev: &Evaluator) -> Report {
    let mut rep = Report::new(
        "table6_m2nvfp4",
        "Tbl. 6 — NVFP4 vs M2-NVFP4 (metadata on an FP8-scaled base)",
    );
    let models = ModelProfile::table3_models();
    let mut header = vec!["Method".to_string()];
    header.extend(models.iter().map(|m| m.name.to_string()));
    let mut t = Table::new(header.clone());
    let mut fp16_row = vec!["FP16".to_string()];
    for m in &models {
        fp16_row.push(f2(metrics::ppl_anchor(m.name).unwrap().fp16));
    }
    t.row(fp16_row);
    for (name, q) in [
        (
            "NVFP4",
            Box::new(Nvfp4::default()) as Box<dyn TensorQuantizer>,
        ),
        ("M2-NVFP4", Box::new(M2Nvfp4::default())),
    ] {
        let mut row = vec![name.to_string()];
        for m in &models {
            row.push(f2(ev.ppl(m, q.as_ref())));
        }
        t.row(row);
    }
    rep.table("Ours (perplexity proxy):", &t);

    let mut tp = Table::new(header);
    for (name, row) in paper::table6() {
        let mut cells = vec![name.to_string()];
        cells.extend(row.iter().map(|&v| f2(v)));
        tp.row(cells);
    }
    rep.table("Paper:", &tp);
    rep.emit();
    rep
}

/// Tbl. 7 — comparison with algorithm schemes (QuaRot, DuQuant, MR-GPTQ).
pub fn table7_algorithms(_ev: &Evaluator) -> Report {
    let mut rep = Report::new(
        "table7_algorithms",
        "Tbl. 7 — M2XFP vs algorithmic quantization schemes (Wikitext, g=32)",
    );
    // One reduced evaluation size for *every* row including the MXFP4
    // anchor (GPTQ is O(K²·N) per row block) — proxy comparisons are only
    // valid when all errors come from the same workload.
    let cfg = EvalConfig {
        tokens: 48,
        max_k: 256,
        max_n: 192,
        layer_samples: 1,
        threads: 8,
    };
    let local = Evaluator::with_cfg(cfg);
    let models = [ModelProfile::llama2_7b(), ModelProfile::llama3_8b()];
    let mut t = Table::new(vec!["Method", "LLaMA2-7B", "LLaMA3-8B"]);

    let gptq_err = |model: &ModelProfile, grid: GptqGrid, m2_acts: bool| {
        let gcfg = GptqConfig {
            group: 32,
            damp: 0.01,
            grid,
            act_order: true,
        };
        let m2 = M2xfpQuantizer::default();
        let mx = MxQuantizer::mxfp4();
        evaluate_with(
            model,
            "mr-gptq",
            &cfg,
            |w_t, layer_idx| {
                // Calibrate on held-out tokens of the SAME layer: the
                // first `cfg.tokens` rows of the stream are the evaluation
                // inputs, so calibration uses the rows after them. 4K
                // samples keep the K×K Hessian estimate well-conditioned.
                let k = w_t.cols();
                let n_calib = 4 * k;
                let full = activation_matrix(model, layer_idx, cfg.tokens + n_calib, k);
                let calib = m2x_tensor::Matrix::from_vec(
                    n_calib,
                    k,
                    full.as_slice()[cfg.tokens * k..].to_vec(),
                );
                mr_gptq_quantize(w_t, &calib, &gcfg).expect("damped Hessian is SPD")
            },
            |x| {
                if m2_acts {
                    m2.quantize_activations(x)
                } else {
                    mx.quantize_activations(x)
                }
            },
        )
        .nrmse()
    };

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, q) in [
        (
            "QuaRot",
            Box::new(m2x_baselines::quarot::QuaRot::default()) as Box<dyn TensorQuantizer>,
        ),
        (
            "DuQuant",
            Box::new(m2x_baselines::duquant::DuQuant::default()),
        ),
        ("M2XFP", Box::new(M2xfpQuantizer::default())),
    ] {
        let ppl: Vec<f64> = models.iter().map(|m| local.ppl(m, q.as_ref())).collect();
        rows.push((name.to_string(), ppl));
    }
    let mr: Vec<f64> = models
        .iter()
        .map(|m| local.ppl_from_error(m, gptq_err(m, GptqGrid::Mxfp4(ScaleRule::Floor), false)))
        .collect();
    rows.push(("MR-GPTQ".to_string(), mr));
    let mr_m2: Vec<f64> = models
        .iter()
        .map(|m| {
            local.ppl_from_error(
                m,
                gptq_err(m, GptqGrid::M2xfp(M2xfpConfig::default()), true),
            )
        })
        .collect();
    rows.push(("MR-GPTQ-M2XFP".to_string(), mr_m2));
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, ppl) in rows {
        t.row(vec![name, f2(ppl[0]), f2(ppl[1])]);
    }
    rep.table("Ours (perplexity proxy):", &t);

    let mut tp = Table::new(vec!["Method", "LLaMA2-7B", "LLaMA3-8B"]);
    for (name, row) in paper::table7() {
        tp.row(vec![name.to_string(), f2(row[0]), f2(row[1])]);
    }
    rep.table("Paper:", &tp);
    rep.emit();
    rep
}

/// Tbl. 8 — shared-scale computation rules.
pub fn table8_scale_rules(ev: &Evaluator) -> Report {
    let mut rep = Report::new(
        "table8_scale_rules",
        "Tbl. 8 — shared-scale derivation rules for MXFP4 and M2XFP",
    );
    let models = [ModelProfile::llama2_7b(), ModelProfile::llama3_8b()];
    let mut t = Table::new(vec![
        "Rule",
        "LLaMA2 MXFP4",
        "LLaMA2 M2XFP",
        "LLaMA3 MXFP4",
        "LLaMA3 M2XFP",
    ]);
    for (label, rule) in [
        ("floor", ScaleRule::Floor),
        ("ceil/RTNE", ScaleRule::Ceil),
        ("RTN1", ScaleRule::Rtn1),
        ("RTN2", ScaleRule::Rtn2),
    ] {
        let mut cells = vec![label.to_string()];
        for m in &models {
            let mx = MxQuantizer::mxfp4_with_rule(rule);
            let m2 = M2xfpQuantizer::new(M2xfpConfig {
                scale_rule: rule,
                ..M2xfpConfig::default()
            });
            cells.push(f2(ev.ppl(m, &mx)));
            cells.push(f2(ev.ppl(m, &m2)));
        }
        // Reorder: built L2-mx, L2-m2, L3-mx, L3-m2 already in order.
        t.row(cells);
    }
    rep.table("Ours (perplexity proxy; anchor is MXFP4-floor):", &t);

    let mut tp = Table::new(vec![
        "Rule",
        "LLaMA2 MXFP4",
        "LLaMA2 M2XFP",
        "LLaMA3 MXFP4",
        "LLaMA3 M2XFP",
    ]);
    for (name, row) in paper::table8() {
        let mut cells = vec![name.to_string()];
        cells.extend(row.iter().map(|&v| f2(v)));
        tp.row(cells);
    }
    rep.table("Paper:", &tp);
    rep.line("RTNE ≡ ceil for FP4 (M = 1.5·P, §6.4), hence the combined row.");
    rep.emit();
    rep
}

/// Fig. 13 — normalized latency and energy across accelerators.
pub fn fig13_perf_energy() -> Report {
    let mut rep = Report::new(
        "fig13_perf_energy",
        "Fig. 13 — normalized latency and energy vs baseline accelerators (seq 4096)",
    );
    let em = EnergyModel::default();
    let models = ModelProfile::table3_models();
    let mut lat = Table::new({
        let mut h = vec!["Accelerator".to_string()];
        h.extend(models.iter().map(|m| m.name.to_string()));
        h.push("Average".to_string());
        h
    });
    let mut en = lat.clone();
    let mut speedups = Vec::new();
    let mut energy_savings = Vec::new();

    // Collect raw numbers first (normalize per model to MX-OliVe).
    let mut raw_lat = vec![vec![0.0f64; models.len()]; AcceleratorKind::ALL.len()];
    let mut raw_en = raw_lat.clone();
    for (mi, model) in models.iter().enumerate() {
        for (ai, kind) in AcceleratorKind::ALL.iter().enumerate() {
            let cfg = AcceleratorConfig::of(*kind);
            let run = run_model(model, &cfg, 4096);
            raw_lat[ai][mi] = run.total.seconds;
            raw_en[ai][mi] = energy_of(&run.total, &cfg, &em).total();
        }
        let ms_i = 3; // MicroScopiQ
        let m2_i = 4; // M2XFP
        speedups.push(raw_lat[ms_i][mi] / raw_lat[m2_i][mi]);
        energy_savings.push(raw_en[ms_i][mi] / raw_en[m2_i][mi]);
    }
    for (ai, kind) in AcceleratorKind::ALL.iter().enumerate() {
        let mut lrow = vec![kind.name().to_string()];
        let mut erow = vec![kind.name().to_string()];
        let mut lsum = 0.0;
        let mut esum = 0.0;
        for mi in 0..models.len() {
            let l = raw_lat[ai][mi] / raw_lat[0][mi];
            let e = raw_en[ai][mi] / raw_en[0][mi];
            lsum += l;
            esum += e;
            lrow.push(f3(l));
            erow.push(f3(e));
        }
        lrow.push(f3(lsum / models.len() as f64));
        erow.push(f3(esum / models.len() as f64));
        lat.row(lrow);
        en.row(erow);
    }
    rep.table("Normalized latency (MX-OliVe = 1.0):", &lat);
    rep.table("Normalized energy (MX-OliVe = 1.0):", &en);
    let avg_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let avg_energy = energy_savings.iter().sum::<f64>() / energy_savings.len() as f64;
    rep.line(&format!(
        "Average speedup vs MicroScopiQ: {avg_speedup:.2}x (paper: {:.2}x)",
        paper::headline().speedup
    ));
    rep.line(&format!(
        "Average energy saving vs MicroScopiQ: {avg_energy:.2}x (paper: {:.2}x)",
        paper::headline().energy_saving
    ));
    rep.emit();
    rep
}

/// §1/§6 headline claims.
pub fn headline_claims(ev: &Evaluator) -> Report {
    let mut rep = Report::new("headline_claims", "Headline claims check");
    // Accuracy-loss reductions from Tbl. 2 aggregates across the 3 models.
    let mut loss_mxfp4 = 0.0;
    let mut loss_nvfp4 = 0.0;
    let mut loss_m2 = 0.0;
    let models = ModelProfile::table2_models();
    for model in &models {
        let (tasks, mxfp4_avg) = metrics::zero_shot_anchors(model.name).unwrap();
        let fp16_avg = tasks.iter().map(|t| t.fp16).sum::<f64>() / 6.0;
        let e0 = ev.compounded(model, &MxQuantizer::mxfp4());
        let avg_of = |q: &dyn TensorQuantizer| {
            let e = ev.compounded(model, q);
            let acc = metrics::accuracy_proxy(&tasks, mxfp4_avg, e0, e);
            acc.iter().sum::<f64>() / acc.len() as f64
        };
        loss_mxfp4 += fp16_avg - avg_of(&MxQuantizer::mxfp4());
        loss_nvfp4 += fp16_avg - avg_of(&Nvfp4::default());
        loss_m2 += fp16_avg - avg_of(&M2xfpQuantizer::default());
    }
    let n = models.len() as f64;
    let (loss_mxfp4, loss_nvfp4, loss_m2) = (loss_mxfp4 / n, loss_nvfp4 / n, loss_m2 / n);
    let red_mx = (1.0 - loss_m2 / loss_mxfp4) * 100.0;
    let red_nv = (1.0 - loss_m2 / loss_nvfp4) * 100.0;
    let h = paper::headline();
    let mut t = Table::new(vec!["Claim", "Paper", "Ours"]);
    t.row(vec![
        "Avg accuracy loss, MXFP4 (pts)".to_string(),
        "5.38".to_string(),
        f2(loss_mxfp4),
    ]);
    t.row(vec![
        "Avg accuracy loss, M2XFP (pts)".to_string(),
        "1.58".to_string(),
        f2(loss_m2),
    ]);
    t.row(vec![
        "Loss reduction vs MXFP4 (%)".to_string(),
        f2(h.loss_reduction_vs_mxfp4),
        f2(red_mx),
    ]);
    t.row(vec![
        "Loss reduction vs NVFP4 (%)".to_string(),
        f2(h.loss_reduction_vs_nvfp4),
        f2(red_nv),
    ]);
    // Performance headline from the simulator.
    let em = EnergyModel::default();
    let mut sp = 0.0;
    let mut es = 0.0;
    let t3 = ModelProfile::table3_models();
    for model in &t3 {
        let ms_cfg = AcceleratorConfig::of(AcceleratorKind::MicroScopiQ);
        let m2_cfg = AcceleratorConfig::of(AcceleratorKind::M2xfp);
        let ms = run_model(model, &ms_cfg, 4096);
        let m2 = run_model(model, &m2_cfg, 4096);
        sp += ms.total.seconds / m2.total.seconds;
        es +=
            energy_of(&ms.total, &ms_cfg, &em).total() / energy_of(&m2.total, &m2_cfg, &em).total();
    }
    t.row(vec![
        "Speedup vs MicroScopiQ".to_string(),
        format!("{:.2}x", h.speedup),
        format!("{:.2}x", sp / t3.len() as f64),
    ]);
    t.row(vec![
        "Energy saving vs MicroScopiQ".to_string(),
        format!("{:.2}x", h.energy_saving),
        format!("{:.2}x", es / t3.len() as f64),
    ]);
    rep.table("Headline claims:", &t);
    rep.emit();
    rep
}

/// §4.4.1 ablation — the bias-clamp encoding vs ideal FP6 re-rounding.
pub fn ablate_clamp(ev: &Evaluator) -> Report {
    let mut rep = Report::new(
        "ablate_clamp",
        "Ablation — bias-clamp FP6 encoding vs ideal top-1 re-rounding",
    );

    /// M2XFP with *ideal* (unclamped) Elem-EM activations.
    struct IdealActs;
    impl TensorQuantizer for IdealActs {
        fn name(&self) -> String {
            "M2XFP-ideal-top1".to_string()
        }
        fn weight_ebw(&self) -> f64 {
            4.5
        }
        fn activation_ebw(&self) -> f64 {
            4.5
        }
        fn quantize_weights(&self, w: &Matrix) -> Matrix {
            M2xfpQuantizer::default().quantize_weights(w)
        }
        fn quantize_activations(&self, x: &Matrix) -> Matrix {
            let s = MetadataStrategy::ElemEm { top: 1 };
            let cfg = m2xfp::GroupConfig::m2xfp_default();
            m2xfp::quantizer::fake_quant_rowwise(x, 32, |g| {
                s.fake_quantize_group(g, cfg, ScaleRule::Floor, ScaleMode::Fixed)
            })
        }
    }

    let mut t = Table::new(vec!["Model", "PPL (bias-clamp)", "PPL (ideal)", "Δ"]);
    let mut max_delta = 0.0f64;
    for model in ModelProfile::table3_models() {
        let clamped = ev.ppl(&model, &M2xfpQuantizer::default());
        let ideal = ev.ppl(&model, &IdealActs);
        let d = clamped - ideal;
        max_delta = max_delta.max(d.abs());
        t.row(vec![model.name.to_string(), f3(clamped), f3(ideal), f3(d)]);
    }
    rep.table("Perplexity-proxy impact of the alignment clamp:", &t);
    rep.line(&format!(
        "Max |Δ| = {max_delta:.3} (paper: ≤ 0.02 on common LLMs)."
    ));
    rep.emit();
    rep
}

/// §4.2.3 ablation — adaptive vs fixed shared scale for weights.
pub fn ablate_adaptive(ev: &Evaluator) -> Report {
    let mut rep = Report::new(
        "ablate_adaptive",
        "Ablation — adaptive vs fixed shared scale for Sg-EM weights",
    );
    let mut t = Table::new(vec!["Model", "PPL (adaptive)", "PPL (fixed)", "Δ"]);
    for model in ModelProfile::table3_models() {
        let adaptive = ev.ppl(&model, &M2xfpQuantizer::default());
        let fixed = ev.ppl(
            &model,
            &M2xfpQuantizer::new(M2xfpConfig {
                adaptive_weight_scale: false,
                ..M2xfpConfig::default()
            }),
        );
        t.row(vec![
            model.name.to_string(),
            f3(adaptive),
            f3(fixed),
            f3(fixed - adaptive),
        ]);
    }
    rep.table(
        "Weight-path adaptive shared-scale search (b ∈ {-1,0,1}):",
        &t,
    );
    rep.emit();
    rep
}
