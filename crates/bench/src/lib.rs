//! # m2x-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (run `cargo run --release -p m2x-bench --bin <experiment>`),
//! plus Criterion micro-benchmarks (`cargo bench`).
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig02_scale_error` | Fig. 2 — FP16 vs E8M0 scale rounding error |
//! | `fig03_max_preservation` | Fig. 3 — max-value preservation study |
//! | `fig04_granularity` | Fig. 4 — perplexity vs EBW across group sizes |
//! | `fig06_dse_fixed` | Fig. 6 — DSE under fixed shared scale |
//! | `fig07_dse_adaptive` | Fig. 7 — DSE with adaptive shared scale |
//! | `table2_zero_shot` | Tbl. 2 — zero-shot accuracy |
//! | `table3_perplexity` | Tbl. 3 — Wikitext perplexity vs accelerators |
//! | `table4_reasoning` | Tbl. 4 — reasoning benchmarks |
//! | `table5_area_power` | Tbl. 5 + §6.3 PE-tile areas |
//! | `table6_m2nvfp4` | Tbl. 6 — metadata on NVFP4 |
//! | `table7_algorithms` | Tbl. 7 — QuaRot/DuQuant/MR-GPTQ |
//! | `table8_scale_rules` | Tbl. 8 — shared-scale computation rules |
//! | `fig13_perf_energy` | Fig. 13 — normalized latency & energy |
//! | `headline_claims` | §1/§6 headline numbers |
//! | `ablate_clamp` | §4.4.1 bias-clamp encoding ablation |
//! | `ablate_adaptive` | §4.2.3 adaptive-scale ablation |
//! | `run_all` | everything above, into `results/` |

pub mod e2e;
pub mod eval;
pub mod experiments;
pub mod extensions;
pub mod gateway_load;
pub mod paper;
pub mod report;
pub mod serving;
