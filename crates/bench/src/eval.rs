//! Shared evaluation plumbing: a memoized (model, format) → measured-error
//! cache so `run_all` never repeats a W4A4 evaluation, plus the standard
//! evaluation size used by every table.

use m2x_nn::profile::ModelProfile;
use m2x_nn::propagate::{evaluate, EvalConfig, W4a4Error};
use m2x_serve::sync::lock_poisoned;
use m2xfp::TensorQuantizer;
use std::collections::HashMap;
use std::sync::Mutex;

/// The evaluation size used by all experiment binaries (release builds).
pub fn standard_cfg() -> EvalConfig {
    EvalConfig {
        tokens: 48,
        max_k: 768,
        max_n: 384,
        layer_samples: 2,
        threads: 8,
    }
}

/// A memoizing evaluator.
#[derive(Default)]
pub struct Evaluator {
    cache: Mutex<HashMap<(String, String), W4a4Error>>,
    cfg: Option<EvalConfig>,
}

impl Evaluator {
    /// Creates an evaluator with the standard configuration.
    pub fn new() -> Self {
        Evaluator {
            cache: Mutex::new(HashMap::new()),
            cfg: None,
        }
    }

    /// Overrides the evaluation configuration (tests use smaller sizes).
    pub fn with_cfg(cfg: EvalConfig) -> Self {
        Evaluator {
            cache: Mutex::new(HashMap::new()),
            cfg: Some(cfg),
        }
    }

    fn cfg(&self) -> EvalConfig {
        self.cfg.unwrap_or_else(standard_cfg)
    }

    /// Measured W4A4 error of `(model, format)`, memoized.
    pub fn error(&self, model: &ModelProfile, q: &dyn TensorQuantizer) -> W4a4Error {
        let key = (model.name.to_string(), q.name());
        if let Some(hit) = lock_poisoned(&self.cache).get(&key) {
            return hit.clone();
        }
        let e = evaluate(model, q, &self.cfg());
        lock_poisoned(&self.cache).insert(key, e.clone());
        e
    }

    /// Measured NRMSE (√ of MAC-weighted output NMSE) of one layer.
    pub fn nrmse(&self, model: &ModelProfile, q: &dyn TensorQuantizer) -> f64 {
        self.error(model, q).nrmse()
    }

    /// Layer error compounded through the model's depth — the quantity the
    /// quality proxies consume (see `m2x_nn::metrics::compound_error`).
    pub fn compounded(&self, model: &ModelProfile, q: &dyn TensorQuantizer) -> f64 {
        m2x_nn::metrics::compound_error(self.nrmse(model, q), model.layers)
    }

    /// Perplexity proxy for `q` on `model` (anchored per DESIGN.md §1).
    ///
    /// # Panics
    ///
    /// Panics when the model has no published Tbl. 3 anchor.
    pub fn ppl(&self, model: &ModelProfile, q: &dyn TensorQuantizer) -> f64 {
        let anchor = m2x_nn::metrics::ppl_anchor(model.name)
            .unwrap_or_else(|| panic!("no ppl anchor for {}", model.name));
        let e0 = self.compounded(model, &m2x_baselines::MxQuantizer::mxfp4());
        let e = self.compounded(model, q);
        m2x_nn::metrics::ppl_proxy(anchor, e0, e)
    }

    /// Perplexity proxy from an externally measured error (for formats that
    /// do not fit the [`TensorQuantizer`] trait, e.g. MR-GPTQ).
    pub fn ppl_from_error(&self, model: &ModelProfile, nrmse: f64) -> f64 {
        let anchor = m2x_nn::metrics::ppl_anchor(model.name)
            .unwrap_or_else(|| panic!("no ppl anchor for {}", model.name));
        let e0 = self.compounded(model, &m2x_baselines::MxQuantizer::mxfp4());
        let e = m2x_nn::metrics::compound_error(nrmse, model.layers);
        m2x_nn::metrics::ppl_proxy(anchor, e0, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_baselines::MxQuantizer;

    #[test]
    fn cache_returns_identical_results() {
        let ev = Evaluator::with_cfg(EvalConfig::tiny());
        let p = ModelProfile::llama2_7b();
        let q = MxQuantizer::mxfp4();
        let a = ev.error(&p, &q);
        let b = ev.error(&p, &q);
        assert_eq!(a.mean_nmse, b.mean_nmse);
    }

    #[test]
    fn mxfp4_ppl_reproduces_anchor_exactly() {
        let ev = Evaluator::with_cfg(EvalConfig::tiny());
        let p = ModelProfile::llama2_7b();
        let ppl = ev.ppl(&p, &MxQuantizer::mxfp4());
        assert!((ppl - 7.15).abs() < 1e-9, "got {ppl}");
    }

    #[test]
    fn better_format_predicts_lower_ppl() {
        let ev = Evaluator::with_cfg(EvalConfig::tiny());
        let p = ModelProfile::llama3_8b();
        let m2 = ev.ppl(&p, &m2xfp::quantizer::M2xfpQuantizer::default());
        let mx = ev.ppl(&p, &MxQuantizer::mxfp4());
        assert!(m2 < mx, "m2xfp {m2} vs mxfp4 {mx}");
        // And above FP16.
        assert!(m2 > 6.14);
    }
}
