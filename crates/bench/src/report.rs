//! Plain-text table rendering and result persistence.
//!
//! Every experiment binary prints its tables to stdout and mirrors them to
//! `results/<experiment>.txt` so `run_all` leaves a complete record.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(line, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(line, "  {:>w$}", c, w = widths[i]);
                }
            }
            line
        };
        let header_line = fmt_row(&self.header, &widths);
        out.push_str(&header_line);
        out.push('\n');
        out.push_str(&"-".repeat(header_line.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 4 significant-ish decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// A report being assembled by an experiment binary.
#[derive(Debug, Default)]
pub struct Report {
    name: String,
    body: String,
}

impl Report {
    /// Starts a report for `name` (the experiment id).
    pub fn new(name: &str, title: &str) -> Self {
        let mut r = Report {
            name: name.to_string(),
            body: String::new(),
        };
        r.line(&format!("== {title} =="));
        r.line("");
        r
    }

    /// Appends a text line.
    pub fn line(&mut self, s: &str) {
        self.body.push_str(s);
        self.body.push('\n');
    }

    /// Appends a titled table.
    pub fn table(&mut self, title: &str, t: &Table) {
        self.line(title);
        self.body.push_str(&t.render());
        self.line("");
    }

    /// Prints to stdout and writes `results/<name>.txt`. Returns the path.
    pub fn emit(&self) -> PathBuf {
        print!("{}", self.body);
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.txt", self.name));
        if let Err(e) = fs::write(&path, &self.body) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        path
    }

    /// The accumulated body (for tests).
    pub fn body(&self) -> &str {
        &self.body
    }
}

/// `results/` at the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench -> ../../results
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .map(|p| p.join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["Method", "LLaMA2", "LLaMA3"]);
        t.row(vec!["FP16", "5.47", "6.14"]);
        t.row(vec!["M2XFP", "5.77", "6.84"]);
        let s = t.render();
        assert!(s.contains("Method"));
        assert!(s.lines().count() == 4);
        // All data lines equal length.
        let lens: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert_eq!(lens[0], lens[2]);
        assert_eq!(lens[2], lens[3]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn report_accumulates() {
        let mut r = Report::new("test", "Test");
        r.line("hello");
        assert!(r.body().contains("== Test =="));
        assert!(r.body().contains("hello"));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f4(2.0), "2.0000");
    }
}
