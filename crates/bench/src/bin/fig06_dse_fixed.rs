//! Regenerates Fig. 6 of the paper. Run with `--release`.
fn main() {
    let _ = m2x_bench::experiments::fig06_dse_fixed();
}
