//! Regenerates Tbl. 6 of the paper. Run with `--release`.
fn main() {
    let ev = m2x_bench::eval::Evaluator::new();
    let _ = m2x_bench::experiments::table6_m2nvfp4(&ev);
}
