//! Whole-model end-to-end driver — the paper's §6 setting: quantize every
//! linear of a synthetic transformer to M2XFP (threaded integer-LUT Sg-EM
//! search), then run batched inference through the engine API
//! (`QuantizedModel` on the packed backend), cross-check the grouped
//! backend bit for bit, time the prefill→decode serving loop (decode rides
//! the appendable-plane KV path: O(1) per head per step, no cache
//! re-decode), and report per-layer + whole-model throughput/NRMSE as JSON
//! (`results/BENCH_e2e_model.json`, gate-compatible schema).
//!
//! Environment:
//! * `M2X_E2E_HIDDEN` — hidden dimension (default 256; group-aligned).
//! * `M2X_E2E_LAYERS` — transformer layers (default 4).
//! * `M2X_E2E_TOKENS` — prefill batch in tokens (default 32).
//! * `M2X_E2E_DECODE` — timed decode steps (default 8).
//! * `M2X_E2E_REPS`   — measurement repetitions, best-of (default 3).

use m2x_bench::e2e::{run, E2eConfig};
use m2x_bench::report::results_dir;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = E2eConfig {
        hidden: env_usize("M2X_E2E_HIDDEN", 256),
        layers: env_usize("M2X_E2E_LAYERS", 4),
        tokens: env_usize("M2X_E2E_TOKENS", 32),
        decode_steps: env_usize("M2X_E2E_DECODE", 8),
        reps: env_usize("M2X_E2E_REPS", 3),
    };
    eprintln!(
        "e2e_model: hidden={} layers={} tokens={} decode={} reps={}",
        cfg.hidden, cfg.layers, cfg.tokens, cfg.decode_steps, cfg.reps
    );

    let r = run(cfg);
    eprintln!(
        "quantize {:.3}s ({} weight bytes) | forward_batch packed {:.4}s = {:.2} GMAC/s \
         (grouped {:.4}s, {:.2}x) | decode {:.1} tok/s | NRMSE {:.4} | backends_exact {}",
        r.quantize_s,
        r.weight_bytes,
        r.forward_packed_s,
        r.gmacs,
        r.forward_grouped_s,
        r.speedup_packed,
        r.decode_tokens_per_s,
        r.nrmse,
        r.backends_exact,
    );
    for (i, e) in r.per_layer_nmse.iter().enumerate() {
        eprintln!("  layer {i}: residual-stream NMSE {e:.6}");
    }

    let json = r.to_json();
    println!("{json}");
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_e2e_model.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    assert!(
        r.backends_exact,
        "packed and grouped backends diverged on the whole-model forward"
    );
}
