//! Regenerates Fig. 7 of the paper. Run with `--release`.
fn main() {
    let _ = m2x_bench::experiments::fig07_dse_adaptive();
}
