//! Regenerates the §4.2.3 adaptive-scale ablation of the paper. Run with `--release`.
fn main() {
    let ev = m2x_bench::eval::Evaluator::new();
    let _ = m2x_bench::experiments::ablate_adaptive(&ev);
}
