//! Serving-runtime driver — open-loop arrival of M generation requests
//! against one shared prepared model through the `m2x-serve`
//! continuous-batching scheduler, compared against the same M requests run
//! solo on sequential sessions. Verifies every request's batched token
//! stream is bit-identical to its solo run (`batch_exact`), reports
//! req/s, aggregate decode tok/s and p50/p99 request latency in scheduler
//! steps, then runs the chaos + churn scenario (bounded queue flooded 4×
//! under a seeded fault plan of step panics, stalls and mid-flight
//! cancels), then the paged-KV prefix-sharing churn scenario (one request
//! seeds a frozen prompt prefix, the rest adopt it copy-on-write while
//! cancelled long-runners recycle pages through the free list), and
//! writes `results/BENCH_serve.json` (gate-compatible schema) with the
//! extra blocks nested under `"chaos"` and `"kv_pool"`.
//!
//! Environment:
//! * `M2X_SERVE_HIDDEN`   — hidden dimension (default 256; group-aligned).
//! * `M2X_SERVE_LAYERS`   — transformer layers (default 2).
//! * `M2X_SERVE_REQUESTS` — concurrent generation requests (default 8).
//! * `M2X_SERVE_PROMPT`   — prompt tokens per request (default 16).
//! * `M2X_SERVE_DECODE`   — decode steps per request (default 16).
//! * `M2X_SERVE_BATCH`    — scheduler admission window (default 8).
//! * `M2X_SERVE_REPS`     — measurement repetitions, best-of (default 3).
//! * `M2X_CHAOS_SEED`     — fault-plan seed (default `ci()`'s 0xC0FFEE).
//! * `M2X_CHAOS_PANICS`   — injected step panics (default 2).
//! * `M2X_CHAOS_DELAYS`   — injected engine stalls (default 3).
//! * `M2X_CHAOS_CANCELS`  — injected mid-flight cancels (default 3).
//! * `M2X_GW_SHORT`       — gateway churn-wave short connections (default 200).
//! * `M2X_GW_LONG`        — gateway pinned long streams (default 2).
//! * `M2X_GW_DISCONNECTS` — gateway mid-stream hangups (default 3).
//! * `M2X_GW_CLIENTS`     — gateway churn client threads (default 4).

use m2x_bench::gateway_load::{run_gateway_load, GatewayLoadConfig};
use m2x_bench::report::results_dir;
use m2x_bench::serving::{
    run, run_chaos, run_prefix_churn, run_telemetry, ChaosBenchConfig, PrefixChurnConfig,
    ServeBenchConfig, TelemetryBenchConfig,
};
use m2x_telemetry::alloc_probe::CountingAlloc;

/// Arms the telemetry zero-alloc witness (see `bench_m2xfp_json`).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = ServeBenchConfig {
        hidden: env_usize("M2X_SERVE_HIDDEN", 256),
        layers: env_usize("M2X_SERVE_LAYERS", 2),
        requests: env_usize("M2X_SERVE_REQUESTS", 8),
        prompt_tokens: env_usize("M2X_SERVE_PROMPT", 16),
        decode_steps: env_usize("M2X_SERVE_DECODE", 16),
        max_batch: env_usize("M2X_SERVE_BATCH", 8),
        reps: env_usize("M2X_SERVE_REPS", 3),
    };
    eprintln!(
        "serve_bench: hidden={} layers={} requests={} prompt={} decode={} max_batch={} reps={}",
        cfg.hidden,
        cfg.layers,
        cfg.requests,
        cfg.prompt_tokens,
        cfg.decode_steps,
        cfg.max_batch,
        cfg.reps
    );

    let r = run(cfg);
    eprintln!(
        "solo {:.4}s | batched {:.4}s = {:.2}x | {:.2} req/s, {:.1} decode tok/s | \
         latency p50 {:.0} / p99 {:.0} steps (peak batch {}) | batch_exact {}",
        r.solo_s,
        r.batch_s,
        r.speedup_batch,
        r.req_per_s,
        r.decode_tok_per_s,
        r.latency_p50_steps,
        r.latency_p99_steps,
        r.peak_batch,
        r.batch_exact,
    );

    let ci = ChaosBenchConfig::ci();
    let chaos_cfg = ChaosBenchConfig {
        seed: env_usize("M2X_CHAOS_SEED", ci.seed as usize) as u64,
        panics: env_usize("M2X_CHAOS_PANICS", ci.panics),
        delays: env_usize("M2X_CHAOS_DELAYS", ci.delays),
        cancels: env_usize("M2X_CHAOS_CANCELS", ci.cancels),
        ..ci
    };
    let c = run_chaos(chaos_cfg);
    eprintln!(
        "chaos: seed {:#x} → {} finished / {} shed ({:.0}% of flood) / {} cancelled / \
         {} deadline-exceeded / {} failed | {} panics recovered over {} recovery ticks | \
         p99 step {:.0}µs | chaos_exact {} zero_leak {}",
        c.cfg.seed,
        c.finished,
        c.rejected,
        c.shed_rate * 100.0,
        c.cancelled,
        c.deadline_exceeded,
        c.failed,
        c.panics_recovered,
        c.recovery_ticks,
        c.p99_step_us,
        c.chaos_exact,
        c.zero_leak,
    );

    let kv_cfg = PrefixChurnConfig {
        hidden: cfg.hidden,
        layers: cfg.layers,
        ..PrefixChurnConfig::ci()
    };
    let k = run_prefix_churn(kv_cfg);
    eprintln!(
        "kv_pool: {} prefix hits / {} misses | hit rate {:.0}% ({} allocs, {} reuses, \
         {} CoW) | peak {} pages, fragmentation {:.0}% | reuse_exact {} zero_leak {}",
        k.prefix_hits,
        k.prefix_misses,
        k.hit_rate * 100.0,
        k.page_allocs,
        k.page_reuses,
        k.cow_clones,
        k.peak_pages,
        k.fragmentation * 100.0,
        k.reuse_exact,
        k.zero_leak,
    );

    let gw_ci = GatewayLoadConfig::ci();
    let gw_cfg = GatewayLoadConfig {
        hidden: cfg.hidden,
        layers: cfg.layers,
        short_connections: env_usize("M2X_GW_SHORT", gw_ci.short_connections),
        long_streams: env_usize("M2X_GW_LONG", gw_ci.long_streams),
        disconnects: env_usize("M2X_GW_DISCONNECTS", gw_ci.disconnects),
        clients: env_usize("M2X_GW_CLIENTS", gw_ci.clients),
        ..gw_ci
    };
    let g = run_gateway_load(gw_cfg);
    eprintln!(
        "gateway: {} short conns ({:.0} req/s) over {} clients + {} long streams \
         ({:.0} tok/s at the socket) + {} hangups | e2e p50 {:.2}ms / p99 {:.2}ms | \
         stream_exact {} zero_leak {}",
        g.cfg.short_connections,
        g.churn_req_per_s,
        g.cfg.clients,
        g.cfg.long_streams,
        g.stream_tok_per_s,
        g.cfg.disconnects,
        g.e2e_p50_ms,
        g.e2e_p99_ms,
        g.stream_exact,
        g.zero_leak,
    );

    let tl_cfg = TelemetryBenchConfig {
        hidden: cfg.hidden,
        layers: cfg.layers,
        reps: cfg.reps,
        ..TelemetryBenchConfig::ci()
    };
    let t = run_telemetry(tl_cfg);
    eprintln!(
        "telemetry: overhead {:.1}% (traced {:.1} vs untraced {:.1} tok/s) | stage cover \
         {:.1}% of {:.0}µs tick time | {} trace events | trace_exact {} zero_alloc {:?}",
        (1.0 - t.overhead_ratio) * 100.0,
        t.traced_tok_per_s,
        t.untraced_tok_per_s,
        t.stage_cover * 100.0,
        t.tick_sum_us / t.ticks.max(1) as f64,
        t.trace_events,
        t.trace_exact,
        t.zero_alloc,
    );

    // Nest the chaos, gateway and telemetry blocks inside the serving
    // report — one array-free object, so the gate flattener sees
    // `chaos.chaos_exact`, `gateway.stream_exact`, `telemetry.trace_exact`
    // etc.
    let body = r
        .to_json()
        .strip_suffix("\n}")
        .expect("ServeReport::to_json renders an object")
        .to_string();
    let json = format!(
        "{body},\n  \"chaos\": {},\n  \"kv_pool\": {},\n  \"gateway\": {},\n  \"telemetry\": {}\n}}",
        c.to_json().replace('\n', "\n  "),
        k.to_json().replace('\n', "\n  "),
        g.to_json().replace('\n', "\n  "),
        t.to_json().replace('\n', "\n  ")
    );
    println!("{json}");
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_serve.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    assert!(
        r.batch_exact,
        "a batched request's token stream diverged from its solo run"
    );
    assert!(
        c.chaos_exact,
        "a chaos survivor's token stream diverged from its solo run"
    );
    assert!(c.zero_leak, "sessions leaked after the chaos run");
    assert!(
        k.reuse_exact,
        "a request served off shared/recycled KV pages diverged from its solo run"
    );
    assert!(
        k.zero_leak,
        "KV pages or sessions leaked after the prefix churn run"
    );
    assert!(
        g.stream_exact,
        "a socket-streamed token diverged from its solo run"
    );
    assert!(g.zero_leak, "the gateway load run leaked sessions");
    assert!(
        t.trace_exact,
        "the drained trace failed to reconstruct every request's lifecycle"
    );
    assert_eq!(
        t.zero_alloc,
        Some(true),
        "warm trace recording allocated {} times",
        t.recording_allocs
    );
}
