//! Serving-runtime driver — open-loop arrival of M generation requests
//! against one shared prepared model through the `m2x-serve`
//! continuous-batching scheduler, compared against the same M requests run
//! solo on sequential sessions. Verifies every request's batched token
//! stream is bit-identical to its solo run (`batch_exact`), reports
//! req/s, aggregate decode tok/s and p50/p99 request latency in scheduler
//! steps, and writes `results/BENCH_serve.json` (gate-compatible schema).
//!
//! Environment:
//! * `M2X_SERVE_HIDDEN`   — hidden dimension (default 256; group-aligned).
//! * `M2X_SERVE_LAYERS`   — transformer layers (default 2).
//! * `M2X_SERVE_REQUESTS` — concurrent generation requests (default 8).
//! * `M2X_SERVE_PROMPT`   — prompt tokens per request (default 16).
//! * `M2X_SERVE_DECODE`   — decode steps per request (default 16).
//! * `M2X_SERVE_BATCH`    — scheduler admission window (default 8).
//! * `M2X_SERVE_REPS`     — measurement repetitions, best-of (default 3).

use m2x_bench::report::results_dir;
use m2x_bench::serving::{run, ServeBenchConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = ServeBenchConfig {
        hidden: env_usize("M2X_SERVE_HIDDEN", 256),
        layers: env_usize("M2X_SERVE_LAYERS", 2),
        requests: env_usize("M2X_SERVE_REQUESTS", 8),
        prompt_tokens: env_usize("M2X_SERVE_PROMPT", 16),
        decode_steps: env_usize("M2X_SERVE_DECODE", 16),
        max_batch: env_usize("M2X_SERVE_BATCH", 8),
        reps: env_usize("M2X_SERVE_REPS", 3),
    };
    eprintln!(
        "serve_bench: hidden={} layers={} requests={} prompt={} decode={} max_batch={} reps={}",
        cfg.hidden,
        cfg.layers,
        cfg.requests,
        cfg.prompt_tokens,
        cfg.decode_steps,
        cfg.max_batch,
        cfg.reps
    );

    let r = run(cfg);
    eprintln!(
        "solo {:.4}s | batched {:.4}s = {:.2}x | {:.2} req/s, {:.1} decode tok/s | \
         latency p50 {:.0} / p99 {:.0} steps (peak batch {}) | batch_exact {}",
        r.solo_s,
        r.batch_s,
        r.speedup_batch,
        r.req_per_s,
        r.decode_tok_per_s,
        r.latency_p50_steps,
        r.latency_p99_steps,
        r.peak_batch,
        r.batch_exact,
    );

    let json = r.to_json();
    println!("{json}");
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_serve.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    assert!(
        r.batch_exact,
        "a batched request's token stream diverged from its solo run"
    );
}
