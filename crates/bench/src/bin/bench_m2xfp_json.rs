//! JSON throughput emitter for the M2XFP quantize + qGEMM hot path.
//!
//! Times the legacy grouped pipeline against the packed three-stream
//! pipeline on the same data, verifies the two GEMMs agree bit for bit, and
//! writes `results/BENCH_m2xfp.json`. This is the artifact behind the
//! recorded throughput baseline (`BENCH_m2xfp.json` at the repo root).
//!
//! Environment (the full knob list lives in README § "Benchmark
//! environment knobs"):
//! * `M2X_BENCH_DIM`  — K = N dimension (default 512; the acceptance run
//!   uses 4096). M is fixed at 32 (a decode batch).
//! * `M2X_BENCH_REPS` — measurement repetitions per timer (default 3,
//!   minimum over reps is reported).
//! * `M2X_BENCH_WQ_REFERENCE` — set to `0` to skip timing the float-codec
//!   reference weight search (it is the slow one: ~12 s per rep at 4096²).

use m2x_bench::e2e::{run as run_e2e, E2eConfig};
use m2x_bench::gateway_load::{run_gateway_load, GatewayLoadConfig};
use m2x_bench::report::results_dir;
use m2x_bench::serving::{
    run as run_serve, run_chaos, run_prefix_churn, run_telemetry, ChaosBenchConfig,
    PrefixChurnConfig, ServeBenchConfig, TelemetryBenchConfig,
};
use m2x_telemetry::alloc_probe::CountingAlloc;
use m2x_tensor::{Matrix, Xoshiro};
use m2xfp::format::{ActTensor, PackedActTensor, PackedWeightTensor, WeightTensor};
use m2xfp::gemm::{
    qgemm, qgemm_packed, qgemm_packed_inreg, qgemm_packed_threaded, qgemm_reference, qgemv_packed,
    GemmScratch, WeightPlane,
};
use m2xfp::M2xfpConfig;
use std::hint::black_box;
use std::time::Instant;

/// Arms the `telemetry.zero_alloc` witness: with the counting allocator
/// installed process-wide, `run_telemetry` can prove warm trace recording
/// never touches the heap (a dead probe would report `null`, and the gate
/// would treat the measurement as skipped).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time<O>(reps: usize, f: impl FnMut() -> O) -> f64 {
    time_keep(reps, f).0
}

/// Best-of-`reps` wall time of `f` plus the last run's output, so callers
/// that need the constructed value don't pay an extra untimed run.
fn time_keep<O>(reps: usize, mut f: impl FnMut() -> O) -> (f64, O) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        out = Some(black_box(f()));
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.expect("reps >= 1"))
}

/// Runs the `m2x-lint` R1–R4 scan over the workspace this binary was
/// built from. `Some(true)` = clean, `Some(false)` = findings (printed to
/// stderr), `None` = source tree not found (the binary runs detached from
/// its workspace; the gate treats `null` as "measurement skipped").
fn lint_clean() -> Option<bool> {
    let cwd = std::env::current_dir().ok()?;
    let root = m2x_lint::find_workspace_root(&cwd)?;
    let report = m2x_lint::scan_workspace(&root);
    for f in &report.findings {
        eprintln!("{f}");
    }
    Some(report.is_clean())
}

fn main() {
    let dim = env_usize("M2X_BENCH_DIM", 512);
    let reps = env_usize("M2X_BENCH_REPS", 3);
    let (m, k, n) = (32usize, dim, dim);
    let cfg = M2xfpConfig::default();

    let mut rng = Xoshiro::seed(7);
    let x = Matrix::from_fn(m, k, |_, _| rng.laplace(1.0));
    let w = Matrix::from_fn(n, k, |_, _| rng.laplace(0.5));

    eprintln!("m2xfp bench: M={m} K={k} N={n}, {reps} reps");

    // Encode throughput (activations: the online path).
    let t_enc_grouped = time(reps, || ActTensor::quantize(&x, cfg));
    let t_enc_packed = time(reps, || PackedActTensor::quantize(&x, cfg));

    // Weight quantization happens offline, so it is excluded from the
    // headline quantize+qGEMM speedup; `quantize_weights_grouped_s` is the
    // legacy float-codec Sg-EM search and `quantize_weights_packed_s` the
    // threaded integer-LUT search writing the packed streams directly.
    // Both sides are best-of-`reps`: their ratio is a hard-gated CI metric,
    // so a single noisy measurement must not skew it. At the 4096²
    // acceptance dim the reference costs ~12 s per rep — set
    // `M2X_BENCH_WQ_REFERENCE=0` (or lower `M2X_BENCH_REPS`) to trim that.
    let time_reference = env_usize("M2X_BENCH_WQ_REFERENCE", 1) != 0;
    let (t_wq, wt_ref) = if time_reference {
        let (t, wt) = time_keep(reps, || WeightTensor::quantize_reference(&w, cfg));
        (t, Some(wt))
    } else {
        (0.0, None)
    };
    let (t_wq_packed, wp) = time_keep(reps, || PackedWeightTensor::quantize_parallel(&w, cfg));
    // Bit-exactness of the parallel LUT search against the float oracle.
    let wq_exact = wt_ref
        .as_ref()
        .map(|r| PackedWeightTensor::from_grouped(r) == wp);
    let wt = wp.to_grouped();
    let xt = ActTensor::quantize(&x, cfg);
    let xp = PackedActTensor::from_grouped(&xt);

    // GEMM throughput.
    let t_gemm_grouped = time(reps, || qgemm(&xt, &wt));
    let t_gemm_packed_1t = time(reps, || qgemm_packed_threaded(&xp, &wp, 1));
    let t_gemm_packed_mt = time(reps, || qgemm_packed(&xp, &wp));

    // Bit-exactness of the two pipelines on this data.
    let a = qgemm(&xt, &wt);
    let b = qgemm_packed(&xp, &wp);
    let exact = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(p, q)| p.to_bits() == q.to_bits());

    // Decode-kernel section: the m == 1 GEMV shape serving hits once per
    // projection per layer per decode step. `speedup_gemv` (grouped PE
    // pipeline over the register-blocked GEMV fast path, both at m == 1,
    // both in this process) is the hardware-normalized ratio CI
    // hard-gates; `speedup_planed_vs_inreg` records how much the cached
    // WeightPlane + scratch route wins over the one-shot in-register
    // nibble-decode kernel on the same shape.
    let x1 = Matrix::from_fn(1, k, |_, _| rng.laplace(1.0));
    let x1t = ActTensor::quantize(&x1, cfg);
    let x1p = PackedActTensor::from_grouped(&x1t);
    let plane = WeightPlane::decode(&wp);
    let mut scratch = GemmScratch::new();
    // A single m == 1 call is microseconds at the CI dim — far inside
    // shared-runner timer noise, and `speedup_gemv` is a hard gate. Each
    // timed sample therefore loops the kernel until it covers a few
    // milliseconds and reports the per-call mean (~4 MMAC per sample).
    let dk_iters = (4_000_000 / (k * n)).max(1);
    let t_dk_gemv = time(reps, || {
        for _ in 0..dk_iters {
            black_box(qgemv_packed(&x1p, &plane, &mut scratch));
        }
    }) / dk_iters as f64;
    let t_dk_inreg = time(reps, || {
        for _ in 0..dk_iters {
            black_box(qgemm_packed_inreg(&x1p, &wp, 1));
        }
    }) / dk_iters as f64;
    let t_dk_grouped = time(reps, || {
        for _ in 0..dk_iters {
            black_box(qgemm(&x1t, &wt));
        }
    }) / dk_iters as f64;
    let dk_want = qgemm_reference(&x1t, &wt);
    let dk_gemv = qgemv_packed(&x1p, &plane, &mut scratch);
    let dk_inreg = qgemm_packed_inreg(&x1p, &wp, 1);
    let decode_exact = dk_want
        .as_slice()
        .iter()
        .zip(dk_gemv.as_slice())
        .all(|(p, q)| p.to_bits() == q.to_bits())
        && dk_want
            .as_slice()
            .iter()
            .zip(dk_inreg.as_slice())
            .all(|(p, q)| p.to_bits() == q.to_bits());

    // Whole-model §6 end-to-end section: fixed small dims (independent of
    // M2X_BENCH_DIM, so the committed baseline stays comparable across
    // emitter dims). `speedup_packed` is the hardware-normalized
    // grouped/packed whole-model ratio CI hard-gates; `gmacs` the absolute
    // throughput it gates like the wall-times.
    let e2e_cfg = E2eConfig {
        reps,
        ..E2eConfig::ci()
    };
    eprintln!(
        "e2e model: hidden={} layers={} tokens={}",
        e2e_cfg.hidden, e2e_cfg.layers, e2e_cfg.tokens
    );
    let e2e = run_e2e(e2e_cfg);

    // Serving section: the continuous-batching scheduler vs solo sequential
    // sessions at fixed small dims. `speedup_batch` is hardware-normalized
    // (both sides in the same process) and CI hard-gates it alongside the
    // `batch_exact` bit-identity flag.
    let serve_cfg = ServeBenchConfig {
        reps,
        ..ServeBenchConfig::ci()
    };
    eprintln!(
        "serve: hidden={} layers={} requests={} max_batch={}",
        serve_cfg.hidden, serve_cfg.layers, serve_cfg.requests, serve_cfg.max_batch
    );
    let serve = run_serve(serve_cfg);

    // Chaos section: the same serving runtime flooded past its bounded
    // queue under a seeded fault plan (step panics, stalls, mid-flight
    // cancels) plus per-request deadlines. `chaos_exact` and `zero_leak`
    // are CI hard gates: survivors stay bit-identical to solo and the
    // server quiesces with zero leaked sessions; the shed rate, p99 step
    // latency and recovery-tick count ride along as advisory numbers.
    let chaos_cfg = ChaosBenchConfig::ci();
    eprintln!(
        "chaos: requests={} queue={} seed={:#x} panics={} delays={} cancels={}",
        chaos_cfg.requests,
        chaos_cfg.queue_capacity,
        chaos_cfg.seed,
        chaos_cfg.panics,
        chaos_cfg.delays,
        chaos_cfg.cancels
    );
    let chaos = run_chaos(chaos_cfg);

    // KV-pool section: the paged KV cache under prefix sharing + churn.
    // One request seeds a frozen prompt prefix; the rest adopt its pages
    // copy-on-write while cancelled long-runners recycle pages through the
    // free list. `kv_pool.reuse_exact` (every request served off
    // shared/recycled pages is bit-identical to its solo run, every
    // adopter actually hit the prefix cache, and at least one page was
    // recycled) and `kv_pool.zero_leak` (zero sessions *and* zero pool
    // pages in use after shutdown) are CI hard gates; the hit rate,
    // fragmentation and page counters ride along as advisory numbers.
    let kv_cfg = PrefixChurnConfig::ci();
    eprintln!(
        "kv_pool: requests={} prefix={} suffix={} max_batch={} cancels={}",
        kv_cfg.requests,
        kv_cfg.prefix_tokens,
        kv_cfg.suffix_tokens,
        kv_cfg.max_batch,
        kv_cfg.cancels
    );
    let kv = run_prefix_churn(kv_cfg);

    // Gateway section: the HTTP front-end under mixed load — pinned long
    // SSE streams, a churn wave of short connections, mid-stream hangups.
    // `gateway.stream_exact` and `gateway.zero_leak` are CI hard gates:
    // socket-reassembled tokens stay bit-identical to solo and abandoned
    // streams are cancelled and reaped; the end-to-end p50/p99 latencies
    // and churn throughput ride along as advisory numbers.
    let gw_cfg = GatewayLoadConfig::ci();
    eprintln!(
        "gateway: short={} long={} disconnects={} clients={}",
        gw_cfg.short_connections, gw_cfg.long_streams, gw_cfg.disconnects, gw_cfg.clients
    );
    let gw = run_gateway_load(gw_cfg);

    // Telemetry section: the observability layer measured against itself.
    // `telemetry.trace_exact` (the drained trace reconstructs every
    // request's exact lifecycle) and `telemetry.zero_alloc` (warm trace
    // recording performs zero heap allocations, witnessed by the counting
    // global allocator this binary installs) are CI hard gates; the
    // traced-over-untraced `overhead_ratio` and the per-stage split of the
    // decode tick ride along as advisory numbers. The stage split must
    // explain the tick it decomposes: stage_cover within 10% of 1.0 is
    // asserted below.
    let tl_cfg = TelemetryBenchConfig {
        reps,
        ..TelemetryBenchConfig::ci()
    };
    eprintln!(
        "telemetry: hidden={} layers={} requests={} decode={}",
        tl_cfg.hidden, tl_cfg.layers, tl_cfg.requests, tl_cfg.decode_steps
    );
    let tl = run_telemetry(tl_cfg);

    let macs = (m * k * n) as f64;
    let elems = (m * k) as f64;
    // Quantize+qgemm: the end-to-end hot path the acceptance criterion
    // measures (online activation encode + GEMM; weights are offline).
    let path_grouped = t_enc_grouped + t_gemm_grouped;
    let path_packed_1t = t_enc_packed + t_gemm_packed_1t;
    let path_packed_mt = t_enc_packed + t_gemm_packed_mt;

    let json = format!(
        r#"{{
  "bench": "m2xfp_quantize_qgemm",
  "dims": {{"m": {m}, "k": {k}, "n": {n}}},
  "exact_match": {exact},
  "lint_clean": {lint},
  "quantize_act": {{
    "grouped_s": {t_enc_grouped:.6},
    "packed_s": {t_enc_packed:.6},
    "packed_melem_per_s": {enc_tput:.2},
    "speedup": {enc_speedup:.3}
  }},
  "quantize_weights_grouped_s": {wq_grouped},
  "quantize_weights_packed_s": {t_wq_packed:.6},
  "quantize_weights_speedup": {wq_speedup},
  "weight_search_exact": {wq_exact_str},
  "qgemm": {{
    "grouped_s": {t_gemm_grouped:.6},
    "packed_1thread_s": {t_gemm_packed_1t:.6},
    "packed_threaded_s": {t_gemm_packed_mt:.6},
    "packed_threaded_gmac_per_s": {gemm_tput:.3},
    "speedup_1thread": {g1:.3},
    "speedup_threaded": {gmt:.3}
  }},
  "quantize_plus_qgemm": {{
    "grouped_s": {path_grouped:.6},
    "packed_1thread_s": {path_packed_1t:.6},
    "packed_threaded_s": {path_packed_mt:.6},
    "speedup_1thread": {p1:.3},
    "speedup_threaded": {pmt:.3}
  }},
  "decode_kernel": {{
    "grouped_s": {t_dk_grouped:.6},
    "gemv_s": {t_dk_gemv:.6},
    "inreg_s": {t_dk_inreg:.6},
    "gemv_melem_per_s": {dk_tput:.2},
    "speedup_gemv": {dk_sp:.3},
    "speedup_planed_vs_inreg": {dk_pi:.3},
    "decode_exact": {decode_exact}
  }},
  "e2e_model": {{
    "hidden": {e2e_hidden},
    "layers": {e2e_layers},
    "tokens": {e2e_tokens},
    "quantize_s": {e2e_quant:.6},
    "forward_batch_packed_s": {e2e_fp:.6},
    "forward_batch_grouped_s": {e2e_fg:.6},
    "gmacs": {e2e_gmacs:.4},
    "speedup_packed": {e2e_speedup:.3},
    "backends_exact": {e2e_exact},
    "nrmse": {e2e_nrmse:.6}
  }},
  "serve": {{
    "hidden": {sv_hidden},
    "layers": {sv_layers},
    "requests": {sv_requests},
    "max_batch": {sv_batch},
    "solo_s": {sv_solo:.6},
    "batch_s": {sv_bs:.6},
    "speedup_batch": {sv_speedup:.3},
    "req_per_s": {sv_rps:.3},
    "decode_tok_per_s": {sv_tps:.2},
    "solo_decode_tok_per_s": {sv_stps:.2},
    "batch_exact": {sv_exact},
    "chaos_exact": {ch_exact},
    "zero_leak": {ch_leak},
    "shed_rate": {ch_shed:.3},
    "p99_step_us_churn": {ch_p99:.1},
    "recovery_ticks": {ch_rt}
  }},
  "kv_pool": {{
    "hidden": {kv_hidden},
    "layers": {kv_layers},
    "requests": {kv_requests},
    "prefix_tokens": {kv_pt},
    "max_batch": {kv_mb},
    "reuse_exact": {kv_exact},
    "zero_leak": {kv_leak},
    "prefix_hits": {kv_hits},
    "prefix_misses": {kv_misses},
    "hit_rate": {kv_hr:.3},
    "page_allocs": {kv_pa},
    "page_reuses": {kv_pr},
    "cow_clones": {kv_cc},
    "peak_pages": {kv_pk},
    "fragmentation": {kv_fr:.3}
  }},
  "gateway": {{
    "hidden": {gw_hidden},
    "layers": {gw_layers},
    "long_streams": {gw_long},
    "short_connections": {gw_short},
    "disconnects": {gw_disc},
    "stream_exact": {gw_exact},
    "zero_leak": {gw_leak},
    "e2e_p50_ms": {gw_p50:.3},
    "e2e_p99_ms": {gw_p99:.3},
    "churn_req_per_s": {gw_rps:.1},
    "stream_tok_per_s": {gw_tps:.1}
  }},
  "telemetry": {{
    "hidden": {tl_hidden},
    "layers": {tl_layers},
    "requests": {tl_requests},
    "decode_steps": {tl_decode},
    "trace_exact": {tl_exact},
    "zero_alloc": {tl_zalloc},
    "overhead_ratio": {tl_or:.3},
    "traced_tok_per_s": {tl_tt:.2},
    "untraced_tok_per_s": {tl_ut:.2},
    "trace_events": {tl_ev},
    "assemble_us": {tl_sa:.1},
    "encode_us": {tl_se:.1},
    "qgemm_us": {tl_sq:.1},
    "attention_us": {tl_sat:.1},
    "kv_append_us": {tl_sk:.1},
    "feedback_us": {tl_sf:.1},
    "stage_sum_us": {tl_ss:.1},
    "tick_sum_us": {tl_ts:.1},
    "stage_cover": {tl_sc:.3}
  }}
}}
"#,
        tl_hidden = tl.cfg.hidden,
        tl_layers = tl.cfg.layers,
        tl_requests = tl.cfg.requests,
        tl_decode = tl.cfg.decode_steps,
        tl_exact = tl.trace_exact,
        tl_zalloc = match tl.zero_alloc {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        },
        tl_or = tl.overhead_ratio,
        tl_tt = tl.traced_tok_per_s,
        tl_ut = tl.untraced_tok_per_s,
        tl_ev = tl.trace_events,
        tl_sa = tl.assemble_us,
        tl_se = tl.encode_us,
        tl_sq = tl.qgemm_us,
        tl_sat = tl.attention_us,
        tl_sk = tl.kv_append_us,
        tl_sf = tl.feedback_us,
        tl_ss = tl.stage_sum_us,
        tl_ts = tl.tick_sum_us,
        tl_sc = tl.stage_cover,
        sv_hidden = serve.cfg.hidden,
        sv_layers = serve.cfg.layers,
        sv_requests = serve.cfg.requests,
        sv_batch = serve.cfg.max_batch,
        sv_solo = serve.solo_s,
        sv_bs = serve.batch_s,
        sv_speedup = serve.speedup_batch,
        sv_rps = serve.req_per_s,
        sv_tps = serve.decode_tok_per_s,
        sv_stps = serve.solo_decode_tok_per_s,
        sv_exact = serve.batch_exact,
        ch_exact = chaos.chaos_exact,
        ch_leak = chaos.zero_leak,
        ch_shed = chaos.shed_rate,
        ch_p99 = chaos.p99_step_us,
        ch_rt = chaos.recovery_ticks,
        kv_hidden = kv.cfg.hidden,
        kv_layers = kv.cfg.layers,
        kv_requests = kv.cfg.requests,
        kv_pt = kv.cfg.prefix_tokens,
        kv_mb = kv.cfg.max_batch,
        kv_exact = kv.reuse_exact,
        kv_leak = kv.zero_leak,
        kv_hits = kv.prefix_hits,
        kv_misses = kv.prefix_misses,
        kv_hr = kv.hit_rate,
        kv_pa = kv.page_allocs,
        kv_pr = kv.page_reuses,
        kv_cc = kv.cow_clones,
        kv_pk = kv.peak_pages,
        kv_fr = kv.fragmentation,
        gw_hidden = gw.cfg.hidden,
        gw_layers = gw.cfg.layers,
        gw_long = gw.cfg.long_streams,
        gw_short = gw.cfg.short_connections,
        gw_disc = gw.cfg.disconnects,
        gw_exact = gw.stream_exact,
        gw_leak = gw.zero_leak,
        gw_p50 = gw.e2e_p50_ms,
        gw_p99 = gw.e2e_p99_ms,
        gw_rps = gw.churn_req_per_s,
        gw_tps = gw.stream_tok_per_s,
        e2e_hidden = e2e.cfg.hidden,
        e2e_layers = e2e.cfg.layers,
        e2e_tokens = e2e.cfg.tokens,
        e2e_quant = e2e.quantize_s,
        e2e_fp = e2e.forward_packed_s,
        e2e_fg = e2e.forward_grouped_s,
        e2e_gmacs = e2e.gmacs,
        e2e_speedup = e2e.speedup_packed,
        e2e_exact = e2e.backends_exact,
        e2e_nrmse = e2e.nrmse,
        wq_grouped = if time_reference {
            format!("{t_wq:.6}")
        } else {
            "null".to_string()
        },
        wq_speedup = if time_reference {
            format!("{:.3}", t_wq / t_wq_packed)
        } else {
            "null".to_string()
        },
        wq_exact_str = match wq_exact {
            Some(e) => e.to_string(),
            None => "null".to_string(),
        },
        lint = match lint_clean() {
            Some(clean) => clean.to_string(),
            None => "null".to_string(),
        },
        enc_tput = elems / t_enc_packed / 1e6,
        enc_speedup = t_enc_grouped / t_enc_packed,
        dk_tput = (k * n) as f64 / t_dk_gemv / 1e6,
        dk_sp = t_dk_grouped / t_dk_gemv,
        dk_pi = t_dk_inreg / t_dk_gemv,
        gemm_tput = macs / t_gemm_packed_mt / 1e9,
        g1 = t_gemm_grouped / t_gemm_packed_1t,
        gmt = t_gemm_grouped / t_gemm_packed_mt,
        p1 = path_grouped / path_packed_1t,
        pmt = path_grouped / path_packed_mt,
    );

    print!("{json}");
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_m2xfp.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    assert!(exact, "packed qGEMM diverged from the grouped pipeline");
    assert!(
        decode_exact,
        "a decode kernel (GEMV or in-register) diverged from the f64 reference"
    );
    assert!(
        wq_exact.unwrap_or(true),
        "parallel LUT weight search diverged from the float reference"
    );
    assert!(
        e2e.backends_exact,
        "packed and grouped backends diverged on the whole-model forward"
    );
    assert!(
        serve.batch_exact,
        "a batched request's token stream diverged from its solo run"
    );
    assert!(
        chaos.chaos_exact,
        "a chaos survivor's token stream diverged from its solo run"
    );
    assert!(chaos.zero_leak, "sessions leaked after the chaos run");
    assert!(
        kv.reuse_exact,
        "a request served off shared/recycled KV pages diverged from its solo run"
    );
    assert!(
        kv.zero_leak,
        "KV pages or sessions leaked after the prefix churn run"
    );
    assert!(
        tl.trace_exact,
        "the drained trace failed to reconstruct every request's lifecycle"
    );
    assert_eq!(
        tl.zero_alloc,
        Some(true),
        "warm trace recording allocated {} times (probe installed above)",
        tl.recording_allocs
    );
    assert!(
        (tl.stage_cover - 1.0).abs() <= 0.10,
        "stage clocks cover {:.1}% of measured tick time (want within 10%)",
        tl.stage_cover * 100.0
    );
}
