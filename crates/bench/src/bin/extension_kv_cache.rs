//! Regenerates the §6.4 attention/KV-cache extension study.
fn main() {
    let _ = m2x_bench::extensions::extension_kv_cache();
}
