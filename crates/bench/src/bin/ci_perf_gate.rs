//! CI performance-regression gate over `bench_m2xfp_json` artifacts.
//!
//! Usage: `ci_perf_gate <current.json> <baseline.json>`
//!
//! Compares the freshly measured `results/BENCH_m2xfp.json` against the
//! committed `results/BENCH_ci_baseline.json` (same dims, produced by the
//! same emitter) and exits non-zero when
//!
//! * any exactness flag (`exact_match`, `weight_search_exact`,
//!   `e2e_model.backends_exact`, `serve.batch_exact`, the
//!   fault-tolerance flags `serve.chaos_exact` / `serve.zero_leak`, or
//!   the observability flags `telemetry.trace_exact` /
//!   `telemetry.zero_alloc`) is `false` in the current run, or
//! * any within-run speedup ratio — per-kernel, the whole-model
//!   `e2e_model.speedup_packed` or the serving `serve.speedup_batch`
//!   (batched-over-solo) — dropped by more than the tolerance
//!   (`M2X_GATE_TOLERANCE`, default 0.25 = 25%) relative to the baseline.
//!
//! Absolute wall-times are compared against the baseline too, but a
//! regression there is only a **warning** by default: the committed
//! baseline and the CI runner are different hardware, and sub-millisecond
//! measurements on shared runners vary beyond any useful tolerance. Set
//! `M2X_GATE_ABS_TIMES=1` to harden them (e.g. on a dedicated,
//! baseline-matched runner). The speedup ratios are hardware-normalized
//! (both sides measured in the same process), so they catch real code
//! regressions regardless of runner speed.
//!
//! Metrics absent from the **baseline** are reported but not gated, so
//! new emitter fields can land before the baseline is re-recorded. A
//! hard-gated metric that the baseline has but the current run **lost**
//! (key missing entirely — e.g. an emitter refactor renamed or dropped
//! the section) fails the gate: silently disarming a gate is itself a
//! regression. An explicit `null` (a deliberately skipped measurement,
//! e.g. `M2X_BENCH_WQ_REFERENCE=0`) stays ungated. The parser is a
//! self-contained subset of JSON (objects, numbers, bools, strings,
//! `null`) — the workspace builds offline, with no serde.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Scalar value the gate understands.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Num(f64),
    Bool(bool),
    Null,
}

/// Parses a JSON object into a flat `path.to.key -> Scalar` map. Strings
/// are skipped (no gated metric is a string). Arrays are unsupported —
/// the emitter never writes them.
fn flatten_json(text: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let mut out = BTreeMap::new();
    let mut chars = text.char_indices().peekable();
    let mut path: Vec<String> = Vec::new();
    let mut pending_key: Option<String> = None;
    while let Some((i, c)) = chars.next() {
        match c {
            '{' => {
                if let Some(k) = pending_key.take() {
                    path.push(k);
                }
            }
            '}' => {
                path.pop();
            }
            '"' => {
                let mut s = String::new();
                for (_, c2) in chars.by_ref() {
                    if c2 == '"' {
                        break;
                    }
                    if c2 == '\\' {
                        return Err(format!("escape sequences unsupported (byte {i})"));
                    }
                    s.push(c2);
                }
                // A string followed by ':' is a key; otherwise a value.
                let mut rest = chars.clone();
                let is_key = loop {
                    match rest.peek() {
                        Some((_, w)) if w.is_whitespace() => {
                            rest.next();
                        }
                        Some((_, ':')) => break true,
                        _ => break false,
                    }
                };
                if is_key {
                    pending_key = Some(s);
                } else {
                    pending_key = None; // string value: not gated, drop it
                }
            }
            't' | 'f' | 'n' if pending_key.is_some() => {
                let word: String = std::iter::once(c)
                    .chain(
                        std::iter::from_fn(|| {
                            chars.next_if(|(_, w)| w.is_ascii_alphabetic()).map(|x| x.1)
                        })
                        .fuse(),
                    )
                    .collect();
                let key = pending_key.take().expect("guarded by match arm");
                let v = match word.as_str() {
                    "true" => Scalar::Bool(true),
                    "false" => Scalar::Bool(false),
                    "null" => Scalar::Null,
                    other => return Err(format!("unexpected literal `{other}` at byte {i}")),
                };
                out.insert(join(&path, &key), v);
            }
            c if (c.is_ascii_digit() || c == '-') && pending_key.is_some() => {
                let mut num = String::new();
                num.push(c);
                while let Some((_, d)) = chars.next_if(|(_, d)| {
                    d.is_ascii_digit() || matches!(d, '.' | 'e' | 'E' | '+' | '-')
                }) {
                    num.push(d);
                }
                let key = pending_key.take().expect("guarded by match arm");
                let v: f64 = num
                    .parse()
                    .map_err(|e| format!("bad number `{num}` at byte {i}: {e}"))?;
                out.insert(join(&path, &key), Scalar::Num(v));
            }
            _ => {}
        }
    }
    Ok(out)
}

fn join(path: &[String], key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{}.{key}", path.join("."))
    }
}

/// Wall-time metrics (lower is better). Absolute times assume baseline
/// and current ran on comparable hardware, so by default a regression
/// here only warns (`M2X_GATE_ABS_TIMES=1` hardens it); the
/// hardware-normalized speedup ratios below are the enforcing gates.
const GATED_TIMES: [&str; 9] = [
    "quantize_act.packed_s",
    "qgemm.packed_threaded_s",
    "quantize_plus_qgemm.packed_threaded_s",
    "quantize_weights_packed_s",
    "decode_kernel.gemv_s",
    "e2e_model.quantize_s",
    "e2e_model.forward_batch_packed_s",
    "serve.batch_s",
    "gateway.e2e_p99_ms",
];

/// Throughput metrics (higher is better). Hardware-dependent like the
/// wall-times, so they share the advisory-by-default/`M2X_GATE_ABS_TIMES`
/// treatment; the whole-model `e2e_model.speedup_packed` and serving
/// `serve.speedup_batch` ratios below are the enforcing end-to-end gates.
const GATED_THROUGHPUTS: [&str; 7] = [
    "decode_kernel.gemv_melem_per_s",
    "e2e_model.gmacs",
    "serve.req_per_s",
    "serve.decode_tok_per_s",
    "serve.solo_decode_tok_per_s",
    "gateway.churn_req_per_s",
    // Traced-over-untraced single-stream decode throughput (≈ 1.0): a
    // drop means leaving telemetry on got expensive. Advisory like the
    // other throughputs — both sides run in the same process, but the
    // ratio of two near-equal wall times is noisy on shared runners.
    "telemetry.overhead_ratio",
];

/// Within-run speedup ratios (higher is better). Both sides of each ratio
/// are measured in the same process on the same machine, so these are
/// hardware-normalized: a >tolerance drop is a code regression even if
/// the runner got faster or slower overall.
const GATED_SPEEDUPS: [&str; 6] = [
    "qgemm.speedup_1thread",
    "quantize_plus_qgemm.speedup_1thread",
    "quantize_weights_speedup",
    "decode_kernel.speedup_gemv",
    "e2e_model.speedup_packed",
    "serve.speedup_batch",
];

/// Boolean exactness flags the gate enforces on the current run.
/// `serve.chaos_exact` (chaos survivors bit-identical to solo) and
/// `serve.zero_leak` (zero open sessions after the chaos shutdown) gate
/// the fault-tolerance layer the same way `batch_exact` gates the happy
/// path; `gateway.stream_exact` (socket-reassembled SSE tokens
/// bit-identical to solo) and `gateway.zero_leak` (abandoned streams
/// cancelled and reaped) extend the same invariant through the HTTP
/// front-end; `lint_clean` (the in-repo `m2x-lint` R1–R4 scan found no
/// violations) gates the source-level allocation/panic/unsafe discipline
/// the same run; `telemetry.trace_exact` (the drained trace reconstructs
/// every request's exact lifecycle) and `telemetry.zero_alloc` (warm
/// trace recording performed zero heap allocations under the counting
/// global allocator) gate the observability layer — a trace that lies or
/// a tracer that allocates on the hot path is a correctness loss too;
/// `kv_pool.reuse_exact` (every request served off shared/recycled KV
/// pages bit-identical to its solo run, with real prefix hits and
/// free-list reuse so the check cannot go vacuous) and
/// `kv_pool.zero_leak` (zero sessions and zero pool pages in use after
/// the churn shutdown) gate the paged-KV prefix-sharing layer.
/// A `false` is a correctness loss, never a perf question.
const GATED_EXACT: [&str; 14] = [
    "exact_match",
    "lint_clean",
    "weight_search_exact",
    "decode_kernel.decode_exact",
    "e2e_model.backends_exact",
    "serve.batch_exact",
    "serve.chaos_exact",
    "serve.zero_leak",
    "gateway.stream_exact",
    "gateway.zero_leak",
    "telemetry.trace_exact",
    "telemetry.zero_alloc",
    "kv_pool.reuse_exact",
    "kv_pool.zero_leak",
];

/// One gate verdict: metric name, baseline, current, allowed, pass.
/// `hard` failures fail the gate; soft ones only warn.
struct Verdict {
    metric: String,
    detail: String,
    pass: bool,
    hard: bool,
}

fn evaluate(
    current: &BTreeMap<String, Scalar>,
    baseline: &BTreeMap<String, Scalar>,
    tolerance: f64,
    abs_times_hard: bool,
) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    for flag in GATED_EXACT {
        let (pass, detail) = match current.get(flag) {
            Some(Scalar::Bool(true)) => (true, "true".to_string()),
            Some(Scalar::Bool(false)) => (false, "false".to_string()),
            Some(Scalar::Null) => (true, "null (measurement skipped, not gated)".to_string()),
            None if matches!(baseline.get(flag), Some(Scalar::Bool(_))) => (
                false,
                "missing from current run but gated in baseline".to_string(),
            ),
            None => (true, "absent (not gated)".to_string()),
            Some(other) => (false, format!("non-boolean {other:?}")),
        };
        verdicts.push(Verdict {
            metric: flag.to_string(),
            detail,
            pass,
            hard: true,
        });
    }
    for metric in GATED_TIMES {
        let (pass, detail) = match (current.get(metric), baseline.get(metric)) {
            (Some(Scalar::Num(cur)), Some(Scalar::Num(base))) => {
                let limit = base * (1.0 + tolerance);
                (
                    *cur <= limit,
                    format!("current {cur:.6}s vs baseline {base:.6}s (limit {limit:.6}s)"),
                )
            }
            _ => (
                true,
                "absent in current or baseline (not gated)".to_string(),
            ),
        };
        verdicts.push(Verdict {
            metric: metric.to_string(),
            detail,
            pass,
            hard: abs_times_hard,
        });
    }
    for metric in GATED_THROUGHPUTS {
        let (pass, detail) = match (current.get(metric), baseline.get(metric)) {
            (Some(Scalar::Num(cur)), Some(Scalar::Num(base))) => {
                let floor = base * (1.0 - tolerance);
                (
                    *cur >= floor,
                    format!("current {cur:.3} vs baseline {base:.3} (floor {floor:.3})"),
                )
            }
            _ => (
                true,
                "absent in current or baseline (not gated)".to_string(),
            ),
        };
        verdicts.push(Verdict {
            metric: metric.to_string(),
            detail,
            pass,
            hard: abs_times_hard,
        });
    }
    for metric in GATED_SPEEDUPS {
        let (pass, detail) = match (current.get(metric), baseline.get(metric)) {
            (Some(Scalar::Num(cur)), Some(Scalar::Num(base))) => {
                let floor = base * (1.0 - tolerance);
                (
                    *cur >= floor,
                    format!("current {cur:.3}x vs baseline {base:.3}x (floor {floor:.3}x)"),
                )
            }
            // Losing a ratio the baseline gates (key gone from the emitter)
            // would silently disarm the gate; an explicit null is a
            // deliberately skipped measurement and stays ungated.
            (None, Some(Scalar::Num(_))) => (
                false,
                "missing from current run but gated in baseline".to_string(),
            ),
            _ => (
                true,
                "absent or null in current or baseline (not gated)".to_string(),
            ),
        };
        verdicts.push(Verdict {
            metric: metric.to_string(),
            detail,
            pass,
            hard: true,
        });
    }
    // Dims must match or the time comparison is meaningless. The core
    // emitter dims are required; the e2e-section dims gate the e2e metrics
    // and are only compared when either side carries them (pre-e2e
    // baselines stay usable).
    let required = ["dims.m", "dims.k", "dims.n"];
    let optional = [
        "e2e_model.hidden",
        "e2e_model.layers",
        "e2e_model.tokens",
        "serve.hidden",
        "serve.layers",
        "serve.requests",
        "serve.max_batch",
        "gateway.hidden",
        "gateway.layers",
        "gateway.long_streams",
        "gateway.short_connections",
        "gateway.disconnects",
        "telemetry.hidden",
        "telemetry.layers",
        "telemetry.requests",
        "telemetry.decode_steps",
        "kv_pool.hidden",
        "kv_pool.layers",
        "kv_pool.requests",
        "kv_pool.prefix_tokens",
        "kv_pool.max_batch",
    ];
    for d in required.iter().chain(&optional) {
        let (pass, detail) = match (current.get(*d), baseline.get(*d)) {
            (Some(Scalar::Num(a)), Some(Scalar::Num(b))) => {
                (a == b, format!("current {a} vs baseline {b}"))
            }
            (None, None) if optional.contains(d) => {
                (true, "absent in both (not gated)".to_string())
            }
            _ => (false, "missing dimension field".to_string()),
        };
        verdicts.push(Verdict {
            metric: d.to_string(),
            detail,
            pass,
            hard: true,
        });
    }
    verdicts
}

fn env_tolerance() -> f64 {
    std::env::var("M2X_GATE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: ci_perf_gate <current.json> <baseline.json>");
        return ExitCode::from(2);
    }
    let read = |p: &str| -> Result<BTreeMap<String, Scalar>, String> {
        flatten_json(&std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?)
    };
    let (current, baseline) = match (read(&args[1]), read(&args[2])) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("ci_perf_gate: {e}");
            return ExitCode::from(2);
        }
    };
    let tolerance = env_tolerance();
    let abs_times_hard = std::env::var("M2X_GATE_ABS_TIMES").as_deref() == Ok("1");
    println!(
        "ci_perf_gate: tolerance {:.0}%, absolute times {}",
        tolerance * 100.0,
        if abs_times_hard { "gated" } else { "advisory" }
    );
    let verdicts = evaluate(&current, &baseline, tolerance, abs_times_hard);
    let mut ok = true;
    for v in &verdicts {
        let tag = match (v.pass, v.hard) {
            (true, _) => "ok",
            (false, true) => "FAIL",
            (false, false) => "warn",
        };
        println!("  [{tag}] {:42} {}", v.metric, v.detail);
        ok &= v.pass || !v.hard;
    }
    if ok {
        println!("ci_perf_gate: PASS");
        ExitCode::SUCCESS
    } else {
        println!("ci_perf_gate: FAIL (regression beyond tolerance or exactness lost)");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "m2xfp_quantize_qgemm",
  "dims": {"m": 32, "k": 256, "n": 256},
  "exact_match": true,
  "quantize_act": {"grouped_s": 0.001, "packed_s": 0.0009, "speedup": 1.1},
  "quantize_weights_grouped_s": null,
  "quantize_weights_packed_s": 0.0061,
  "quantize_weights_speedup": 14.2,
  "weight_search_exact": true,
  "qgemm": {"packed_threaded_s": 0.002, "speedup_1thread": 5.3},
  "quantize_plus_qgemm": {"packed_threaded_s": 0.003, "speedup_1thread": 3.2},
  "decode_kernel": {"gemv_s": 0.0001, "gemv_melem_per_s": 650.0, "speedup_gemv": 6.0, "speedup_planed_vs_inreg": 1.8, "decode_exact": true},
  "e2e_model": {"hidden": 128, "layers": 2, "tokens": 16, "gmacs": 2.1, "speedup_packed": 3.0, "backends_exact": true, "nrmse": 0.05},
  "serve": {"hidden": 128, "layers": 2, "requests": 6, "max_batch": 6, "batch_s": 0.05, "speedup_batch": 1.3, "req_per_s": 120.0, "decode_tok_per_s": 960.0, "solo_decode_tok_per_s": 740.0, "batch_exact": true, "chaos_exact": true, "zero_leak": true, "shed_rate": 0.5, "p99_step_us_churn": 900.0, "recovery_ticks": 2},
  "kv_pool": {"hidden": 128, "layers": 2, "requests": 8, "prefix_tokens": 32, "max_batch": 4, "reuse_exact": true, "zero_leak": true, "prefix_hits": 7, "prefix_misses": 3, "hit_rate": 0.4, "page_allocs": 12, "page_reuses": 8, "cow_clones": 0, "peak_pages": 9, "fragmentation": 0.2},
  "gateway": {"hidden": 128, "layers": 2, "long_streams": 2, "short_connections": 200, "disconnects": 3, "stream_exact": true, "zero_leak": true, "e2e_p50_ms": 1.5, "e2e_p99_ms": 4.0, "churn_req_per_s": 800.0, "stream_tok_per_s": 400.0},
  "telemetry": {"hidden": 256, "layers": 2, "requests": 4, "decode_steps": 12, "trace_exact": true, "zero_alloc": true, "overhead_ratio": 0.99, "traced_tok_per_s": 780.0, "untraced_tok_per_s": 790.0, "stage_cover": 0.98}
}"#;

    #[test]
    fn flatten_handles_nesting_null_and_bools() {
        let m = flatten_json(SAMPLE).unwrap();
        assert_eq!(m.get("dims.k"), Some(&Scalar::Num(256.0)));
        assert_eq!(m.get("quantize_act.packed_s"), Some(&Scalar::Num(0.0009)));
        assert_eq!(m.get("exact_match"), Some(&Scalar::Bool(true)));
        assert_eq!(m.get("quantize_weights_grouped_s"), Some(&Scalar::Null));
        // The string value is skipped, not misread as a key.
        assert!(!m.contains_key("bench"));
        assert_eq!(m.get("qgemm.packed_threaded_s"), Some(&Scalar::Num(0.002)));
    }

    /// Metrics whose failed verdicts are hard (fail the gate).
    fn hard_fails(cur: &BTreeMap<String, Scalar>, base: &BTreeMap<String, Scalar>) -> Vec<String> {
        evaluate(cur, base, 0.25, false)
            .into_iter()
            .filter(|v| !v.pass && v.hard)
            .map(|v| v.metric)
            .collect()
    }

    #[test]
    fn gate_passes_identical_runs() {
        let m = flatten_json(SAMPLE).unwrap();
        assert!(evaluate(&m, &m, 0.25, false).iter().all(|v| v.pass));
    }

    #[test]
    fn abs_time_regression_warns_by_default_and_gates_when_hardened() {
        let base = flatten_json(SAMPLE).unwrap();
        let slower = SAMPLE.replace("\"packed_s\": 0.0009", "\"packed_s\": 0.00111");
        let cur = flatten_json(&slower).unwrap();
        // 0.00111 / 0.0009 = 1.233… — inside 25%, outside 20%.
        assert!(evaluate(&cur, &base, 0.25, true).iter().all(|v| v.pass));
        let v = evaluate(&cur, &base, 0.20, false);
        let t = v.iter().find(|v| v.metric == "quantize_act.packed_s");
        // Advisory by default: a failed time verdict is soft.
        assert!(t.is_some_and(|v| !v.pass && !v.hard));
        let v = evaluate(&cur, &base, 0.20, true);
        let t = v.iter().find(|v| v.metric == "quantize_act.packed_s");
        assert!(t.is_some_and(|v| !v.pass && v.hard));
    }

    #[test]
    fn speedup_ratios_gate_in_the_opposite_direction() {
        let base = flatten_json(SAMPLE).unwrap();
        // A 30% speedup drop fails at 25% tolerance; a 20% drop passes.
        let dropped = SAMPLE.replace("\"speedup_1thread\": 5.3", "\"speedup_1thread\": 3.7");
        let cur = flatten_json(&dropped).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["qgemm.speedup_1thread"]);
        let mild = SAMPLE.replace("\"speedup_1thread\": 5.3", "\"speedup_1thread\": 4.3");
        let cur = flatten_json(&mild).unwrap();
        assert!(evaluate(&cur, &base, 0.25, false).iter().all(|v| v.pass));
    }

    #[test]
    fn decode_kernel_section_gates_exactness_and_gemv_ratio() {
        let base = flatten_json(SAMPLE).unwrap();
        // Lost decode-kernel bit-identity fails hard.
        let broken = SAMPLE.replace("\"decode_exact\": true", "\"decode_exact\": false");
        let cur = flatten_json(&broken).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["decode_kernel.decode_exact"]);
        // A >25% drop of the GEMV-over-grouped ratio fails hard (both
        // sides measured in the same process: hardware-normalized).
        let dropped = SAMPLE.replace("\"speedup_gemv\": 6.0", "\"speedup_gemv\": 4.0");
        let cur = flatten_json(&dropped).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["decode_kernel.speedup_gemv"]);
        // GEMV wall-time and throughput regressions warn by default.
        let slower = SAMPLE.replace("\"gemv_s\": 0.0001", "\"gemv_s\": 0.0002");
        let cur = flatten_json(&slower).unwrap();
        let v = evaluate(&cur, &base, 0.25, false);
        let t = v
            .iter()
            .find(|v| v.metric == "decode_kernel.gemv_s")
            .unwrap();
        assert!(!t.pass && !t.hard);
        let slower = SAMPLE.replace("\"gemv_melem_per_s\": 650.0", "\"gemv_melem_per_s\": 300.0");
        let cur = flatten_json(&slower).unwrap();
        let v = evaluate(&cur, &base, 0.25, false);
        let t = v
            .iter()
            .find(|v| v.metric == "decode_kernel.gemv_melem_per_s")
            .unwrap();
        assert!(!t.pass && !t.hard);
    }

    #[test]
    fn gate_fails_on_lost_exactness() {
        let base = flatten_json(SAMPLE).unwrap();
        let broken = SAMPLE.replace("\"exact_match\": true", "\"exact_match\": false");
        let cur = flatten_json(&broken).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["exact_match"]);
        let broken = SAMPLE.replace("\"backends_exact\": true", "\"backends_exact\": false");
        let cur = flatten_json(&broken).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["e2e_model.backends_exact"]);
    }

    #[test]
    fn whole_model_ratio_is_hard_gated_and_gmacs_advisory() {
        let base = flatten_json(SAMPLE).unwrap();
        // 3.0 → 2.0 is a 33% drop: beyond the 25% floor.
        let dropped = SAMPLE.replace("\"speedup_packed\": 3.0", "\"speedup_packed\": 2.0");
        let cur = flatten_json(&dropped).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["e2e_model.speedup_packed"]);
        // Throughput regressions warn by default and harden with abs times.
        let slower = SAMPLE.replace("\"gmacs\": 2.1", "\"gmacs\": 1.0");
        let cur = flatten_json(&slower).unwrap();
        let v = evaluate(&cur, &base, 0.25, false);
        let g = v.iter().find(|v| v.metric == "e2e_model.gmacs").unwrap();
        assert!(!g.pass && !g.hard);
        let v = evaluate(&cur, &base, 0.25, true);
        let g = v.iter().find(|v| v.metric == "e2e_model.gmacs").unwrap();
        assert!(!g.pass && g.hard);
    }

    #[test]
    fn serve_section_gates_exactness_and_batching_ratio() {
        let base = flatten_json(SAMPLE).unwrap();
        // Lost per-request bit-identity fails hard.
        let broken = SAMPLE.replace("\"batch_exact\": true", "\"batch_exact\": false");
        let cur = flatten_json(&broken).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["serve.batch_exact"]);
        // A >25% drop of the batched-over-solo ratio fails hard (it is
        // hardware-normalized: both sides measured in the same process).
        let dropped = SAMPLE.replace("\"speedup_batch\": 1.3", "\"speedup_batch\": 0.9");
        let cur = flatten_json(&dropped).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["serve.speedup_batch"]);
        // Serving wall-time/throughput regressions warn by default.
        let slower = SAMPLE.replace("\"decode_tok_per_s\": 960.0", "\"decode_tok_per_s\": 400.0");
        let cur = flatten_json(&slower).unwrap();
        let v = evaluate(&cur, &base, 0.25, false);
        let t = v
            .iter()
            .find(|v| v.metric == "serve.decode_tok_per_s")
            .unwrap();
        assert!(!t.pass && !t.hard);
        // Serve dims gate like the e2e dims: a silent config bump fails.
        let other = SAMPLE.replace("\"max_batch\": 6", "\"max_batch\": 8");
        let cur = flatten_json(&other).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["serve.max_batch"]);
    }

    #[test]
    fn chaos_flags_gate_like_exactness() {
        let base = flatten_json(SAMPLE).unwrap();
        // A survivor drifting from its solo bits under fault injection is
        // a hard correctness failure.
        let broken = SAMPLE.replace("\"chaos_exact\": true", "\"chaos_exact\": false");
        let cur = flatten_json(&broken).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["serve.chaos_exact"]);
        // A leaked session after the chaos shutdown fails hard too (the
        // replace flips the gateway and kv_pool sections' like-named
        // flags as well).
        let leaky = SAMPLE.replace("\"zero_leak\": true", "\"zero_leak\": false");
        let cur = flatten_json(&leaky).unwrap();
        assert_eq!(
            hard_fails(&cur, &base),
            ["serve.zero_leak", "gateway.zero_leak", "kv_pool.zero_leak"]
        );
        // Dropping the flags from the emitter (silent disarm) fails hard;
        // the advisory chaos numbers (shed rate, p99, recovery ticks) can
        // go missing without gating.
        let dropped = SAMPLE.replace("\"chaos_exact\": true, \"zero_leak\": true, ", "");
        assert_ne!(dropped, SAMPLE, "fixture edit must take effect");
        let cur = flatten_json(&dropped).unwrap();
        assert_eq!(
            hard_fails(&cur, &base),
            ["serve.chaos_exact", "serve.zero_leak"]
        );
        let trimmed = SAMPLE.replace(
            ", \"shed_rate\": 0.5, \"p99_step_us_churn\": 900.0, \"recovery_ticks\": 2",
            "",
        );
        assert_ne!(trimmed, SAMPLE, "fixture edit must take effect");
        let cur = flatten_json(&trimmed).unwrap();
        assert!(hard_fails(&cur, &base).is_empty());
    }

    #[test]
    fn gateway_flags_gate_like_exactness() {
        let base = flatten_json(SAMPLE).unwrap();
        // A socket-reassembled token drifting from its solo bits is a
        // hard correctness failure — the bit-identity invariant must
        // survive HTTP framing and the decimal float round-trip.
        let broken = SAMPLE.replace("\"stream_exact\": true", "\"stream_exact\": false");
        let cur = flatten_json(&broken).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["gateway.stream_exact"]);
        // Dropping both flags from the emitter (silent disarm) fails hard.
        let dropped = SAMPLE.replace("\"stream_exact\": true, \"zero_leak\": true, ", "");
        assert_ne!(dropped, SAMPLE, "fixture edit must take effect");
        let cur = flatten_json(&dropped).unwrap();
        assert_eq!(
            hard_fails(&cur, &base),
            ["gateway.stream_exact", "gateway.zero_leak"]
        );
        // The end-to-end latency and churn throughput are advisory by
        // default: hardware-dependent absolute numbers.
        let slower = SAMPLE.replace("\"e2e_p99_ms\": 4.0", "\"e2e_p99_ms\": 9.0");
        let cur = flatten_json(&slower).unwrap();
        let v = evaluate(&cur, &base, 0.25, false);
        let t = v.iter().find(|v| v.metric == "gateway.e2e_p99_ms").unwrap();
        assert!(!t.pass && !t.hard);
        let slower = SAMPLE.replace("\"churn_req_per_s\": 800.0", "\"churn_req_per_s\": 300.0");
        let cur = flatten_json(&slower).unwrap();
        let v = evaluate(&cur, &base, 0.25, false);
        let t = v
            .iter()
            .find(|v| v.metric == "gateway.churn_req_per_s")
            .unwrap();
        assert!(!t.pass && !t.hard);
        // A silent traffic-shape change fails like any other dim bump.
        let other = SAMPLE.replace("\"short_connections\": 200", "\"short_connections\": 40");
        let cur = flatten_json(&other).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["gateway.short_connections"]);
    }

    #[test]
    fn kv_pool_flags_gate_like_exactness() {
        let base = flatten_json(SAMPLE).unwrap();
        // A request served off shared or recycled KV pages drifting from
        // its solo bits is a hard correctness failure — prefix sharing
        // must leave no trace in the token stream.
        let broken = SAMPLE.replace("\"reuse_exact\": true", "\"reuse_exact\": false");
        let cur = flatten_json(&broken).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["kv_pool.reuse_exact"]);
        // Dropping both flags from the emitter (silent disarm) fails hard;
        // the advisory pool counters can go missing without gating.
        let dropped = SAMPLE.replace("\"reuse_exact\": true, \"zero_leak\": true, ", "");
        assert_ne!(dropped, SAMPLE, "fixture edit must take effect");
        let cur = flatten_json(&dropped).unwrap();
        assert_eq!(
            hard_fails(&cur, &base),
            ["kv_pool.reuse_exact", "kv_pool.zero_leak"]
        );
        let trimmed = SAMPLE.replace(
            ", \"hit_rate\": 0.4, \"page_allocs\": 12, \"page_reuses\": 8, \"cow_clones\": 0, \"peak_pages\": 9, \"fragmentation\": 0.2",
            "",
        );
        assert_ne!(trimmed, SAMPLE, "fixture edit must take effect");
        let cur = flatten_json(&trimmed).unwrap();
        assert!(hard_fails(&cur, &base).is_empty());
        // A silent churn-shape change fails like any other dim bump.
        let other = SAMPLE.replace("\"prefix_tokens\": 32", "\"prefix_tokens\": 64");
        let cur = flatten_json(&other).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["kv_pool.prefix_tokens"]);
    }

    #[test]
    fn telemetry_flags_gate_like_exactness() {
        let base = flatten_json(SAMPLE).unwrap();
        // A trace that no longer reconstructs every lifecycle is a hard
        // correctness failure, as is a tracer that allocates when warm.
        let broken = SAMPLE.replace("\"trace_exact\": true", "\"trace_exact\": false");
        let cur = flatten_json(&broken).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["telemetry.trace_exact"]);
        let alloc = SAMPLE.replace("\"zero_alloc\": true", "\"zero_alloc\": false");
        let cur = flatten_json(&alloc).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["telemetry.zero_alloc"]);
        // A run without the counting allocator installed reports null —
        // a skipped measurement, not a failed one.
        let skipped = SAMPLE.replace("\"zero_alloc\": true", "\"zero_alloc\": null");
        let cur = flatten_json(&skipped).unwrap();
        assert!(hard_fails(&cur, &base).is_empty());
        // Dropping both flags from the emitter (silent disarm) fails hard.
        let dropped = SAMPLE.replace("\"trace_exact\": true, \"zero_alloc\": true, ", "");
        assert_ne!(dropped, SAMPLE, "fixture edit must take effect");
        let cur = flatten_json(&dropped).unwrap();
        assert_eq!(
            hard_fails(&cur, &base),
            ["telemetry.trace_exact", "telemetry.zero_alloc"]
        );
        // The tracing-overhead ratio is advisory by default: a ratio of
        // two near-equal wall times is noisy on shared runners.
        let slower = SAMPLE.replace("\"overhead_ratio\": 0.99", "\"overhead_ratio\": 0.5");
        let cur = flatten_json(&slower).unwrap();
        let v = evaluate(&cur, &base, 0.25, false);
        let t = v
            .iter()
            .find(|v| v.metric == "telemetry.overhead_ratio")
            .unwrap();
        assert!(!t.pass && !t.hard);
        // A silent telemetry-config bump fails like any other dim bump.
        let other = SAMPLE.replace("\"decode_steps\": 12", "\"decode_steps\": 24");
        let cur = flatten_json(&other).unwrap();
        assert_eq!(hard_fails(&cur, &base), ["telemetry.decode_steps"]);
    }

    #[test]
    fn gate_fails_on_dim_mismatch() {
        let base = flatten_json(SAMPLE).unwrap();
        let other = SAMPLE.replace("\"k\": 256", "\"k\": 512");
        let cur = flatten_json(&other).unwrap();
        assert!(!hard_fails(&cur, &base).is_empty());
        // The e2e/serve/gateway/kv_pool sections' dims gate too: a silent
        // ::ci() bump must not be compared against the stale baseline.
        // (`replace` rewrites all four sections' `hidden`.)
        let other = SAMPLE.replace("\"hidden\": 128", "\"hidden\": 256");
        let cur = flatten_json(&other).unwrap();
        assert_eq!(
            hard_fails(&cur, &base),
            [
                "e2e_model.hidden",
                "serve.hidden",
                "gateway.hidden",
                "kv_pool.hidden"
            ]
        );
        // But a pre-e2e baseline (no section at all on either side) is
        // fine; only compare what exists.
        let trimmed = SAMPLE.replace("\"hidden\": 128, \"layers\": 2, \"tokens\": 16, ", "");
        let both = flatten_json(&trimmed).unwrap();
        assert!(hard_fails(&both, &both).is_empty());
    }

    #[test]
    fn absent_metrics_are_reported_not_gated() {
        let base = flatten_json(SAMPLE).unwrap();
        let trimmed = SAMPLE.replace("\"quantize_weights_packed_s\": 0.0061,", "");
        let cur = flatten_json(&trimmed).unwrap();
        let v = evaluate(&cur, &base, 0.25, true);
        let wq = v
            .iter()
            .find(|v| v.metric == "quantize_weights_packed_s")
            .unwrap();
        assert!(wq.pass && wq.detail.contains("not gated"));
    }

    #[test]
    fn losing_a_hard_gated_key_fails_but_explicit_null_does_not() {
        let base = flatten_json(SAMPLE).unwrap();
        // Emitter refactor drops the whole-model ratio and exactness flag:
        // the gate must notice the disarm, not silently pass.
        let dropped = SAMPLE.replace("\"speedup_packed\": 3.0, \"backends_exact\": true, ", "");
        let cur = flatten_json(&dropped).unwrap();
        assert_ne!(dropped, SAMPLE, "fixture edit must take effect");
        let fails = hard_fails(&cur, &base);
        assert!(
            fails.contains(&"e2e_model.speedup_packed".to_string()),
            "{fails:?}"
        );
        assert!(
            fails.contains(&"e2e_model.backends_exact".to_string()),
            "{fails:?}"
        );
        // A deliberately skipped measurement (explicit null, e.g.
        // M2X_BENCH_WQ_REFERENCE=0) stays ungated even when the baseline
        // gates it.
        let skipped = SAMPLE
            .replace(
                "\"quantize_weights_speedup\": 14.2",
                "\"quantize_weights_speedup\": null",
            )
            .replace(
                "\"weight_search_exact\": true",
                "\"weight_search_exact\": null",
            );
        let cur = flatten_json(&skipped).unwrap();
        assert!(hard_fails(&cur, &base).is_empty());
        // New fields absent from the baseline never gate (forward compat).
        let future = SAMPLE.replace("\"gmacs\": 2.1", "\"gmacs\": 2.1, \"new_ratio\": 1.0");
        let cur = flatten_json(&future).unwrap();
        assert!(hard_fails(&cur, &base).is_empty());
    }
}
