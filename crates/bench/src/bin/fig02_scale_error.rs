//! Regenerates Fig. 2 of the paper. Run with `--release`.
fn main() {
    let _ = m2x_bench::experiments::fig02_scale_error();
}
