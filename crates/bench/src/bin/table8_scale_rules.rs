//! Regenerates Tbl. 8 of the paper. Run with `--release`.
fn main() {
    let ev = m2x_bench::eval::Evaluator::new();
    let _ = m2x_bench::experiments::table8_scale_rules(&ev);
}
