//! Regenerates the subgroup-size ablation (DESIGN.md §5.3).
fn main() {
    let ev = m2x_bench::eval::Evaluator::new();
    let _ = m2x_bench::extensions::ablate_subgroup(&ev);
}
