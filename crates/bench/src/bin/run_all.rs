//! Regenerates every table and figure of the paper into `results/`.
//! Run with `--release`; takes a few minutes.
use m2x_bench::experiments as e;

fn main() {
    let ev = m2x_bench::eval::Evaluator::new();
    let _ = e::fig02_scale_error();
    let _ = e::fig03_max_preservation(&ev);
    let _ = e::fig04_granularity(&ev);
    let _ = e::fig06_dse_fixed();
    let _ = e::fig07_dse_adaptive();
    let _ = e::table2_zero_shot(&ev);
    let _ = e::table3_perplexity(&ev);
    let _ = e::table4_reasoning(&ev);
    let _ = e::table5_area_power();
    let _ = e::table6_m2nvfp4(&ev);
    let _ = e::table7_algorithms(&ev);
    let _ = e::table8_scale_rules(&ev);
    let _ = e::fig13_perf_energy();
    let _ = e::headline_claims(&ev);
    let _ = e::ablate_clamp(&ev);
    let _ = e::ablate_adaptive(&ev);
    let _ = m2x_bench::extensions::extension_kv_cache();
    let _ = m2x_bench::extensions::ablate_subgroup(&ev);
    println!("\nAll experiment reports written to results/.");
}
