//! Regenerates Tbl. 5 of the paper. Run with `--release`.
fn main() {
    let _ = m2x_bench::experiments::table5_area_power();
}
