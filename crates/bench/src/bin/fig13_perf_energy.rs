//! Regenerates Fig. 13 of the paper. Run with `--release`.
fn main() {
    let _ = m2x_bench::experiments::fig13_perf_energy();
}
