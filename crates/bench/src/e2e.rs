//! Whole-model end-to-end measurement harness — the §6 setting behind the
//! `e2e_model` driver binary and the `e2e_model` section of
//! `bench_m2xfp_json`.
//!
//! Builds a scaled synthetic LLaMA3-8B stack through
//! [`m2x_nn::model::ModelBuilder`], times offline quantization, batched
//! forward throughput on the packed and grouped backends (verifying bit
//! equality), the prefill→decode serving loop, and measures per-layer +
//! whole-model NRMSE against the f32 reference path. The JSON it renders is
//! array-free so `ci_perf_gate`'s flattener can gate every field.

use m2x_nn::model::{ModelBuilder, QuantizedModel};
use m2x_nn::profile::ModelProfile;
use m2x_nn::synth::activation_matrix;
use m2x_tensor::stats::nmse;
use m2x_tensor::Matrix;
use m2xfp::backend::BackendKind;
use std::hint::black_box;
use std::time::Instant;

/// Dimensions and measurement knobs of one end-to-end run.
#[derive(Debug, Clone, Copy)]
pub struct E2eConfig {
    /// Hidden (residual stream) dimension.
    pub hidden: usize,
    /// Transformer layer count.
    pub layers: usize,
    /// Prefill batch size in tokens.
    pub tokens: usize,
    /// Decode steps timed after a half-batch prefill.
    pub decode_steps: usize,
    /// Measurement repetitions (best-of is reported).
    pub reps: usize,
}

impl E2eConfig {
    /// The fixed small configuration embedded in `bench_m2xfp_json` (and
    /// gated by CI): big enough to exercise every engine layer, small
    /// enough for a shared runner.
    pub fn ci() -> Self {
        E2eConfig {
            hidden: 128,
            layers: 2,
            tokens: 16,
            decode_steps: 4,
            reps: 3,
        }
    }
}

/// Measured results of one end-to-end run.
#[derive(Debug, Clone)]
pub struct E2eReport {
    /// Configuration measured.
    pub cfg: E2eConfig,
    /// Attention heads / KV heads / MLP width of the scaled model.
    pub heads: usize,
    /// KV heads.
    pub kv_heads: usize,
    /// MLP intermediate width.
    pub intermediate: usize,
    /// Packed weight footprint (bytes).
    pub weight_bytes: usize,
    /// Offline build: synthesize + Sg-EM quantize + backend prepare, all
    /// layers (seconds).
    pub quantize_s: f64,
    /// Best-of-reps batched forward on the packed backend (seconds).
    pub forward_packed_s: f64,
    /// Best-of-reps batched forward on the grouped backend (seconds).
    pub forward_grouped_s: f64,
    /// Whole-model throughput of the packed batched forward (GMAC/s).
    pub gmacs: f64,
    /// Hardware-normalized whole-model ratio grouped/packed.
    pub speedup_packed: f64,
    /// Packed and grouped backends produced bit-identical batch outputs.
    pub backends_exact: bool,
    /// Decode throughput after a half-batch prefill (tokens/s).
    pub decode_tokens_per_s: f64,
    /// Whole-model output NRMSE vs the f32 reference.
    pub nrmse: f64,
    /// Per-layer residual-stream NMSE vs the f32 reference (quantized
    /// trace vs reference trace, cumulative through the stack).
    pub per_layer_nmse: Vec<f64>,
}

fn time_best<O>(reps: usize, mut f: impl FnMut() -> O) -> (f64, O) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        out = Some(black_box(f()));
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out.expect("reps >= 1"))
}

/// Token embeddings for the run: profile-calibrated activations squashed
/// into an embedding-like range so deep stacks stay well-conditioned.
pub fn token_embeddings(profile: &ModelProfile, tokens: usize, hidden: usize) -> Matrix {
    activation_matrix(profile, 0, tokens, hidden).map(|v| (v * 0.25).tanh())
}

fn build(profile: &ModelProfile, cfg: &E2eConfig, backend: BackendKind) -> QuantizedModel {
    ModelBuilder::scaled(profile, cfg.hidden, cfg.layers)
        .backend(backend)
        .keep_reference(backend == BackendKind::Packed)
        .build()
        .expect("scaled dimensions are group-aligned")
}

/// Runs the full measurement. Deterministic given the configuration.
pub fn run(cfg: E2eConfig) -> E2eReport {
    let profile = ModelProfile::llama3_8b();
    let x = token_embeddings(&profile, cfg.tokens, cfg.hidden);

    let (quantize_s, mut model) =
        time_best(cfg.reps, || build(&profile, &cfg, BackendKind::Packed));
    let (forward_packed_s, y_packed) =
        time_best(cfg.reps, || model.forward_batch(&x).expect("aligned"));

    let mut grouped = build(&profile, &cfg, BackendKind::Grouped);
    let (forward_grouped_s, y_grouped) =
        time_best(cfg.reps, || grouped.forward_batch(&x).expect("aligned"));
    let backends_exact = y_packed
        .as_slice()
        .iter()
        .zip(y_grouped.as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits());

    // Serving loop: prefill half the batch, then single-token decodes on
    // the decode-on-append KV path (each step grows the prepared K plane
    // and cached V rows incrementally — O(1) per head per step).
    let prefill_rows = (cfg.tokens / 2).max(1);
    let decode_s = {
        model.reset();
        let head = Matrix::from_fn(prefill_rows, cfg.hidden, |r, c| x[(r, c)]);
        model.prefill(&head).expect("aligned");
        let xt = Matrix::from_fn(1, cfg.hidden, |_, c| x[(prefill_rows.min(x.rows() - 1), c)]);
        let t0 = Instant::now();
        for _ in 0..cfg.decode_steps {
            black_box(model.decode(&xt).expect("aligned"));
        }
        t0.elapsed().as_secs_f64()
    };

    // Accuracy: quantized vs f32 reference, per layer and end to end.
    let (y_q, trace_q) = {
        model.reset();
        model.forward_batch_traced(&x).expect("aligned")
    };
    let (y_ref, trace_ref) = model.reference_traced(&x).expect("reference kept");
    let per_layer_nmse: Vec<f64> = trace_q
        .iter()
        .zip(&trace_ref)
        .map(|(a, b)| nmse(b.as_slice(), a.as_slice()))
        .collect();
    let nrmse = nmse(y_ref.as_slice(), y_q.as_slice()).sqrt();

    let macs = model.forward_macs(cfg.tokens, 0) as f64;
    E2eReport {
        cfg,
        heads: model.heads(),
        kv_heads: model.kv_heads(),
        intermediate: model.intermediate(),
        weight_bytes: model.weight_bytes(),
        quantize_s,
        forward_packed_s,
        forward_grouped_s,
        gmacs: macs / forward_packed_s / 1e9,
        speedup_packed: forward_grouped_s / forward_packed_s,
        backends_exact,
        decode_tokens_per_s: cfg.decode_steps as f64 / decode_s,
        nrmse,
        per_layer_nmse,
    }
}

impl E2eReport {
    /// Renders the report as a JSON object (no arrays — `ci_perf_gate`'s
    /// flattener reads every numeric/bool field). Per-layer errors become
    /// `per_layer.layer_<i>` keys.
    pub fn to_json(&self) -> String {
        let per_layer = self
            .per_layer_nmse
            .iter()
            .enumerate()
            .map(|(i, e)| format!("    \"layer_{i}\": {e:.8}"))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            r#"{{
  "bench": "e2e_model",
  "model": "LLaMA3-8B-scaled",
  "dims": {{"hidden": {h}, "layers": {l}, "tokens": {t}, "heads": {heads}, "kv_heads": {kvh}}},
  "weight_bytes": {wb},
  "quantize_s": {qs:.6},
  "forward_batch_packed_s": {fp:.6},
  "forward_batch_grouped_s": {fg:.6},
  "gmacs": {gm:.4},
  "speedup_packed": {sp:.3},
  "backends_exact": {ex},
  "decode_tokens_per_s": {dt:.2},
  "nrmse": {nr:.6},
  "per_layer": {{
{per_layer}
  }}
}}"#,
            h = self.cfg.hidden,
            l = self.cfg.layers,
            t = self.cfg.tokens,
            heads = self.heads,
            kvh = self.kv_heads,
            wb = self.weight_bytes,
            qs = self.quantize_s,
            fp = self.forward_packed_s,
            fg = self.forward_grouped_s,
            gm = self.gmacs,
            sp = self.speedup_packed,
            ex = self.backends_exact,
            dt = self.decode_tokens_per_s,
            nr = self.nrmse,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_run_is_exact_and_accurate() {
        let mut cfg = E2eConfig::ci();
        cfg.hidden = 64;
        cfg.tokens = 6;
        cfg.reps = 1;
        cfg.decode_steps = 2;
        let r = run(cfg);
        assert!(r.backends_exact, "packed and grouped diverged");
        assert!(r.nrmse > 0.0 && r.nrmse < 0.3, "nrmse {}", r.nrmse);
        assert_eq!(r.per_layer_nmse.len(), cfg.layers);
        assert!(r.gmacs > 0.0 && r.speedup_packed > 0.0);
        let json = r.to_json();
        assert!(json.contains("\"backends_exact\": true"));
        assert!(json.contains("\"layer_1\""));
    }
}
