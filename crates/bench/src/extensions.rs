//! Extension experiments beyond the paper's main tables: the §6.4
//! attention/KV-cache study and the subgroup-size ablation DESIGN.md calls
//! out.

use crate::eval::Evaluator;
use crate::report::{f2, f3, f4, Report, Table};
use m2x_baselines::MxQuantizer;
use m2x_nn::attention::{evaluate_attention, synth_head};
use m2x_nn::layers::linear_macs_fraction;
use m2x_nn::profile::ModelProfile;
use m2xfp::quantizer::M2xfpQuantizer;
use m2xfp::{M2xfpConfig, TensorQuantizer};

/// §6.4 — extending M2XFP to attention and the KV cache.
pub fn extension_kv_cache() -> Report {
    let mut rep = Report::new(
        "extension_kv_cache",
        "§6.4 extension — M2XFP on attention and the KV cache",
    );

    // Motivating MAC split (paper: linear ~83 % at 4096, attention ~45 %
    // at 16384).
    let model = ModelProfile::llama3_8b();
    let mut t = Table::new(vec!["Sequence", "Linear MACs", "Attention MACs"]);
    for seq in [1024usize, 4096, 16384] {
        let lin = linear_macs_fraction(&model, seq);
        t.row(vec![
            seq.to_string(),
            format!("{:.1}%", lin * 100.0),
            format!("{:.1}%", (1.0 - lin) * 100.0),
        ]);
    }
    rep.table("MAC share by sequence length (LLaMA3-8B):", &t);

    // Quantized attention error: hybrid (Elem-EM Q/P, Sg-EM K/V) vs MXFP4.
    let mut t = Table::new(vec![
        "Model",
        "scores NMSE MXFP4",
        "scores NMSE M2XFP",
        "output NMSE MXFP4",
        "output NMSE M2XFP",
    ]);
    for model in [
        ModelProfile::llama2_7b(),
        ModelProfile::llama3_8b(),
        ModelProfile::mistral_7b(),
    ] {
        let (q, k, v) = synth_head(&model, 128, model.head_dim().min(128));
        let m2 = M2xfpQuantizer::default();
        let mx = MxQuantizer::mxfp4();
        let e_m2 = evaluate_attention(&q, &k, &v, &m2, &m2);
        let e_mx = evaluate_attention(&q, &k, &v, &mx, &mx);
        t.row(vec![
            model.name.to_string(),
            f4(e_mx.scores_nmse),
            f4(e_m2.scores_nmse),
            f4(e_mx.output_nmse),
            f4(e_m2.output_nmse),
        ]);
    }
    rep.table(
        "Per-head attention error (Q/P online Elem-EM, K/V cache Sg-EM):",
        &t,
    );
    rep.line("Sg-EM suits the lazily quantized KV cache (adaptive search is");
    rep.line("affordable off the critical path); Elem-EM handles Q and P in");
    rep.line("real time — the same asymmetry as weights vs activations.");
    rep.emit();
    rep
}

/// Ablation — M2XFP subgroup size (the paper picks 32/8 as near-Pareto).
pub fn ablate_subgroup(ev: &Evaluator) -> Report {
    let mut rep = Report::new(
        "ablate_subgroup",
        "Ablation — M2XFP subgroup size (group 32, sg 32 → 2)",
    );
    let models = [ModelProfile::llama2_7b(), ModelProfile::llama3_8b()];
    let mut t = Table::new(vec!["Subgroup", "EBW", "PPL LLaMA2-7B", "PPL LLaMA3-8B"]);
    for sg in [32usize, 16, 8, 4, 2] {
        let cfg = M2xfpConfig {
            subgroup_size: sg,
            ..M2xfpConfig::default()
        };
        let q = M2xfpQuantizer::new(cfg);
        let mut row = vec![sg.to_string(), f3(q.weight_ebw())];
        for m in &models {
            row.push(f2(ev.ppl(m, &q)));
        }
        t.row(row);
    }
    rep.table(
        "Perplexity proxy vs metadata granularity (paper's choice: sg 8 at\n\
         4.5 EBW — finer subgroups pay bits for shrinking returns):",
        &t,
    );
    rep.emit();
    rep
}
