//! The paper's published numbers, kept verbatim for side-by-side
//! comparison in every experiment report. Only the FP16 rows and the MXFP4
//! rows feed the proxies (as anchors); everything else is displayed next
//! to our measured/predicted values.

/// Tbl. 2 — zero-shot accuracy rows `(method, [Arc-e, Arc-c, Hella., PiQA,
/// Wino., BoolQ])` per model.
pub fn table2(model: &str) -> Option<Vec<(&'static str, [f64; 6])>> {
    let rows: Vec<(&'static str, [f64; 6])> = match model {
        "LLaMA2-7B" => vec![
            ("FP16", [74.58, 46.25, 75.99, 79.11, 69.06, 77.71]),
            ("SMX4", [26.43, 27.05, 26.13, 49.40, 49.80, 38.93]),
            ("MXFP4", [66.84, 41.47, 70.49, 76.61, 64.01, 72.51]),
            ("NVFP4", [73.11, 44.88, 74.62, 78.13, 67.88, 74.22]),
            ("M2XFP", [73.32, 44.37, 74.64, 77.58, 68.27, 76.97]),
        ],
        "LLaMA3-8B" => vec![
            ("FP16", [77.49, 53.33, 79.15, 80.85, 72.53, 81.28]),
            ("SMX4", [25.00, 27.13, 26.03, 50.18, 48.86, 40.67]),
            ("MXFP4", [71.42, 46.08, 73.53, 77.48, 68.19, 72.84]),
            ("NVFP4", [72.98, 48.55, 76.08, 78.40, 72.14, 75.96]),
            ("M2XFP", [74.58, 49.57, 77.23, 79.54, 70.96, 79.20]),
        ],
        "Mistral-7B" => vec![
            ("FP16", [78.24, 52.13, 80.46, 82.26, 73.80, 82.14]),
            ("SMX4", [26.39, 27.22, 25.69, 49.18, 49.33, 40.06]),
            ("MXFP4", [74.03, 46.67, 75.87, 78.94, 69.06, 73.49]),
            ("NVFP4", [76.47, 49.23, 78.13, 81.56, 70.64, 78.07]),
            ("M2XFP", [76.64, 50.85, 79.76, 80.74, 71.27, 82.45]),
        ],
        _ => return None,
    };
    Some(rows)
}

/// Tbl. 3 — Wikitext perplexity `(method, [LLaMA2-7B, LLaMA3-8B,
/// LLaMA3-70B, OPT-6.7B, Mistral-7B, Falcon-7B])`.
pub fn table3() -> Vec<(&'static str, [f64; 6])> {
    vec![
        ("FP16", [5.47, 6.14, 2.85, 10.86, 5.32, 6.59]),
        ("MXFP4", [7.15, 8.30, 4.84, 19.21, 6.56, 7.59]),
        ("MX-ANT", [6.30, 8.22, 4.65, 12.76, 6.04, 7.35]),
        ("MX-M-ANT", [6.12, 7.83, 4.54, 12.45, 5.89, 7.32]),
        ("MX-OliVe", [7.46, 11.33, 6.84, 36.80, 6.77, 8.40]),
        ("MicroScopiQ", [6.24, 8.33, 4.75, 12.65, 6.00, 7.45]),
        ("BlockDialect", [5.84, 7.05, 3.76, 11.31, 5.65, 6.94]),
        ("M2XFP", [5.77, 6.84, 3.56, 11.34, 5.58, 6.88]),
    ]
}

/// Tbl. 3's model column order.
pub const TABLE3_MODELS: [&str; 6] = [
    "LLaMA2-7B",
    "LLaMA3-8B",
    "LLaMA3-70B",
    "OPT-6.7B",
    "Mistral-7B",
    "Falcon-7B",
];

/// Tbl. 4 — reasoning `(method, [AIME-90, MATH-500, GSM8K, GPQA,
/// LiveCodeBench, Avg])` per model.
pub fn table4(model: &str) -> Option<Vec<(&'static str, [f64; 6])>> {
    let rows: Vec<(&'static str, [f64; 6])> = match model {
        "DeepSeek-R1-Distill-Qwen-1.5B" => vec![
            ("FP16", [21.11, 85.40, 84.76, 36.36, 17.54, 49.03]),
            ("MXFP4", [7.78, 66.60, 69.37, 31.82, 8.96, 36.91]),
            ("M2XFP", [18.89, 80.20, 79.83, 32.83, 10.45, 44.44]),
        ],
        "DeepSeek-R1-Distill-Qwen-7B" => vec![
            ("FP16", [45.56, 93.80, 90.83, 50.51, 35.82, 63.30]),
            ("MXFP4", [26.67, 89.60, 88.40, 46.97, 28.36, 56.00]),
            ("M2XFP", [40.00, 93.80, 90.83, 52.02, 32.40, 61.81]),
        ],
        _ => return None,
    };
    Some(rows)
}

/// Tbl. 5 — `(component, count, area mm², power mW)`.
pub fn table5() -> Vec<(&'static str, usize, f64, f64)> {
    vec![
        ("PE Tile", 128, 0.2739, 27.021),
        ("Top-1 Decode Unit", 4, 0.0003, 0.064),
        ("Quantization Engine", 1, 0.0024, 0.663),
        ("Buffer (324KB)", 1, 0.7740, 176.268),
    ]
}

/// §6.3 PE-tile areas in µm²: (MXFP4, NVFP4, M2XFP).
pub const PE_TILE_AREAS: (f64, f64, f64) = (2057.6, 2104.7, 2140.1);

/// Tbl. 6 — `(method, ppl per TABLE3_MODELS)`.
pub fn table6() -> Vec<(&'static str, [f64; 6])> {
    vec![
        ("FP16", [5.47, 6.14, 2.85, 10.86, 5.32, 6.59]),
        ("NVFP4", [5.81, 7.18, 3.63, 11.46, 5.76, 6.90]),
        ("M2-NVFP4", [5.77, 6.85, 3.57, 11.32, 5.58, 6.88]),
    ]
}

/// Tbl. 7 — `(method, [LLaMA2-7B, LLaMA3-8B])` Wikitext perplexity.
// DuQuant's published 6.28 perplexity happens to look like τ to clippy.
#[allow(clippy::approx_constant)]
pub fn table7() -> Vec<(&'static str, [f64; 2])> {
    vec![
        ("QuaRot", [5.84, 7.13]),
        ("DuQuant", [6.28, 7.90]),
        ("MR-GPTQ", [5.97, 7.17]),
        ("M2XFP", [5.77, 6.84]),
        ("MR-GPTQ-M2XFP", [5.73, 6.84]),
    ]
}

/// Tbl. 8 — `(rule, [LLaMA2 MXFP4, LLaMA2 M2XFP, LLaMA3 MXFP4, LLaMA3
/// M2XFP])`.
pub fn table8() -> Vec<(&'static str, [f64; 4])> {
    vec![
        ("floor", [7.15, 5.77, 8.30, 6.84]),
        ("ceil/RTNE", [6.21, 5.80, 7.97, 6.96]),
        ("RTN1", [9.21, 5.79, 9.34, 6.87]),
        ("RTN2", [6.26, 5.81, 8.08, 7.01]),
    ]
}

/// §1/§6.2/§6.3 headline claims.
pub struct Headline {
    /// Average accuracy-loss reduction vs MXFP4 (%).
    pub loss_reduction_vs_mxfp4: f64,
    /// Average accuracy-loss reduction vs NVFP4 (%).
    pub loss_reduction_vs_nvfp4: f64,
    /// Average speedup over MicroScopiQ.
    pub speedup: f64,
    /// Average energy reduction over MicroScopiQ.
    pub energy_saving: f64,
}

/// The paper's headline numbers.
pub fn headline() -> Headline {
    Headline {
        loss_reduction_vs_mxfp4: 70.63,
        loss_reduction_vs_nvfp4: 37.30,
        speedup: 1.91,
        energy_saving: 1.75,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_averages_match_paper_text() {
        // §6.2: MXFP4 averages 65.32 / 68.26 / 69.68.
        for (model, want) in [
            ("LLaMA2-7B", 65.32),
            ("LLaMA3-8B", 68.26),
            ("Mistral-7B", 69.68),
        ] {
            let rows = table2(model).unwrap();
            let mxfp4 = rows.iter().find(|(m, _)| *m == "MXFP4").unwrap();
            let avg: f64 = mxfp4.1.iter().sum::<f64>() / 6.0;
            assert!((avg - want).abs() < 0.02, "{model}: {avg}");
        }
    }

    #[test]
    fn table3_m2xfp_beats_all_but_blockdialect_on_opt() {
        let t = table3();
        let m2 = t.iter().find(|(m, _)| *m == "M2XFP").unwrap().1;
        let bd = t.iter().find(|(m, _)| *m == "BlockDialect").unwrap().1;
        // OPT (index 3): BlockDialect better by 0.03 (§6.2).
        assert!((m2[3] - bd[3] - 0.03).abs() < 1e-9);
        // All other models: M2XFP best non-FP16.
        for i in [0usize, 1, 2, 4, 5] {
            for (name, row) in &t {
                if *name == "FP16" || *name == "M2XFP" {
                    continue;
                }
                assert!(m2[i] <= row[i], "model {i} method {name}");
            }
        }
    }

    #[test]
    fn table5_totals() {
        let total_area: f64 = table5().iter().map(|r| r.2).sum();
        let total_power: f64 = table5().iter().map(|r| r.3).sum();
        assert!((total_area - 1.0506).abs() < 0.001);
        assert!((total_power - 204.016).abs() < 0.01);
    }
}
