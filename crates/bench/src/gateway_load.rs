//! Gateway load-test harness — behind the `serve_bench` driver binary and
//! the `gateway` section of `bench_m2xfp_json`.
//!
//! Drives a live [`m2x_gateway::Gateway`] (real TCP, real HTTP parsing,
//! real SSE streams) with the traffic shape serving front-ends actually
//! see: a few **long-running** token streams that pin connections for the
//! whole run, a churn wave of **hundreds of short connections** (health
//! probes, metric scrapes, small generations) arriving concurrently from
//! several client threads, and a handful of clients that **disconnect
//! mid-stream** to exercise the cancel-on-disconnect path.
//!
//! Two hard CI gates come out of it:
//!
//! * `stream_exact` — every token row reassembled from the socket (long
//!   streams and short generations alike) is bit-identical to
//!   [`run_solo`] for the same prompt: HTTP framing, SSE chunking and the
//!   decimal float round-trip add zero error;
//! * `zero_leak` — after the churn, every abandoned stream was cancelled
//!   and reaped, the scheduler quiesces with all outcomes consumed, and
//!   `ModelWeights::open_sessions()` is zero.
//!
//! The advisory numbers are end-to-end: `e2e_p50_ms`/`e2e_p99_ms` are
//! connect-to-last-byte latencies of the short generations measured
//! **through** the gateway while the long streams are running — the
//! head-of-line number a register-blocked decode step ultimately buys.

use m2x_gateway::{client, Gateway, GatewayConfig};
use m2x_nn::model::{ModelBuilder, ModelWeights};
use m2x_nn::profile::ModelProfile;
use m2x_nn::synth::activation_matrix;
use m2x_serve::sync::lock_poisoned;
use m2x_serve::{run_solo, ServeConfig, Server};
use m2x_tensor::Matrix;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Traffic shape and dimensions of one gateway load run.
#[derive(Debug, Clone, Copy)]
pub struct GatewayLoadConfig {
    /// Hidden (residual stream) dimension.
    pub hidden: usize,
    /// Transformer layer count.
    pub layers: usize,
    /// Long-running streams held open for the whole run.
    pub long_streams: usize,
    /// Decode steps of each long stream.
    pub long_decode_steps: usize,
    /// Short connections in the churn wave (health probes, metric
    /// scrapes and small generations, round-robin).
    pub short_connections: usize,
    /// Decode steps of each short generation.
    pub short_decode_steps: usize,
    /// Distinct prompts the short generations cycle through (bounds the
    /// solo-oracle cost).
    pub short_prompt_pool: usize,
    /// Concurrent client threads driving the churn wave.
    pub clients: usize,
    /// Clients that open a long stream and hang up mid-flight.
    pub disconnects: usize,
    /// Gateway connection-worker pool size (must exceed the pinned
    /// connections — long streams + disconnectors — or churn starves).
    pub workers: usize,
}

impl GatewayLoadConfig {
    /// The fixed configuration embedded in `bench_m2xfp_json` and gated
    /// by CI: 2 pinned long streams + 3 mid-stream hangups under a
    /// 200-connection churn wave from 4 clients.
    pub fn ci() -> Self {
        GatewayLoadConfig {
            hidden: 128,
            layers: 2,
            long_streams: 2,
            long_decode_steps: 48,
            short_connections: 200,
            short_decode_steps: 2,
            short_prompt_pool: 8,
            clients: 4,
            disconnects: 3,
            workers: 10,
        }
    }
}

/// Measured results of one gateway load run.
#[derive(Debug, Clone)]
pub struct GatewayLoadReport {
    /// Configuration measured.
    pub cfg: GatewayLoadConfig,
    /// Every socket-reassembled token stream (long and short) was
    /// bit-identical to its solo run. CI hard gate.
    pub stream_exact: bool,
    /// Every abandoned stream was cancelled and reaped, and zero sessions
    /// survived the shutdown. CI hard gate.
    pub zero_leak: bool,
    /// Connect-to-last-byte p50 of the short generations (milliseconds).
    pub e2e_p50_ms: f64,
    /// Connect-to-last-byte p99 of the short generations (milliseconds).
    pub e2e_p99_ms: f64,
    /// Short connections completed per second (whole churn wave).
    pub churn_req_per_s: f64,
    /// Aggregate decode throughput of the long streams, measured at the
    /// client end of the socket (tokens/s).
    pub stream_tok_per_s: f64,
    /// Wall time of the whole scenario (seconds).
    pub wall_s: f64,
    /// Requests the scheduler cancelled (== the mid-stream hangups).
    pub cancelled: u64,
    /// Generations that ran to completion (long + short).
    pub finished: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs the full load scenario. Deterministic workload (timings aside).
pub fn run_gateway_load(cfg: GatewayLoadConfig) -> GatewayLoadReport {
    let profile = ModelProfile::llama3_8b();
    let weights: Arc<ModelWeights> = Arc::new(
        ModelBuilder::scaled(&profile, cfg.hidden, cfg.layers)
            .build_weights()
            .expect("scaled dimensions are group-aligned"),
    );
    let prompt = |seed: usize, tokens: usize| {
        activation_matrix(&profile, seed, tokens, cfg.hidden).map(|v| (v * 0.25).tanh())
    };

    // Solo oracles, computed up front so they don't pollute the timings.
    let long_prompts: Vec<Matrix> = (0..cfg.long_streams).map(|i| prompt(1000 + i, 4)).collect();
    let long_solo: Vec<Matrix> = long_prompts
        .iter()
        .map(|p| run_solo(&weights, p, cfg.long_decode_steps).expect("solo run"))
        .collect();
    let short_prompts: Vec<Matrix> = (0..cfg.short_prompt_pool.max(1))
        .map(|i| prompt(2000 + i, 2))
        .collect();
    let short_solo: Vec<Matrix> = short_prompts
        .iter()
        .map(|p| run_solo(&weights, p, cfg.short_decode_steps).expect("solo run"))
        .collect();

    let server = Arc::new(Server::start(Arc::clone(&weights), ServeConfig::default()));
    let gateway = Gateway::bind(
        Arc::clone(&server),
        GatewayConfig {
            workers: cfg.workers,
            max_decode_steps: cfg.long_decode_steps.max(100_000),
            ..GatewayConfig::default()
        },
    )
    .expect("bind gateway on a free port");
    let addr = gateway.local_addr();

    let t0 = Instant::now();
    let exact = Arc::new(AtomicBool::new(true));

    // ── Long streams: pinned connections decoding for the whole run. ──
    let long_handles: Vec<_> = long_prompts
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let p = p.clone();
            let solo = long_solo[i].clone();
            let exact = Arc::clone(&exact);
            std::thread::spawn(move || {
                let got = client::generate(addr, &p, solo.rows(), None, None)
                    .expect("long stream completes");
                if got.status != 200
                    || got.outcome.as_deref() != Some("finished")
                    || !bits_eq(&got.tokens, &solo)
                {
                    exact.store(false, Ordering::SeqCst);
                }
                got.tokens.rows()
            })
        })
        .collect();

    // ── Mid-stream hangups: open a long stream, read a little, vanish. ──
    let disconnect_handles: Vec<_> = (0..cfg.disconnects)
        .map(|i| {
            let p = prompt(3000 + i, 3);
            std::thread::spawn(move || {
                let body = client::generate_body(&p, 50_000, None, None);
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .write_all(
                        format!(
                            "POST /v1/generate HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                            body.len()
                        )
                        .as_bytes(),
                    )
                    .expect("send request");
                // Wait for the stream head + some frames, then hang up.
                let mut first = [0u8; 256];
                stream.read_exact(&mut first).expect("stream opened");
                drop(stream);
            })
        })
        .collect();

    // ── Churn wave: short connections from `clients` threads. ──
    let latencies = Arc::new(Mutex::new(Vec::<f64>::new()));
    let churn_t0 = Instant::now();
    let churn_handles: Vec<_> = (0..cfg.clients.max(1))
        .map(|c| {
            let exact = Arc::clone(&exact);
            let latencies = Arc::clone(&latencies);
            let short_prompts = short_prompts.clone();
            let short_solo = short_solo.clone();
            let n = cfg.short_connections / cfg.clients.max(1);
            let steps = cfg.short_decode_steps;
            std::thread::spawn(move || {
                for i in 0..n {
                    let kind = (c + i) % 3;
                    if kind == 0 {
                        // One short generation, end-to-end latency sample.
                        let slot = (c * n + i) % short_prompts.len();
                        let t = Instant::now();
                        let got = client::generate(addr, &short_prompts[slot], steps, None, None)
                            .expect("short generation completes");
                        let ms = t.elapsed().as_secs_f64() * 1e3;
                        if got.status != 200 || !bits_eq(&got.tokens, &short_solo[slot]) {
                            exact.store(false, Ordering::SeqCst);
                        }
                        lock_poisoned(&latencies).push(ms);
                    } else {
                        let target = if kind == 1 { "/healthz" } else { "/metrics" };
                        let raw = format!(
                            "GET {target} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n"
                        );
                        let (status, _, _) =
                            client::http_request(addr, raw.as_bytes()).expect("probe completes");
                        if status != 200 {
                            exact.store(false, Ordering::SeqCst);
                        }
                    }
                }
            })
        })
        .collect();

    for h in churn_handles {
        h.join().expect("churn client");
    }
    let churn_s = churn_t0.elapsed().as_secs_f64();
    let streamed_long_tokens: usize = long_handles
        .into_iter()
        .map(|h| h.join().expect("long stream client"))
        .sum();
    for h in disconnect_handles {
        h.join().expect("disconnect client");
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // Give the cancel-on-disconnect path a bounded window to reap every
    // hangup before the leak check (the gateway worker notices the dead
    // socket on its next frame write).
    let reap_deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().cancelled < cfg.disconnects as u64 && Instant::now() < reap_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Tear down: gateway first (joins workers, so every abandon ran),
    // then the scheduler.
    drop(gateway);
    let stats = server.stats();
    let mut server = Arc::try_unwrap(server)
        .unwrap_or_else(|_| panic!("gateway drop released every Server handle"));
    server.shutdown();
    let zero_leak = weights.open_sessions() == 0
        && stats.cancelled == cfg.disconnects as u64
        && stats.rejected == 0
        && stats.failed == 0;

    let mut lat = Arc::try_unwrap(latencies)
        .expect("churn clients joined")
        .into_inner()
        .expect("latency lock");
    lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let short_gens = lat.len();

    GatewayLoadReport {
        cfg,
        stream_exact: exact.load(Ordering::SeqCst),
        zero_leak,
        e2e_p50_ms: percentile(&lat, 0.50),
        e2e_p99_ms: percentile(&lat, 0.99),
        churn_req_per_s: (cfg.short_connections / cfg.clients.max(1) * cfg.clients.max(1)) as f64
            / churn_s,
        stream_tok_per_s: streamed_long_tokens as f64 / wall_s,
        wall_s,
        cancelled: stats.cancelled,
        finished: (cfg.long_streams + short_gens) as u64,
    }
}

impl GatewayLoadReport {
    /// Renders the report as a flat-gateable JSON object (no arrays).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{
  "bench": "m2x_gateway_load",
  "model": "LLaMA3-8B-scaled",
  "dims": {{"hidden": {h}, "layers": {l}, "long_streams": {ls}, "long_decode_steps": {ld}, "short_connections": {sc}, "short_decode_steps": {sd}, "clients": {cl}, "disconnects": {dc}, "workers": {wk}}},
  "stream_exact": {ex},
  "zero_leak": {zl},
  "e2e_p50_ms": {p50:.3},
  "e2e_p99_ms": {p99:.3},
  "churn_req_per_s": {rps:.1},
  "stream_tok_per_s": {tps:.1},
  "wall_s": {ws:.6},
  "cancelled": {cn},
  "finished": {fi}
}}"#,
            h = self.cfg.hidden,
            l = self.cfg.layers,
            ls = self.cfg.long_streams,
            ld = self.cfg.long_decode_steps,
            sc = self.cfg.short_connections,
            sd = self.cfg.short_decode_steps,
            cl = self.cfg.clients,
            dc = self.cfg.disconnects,
            wk = self.cfg.workers,
            ex = self.stream_exact,
            zl = self.zero_leak,
            p50 = self.e2e_p50_ms,
            p99 = self.e2e_p99_ms,
            rps = self.churn_req_per_s,
            tps = self.stream_tok_per_s,
            ws = self.wall_s,
            cn = self.cancelled,
            fi = self.finished,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature load run end-to-end: both gates hold and the report's
    /// accounting matches the traffic that was actually driven.
    #[test]
    fn mini_load_run_gates_hold() {
        let cfg = GatewayLoadConfig {
            hidden: 64,
            layers: 1,
            long_streams: 1,
            long_decode_steps: 12,
            short_connections: 24,
            short_decode_steps: 2,
            short_prompt_pool: 4,
            clients: 2,
            disconnects: 1,
            workers: 6,
        };
        let r = run_gateway_load(cfg);
        assert!(r.stream_exact, "socket streams diverged from solo");
        assert!(r.zero_leak, "sessions or outcomes leaked");
        assert_eq!(r.cancelled, 1);
        assert!(r.e2e_p99_ms >= r.e2e_p50_ms);
        assert!(r.finished > 8); // 1 long + ceil(24/3)-ish short gens
        let json = r.to_json();
        assert!(json.contains("\"stream_exact\": true"));
        assert!(json.contains("\"zero_leak\": true"));
    }
}
