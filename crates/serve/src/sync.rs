//! Poison-tolerant synchronization helpers.
//!
//! The engine's locking discipline (enforced by `m2x-lint` rule R2) is
//! that no thread ever touches a `Mutex` through `.lock().unwrap()`: a
//! panic on one thread must not cascade into lock-poisoning panics on
//! every other thread that shares state with it. That discipline is sound
//! here because every mutation of shared queue/stats state happens under
//! the lock in panic-free sections — the fallible model work runs
//! *outside* the lock behind `catch_unwind` — so a poisoned mutex still
//! guards consistent data and recovery is simply "take the guard".
//!
//! These helpers are the single place that recovery idiom lives; the
//! scheduler, the gateway worker pool and the bench drivers all route
//! their locking through them.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock_poisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_poisoned`].
pub fn wait_poisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_poisoned_recovers_after_holder_panic() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        let mut g = lock_poisoned(&m);
        *g += 1;
        assert_eq!(*g, 42);
    }

    #[test]
    fn wait_poisoned_wakes_normally() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *lock_poisoned(m) = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = lock_poisoned(m);
        while !*ready {
            ready = wait_poisoned(cv, ready);
        }
        waker.join().unwrap();
    }
}
