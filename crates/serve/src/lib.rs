//! # m2x-serve
//!
//! Multi-session continuous-batching serving runtime over the quantized
//! M2XFP engine — the system the MX line of work motivates low-bit formats
//! with: one shared set of prepared weights amortized across many in-flight
//! generation requests.
//!
//! The runtime is std-only (threads, `Mutex`/`Condvar`, `mpsc`-style
//! queues) and is built on the `m2x_nn::model` weight/state split:
//!
//! * [`ModelWeights`](m2x_nn::model::ModelWeights) behind an `Arc` is the
//!   **shared model** — every projection quantized and decoded once; N
//!   concurrent requests cost N KV caches, never N weight copies.
//! * A [`Server`] owns one engine thread running the continuous-batching
//!   loop: requests are admitted from the arrival queue up to
//!   [`ServeConfig::max_batch`], every scheduler step stacks all active
//!   requests' pending rows (prefill chunks and decode tokens mix freely)
//!   into one batched [`step_sessions`](m2x_nn::model::ModelWeights::step_sessions)
//!   call, and requests join and leave between steps without disturbing
//!   the others.
//!
//! **Determinism:** every output row depends only on its own request's
//! rows and KV cache, so each request's generation is **bit-identical to
//! running it alone** ([`run_solo`]) — for any arrival interleaving, batch
//! composition and worker-thread count. `tests/proptest_serve.rs` pins
//! this; the `serve_bench` driver hard-gates it in CI (`batch_exact`).
//!
//! ```
//! use m2x_nn::model::ModelBuilder;
//! use m2x_nn::profile::ModelProfile;
//! use m2x_serve::{feedback_token, run_solo, ServeConfig, Server};
//! use m2x_tensor::Matrix;
//! use std::sync::Arc;
//!
//! let weights = Arc::new(
//!     ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1).build_weights()?,
//! );
//! let prompt = Matrix::from_fn(3, 64, |r, c| ((r * 64 + c) as f32 * 0.1).sin() * 0.5);
//! let server = Server::start(Arc::clone(&weights), ServeConfig::default());
//! let id = server.submit(prompt.clone(), 2)?;
//! let out = server.wait(id);
//! assert_eq!(out.decoded, run_solo(&weights, &prompt, 2)?); // bit-identical
//! # Ok::<(), m2xfp::Error>(())
//! ```

pub mod scheduler;

pub use scheduler::{Completed, ServeStats, Server};

use m2x_nn::model::{ModelWeights, QuantizedModel};
use m2x_tensor::Matrix;
use m2xfp::Error;
use std::sync::Arc;

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission cap: at most this many requests are in flight per
    /// scheduler step; later arrivals queue until a slot frees up.
    pub max_batch: usize,
    /// Worker threads the per-request attention work is sharded over.
    /// `0` = auto: the engine scales the worker count with each step's
    /// attention work volume, up to the available cores (small steps stay
    /// inline). Any value computes identical bits.
    pub worker_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            worker_threads: 0,
        }
    }
}

/// The deterministic greedy "sampler" of the synthetic serving loop: the
/// next input token embedding is the last output row squashed back into an
/// embedding-like range. Purely per-row, so the feedback stream of a
/// request is identical whether it runs solo or batched.
pub fn feedback_token(y: &Matrix) -> Matrix {
    assert!(y.rows() > 0, "feedback needs at least one output row");
    let last = y.rows() - 1;
    Matrix::from_fn(1, y.cols(), |_, c| (y[(last, c)] * 0.25).tanh())
}

/// Rejects prompts carrying NaN/Inf values at the serve boundary: a
/// non-finite row would flow through the online quantizer into the engine
/// and poison whatever batch it lands in, so both [`Server::submit`] and
/// [`run_solo`] validate before any model state is touched.
pub(crate) fn check_finite(prompt: &Matrix) -> Result<(), Error> {
    if prompt.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(Error::config("prompt contains non-finite (NaN/Inf) values"));
    }
    Ok(())
}

/// Runs one generation request synchronously on a fresh single session over
/// the shared weights: prefill the prompt, then `decode_steps` closed-loop
/// decode steps through [`feedback_token`]. Returns the stacked decode
/// outputs (`[decode_steps, hidden]`) — the solo oracle every scheduled
/// request is bit-compared against.
///
/// # Errors
///
/// Fails on an input width mismatch, an empty prompt, or non-finite
/// prompt values (the same boundary check as [`Server::submit`]).
pub fn run_solo(
    weights: &Arc<ModelWeights>,
    prompt: &Matrix,
    decode_steps: usize,
) -> Result<Matrix, Error> {
    if prompt.rows() == 0 {
        return Err(Error::config("prompt must contain at least one token"));
    }
    check_finite(prompt)?;
    let mut model = QuantizedModel::from_weights(Arc::clone(weights));
    let y = model.prefill(prompt)?;
    let mut tok = feedback_token(&y);
    let mut decoded = Matrix::zeros(0, weights.hidden());
    for _ in 0..decode_steps {
        let y = model.decode(&tok)?;
        tok = feedback_token(&y);
        decoded.push_rows(&y);
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_nn::model::ModelBuilder;
    use m2x_nn::profile::ModelProfile;
    use m2x_nn::synth::activation_matrix;

    fn weights() -> Arc<ModelWeights> {
        Arc::new(
            ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1)
                .build_weights()
                .unwrap(),
        )
    }

    fn prompt(tokens: usize, seed: usize) -> Matrix {
        activation_matrix(&ModelProfile::llama3_8b(), seed, tokens, 64).map(|v| (v * 0.25).tanh())
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn batched_requests_match_solo_bitwise() {
        let w = weights();
        let server = Server::start(
            Arc::clone(&w),
            ServeConfig {
                max_batch: 3,
                worker_threads: 2,
            },
        );
        let reqs: Vec<(Matrix, usize)> =
            (0..5).map(|i| (prompt(1 + i % 4, i), 1 + i % 3)).collect();
        let ids: Vec<u64> = reqs
            .iter()
            .map(|(p, d)| server.submit(p.clone(), *d).unwrap())
            .collect();
        for (id, (p, d)) in ids.iter().zip(&reqs) {
            let out = server.wait(*id);
            assert_eq!(out.id, *id);
            assert_eq!(out.decoded.rows(), *d);
            assert_bits_eq(&out.decoded, &run_solo(&w, p, *d).unwrap());
            assert!(out.finished_step > out.arrived_step);
        }
        let stats = server.stats();
        assert!(stats.peak_batch >= 2, "peak batch {}", stats.peak_batch);
        assert_eq!(
            stats.decoded_tokens,
            reqs.iter().map(|r| r.1 as u64).sum::<u64>()
        );
    }

    #[test]
    fn zero_decode_steps_completes_after_prefill() {
        let w = weights();
        let server = Server::start(Arc::clone(&w), ServeConfig::default());
        let id = server.submit(prompt(3, 0), 0).unwrap();
        let out = server.wait(id);
        assert_eq!(out.decoded.rows(), 0);
        assert_eq!(out.prefill_out.rows(), 3);
    }

    #[test]
    fn submit_rejects_bad_requests() {
        let server = Server::start(weights(), ServeConfig::default());
        assert!(server.submit(Matrix::zeros(0, 64), 1).is_err());
        assert!(server.submit(Matrix::zeros(1, 65), 1).is_err());
        let mut nan = prompt(2, 0);
        nan[(1, 3)] = f32::NAN;
        assert!(server.submit(nan, 1).is_err());
        let mut inf = prompt(2, 1);
        inf[(0, 0)] = f32::INFINITY;
        assert!(server.submit(inf, 1).is_err());
    }

    #[test]
    fn rejected_nonfinite_submit_leaves_concurrent_requests_bit_identical() {
        // A NaN prompt is rejected at the boundary and never reaches the
        // engine: the requests in flight around it keep producing streams
        // bit-identical to their solo runs, and the engine stays alive for
        // later submissions.
        let w = weights();
        let server = Server::start(Arc::clone(&w), ServeConfig::default());
        let before: Vec<(u64, Matrix)> = (0..3)
            .map(|i| {
                let p = prompt(2 + i, i);
                (server.submit(p.clone(), 2).unwrap(), p)
            })
            .collect();
        let mut poison = prompt(3, 7);
        poison[(2, 5)] = f32::NAN;
        assert!(server.submit(poison, 2).is_err());
        let after = prompt(4, 9);
        let after_id = server.submit(after.clone(), 1).unwrap();
        for (id, p) in &before {
            assert_bits_eq(&server.wait(*id).decoded, &run_solo(&w, p, 2).unwrap());
        }
        assert_bits_eq(
            &server.wait(after_id).decoded,
            &run_solo(&w, &after, 1).unwrap(),
        );
    }

    #[test]
    fn run_solo_rejects_nonfinite_prompt() {
        let w = weights();
        let mut p = prompt(2, 0);
        p[(0, 1)] = f32::NEG_INFINITY;
        assert!(run_solo(&w, &p, 1).is_err());
    }

    #[test]
    fn double_wait_panics_instead_of_hanging() {
        let server = Server::start(weights(), ServeConfig::default());
        let id = server.submit(prompt(2, 0), 1).unwrap();
        let _ = server.wait(id);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| server.wait(id)))
            .expect_err("second wait must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("already waited"), "{msg}");
    }

    #[test]
    fn feedback_token_uses_last_row() {
        let y = Matrix::from_vec(2, 2, vec![9.0, 9.0, 1.0, -1.0]);
        let t = feedback_token(&y);
        assert_eq!(t.rows(), 1);
        assert!((t[(0, 0)] - 0.25f32.tanh()).abs() < 1e-7);
        assert!(t[(0, 1)] < 0.0);
    }
}
