//! # m2x-serve
//!
//! Multi-session continuous-batching serving runtime over the quantized
//! M2XFP engine — the system the MX line of work motivates low-bit formats
//! with: one shared set of prepared weights amortized across many in-flight
//! generation requests.
//!
//! The runtime is std-only (threads, `Mutex`/`Condvar`, `mpsc`-style
//! queues) and is built on the `m2x_nn::model` weight/state split:
//!
//! * [`ModelWeights`] behind an `Arc` is the
//!   **shared model** — every projection quantized and decoded once; N
//!   concurrent requests cost N KV caches, never N weight copies.
//! * A [`Server`] owns one engine thread running the continuous-batching
//!   loop: requests are admitted from the arrival queue up to
//!   [`ServeConfig::max_batch`], every scheduler step stacks all active
//!   requests' pending rows (prefill chunks and decode tokens mix freely)
//!   into one batched [`step_sessions`](m2x_nn::model::ModelWeights::step_sessions)
//!   call, and requests join and leave between steps without disturbing
//!   the others.
//!
//! **Determinism:** every output row depends only on its own request's
//! rows and KV cache, so each request's generation is **bit-identical to
//! running it alone** ([`run_solo`]) — for any arrival interleaving, batch
//! composition and worker-thread count. `tests/proptest_serve.rs` pins
//! this; the `serve_bench` driver hard-gates it in CI (`batch_exact`).
//!
//! **Fault tolerance:** every submitted id resolves to exactly one typed
//! [`RequestOutcome`] (`Finished | Cancelled | DeadlineExceeded | Rejected
//! | Failed`) — per-request deadlines, [`Server::cancel`], a bounded
//! arrival queue with shed-on-overload, a KV-memory admission budget, and
//! `catch_unwind` panic isolation that fails only the implicated request
//! and keeps every survivor bit-identical to its solo run (see
//! [`scheduler`]). The [`fault`] module's deterministic [`FaultPlan`]
//! drives the chaos property tests (`tests/proptest_chaos.rs`) and the CI
//! hard gates `serve.chaos_exact` / `serve.zero_leak`.
//!
//! **Paged KV with prefix sharing:** session KV state lives on fixed-size
//! pages from a shared [`KvPagePool`](m2x_nn::KvPagePool) — admission
//! releases return pages to a free list for O(1) reuse, and a request
//! whose prompt starts with an already-served prefix **adopts** the
//! frozen prefix pages copy-on-write instead of recomputing them
//! (`ServeStats::kv_prefix_hits`). Sharing never bends bit-identity: the
//! adopted pages are verified byte-equal to what prefilling would
//! produce, a shared page is never mutated in place, and recovery
//! replays run the full prompt from scratch. `tests/proptest_kv_pool.rs`
//! pins this; CI hard-gates `kv_pool.reuse_exact` / `kv_pool.zero_leak`.
//!
//! ```
//! use m2x_nn::model::ModelBuilder;
//! use m2x_nn::profile::ModelProfile;
//! use m2x_serve::{feedback_token, run_solo, ServeConfig, ServeError, Server};
//! use m2x_tensor::Matrix;
//! use std::sync::Arc;
//!
//! let weights = Arc::new(
//!     ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1).build_weights()?,
//! );
//! let prompt = Matrix::from_fn(3, 64, |r, c| ((r * 64 + c) as f32 * 0.1).sin() * 0.5);
//! let server = Server::start(Arc::clone(&weights), ServeConfig::default());
//! let id = server.submit(prompt.clone(), 2)?;
//! let out = server.wait(id)?.finished().expect("no faults in play");
//! assert_eq!(out.decoded, run_solo(&weights, &prompt, 2)?); // bit-identical
//! # Ok::<(), ServeError>(())
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod scheduler;
pub mod sync;

pub use fault::{Fault, FaultPlan};
pub use scheduler::{
    Completed, RequestOutcome, ServeError, ServeStats, Server, StreamEvent, TelemetrySnapshot,
};
pub use sync::{lock_poisoned, wait_poisoned};

use m2x_nn::model::{ModelWeights, QuantizedModel};
use m2x_tensor::Matrix;
use m2xfp::Error;
use std::sync::Arc;

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission cap: at most this many requests are in flight per
    /// scheduler step; later arrivals queue until a slot frees up.
    pub max_batch: usize,
    /// Worker threads the per-request attention work is sharded over.
    /// `0` = auto: the engine scales the worker count with each step's
    /// attention work volume, up to the available cores (small steps stay
    /// inline). Any value computes identical bits.
    pub worker_threads: usize,
    /// Arrival-queue bound; `0` = unbounded (the pre-robustness
    /// behavior). When the queue holds this many waiting requests, later
    /// submissions are **shed**: they resolve immediately to
    /// [`RequestOutcome::Rejected`] instead of growing the queue.
    pub queue_capacity: usize,
    /// Packed-KV admission budget in bytes; `0` = unlimited. While the
    /// in-flight sessions' [`kv_bytes`](m2x_nn::model::SessionState::kv_bytes)
    /// sum is at or past the budget, the engine stops admitting (graceful
    /// degradation) but keeps serving — at least one request always runs,
    /// so the budget drains and admission resumes.
    ///
    /// The budget meters the **packed** pool pages (FP4 codes | E8M0
    /// scales | 2-bit meta), with a page shared between sessions counted
    /// once per holder — the same sum
    /// [`ServeStats::kv_packed_bytes`] reports. The decoded
    /// f32 planes the engine also keeps (prepared-K exec planes + the
    /// dequantized V row cache) are reported honestly as
    /// [`ServeStats::kv_decoded_bytes`] but are **not** gated:
    /// they are a deterministic multiple of the packed payload, so one
    /// knob suffices.
    pub kv_budget_bytes: usize,
    /// Record telemetry (trace events, per-stage timing and latency
    /// histograms; see [`m2x_telemetry`]). Recording is designed to be
    /// cheap enough to leave on — the `telemetry.overhead_ratio` CI bench
    /// measures the cost — but the switch exists so that measurement has
    /// an untraced baseline, and it can also be flipped at runtime via
    /// [`Server::telemetry`]'s
    /// [`set_enabled`](m2x_telemetry::Telemetry::set_enabled).
    pub telemetry: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            worker_threads: 0,
            queue_capacity: 0,
            kv_budget_bytes: 0,
            telemetry: true,
        }
    }
}

/// Per-request options for [`Server::submit_with`]: optional deadlines,
/// counted from submission (time spent queued counts against them), and
/// incremental token streaming. `..Default::default()` is "no deadline,
/// no streaming".
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestOptions {
    /// Expire the request once this many scheduler steps have elapsed
    /// since submission (deterministic — the chaos tests use this form).
    pub deadline_steps: Option<u64>,
    /// Expire the request once this much wall-clock time has elapsed
    /// since submission.
    pub deadline: Option<std::time::Duration>,
    /// Publish each decode token incrementally as the engine produces it,
    /// for consumption through [`Server::next_token`] /
    /// [`Server::wait_streaming`] — the hook the `m2x-gateway` HTTP
    /// front-end streams SSE frames from. Costs one row clone per decode
    /// step; the buffered rows are released when the request's outcome is
    /// consumed.
    pub stream: bool,
}

/// The deterministic greedy "sampler" of the synthetic serving loop: the
/// next input token embedding is the last output row squashed back into an
/// embedding-like range. Purely per-row, so the feedback stream of a
/// request is identical whether it runs solo or batched.
pub fn feedback_token(y: &Matrix) -> Matrix {
    assert!(y.rows() > 0, "feedback needs at least one output row");
    let last = y.rows() - 1;
    Matrix::from_fn(1, y.cols(), |_, c| (y[(last, c)] * 0.25).tanh())
}

/// Rejects prompts carrying NaN/Inf values at the serve boundary: a
/// non-finite row would flow through the online quantizer into the engine
/// and poison whatever batch it lands in, so both [`Server::submit`] and
/// [`run_solo`] validate before any model state is touched.
pub(crate) fn check_finite(prompt: &Matrix) -> Result<(), Error> {
    if prompt.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(Error::config("prompt contains non-finite (NaN/Inf) values"));
    }
    Ok(())
}

/// Runs one generation request synchronously on a fresh single session over
/// the shared weights: prefill the prompt, then `decode_steps` closed-loop
/// decode steps through [`feedback_token`]. Returns the stacked decode
/// outputs (`[decode_steps, hidden]`) — the solo oracle every scheduled
/// request is bit-compared against.
///
/// # Errors
///
/// Fails on an input width mismatch, an empty prompt, or non-finite
/// prompt values (the same boundary check as [`Server::submit`]).
pub fn run_solo(
    weights: &Arc<ModelWeights>,
    prompt: &Matrix,
    decode_steps: usize,
) -> Result<Matrix, Error> {
    if prompt.rows() == 0 {
        return Err(Error::config("prompt must contain at least one token"));
    }
    check_finite(prompt)?;
    let mut model = QuantizedModel::from_weights(Arc::clone(weights));
    let y = model.prefill(prompt)?;
    let mut tok = feedback_token(&y);
    let mut decoded = Matrix::zeros(0, weights.hidden());
    for _ in 0..decode_steps {
        let y = model.decode(&tok)?;
        tok = feedback_token(&y);
        decoded.push_rows(&y);
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2x_nn::model::ModelBuilder;
    use m2x_nn::profile::ModelProfile;
    use m2x_nn::synth::activation_matrix;

    fn weights() -> Arc<ModelWeights> {
        Arc::new(
            ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1)
                .build_weights()
                .unwrap(),
        )
    }

    fn prompt(tokens: usize, seed: usize) -> Matrix {
        activation_matrix(&ModelProfile::llama3_8b(), seed, tokens, 64).map(|v| (v * 0.25).tanh())
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    fn wait_finished(server: &Server, id: u64) -> Completed {
        server
            .wait(id)
            .unwrap()
            .finished()
            .unwrap_or_else(|| panic!("request {id} did not finish"))
    }

    #[test]
    fn batched_requests_match_solo_bitwise() {
        let w = weights();
        let server = Server::start(
            Arc::clone(&w),
            ServeConfig {
                max_batch: 3,
                worker_threads: 2,
                ..ServeConfig::default()
            },
        );
        let reqs: Vec<(Matrix, usize)> =
            (0..5).map(|i| (prompt(1 + i % 4, i), 1 + i % 3)).collect();
        let ids: Vec<u64> = reqs
            .iter()
            .map(|(p, d)| server.submit(p.clone(), *d).unwrap())
            .collect();
        for (id, (p, d)) in ids.iter().zip(&reqs) {
            let out = wait_finished(&server, *id);
            assert_eq!(out.id, *id);
            assert_eq!(out.decoded.rows(), *d);
            assert_bits_eq(&out.decoded, &run_solo(&w, p, *d).unwrap());
            assert!(out.finished_step > out.arrived_step);
        }
        let stats = server.stats();
        assert!(stats.peak_batch >= 2, "peak batch {}", stats.peak_batch);
        assert_eq!(
            stats.decoded_tokens,
            reqs.iter().map(|r| r.1 as u64).sum::<u64>()
        );
    }

    #[test]
    fn zero_decode_steps_completes_after_prefill() {
        let w = weights();
        let server = Server::start(Arc::clone(&w), ServeConfig::default());
        let id = server.submit(prompt(3, 0), 0).unwrap();
        let out = wait_finished(&server, id);
        assert_eq!(out.decoded.rows(), 0);
        assert_eq!(out.prefill_out.rows(), 3);
    }

    #[test]
    fn submit_rejects_bad_requests() {
        let server = Server::start(weights(), ServeConfig::default());
        assert!(server.submit(Matrix::zeros(0, 64), 1).is_err());
        assert!(server.submit(Matrix::zeros(1, 65), 1).is_err());
        let mut nan = prompt(2, 0);
        nan[(1, 3)] = f32::NAN;
        assert!(server.submit(nan, 1).is_err());
        let mut inf = prompt(2, 1);
        inf[(0, 0)] = f32::INFINITY;
        assert!(server.submit(inf, 1).is_err());
    }

    #[test]
    fn rejected_nonfinite_submit_leaves_concurrent_requests_bit_identical() {
        // A NaN prompt is rejected at the boundary and never reaches the
        // engine: the requests in flight around it keep producing streams
        // bit-identical to their solo runs, and the engine stays alive for
        // later submissions.
        let w = weights();
        let server = Server::start(Arc::clone(&w), ServeConfig::default());
        let before: Vec<(u64, Matrix)> = (0..3)
            .map(|i| {
                let p = prompt(2 + i, i);
                (server.submit(p.clone(), 2).unwrap(), p)
            })
            .collect();
        let mut poison = prompt(3, 7);
        poison[(2, 5)] = f32::NAN;
        assert!(server.submit(poison, 2).is_err());
        let after = prompt(4, 9);
        let after_id = server.submit(after.clone(), 1).unwrap();
        for (id, p) in &before {
            assert_bits_eq(
                &wait_finished(&server, *id).decoded,
                &run_solo(&w, p, 2).unwrap(),
            );
        }
        assert_bits_eq(
            &wait_finished(&server, after_id).decoded,
            &run_solo(&w, &after, 1).unwrap(),
        );
    }

    #[test]
    fn run_solo_rejects_nonfinite_prompt() {
        let w = weights();
        let mut p = prompt(2, 0);
        p[(0, 1)] = f32::NEG_INFINITY;
        assert!(run_solo(&w, &p, 1).is_err());
    }

    #[test]
    fn wait_misuse_returns_typed_errors_instead_of_panicking() {
        let server = Server::start(weights(), ServeConfig::default());
        assert_eq!(server.wait(99), Err(ServeError::UnknownRequest { id: 99 }));
        let id = server.submit(prompt(2, 0), 1).unwrap();
        assert!(server.wait(id).is_ok());
        assert_eq!(server.wait(id), Err(ServeError::AlreadyConsumed { id }));
        assert_eq!(
            server.cancel(77),
            Err(ServeError::UnknownRequest { id: 77 })
        );
    }

    #[test]
    fn submit_after_shutdown_returns_error_and_shutdown_is_idempotent() {
        let mut server = Server::start(weights(), ServeConfig::default());
        let id = server.submit(prompt(2, 0), 2).unwrap();
        let stats = server.shutdown();
        // The drain resolved the in-flight request before the join.
        assert!(stats.steps >= 1);
        assert!(wait_finished(&server, id).decoded.rows() == 2);
        assert_eq!(server.submit(prompt(2, 1), 1), Err(ServeError::ShutDown));
        server.shutdown(); // second call is a no-op
    }

    #[test]
    fn abort_cancels_queued_and_in_flight_work() {
        let w = weights();
        let mut server = Server::start(
            Arc::clone(&w),
            ServeConfig {
                max_batch: 1, // force a queue to build up
                ..ServeConfig::default()
            },
        );
        let ids: Vec<u64> = (0..4)
            .map(|i| server.submit(prompt(2, i), 200).unwrap())
            .collect();
        let stats = server.abort();
        assert_eq!(stats.cancelled, 4);
        for id in ids {
            let out = server.wait(id).unwrap();
            assert!(
                matches!(out, RequestOutcome::Cancelled { .. }),
                "{id}: {}",
                out.kind()
            );
        }
        assert_eq!(w.open_sessions(), 0, "aborted sessions must be released");
    }

    #[test]
    fn cancel_releases_kv_and_leaves_survivors_bit_identical() {
        let w = weights();
        let server = Server::start(Arc::clone(&w), ServeConfig::default());
        let keep = prompt(3, 0);
        let keep_id = server.submit(keep.clone(), 40).unwrap();
        let victim = server.submit(prompt(2, 1), 5_000).unwrap();
        assert!(server.cancel(victim).unwrap());
        let out = server.wait(victim).unwrap();
        assert!(
            matches!(out, RequestOutcome::Cancelled { .. }),
            "{}",
            out.kind()
        );
        // The engine keeps scheduling and the survivor's stream is intact.
        let done = wait_finished(&server, keep_id);
        assert_bits_eq(&done.decoded, &run_solo(&w, &keep, 40).unwrap());
        assert!(server.stats().cancelled >= 1);
        // Cancel after resolution is a no-op.
        assert!(!server.cancel(victim).unwrap());
    }

    #[test]
    fn step_deadline_expires_queued_and_in_flight_requests() {
        let w = weights();
        let server = Server::start(Arc::clone(&w), ServeConfig::default());
        // Deadline of 0 steps: expired at the first lifecycle pass,
        // before ever being stepped.
        let dead = server
            .submit_with(
                prompt(2, 0),
                3,
                RequestOptions {
                    deadline_steps: Some(0),
                    ..RequestOptions::default()
                },
            )
            .unwrap();
        // A short step deadline on a long request: admitted, then expired
        // mid-flight with partial progress.
        let slow = server
            .submit_with(
                prompt(2, 1),
                10_000,
                RequestOptions {
                    deadline_steps: Some(4),
                    ..RequestOptions::default()
                },
            )
            .unwrap();
        let live = server.submit(prompt(2, 2), 2).unwrap();
        assert!(matches!(
            server.wait(dead).unwrap(),
            RequestOutcome::DeadlineExceeded { decoded_tokens: 0 }
        ));
        assert!(matches!(
            server.wait(slow).unwrap(),
            RequestOutcome::DeadlineExceeded { .. }
        ));
        assert_eq!(wait_finished(&server, live).decoded.rows(), 2);
        assert_eq!(server.stats().deadline_exceeded, 2);
        drop(server);
        assert_eq!(w.open_sessions(), 0, "expired sessions must be released");
    }

    #[test]
    fn generous_wall_deadline_does_not_expire_a_short_request() {
        let server = Server::start(weights(), ServeConfig::default());
        let id = server
            .submit_with(
                prompt(2, 0),
                2,
                RequestOptions {
                    deadline: Some(std::time::Duration::from_secs(600)),
                    ..RequestOptions::default()
                },
            )
            .unwrap();
        assert_eq!(wait_finished(&server, id).decoded.rows(), 2);
    }

    #[test]
    fn bounded_queue_sheds_overload_with_queue_depth() {
        let w = weights();
        let server = Server::start(
            Arc::clone(&w),
            ServeConfig {
                max_batch: 1,
                queue_capacity: 2,
                ..ServeConfig::default()
            },
        );
        // Submit a burst far past capacity; the engine races the
        // submissions, so we only know *at least* burst - capacity -
        // in-flight requests resolve, and every shed one carries the
        // observed depth.
        let ids: Vec<u64> = (0..8)
            .map(|i| server.submit(prompt(2, i), 30).unwrap())
            .collect();
        let mut rejected = 0u64;
        for id in ids {
            match server.wait(id).unwrap() {
                RequestOutcome::Rejected { queue_depth } => {
                    assert!(queue_depth >= 2, "shed below capacity");
                    rejected += 1;
                }
                RequestOutcome::Finished(c) => assert_eq!(c.decoded.rows(), 30),
                other => panic!("unexpected outcome {}", other.kind()),
            }
        }
        assert!(rejected > 0, "an 8-burst into capacity 2 must shed");
        let stats = server.stats();
        assert_eq!(stats.rejected, rejected);
        assert!(stats.peak_queue_depth <= 2);
    }

    #[test]
    fn kv_budget_degrades_to_serial_admission_but_serves_everything() {
        let w = weights();
        // A 1-byte budget: any non-empty KV footprint is over it, so the
        // engine degrades to one admitted request at a time — but always
        // at least one, so everything still completes, bit-identically.
        let server = Server::start(
            Arc::clone(&w),
            ServeConfig {
                max_batch: 4,
                kv_budget_bytes: 1,
                ..ServeConfig::default()
            },
        );
        let reqs: Vec<(Matrix, usize)> = (0..4).map(|i| (prompt(2, i), 3)).collect();
        let ids: Vec<u64> = reqs
            .iter()
            .map(|(p, d)| server.submit(p.clone(), *d).unwrap())
            .collect();
        for (id, (p, d)) in ids.iter().zip(&reqs) {
            let out = wait_finished(&server, *id);
            assert_bits_eq(&out.decoded, &run_solo(&w, p, *d).unwrap());
        }
    }

    #[test]
    fn injected_step_panic_fails_only_the_victim_bitwise() {
        let w = weights();
        let plan = FaultPlan::new(vec![Fault::StepPanic { tick: 2, slot: 0 }]);
        let server = Server::start_with_faults(
            Arc::clone(&w),
            ServeConfig {
                max_batch: 4,
                ..ServeConfig::default()
            },
            plan,
        );
        let reqs: Vec<(Matrix, usize)> = (0..3).map(|i| (prompt(2 + i, i), 8)).collect();
        let ids: Vec<u64> = reqs
            .iter()
            .map(|(p, d)| server.submit(p.clone(), *d).unwrap())
            .collect();
        let mut failures = 0;
        for (id, (p, d)) in ids.iter().zip(&reqs) {
            match server.wait(*id).unwrap() {
                RequestOutcome::Failed { error } => {
                    assert!(error.contains("injected fault"), "{error}");
                    failures += 1;
                }
                RequestOutcome::Finished(c) => {
                    // Survivors replayed through recovery still match solo.
                    assert_bits_eq(&c.decoded, &run_solo(&w, p, *d).unwrap());
                }
                other => panic!("unexpected outcome {}", other.kind()),
            }
        }
        assert_eq!(failures, 1, "exactly the victim fails");
        let stats = server.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.recovery_ticks, 1);
        // One caught panic in the batched step + one in the victim's
        // isolated replay — the exact-attribution invariant.
        assert_eq!(stats.panics_recovered, 2);
        drop(server);
        assert_eq!(w.open_sessions(), 0);
    }

    #[test]
    fn injected_delay_and_cancel_leave_survivors_exact() {
        let w = weights();
        let plan = FaultPlan::new(vec![
            Fault::Delay {
                tick: 1,
                micros: 200,
            },
            Fault::CancelActive { tick: 5, slot: 1 },
        ]);
        let server = Server::start_with_faults(
            Arc::clone(&w),
            ServeConfig {
                max_batch: 4,
                ..ServeConfig::default()
            },
            plan,
        );
        let reqs: Vec<(Matrix, usize)> = (0..3).map(|i| (prompt(2, i), 10)).collect();
        let ids: Vec<u64> = reqs
            .iter()
            .map(|(p, d)| server.submit(p.clone(), *d).unwrap())
            .collect();
        let mut cancelled = 0;
        for (id, (p, d)) in ids.iter().zip(&reqs) {
            match server.wait(*id).unwrap() {
                RequestOutcome::Cancelled { .. } => cancelled += 1,
                RequestOutcome::Finished(c) => {
                    assert_bits_eq(&c.decoded, &run_solo(&w, p, *d).unwrap());
                }
                other => panic!("unexpected outcome {}", other.kind()),
            }
        }
        assert_eq!(cancelled, 1, "exactly the targeted slot is cancelled");
        assert_eq!(server.stats().cancelled, 1);
        drop(server);
        assert_eq!(w.open_sessions(), 0);
    }

    #[test]
    fn streamed_tokens_match_solo_bitwise_and_arrive_incrementally() {
        let w = weights();
        let server = Server::start(Arc::clone(&w), ServeConfig::default());
        let p = prompt(3, 0);
        let id = server
            .submit_with(
                p.clone(),
                5,
                RequestOptions {
                    stream: true,
                    ..RequestOptions::default()
                },
            )
            .unwrap();
        let mut streamed = Matrix::zeros(0, 64);
        let mut indices = Vec::new();
        let outcome = server
            .wait_streaming(id, |i, row| {
                indices.push(i);
                streamed.push_rows(row);
            })
            .unwrap();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
        let done = outcome.finished().expect("no faults in play");
        assert_bits_eq(&streamed, &run_solo(&w, &p, 5).unwrap());
        assert_bits_eq(&done.decoded, &streamed);
        // The outcome was consumed by the streaming wait.
        assert_eq!(server.wait(id), Err(ServeError::AlreadyConsumed { id }));
    }

    #[test]
    fn next_token_without_stream_flag_blocks_until_done() {
        let w = weights();
        let server = Server::start(Arc::clone(&w), ServeConfig::default());
        let p = prompt(2, 1);
        let id = server.submit(p.clone(), 2).unwrap();
        match server.next_token(id, 0).unwrap() {
            crate::StreamEvent::Done(outcome) => {
                let done = outcome.finished().expect("no faults in play");
                assert_bits_eq(&done.decoded, &run_solo(&w, &p, 2).unwrap());
            }
            crate::StreamEvent::Token { .. } => panic!("request did not opt into streaming"),
        }
    }

    #[test]
    fn streaming_cancel_ends_stream_with_cancelled_outcome() {
        let w = weights();
        let server = Server::start(Arc::clone(&w), ServeConfig::default());
        let p = prompt(2, 2);
        let id = server
            .submit_with(
                p.clone(),
                100_000,
                RequestOptions {
                    stream: true,
                    ..RequestOptions::default()
                },
            )
            .unwrap();
        // Pull at least one token, then cancel mid-stream.
        let first = server.next_token(id, 0).unwrap();
        let solo = run_solo(&w, &p, 2).unwrap();
        match first {
            crate::StreamEvent::Token { index, ref row } => {
                assert_eq!(index, 0);
                assert_bits_eq(row, &Matrix::from_vec(1, 64, solo.row(0).to_vec()));
            }
            crate::StreamEvent::Done(_) => panic!("a 100k-step request cannot be done yet"),
        }
        server.cancel(id).unwrap();
        let mut tokens = 1usize;
        let outcome = loop {
            match server.next_token(id, tokens).unwrap() {
                crate::StreamEvent::Token { ref row, .. } => {
                    // Every token streamed before the cancel lands is still
                    // bit-identical to the solo prefix.
                    if tokens < solo.rows() {
                        assert_bits_eq(row, &Matrix::from_vec(1, 64, solo.row(tokens).to_vec()));
                    }
                    tokens += 1;
                }
                crate::StreamEvent::Done(outcome) => break outcome,
            }
        };
        assert!(
            matches!(outcome, RequestOutcome::Cancelled { .. }),
            "{}",
            outcome.kind()
        );
        drop(server);
        assert_eq!(w.open_sessions(), 0);
    }

    #[test]
    fn streaming_survives_panic_recovery_bitwise() {
        // A step panic mid-stream: the victim fails, the streaming
        // survivor's published prefix stays valid and the rest of its
        // stream arrives bit-identical to solo.
        let w = weights();
        // Slot 0 is the victim: submitted first, so it occupies the first
        // batch slot from tick 0 regardless of how the engine's ticks race
        // the second submission.
        let plan = FaultPlan::new(vec![Fault::StepPanic { tick: 3, slot: 0 }]);
        let server = Server::start_with_faults(Arc::clone(&w), ServeConfig::default(), plan);
        let victim = server.submit(prompt(2, 4), 5_000).unwrap();
        let p = prompt(2, 3);
        let streamer = server
            .submit_with(
                p.clone(),
                8,
                RequestOptions {
                    stream: true,
                    ..RequestOptions::default()
                },
            )
            .unwrap();
        let mut streamed = Matrix::zeros(0, 64);
        let outcome = server
            .wait_streaming(streamer, |_, row| streamed.push_rows(row))
            .unwrap();
        assert!(outcome.finished().is_some());
        assert_bits_eq(&streamed, &run_solo(&w, &p, 8).unwrap());
        assert!(matches!(
            server.wait(victim).unwrap(),
            RequestOutcome::Failed { .. }
        ));
    }

    #[test]
    fn healthy_tracks_shutdown() {
        let mut server = Server::start(weights(), ServeConfig::default());
        assert!(server.healthy());
        server.shutdown();
        assert!(!server.healthy());
    }

    #[test]
    fn telemetry_histograms_and_trace_cover_the_request_lifecycle() {
        use m2x_telemetry::stage;
        let w = weights();
        let server = Server::start(Arc::clone(&w), ServeConfig::default());
        let id = server.submit(prompt(2, 0), 3).unwrap();
        wait_finished(&server, id);
        let snap = server.telemetry_snapshot();
        assert!(snap.step_us.count() >= 4, "prefill + 3 decode ticks");
        assert_eq!(snap.ttft_us.count(), 1);
        assert_eq!(snap.queue_wait_us.count(), 1);
        assert_eq!(snap.tokens_per_request.count(), 1);
        assert_eq!(snap.tokens_per_request.sum(), 3);
        assert!(snap.stages.stage_sum_ns() > 0, "stage clocks booked time");
        assert!(server.stats().p99_step_us > 0.0);
        // The drained trace holds the full lifecycle, exactly once each.
        let rings = server.telemetry().drain();
        let events: Vec<_> = rings.iter().flat_map(|r| r.events.iter()).collect();
        let count = |s: u16| events.iter().filter(|e| e.stage == s).count();
        assert_eq!(count(stage::REQ_SUBMITTED), 1);
        assert_eq!(count(stage::REQ_ADMITTED), 1);
        assert_eq!(count(stage::REQ_PREFILL), 1);
        assert_eq!(count(stage::REQ_TOKEN), 3);
        assert_eq!(count(stage::REQ_FINISHED), 1);
        assert!(count(stage::TICK) >= 4);
    }

    #[test]
    fn telemetry_disabled_records_no_trace_but_keeps_stats() {
        let w = weights();
        let server = Server::start(
            Arc::clone(&w),
            ServeConfig {
                telemetry: false,
                ..ServeConfig::default()
            },
        );
        let id = server.submit(prompt(2, 0), 2).unwrap();
        wait_finished(&server, id);
        assert_eq!(server.telemetry().buffered(), 0, "tracing is off");
        let snap = server.telemetry_snapshot();
        assert_eq!(snap.stages.stage_sum_ns(), 0, "stage clocks are off");
        // Latency histograms stay on: they back ServeStats::p99_step_us.
        assert!(snap.step_us.count() >= 3);
        assert!(server.stats().p99_step_us > 0.0);
    }

    #[test]
    fn shared_prefix_adoption_is_bit_identical_and_counted() {
        let w = weights();
        let server = Server::start(Arc::clone(&w), ServeConfig::default());
        // 40 tokens with the default 32-token pages: one full (freezable)
        // page + an 8-row tail.
        let base = prompt(40, 11);
        let a = server.submit(base.clone(), 3).unwrap();
        let out_a = wait_finished(&server, a);
        assert_bits_eq(&out_a.decoded, &run_solo(&w, &base, 3).unwrap());
        // Same prompt again: adopts the frozen prefix page, must still be
        // bit-identical — including the stitched full-prompt prefill_out.
        let b = server.submit(base.clone(), 3).unwrap();
        let out_b = wait_finished(&server, b);
        assert_bits_eq(&out_b.decoded, &out_a.decoded);
        assert_bits_eq(&out_b.prefill_out, &out_a.prefill_out);
        // A prompt diverging only in the suffix shares the prefix page
        // but must produce its own (solo-exact) stream.
        let mut fork = base.clone();
        for c in 0..64 {
            fork[(36, c)] = (fork[(36, c)] * 0.5) + 0.01;
        }
        let c_id = server.submit(fork.clone(), 2).unwrap();
        let out_c = wait_finished(&server, c_id);
        assert_bits_eq(&out_c.decoded, &run_solo(&w, &fork, 2).unwrap());
        let stats = server.stats();
        assert!(stats.kv_prefix_hits >= 2, "hits {}", stats.kv_prefix_hits);
        assert!(stats.kv_page_allocs > 0);
        drop(server);
        assert_eq!(w.open_sessions(), 0);
        // Shutdown cleared the prefix index: every page is back on the
        // free list, none in use.
        assert_eq!(w.kv_pool().stats().pages_in_use, 0);
    }

    #[test]
    fn feedback_token_uses_last_row() {
        let y = Matrix::from_vec(2, 2, vec![9.0, 9.0, 1.0, -1.0]);
        let t = feedback_token(&y);
        assert_eq!(t.rows(), 1);
        assert!((t[(0, 0)] - 0.25f32.tanh()).abs() < 1e-7);
        assert!(t[(0, 1)] < 0.0);
    }
}
