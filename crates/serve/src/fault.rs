//! Deterministic fault injection for the serving engine — the chaos half
//! of the fault-tolerance story.
//!
//! A [`FaultPlan`] is a fixed, seed-reproducible schedule of faults fired
//! by the engine thread at planned scheduler ticks:
//!
//! * [`Fault::StepPanic`] — panic out of the batched model step (after the
//!   step's compute, so session state *has* advanced when the panic lands:
//!   the worst case for the recovery path);
//! * [`Fault::Delay`] — an artificial stall before the step, perturbing
//!   every wall-clock race (arrival interleavings, deadline expiry, waiter
//!   wakeups) without touching any computed bit;
//! * [`Fault::CancelActive`] — a mid-flight cancellation of whatever
//!   request occupies a batch slot at that tick, exercising the
//!   release-between-steps path from inside the engine.
//!
//! Faults target **batch slots**, not request ids: a plan written before
//! any request exists still lands on real in-flight work, and a slot that
//! happens to be empty makes the fault a no-op (recorded nowhere — the
//! chaos tests count *observed* outcomes, not planned faults).
//!
//! The plan is std-only and seeded through the in-repo xoshiro generator,
//! so a failing chaos case reproduces from its seed alone. At most one
//! [`Fault::StepPanic`] is scheduled per tick: the engine's recovery then
//! catches exactly two panics per fired injection (the batched step and
//! the victim's isolated replay), which `tests/proptest_chaos.rs` uses to
//! pin "every injected fault fails exactly one request".

use m2x_tensor::Xoshiro;

/// One scheduled fault (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic out of the batched step at `tick`, attributed to the request
    /// in batch slot `slot` (no-op if the slot is empty that tick).
    StepPanic {
        /// Scheduler step count the fault fires at.
        tick: u64,
        /// Active-batch slot whose request the panic is pinned on.
        slot: usize,
    },
    /// Stall the engine for `micros` before the step at `tick`.
    Delay {
        /// Scheduler step count the fault fires at.
        tick: u64,
        /// Stall length in microseconds.
        micros: u64,
    },
    /// Cancel the request in batch slot `slot` right before the step at
    /// `tick` (no-op if the slot is empty).
    CancelActive {
        /// Scheduler step count the fault fires at.
        tick: u64,
        /// Active-batch slot to cancel.
        slot: usize,
    },
}

impl Fault {
    fn tick(&self) -> u64 {
        match *self {
            Fault::StepPanic { tick, .. }
            | Fault::Delay { tick, .. }
            | Fault::CancelActive { tick, .. } => tick,
        }
    }
}

/// A deterministic schedule of engine faults, sorted by tick and consumed
/// once as the engine's step counter passes each fault's tick.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Sorted by tick (stable: same-tick faults keep insertion order).
    faults: Vec<Fault>,
    /// Index of the first fault not yet handed out.
    next: usize,
}

impl FaultPlan {
    /// The empty plan — what [`Server::start`](crate::Server::start) runs
    /// under.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan firing the given faults, sorted by tick. If several
    /// [`Fault::StepPanic`]s share a tick, only the first is kept (one
    /// panic per tick keeps fault→failure attribution exact; see the
    /// [module docs](self)).
    pub fn new(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(Fault::tick);
        let mut panic_ticks = std::collections::BTreeSet::new();
        faults.retain(|f| match f {
            Fault::StepPanic { tick, .. } => panic_ticks.insert(*tick),
            _ => true,
        });
        FaultPlan { faults, next: 0 }
    }

    /// A seed-reproducible random plan: `panics`/`delays`/`cancels` faults
    /// scattered over ticks `0..horizon`, slots `0..max_slot`, delays up
    /// to `max_delay_us`. Panic ticks are kept distinct (see
    /// [`FaultPlan::new`]); a horizon smaller than `panics` caps the
    /// panic count.
    pub fn seeded(
        seed: u64,
        horizon: u64,
        max_slot: usize,
        panics: usize,
        delays: usize,
        cancels: usize,
        max_delay_us: u64,
    ) -> Self {
        let mut rng = Xoshiro::seed(seed ^ 0xFA_17_BD_5E);
        let horizon = horizon.max(1);
        let slots = max_slot.max(1);
        let mut faults = Vec::with_capacity(panics + delays + cancels);
        for _ in 0..panics {
            faults.push(Fault::StepPanic {
                tick: rng.below(horizon as usize) as u64,
                slot: rng.below(slots),
            });
        }
        for _ in 0..delays {
            faults.push(Fault::Delay {
                tick: rng.below(horizon as usize) as u64,
                micros: 1 + rng.below(max_delay_us.max(1) as usize) as u64,
            });
        }
        for _ in 0..cancels {
            faults.push(Fault::CancelActive {
                tick: rng.below(horizon as usize) as u64,
                slot: rng.below(slots),
            });
        }
        FaultPlan::new(faults)
    }

    /// True if no faults remain to fire.
    pub fn is_empty(&self) -> bool {
        self.next >= self.faults.len()
    }

    /// Total faults scheduled (fired or not).
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Hands out (consumes) every not-yet-fired fault scheduled at or
    /// before `tick`, in schedule order.
    pub(crate) fn take_due(&mut self, tick: u64) -> &[Fault] {
        let start = self.next;
        while self.next < self.faults.len() && self.faults[self.next].tick() <= tick {
            self.next += 1;
        }
        &self.faults[start..self.next]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_and_consumes_in_tick_order() {
        let mut plan = FaultPlan::new(vec![
            Fault::Delay { tick: 5, micros: 9 },
            Fault::CancelActive { tick: 1, slot: 0 },
            Fault::StepPanic { tick: 3, slot: 2 },
        ]);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.take_due(0), &[]);
        assert_eq!(plan.take_due(3).len(), 2); // ticks 1 and 3
        assert_eq!(plan.take_due(3), &[]); // consumed once
        assert_eq!(plan.take_due(99), &[Fault::Delay { tick: 5, micros: 9 }]);
        assert!(plan.is_empty());
    }

    #[test]
    fn at_most_one_step_panic_per_tick() {
        let plan = FaultPlan::new(vec![
            Fault::StepPanic { tick: 2, slot: 0 },
            Fault::StepPanic { tick: 2, slot: 1 },
            Fault::Delay { tick: 2, micros: 1 },
            Fault::StepPanic { tick: 4, slot: 1 },
        ]);
        let panics = plan
            .faults
            .iter()
            .filter(|f| matches!(f, Fault::StepPanic { .. }))
            .count();
        assert_eq!(panics, 2);
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::seeded(42, 20, 4, 3, 2, 2, 50);
        let b = FaultPlan::seeded(42, 20, 4, 3, 2, 2, 50);
        assert_eq!(a.faults, b.faults);
        assert!(a.len() <= 7);
        for f in &a.faults {
            assert!(f.tick() < 20);
            match *f {
                Fault::StepPanic { slot, .. } | Fault::CancelActive { slot, .. } => {
                    assert!(slot < 4)
                }
                Fault::Delay { micros, .. } => assert!((1..=50).contains(&micros)),
            }
        }
        let c = FaultPlan::seeded(43, 20, 4, 3, 2, 2, 50);
        assert_ne!(a.faults, c.faults, "different seeds, different plans");
    }
}
