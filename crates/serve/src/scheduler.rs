//! The continuous-batching scheduler: an arrival queue with admission
//! control, one engine thread stepping every in-flight request's rows
//! through a single batched model call per scheduler step, and a
//! fault-tolerant request lifecycle ending in a typed [`RequestOutcome`].
//!
//! ```text
//!            shed (queue full) ──► Rejected
//!                 │
//!  submit() ──► pending (FIFO, bounded) ──admit (≤ max_batch,
//!                 │                        ≤ KV budget)──► active
//!                 │ deadline                                │ every tick:
//!                 ▼                          cancel/deadline│  faults? →
//!            DeadlineExceeded   Cancelled ◄────(released    │  stack rows →
//!                                               between     │  step_sessions
//!                                               steps)      │  (catch_unwind)
//!                                                           │      │ panic?
//!                                              Failed ◄── isolate ◄┘
//!  wait(id) ◄── outcome map ◄── retire finished ◄───────────┘
//! ```
//!
//! Requests are admitted and stepped in arrival order, so a given request
//! stream is reproducible run to run; and because every output row depends
//! only on its own request's rows and KV cache, each request's outputs are
//! bit-identical to a solo run no matter how arrivals interleave with the
//! engine's steps — including across cancellations, deadline expiry and
//! panic recovery of *other* requests in the same batch.
//!
//! # Failure semantics
//!
//! * Every submitted id resolves to exactly one [`RequestOutcome`],
//!   consumed once by [`Server::wait`]. Misuse (unknown id, double wait)
//!   is a typed [`ServeError`], not a panic or a hang.
//! * Cancelled and deadline-expired requests release their session
//!   **between** steps, so their KV memory is reclaimed before the next
//!   admission and never mid-computation.
//! * A panic inside the batched step (a worker thread, a kernel, or an
//!   injected [`Fault::StepPanic`](crate::fault::Fault)) is caught with
//!   `catch_unwind`. Generation is closed-loop deterministic from the
//!   prompt, so recovery resets every in-flight session and re-steps each
//!   request in isolation: the request that reproduces the failure gets a
//!   [`RequestOutcome::Failed`] and is released; every survivor replays to
//!   a stream still bit-identical to its solo run. The engine keeps
//!   scheduling.
//! * Locks poisoned by a panic are recovered (`lock_queues`); shared
//!   state is only ever mutated under the lock in panic-free sections, so
//!   recovered guards still see consistent data.

use crate::fault::{Fault, FaultPlan};
use crate::sync::{lock_poisoned, wait_poisoned};
use crate::{feedback_token, RequestOptions, ServeConfig};
use m2x_nn::model::{ModelWeights, SessionState, StepScratch};
use m2x_telemetry::{stage, Histogram, StageTally, Telemetry, TraceHandle};
use m2x_tensor::Matrix;
use m2xfp::Error;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine trace-ring capacity (events): sized for thousands of ticks of
/// TICK + stage spans + token instants between `/v1/trace` drains.
const ENGINE_RING_EVENTS: usize = 16_384;

/// API trace-ring capacity (events): submit/reject/cancel instants.
const API_RING_EVENTS: usize = 4_096;

/// A finished request: its decode outputs plus scheduling metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Completed {
    /// The id [`Server::submit`] returned.
    pub id: u64,
    /// Outputs of the prompt rows (the prefill step).
    pub prefill_out: Matrix,
    /// Stacked outputs of the decode steps (`[decode_steps, hidden]`).
    pub decoded: Matrix,
    /// Scheduler step count when the request was admitted.
    pub arrived_step: u64,
    /// Scheduler step count when the request finished; `finished_step -
    /// arrived_step` is the request's latency in scheduler steps.
    pub finished_step: u64,
}

/// How a submitted request ended. Every id handed out by
/// [`Server::submit`] resolves to exactly one of these, consumed once by
/// [`Server::wait`].
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// Ran to completion; the payload is the full result.
    Finished(Completed),
    /// Cancelled — by [`Server::cancel`], [`Server::abort`], or an
    /// injected [`Fault::CancelActive`](crate::fault::Fault) — before it
    /// finished. Its session was released between steps.
    Cancelled {
        /// Decode tokens produced before the cancellation took effect.
        decoded_tokens: u64,
    },
    /// Missed its deadline (scheduler-step or wall-clock) and was expired
    /// between steps, whether still queued or already in flight.
    DeadlineExceeded {
        /// Decode tokens produced before expiry (0 if never admitted).
        decoded_tokens: u64,
    },
    /// Shed at submission: the bounded arrival queue was full
    /// ([`ServeConfig::queue_capacity`]). The request never touched the
    /// engine.
    Rejected {
        /// Queue depth observed when the request was shed.
        queue_depth: usize,
    },
    /// The engine's step failed for this specific request — a caught
    /// panic or model error reproduced in isolation — and the request was
    /// released. Concurrent requests keep running.
    Failed {
        /// The panic message or model error, for diagnostics.
        error: String,
    },
}

impl RequestOutcome {
    /// The completed result, if the request [`Finished`](Self::Finished).
    pub fn finished(self) -> Option<Completed> {
        match self {
            RequestOutcome::Finished(c) => Some(c),
            _ => None,
        }
    }

    /// A short stable label for logs/metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            RequestOutcome::Finished(_) => "finished",
            RequestOutcome::Cancelled { .. } => "cancelled",
            RequestOutcome::DeadlineExceeded { .. } => "deadline_exceeded",
            RequestOutcome::Rejected { .. } => "rejected",
            RequestOutcome::Failed { .. } => "failed",
        }
    }
}

/// Typed misuse/liveness errors of the serving API — every former
/// panic-on-misuse path of [`Server::wait`]/[`Server::submit`] lands here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The id was never issued by this server.
    UnknownRequest {
        /// The offending id.
        id: u64,
    },
    /// The id's outcome was already consumed by an earlier
    /// [`Server::wait`] (outcomes are handed out once).
    AlreadyConsumed {
        /// The offending id.
        id: u64,
    },
    /// The server was shut down; no new work is accepted.
    ShutDown,
    /// The engine thread died without resolving this request — only
    /// reachable if a panic escapes the engine's isolation, which the
    /// chaos tests exist to rule out.
    EngineDown {
        /// Why the engine is gone.
        reason: String,
    },
    /// Submit-time validation failed (shape, width, non-finite values).
    Invalid(Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownRequest { id } => {
                write!(f, "request {id} was never submitted to this server")
            }
            ServeError::AlreadyConsumed { id } => {
                write!(f, "request {id}'s outcome was already consumed")
            }
            ServeError::ShutDown => write!(f, "server is shut down"),
            ServeError::EngineDown { reason } => write!(f, "serve engine is down: {reason}"),
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Error> for ServeError {
    fn from(e: Error) -> Self {
        ServeError::Invalid(e)
    }
}

/// Aggregate scheduler counters (monotonic over the server's lifetime),
/// snapshotted by [`Server::stats`] — the numbers the `m2x-gateway`
/// `/metrics` endpoint renders.
///
/// ```
/// use m2x_nn::model::ModelBuilder;
/// use m2x_nn::profile::ModelProfile;
/// use m2x_serve::{ServeConfig, ServeError, Server};
/// use m2x_tensor::Matrix;
/// use std::sync::Arc;
///
/// let weights = Arc::new(
///     ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1).build_weights()?,
/// );
/// let server = Server::start(weights, ServeConfig::default());
/// let prompt = Matrix::from_fn(1, 64, |_, c| (c as f32 * 0.02).cos() * 0.3);
/// let id = server.submit(prompt, 3)?;
/// server.wait(id)?;
/// let stats = server.stats();
/// assert_eq!(stats.decoded_tokens, 3);
/// assert!(stats.steps >= 4); // prefill + 3 decode steps
/// # Ok::<(), ServeError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Batched scheduler steps executed.
    pub steps: u64,
    /// Total decode tokens produced across all requests (tokens discarded
    /// by a recovery replay are not double-counted).
    pub decoded_tokens: u64,
    /// Largest number of requests in flight during one step.
    pub peak_batch: usize,
    /// Requests shed at submission because the arrival queue was full.
    pub rejected: u64,
    /// Requests cancelled (explicitly or by [`Server::abort`]).
    pub cancelled: u64,
    /// Requests expired past their deadline.
    pub deadline_exceeded: u64,
    /// Requests failed by a step panic or model error.
    pub failed: u64,
    /// Panics caught by the engine's isolation (each batched attempt and
    /// each isolated replay counts one).
    pub panics_recovered: u64,
    /// Scheduler ticks that ran the reset-and-replay recovery pass.
    pub recovery_ticks: u64,
    /// Largest arrival-queue depth observed at submission.
    pub peak_queue_depth: usize,
    /// p99 engine step latency in µs over the server's lifetime, derived
    /// from the step-latency [`Histogram`] (0 until a step has run;
    /// quantiles carry the histogram's ≤ 1/16 relative bucket error).
    pub p99_step_us: f64,
    /// KV pool pages currently held by live sessions (gauge; shared
    /// prefix pages count once per holder).
    pub kv_pages_in_use: u64,
    /// High-water mark of [`kv_pages_in_use`](Self::kv_pages_in_use).
    pub kv_peak_pages: u64,
    /// KV pool pages allocated fresh (free list empty at acquire).
    pub kv_page_allocs: u64,
    /// KV pool pages recycled from the free list — the pool's hit
    /// counter; `reuses / (allocs + reuses)` is the hit rate.
    pub kv_page_reuses: u64,
    /// Copy-on-write forks: a session wrote into a page shared with
    /// another holder (or frozen in the prefix index) and got a private
    /// copy instead of mutating the shared bits.
    pub kv_cow_clones: u64,
    /// Prefix-cache hits: frozen pages adopted by an admitted request
    /// whose prompt starts with an already-served prefix.
    pub kv_prefix_hits: u64,
    /// Prefix-cache lookups that adopted nothing (no indexed prefix, or
    /// the first page already diverged).
    pub kv_prefix_misses: u64,
    /// Pages currently referenced by more than one holder (gauge) —
    /// nonzero exactly while prefix sharing is live.
    pub kv_shared_pages: u64,
    /// Pages parked on the pool's free list, ready for O(1) reuse
    /// (gauge).
    pub kv_free_pages: u64,
    /// **Packed** KV bytes held by in-flight sessions (gauge): the
    /// three-stream payload (FP4 codes | E8M0 scales | 2-bit meta) —
    /// exactly what [`ServeConfig::kv_budget_bytes`](crate::ServeConfig)
    /// meters at admission. Shared pages count once per holder, matching
    /// the admission sum.
    pub kv_packed_bytes: u64,
    /// **Decoded** KV bytes held by in-flight sessions (gauge): the f32
    /// exec planes the prepared K streams cache plus the dequantized V
    /// row cache. Reported for honest accounting — this memory exists —
    /// but *not* gated: the budget meters the packed payload above.
    pub kv_decoded_bytes: u64,
    /// Unused token-row fraction of the pages in flight (gauge):
    /// `1 - tokens / (pages × page_tokens)`, 0.0 when no pages are held.
    /// High values mean many partially-filled tail pages.
    pub kv_fragmentation: f64,
}

/// A point-in-time copy of the scheduler's latency histograms and
/// per-stage time split, taken by [`Server::telemetry_snapshot`] — the
/// data behind the `m2x-gateway` `/metrics` histogram families and the
/// bench driver's per-stage breakdown. Unlike [`Telemetry::drain`] this
/// is non-destructive: histograms and the stage tally accumulate over the
/// server's lifetime.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Engine step (tick) wall latency, µs.
    pub step_us: Histogram,
    /// Time to first decode token, µs from submission (queue wait
    /// included); one sample per request that produced at least one token.
    pub ttft_us: Histogram,
    /// Queue wait, µs from submission to admission; one sample per
    /// admitted request.
    pub queue_wait_us: Histogram,
    /// Decode tokens delivered per resolved request (0 for requests that
    /// never produced one — rejected, expired-in-queue, failed).
    pub tokens_per_request: Histogram,
    /// Cumulative per-stage engine time over all ticks (see
    /// [`stage`]): assemble/encode/qgemm/attention/kv_append/feedback.
    pub stages: StageTally,
}

/// One decode-step event of a streaming request, returned by
/// [`Server::next_token`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// Decode step `index` produced `row` (`[1, hidden]`) — bit-identical
    /// to row `index` of the solo run's decode output, even across panic
    /// recovery (a replay regenerates the same bits, so an already
    /// streamed prefix is never invalidated).
    Token {
        /// Zero-based decode-step index of this row.
        index: usize,
        /// The decode output row.
        row: Matrix,
    },
    /// The request resolved and no further tokens will arrive. Consumes
    /// the outcome exactly like [`Server::wait`] (a later `wait`/
    /// `next_token` on the same id is [`ServeError::AlreadyConsumed`]).
    Done(RequestOutcome),
}

struct Pending {
    id: u64,
    prompt: Matrix,
    decode_steps: usize,
    /// Step counter to expire at, if a step deadline was set.
    expires_step: Option<u64>,
    /// Wall-clock instant to expire at, if a wall deadline was set.
    expires_at: Option<Instant>,
    /// Publish decode rows incrementally ([`RequestOptions::stream`]).
    stream: bool,
    /// When the request was submitted (queue-wait / TTFT base).
    submitted_at: Instant,
    /// Submission time on the telemetry clock, for lifecycle spans.
    submitted_us: u64,
}

impl Pending {
    fn expired(&self, now_step: u64, now: Instant) -> bool {
        self.expires_step.is_some_and(|s| now_step >= s)
            || self.expires_at.is_some_and(|t| now >= t)
    }
}

/// One in-flight request, owned by the engine thread between steps.
struct Active {
    id: u64,
    /// The original prompt, kept so a recovery pass can replay the request
    /// from scratch (generation is closed-loop deterministic).
    prompt: Matrix,
    decode_steps: usize,
    session: SessionState,
    next_input: Matrix,
    prefilling: bool,
    remaining: usize,
    prefill_out: Matrix,
    decoded: Matrix,
    arrived_step: u64,
    expires_step: Option<u64>,
    expires_at: Option<Instant>,
    stream: bool,
    /// When the request was submitted (TTFT base).
    submitted_at: Instant,
    /// Whether the prefill-complete trace event has been emitted; set
    /// once and kept across recovery replays so the lifecycle trace shows
    /// each transition exactly once.
    prefill_traced: bool,
    /// Decode-token trace events emitted so far. Like the streaming
    /// buffers, this only ever grows: a recovery replay regrowing
    /// `decoded` from zero re-derives identical tokens, so traced indices
    /// stay valid and are never re-emitted.
    traced_tokens: u64,
    /// Whether this request's TTFT histogram sample has been recorded.
    ttft_recorded: bool,
    /// Prefill output rows of an adopted shared prefix (frozen alongside
    /// the pages, so they are bit-identical to recomputing them).
    /// `consume` stitches them in front of the suffix prefill output so
    /// [`Completed::prefill_out`] always covers the whole prompt.
    adopted_out: Option<Matrix>,
    /// Whether this request's prefix has been registered with the pool's
    /// prefix index. Set once after prefill completes and kept across
    /// recovery replays, so a replayed request never re-freezes pages.
    registered: bool,
}

impl Active {
    fn admit(p: Pending, weights: &ModelWeights, arrived_step: u64) -> Self {
        let hidden = weights.hidden();
        let mut session = weights.new_session();
        // Prefix adoption: if a frozen prefix of this prompt is in the
        // pool's index, the session starts on those shared pages and only
        // the suffix rows go through prefill. Bit-identity holds because
        // the frozen pages and output rows are verified byte-equal to
        // what prefilling the prefix would produce.
        let mut next_input = p.prompt.clone();
        let mut adopted_out = None;
        if let Some(m) = weights.kv_pool().lookup_prefix(&p.prompt) {
            let t0 = m.tokens;
            adopted_out = Some(session.adopt_prefix(m));
            next_input = Matrix::from_fn(p.prompt.rows() - t0, p.prompt.cols(), |r, c| {
                p.prompt[(t0 + r, c)]
            });
        }
        Active {
            id: p.id,
            session,
            next_input,
            prompt: p.prompt,
            prefilling: true,
            remaining: p.decode_steps,
            decode_steps: p.decode_steps,
            prefill_out: Matrix::zeros(0, hidden),
            decoded: Matrix::zeros(0, hidden),
            arrived_step,
            expires_step: p.expires_step,
            expires_at: p.expires_at,
            stream: p.stream,
            submitted_at: p.submitted_at,
            prefill_traced: false,
            traced_tokens: 0,
            ttft_recorded: false,
            adopted_out,
            registered: false,
        }
    }

    /// Folds one step's output rows into the request; returns the number
    /// of decode tokens it produced (0 for the prefill step).
    fn consume(&mut self, y: Matrix) -> u64 {
        self.next_input = feedback_token(&y);
        if self.prefilling {
            // A suffix-only prefill (adopted prefix) still reports the
            // full prompt's output: the adopted rows go in front.
            self.prefill_out = match self.adopted_out.take() {
                Some(mut pre) => {
                    pre.push_rows(&y);
                    pre
                }
                None => y,
            };
            self.prefilling = false;
            0
        } else {
            self.decoded.push_rows(&y);
            self.remaining -= 1;
            1
        }
    }

    fn finished(&self) -> bool {
        !self.prefilling && self.remaining == 0
    }

    fn expired(&self, now_step: u64, now: Instant) -> bool {
        self.expires_step.is_some_and(|s| now_step >= s)
            || self.expires_at.is_some_and(|t| now >= t)
    }

    /// Rewinds the request to its prompt for a recovery replay: fresh KV
    /// state, original inputs, progress discarded. Returns the number of
    /// decode tokens thrown away (so aggregate counters stay honest).
    /// Adoption is discarded too — the replay prefills the full prompt
    /// from scratch, so a fault can never hide behind a shared page —
    /// while `registered` survives, so replays never re-freeze pages.
    fn reset_for_replay(&mut self) -> u64 {
        let discarded = self.decoded.rows() as u64;
        self.session.reset();
        self.adopted_out = None;
        self.next_input = self.prompt.clone();
        self.prefilling = true;
        self.remaining = self.decode_steps;
        self.prefill_out = Matrix::zeros(0, self.prefill_out.cols());
        self.decoded = Matrix::zeros(0, self.decoded.cols());
        discarded
    }

    fn into_completed(self, finished_step: u64) -> Completed {
        Completed {
            id: self.id,
            prefill_out: self.prefill_out,
            decoded: self.decoded,
            arrived_step: self.arrived_step,
            finished_step,
        }
    }
}

#[derive(Default)]
struct Queues {
    next_id: u64,
    pending: VecDeque<Pending>,
    done: BTreeMap<u64, RequestOutcome>,
    /// Ids whose [`RequestOutcome`] has already been handed to a waiter.
    claimed: BTreeSet<u64>,
    /// Cancellation flags for in-flight ids, drained by the engine
    /// between steps (pending ids are cancelled inline by
    /// [`Server::cancel`]).
    cancels: BTreeSet<u64>,
    /// Decode rows published so far for streaming requests
    /// ([`RequestOptions::stream`]), appended by the engine between steps
    /// and drained by [`Server::next_token`]. A buffer lives until its
    /// request's outcome is consumed. During panic recovery a request's
    /// internal progress may temporarily fall behind its published rows;
    /// replay regenerates identical bits, so the published prefix stays
    /// authoritative and is never rolled back.
    streams: BTreeMap<u64, Vec<Matrix>>,
    stats: ServeStats,
    /// Lifetime latency histograms + per-stage time split, snapshotted by
    /// [`Server::telemetry_snapshot`] (see [`TelemetrySnapshot`] for the
    /// field semantics). Recording into them is allocation-free.
    telemetry: TelemetrySnapshot,
    shutdown: bool,
    /// Abort-mode shutdown: cancel in-flight work instead of draining it.
    abort: bool,
    /// Set (with a reason) if a panic escapes the engine's isolation —
    /// waiters then error out instead of blocking forever.
    engine_down: Option<String>,
    /// Set when the engine thread exits for any reason.
    engine_exited: bool,
}

struct Shared {
    weights: Arc<ModelWeights>,
    max_batch: usize,
    threads: usize,
    /// Arrival-queue bound (0 = unbounded): submissions past it are shed.
    queue_capacity: usize,
    /// Packed-KV admission budget in bytes (0 = unlimited): admission
    /// stops (but serving continues) while in-flight KV is at or past it.
    kv_budget: usize,
    q: Mutex<Queues>,
    /// Wakes the engine: new arrival, cancellation or shutdown.
    work_cv: Condvar,
    /// Wakes waiters: an outcome landed or the engine died.
    done_cv: Condvar,
    /// Shared tracing registry ([`ServeConfig::telemetry`] sets its
    /// initial on/off state); exposed via [`Server::telemetry`] so the
    /// gateway can register its own rings on the same clock.
    telemetry: Arc<Telemetry>,
    /// Engine-thread ring: TICK + stage spans, lifecycle transitions.
    engine_trace: TraceHandle,
    /// API-thread ring: submit/reject/inline-cancel instants.
    api_trace: TraceHandle,
}

/// A running serving instance: one engine thread, one shared weight set,
/// any number of submitting/waiting/cancelling threads.
///
/// Shutdown ordering: [`Server::shutdown`] (and [`Drop`]) stops admission,
/// **drains** — every already-submitted request still resolves (finish,
/// cancel, deadline, fail) — then joins the engine thread.
/// [`Server::abort`] instead cancels all queued and in-flight work, then
/// joins. Both are deterministic: after either returns, every id has an
/// outcome and every session has been released.
pub struct Server {
    shared: Arc<Shared>,
    engine: Option<JoinHandle<()>>,
}

impl Server {
    /// Spawns the engine thread over an `Arc`-shared prepared model.
    pub fn start(weights: Arc<ModelWeights>, cfg: ServeConfig) -> Self {
        Self::start_with_faults(weights, cfg, FaultPlan::none())
    }

    /// [`Server::start`] plus a deterministic [`FaultPlan`] the engine
    /// fires at its scheduled ticks — the chaos-testing entry point (see
    /// [`crate::fault`]).
    pub fn start_with_faults(
        weights: Arc<ModelWeights>,
        cfg: ServeConfig,
        plan: FaultPlan,
    ) -> Self {
        let telemetry = Arc::new(Telemetry::new(cfg.telemetry));
        let engine_trace = telemetry.register("engine", ENGINE_RING_EVENTS);
        let api_trace = telemetry.register("api", API_RING_EVENTS);
        let shared = Arc::new(Shared {
            threads: cfg.worker_threads,
            max_batch: cfg.max_batch.max(1),
            queue_capacity: cfg.queue_capacity,
            kv_budget: cfg.kv_budget_bytes,
            weights,
            q: Mutex::new(Queues::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            telemetry,
            engine_trace,
            api_trace,
        });
        let engine_shared = Arc::clone(&shared);
        let engine = std::thread::Builder::new()
            .name("m2x-serve-engine".into())
            .spawn(move || engine_loop(&engine_shared, plan))
            // m2x-lint: allow(panic) construction-time spawn fails only on OS thread exhaustion; surfacing it at startup is intentional
            .expect("spawning the serve engine thread");
        Server {
            shared,
            engine: Some(engine),
        }
    }

    /// Enqueues a generation request (open-loop: returns immediately) and
    /// hands back the id to [`Self::wait`] on. The request prefills
    /// `prompt` and then runs `decode_steps` closed-loop decode steps
    /// through [`feedback_token`].
    ///
    /// If the arrival queue is at [`ServeConfig::queue_capacity`], the
    /// request is **shed**: an id is still returned, and its outcome is
    /// [`RequestOutcome::Rejected`] — overload is an outcome, not an
    /// error, so callers can distinguish it from caller bugs.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] on an empty prompt, an input width
    /// mismatch, or a prompt containing NaN/Inf values — non-finite rows
    /// would flow into the online quantizer and poison the engine thread
    /// mid-batch, taking every concurrent request down with an error that
    /// belongs to this one. [`ServeError::ShutDown`] after
    /// [`Server::shutdown`]/[`Server::abort`]: the request would queue
    /// into a dead engine.
    pub fn submit(&self, prompt: Matrix, decode_steps: usize) -> Result<u64, ServeError> {
        self.submit_with(prompt, decode_steps, RequestOptions::default())
    }

    /// [`Server::submit`] with per-request [`RequestOptions`]: deadlines
    /// in scheduler steps and/or wall-clock time, counted from
    /// submission (queue wait included), and opt-in token streaming.
    ///
    /// ```
    /// use m2x_nn::model::ModelBuilder;
    /// use m2x_nn::profile::ModelProfile;
    /// use m2x_serve::{RequestOptions, RequestOutcome, ServeConfig, ServeError, Server};
    /// use m2x_tensor::Matrix;
    /// use std::sync::Arc;
    ///
    /// let weights = Arc::new(
    ///     ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1).build_weights()?,
    /// );
    /// let server = Server::start(weights, ServeConfig::default());
    /// let prompt = Matrix::from_fn(2, 64, |r, c| ((r + c) as f32 * 0.01).tanh());
    /// // A 0-step deadline expires before the request is ever admitted.
    /// let id = server.submit_with(
    ///     prompt,
    ///     100,
    ///     RequestOptions { deadline_steps: Some(0), ..RequestOptions::default() },
    /// )?;
    /// assert!(matches!(
    ///     server.wait(id)?,
    ///     RequestOutcome::DeadlineExceeded { decoded_tokens: 0 }
    /// ));
    /// # Ok::<(), ServeError>(())
    /// ```
    pub fn submit_with(
        &self,
        prompt: Matrix,
        decode_steps: usize,
        opts: RequestOptions,
    ) -> Result<u64, ServeError> {
        if prompt.rows() == 0 {
            return Err(Error::config("prompt must contain at least one token").into());
        }
        if prompt.cols() != self.shared.weights.hidden() {
            return Err(ServeError::Invalid(Error::WidthMismatch {
                tensor: "serve prompt".to_string(),
                expected: self.shared.weights.hidden(),
                got: prompt.cols(),
            }));
        }
        crate::check_finite(&prompt)?;
        let now = Instant::now();
        let submitted_us = self.shared.telemetry.now_us();
        let mut q = self.lock();
        if q.shutdown {
            return Err(ServeError::ShutDown);
        }
        let id = q.next_id;
        q.next_id += 1;
        self.shared
            .api_trace
            .instant(stage::REQ_SUBMITTED, id as u32, prompt.rows() as u64);
        if self.shared.queue_capacity > 0 && q.pending.len() >= self.shared.queue_capacity {
            let queue_depth = q.pending.len();
            q.stats.rejected += 1;
            self.shared
                .api_trace
                .instant(stage::REQ_REJECTED, id as u32, queue_depth as u64);
            q.telemetry.tokens_per_request.record(0);
            q.done.insert(id, RequestOutcome::Rejected { queue_depth });
            self.shared.done_cv.notify_all();
            return Ok(id);
        }
        let expires_step = opts.deadline_steps.map(|d| q.stats.steps + d);
        let expires_at = opts.deadline.map(|d| now + d);
        q.pending.push_back(Pending {
            id,
            prompt,
            decode_steps,
            expires_step,
            expires_at,
            stream: opts.stream,
            submitted_at: now,
            submitted_us,
        });
        q.stats.peak_queue_depth = q.stats.peak_queue_depth.max(q.pending.len());
        self.shared.work_cv.notify_one();
        Ok(id)
    }

    /// Requests cancellation of `id`. A still-queued request is cancelled
    /// inline; an in-flight one is flagged and released by the engine
    /// **between** steps (its KV memory reclaimed before the next
    /// admission). Returns `true` if the cancellation was recorded while
    /// the request was unresolved, `false` if it had already resolved —
    /// either way [`Server::wait`] reports the authoritative outcome
    /// (best-effort: a request may still finish in the step racing the
    /// flag).
    ///
    /// ```
    /// use m2x_nn::model::ModelBuilder;
    /// use m2x_nn::profile::ModelProfile;
    /// use m2x_serve::{RequestOutcome, ServeConfig, ServeError, Server};
    /// use m2x_tensor::Matrix;
    /// use std::sync::Arc;
    ///
    /// let weights = Arc::new(
    ///     ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1).build_weights()?,
    /// );
    /// let server = Server::start(weights, ServeConfig::default());
    /// let prompt = Matrix::from_fn(1, 64, |_, c| (c as f32 * 0.01).tanh());
    /// let id = server.submit(prompt, 50_000)?; // far too long to finish
    /// server.cancel(id)?;
    /// assert!(matches!(server.wait(id)?, RequestOutcome::Cancelled { .. }));
    /// # Ok::<(), ServeError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownRequest`] if `id` was never issued here.
    pub fn cancel(&self, id: u64) -> Result<bool, ServeError> {
        let mut q = self.lock();
        if id >= q.next_id {
            return Err(ServeError::UnknownRequest { id });
        }
        if q.done.contains_key(&id) || q.claimed.contains(&id) {
            return Ok(false);
        }
        if let Some(pos) = q.pending.iter().position(|p| p.id == id) {
            q.pending.remove(pos);
            q.stats.cancelled += 1;
            self.shared
                .api_trace
                .instant(stage::REQ_CANCELLED, id as u32, 0);
            q.telemetry.tokens_per_request.record(0);
            q.done
                .insert(id, RequestOutcome::Cancelled { decoded_tokens: 0 });
            self.shared.done_cv.notify_all();
            return Ok(true);
        }
        q.cancels.insert(id);
        self.shared.work_cv.notify_one();
        Ok(true)
    }

    /// Blocks until request `id` resolves and returns its
    /// [`RequestOutcome`]. Each outcome is handed out **once**: the first
    /// `wait(id)` consumes it.
    ///
    /// ```
    /// use m2x_nn::model::ModelBuilder;
    /// use m2x_nn::profile::ModelProfile;
    /// use m2x_serve::{ServeConfig, ServeError, Server};
    /// use m2x_tensor::Matrix;
    /// use std::sync::Arc;
    ///
    /// let weights = Arc::new(
    ///     ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1).build_weights()?,
    /// );
    /// let server = Server::start(weights, ServeConfig::default());
    /// let prompt = Matrix::from_fn(2, 64, |r, c| ((r + c) as f32 * 0.01).sin());
    /// let id = server.submit(prompt, 4)?;
    /// let done = server.wait(id)?.finished().expect("no faults in play");
    /// assert_eq!(done.decoded.rows(), 4);
    /// // Outcomes are consumed once: a second wait is a typed error.
    /// assert_eq!(server.wait(id), Err(ServeError::AlreadyConsumed { id }));
    /// # Ok::<(), ServeError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownRequest`] if `id` was never issued here,
    /// [`ServeError::AlreadyConsumed`] on a second wait for the same id,
    /// [`ServeError::EngineDown`] if the engine thread died without
    /// resolving the request (never blocks forever).
    pub fn wait(&self, id: u64) -> Result<RequestOutcome, ServeError> {
        let mut q = self.lock();
        if id >= q.next_id {
            return Err(ServeError::UnknownRequest { id });
        }
        if q.claimed.contains(&id) {
            return Err(ServeError::AlreadyConsumed { id });
        }
        loop {
            if let Some(done) = q.done.remove(&id) {
                q.claimed.insert(id);
                q.streams.remove(&id);
                return Ok(done);
            }
            if let Some(reason) = &q.engine_down {
                return Err(ServeError::EngineDown {
                    reason: reason.clone(),
                });
            }
            if q.engine_exited {
                return Err(ServeError::EngineDown {
                    reason: "engine thread exited before the request resolved".to_string(),
                });
            }
            q = wait_poisoned(&self.shared.done_cv, q);
        }
    }

    /// Blocks until decode step `cursor` of streaming request `id` is
    /// available (returning [`StreamEvent::Token`]) or the request has
    /// resolved with no row at `cursor` (returning [`StreamEvent::Done`],
    /// which **consumes** the outcome like [`Server::wait`]).
    ///
    /// Drive it with a monotonically increasing cursor starting at 0 —
    /// each `Token { index, .. }` is followed by a call with
    /// `cursor == index + 1`. The request must have been submitted with
    /// [`RequestOptions::stream`] set for tokens to arrive before
    /// completion; without it, the first call blocks until resolution and
    /// returns `Done` directly.
    ///
    /// Tokens are published **between** engine steps, after the step's
    /// outputs are final; a row handed out here is bit-identical to the
    /// same row of the solo run and is never retracted, even if a panic
    /// recovery later replays the request.
    ///
    /// # Errors
    ///
    /// The same misuse/liveness errors as [`Server::wait`]:
    /// [`ServeError::UnknownRequest`], [`ServeError::AlreadyConsumed`]
    /// (the outcome was already handed out), [`ServeError::EngineDown`].
    pub fn next_token(&self, id: u64, cursor: usize) -> Result<StreamEvent, ServeError> {
        let mut q = self.lock();
        if id >= q.next_id {
            return Err(ServeError::UnknownRequest { id });
        }
        if q.claimed.contains(&id) {
            return Err(ServeError::AlreadyConsumed { id });
        }
        loop {
            if let Some(buf) = q.streams.get(&id) {
                if cursor < buf.len() {
                    return Ok(StreamEvent::Token {
                        index: cursor,
                        row: buf[cursor].clone(),
                    });
                }
            }
            if let Some(done) = q.done.remove(&id) {
                q.claimed.insert(id);
                q.streams.remove(&id);
                return Ok(StreamEvent::Done(done));
            }
            if let Some(reason) = &q.engine_down {
                return Err(ServeError::EngineDown {
                    reason: reason.clone(),
                });
            }
            if q.engine_exited {
                return Err(ServeError::EngineDown {
                    reason: "engine thread exited before the request resolved".to_string(),
                });
            }
            q = wait_poisoned(&self.shared.done_cv, q);
        }
    }

    /// Streaming analogue of [`Server::wait`]: invokes `on_token` for
    /// every decode row as the engine produces it, then returns the
    /// request's [`RequestOutcome`] (consuming it). The rows passed to
    /// `on_token`, in order, are exactly the prefix of the solo run's
    /// decode output that the request got through before resolving —
    /// all of it when the outcome is [`RequestOutcome::Finished`].
    ///
    /// ```
    /// use m2x_nn::model::ModelBuilder;
    /// use m2x_nn::profile::ModelProfile;
    /// use m2x_serve::{run_solo, RequestOptions, ServeConfig, ServeError, Server};
    /// use m2x_tensor::Matrix;
    /// use std::sync::Arc;
    ///
    /// let weights = Arc::new(
    ///     ModelBuilder::scaled(&ModelProfile::llama3_8b(), 64, 1).build_weights()?,
    /// );
    /// let server = Server::start(Arc::clone(&weights), ServeConfig::default());
    /// let prompt = Matrix::from_fn(2, 64, |r, c| ((r * 64 + c) as f32 * 0.1).sin() * 0.5);
    /// let opts = RequestOptions { stream: true, ..RequestOptions::default() };
    /// let id = server.submit_with(prompt.clone(), 3, opts)?;
    ///
    /// let mut streamed = Matrix::zeros(0, 64);
    /// let outcome = server.wait_streaming(id, |_, row| streamed.push_rows(row))?;
    /// assert_eq!(outcome.kind(), "finished");
    /// assert_eq!(streamed, run_solo(&weights, &prompt, 3)?); // bit-identical
    /// # Ok::<(), ServeError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`Server::next_token`].
    pub fn wait_streaming(
        &self,
        id: u64,
        mut on_token: impl FnMut(usize, &Matrix),
    ) -> Result<RequestOutcome, ServeError> {
        let mut cursor = 0;
        loop {
            match self.next_token(id, cursor)? {
                StreamEvent::Token { index, row } => {
                    on_token(index, &row);
                    cursor = index + 1;
                }
                StreamEvent::Done(outcome) => return Ok(outcome),
            }
        }
    }

    /// `true` while the server can make progress on new submissions: the
    /// engine thread is alive and [`Server::shutdown`]/[`Server::abort`]
    /// has not been called. The `m2x-gateway` `/healthz` endpoint reports
    /// exactly this.
    pub fn healthy(&self) -> bool {
        let q = self.lock();
        q.engine_down.is_none() && !q.engine_exited && !q.shutdown
    }

    /// Aggregate scheduler counters so far. Lock-poison-tolerant: the
    /// queue mutex is recovered on poisoning (see `lock_queues`), so
    /// stats stay readable even while the engine is mid-recovery from a
    /// caught panic.
    pub fn stats(&self) -> ServeStats {
        let mut stats = {
            let q = self.lock();
            let mut stats = q.stats;
            stats.p99_step_us = if q.telemetry.step_us.is_empty() {
                0.0
            } else {
                q.telemetry.step_us.quantile(0.99) as f64
            };
            stats
        };
        // Pool counters are overlaid live (the pool keeps its own
        // totals), so they are current even between engine ticks.
        let pool = self.shared.weights.kv_pool().stats();
        stats.kv_pages_in_use = pool.pages_in_use;
        stats.kv_peak_pages = pool.peak_pages;
        stats.kv_page_allocs = pool.page_allocs;
        stats.kv_page_reuses = pool.page_reuses;
        stats.kv_cow_clones = pool.cow_clones;
        stats.kv_prefix_hits = pool.prefix_hits;
        stats.kv_prefix_misses = pool.prefix_misses;
        stats.kv_shared_pages = pool.shared_pages;
        stats.kv_free_pages = pool.free_pages;
        stats
    }

    /// The server's tracing registry: flip recording on/off at runtime
    /// ([`Telemetry::set_enabled`]), register additional rings on the
    /// same clock (the gateway does), or [`drain`](Telemetry::drain) the
    /// buffered trace — the `m2x-gateway` `GET /v1/trace` endpoint is a
    /// Chrome-trace rendering of exactly that drain.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// Copies the lifetime latency histograms and per-stage time split
    /// (non-destructive, unlike [`Telemetry::drain`]). Cold path: clones
    /// four histograms.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.lock().telemetry.clone()
    }

    /// Graceful shutdown: stops admission (later [`Server::submit`]s
    /// return [`ServeError::ShutDown`]), **drains** every
    /// already-submitted request to an outcome, joins the engine thread,
    /// and returns the final stats. Idempotent; [`Drop`] calls it.
    pub fn shutdown(&mut self) -> ServeStats {
        {
            let mut q = self.lock();
            q.shutdown = true;
        }
        self.join_engine()
    }

    /// Hard shutdown: stops admission and **cancels** every queued and
    /// in-flight request (outcome [`RequestOutcome::Cancelled`], sessions
    /// released) instead of draining, then joins the engine thread.
    pub fn abort(&mut self) -> ServeStats {
        {
            let mut q = self.lock();
            q.shutdown = true;
            q.abort = true;
        }
        self.join_engine()
    }

    fn join_engine(&mut self) -> ServeStats {
        self.shared.work_cv.notify_all();
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
        // The prefix index and its retained frozen pages serve future
        // admissions; with the engine gone there are none, so drop them —
        // every pool page returns to the free list (the zero-leak
        // invariant `kv_pool.zero_leak` gates in CI).
        self.shared.weights.kv_pool().clear_retained();
        self.stats()
    }

    fn lock(&self) -> MutexGuard<'_, Queues> {
        lock_queues(&self.shared)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Locks the queue state, recovering from poisoning: every mutation of the
/// queue state happens under the lock in panic-free sections (the engine's
/// model calls run outside the lock, behind `catch_unwind`), so a poisoned
/// mutex still guards consistent data.
fn lock_queues(shared: &Shared) -> MutexGuard<'_, Queues> {
    lock_poisoned(&shared.q)
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "step panicked".to_string()
    }
}

/// Resolves every queued and in-flight request as cancelled (the abort
/// shutdown path); sessions drop here, releasing their KV memory.
fn abort_all(shared: &Shared, q: &mut Queues, active: &mut Vec<Active>) {
    while let Some(p) = q.pending.pop_front() {
        q.stats.cancelled += 1;
        shared
            .engine_trace
            .instant(stage::REQ_CANCELLED, p.id as u32, 0);
        q.telemetry.tokens_per_request.record(0);
        q.done
            .insert(p.id, RequestOutcome::Cancelled { decoded_tokens: 0 });
    }
    for a in active.drain(..) {
        q.stats.cancelled += 1;
        let decoded_tokens = a.decoded.rows() as u64;
        shared
            .engine_trace
            .instant(stage::REQ_CANCELLED, a.id as u32, decoded_tokens);
        q.telemetry.tokens_per_request.record(decoded_tokens);
        q.done
            .insert(a.id, RequestOutcome::Cancelled { decoded_tokens });
    }
}

/// Publishes "the engine is gone" on every exit path of [`engine_loop`] —
/// including a panic escaping its isolation — so waiters never block on an
/// id that can no longer resolve.
struct EngineExitGuard<'a> {
    shared: &'a Shared,
}

impl Drop for EngineExitGuard<'_> {
    fn drop(&mut self) {
        let mut q = lock_queues(self.shared);
        q.engine_exited = true;
        if std::thread::panicking() {
            q.engine_down = Some("a panic escaped the engine's step isolation".to_string());
        }
        self.shared.done_cv.notify_all();
    }
}

/// The continuous-batching loop (runs on the engine thread).
// m2x-lint: hot
fn engine_loop(shared: &Shared, mut plan: FaultPlan) {
    // m2x-lint: allow(alloc) one-time loop state, allocated before the first tick
    let mut active: Vec<Active> = Vec::new();
    // One activation scratch for the engine's lifetime: every scheduler
    // step's projection GEMMs (and, at one worker, the attention score
    // GEMVs) reuse it, so the decode hot loop stops allocating activation
    // planes per call. Reset after any caught panic (stale contents are
    // harmless — see `GemmScratch` — but recovery discards them anyway).
    let mut scratch = StepScratch::new();
    // Previous tick's KV pool counter totals; phase 4 diffs against them
    // to emit page alloc/release trace instants.
    let mut last_pool = shared.weights.kv_pool().stats();
    let _exit_guard = EngineExitGuard { shared };
    loop {
        // ── Phase 1 (locked): lifecycle + admission ─────────────────────
        // Cancellations and deadline expiries resolve here, **between**
        // steps: the released sessions drop before the admission below,
        // so reclaimed KV memory immediately frees budget and batch slots.
        let tick = {
            let mut q = lock_queues(shared);
            loop {
                if q.abort {
                    abort_all(shared, &mut q, &mut active);
                    shared.done_cv.notify_all();
                    return;
                }
                if active.is_empty() && q.pending.is_empty() {
                    if q.shutdown {
                        return;
                    }
                    q = wait_poisoned(&shared.work_cv, q);
                    continue;
                }
                break;
            }
            let now_step = q.stats.steps;
            let now = Instant::now();
            let mut resolved = false;
            for _ in 0..q.pending.len() {
                let Some(p) = q.pending.pop_front() else {
                    break;
                };
                if p.expired(now_step, now) {
                    q.stats.deadline_exceeded += 1;
                    shared
                        .engine_trace
                        .instant(stage::REQ_DEADLINE, p.id as u32, 0);
                    q.telemetry.tokens_per_request.record(0);
                    q.done
                        .insert(p.id, RequestOutcome::DeadlineExceeded { decoded_tokens: 0 });
                    resolved = true;
                } else {
                    q.pending.push_back(p);
                }
            }
            let cancels = std::mem::take(&mut q.cancels);
            // m2x-lint: allow(alloc) lifecycle bookkeeping: sized by batch (small), not by tokens
            let mut keep = Vec::with_capacity(active.len());
            for a in active.drain(..) {
                let decoded_tokens = a.decoded.rows() as u64;
                if cancels.contains(&a.id) {
                    q.stats.cancelled += 1;
                    shared
                        .engine_trace
                        .instant(stage::REQ_CANCELLED, a.id as u32, decoded_tokens);
                    q.telemetry.tokens_per_request.record(decoded_tokens);
                    q.done
                        .insert(a.id, RequestOutcome::Cancelled { decoded_tokens });
                    resolved = true;
                } else if a.expired(now_step, now) {
                    q.stats.deadline_exceeded += 1;
                    shared
                        .engine_trace
                        .instant(stage::REQ_DEADLINE, a.id as u32, decoded_tokens);
                    q.telemetry.tokens_per_request.record(decoded_tokens);
                    q.done
                        .insert(a.id, RequestOutcome::DeadlineExceeded { decoded_tokens });
                    resolved = true;
                } else {
                    keep.push(a);
                }
            }
            active = keep;
            let mut kv_used: usize = active.iter().map(|a| a.session.kv_bytes()).sum();
            while active.len() < shared.max_batch {
                // Graceful degradation, not a stall: past the KV budget we
                // stop admitting, but at least one request always runs, so
                // the budget drains and admission resumes.
                if shared.kv_budget > 0 && !active.is_empty() && kv_used >= shared.kv_budget {
                    break;
                }
                let Some(p) = q.pending.pop_front() else {
                    break;
                };
                // Queue wait resolves at admission: one histogram sample,
                // and one span stretching from submission to now — the
                // visual "waiting in queue" bar of the Chrome trace.
                let waited_us = now
                    .saturating_duration_since(p.submitted_at)
                    .as_micros()
                    .min(u64::MAX as u128) as u64;
                q.telemetry.queue_wait_us.record(waited_us);
                shared.engine_trace.span(
                    stage::REQ_ADMITTED,
                    p.id as u32,
                    p.submitted_us,
                    p.submitted_us.saturating_add(waited_us),
                    q.pending.len() as u64,
                );
                let a = Active::admit(p, &shared.weights, now_step);
                kv_used += a.session.kv_bytes();
                active.push(a);
            }
            q.stats.peak_batch = q.stats.peak_batch.max(active.len());
            if resolved {
                shared.done_cv.notify_all();
            }
            now_step
        };
        if active.is_empty() {
            continue;
        }

        // ── Phase 2: scheduled faults for this tick ─────────────────────
        let mut armed_panic: Option<u64> = None;
        let mut cancelled_now = 0u64;
        // m2x-lint: allow(alloc) fault-injection path, empty plan in production
        for fault in plan.take_due(tick).to_vec() {
            match fault {
                Fault::Delay { micros, .. } => {
                    std::thread::sleep(Duration::from_micros(micros));
                }
                Fault::CancelActive { slot, .. } => {
                    if slot < active.len() {
                        let a = active.remove(slot);
                        cancelled_now += 1;
                        let decoded_tokens = a.decoded.rows() as u64;
                        shared.engine_trace.instant(
                            stage::REQ_CANCELLED,
                            a.id as u32,
                            decoded_tokens,
                        );
                        let mut q = lock_queues(shared);
                        q.telemetry.tokens_per_request.record(decoded_tokens);
                        q.done
                            .insert(a.id, RequestOutcome::Cancelled { decoded_tokens });
                        shared.done_cv.notify_all();
                    }
                }
                Fault::StepPanic { slot, .. } => {
                    if slot < active.len() {
                        armed_panic = Some(active[slot].id);
                    }
                }
            }
        }
        if active.is_empty() {
            let mut q = lock_queues(shared);
            q.stats.cancelled += cancelled_now;
            continue;
        }
        // A same-tick CancelActive may have removed the panic victim from
        // the batch: disarm, so a fired panic always attributes to a
        // request that is actually stepped.
        if let Some(victim) = armed_panic {
            if !active.iter().any(|a| a.id == victim) {
                armed_panic = None;
            }
        }

        // ── Phase 3: one batched step (isolated), recovery on failure ───
        // Arm the per-tick stage clocks inside the model's scratch: the
        // step books assemble/encode/qgemm/attention/kv_append time into
        // it, and phase 4 merges the split into the lifetime tally.
        let rec = shared.telemetry.enabled();
        scratch.tally.set_enabled(rec);
        scratch.tally.clear();
        let t0_us = if rec { shared.engine_trace.now_us() } else { 0 };
        let t0 = Instant::now();
        // m2x-lint: allow(alloc) structural: the batched step borrows sessions mutably, so inputs are cloned out first
        let inputs: Vec<Matrix> = active.iter().map(|a| a.next_input.clone()).collect();
        let step = catch_unwind(AssertUnwindSafe(|| {
            let mut sessions: Vec<&mut SessionState> =
                // m2x-lint: allow(alloc) batch-sized pointer Vec rebuilt per tick (membership changes between ticks)
                active.iter_mut().map(|a| &mut a.session).collect();
            let out = shared.weights.step_sessions_scratch(
                &mut sessions,
                &inputs,
                shared.threads,
                &mut scratch,
            );
            if let (Some(victim), Ok(_)) = (armed_panic, &out) {
                // Injected *after* the batched compute: session state has
                // already advanced when the panic lands — the worst case
                // the reset-and-replay recovery must handle.
                // m2x-lint: allow(panic) deliberate fault injection, caught by the catch_unwind directly above
                panic!("injected fault: step panic (request {victim})");
            }
            out
        }));

        let mut decoded_delta: i64 = 0;
        let mut caught_panics = 0u64;
        // m2x-lint: allow(alloc) empty Vec does not allocate; grows only on the recovery path
        let mut failed: Vec<(u64, RequestOutcome)> = Vec::new();
        let mut recovery = false;
        match step {
            Ok(Ok(outs)) => {
                // Feedback ("sampling") is the one tick stage living
                // outside the model step: fold it into the same tally.
                let tally = &mut scratch.tally;
                tally.time(stage::FEEDBACK, || {
                    for (a, y) in active.iter_mut().zip(outs) {
                        decoded_delta += a.consume(y) as i64;
                    }
                });
            }
            other => {
                // The batched step died mid-flight: a panic (caught above)
                // or a model error. Every in-flight session is suspect —
                // the failure may have landed after some sessions already
                // appended this step's KV rows. Generation is closed-loop
                // deterministic from the prompt, so recovery rewinds every
                // request and re-steps each in isolation: the one that
                // reproduces the failure is failed and released, the rest
                // replay to bit-identical streams and keep going batched.
                recovery = true;
                let batched_error = match other {
                    // m2x-lint: allow(alloc) recovery path, not the healthy decode tick
                    Ok(Err(e)) => e.to_string(),
                    Err(payload) => {
                        caught_panics += 1;
                        panic_message(payload)
                    }
                    Ok(Ok(_)) => unreachable!("handled above"),
                };
                scratch.reset();
                // m2x-lint: allow(alloc) recovery path, not the healthy decode tick
                let mut survivors = Vec::with_capacity(active.len());
                for mut a in active.drain(..) {
                    decoded_delta -= a.reset_for_replay() as i64;
                    // m2x-lint: allow(alloc) recovery path, not the healthy decode tick
                    let input = [a.next_input.clone()];
                    let rid = a.id;
                    let isolated = catch_unwind(AssertUnwindSafe(|| {
                        // m2x-lint: allow(alloc) recovery path, not the healthy decode tick
                        let mut sessions: Vec<&mut SessionState> = vec![&mut a.session];
                        let out = shared.weights.step_sessions_scratch(
                            &mut sessions,
                            &input,
                            shared.threads,
                            &mut scratch,
                        );
                        if let (Some(victim), Ok(_)) = (armed_panic, &out) {
                            if victim == rid {
                                // m2x-lint: allow(panic) deliberate fault injection, caught by the enclosing catch_unwind
                                panic!("injected fault: step panic (request {rid})");
                            }
                        }
                        out
                    }));
                    match isolated {
                        Ok(Ok(mut outs)) => match outs.pop() {
                            Some(y) => {
                                decoded_delta += a.consume(y) as i64;
                                survivors.push(a);
                            }
                            None => {
                                // One session in, zero outputs out: a model
                                // contract breach. Fail the request instead
                                // of poisoning the engine with a panic.
                                failed.push((
                                    rid,
                                    RequestOutcome::Failed {
                                        // m2x-lint: allow(alloc) recovery path, not the healthy decode tick
                                        error: format!(
                                            "isolated re-step returned no output (batched step: {batched_error})"
                                        ),
                                    },
                                ));
                            }
                        },
                        Ok(Err(e)) => {
                            failed.push((
                                rid,
                                RequestOutcome::Failed {
                                    // m2x-lint: allow(alloc) recovery path, not the healthy decode tick
                                    error: format!("{e} (batched step: {batched_error})"),
                                },
                            ));
                        }
                        Err(payload) => {
                            caught_panics += 1;
                            scratch.reset();
                            failed.push((
                                rid,
                                RequestOutcome::Failed {
                                    error: panic_message(payload),
                                },
                            ));
                        }
                    }
                }
                active = survivors;
            }
        }
        let step_us = t0.elapsed().as_micros() as u64;

        // ── Phase 4 (locked): bookkeeping + retire ──────────────────────
        let batch = active.len() + failed.len();
        if rec {
            // One TICK span plus one sub-span per stage with booked time.
            // Stage durations are measured; their offsets are synthetic
            // (laid end to end from the tick start) because the stages
            // interleave per layer inside the batched step — the trace
            // shows the split, not the true interleaving.
            let tick_end = t0_us.saturating_add(step_us);
            shared
                .engine_trace
                .span(stage::TICK, 0, t0_us, tick_end, batch as u64);
            let mut cursor = t0_us;
            for s in stage::ASSEMBLE..stage::TICK_STAGES as u16 {
                let ns = scratch.tally.ns(s);
                if ns == 0 {
                    continue;
                }
                let dur = ns / 1_000;
                shared.engine_trace.span(
                    s,
                    0,
                    cursor,
                    cursor.saturating_add(dur),
                    scratch.tally.calls(s),
                );
                cursor = cursor.saturating_add(dur);
            }
        }
        // Register completed prefills with the pool's prefix index so a
        // later request sharing the prompt prefix can adopt the frozen
        // pages. Once per request — `registered` survives recovery
        // replays, so a replay never re-freezes. Pool lock only, taken
        // before the queue lock below (the lock order everywhere is
        // queue → pool, never the reverse).
        for a in &mut active {
            if !a.prefilling && !a.registered {
                a.registered = true;
                shared
                    .weights
                    .kv_pool()
                    .register_prefix(&a.prompt, &a.prefill_out, a.session.kv());
            }
        }
        // KV pool bookkeeping: page traffic since the last tick becomes
        // trace instants; the live sessions' byte and fragmentation
        // gauges are summed here (engine-owned data, no lock needed).
        let pool_now = shared.weights.kv_pool().stats();
        if rec {
            let grabbed = (pool_now.page_allocs + pool_now.page_reuses + pool_now.cow_clones)
                .saturating_sub(
                    last_pool.page_allocs + last_pool.page_reuses + last_pool.cow_clones,
                );
            if grabbed > 0 {
                shared
                    .engine_trace
                    .instant(stage::KV_PAGE_ALLOC, 0, grabbed);
            }
            let released = pool_now.releases.saturating_sub(last_pool.releases);
            if released > 0 {
                shared
                    .engine_trace
                    .instant(stage::KV_PAGE_RELEASE, 0, released);
            }
        }
        last_pool = pool_now;
        let page_tokens = shared.weights.kv_pool().page_tokens() as u64;
        let (mut kv_packed, mut kv_decoded, mut kv_tokens, mut kv_capacity) =
            (0u64, 0u64, 0u64, 0u64);
        for a in &active {
            kv_packed += a.session.kv_bytes() as u64;
            kv_decoded += a.session.kv_decoded_bytes() as u64;
            kv_tokens += a.session.kv().tokens() as u64;
            kv_capacity += a.session.kv().page_count() as u64 * page_tokens;
        }
        let wall = Instant::now();
        let mut q = lock_queues(shared);
        q.stats.steps += 1;
        q.stats.decoded_tokens = (q.stats.decoded_tokens as i64 + decoded_delta).max(0) as u64;
        q.stats.peak_batch = q.stats.peak_batch.max(batch);
        q.stats.cancelled += cancelled_now;
        q.stats.panics_recovered += caught_panics;
        q.stats.failed += failed.len() as u64;
        if recovery {
            q.stats.recovery_ticks += 1;
        }
        q.telemetry.step_us.record(step_us);
        q.telemetry.stages.merge(&scratch.tally);
        q.stats.kv_packed_bytes = kv_packed;
        q.stats.kv_decoded_bytes = kv_decoded;
        q.stats.kv_fragmentation = if kv_capacity == 0 {
            0.0
        } else {
            1.0 - kv_tokens as f64 / kv_capacity as f64
        };
        // Publish new decode rows of streaming requests before retiring
        // finished ones, so a waiter always sees every token before the
        // outcome. Appends only past the published length: a recovery
        // replay regrowing `decoded` from zero re-derives identical bits,
        // so the already published prefix stays valid and duplicate-free.
        for a in &active {
            if a.stream && a.decoded.rows() > 0 {
                let buf = q.streams.entry(a.id).or_default();
                for r in buf.len()..a.decoded.rows() {
                    buf.push(Matrix::from_vec(
                        1,
                        a.decoded.cols(),
                        // m2x-lint: allow(alloc) structural: published token rows must outlive the tick
                        a.decoded.row(r).to_vec(),
                    ));
                }
            }
        }
        // Lifecycle trace + TTFT. Like the streaming buffers above, the
        // traced counters (`prefill_traced`, `traced_tokens`,
        // `ttft_recorded`) only ever grow, so a recovery replay regrowing
        // `decoded` from zero never re-emits an already-traced
        // transition or re-records a TTFT sample.
        for a in &mut active {
            if !a.prefilling && !a.prefill_traced {
                a.prefill_traced = true;
                shared.engine_trace.instant(
                    stage::REQ_PREFILL,
                    a.id as u32,
                    a.prompt.rows() as u64,
                );
            }
            while a.traced_tokens < a.decoded.rows() as u64 {
                shared
                    .engine_trace
                    .instant(stage::REQ_TOKEN, a.id as u32, a.traced_tokens);
                a.traced_tokens += 1;
            }
            if !a.ttft_recorded && a.decoded.rows() > 0 {
                a.ttft_recorded = true;
                let ttft_us = wall
                    .saturating_duration_since(a.submitted_at)
                    .as_micros()
                    .min(u64::MAX as u128) as u64;
                q.telemetry.ttft_us.record(ttft_us);
            }
        }
        let now = q.stats.steps;
        for (id, outcome) in failed {
            q.cancels.remove(&id);
            shared.engine_trace.instant(stage::REQ_FAILED, id as u32, 0);
            q.telemetry.tokens_per_request.record(0);
            q.done.insert(id, outcome);
        }
        // m2x-lint: allow(alloc) retire bookkeeping: sized by batch (small), not by tokens
        let mut rest = Vec::with_capacity(active.len());
        for a in active.drain(..) {
            if a.finished() {
                q.cancels.remove(&a.id);
                let decoded_tokens = a.decoded.rows() as u64;
                shared
                    .engine_trace
                    .instant(stage::REQ_FINISHED, a.id as u32, decoded_tokens);
                q.telemetry.tokens_per_request.record(decoded_tokens);
                q.done
                    .insert(a.id, RequestOutcome::Finished(a.into_completed(now)));
            } else {
                rest.push(a);
            }
        }
        active = rest;
        shared.done_cv.notify_all();
    }
}
