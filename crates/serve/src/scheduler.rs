//! The continuous-batching scheduler: an arrival queue, an admission
//! window, and one engine thread stepping every in-flight request's rows
//! through a single batched model call per scheduler step.
//!
//! ```text
//!  submit() ──► pending (FIFO) ──admit (≤ max_batch)──► active
//!                                                        │ every step:
//!                                                        │  stack rows →
//!                                                        │  step_sessions
//!                                                        │  (one batched
//!                                                        │   GEMM walk)
//!  wait(id) ◄── done map ◄── retire finished ◄───────────┘
//! ```
//!
//! Requests are admitted and stepped in arrival order, so a given request
//! stream is reproducible run to run; and because every output row depends
//! only on its own request's rows and KV cache, each request's outputs are
//! bit-identical to a solo run no matter how arrivals interleave with the
//! engine's steps.

use crate::{feedback_token, ServeConfig};
use m2x_nn::model::{ModelWeights, SessionState, StepScratch};
use m2x_tensor::Matrix;
use m2xfp::Error;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// A finished request: its decode outputs plus scheduling metadata.
#[derive(Debug, Clone)]
pub struct Completed {
    /// The id [`Server::submit`] returned.
    pub id: u64,
    /// Outputs of the prompt rows (the prefill step).
    pub prefill_out: Matrix,
    /// Stacked outputs of the decode steps (`[decode_steps, hidden]`).
    pub decoded: Matrix,
    /// Scheduler step count when the request was admitted.
    pub arrived_step: u64,
    /// Scheduler step count when the request finished; `finished_step -
    /// arrived_step` is the request's latency in scheduler steps.
    pub finished_step: u64,
}

/// Aggregate scheduler counters (monotonic over the server's lifetime).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Batched scheduler steps executed.
    pub steps: u64,
    /// Total decode tokens produced across all requests.
    pub decoded_tokens: u64,
    /// Largest number of requests in flight during one step.
    pub peak_batch: usize,
}

struct Pending {
    id: u64,
    prompt: Matrix,
    decode_steps: usize,
}

/// One in-flight request, owned by the engine thread between steps.
struct Active {
    id: u64,
    session: SessionState,
    next_input: Matrix,
    prefilling: bool,
    remaining: usize,
    prefill_out: Matrix,
    decoded: Matrix,
    arrived_step: u64,
}

impl Active {
    fn admit(p: Pending, weights: &ModelWeights, arrived_step: u64) -> Self {
        Active {
            id: p.id,
            session: weights.new_session(),
            next_input: p.prompt,
            prefilling: true,
            remaining: p.decode_steps,
            prefill_out: Matrix::zeros(0, weights.hidden()),
            decoded: Matrix::zeros(0, weights.hidden()),
            arrived_step,
        }
    }

    /// Folds one step's output rows into the request; returns the number
    /// of decode tokens it produced (0 for the prefill step).
    fn consume(&mut self, y: Matrix) -> u64 {
        self.next_input = feedback_token(&y);
        if self.prefilling {
            self.prefill_out = y;
            self.prefilling = false;
            0
        } else {
            self.decoded.push_rows(&y);
            self.remaining -= 1;
            1
        }
    }

    fn finished(&self) -> bool {
        !self.prefilling && self.remaining == 0
    }

    fn into_completed(self, finished_step: u64) -> Completed {
        Completed {
            id: self.id,
            prefill_out: self.prefill_out,
            decoded: self.decoded,
            arrived_step: self.arrived_step,
            finished_step,
        }
    }
}

#[derive(Default)]
struct Queues {
    next_id: u64,
    pending: VecDeque<Pending>,
    done: BTreeMap<u64, Completed>,
    /// Ids whose [`Completed`] has already been handed to a waiter —
    /// waiting again is a caller bug and panics instead of hanging.
    claimed: BTreeSet<u64>,
    stats: ServeStats,
    shutdown: bool,
    /// Set when the engine thread hit an unrecoverable model error; waiters
    /// surface it instead of blocking forever.
    failed: Option<String>,
}

struct Shared {
    weights: Arc<ModelWeights>,
    max_batch: usize,
    threads: usize,
    q: Mutex<Queues>,
    /// Wakes the engine: new arrival or shutdown.
    work_cv: Condvar,
    /// Wakes waiters: request completed or engine failed.
    done_cv: Condvar,
}

/// A running serving instance: one engine thread, one shared weight set,
/// any number of submitting/waiting threads. Dropping the server drains
/// the queues (every submitted request still completes), then joins the
/// engine.
pub struct Server {
    shared: Arc<Shared>,
    engine: Option<JoinHandle<()>>,
}

impl Server {
    /// Spawns the engine thread over an `Arc`-shared prepared model.
    pub fn start(weights: Arc<ModelWeights>, cfg: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            threads: cfg.worker_threads,
            max_batch: cfg.max_batch.max(1),
            weights,
            q: Mutex::new(Queues::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let engine_shared = Arc::clone(&shared);
        let engine = std::thread::Builder::new()
            .name("m2x-serve-engine".into())
            .spawn(move || engine_loop(&engine_shared))
            .expect("spawning the serve engine thread");
        Server {
            shared,
            engine: Some(engine),
        }
    }

    /// Enqueues a generation request (open-loop: returns immediately) and
    /// hands back the id to [`Self::wait`] on. The request prefills
    /// `prompt` and then runs `decode_steps` closed-loop decode steps
    /// through [`feedback_token`].
    ///
    /// # Errors
    ///
    /// Fails on an empty prompt, an input width mismatch, or a prompt
    /// containing NaN/Inf values — non-finite rows would flow into the
    /// online quantizer and poison the engine thread mid-batch, taking
    /// every concurrent request down with a config error that belongs to
    /// this one.
    pub fn submit(&self, prompt: Matrix, decode_steps: usize) -> Result<u64, Error> {
        if prompt.rows() == 0 {
            return Err(Error::config("prompt must contain at least one token"));
        }
        if prompt.cols() != self.shared.weights.hidden() {
            return Err(Error::WidthMismatch {
                tensor: "serve prompt".to_string(),
                expected: self.shared.weights.hidden(),
                got: prompt.cols(),
            });
        }
        crate::check_finite(&prompt)?;
        let mut q = self.lock();
        let id = q.next_id;
        q.next_id += 1;
        q.pending.push_back(Pending {
            id,
            prompt,
            decode_steps,
        });
        self.shared.work_cv.notify_one();
        Ok(id)
    }

    /// Blocks until request `id` completes and returns its outputs. Each
    /// completion is handed out **once**: the first `wait(id)` consumes it.
    ///
    /// # Panics
    ///
    /// Panics if the engine thread failed (a model error mid-stream — only
    /// reachable when submit-time validation was bypassed), if `id` was
    /// never issued by this server, or if `id` was already waited on.
    pub fn wait(&self, id: u64) -> Completed {
        let mut q = self.lock();
        assert!(id < q.next_id, "request {id} was never submitted here");
        assert!(
            !q.claimed.contains(&id),
            "request {id} was already waited on (completions are consumed once)"
        );
        loop {
            if let Some(done) = q.done.remove(&id) {
                q.claimed.insert(id);
                return done;
            }
            if let Some(err) = &q.failed {
                panic!("serve engine failed: {err}");
            }
            q = self
                .shared
                .done_cv
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Aggregate scheduler counters so far.
    pub fn stats(&self) -> ServeStats {
        self.lock().stats
    }

    fn lock(&self) -> MutexGuard<'_, Queues> {
        lock_queues(&self.shared)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.lock().shutdown = true;
        self.shared.work_cv.notify_all();
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

/// Locks the queue state, recovering from poisoning: every mutation
/// inside the lock is applied atomically from the state's point of view
/// (panics can only fire before any mutation — e.g. [`Server::wait`]'s
/// misuse asserts), so a poisoned mutex still guards consistent data.
fn lock_queues(shared: &Shared) -> MutexGuard<'_, Queues> {
    shared.q.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The continuous-batching loop (runs on the engine thread).
fn engine_loop(shared: &Shared) {
    let mut active: Vec<Active> = Vec::new();
    // One activation scratch for the engine's lifetime: every scheduler
    // step's projection GEMMs (and, at one worker, the attention score
    // GEMVs) reuse it, so the decode hot loop stops allocating activation
    // planes per call.
    let mut scratch = StepScratch::new();
    loop {
        // Admission: wait for work, then top the batch up from the queue
        // in arrival order.
        {
            let mut q = lock_queues(shared);
            while active.is_empty() && q.pending.is_empty() && !q.shutdown {
                q = shared
                    .work_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if active.is_empty() && q.pending.is_empty() && q.shutdown {
                return;
            }
            let arrived = q.stats.steps;
            while active.len() < shared.max_batch {
                let Some(p) = q.pending.pop_front() else {
                    break;
                };
                active.push(Active::admit(p, &shared.weights, arrived));
            }
        }

        // One batched step over every in-flight request (no lock held:
        // arrivals enqueue concurrently and are admitted next step).
        let inputs: Vec<Matrix> = active.iter().map(|a| a.next_input.clone()).collect();
        let step = {
            let mut sessions: Vec<&mut SessionState> =
                active.iter_mut().map(|a| &mut a.session).collect();
            shared.weights.step_sessions_scratch(
                &mut sessions,
                &inputs,
                shared.threads,
                &mut scratch,
            )
        };
        let outs = match step {
            Ok(outs) => outs,
            Err(e) => {
                let mut q = lock_queues(shared);
                q.failed = Some(e.to_string());
                shared.done_cv.notify_all();
                return;
            }
        };

        let batch = active.len();
        let mut decoded_now = 0u64;
        for (a, y) in active.iter_mut().zip(outs) {
            decoded_now += a.consume(y);
        }
        let finished: Vec<Active> = {
            let mut rest = Vec::with_capacity(active.len());
            let mut done = Vec::new();
            for a in active.drain(..) {
                if a.finished() {
                    done.push(a);
                } else {
                    rest.push(a);
                }
            }
            active = rest;
            done
        };

        let mut q = lock_queues(shared);
        q.stats.steps += 1;
        q.stats.decoded_tokens += decoded_now;
        q.stats.peak_batch = q.stats.peak_batch.max(batch);
        let now = q.stats.steps;
        for f in finished {
            q.done.insert(f.id, f.into_completed(now));
        }
        shared.done_cv.notify_all();
    }
}
